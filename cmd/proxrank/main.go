// Command proxrank answers ad-hoc proximity rank join queries over CSV
// relations or the bundled simulated city data sets.
//
// Usage:
//
//	proxrank -city SF -k 5
//	proxrank -csv hotels.csv,restaurants.csv -query "0.1,0.2" -k 10 -algo cbpa
//
// CSV layout: header "id,score,x1,...,xd[,attrs...]", one tuple per row.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	proxrank "repro"
	"repro/internal/vec"
)

func main() {
	var (
		csvs    = flag.String("csv", "", "comma-separated relation CSV files")
		city    = flag.String("city", "", "simulated city dataset (SF, NY, BO, DA, HO)")
		queryS  = flag.String("query", "", "query vector, e.g. \"0.1,0.2\" (defaults to the city landmark)")
		k       = flag.Int("k", 10, "number of results")
		algoS   = flag.String("algo", "tbpa", "algorithm: cbrr|cbpa|tbrr|tbpa")
		access  = flag.String("access", "distance", "access kind: distance|score")
		ws      = flag.Float64("ws", 1, "score weight w_s")
		wq      = flag.Float64("wq", 1, "query-distance weight w_q")
		wmu     = flag.Float64("wmu", 1, "centroid-distance weight w_mu")
		showIO  = flag.Bool("stats", false, "print access statistics")
		maxSum  = flag.Int("max-sum-depths", 0, "abort after this many accesses (0 = unlimited)")
		useTree = flag.Bool("rtree", false, "serve distance access via R-tree incremental NN")
	)
	flag.Parse()

	algo, err := proxrank.ParseAlgorithm(*algoS)
	if err != nil {
		fatal("%v", err)
	}

	var (
		rels     []*proxrank.Relation
		query    proxrank.Vector
		landmark string
	)
	switch {
	case *city != "":
		var err error
		rels, query, landmark, err = proxrank.CityDataset(strings.ToUpper(*city))
		if err != nil {
			fatal("%v", err)
		}
		// The bundled city study weights geography up (degree-scale coords).
		if *wq == 1 && *wmu == 1 {
			*wq, *wmu = 2000, 2000
		}
	case *csvs != "":
		for _, path := range strings.Split(*csvs, ",") {
			rel, err := proxrank.LoadRelationCSV(strings.TrimSpace(path), "", 0)
			if err != nil {
				fatal("loading %s: %v", path, err)
			}
			rels = append(rels, rel)
		}
	default:
		fatal("provide -csv or -city (see -h)")
	}

	if *queryS != "" {
		q, err := vec.Parse(*queryS)
		if err != nil {
			fatal("bad query: %v", err)
		}
		query = q
	}
	if query == nil {
		fatal("no query vector: pass -query")
	}

	opts := proxrank.Options{
		K:            *k,
		Algorithm:    algo,
		Weights:      proxrank.Weights{Ws: *ws, Wq: *wq, Wmu: *wmu},
		UseRTree:     *useTree,
		MaxSumDepths: *maxSum,
	}
	if *access == "score" {
		opts.Access = proxrank.ScoreAccess
	} else if *access != "distance" {
		fatal("unknown access kind %q", *access)
	}

	res, err := proxrank.TopK(query, rels, opts)
	if err != nil {
		fatal("%v", err)
	}
	if landmark != "" {
		fmt.Printf("query: %s (%v)\n", landmark, query)
	} else {
		fmt.Printf("query: %v\n", query)
	}
	for i, c := range res.Combinations {
		fmt.Printf("#%d  score %.4f\n", i+1, c.Score)
		for j, tup := range c.Tuples {
			fmt.Printf("    %-14s %-24s score %.2f at %v\n", rels[j].Name, tup.ID, tup.Score, tup.Vec)
		}
	}
	if res.DNF {
		fmt.Println("warning: run aborted by cap before the bound certified the result (DNF)")
	}
	if *showIO {
		fmt.Printf("sumDepths=%d depths=%v combinations=%d cpu=%v (bound %v)\n",
			res.Stats.SumDepths, res.Stats.Depths, res.Stats.CombinationsFormed,
			res.Stats.TotalTime, res.Stats.BoundTime)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "proxrank: "+format+"\n", args...)
	os.Exit(1)
}
