// Command proxrank answers ad-hoc proximity rank join queries over CSV
// relations or the bundled simulated city data sets. Queries are
// expressed as the transport-neutral api.Request (the same shape the
// HTTP service speaks) and executed through a proxrank.Query session, so
// -stream can print each result the moment the engine certifies it
// instead of waiting for the whole run.
//
// Usage:
//
//	proxrank -city SF -k 5
//	proxrank -csv hotels.csv,restaurants.csv -query "0.1,0.2" -k 10 -algo cbpa
//	proxrank -city NY -k 20 -stream
//
// CSV layout: header "id,score,x1,...,xd[,attrs...]", one tuple per row.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	proxrank "repro"
	"repro/api"
	"repro/internal/vec"
)

func main() {
	var (
		csvs    = flag.String("csv", "", "comma-separated relation CSV files")
		city    = flag.String("city", "", "simulated city dataset (SF, NY, BO, DA, HO)")
		queryS  = flag.String("query", "", "query vector, e.g. \"0.1,0.2\" (defaults to the city landmark)")
		k       = flag.Int("k", 10, "number of results")
		algoS   = flag.String("algo", "tbpa", "algorithm: cbrr|cbpa|tbrr|tbpa")
		access  = flag.String("access", "distance", "access kind: distance|score")
		ws      = flag.Float64("ws", 1, "score weight w_s")
		wq      = flag.Float64("wq", 1, "query-distance weight w_q")
		wmu     = flag.Float64("wmu", 1, "centroid-distance weight w_mu")
		showIO  = flag.Bool("stats", false, "print access statistics")
		maxSum  = flag.Int("max-sum-depths", 0, "abort after this many accesses (0 = unlimited)")
		maxBuf  = flag.Int("max-buffered", 0, "bound the buffer of formed-but-unemitted combinations (0 = K)")
		blockSz = flag.Int("block-size", 0, "batched scoring kernel width (0 = engine default; results identical at any width)")
		useTree = flag.Bool("rtree", false, "serve distance access via R-tree incremental NN")
		stream  = flag.Bool("stream", false, "print each result as soon as it is certified")
	)
	flag.Parse()

	var (
		rels     []*proxrank.Relation
		query    proxrank.Vector
		landmark string
	)
	switch {
	case *city != "":
		var err error
		rels, query, landmark, err = proxrank.CityDataset(strings.ToUpper(*city))
		if err != nil {
			fatal("%v", err)
		}
		// The bundled city study weights geography up (degree-scale coords).
		if *wq == 1 && *wmu == 1 {
			*wq, *wmu = 2000, 2000
		}
	case *csvs != "":
		for _, path := range strings.Split(*csvs, ",") {
			// The empty name keeps the historical default: the relation is
			// named after its file, which is what the result listing prints.
			rel, err := proxrank.LoadRelationCSV(strings.TrimSpace(path), "", 0)
			if err != nil {
				fatal("loading %s: %v", path, err)
			}
			rels = append(rels, rel)
		}
	default:
		fatal("provide -csv or -city (see -h)")
	}

	if *queryS != "" {
		q, err := vec.Parse(*queryS)
		if err != nil {
			fatal("bad query: %v", err)
		}
		query = q
	}
	if query == nil {
		fatal("no query vector: pass -query")
	}

	// One request shape across every surface: the CLI fills the same
	// api.Request the HTTP endpoints accept, and validation/defaulting
	// happen centrally in the api package.
	names := make([]string, len(rels))
	inputs := make([]proxrank.Input, len(rels))
	for i, rel := range rels {
		names[i] = rel.Name
		inputs[i] = rel
	}
	req := &api.Request{
		Query:        []float64(query),
		Relations:    names,
		K:            *k,
		Algorithm:    *algoS,
		Access:       *access,
		Weights:      &api.Weights{Ws: *ws, Wq: *wq, Wmu: *wmu},
		MaxSumDepths: *maxSum,
		MaxBuffered:  *maxBuf,
		BlockSize:    *blockSz,
	}
	qvec, opts, err := proxrank.OptionsFromRequest(req)
	if err != nil {
		fatal("%v", err)
	}
	// The R-tree toggle is a physical knob of the local engine, not part
	// of the wire request (results are identical either way).
	opts.UseRTree = *useTree
	// The CLI consumes at most K results, so the buffer can always be
	// bounded (the service executor applies the same default).
	opts = opts.BoundedToK()
	// Per-pull timing only matters when the stats line is requested.
	opts.CollectTimings = *showIO

	sess, err := proxrank.NewQueryInputs(qvec, inputs, opts)
	if err != nil {
		fatal("%v", err)
	}

	if landmark != "" {
		fmt.Printf("query: %s (%v)\n", landmark, qvec)
	} else {
		fmt.Printf("query: %v\n", qvec)
	}

	print := func(rank int, c proxrank.Combination) {
		fmt.Printf("#%d  score %.4f\n", rank, c.Score)
		for j, tup := range c.Tuples {
			fmt.Printf("    %-14s %-24s score %.2f at %v\n", rels[j].Name, tup.ID, tup.Score, tup.Vec)
		}
	}

	dnf := false
	if *stream {
		// Incremental retrieval: rank 1 appears as soon as the bound
		// certifies it, long before the run would complete.
		rank := 0
		for rank < *k {
			batch, err := sess.Next(1)
			for _, c := range batch {
				rank++
				print(rank, c)
			}
			if err == nil {
				continue
			}
			if errors.Is(err, proxrank.ErrStreamDone) {
				break
			}
			if errors.Is(err, proxrank.ErrDNF) {
				dnf = true
				for _, c := range sess.DrainBest(*k - rank) {
					rank++
					print(rank, c)
				}
				break
			}
			fatal("%v", err)
		}
	} else {
		res, err := sess.Run()
		if err != nil {
			fatal("%v", err)
		}
		dnf = res.DNF
		for i, c := range res.Combinations {
			print(i+1, c)
		}
	}
	if dnf {
		fmt.Println("warning: run aborted by cap before the bound certified the result (DNF)")
	}
	if *showIO {
		st := sess.Stats()
		fmt.Printf("sumDepths=%d depths=%v combinations=%d cpu=%v (bound %v)\n",
			st.SumDepths, st.Depths, st.CombinationsFormed, st.TotalTime, st.BoundTime)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "proxrank: "+format+"\n", args...)
	os.Exit(1)
}
