// Command proxbench regenerates the paper's experimental study. Each panel
// of Figure 3 is a runnable experiment; the printed rows are the series
// the paper plots.
//
// Usage:
//
//	proxbench -fig all            # every panel, paper methodology (10 reps)
//	proxbench -fig 3a,3h -quick   # selected panels at reduced size
//	proxbench -list               # list available panels
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		figs  = flag.String("fig", "all", "comma-separated figure ids (3a..3n) or 'all'")
		quick = flag.Bool("quick", false, "reduced repetitions and data sizes")
		reps  = flag.Int("reps", 0, "override the number of seeded data sets per point")
		list  = flag.Bool("list", false, "list available figures and exit")
		seed  = flag.Int64("seed", 0, "base seed for data generation")
	)
	flag.Parse()

	if *list {
		for _, f := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return
	}

	st := experiments.DefaultSettings()
	if *quick {
		st = experiments.QuickSettings()
	}
	if *reps > 0 {
		st.Reps = *reps
	}
	st.Seed = *seed

	var selected []experiments.Figure
	if *figs == "all" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			f, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "proxbench: unknown figure %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	for _, f := range selected {
		tbl, err := f.Run(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: figure %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: render %s: %v\n", f.ID, err)
			os.Exit(1)
		}
	}
}
