// Command proxbench regenerates the paper's experimental study. Each panel
// of Figure 3 is a runnable experiment; the printed rows are the series
// the paper plots. It also maintains the repo's hot-path perf snapshot:
// -core-out runs the engine micro-benchmarks (batch TopK, session Next,
// sharded merge — the same workloads as `go test -bench=HotPath`) and
// writes them as BENCH_core.json, so the performance trajectory is
// tracked in-tree from PR to PR.
//
// Usage:
//
//	proxbench -fig all                  # every panel, paper methodology (10 reps)
//	proxbench -fig 3a,3h -quick         # selected panels at reduced size
//	proxbench -list                     # list available panels
//	proxbench -core-out BENCH_core.json # refresh the hot-path perf snapshot
//	proxbench -core-check BENCH_core.json # fail if allocs/op regressed vs the snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchcore"
	"repro/internal/experiments"
)

func main() {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure ids (3a..3n) or 'all'")
		quick     = flag.Bool("quick", false, "reduced repetitions and data sizes")
		reps      = flag.Int("reps", 0, "override the number of seeded data sets per point")
		list      = flag.Bool("list", false, "list available figures and exit")
		seed      = flag.Int64("seed", 0, "base seed for data generation")
		coreOut   = flag.String("core-out", "", "run the hot-path micro-benchmarks and write the JSON snapshot here ('-' for stdout)")
		coreCheck = flag.String("core-check", "", "run the hot-path micro-benchmarks and fail if any exceeds the committed snapshot's allocs/op by more than -alloc-tol")
		allocTol  = flag.Float64("alloc-tol", 0.10, "allocs/op headroom for -core-check, as a fraction of the committed value")
	)
	flag.Parse()

	if *coreCheck != "" {
		f, err := os.Open(*coreCheck)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: %v\n", err)
			os.Exit(1)
		}
		committed, err := benchcore.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: %v\n", err)
			os.Exit(1)
		}
		fresh := benchcore.Run()
		for _, b := range fresh.Benchmarks {
			fmt.Fprintf(os.Stderr, "%-14s %12.0f ns/op %10d B/op %8d allocs/op\n",
				b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
		}
		if err := benchcore.CheckAllocs(fresh, committed, *allocTol); err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "proxbench: allocs/op within %.0f%% of %s\n", *allocTol*100, *coreCheck)
		return
	}

	if *coreOut != "" {
		snap := benchcore.Run()
		out := os.Stdout
		if *coreOut != "-" {
			f, err := os.Create(*coreOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proxbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := snap.Write(out); err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: %v\n", err)
			os.Exit(1)
		}
		for _, b := range snap.Benchmarks {
			fmt.Fprintf(os.Stderr, "%-14s %12.0f ns/op %10d B/op %8d allocs/op\n",
				b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
		}
		return
	}

	if *list {
		for _, f := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return
	}

	st := experiments.DefaultSettings()
	if *quick {
		st = experiments.QuickSettings()
	}
	if *reps > 0 {
		st.Reps = *reps
	}
	st.Seed = *seed

	var selected []experiments.Figure
	if *figs == "all" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			f, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "proxbench: unknown figure %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}

	for _, f := range selected {
		tbl, err := f.Run(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: figure %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "proxbench: render %s: %v\n", f.ID, err)
			os.Exit(1)
		}
	}
}
