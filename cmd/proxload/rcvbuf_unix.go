//go:build unix

package main

import (
	"net"
	"syscall"
)

// clampSndbufListener wraps ln so every accepted connection's send
// buffer is capped at bytes. Loopback send buffers autotune into the
// megabytes, silently absorbing whole responses on behalf of stalled
// readers; capping them makes the in-process server behave like one
// talking to clients across a real network path, where a reader that
// stops reading makes the writer block.
func clampSndbufListener(ln net.Listener, bytes int) net.Listener {
	return sndbufListener{Listener: ln, bytes: bytes}
}

type sndbufListener struct {
	net.Listener
	bytes int
}

func (l sndbufListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		if rc, err := tc.SyscallConn(); err == nil {
			_ = rc.Control(func(fd uintptr) {
				_ = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF, l.bytes)
			})
		}
	}
	return conn, nil
}

// smallRcvbufDialer returns a dialer whose sockets advertise a receive
// window of at most bytes: the kernel then cannot absorb a large
// response on behalf of a stalled reader, so a deliberately slow client
// exerts real TCP backpressure on the server instead of having the
// socket buffers silently drain the stream for it.
func smallRcvbufDialer(bytes int) *net.Dialer {
	return &net.Dialer{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF, bytes)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
}
