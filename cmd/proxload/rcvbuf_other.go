//go:build !unix

package main

import "net"

// smallRcvbufDialer degrades to a plain dialer where SO_RCVBUF is not
// portable; slow clients then rely on read pacing alone.
func smallRcvbufDialer(int) *net.Dialer { return &net.Dialer{} }

// clampSndbufListener is a no-op where SO_SNDBUF is not portable.
func clampSndbufListener(ln net.Listener, _ int) net.Listener { return ln }
