package main

// The /metrics scrape: proxload reads the server's Prometheus exposition
// before and after the run, validates it (a malformed exposition fails
// the run — this is the CI gate on the metrics endpoint), and derives
// server-side latency percentiles from the histogram deltas. Client and
// server percentiles answer different questions — the client numbers
// include connection setup, HTTP framing, and generator scheduling; the
// server histograms see only what the executor did — so the report
// prints them side by side.

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// histSnap is one histogram family folded across its label sets:
// cumulative bucket counts by upper bound, total count, total sum.
type histSnap struct {
	buckets map[float64]int64
	count   int64
	sum     float64
}

// metricsSnap is one scrape's histogram families by name, plus the
// plain (gauge/counter) samples folded across label sets.
type metricsSnap struct {
	hists  map[string]*histSnap
	scalar map[string]float64
}

// gauge returns a plain sample by family name (0 when absent).
func (s *metricsSnap) gauge(name string) float64 {
	if s == nil {
		return 0
	}
	return s.scalar[name]
}

// scrapeMetrics reads GET /metrics and parses the histogram families. A
// missing endpoint (older server) returns nil without error so the rest
// of the report still works; a malformed exposition is a hard failure.
func scrapeMetrics(client *http.Client, base string) (*metricsSnap, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		log.Printf("server has no /metrics endpoint; skipping server-side histograms")
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := obs.CheckExposition(bytes.NewReader(body)); err != nil {
		return nil, fmt.Errorf("malformed /metrics exposition: %w", err)
	}
	snap := &metricsSnap{hists: make(map[string]*histSnap), scalar: make(map[string]float64)}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parseSampleLine(line)
		if !ok {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, err := strconv.ParseFloat(labels["le"], 64)
			if err != nil {
				continue
			}
			h := snap.hist(strings.TrimSuffix(name, "_bucket"))
			h.buckets[le] += int64(value)
		case strings.HasSuffix(name, "_sum"):
			snap.hist(strings.TrimSuffix(name, "_sum")).sum += value
		case strings.HasSuffix(name, "_count"):
			snap.hist(strings.TrimSuffix(name, "_count")).count += int64(value)
		default:
			snap.scalar[name] += value
		}
	}
	return snap, nil
}

func (s *metricsSnap) hist(family string) *histSnap {
	h := s.hists[family]
	if h == nil {
		h = &histSnap{buckets: make(map[float64]int64)}
		s.hists[family] = h
	}
	return h
}

// delta subtracts an earlier scrape of the same family; either side may
// be missing (nil is an empty histogram).
func (s *metricsSnap) delta(before *metricsSnap, family string) histSnap {
	d := histSnap{buckets: make(map[float64]int64)}
	var a, b *histSnap
	if s != nil {
		a = s.hists[family]
	}
	if before != nil {
		b = before.hists[family]
	}
	if a == nil {
		return d
	}
	d.count, d.sum = a.count, a.sum
	for le, c := range a.buckets {
		d.buckets[le] = c
	}
	if b != nil {
		d.count -= b.count
		d.sum -= b.sum
		for le, c := range b.buckets {
			d.buckets[le] -= c
		}
	}
	return d
}

// quantile estimates the q-quantile from cumulative bucket counts the
// way Prometheus's histogram_quantile does: find the bucket the target
// rank lands in and interpolate linearly inside it. The +Inf bucket
// reports its lower bound (the histogram cannot resolve further).
func (h histSnap) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	les := make([]float64, 0, len(h.buckets))
	for le := range h.buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	target := q * float64(h.count)
	prevCum, prevLe := 0.0, 0.0
	for _, le := range les {
		cum := float64(h.buckets[le])
		if cum >= target {
			if math.IsInf(le, +1) {
				// The histogram cannot resolve past its last finite bound.
				return prevLe
			}
			inBucket := cum - prevCum
			if inBucket <= 0 {
				return le
			}
			return prevLe + (le-prevLe)*(target-prevCum)/inBucket
		}
		prevCum, prevLe = cum, le
	}
	return prevLe
}

// serverHist is one server-side histogram delta summarized for the
// report, in milliseconds.
type serverHist struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`
}

// summarizeHist folds a seconds-histogram delta into milliseconds.
func summarizeHist(d histSnap) serverHist {
	s := serverHist{Count: d.count}
	if d.count == 0 {
		return s
	}
	s.P50Ms = d.quantile(0.50) * 1e3
	s.P95Ms = d.quantile(0.95) * 1e3
	s.P99Ms = d.quantile(0.99) * 1e3
	s.MeanMs = d.sum / float64(d.count) * 1e3
	return s
}

// parseSampleLine splits one exposition sample into name, labels, and
// value. Quote-aware so escaped label values cannot derail the scan;
// lenient because CheckExposition already validated the format.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 && i < strings.IndexByte(line+" ", ' ') {
		name = line[:i]
		body, tail, found := cutLabelBody(line[i+1:])
		if !found {
			return "", nil, 0, false
		}
		for _, pair := range splitLabelPairs(body) {
			k, v, found := strings.Cut(pair, "=")
			if !found {
				continue
			}
			labels[k] = unquoteLabel(v)
		}
		rest = strings.TrimSpace(tail)
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, 0, false
		}
		name = fields[0]
		rest = fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// cutLabelBody scans to the '}' closing a label body, respecting quoted
// strings and their escapes.
func cutLabelBody(s string) (body, tail string, ok bool) {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// splitLabelPairs splits "a=\"x\",b=\"y\"" on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// unquoteLabel undoes the exposition's label escaping.
func unquoteLabel(v string) string {
	v = strings.TrimPrefix(v, `"`)
	v = strings.TrimSuffix(v, `"`)
	r := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
	return r.Replace(v)
}
