// Command proxload drives open-loop query traffic against a proxserve
// instance and reports what the serving layer actually delivers under
// concurrency: end-to-end latency percentiles, time-to-first-event on
// the streaming endpoint (the ranked-enumeration cost metric: how soon
// does the first certified result reach a client), cache-hit and
// coalesce rates, and the broker's slow-subscriber drops.
//
// Arrivals are open-loop (Poisson): queries are launched on a schedule
// that does not slow down when the server does, which is what exposes
// queueing — a closed loop would politely wait and hide it. Arrivals
// that would exceed -max-inflight are shed and counted rather than
// queued, keeping the generator honest.
//
// The query mix is controlled by -stream (fraction streamed), -hot
// (fraction drawn from a small hot set, which turns into cache hits and
// single-flight coalesces) and -k; -slow-clients adds deliberately slow
// NDJSON readers pinned to the hottest query, the adversarial workload
// the stream delivery broker exists for.
//
// Usage:
//
//	proxload -addr http://localhost:8080 -rate 200 -duration 10s
//	proxload -selfserve -rate 500 -duration 5s -stream 0.5 -slow-clients 4
//	proxload -selfserve -stream-buffer -1 ...   # legacy coupled delivery
//
// -selfserve spins up an in-process proxserve (bundled city data) and
// drives it over a real TCP socket, so a before/after broker study needs
// no external setup: the -stream-buffer/-stream-overflow/
// -stream-block-timeout flags configure the in-process server exactly
// like proxserve.
//
// -topology coord:N upgrades -selfserve to a distributed deployment: N
// in-process shard servers (each owning every Nth shard of every
// relation, partitioned per -shards/-shard-strategy; -replicas r gives
// every shard r consecutive owners) behind a coordinator that prunes
// unreachable shards by their advertised bounds and merges the rest
// over the wire. The same latency/TTFE study then measures the
// coordinator path, and the report's server delta includes
// shardsPruned/remoteStreamsOpened. -identity-check additionally replays
// a fixed query set against a single-node twin of the same data and
// exits nonzero on any byte-level response difference — the CI gate for
// the distributed merge.
//
// -chaos "verb=pull;action=delay;delay=200ms;every=10" puts the first
// shard server behind a fault-injecting listener (same grammar as
// proxserve -fault-spec), so the run reports what hedged pulls,
// failover, and degradation do to tail latency instead of the happy
// path; failures are broken down by structured error code in the
// report. Startup waits on /v1/readyz, so measurements never include
// index builds.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	proxrank "repro"
	"repro/api"
	"repro/internal/faultinject"
	"repro/internal/shardrpc"
	"repro/service"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "base URL of the target proxserve")
		selfserve = flag.Bool("selfserve", false, "spin up an in-process proxserve on a loopback port and target it")
		city      = flag.String("city", "SF", "city data set for -selfserve")
		rate      = flag.Float64("rate", 100, "mean arrival rate in queries/sec (open loop, Poisson)")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		streamFr  = flag.Float64("stream", 0.5, "fraction of arrivals using /v1/query/stream (rest use /v1/query)")
		k         = flag.Int("k", 10, "top-K per query")
		accessF   = flag.String("access", "", "access kind sent on every query: distance, score, or empty for the server default (distance)")
		hotFr     = flag.Float64("hot", 0.5, "fraction of arrivals drawn from the hot query set (cache hits after warmup)")
		hotSet    = flag.Int("hot-set", 4, "number of distinct hot query vectors")
		relsFl    = flag.String("rel", "", "comma-separated relation names (default: first two of GET /v1/relations)")
		seed      = flag.Int64("seed", 1, "RNG seed for arrivals and query vectors")
		maxInfl   = flag.Int("max-inflight", 512, "cap on concurrently outstanding requests; arrivals beyond are shed")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		spread    = flag.Float64("query-spread", 0.02, "radius of random query vectors around the base point")
		baseFl    = flag.String("query-base", "", "comma-separated base query vector (default: city landmark for -selfserve, origin otherwise)")
		overflow  = flag.String("overflow", "", "overflow policy sent on stream requests: block, drop, or empty for the server default")
		slowN     = flag.Int("slow-clients", 0, "deliberately slow stream readers pinned to the hottest query")
		slowRead  = flag.Duration("slow-read", 200*time.Millisecond, "per-event stall of a slow client")
		slowBuf   = flag.Int("slow-rcvbuf", 4096, "slow clients' socket receive buffer (small = real TCP backpressure)")
		jsonOut   = flag.String("json", "", "also write the report as JSON to this file")
		maxErrFr  = flag.Float64("max-error-rate", 1.0, "exit nonzero when failed requests exceed this fraction (CI gate; 0 = any error fails)")

		// In-process server knobs, mirroring proxserve.
		workers   = flag.Int("workers", 0, "selfserve: max concurrent engine executions (0 = GOMAXPROCS)")
		streamBuf = flag.Int("stream-buffer", service.DefaultStreamBuffer, "selfserve: stream delivery buffer (negative = legacy coupled delivery)")
		overflowS = flag.String("stream-overflow", service.DefaultStreamOverflow, "selfserve: server-side overflow policy (block|drop)")
		blockTo   = flag.Duration("stream-block-timeout", service.DefaultStreamBlockTimeout, "selfserve: engine wait on block-policy laggards")
		cacheSz   = flag.Int("cache", service.DefaultCacheSize, "selfserve: LRU result-cache capacity")
		srvSndbuf = flag.Int("server-sndbuf", 0, "selfserve: cap accepted connections' send buffers (0 = kernel default; loopback autotuning otherwise hides slow readers)")

		// Memory-bounded study knobs: serve big synthetic relations from
		// mmap-backed relfiles, spill enumeration to disk, and gate the
		// run on the server's own resident-memory gauge.
		selfTuples = flag.Int("selfserve-tuples", 0, "selfserve: serve synthetic relations of this many tuples each instead of the bundled city data (0 = city data)")
		selfDim    = flag.Int("selfserve-dim", 8, "selfserve: feature dimensionality of the -selfserve-tuples synthetic relations")
		selfProx   = flag.Bool("selfserve-relfile", false, "selfserve: write the relations to mmap-ready .prox relfiles and serve them file-backed (flat-RSS mode)")
		spillDirF  = flag.String("spill-dir", "", "selfserve: file spill tier for BufferSpill sessions, forwarded to the in-process server")
		spillMemF  = flag.Int("spill-mem", 0, "selfserve: in-memory spill-slab watermark in bytes, forwarded to the in-process server (0 = 4 MiB default)")
		bufPolicy  = flag.String("buffer-policy", "", "bufferPolicy sent on every query: prune, spill (engages the server's -spill-dir tier), or empty for the server default")
		maxResib   = flag.Int64("max-resident-bytes", 0, "exit nonzero when the server's resident set (proxrank_process_resident_bytes, sampled during the run) ever exceeds this many bytes (0 = no gate)")

		// Distributed selfserve knobs.
		topology  = flag.String("topology", "single", `selfserve deployment: "single" or "coord:N" (N in-process shard servers behind a coordinator)`)
		shardsFl  = flag.Int("shards", 6, "selfserve coord topology: shards per relation")
		strategyF = flag.String("shard-strategy", "grid", "selfserve coord topology: partition strategy (hash|grid)")
		replicasF = flag.Int("replicas", 1, "selfserve coord topology: consecutive-peer owners per shard (the r of proxserve -own i/n/r)")
		identityF = flag.Bool("identity-check", false, "selfserve coord topology: replay fixed queries against a single-node twin and exit nonzero on any byte difference")
		chaosF    = flag.String("chaos", "", "selfserve coord topology: fault-injection spec applied to the first shard server (same grammar as proxserve -fault-spec); pair with -replicas 2 to study hedging and failover under load")
	)
	flag.Parse()

	base := *addr
	var baseVec []float64
	cfg := service.Config{
		Workers:            *workers,
		CacheSize:          *cacheSz,
		DefaultTimeout:     *timeout,
		StreamBuffer:       *streamBuf,
		StreamOverflow:     *overflowS,
		StreamBlockTimeout: *blockTo,
		SpillDir:           *spillDirF,
		SpillMemBytes:      *spillMemF,
	}
	if *selfserve {
		switch {
		case *topology == "single":
			srvURL, landmark, shutdown, err := startSelfServe(*city, *selfTuples, *selfDim, *selfProx, *srvSndbuf, cfg)
			if err != nil {
				log.Fatalf("proxload: selfserve: %v", err)
			}
			defer shutdown()
			base = srvURL
			baseVec = landmark
			if *selfTuples > 0 {
				log.Printf("selfserve: in-process proxserve on %s (synthetic %d tuples × dim %d, relfile=%v, streamBuffer %d)",
					srvURL, *selfTuples, *selfDim, *selfProx, *streamBuf)
			} else {
				log.Printf("selfserve: in-process proxserve on %s (city %s, streamBuffer %d)", srvURL, strings.ToUpper(*city), *streamBuf)
			}
		case strings.HasPrefix(*topology, "coord:"):
			n := 0
			if _, err := fmt.Sscanf(*topology, "coord:%d", &n); err != nil || n < 1 {
				log.Fatalf("proxload: -topology %q: want coord:N with N >= 1", *topology)
			}
			deploy, err := startCoordServe(*city, n, *shardsFl, *strategyF, *srvSndbuf, *replicasF, *chaosF, cfg)
			if err != nil {
				log.Fatalf("proxload: coord selfserve: %v", err)
			}
			defer deploy.shutdown()
			base = deploy.url
			baseVec = deploy.landmark
			log.Printf("selfserve: coordinator on %s over %d shard servers (city %s, %d %s shards/relation, %d replica(s)/shard)",
				deploy.url, n, strings.ToUpper(*city), *shardsFl, *strategyF, *replicasF)
			if *chaosF != "" {
				log.Printf("CHAOS: injecting faults into shard server 0 (%s)", *chaosF)
			}
			if *identityF {
				if err := deploy.identityCheck(cfg); err != nil {
					log.Fatalf("proxload: identity check FAILED: %v", err)
				}
				log.Printf("identity check: coordinator and single-node twin byte-identical on %d fixed queries", identityQueries)
			}
		default:
			log.Fatalf("proxload: -topology %q: want single or coord:N", *topology)
		}
	} else if *topology != "single" || *identityF || *chaosF != "" || *replicasF != 1 {
		log.Fatal("proxload: -topology/-identity-check/-chaos/-replicas require -selfserve")
	}
	if *baseFl != "" {
		v, err := parseVector(*baseFl)
		if err != nil {
			log.Fatalf("proxload: -query-base: %v", err)
		}
		baseVec = v
	}

	client := &http.Client{Timeout: *timeout}
	if err := waitReady(client, base, 30*time.Second); err != nil {
		log.Fatalf("proxload: %v", err)
	}
	relations, err := pickRelations(client, base, *relsFl)
	if err != nil {
		log.Fatalf("proxload: %v", err)
	}
	if baseVec == nil {
		baseVec = make([]float64, 2)
	}
	log.Printf("targeting %s, relations %v, rate %.0f/s for %v", base, relations, *rate, *duration)

	statsBefore, err := fetchStats(client, base)
	if err != nil {
		log.Fatalf("proxload: reading /v1/stats: %v", err)
	}
	metricsBefore, err := scrapeMetrics(client, base)
	if err != nil {
		log.Fatalf("proxload: %v", err)
	}

	gen := &generator{
		client:    client,
		base:      base,
		relations: relations,
		k:         *k,
		access:    *accessF,
		overflow:  *overflow,
		bufPolicy: *bufPolicy,
		streamFr:  *streamFr,
		hotFr:     *hotFr,
		baseVec:   baseVec,
		spread:    *spread,
		inflight:  make(chan struct{}, max(1, *maxInfl)),
	}
	rng := rand.New(rand.NewSource(*seed))
	gen.hot = make([][]float64, max(1, *hotSet))
	for i := range gen.hot {
		gen.hot[i] = gen.randVec(rng)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()

	// Resident-memory sampler: poll the server's own RSS gauge while the
	// load runs. The peak is reported always and gated by
	// -max-resident-bytes — the CI check behind the flat-RSS claim of
	// mmap-backed relations and the file spill tier.
	var residentPeak atomic.Int64
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		for {
			if snap, err := scrapeMetrics(client, base); err == nil {
				if rss := int64(snap.gauge("proxrank_process_resident_bytes")); rss > residentPeak.Load() {
					residentPeak.Store(rss)
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()

	// Slow clients: the adversarial subscribers. They all chase the
	// hottest query so they coalesce with (and pre-broker, delay) the
	// regular traffic on that key.
	var slowWG sync.WaitGroup
	var slowDropped atomic.Int64
	slowHTTP := &http.Client{Transport: &http.Transport{
		DialContext:     smallRcvbufDialer(*slowBuf).DialContext,
		MaxIdleConns:    *slowN,
		IdleConnTimeout: time.Second,
	}}
	for i := 0; i < *slowN; i++ {
		slowWG.Add(1)
		slowRng := rand.New(rand.NewSource(*seed + 1000 + int64(i)))
		go func() {
			defer slowWG.Done()
			gen.slowClient(ctx, slowHTTP, slowRng, *slowRead, &slowDropped)
		}()
	}

	start := time.Now()
	gen.run(ctx, rng, *rate)
	gen.wg.Wait()
	elapsed := time.Since(start)
	cancel()
	slowWG.Wait()
	samplerWG.Wait()

	statsAfter, err := fetchStats(client, base)
	if err != nil {
		log.Fatalf("proxload: reading /v1/stats: %v", err)
	}
	metricsAfter, err := scrapeMetrics(client, base)
	if err != nil {
		log.Fatalf("proxload: %v", err)
	}

	rep := gen.report(elapsed, statsBefore, statsAfter, slowDropped.Load())
	if metricsAfter != nil {
		rep.ServerDuration = summarizeHist(metricsAfter.delta(metricsBefore, "proxrank_query_duration_seconds"))
		rep.ServerTTFE = summarizeHist(metricsAfter.delta(metricsBefore, "proxrank_query_ttfe_seconds"))
		rep.SpillBytes = int64(metricsAfter.gauge("proxrank_spill_bytes_total") - metricsBefore.gauge("proxrank_spill_bytes_total"))
	}
	rep.ResidentPeakBytes = residentPeak.Load()
	rep.print(os.Stdout)
	if *jsonOut != "" {
		buf, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatalf("proxload: writing %s: %v", *jsonOut, err)
		}
	}
	// The exit code is the CI contract: a smoke run must fail loudly when
	// the server misbehaves, not just print an error count.
	done := rep.Batch.Count + rep.Stream.Count
	if done == 0 {
		log.Fatal("proxload: no request completed successfully")
	}
	if rate := float64(rep.Errors) / float64(done+rep.Errors); rate > *maxErrFr {
		log.Fatalf("proxload: error rate %.1f%% exceeds -max-error-rate %.1f%%", 100*rate, 100**maxErrFr)
	}
	if *maxResib > 0 {
		if peak := rep.ResidentPeakBytes; peak == 0 {
			log.Fatal("proxload: -max-resident-bytes set but the server exposed no proxrank_process_resident_bytes gauge")
		} else if peak > *maxResib {
			log.Fatalf("proxload: peak resident %d bytes (%.1f MiB) exceeds -max-resident-bytes %d",
				peak, float64(peak)/(1<<20), *maxResib)
		} else {
			log.Printf("resident gate OK: peak %.1f MiB <= ceiling %.1f MiB",
				float64(peak)/(1<<20), float64(*maxResib)/(1<<20))
		}
	}
}

// startSelfServe builds a catalog — the bundled city data set, or
// synthetic relations of tuples × dim when tuples > 0 — and serves it on
// a loopback port, returning the base URL, a sensible base query vector,
// and a shutdown func. With useRelfile the relations are written to
// mmap-ready .prox files in a temp directory and loaded file-backed:
// after admission the build-time heap is released, so the serving
// process's resident set reflects only what queries touch.
func startSelfServe(city string, tuples, dim int, useRelfile bool, sndbuf int, cfg service.Config) (string, []float64, func(), error) {
	var rels []*proxrank.Relation
	var query []float64
	if tuples > 0 {
		gcfg := proxrank.DefaultSyntheticConfig()
		gcfg.BaseTuples = tuples
		gcfg.Dim = dim
		gcfg.Seed = 11
		var err error
		rels, err = proxrank.SyntheticRelations(gcfg)
		if err != nil {
			return "", nil, nil, err
		}
		query = make([]float64, dim) // the shared region is centered at the origin
	} else {
		var cq proxrank.Vector
		var err error
		rels, cq, _, err = proxrank.CityDataset(strings.ToUpper(city))
		if err != nil {
			return "", nil, nil, err
		}
		query = []float64(cq)
	}
	cat := service.NewCatalog()
	cleanup := func() {}
	if useRelfile {
		dir, err := os.MkdirTemp("", "proxload-relfile-*")
		if err != nil {
			return "", nil, nil, err
		}
		cleanup = func() { _ = os.RemoveAll(dir) }
		for i, rel := range rels {
			sharded, err := proxrank.NewShardedRelation(rel, proxrank.AutoShardCount(rel.Len()), proxrank.GridPartition)
			if err != nil {
				cleanup()
				return "", nil, nil, err
			}
			path := fmt.Sprintf("%s/r%d%s", dir, i, proxrank.RelFileExtension)
			if err := proxrank.SaveRelFile(path, sharded); err != nil {
				cleanup()
				return "", nil, nil, err
			}
			if err := cat.LoadRelFile(rel.Name, path); err != nil {
				cleanup()
				return "", nil, nil, err
			}
		}
		// Drop the build-time copies and hand the pages back to the OS so
		// the resident gauge measures serving, not generation.
		rels = nil
		debug.FreeOSMemory()
	} else {
		for _, rel := range rels {
			// shards == 0: catalog admission auto-picks from relation size.
			if err := cat.RegisterSharded(rel.Name, rel, 0, proxrank.HashPartition); err != nil {
				cleanup()
				return "", nil, nil, err
			}
		}
	}
	exec := service.NewExecutor(cat, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, nil, err
	}
	if sndbuf > 0 {
		ln = clampSndbufListener(ln, sndbuf)
	}
	srv := &http.Server{Handler: service.NewServer(cat, exec).Handler()}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() { _ = srv.Close(); cleanup() }
	return "http://" + ln.Addr().String(), query, shutdown, nil
}

// coordDeploy is an in-process distributed deployment: N shard servers,
// a coordinator serving HTTP, and enough bookkeeping to replay queries
// against a single-node twin of the same data.
type coordDeploy struct {
	url      string
	landmark []float64
	coord    *service.Executor
	rels     []*proxrank.Relation
	names    []string
	shards   int
	strategy proxrank.PartitionStrategy
	shutdown func()
}

// startCoordServe builds the bundled city data set, partitions every
// relation, serves the shards from n in-process shard servers (server i
// owns shard s when i is among the replicas consecutive peers starting
// at s%n), and fronts them with a coordinator listening on a loopback
// port — the same deployment `proxserve -shard-server` × n plus
// `proxserve -coordinator` builds across processes, minus the process
// boundaries. A non-empty chaosSpec puts server 0 behind a
// fault-injecting listener, so the run measures resilience (hedges,
// failover, degradation) instead of the happy path.
func startCoordServe(city string, n, shards int, strategyName string, sndbuf, replicas int, chaosSpec string, cfg service.Config) (*coordDeploy, error) {
	rels, query, _, err := proxrank.CityDataset(strings.ToUpper(city))
	if err != nil {
		return nil, err
	}
	strategy, err := proxrank.ParsePartitionStrategy(strategyName)
	if err != nil {
		return nil, err
	}
	if replicas < 1 || replicas > n {
		return nil, fmt.Errorf("-replicas %d: want 1 <= r <= %d shard servers", replicas, n)
	}
	var inj *faultinject.Injector
	if chaosSpec != "" {
		inj, err = faultinject.Parse(chaosSpec)
		if err != nil {
			return nil, fmt.Errorf("-chaos: %w", err)
		}
	}
	var cleanups []func()
	shutdown := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		cat := service.NewCatalog()
		for _, rel := range rels {
			if err := cat.RegisterSharded(rel.Name, rel, shards, strategy); err != nil {
				shutdown()
				return nil, err
			}
		}
		exec := service.NewExecutor(cat, cfg)
		backend := service.NewShardBackend(cat, exec, service.Ownership{Index: i, Count: n, Replicas: replicas})
		srv := shardrpc.NewServer(backend)
		var bound net.Addr
		if i == 0 && inj != nil {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				shutdown()
				return nil, err
			}
			if err := srv.Serve(inj.Listener(ln)); err != nil {
				shutdown()
				return nil, err
			}
			bound = ln.Addr()
		} else {
			bound, err = srv.Listen("127.0.0.1:0")
			if err != nil {
				shutdown()
				return nil, err
			}
		}
		backend.SetName(bound.String())
		addrs[i] = bound.String()
		cleanups = append(cleanups, srv.Close)
	}

	fleet := shardrpc.NewFleet(addrs)
	cleanups = append(cleanups, fleet.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	remotes, err := fleet.Discover(ctx)
	cancel()
	if err != nil {
		shutdown()
		return nil, err
	}
	coordCat := service.NewCatalog()
	var names []string
	for name, rr := range remotes {
		if err := coordCat.RegisterRemote(name, rr); err != nil {
			shutdown()
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	coordExec := service.NewExecutor(coordCat, cfg)
	apiSrv := service.NewServer(coordCat, coordExec)
	apiSrv.AttachFleet(fleet)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		shutdown()
		return nil, err
	}
	if sndbuf > 0 {
		ln = clampSndbufListener(ln, sndbuf)
	}
	httpSrv := &http.Server{Handler: apiSrv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	cleanups = append(cleanups, func() { _ = httpSrv.Close() })

	return &coordDeploy{
		url:      "http://" + ln.Addr().String(),
		landmark: []float64(query),
		coord:    coordExec,
		rels:     rels,
		names:    names,
		shards:   shards,
		strategy: strategy,
		shutdown: shutdown,
	}, nil
}

// identityQueries is the size of the fixed query set -identity-check
// replays: the landmark plus deterministic offsets around it, each at a
// different K, batch path, default algorithm and access.
const identityQueries = 8

// identityCheck replays the fixed query set against the coordinator
// executor and a freshly built single-node twin of the same relations,
// failing on the first byte-level difference between the canonicalized
// responses (wall-clock cost fields excluded — everything else,
// including float score bits, must match).
func (d *coordDeploy) identityCheck(cfg service.Config) error {
	cfg.CacheSize = -1 // compare engine answers, not cache luck
	twinCat := service.NewCatalog()
	for _, rel := range d.rels {
		if err := twinCat.RegisterSharded(rel.Name, rel, d.shards, d.strategy); err != nil {
			return err
		}
	}
	twin := service.NewExecutor(twinCat, cfg)
	relations := d.names
	if len(relations) > 2 {
		relations = relations[:2]
	}
	for i := 0; i < identityQueries; i++ {
		vec := make([]float64, len(d.landmark))
		for j, b := range d.landmark {
			vec[j] = b + 0.01*float64(i-identityQueries/2)*float64(j+1)
		}
		req := &service.QueryRequest{Query: vec, Relations: relations, K: 2 + i%5}
		want, err := twin.Execute(context.Background(), req)
		if err != nil {
			return fmt.Errorf("query %d: single-node twin: %w", i, err)
		}
		got, err := d.coord.Execute(context.Background(), req)
		if err != nil {
			return fmt.Errorf("query %d: coordinator: %w", i, err)
		}
		w, g := canonicalResponse(want), canonicalResponse(got)
		if w != g {
			return fmt.Errorf("query %d: responses differ\nsingle-node: %s\ncoordinator: %s", i, w, g)
		}
	}
	return nil
}

// canonicalResponse strips wall-clock fields and renders the response as
// JSON; Go's float64 marshaling is shortest-round-trip, so score bits
// survive into the comparison.
func canonicalResponse(resp *service.QueryResponse) string {
	c := *resp
	c.Cost.ElapsedMicros = 0
	c.Cached = false
	buf, _ := json.Marshal(&c)
	return string(buf)
}

// waitReady blocks until the target answers GET /v1/readyz with 200 —
// the startup gate that keeps the load run from measuring index builds
// or an uncovered fleet as query latency. Servers predating the
// endpoint (404) fall back to /v1/healthz.
func waitReady(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	probe := base + "/v1/readyz"
	for {
		resp, err := client.Get(probe)
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
			if code == http.StatusNotFound && strings.HasSuffix(probe, "/v1/readyz") {
				probe = base + "/v1/healthz"
				continue
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v (last probe %s)", budget, probe)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// pickRelations resolves the relation list: the -rel flag verbatim, or
// the first two names the server reports.
func pickRelations(client *http.Client, base, flagVal string) ([]string, error) {
	if flagVal != "" {
		return strings.Split(flagVal, ","), nil
	}
	resp, err := client.Get(base + "/v1/relations")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var raw bytes.Buffer
		_, _ = raw.ReadFrom(resp.Body)
		return nil, fmt.Errorf("GET /v1/relations: status %d: %s", resp.StatusCode, bytes.TrimSpace(raw.Bytes()))
	}
	var body struct {
		Relations []struct {
			Name string `json:"name"`
		} `json:"relations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding /v1/relations: %w", err)
	}
	if len(body.Relations) < 2 {
		return nil, fmt.Errorf("server has %d relations; need at least 2 (or pass -rel)", len(body.Relations))
	}
	names := []string{body.Relations[0].Name, body.Relations[1].Name}
	return names, nil
}

// serverStats is the slice of /v1/stats proxload reports deltas of.
type serverStats struct {
	Queries             int64 `json:"queries"`
	CacheHits           int64 `json:"cacheHits"`
	CacheMisses         int64 `json:"cacheMisses"`
	Coalesced           int64 `json:"coalesced"`
	EngineRuns          int64 `json:"engineRuns"`
	StreamsBrokered     int64 `json:"streamsBrokered"`
	MidRunAttaches      int64 `json:"midRunAttaches"`
	SlowSubscriberDrops int64 `json:"slowSubscriberDrops"`
	Rejected            int64 `json:"rejected"`
	Canceled            int64 `json:"canceled"`
	RemoteStreamsOpened int64 `json:"remoteStreamsOpened"`
	ShardsPruned        int64 `json:"shardsPruned"`
}

func fetchStats(client *http.Client, base string) (serverStats, error) {
	var st serverStats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func (a serverStats) sub(b serverStats) serverStats {
	return serverStats{
		Queries:             a.Queries - b.Queries,
		CacheHits:           a.CacheHits - b.CacheHits,
		CacheMisses:         a.CacheMisses - b.CacheMisses,
		Coalesced:           a.Coalesced - b.Coalesced,
		EngineRuns:          a.EngineRuns - b.EngineRuns,
		StreamsBrokered:     a.StreamsBrokered - b.StreamsBrokered,
		MidRunAttaches:      a.MidRunAttaches - b.MidRunAttaches,
		SlowSubscriberDrops: a.SlowSubscriberDrops - b.SlowSubscriberDrops,
		Rejected:            a.Rejected - b.Rejected,
		Canceled:            a.Canceled - b.Canceled,
		RemoteStreamsOpened: a.RemoteStreamsOpened - b.RemoteStreamsOpened,
		ShardsPruned:        a.ShardsPruned - b.ShardsPruned,
	}
}

// generator owns the load loop and its measurements.
type generator struct {
	client    *http.Client
	base      string
	relations []string
	k         int
	access    string
	overflow  string
	bufPolicy string
	streamFr  float64
	hotFr     float64
	hot       [][]float64
	baseVec   []float64
	spread    float64
	inflight  chan struct{}

	wg   sync.WaitGroup
	shed atomic.Int64

	// hotLive, when set, overrides the static hot set: each slow client
	// publishes the fresh vector it is about to stream, so regular hot
	// traffic follows the same in-flight key — the "trending query with a
	// slow leader" scenario the delivery broker exists for.
	hotLive atomic.Pointer[[]float64]

	mu      sync.Mutex
	batchNs []float64 // end-to-end latency, batch
	strmNs  []float64 // end-to-end latency, stream
	ttfeNs  []float64 // time to first event, stream
	errs    int
	errCode map[string]int // failures keyed by structured api code (or "transport")
	firstEr error
}

// errCodeOf buckets one failure for the report: the structured api
// error code when the server answered with one, "transport" otherwise.
func errCodeOf(err error) string {
	var ae *api.Error
	if errors.As(err, &ae) && ae.Code != "" {
		return string(ae.Code)
	}
	return "transport"
}

// randVec draws a query vector around the base point.
func (g *generator) randVec(rng *rand.Rand) []float64 {
	v := make([]float64, len(g.baseVec))
	for i, b := range g.baseVec {
		v[i] = b + (rng.Float64()*2-1)*g.spread
	}
	return v
}

// run fires arrivals until ctx expires. Inter-arrival gaps are
// exponential with mean 1/rate — an open loop: the schedule never slows
// down because the server did.
func (g *generator) run(ctx context.Context, rng *rand.Rand, rate float64) {
	if rate <= 0 {
		rate = 1
	}
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		stream := rng.Float64() < g.streamFr
		var vec []float64
		if rng.Float64() < g.hotFr {
			if p := g.hotLive.Load(); p != nil {
				vec = *p
			} else {
				vec = g.hot[rng.Intn(len(g.hot))]
			}
		} else {
			vec = g.randVec(rng)
		}
		select {
		case g.inflight <- struct{}{}:
			g.wg.Add(1)
			go func() {
				defer g.wg.Done()
				defer func() { <-g.inflight }()
				g.fire(vec, stream)
			}()
		default:
			g.shed.Add(1)
		}
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		timer.Reset(gap)
	}
}

// body builds the request JSON once per arrival.
func (g *generator) body(vec []float64) []byte {
	req := api.Request{Query: vec, Relations: g.relations, K: g.k, Access: g.access, Overflow: g.overflow, BufferPolicy: g.bufPolicy}
	buf, _ := json.Marshal(&req)
	return buf
}

// parseVector parses "x,y,..." into a float vector.
func parseVector(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	v := make([]float64, len(parts))
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &v[i]); err != nil {
			return nil, fmt.Errorf("component %d %q: %w", i, p, err)
		}
	}
	return v, nil
}

// fire issues one query and records its measurements.
func (g *generator) fire(vec []float64, stream bool) {
	if stream {
		ttfe, total, err := g.fireStream(vec)
		g.record(err, func() {
			g.strmNs = append(g.strmNs, float64(total))
			g.ttfeNs = append(g.ttfeNs, float64(ttfe))
		})
		return
	}
	start := time.Now()
	resp, err := g.client.Post(g.base+"/v1/query", "application/json", bytes.NewReader(g.body(vec)))
	if err == nil {
		var sink struct {
			Results []json.RawMessage `json:"results"`
			Error   *api.Error        `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sink)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			// Prefer the structured error body (code buckets in the
			// report) over the bare status line.
			if sink.Error != nil {
				err = sink.Error
			} else {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
		}
	}
	total := time.Since(start)
	g.record(err, func() { g.batchNs = append(g.batchNs, float64(total)) })
}

// fireStream issues one streaming query, measuring time to first event
// and end-to-end drain time.
func (g *generator) fireStream(vec []float64) (ttfe, total time.Duration, err error) {
	start := time.Now()
	resp, err := g.client.Post(g.base+"/v1/query/stream", "application/json", bytes.NewReader(g.body(vec)))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var errBody struct {
			Error *api.Error `json:"error"`
		}
		if jerr := json.NewDecoder(resp.Body).Decode(&errBody); jerr == nil && errBody.Error != nil {
			return 0, 0, errBody.Error
		}
		return 0, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	first := true
	for {
		line, rerr := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 && first {
			ttfe = time.Since(start)
			first = false
		}
		if rerr != nil {
			break
		}
		var ev struct {
			Type  string     `json:"type"`
			Error *api.Error `json:"error"`
		}
		if jerr := json.Unmarshal(line, &ev); jerr != nil {
			return 0, 0, fmt.Errorf("bad stream line: %w", jerr)
		}
		if ev.Type == "error" {
			return 0, 0, ev.Error
		}
		if ev.Type == "summary" {
			return ttfe, time.Since(start), nil
		}
	}
	return 0, 0, fmt.Errorf("stream ended without a summary")
}

// record folds one finished request into the tallies.
func (g *generator) record(err error, ok func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err != nil {
		g.errs++
		if g.errCode == nil {
			g.errCode = make(map[string]int)
		}
		g.errCode[errCodeOf(err)]++
		if g.firstEr == nil {
			g.firstEr = err
		}
		return
	}
	ok()
}

// slowClient loops streaming queries, stalling slowRead per event — the
// client the broker protects everyone else from. Each connection streams
// a fresh vector and publishes it as the live hot key, so this client is
// the single-flight leader of a query the regular traffic is busy
// coalescing on. Overflow drops (overloaded status or in-band error
// events) are counted, not failed.
func (g *generator) slowClient(ctx context.Context, client *http.Client, rng *rand.Rand, slowRead time.Duration, dropped *atomic.Int64) {
	for ctx.Err() == nil {
		vec := g.randVec(rng)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			g.base+"/v1/query/stream", bytes.NewReader(g.body(vec)))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			// ctx expiry or transport failure: back off instead of
			// hot-looping against a dead server; the loop recheck exits.
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		br := bufio.NewReader(resp.Body)
		published := false
		for {
			line, rerr := br.ReadBytes('\n')
			if rerr != nil {
				break
			}
			if !published {
				// First event read: this client provably owns the query's
				// single-flight key mid-run. Only now is the vector
				// published as "trending", so the regular hot traffic
				// coalesces behind this slow leader rather than winning the
				// key first.
				published = true
				g.hotLive.Store(&vec)
			}
			if bytes.Contains(line, []byte(`"error"`)) && bytes.Contains(line, []byte("overloaded")) {
				dropped.Add(1)
				break
			}
			select {
			case <-ctx.Done():
			case <-time.After(slowRead):
			}
		}
		resp.Body.Close()
	}
}

// quantiles of a sample, in milliseconds.
type latencyMs struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50Ms"`
	P95   float64 `json:"p95Ms"`
	P99   float64 `json:"p99Ms"`
	Mean  float64 `json:"meanMs"`
	Max   float64 `json:"maxMs"`
}

func summarize(ns []float64) latencyMs {
	if len(ns) == 0 {
		return latencyMs{}
	}
	sort.Float64s(ns)
	q := func(p float64) float64 {
		i := int(p * float64(len(ns)-1))
		return ns[i] / 1e6
	}
	sum := 0.0
	for _, v := range ns {
		sum += v
	}
	return latencyMs{
		Count: len(ns),
		P50:   q(0.50),
		P95:   q(0.95),
		P99:   q(0.99),
		Mean:  sum / float64(len(ns)) / 1e6,
		Max:   ns[len(ns)-1] / 1e6,
	}
}

// report is the run's full output, printable and JSON-serializable.
type report struct {
	ElapsedSec   float64        `json:"elapsedSec"`
	OfferedRPS   float64        `json:"offeredRps"`
	AchievedRPS  float64        `json:"achievedRps"`
	Shed         int64          `json:"shed"`
	Errors       int            `json:"errors"`
	ErrorsByCode map[string]int `json:"errorsByCode,omitempty"`
	FirstError   string         `json:"firstError,omitempty"`
	Batch        latencyMs      `json:"batch"`
	Stream       latencyMs      `json:"stream"`
	TTFE         latencyMs      `json:"ttfe"`
	SlowDropped  int64          `json:"slowClientDrops"`
	Server       serverStats    `json:"serverDelta"`
	// ServerDuration/ServerTTFE are the run's deltas of the server's own
	// /metrics histograms (all modes and cache states folded together) —
	// the executor's view of the same requests the client percentiles
	// time from the outside.
	ServerDuration serverHist `json:"serverDurationHist"`
	ServerTTFE     serverHist `json:"serverTtfeHist"`
	// ResidentPeakBytes is the largest proxrank_process_resident_bytes
	// sample observed while the load ran (0 when the server exposes no
	// gauge); SpillBytes is the run's delta of proxrank_spill_bytes_total.
	ResidentPeakBytes int64 `json:"residentPeakBytes,omitempty"`
	SpillBytes        int64 `json:"spillBytes,omitempty"`
}

func (g *generator) report(elapsed time.Duration, before, after serverStats, slowDropped int64) report {
	g.mu.Lock()
	defer g.mu.Unlock()
	delta := after.sub(before)
	done := len(g.batchNs) + len(g.strmNs)
	r := report{
		ElapsedSec:   elapsed.Seconds(),
		OfferedRPS:   float64(done+g.errs+int(g.shed.Load())) / elapsed.Seconds(),
		AchievedRPS:  float64(done) / elapsed.Seconds(),
		Shed:         g.shed.Load(),
		Errors:       g.errs,
		ErrorsByCode: g.errCode,
		Batch:        summarize(g.batchNs),
		Stream:       summarize(g.strmNs),
		TTFE:         summarize(g.ttfeNs),
		SlowDropped:  slowDropped,
		Server:       delta,
	}
	if g.firstEr != nil {
		r.FirstError = g.firstEr.Error()
	}
	return r
}

func (r report) print(w *os.File) {
	fmt.Fprintf(w, "\nproxload report (%.1fs, offered %.0f rps, achieved %.0f rps, shed %d, errors %d)\n",
		r.ElapsedSec, r.OfferedRPS, r.AchievedRPS, r.Shed, r.Errors)
	if r.FirstError != "" {
		fmt.Fprintf(w, "  first error: %s\n", r.FirstError)
	}
	if len(r.ErrorsByCode) > 0 {
		codes := make([]string, 0, len(r.ErrorsByCode))
		for c := range r.ErrorsByCode {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		fmt.Fprintf(w, "  errors by code:")
		for _, c := range codes {
			fmt.Fprintf(w, " %s=%d", c, r.ErrorsByCode[c])
		}
		fmt.Fprintln(w)
	}
	row := func(name string, l latencyMs) {
		fmt.Fprintf(w, "  %-18s %6d  p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  mean %8.2fms  max %8.2fms\n",
			name, l.Count, l.P50, l.P95, l.P99, l.Mean, l.Max)
	}
	row("batch latency", r.Batch)
	row("stream latency", r.Stream)
	row("stream TTFE", r.TTFE)
	srow := func(name string, h serverHist) {
		if h.Count == 0 {
			return
		}
		fmt.Fprintf(w, "  %-18s %6d  p50 %8.2fms  p95 %8.2fms  p99 %8.2fms  mean %8.2fms  (server /metrics)\n",
			name, h.Count, h.P50Ms, h.P95Ms, h.P99Ms, h.MeanMs)
	}
	srow("server latency", r.ServerDuration)
	srow("server TTFE", r.ServerTTFE)
	d := r.Server
	fmt.Fprintf(w, "  server delta: queries %d, cacheHits %d (%.0f%%), coalesced %d, engineRuns %d\n",
		d.Queries, d.CacheHits, pct(d.CacheHits, d.Queries), d.Coalesced, d.EngineRuns)
	fmt.Fprintf(w, "                brokered %d, midRunAttaches %d, slowSubscriberDrops %d, rejected %d, canceled %d\n",
		d.StreamsBrokered, d.MidRunAttaches, d.SlowSubscriberDrops, d.Rejected, d.Canceled)
	if d.RemoteStreamsOpened > 0 || d.ShardsPruned > 0 {
		fmt.Fprintf(w, "                remoteStreamsOpened %d, shardsPruned %d (%.0f%% of remote shard sources)\n",
			d.RemoteStreamsOpened, d.ShardsPruned, pct(d.ShardsPruned, d.ShardsPruned+d.RemoteStreamsOpened))
	}
	if r.SlowDropped > 0 {
		fmt.Fprintf(w, "  slow clients dropped by overflow policy: %d\n", r.SlowDropped)
	}
	if r.ResidentPeakBytes > 0 {
		fmt.Fprintf(w, "  server resident peak: %.1f MiB", float64(r.ResidentPeakBytes)/(1<<20))
		if r.SpillBytes > 0 {
			fmt.Fprintf(w, "  (spilled %.1f MiB to disk)", float64(r.SpillBytes)/(1<<20))
		}
		fmt.Fprintln(w)
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
