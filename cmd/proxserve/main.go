// Command proxserve serves proximity rank join queries over HTTP: it
// loads relations into a shared catalog (CSV files and/or the bundled
// simulated city data sets), precomputes their indexes once, and answers
// concurrent queries through a bounded executor with per-query deadlines
// and an LRU result cache.
//
// Relations can be partitioned into shards — per-shard indexes built in
// parallel at load, streams merged per query with byte-identical results
// — via the global -shards flag or a per-relation ":N" suffix on -rel.
//
// Stream delivery is brokered: the engine runs each streamed query to
// completion at engine speed into a bounded per-query buffer and a slow
// client drains at its own pace without holding a worker slot, governed
// by -stream-buffer, -stream-overflow, and -stream-block-timeout.
//
// Distributed serving splits one logical deployment across processes:
// shard servers load the full data set but serve only the shards they
// own over a length-prefixed RPC protocol, and a coordinator discovers
// them, registers their relations as remote entries, and k-way-merges
// their shard streams into byte-identical answers — skipping (pruning)
// every remote shard whose bounding metadata proves it cannot
// contribute. All servers must load identical data with identical
// -shards and -shard-strategy so the global partition agrees.
//
// Usage:
//
//	proxserve -addr :8080 -city SF
//	proxserve -rel hotels=hotels.csv -rel food=food.csv -workers 8
//	proxserve -city NY -shards 8 -shard-strategy grid
//	proxserve -rel hotels=hotels.csv:4 -rel food=food.csv
//
//	# memory-bounded: mmap prebuilt relfiles, spill enumeration to disk
//	proxserve -rel hotels=hotels.prox -rel food=food.prox -spill-dir /tmp/spill
//
//	# a 2-server distributed deployment plus its coordinator:
//	proxserve -city SF -shards 8 -shard-server -rpc-addr :9001 -own 0/2
//	proxserve -city SF -shards 8 -shard-server -rpc-addr :9002 -own 1/2
//	proxserve -coordinator -peers localhost:9001,localhost:9002 -addr :8080
//
// Endpoints (queries speak the versioned api.Request model; /v1/topk is
// the legacy alias of /v1/query):
//
//	POST   /v1/query         {"query":[x,y],"relations":["SF-hotels","SF-restaurants"],"k":5}
//	POST   /v1/query/stream  same body; NDJSON result events, first result
//	                         flushed as soon as the engine certifies it
//	POST   /v1/topk          legacy alias of /v1/query
//	GET    /v1/relations
//	POST   /v1/relations?name=bars&shards=4   (CSV body)
//	DELETE /v1/relations/{name}
//	GET    /v1/healthz       liveness (200 while the process runs)
//	GET    /v1/readyz        readiness (503 while the catalog builds or
//	                         some shard has no reachable replica)
//	GET    /v1/stats
//	GET    /metrics          Prometheus text exposition
//
// Observability: -slow-query logs requests past a duration threshold as
// JSON lines (same trace structure the api's trace flag returns), and
// -debug-addr opens the net/http/pprof endpoints on a separate listener
// kept off the serving mux.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	proxrank "repro"
	"repro/api"
	"repro/internal/faultinject"
	"repro/internal/shardrpc"
	"repro/service"
)

// listFlag collects a repeatable string flag.
type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

// logRegistered reports one registration with its catalog-side shape.
func logRegistered(cat *service.Catalog, name, origin string) {
	if e, err := cat.Get(name); err == nil {
		log.Printf("registered %s (%d tuples, %d shard(s), %s)", name, e.Relation().Len(), e.Shards(), origin)
	}
}

func main() {
	var (
		rels   listFlag
		cities listFlag
	)
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "max concurrent engine executions (0 = GOMAXPROCS)")
		cache      = flag.Int("cache", service.DefaultCacheSize, "LRU result-cache capacity in responses (negative disables)")
		timeout    = flag.Duration("timeout", 10*time.Second, "default per-query deadline (0 = none)")
		maxTimeout = flag.Duration("max-timeout", service.DefaultMaxTimeout, "cap on client-requested timeoutMillis")
		maxK       = flag.Int("maxk", service.DefaultMaxK, "largest accepted K")
		shards     = flag.Int("shards", 1, "default shard count per relation (partitioned indexes, merged per query)")
		strategyFl = flag.String("shard-strategy", "hash", "partitioning strategy: hash or grid")
		streamBuf  = flag.Int("stream-buffer", service.DefaultStreamBuffer,
			"stream delivery buffer: events a client may lag behind the engine (negative couples delivery to the sink)")
		overflowFl = flag.String("stream-overflow", service.DefaultStreamOverflow,
			"policy for a stream client that falls a full buffer behind: block (wait, then drop) or drop (immediately)")
		blockFl = flag.Duration("stream-block-timeout", service.DefaultStreamBlockTimeout,
			"total time the engine will wait on one block-policy laggard before dropping it")
		debugAddr = flag.String("debug-addr", "",
			"listen address for the net/http/pprof profiling endpoints (empty = disabled); keep it off public interfaces")
		slowQuery = flag.Duration("slow-query", 0,
			"log every request at least this slow as a JSON line on stderr, with its per-phase trace (0 = disabled)")
		shardServer = flag.Bool("shard-server", false,
			"serve locally-owned shards to coordinators over the shard RPC protocol on -rpc-addr")
		rpcAddr = flag.String("rpc-addr", ":8081",
			"shard RPC listen address (with -shard-server)")
		ownFl = flag.String("own", "",
			"shard ownership as i/n or i/n/r: serve shard s when this server is one of its r consecutive ring owners starting at s%n (empty = every shard)")
		coordinator = flag.Bool("coordinator", false,
			"discover relations from -peers shard servers and answer queries by merging their shard streams")
		peersFl = flag.String("peers", "",
			"comma-separated shard-server RPC addresses (with -coordinator)")
		hedgeAfter = flag.Duration("hedge-after", 0,
			"coordinator: hedge a slow shard pull to another replica after this delay (0 = adaptive per-peer p90, negative = never hedge)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0,
			"coordinator: how long a peer's circuit breaker stays open before probing it again (0 = default 1s)")
		faultSpec = flag.String("fault-spec", "",
			"inject faults into the shard RPC listener per this spec (chaos testing only; refused unless PROXSERVE_CHAOS=1)")
		spillDir = flag.String("spill-dir", "",
			"directory for the file spill tier of BufferSpill sessions: enumeration past the in-memory slab goes to disk segments, keeping resident memory flat (empty = RAM only)")
		spillMem = flag.Int("spill-mem", 0,
			"per-session in-memory spill slab budget in bytes before segments go to -spill-dir (0 = 4 MiB default)")
	)
	flag.Var(&rels, "rel", "relation to serve, as name=path.csv[:shards] or name=path.prox (mmap-backed relfile; repeatable)")
	flag.Var(&cities, "city", "simulated city data set to serve: SF, NY, BO, DA, HO (repeatable)")
	flag.Parse()

	strategy, err := proxrank.ParsePartitionStrategy(*strategyFl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
		os.Exit(2)
	}
	overflow := strings.ToLower(*overflowFl)
	if overflow != api.OverflowBlock && overflow != api.OverflowDrop {
		fmt.Fprintf(os.Stderr, "proxserve: -stream-overflow %q must be %s or %s\n",
			*overflowFl, api.OverflowBlock, api.OverflowDrop)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "proxserve: -shards %d must be at least 1\n", *shards)
		os.Exit(2)
	}

	cat := service.NewCatalog()
	for _, spec := range rels {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(os.Stderr, "proxserve: -rel wants name=path.csv[:shards], got %q\n", spec)
			os.Exit(2)
		}
		// A trailing ":N" on the path overrides the global -shards default
		// for this relation.
		relShards := *shards
		if i := strings.LastIndex(path, ":"); i >= 0 {
			if n, err := strconv.Atoi(path[i+1:]); err == nil && n >= 1 {
				relShards = n
				path = path[:i]
			}
		}
		// A .prox path is a prebuilt relfile: memory-map it as-is (its
		// shard layout was fixed at build time, so ":N" does not apply).
		if strings.HasSuffix(path, proxrank.RelFileExtension) {
			if err := cat.LoadRelFile(name, path); err != nil {
				fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
				os.Exit(1)
			}
			logRegistered(cat, name, "mmap from "+path)
			continue
		}
		if err := cat.LoadCSVFileSharded(name, path, 0, relShards, strategy); err != nil {
			fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
			os.Exit(1)
		}
		logRegistered(cat, name, "from "+path)
	}
	for _, code := range cities {
		cityRels, _, landmark, err := proxrank.CityDataset(strings.ToUpper(code))
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
			os.Exit(1)
		}
		for _, rel := range cityRels {
			if err := cat.RegisterSharded(rel.Name, rel, *shards, strategy); err != nil {
				fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
				os.Exit(1)
			}
			logRegistered(cat, rel.Name, "landmark "+landmark)
		}
	}
	// Coordinator mode: hello every peer, cross-check what they agree to
	// serve, and register each remote relation as a metadata-only entry
	// whose shards resolve to RPC streams at query time. Locally loaded
	// relations keep precedence over a remote relation of the same name.
	var fleet *shardrpc.Fleet
	if *coordinator {
		if *peersFl == "" {
			fmt.Fprintln(os.Stderr, "proxserve: -coordinator needs -peers host:port,...")
			os.Exit(2)
		}
		fleet = shardrpc.NewFleet(strings.Split(*peersFl, ","))
		// Resilience policy must be set before Discover: discovery stamps
		// the hedge policy into every remote relation it registers.
		switch {
		case *hedgeAfter < 0:
			fleet.Hedge = shardrpc.HedgePolicy{Disable: true}
		case *hedgeAfter > 0:
			fleet.Hedge = shardrpc.HedgePolicy{After: *hedgeAfter}
		}
		if *breakerCooldown > 0 {
			fleet.SetBreakerConfig(shardrpc.BreakerConfig{Cooldown: *breakerCooldown})
		}
		discoverCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		remotes, err := fleet.Discover(discoverCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
			os.Exit(1)
		}
		for name, rr := range remotes {
			if _, err := cat.Get(name); err == nil {
				log.Printf("relation %s is loaded locally; ignoring the remote copy", name)
				continue
			}
			if err := cat.RegisterRemote(name, rr); err != nil {
				fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
				os.Exit(1)
			}
			log.Printf("registered %s (%d tuples, %d shard(s), remote via %d peer(s))",
				name, rr.Tuples, rr.Shards, len(fleet.Peers()))
		}
	}
	if cat.Len() == 0 {
		fmt.Fprintln(os.Stderr, "proxserve: no relations to serve; pass -rel, -city, or -coordinator -peers")
		os.Exit(2)
	}

	exec := service.NewExecutor(cat, service.Config{
		Workers:            *workers,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		CacheSize:          *cache,
		MaxK:               *maxK,
		StreamBuffer:       *streamBuf,
		StreamOverflow:     overflow,
		StreamBlockTimeout: *blockFl,
		SlowQueryThreshold: *slowQuery,
		SlowQueryLog:       os.Stderr,
		SpillDir:           *spillDir,
		SpillMemBytes:      *spillMem,
	})
	apiServer := service.NewServer(cat, exec)
	if fleet != nil {
		apiServer.AttachFleet(fleet)
	}

	// Shard-server mode: expose this process's owned shards (and whole
	// queries) over the RPC listener, alongside the normal HTTP API.
	var rpcSrv *shardrpc.Server
	if *shardServer {
		own, err := service.ParseOwnership(*ownFl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
			os.Exit(2)
		}
		backend := service.NewShardBackend(cat, exec, own)
		rpcSrv = shardrpc.NewServer(backend)
		var bound net.Addr
		if *faultSpec != "" {
			// Chaos builds only: the env gate keeps a copy-pasted chaos
			// command line from silently corrupting a production server.
			if os.Getenv("PROXSERVE_CHAOS") != "1" {
				fmt.Fprintln(os.Stderr, "proxserve: -fault-spec is a chaos-testing flag; set PROXSERVE_CHAOS=1 to confirm")
				os.Exit(2)
			}
			inj, err := faultinject.Parse(*faultSpec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proxserve: %v\n", err)
				os.Exit(2)
			}
			ln, err := net.Listen("tcp", *rpcAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proxserve: shard RPC listener: %v\n", err)
				os.Exit(1)
			}
			if err := rpcSrv.Serve(inj.Listener(ln)); err != nil {
				fmt.Fprintf(os.Stderr, "proxserve: shard RPC listener: %v\n", err)
				os.Exit(1)
			}
			bound = ln.Addr()
			log.Printf("CHAOS: injecting faults on the shard RPC listener (%d rule(s))", len(inj.Rules()))
		} else {
			b, err := rpcSrv.Listen(*rpcAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "proxserve: shard RPC listener: %v\n", err)
				os.Exit(1)
			}
			bound = b
		}
		backend.SetName(bound.String())
		log.Printf("shard RPC on %s (owning %s)", bound, ownDesc(*ownFl))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           apiServer.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *debugAddr != "" {
		// The profiling endpoints live on their own listener and mux so
		// they can stay bound to localhost while the API faces the world,
		// and so the serving mux never inherits the pprof routes.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			dbgSrv := &http.Server{Addr: *debugAddr, Handler: dbg, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("proxserve: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d relations on %s", cat.Len(), *addr)

	select {
	case err := <-errc:
		log.Fatalf("proxserve: %v", err)
	case <-ctx.Done():
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("proxserve: shutdown: %v", err)
		}
		if rpcSrv != nil {
			rpcSrv.Close()
		}
		if fleet != nil {
			fleet.Close()
		}
		st := exec.Stats()
		log.Printf("served %d queries (%d cache hits, %d canceled)", st.Queries, st.CacheHits, st.Canceled)
	}
}

// ownDesc renders the -own flag for logs.
func ownDesc(own string) string {
	if own == "" {
		return "every shard"
	}
	return "shards " + own
}
