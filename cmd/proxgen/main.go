// Command proxgen writes synthetic or simulated-city relations to CSV
// files or the mmap-ready relfile format (.prox), for use with
// cmd/proxrank, cmd/proxserve, or external tools.
//
// Usage:
//
//	proxgen -out data/ -n 3 -d 2 -density 100 -tuples 400 -seed 7
//	proxgen -out data/ -city NY
//	proxgen -out data/ -format relfile -tuples 1000000 -shards 0
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	proxrank "repro"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		city     = flag.String("city", "", "emit a simulated city dataset instead of synthetic data")
		n        = flag.Int("n", 2, "number of relations")
		d        = flag.Int("d", 2, "feature dimensions")
		density  = flag.Float64("density", 100, "tuples per volume unit (rho)")
		skew     = flag.Float64("skew", 1, "density multiplier of relation 1 (rho1/rho2)")
		tuples   = flag.Int("tuples", 400, "tuples per unskewed relation")
		seed     = flag.Int64("seed", 0, "generator seed")
		format   = flag.String("format", "csv", "output format: csv or relfile (.prox, columnar, opened O(1) by proxserve)")
		shards   = flag.Int("shards", 0, "relfile shard count (0 = auto from relation size)")
		strategy = flag.String("shard-strategy", "hash", "relfile partition strategy: hash or grid")
	)
	flag.Parse()

	if *format != "csv" && *format != "relfile" {
		fatal("unknown -format %q (want csv or relfile)", *format)
	}
	strat, err := proxrank.ParsePartitionStrategy(*strategy)
	if err != nil {
		fatal("%v", err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("%v", err)
	}

	var rels []*proxrank.Relation
	if *city != "" {
		var err error
		rels, _, _, err = proxrank.CityDataset(strings.ToUpper(*city))
		if err != nil {
			fatal("%v", err)
		}
	} else {
		cfg := proxrank.DefaultSyntheticConfig()
		cfg.Relations = *n
		cfg.Dim = *d
		cfg.Density = *density
		cfg.Skew = *skew
		cfg.BaseTuples = *tuples
		cfg.Seed = *seed
		var err error
		rels, err = proxrank.SyntheticRelations(cfg)
		if err != nil {
			fatal("%v", err)
		}
	}

	for _, rel := range rels {
		if *format == "relfile" {
			count := *shards
			if count == 0 {
				count = proxrank.AutoShardCount(rel.Len())
			}
			sharded, err := proxrank.NewShardedRelation(rel, count, strat)
			if err != nil {
				fatal("partitioning %s: %v", rel.Name, err)
			}
			path := filepath.Join(*out, sanitize(rel.Name)+proxrank.RelFileExtension)
			if err := proxrank.SaveRelFile(path, sharded); err != nil {
				fatal("writing %s: %v", path, err)
			}
			fmt.Printf("wrote %s (%d tuples, dim %d, %d shards, %s)\n",
				path, rel.Len(), rel.Dim(), sharded.NumShards(), *strategy)
			continue
		}
		path := filepath.Join(*out, sanitize(rel.Name)+".csv")
		if err := proxrank.SaveRelationCSV(path, rel); err != nil {
			fatal("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d tuples, dim %d)\n", path, rel.Len(), rel.Dim())
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, name)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "proxgen: "+format+"\n", args...)
	os.Exit(1)
}
