package proxrank_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	proxrank "repro"
	"repro/api"
)

func syntheticPair(t *testing.T, seed int64, n int) ([]*proxrank.Relation, proxrank.Vector) {
	t.Helper()
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.Relations = 2
	cfg.BaseTuples = n
	cfg.Seed = seed
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rels, proxrank.Vector{0.05, -0.1}
}

func inputsOf(rels []*proxrank.Relation) []proxrank.Input {
	inputs := make([]proxrank.Input, len(rels))
	for i, r := range rels {
		inputs[i] = r
	}
	return inputs
}

// TestQuerySessionMatchesTopK: draining a session to K reproduces the
// batch answer exactly (it IS the batch path now), and Next afterwards
// keeps enumerating past K in the order of the full sorted cross
// product, without restarting the run.
func TestQuerySessionMatchesTopK(t *testing.T) {
	rels, q := syntheticPair(t, 11, 20)
	opts := proxrank.Options{K: 5}
	batch, err := proxrank.TopK(q, rels, opts)
	if err != nil || batch.DNF {
		t.Fatalf("TopK: %v (dnf %v)", err, batch.DNF)
	}

	sess, err := proxrank.NewQueryInputs(q, inputsOf(rels), opts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Next(5)
	if err != nil {
		t.Fatalf("Next(5): %v", err)
	}
	if !reflect.DeepEqual(first, batch.Combinations) {
		t.Fatalf("session prefix differs from batch:\n%v\n%v", first, batch.Combinations)
	}
	pullsAtK := sess.Stats().SumDepths
	if got := batch.Stats.SumDepths; got != pullsAtK {
		t.Errorf("session paid %d accesses for K, batch paid %d", pullsAtK, got)
	}

	// Enumerate past K on the same engine state: ranks 6..10 must match
	// the oracle, and resuming must not have restarted the input streams
	// (emitted count keeps growing on one session).
	oracle, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	more, err := sess.Next(5)
	if err != nil {
		t.Fatalf("Next past K: %v", err)
	}
	if sess.Emitted() != 10 {
		t.Errorf("Emitted = %d, want 10", sess.Emitted())
	}
	for i, c := range more {
		if want := oracle[5+i]; c.Score != want.Score {
			t.Errorf("rank %d past K: score %v, want %v", 6+i, c.Score, want.Score)
		}
	}
}

// TestQueryResultsIterator: the range-over-func form delivers the same
// enumeration.
func TestQueryResultsIterator(t *testing.T) {
	rels, q := syntheticPair(t, 12, 15)
	oracle, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := proxrank.NewQueryInputs(q, inputsOf(rels), proxrank.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	rank := 0
	for c, err := range sess.Results(context.Background()) {
		if err != nil {
			t.Fatalf("rank %d: %v", rank+1, err)
		}
		if c.Score != oracle[rank].Score {
			t.Fatalf("rank %d: score %v, want %v", rank+1, c.Score, oracle[rank].Score)
		}
		rank++
		if rank == len(oracle) {
			break
		}
	}
	if rank != len(oracle) {
		t.Fatalf("iterator delivered %d results, want %d", rank, len(oracle))
	}
}

// TestQueryFromRequest: the api.Request surface reaches the same answer
// as the typed Options surface.
func TestQueryFromRequest(t *testing.T) {
	rels, q := syntheticPair(t, 13, 18)
	batch, err := proxrank.TopK(q, rels, proxrank.Options{K: 4, Algorithm: proxrank.CBPA})
	if err != nil {
		t.Fatal(err)
	}
	req := &api.Request{
		Query:     []float64(q),
		Relations: []string{rels[0].Name, rels[1].Name},
		K:         4,
		Algorithm: "HRJN*", // alias of cbpa: Normalize folds it
	}
	sess, err := proxrank.NewQuery(req, inputsOf(rels)...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Combinations, batch.Combinations) {
		t.Fatalf("request path differs from options path:\n%v\n%v", res.Combinations, batch.Combinations)
	}

	// Input-count mismatch is rejected up front.
	if _, err := proxrank.NewQuery(req, inputsOf(rels)[0]); err == nil {
		t.Fatal("NewQuery accepted fewer inputs than named relations")
	}
}

// TestQueryDNFMatchesBatch: a capped session surfaces ErrDNF (the
// api.CodeDNF condition) and its certified prefix plus the uncertified
// drain reproduce the batch DNF result exactly.
func TestQueryDNFMatchesBatch(t *testing.T) {
	rels, q := syntheticPair(t, 14, 40)
	opts := proxrank.Options{K: 10, MaxSumDepths: 8}
	batch, err := proxrank.TopK(q, rels, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !batch.DNF {
		t.Fatalf("cap did not fire (sumDepths %d)", batch.Stats.SumDepths)
	}

	sess, err := proxrank.NewQueryInputs(q, inputsOf(rels), opts)
	if err != nil {
		t.Fatal(err)
	}
	certified, err := sess.Next(10)
	if !errors.Is(err, proxrank.ErrDNF) {
		t.Fatalf("Next under cap: err %v, want ErrDNF", err)
	}
	combined := append(certified, sess.DrainBest(10-len(certified))...)
	if !reflect.DeepEqual(combined, batch.Combinations) {
		t.Fatalf("DNF session differs from batch:\n%v\n%v", combined, batch.Combinations)
	}
	if sess.Stats().SumDepths != batch.Stats.SumDepths {
		t.Errorf("capped session paid %d accesses, batch paid %d", sess.Stats().SumDepths, batch.Stats.SumDepths)
	}
}

// countingSource wraps a Source and counts pulls, to prove incremental
// delivery: the first result must arrive before the inputs are drained.
type countingSource struct {
	proxrank.Source
	pulls *int
}

func (c countingSource) Next() (proxrank.Tuple, error) {
	*c.pulls += 1
	return c.Source.Next()
}

// TestQueryDeliversBeforeExhaustion: rank 1 is certified and returned
// while most of the input is still unread — the ranked-enumeration
// contract that the streaming endpoint builds on.
func TestQueryDeliversBeforeExhaustion(t *testing.T) {
	rels, q := syntheticPair(t, 15, 200)
	total := rels[0].Len() + rels[1].Len()
	pulls := 0
	var sources []proxrank.Source
	for _, rel := range rels {
		src, err := proxrank.NewDistanceSource(rel, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, countingSource{Source: src, pulls: &pulls})
	}
	sess, err := proxrank.NewQuerySources(q, sources, proxrank.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, err := sess.Next(1)
	if err != nil || len(first) != 1 {
		t.Fatalf("Next(1): %v (%d results)", err, len(first))
	}
	if pulls >= total {
		t.Fatalf("first result only after draining all input (%d/%d pulls)", pulls, total)
	}
	t.Logf("first result after %d of %d pulls", pulls, total)
}

// TestSourceKindMismatchSharded: regression for the streaming/batch
// validation parity — a sharded input whose merged stream delivers the
// wrong access order must be rejected by every entry point, not only
// the batch one.
func TestSourceKindMismatchSharded(t *testing.T) {
	rels, q := syntheticPair(t, 16, 30)
	sharded, err := proxrank.NewShardedRelation(rels[0], 4, proxrank.HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	mkSources := func() []proxrank.Source {
		// A merged *score* stream for a query whose options announce
		// distance access.
		s0, err := sharded.ScoreSource()
		if err != nil {
			t.Fatal(err)
		}
		return []proxrank.Source{s0, proxrank.NewScoreSource(rels[1])}
	}
	opts := proxrank.Options{K: 3, Access: proxrank.DistanceAccess}
	if _, err := proxrank.NewStreamFromSources(q, mkSources(), opts); err == nil {
		t.Error("NewStreamFromSources accepted a sharded source with mismatched access kind")
	}
	if _, err := proxrank.NewQuerySources(q, mkSources(), opts); err == nil {
		t.Error("NewQuerySources accepted a sharded source with mismatched access kind")
	}
	if _, err := proxrank.TopKFromSources(q, mkSources(), opts); err == nil {
		t.Error("TopKFromSources accepted a sharded source with mismatched access kind")
	}
	// Sanity: the same sources are accepted when the options agree.
	if _, err := proxrank.NewStreamFromSources(q, mkSources(), proxrank.Options{K: 3, Access: proxrank.ScoreAccess}); err != nil {
		t.Errorf("consistent access kind rejected: %v", err)
	}
}
