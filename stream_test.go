package proxrank_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	proxrank "repro"
)

func TestStreamMatchesTopKPrefix(t *testing.T) {
	rels := smallRelations(t)
	q := proxrank.Vector{0, 0}
	want, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := proxrank.NewStream(q, rels, proxrank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got, err := s.Next()
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if math.Abs(got.Score-w.Score) > 1e-9 {
			t.Fatalf("result %d score %v, want %v", i, got.Score, w.Score)
		}
	}
	if _, err := s.Next(); !errors.Is(err, proxrank.ErrStreamDone) {
		t.Fatalf("after exhaustion: %v", err)
	}
	if s.Emitted() != int64(len(want)) {
		t.Fatalf("Emitted = %d", s.Emitted())
	}
	if s.Stats().SumDepths == 0 {
		t.Fatal("no I/O recorded")
	}
}

func TestStreamScoreAccessAndValidation(t *testing.T) {
	rels := smallRelations(t)
	q := proxrank.Vector{0, 0}
	s, err := proxrank.NewStream(q, rels, proxrank.Options{Access: proxrank.ScoreAccess})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	want, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first.Score-want[0].Score) > 1e-9 {
		t.Fatalf("stream top %v, oracle %v", first.Score, want[0].Score)
	}
	if _, err := proxrank.NewStream(q, rels, proxrank.Options{Weights: proxrank.Weights{Ws: -1}}); err == nil {
		t.Fatal("bad weights accepted")
	}
	if _, err := proxrank.NewStream(proxrank.Vector{0}, rels, proxrank.Options{}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

// TestParallelQueries runs many concurrent TopK and Stream queries over
// shared immutable relations; run with -race to check for data races
// (sources are per-query, relations are read-only).
func TestParallelQueries(t *testing.T) {
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.Relations = 3
	cfg.BaseTuples = 120
	cfg.Seed = 99
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := proxrank.Vector{0, 0}
	want, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := proxrank.Options{K: 5, UseRTree: g%2 == 0}
			if g%4 == 1 {
				opts.Algorithm = proxrank.CBPA
			}
			res, err := proxrank.TopK(q, rels, opts)
			if err != nil {
				errs <- err
				return
			}
			for i := range want {
				if math.Abs(res.Combinations[i].Score-want[i].Score) > 1e-9 {
					errs <- errors.New("parallel result diverged")
					return
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := proxrank.NewStream(q, rels, proxrank.Options{})
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 3; i++ {
				got, err := s.Next()
				if err != nil {
					errs <- err
					return
				}
				if math.Abs(got.Score-want[i].Score) > 1e-9 {
					errs <- errors.New("parallel stream diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
