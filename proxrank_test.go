package proxrank_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	proxrank "repro"
)

func smallRelations(t testing.TB) []*proxrank.Relation {
	t.Helper()
	mk := func(name string, tuples []proxrank.Tuple) *proxrank.Relation {
		r, err := proxrank.NewRelation(name, 1.0, tuples)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := mk("hotels", []proxrank.Tuple{
		{ID: "h1", Score: 0.5, Vec: proxrank.Vector{0, -0.5}},
		{ID: "h2", Score: 1.0, Vec: proxrank.Vector{0, 1}},
	})
	r2 := mk("restaurants", []proxrank.Tuple{
		{ID: "r1", Score: 1.0, Vec: proxrank.Vector{1, 1}},
		{ID: "r2", Score: 0.8, Vec: proxrank.Vector{-2, 2}},
	})
	r3 := mk("theaters", []proxrank.Tuple{
		{ID: "t1", Score: 1.0, Vec: proxrank.Vector{-1, 1}},
		{ID: "t2", Score: 0.4, Vec: proxrank.Vector{-2, -2}},
	})
	return []*proxrank.Relation{r1, r2, r3}
}

// TestTopKPaperExample runs the library end to end on the paper's Table 1
// data: the top combination is h2 × r1 × t1 with score −7.
func TestTopKPaperExample(t *testing.T) {
	rels := smallRelations(t)
	res, err := proxrank.TopK(proxrank.Vector{0, 0}, rels, proxrank.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DNF {
		t.Fatal("unexpected DNF")
	}
	if len(res.Combinations) != 3 {
		t.Fatalf("got %d combinations", len(res.Combinations))
	}
	top := res.Combinations[0]
	if math.Abs(top.Score-(-7)) > 0.01 {
		t.Fatalf("top score = %v, want -7", top.Score)
	}
	ids := []string{top.Tuples[0].ID, top.Tuples[1].ID, top.Tuples[2].ID}
	if ids[0] != "h2" || ids[1] != "r1" || ids[2] != "t1" {
		t.Fatalf("top combination = %v", ids)
	}
	if res.Stats.SumDepths == 0 {
		t.Fatal("no accesses recorded")
	}
}

// TestTopKAgreesAcrossConfigurations: every option combination returns the
// oracle's scores.
func TestTopKAgreesAcrossConfigurations(t *testing.T) {
	rels := smallRelations(t)
	q := proxrank.Vector{0.2, -0.1}
	want, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []proxrank.Algorithm{proxrank.CBRR, proxrank.CBPA, proxrank.TBRR, proxrank.TBPA} {
		for _, access := range []proxrank.AccessKind{proxrank.DistanceAccess, proxrank.ScoreAccess} {
			for _, rtree := range []bool{false, true} {
				if rtree && access == proxrank.ScoreAccess {
					continue
				}
				res, err := proxrank.TopK(q, rels, proxrank.Options{
					K: 4, Algorithm: algo, Access: access, UseRTree: rtree,
				})
				if err != nil {
					t.Fatalf("%v/%v/rtree=%v: %v", algo, access, rtree, err)
				}
				for i := range want {
					if math.Abs(res.Combinations[i].Score-want[i].Score) > 1e-9 {
						t.Fatalf("%v/%v/rtree=%v: scores %v vs oracle %v",
							algo, access, rtree, res.Combinations[i].Score, want[i].Score)
					}
				}
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	rels := smallRelations(t)
	q := proxrank.Vector{0, 0}
	if _, err := proxrank.TopK(q, rels, proxrank.Options{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := proxrank.TopK(q, rels, proxrank.Options{K: 1, Weights: proxrank.Weights{Ws: -1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := proxrank.TopK(proxrank.Vector{0}, rels, proxrank.Options{K: 1}); err == nil {
		t.Error("dim mismatch accepted")
	}
	// Mismatched access kind through TopKFromSources.
	src := proxrank.NewScoreSource(rels[0])
	src2 := proxrank.NewScoreSource(rels[1])
	if _, err := proxrank.TopKFromSources(q, []proxrank.Source{src, src2},
		proxrank.Options{K: 1, Access: proxrank.DistanceAccess}); err == nil {
		t.Error("access mismatch accepted")
	}
}

func TestMustTopKPanics(t *testing.T) {
	rels := smallRelations(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustTopK did not panic on invalid options")
		}
	}()
	proxrank.MustTopK(proxrank.Vector{0, 0}, rels, proxrank.Options{K: 0})
}

func TestCosineProximityOption(t *testing.T) {
	rels := smallRelations(t)
	q := proxrank.Vector{1, 1}
	res, err := proxrank.TopK(q, rels, proxrank.Options{
		K: 2, CosineProximity: true, Transform: proxrank.IdentityScore,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.BoundDowngraded {
		t.Error("cosine proximity should report the corner-bound fallback")
	}
	want, err := proxrank.NaiveTopK(q, rels, proxrank.Options{
		K: 2, CosineProximity: true, Transform: proxrank.IdentityScore,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Combinations[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("cosine scores diverge from oracle")
		}
	}
}

func TestSyntheticAndCityDatasets(t *testing.T) {
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.BaseTuples = 50
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 || rels[0].Len() != 50 {
		t.Fatalf("synthetic shape %d/%d", len(rels), rels[0].Len())
	}
	codes := proxrank.CityCodes()
	if len(codes) != 5 {
		t.Fatalf("city codes = %v", codes)
	}
	cityRels, q, landmark, err := proxrank.CityDataset("SF")
	if err != nil {
		t.Fatal(err)
	}
	if len(cityRels) != 3 || q.Dim() != 2 || landmark == "" {
		t.Fatalf("city dataset shape: %d rels, q %v, %q", len(cityRels), q, landmark)
	}
	if _, _, _, err := proxrank.CityDataset("XX"); err == nil {
		t.Fatal("unknown city accepted")
	}
}

func TestCSVRoundTripPublic(t *testing.T) {
	rels := smallRelations(t)
	var buf bytes.Buffer
	if err := proxrank.WriteRelationCSV(&buf, rels[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,score,x1,x2") {
		t.Fatalf("csv header: %q", buf.String()[:20])
	}
	back, err := proxrank.ReadRelationCSV(&buf, "hotels", 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rels[0].Len() {
		t.Fatal("csv round trip lost tuples")
	}
	dir := t.TempDir()
	if err := proxrank.SaveRelationCSV(dir+"/r.csv", rels[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := proxrank.LoadRelationCSV(dir+"/r.csv", "", 1); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPublicAPIRandom: the public TopK equals NaiveTopK on random
// synthetic data across algorithms (the end-to-end version of the core
// equivalence property).
func TestQuickPublicAPIRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := proxrank.DefaultSyntheticConfig()
		cfg.Relations = 2 + r.Intn(2)
		cfg.BaseTuples = 5 + r.Intn(10)
		cfg.Density = 50
		cfg.Seed = seed
		rels, err := proxrank.SyntheticRelations(cfg)
		if err != nil {
			return false
		}
		q := proxrank.Vector{r.NormFloat64() * 0.3, r.NormFloat64() * 0.3}
		opts := proxrank.Options{K: 1 + r.Intn(4)}
		want, err := proxrank.NaiveTopK(q, rels, opts)
		if err != nil {
			return false
		}
		for _, algo := range []proxrank.Algorithm{proxrank.CBPA, proxrank.TBPA} {
			opts.Algorithm = algo
			res, err := proxrank.TopK(q, rels, opts)
			if err != nil || res.DNF {
				return false
			}
			for i := range want {
				if math.Abs(res.Combinations[i].Score-want[i].Score) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDominanceAndEagerOptionsEndToEnd exercises the remaining option
// surface through the public API.
func TestDominanceAndEagerOptionsEndToEnd(t *testing.T) {
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.BaseTuples = 60
	cfg.Seed = 4
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := proxrank.Vector{0, 0}
	base, err := proxrank.TopK(q, rels, proxrank.Options{K: 5, Algorithm: proxrank.TBPA})
	if err != nil {
		t.Fatal(err)
	}
	withDom, err := proxrank.TopK(q, rels, proxrank.Options{
		K: 5, Algorithm: proxrank.TBPA, DominancePeriod: 4, EagerBounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.SumDepths != withDom.Stats.SumDepths {
		t.Fatalf("dominance/eager changed I/O: %d vs %d", base.Stats.SumDepths, withDom.Stats.SumDepths)
	}
	for i := range base.Combinations {
		if math.Abs(base.Combinations[i].Score-withDom.Combinations[i].Score) > 1e-12 {
			t.Fatal("dominance/eager changed results")
		}
	}
}
