package proxrank

import (
	"repro/internal/cities"
	"repro/internal/datagen"
)

// SyntheticConfig parameterizes the synthetic workload generator used by
// the paper's experiments (Appendix D.1): uniform feature vectors at a
// target density, uniform scores, optional density skew for the first
// relation.
type SyntheticConfig = datagen.SyntheticConfig

// DefaultSyntheticConfig is the paper's default operating point (Table 2):
// n = 2, d = 2, ρ = 100, no skew.
func DefaultSyntheticConfig() SyntheticConfig { return datagen.Defaults() }

// SyntheticRelations generates relations deterministically from the seed.
func SyntheticRelations(cfg SyntheticConfig) ([]*Relation, error) {
	return datagen.Synthetic(cfg)
}

// CityCodes lists the five simulated city data sets mirroring the paper's
// real-data study (Appendix D.2): SF, NY, BO, DA, HO.
func CityCodes() []string {
	all := cities.All()
	out := make([]string, len(all))
	for i, c := range all {
		out[i] = c.Code
	}
	return out
}

// CityDataset returns the three POI relations (hotels, restaurants,
// theaters) and the landmark query vector of a simulated city.
func CityDataset(code string) (rels []*Relation, query Vector, landmark string, err error) {
	c, err := cities.ByCode(code)
	if err != nil {
		return nil, nil, "", err
	}
	rels, err = c.Relations()
	if err != nil {
		return nil, nil, "", err
	}
	return rels, c.Query(), c.LandmarkName, nil
}
