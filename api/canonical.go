package api

import (
	"strconv"
	"strings"
)

// Canonical returns the canonical encoding of a normalized request: a
// deterministic string covering exactly the fields the answer depends on
// — version, k, algorithm, access, transform, weights, epsilon, the
// period/cap knobs, the query vector bit-exactly, and the relation list.
// Transport, delivery, and engine-tuning concerns (TimeoutMillis,
// NoCache, Trace, Overflow, MaxBuffered, BufferPolicy, BlockSize —
// validation guarantees a bounded buffer cannot change the response
// under either buffer policy, and the batched kernel is byte-identical
// at any width) are excluded, so requests differing only in delivery
// knobs share one encoding.
//
// Because Normalize folds aliases and fills defaults first, semantically
// equal requests encode identically: this string is the service cache
// key (suffixed with catalog generations) and the coalescing identity of
// concurrent in-flight queries, and every future transport keys on it
// rather than inventing its own.
//
// Calling Canonical on a request that has not passed Normalize produces
// an encoding that may not match its normalized twin; callers must
// normalize first.
func (r *Request) Canonical() string {
	var b strings.Builder
	b.Grow(96 + 24*len(r.Query) + 16*len(r.Relations))
	b.WriteString(r.Version)
	b.WriteString("|k=")
	b.WriteString(strconv.Itoa(r.K))
	b.WriteString("|a=")
	b.WriteString(r.Algorithm)
	b.WriteString("|x=")
	b.WriteString(r.Access)
	b.WriteString("|t=")
	b.WriteString(r.Transform)
	b.WriteString("|w=")
	if w := r.Weights; w != nil {
		b.WriteString(strconv.FormatFloat(w.Ws, 'b', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(w.Wq, 'b', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(w.Wmu, 'b', -1, 64))
	}
	b.WriteString("|e=")
	b.WriteString(strconv.FormatFloat(r.Epsilon, 'b', -1, 64))
	b.WriteString("|bp=")
	b.WriteString(strconv.Itoa(r.BoundPeriod))
	b.WriteString("|dp=")
	b.WriteString(strconv.Itoa(r.DominancePeriod))
	b.WriteString("|msd=")
	b.WriteString(strconv.Itoa(r.MaxSumDepths))
	b.WriteString("|mc=")
	b.WriteString(strconv.FormatInt(r.MaxCombinations, 10))
	b.WriteString("|q=")
	for _, v := range r.Query {
		b.WriteString(strconv.FormatFloat(v, 'b', -1, 64))
		b.WriteByte(',')
	}
	b.WriteString("|r=")
	for _, name := range r.Relations {
		// Length-prefix the name: it is caller-chosen and may contain any
		// delimiter, so bare concatenation could collide across distinct
		// relation lists.
		b.WriteString(strconv.Itoa(len(name)))
		b.WriteByte(':')
		b.WriteString(name)
		b.WriteByte(',')
	}
	return b.String()
}
