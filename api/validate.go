package api

import (
	"math"
	"strings"
)

// Limits are the server-side bounds Normalize enforces on top of the
// structural rules. The zero value enforces nothing extra, which is what
// library (non-serving) consumers want.
type Limits struct {
	// MaxK rejects requests asking for more than this many results
	// (0 = unlimited).
	MaxK int
}

// Normalize validates the request in place and fills every optional
// field with its canonical default: version v1, algorithm tbpa, distance
// access, log transform, unit weights. Aliases (hrjn, hrjn*, id, case
// variants) are folded onto the canonical spellings, so after a
// successful Normalize two semantically equal requests are structurally
// equal — the property Canonical builds on. Normalize is idempotent.
//
// It returns nil on success and a CodeBadRequest *Error naming the first
// offending field otherwise; the request may be partially rewritten on
// failure and should be discarded.
func (r *Request) Normalize(limits Limits) *Error {
	switch r.Version {
	case "", Version:
		r.Version = Version
	default:
		return Errorf(CodeBadRequest, "unsupported api version %q (want %s)", r.Version, Version)
	}
	if len(r.Query) == 0 {
		return Errorf(CodeBadRequest, "query vector is required")
	}
	for i, v := range r.Query {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Errorf(CodeBadRequest, "query component %d is not finite", i)
		}
	}
	if len(r.Relations) < 2 {
		return Errorf(CodeBadRequest, "at least two relations are required, got %d", len(r.Relations))
	}
	for i, name := range r.Relations {
		if name == "" {
			return Errorf(CodeBadRequest, "relation name %d is empty", i)
		}
	}
	if r.K < 1 {
		return Errorf(CodeBadRequest, "k must be at least 1, got %d", r.K)
	}
	if limits.MaxK > 0 && r.K > limits.MaxK {
		return Errorf(CodeBadRequest, "k %d exceeds the server limit %d", r.K, limits.MaxK)
	}
	switch strings.ToLower(r.Algorithm) {
	case "", AlgorithmTBPA:
		r.Algorithm = AlgorithmTBPA
	case AlgorithmTBRR:
		r.Algorithm = AlgorithmTBRR
	case AlgorithmCBPA, "hrjn*":
		r.Algorithm = AlgorithmCBPA
	case AlgorithmCBRR, "hrjn":
		r.Algorithm = AlgorithmCBRR
	default:
		return Errorf(CodeBadRequest, "unknown algorithm %q (want cbrr|cbpa|tbrr|tbpa)", r.Algorithm)
	}
	switch strings.ToLower(r.Access) {
	case "", AccessDistance:
		r.Access = AccessDistance
	case AccessScore:
		r.Access = AccessScore
	default:
		return Errorf(CodeBadRequest, "unknown access kind %q (want distance|score)", r.Access)
	}
	switch strings.ToLower(r.Transform) {
	case "", TransformLog:
		r.Transform = TransformLog
	case TransformIdentity, "id":
		r.Transform = TransformIdentity
	default:
		return Errorf(CodeBadRequest, "unknown transform %q (want log|identity)", r.Transform)
	}
	if r.Weights == nil {
		r.Weights = &Weights{Ws: 1, Wq: 1, Wmu: 1}
	} else {
		bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
		if bad(r.Weights.Ws) || bad(r.Weights.Wq) || bad(r.Weights.Wmu) {
			return Errorf(CodeBadRequest, "weights must be finite non-negative numbers")
		}
		if r.Weights.Ws == 0 && r.Weights.Wq == 0 && r.Weights.Wmu == 0 {
			// The engine treats the zero value as "use unit weights"; an
			// explicit all-zero spec would silently rank by something the
			// caller did not ask for.
			return Errorf(CodeBadRequest, "at least one weight must be positive")
		}
	}
	switch strings.ToLower(r.Overflow) {
	case "":
		// Empty stays empty: it means "server default", which only the
		// serving layer knows.
	case OverflowBlock:
		r.Overflow = OverflowBlock
	case OverflowDrop:
		r.Overflow = OverflowDrop
	default:
		return Errorf(CodeBadRequest, "unknown overflow policy %q (want block|drop)", r.Overflow)
	}
	switch strings.ToLower(r.Partial) {
	case "", PartialAllow:
		r.Partial = PartialAllow
	case PartialForbid:
		r.Partial = PartialForbid
	default:
		return Errorf(CodeBadRequest, "unknown partial policy %q (want allow|forbid)", r.Partial)
	}
	if r.Epsilon < 0 || math.IsNaN(r.Epsilon) || math.IsInf(r.Epsilon, 0) {
		return Errorf(CodeBadRequest, "epsilon must be finite and non-negative")
	}
	if r.TimeoutMillis < 0 {
		return Errorf(CodeBadRequest, "timeoutMillis must be non-negative")
	}
	// The engine reads negative caps/periods as "disabled"; a client
	// sending one almost certainly wanted the opposite, so reject rather
	// than run unbounded.
	if r.MaxSumDepths < 0 || r.MaxCombinations < 0 {
		return Errorf(CodeBadRequest, "maxSumDepths and maxCombinations must be non-negative")
	}
	if r.BoundPeriod < 0 || r.DominancePeriod < 0 {
		return Errorf(CodeBadRequest, "boundPeriod and dominancePeriod must be non-negative")
	}
	// A buffer smaller than K could silently change which results a query
	// returns; 0 delegates the choice to the server (which uses K).
	if r.MaxBuffered < 0 {
		return Errorf(CodeBadRequest, "maxBuffered must be non-negative")
	}
	if r.MaxBuffered > 0 && r.MaxBuffered < r.K {
		return Errorf(CodeBadRequest, "maxBuffered %d must be 0 or at least k %d", r.MaxBuffered, r.K)
	}
	switch strings.ToLower(r.BufferPolicy) {
	case "", BufferPrune:
		// Empty stays empty: both mean prune, and neither enters the
		// canonical encoding.
		if r.BufferPolicy != "" {
			r.BufferPolicy = BufferPrune
		}
	case BufferSpill:
		r.BufferPolicy = BufferSpill
	default:
		return Errorf(CodeBadRequest, "unknown bufferPolicy %q (want prune|spill)", r.BufferPolicy)
	}
	// Any block width yields byte-identical results, so only the sign can
	// be wrong; 0 delegates the choice to the engine.
	if r.BlockSize < 0 {
		return Errorf(CodeBadRequest, "blockSize must be non-negative")
	}
	return nil
}
