package api

import (
	"fmt"
	"net/http"
)

// ErrorCode classifies API failures; it is the machine-readable half of
// the structured error body every endpoint returns.
type ErrorCode string

const (
	// CodeBadRequest marks malformed or invalid requests.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound marks references to unregistered relations.
	CodeNotFound ErrorCode = "not_found"
	// CodeConflict marks duplicate registrations.
	CodeConflict ErrorCode = "conflict"
	// CodeTimeout marks queries that exceeded their deadline.
	CodeTimeout ErrorCode = "timeout"
	// CodeCanceled marks queries whose caller went away.
	CodeCanceled ErrorCode = "canceled"
	// CodeOverloaded marks queries shed because the worker pool and its
	// wait budget were exhausted.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeDNF marks runs aborted by a MaxSumDepths/MaxCombinations cap
	// before the bound certified the result. The same condition surfaces
	// three ways, one per consumption model:
	//
	//   - batch (Response / legacy Result): DNF flag set, best-effort
	//     results included, no error;
	//   - session (proxrank.Query.Next, proxrank.MustTopK): an error
	//     matching errors.Is(err, proxrank.ErrDNF), which servers map to
	//     this code;
	//   - stream (ResultEvent): Summary.DNF set after the best-effort
	//     tail has been delivered.
	CodeDNF ErrorCode = "dnf"
	// CodeInternal marks unexpected engine failures.
	CodeInternal ErrorCode = "internal"
	// CodeUnavailable marks queries that needed a remote shard server the
	// coordinator could not reach (after retries and failover). Transient
	// by nature: the same request may succeed once the peer returns.
	CodeUnavailable ErrorCode = "unavailable"
)

// HTTPStatus maps an error code onto the response status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		// Closest standard status for "client went away".
		return http.StatusRequestTimeout
	case CodeOverloaded:
		return http.StatusServiceUnavailable
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeDNF:
		// A capped run is an unfinishable request, not a server fault.
		// Batch endpoints never surface this as an HTTP error (they set
		// the DNF flag on a 200 instead); the status exists for session
		// transports that must reject a pull.
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// Error is the structured error of the query surface: a stable code for
// programs, a message for humans.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errorf builds an Error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}
