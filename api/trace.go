package api

// Tracing model. A request carrying trace=true gets back, alongside its
// ordinary results, a structured account of where the time went and
// what the engine did to certify the answer: per-phase wall times,
// every source pull with its depth, every bound update, and the buffer
// events (spills, revivals) of the run. Batch responses carry it in
// Response.Trace; streams append one terminal trace event after the
// summary. The same structure is what the server's slow-query log
// emits, so a trace captured interactively and one logged in production
// are directly comparable.
//
// The flag is a transport concern: it is excluded from the canonical
// encoding, so a traced request shares cache entries and coalesces with
// its untraced twin — and consequently a trace observes the run it
// happened to get (a cache hit or a coalesced follow has no engine
// phases to report; CacheState says which case occurred).

// Cache states reported in Trace.CacheState.
const (
	// CacheMiss: this request ran the engine; pull-level detail is
	// present (on the batch path and for stream leaders).
	CacheMiss = "miss"
	// CacheHit: answered from the result cache; only the service phases
	// are present.
	CacheHit = "hit"
	// CacheCoalesced: answered by joining another caller's in-flight
	// run; only the service phases are present.
	CacheCoalesced = "coalesced"
	// CacheBypass: the request opted out of the cache (noCache) or the
	// server runs without one; the engine ran without consulting or
	// filling the cache.
	CacheBypass = "bypass"
)

// Phase names reported in TracePhase.Name, in causal order.
const (
	// PhaseValidate: normalizing the request and resolving relations.
	PhaseValidate = "validate"
	// PhaseCache: the result-cache lookup.
	PhaseCache = "cache"
	// PhaseFlight: single-flight coordination — for a coalesced
	// follower, the whole wait for the leader's outcome.
	PhaseFlight = "flight"
	// PhaseEngine: the rank-join run itself.
	PhaseEngine = "engine"
	// PhaseDrain: stream delivery — draining the broker subscription to
	// the client sink (streams only).
	PhaseDrain = "drain"
)

// Trace is the structured account of one query's execution.
type Trace struct {
	// CacheState is miss, hit, or coalesced.
	CacheState string `json:"cacheState"`
	// Phases are the service-layer spans that actually occurred, in
	// causal order with their wall times.
	Phases []TracePhase `json:"phases"`
	// Pulls records every sorted access the engine made: which relation,
	// the depth reached, and the pull's wall time. Present only when
	// this request ran the engine (CacheState == miss).
	Pulls []TracePull `json:"pulls,omitempty"`
	// Bounds records each stopping-threshold recomputation.
	Bounds []TraceBound `json:"bounds,omitempty"`
	// Buffer records session-buffer pressure events (spills to the slab,
	// revivals back into the heap).
	Buffer []TraceBuffer `json:"buffer,omitempty"`
	// DroppedEvents counts detail events the recorder discarded after
	// its per-kind retention cap — the trace is truncated, not the run.
	DroppedEvents int64 `json:"droppedEvents,omitempty"`
	// Degraded/ShardsMissing mirror the response fields: the run
	// completed without these shards (every replica unreachable).
	Degraded      bool           `json:"degraded,omitempty"`
	ShardsMissing []MissingShard `json:"shardsMissing,omitempty"`
}

// TracePhase is one service-layer span.
type TracePhase struct {
	Name          string `json:"name"`
	ElapsedMicros int64  `json:"elapsedMicros"`
}

// TracePull is one sorted access on one relation.
type TracePull struct {
	// Relation is the relation's position in the join (0-based), which
	// is stable even when one relation appears twice.
	Relation int `json:"relation"`
	// Depth is the access depth after this pull — d_i in the paper's
	// sumDepths cost metric.
	Depth         int   `json:"depth"`
	ElapsedMicros int64 `json:"elapsedMicros"`
}

// TraceBound is one stopping-threshold recomputation.
type TraceBound struct {
	// SumDepths is the cumulative access depth when the bound updated.
	SumDepths int `json:"sumDepths"`
	// Threshold is the new bound; absent when it is not finite (±Inf is
	// not representable in JSON), matching Cost.Threshold.
	Threshold *float64 `json:"threshold,omitempty"`
}

// TraceBuffer is one session-buffer pressure event.
type TraceBuffer struct {
	// Action is spill (heap overflow pushed combinations to the slab) or
	// revive (slab combinations re-entered the heap).
	Action string `json:"action"`
	// Count is how many combinations the event moved.
	Count int `json:"count"`
}
