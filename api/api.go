package api

// Version is the current (and only) protocol version. Requests carrying
// an empty Version are normalized to it; any other value is rejected, so
// a future v2 can change semantics without silently breaking v1 clients.
const Version = "v1"

// Canonical enum vocabularies. Normalize folds aliases (hrjn, hrjn*, id,
// case variants) onto these spellings, so downstream consumers and the
// canonical encoding only ever see one name per meaning.
const (
	AlgorithmCBRR = "cbrr" // corner bound, round-robin (HRJN)
	AlgorithmCBPA = "cbpa" // corner bound, potential-adaptive (HRJN*)
	AlgorithmTBRR = "tbrr" // tight bound, round-robin
	AlgorithmTBPA = "tbpa" // tight bound, potential-adaptive (default)

	AccessDistance = "distance"
	AccessScore    = "score"

	TransformLog      = "log"
	TransformIdentity = "identity"

	OverflowBlock = "block"
	OverflowDrop  = "drop"

	// BufferPrune (the default) drops buffered combinations ranking
	// below the bounded buffer's score floor; BufferSpill keeps them in
	// a compact columnar slab that overflows to the server's file spill
	// tier. Both produce byte-identical responses.
	BufferPrune = "prune"
	BufferSpill = "spill"

	// PartialAllow (the default) lets a distributed query degrade to the
	// surviving shards when every replica of some shard is down;
	// PartialForbid fails such queries with CodeUnavailable instead.
	PartialAllow  = "allow"
	PartialForbid = "forbid"
)

// Request is one proximity rank join query. Only Query, Relations and K
// are required; Normalize fills every other field with the paper's best
// configuration (TBPA, distance access, unit weights, log scores).
//
// The JSON shape is shared by POST /v1/query, POST /v1/query/stream, and
// the legacy POST /v1/topk endpoint.
type Request struct {
	// Version is the protocol version ("" = v1).
	Version string `json:"version,omitempty"`
	// Query is the target vector q.
	Query []float64 `json:"query"`
	// Relations names the inputs, in join order.
	Relations []string `json:"relations"`
	// K is the number of results (required, >= 1). Session consumers may
	// enumerate past K without restarting; K remains the batch size and
	// the target the DNF caps are judged against.
	K int `json:"k"`
	// Algorithm is one of cbrr|cbpa|tbrr|tbpa (default tbpa); hrjn and
	// hrjn* are accepted aliases for cbrr and cbpa.
	Algorithm string `json:"algorithm,omitempty"`
	// Access is distance (default) or score.
	Access string `json:"access,omitempty"`
	// Weights override w_s, w_q, w_mu (all default to 1).
	Weights *Weights `json:"weights,omitempty"`
	// Transform is log (default) or identity.
	Transform string `json:"transform,omitempty"`
	// Epsilon relaxes the stopping test (0 = exact top-K).
	Epsilon float64 `json:"epsilon,omitempty"`
	// BoundPeriod recomputes the stopping threshold every so many pulls.
	BoundPeriod int `json:"boundPeriod,omitempty"`
	// DominancePeriod enables dominance pruning every so many accesses.
	DominancePeriod int `json:"dominancePeriod,omitempty"`
	// MaxSumDepths / MaxCombinations abort long runs with a DNF result.
	MaxSumDepths    int   `json:"maxSumDepths,omitempty"`
	MaxCombinations int64 `json:"maxCombinations,omitempty"`
	// MaxBuffered bounds the engine's buffer of formed-but-unemitted
	// combinations. 0 lets the server choose (it bounds the buffer to K,
	// which is exact for the at-most-K results a query delivers); an
	// explicit value must be at least K so the bounded buffer cannot
	// change the response. Engine-tuning concern: not part of the
	// canonical encoding, so requests differing only here share cache
	// entries and coalesce.
	MaxBuffered int `json:"maxBuffered,omitempty"`
	// BufferPolicy selects what the bounded buffer does at MaxBuffered:
	// "prune" (default) drops combinations ranking below the buffer's
	// score floor — exact for the at-most-K results a query delivers —
	// while "spill" retains them in a compact columnar slab that
	// overflows to the server's file spill tier when one is configured
	// (-spill-dir), keeping heap resident memory O(maxBuffered). Both
	// policies produce byte-identical responses. Engine-tuning concern:
	// not part of the canonical encoding, so requests differing only
	// here share cache entries and coalesce.
	BufferPolicy string `json:"bufferPolicy,omitempty"`
	// BlockSize sets the width of the engine's batched scoring kernel at
	// the innermost enumeration level. 0 lets the engine choose its
	// benchmarked default; any width produces byte-identical results.
	// Engine-tuning concern: not part of the canonical encoding, so
	// requests differing only here share cache entries and coalesce.
	BlockSize int `json:"blockSize,omitempty"`
	// Overflow picks this client's stream-delivery overflow policy when
	// the server brokers stream delivery: "block" asks the engine to wait
	// (up to the server's block deadline) when this client falls a full
	// delivery buffer behind, "drop" asks to be disconnected instead so
	// the engine is never delayed. Empty defers to the server default.
	// Delivery concern: ignored by batch endpoints and not part of the
	// canonical encoding, so requests differing only here share cache
	// entries and coalesce.
	Overflow string `json:"overflow,omitempty"`
	// TimeoutMillis overrides the server's default per-query deadline.
	// Transport concern: not part of the canonical encoding.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
	// NoCache bypasses the result cache for this query. Transport
	// concern: not part of the canonical encoding.
	NoCache bool `json:"noCache,omitempty"`
	// Trace asks for a structured execution trace — per-phase timings,
	// per-pull access depths, bound updates, buffer events — returned in
	// Response.Trace (batch) or as a terminal trace event (streams).
	// Transport concern: not part of the canonical encoding, so a traced
	// request shares cache entries and coalesces with its untraced twin;
	// results are byte-identical either way.
	Trace bool `json:"trace,omitempty"`
	// Partial is "allow" (default) or "forbid": whether a distributed
	// query may complete over the surviving shards — reporting
	// Response.Degraded with the missing shards — when every replica of
	// some shard is unreachable, or must fail with CodeUnavailable.
	// Under healthy operation the answer is identical either way, and
	// degraded responses are never cached, so Partial is not part of the
	// canonical encoding.
	Partial string `json:"partial,omitempty"`
}

// Weights mirrors the aggregation weights of paper eq. (2) in JSON.
type Weights struct {
	Ws  float64 `json:"ws"`
	Wq  float64 `json:"wq"`
	Wmu float64 `json:"wmu"`
}

// Tuple is one member of a result combination.
type Tuple struct {
	Relation string            `json:"relation"`
	ID       string            `json:"id"`
	Score    float64           `json:"score"`
	Vec      []float64         `json:"vec"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Combination is one ranked join result.
type Combination struct {
	Score  float64 `json:"score"`
	Tuples []Tuple `json:"tuples"`
}

// Cost reports what a query cost the engine — the paper's metrics
// (sumDepths et al.) plus wall time.
type Cost struct {
	SumDepths     int   `json:"sumDepths"`
	Depths        []int `json:"depths"`
	Combinations  int64 `json:"combinations"`
	BoundUpdates  int64 `json:"boundUpdates"`
	QPSolves      int64 `json:"qpSolves,omitempty"`
	ElapsedMicros int64 `json:"elapsedMicros"`
	// Threshold is the final bound; absent when it is not finite (±Inf is
	// not representable in JSON — −Inf after full exhaustion, +Inf when a
	// cap fired before the first bound update).
	Threshold *float64 `json:"threshold,omitempty"`
	// SpilledCombinations counts buffered combinations the session's
	// BufferSpill policy moved out of the ranked heap; SpilledBytes is how
	// many of those bytes reached the file spill tier (0 when the server
	// runs without a spill directory or the slab never crossed its
	// watermark).
	SpilledCombinations int64 `json:"spilledCombinations,omitempty"`
	SpilledBytes        int64 `json:"spilledBytes,omitempty"`
}

// Response answers a batch query. Responses handed out by a server may be
// shared with its result cache and must be treated as read-only.
type Response struct {
	Results []Combination `json:"results"`
	// DNF is true when a MaxSumDepths/MaxCombinations cap stopped the run
	// before the bound certified the top-K; the results past the last
	// certified one are the engine's best-effort prefix. The session API
	// signals the same condition as an Error with code CodeDNF — see the
	// mapping table in error.go.
	DNF    bool `json:"dnf,omitempty"`
	Cached bool `json:"cached"`
	Cost   Cost `json:"cost"`
	// Trace is the execution trace, present only when the request asked
	// for one (Request.Trace). Never shared with the result cache: a
	// cached Response is handed out without it and each traced caller
	// gets its own.
	Trace *Trace `json:"trace,omitempty"`
	// Degraded is true when the query completed without some shard whose
	// every replica was unreachable (Request.Partial "allow"): Results
	// are exact over the surviving shards — byte-identical to a run over
	// only those shards — but are not a certified global top-K.
	// Degraded responses are never cached.
	Degraded bool `json:"degraded,omitempty"`
	// ShardsMissing lists the shards that contributed nothing (or only a
	// prefix, if their replicas died mid-stream) to a degraded response.
	ShardsMissing []MissingShard `json:"shardsMissing,omitempty"`
	// ResultsCertified is set on degraded responses: the number of
	// results certified against the data that was actually reachable
	// (len(Results), or 0 when a DNF cap also fired and even the
	// surviving-shard certification was cut short).
	ResultsCertified int `json:"resultsCertified,omitempty"`
}

// MissingShard identifies one shard a degraded response is missing.
type MissingShard struct {
	Relation string `json:"relation"`
	Shard    int    `json:"shard"`
}

// EventType discriminates streaming events.
type EventType string

const (
	// EventResult carries one ranked combination, delivered as soon as
	// the engine certifies it.
	EventResult EventType = "result"
	// EventSummary closes a successful stream with the run's totals.
	EventSummary EventType = "summary"
	// EventError closes a stream that failed after it started.
	EventError EventType = "error"
	// EventTrace carries the execution trace of a traced stream, emitted
	// once after the summary (it is the terminal event: the trace spans
	// the delivery itself, so it cannot precede the summary).
	EventTrace EventType = "trace"
)

// ResultEvent is one NDJSON line of an incremental query stream: K result
// events (rank 1 first, flushed as produced) followed by exactly one
// summary event — or an error event if the run fails midway. A traced
// stream appends exactly one trace event after the summary.
type ResultEvent struct {
	Type EventType `json:"type"`
	// Rank is the 1-based position of a result event.
	Rank int `json:"rank,omitempty"`
	// Result is set on result events.
	Result *Combination `json:"result,omitempty"`
	// Summary is set on the final summary event.
	Summary *Summary `json:"summary,omitempty"`
	// Error is set on error events.
	Error *Error `json:"error,omitempty"`
	// Trace is set on trace events.
	Trace *Trace `json:"trace,omitempty"`
}

// Summary is the trailer of a result stream: everything a Response
// carries beyond the combinations themselves.
type Summary struct {
	// Count is the number of result events that preceded the summary.
	Count int `json:"count"`
	// DNF marks a capped run; results streamed after the cap fired are
	// the engine's uncertified best-effort tail (matching the batch
	// endpoint's DNF results).
	DNF    bool `json:"dnf,omitempty"`
	Cached bool `json:"cached"`
	Cost   Cost `json:"cost"`
	// Degraded/ShardsMissing/ResultsCertified mirror the batch Response
	// fields for a stream that completed without some shard.
	Degraded         bool           `json:"degraded,omitempty"`
	ShardsMissing    []MissingShard `json:"shardsMissing,omitempty"`
	ResultsCertified int            `json:"resultsCertified,omitempty"`
}

// CollectStream reassembles a batch Response from a finished event
// sequence — the inverse of streaming a response. It is what a client
// (or an equivalence test) uses to compare the streaming endpoint
// against the batch one.
func CollectStream(events []ResultEvent) (*Response, *Error) {
	resp := &Response{}
	summarized := false
	for _, ev := range events {
		if summarized && ev.Type != EventTrace {
			return nil, Errorf(CodeInternal, "event of type %q after the summary", ev.Type)
		}
		switch ev.Type {
		case EventResult:
			if ev.Result == nil {
				return nil, Errorf(CodeInternal, "result event %d carries no result", ev.Rank)
			}
			resp.Results = append(resp.Results, *ev.Result)
		case EventSummary:
			if ev.Summary == nil {
				return nil, Errorf(CodeInternal, "summary event carries no summary")
			}
			resp.DNF = ev.Summary.DNF
			resp.Cached = ev.Summary.Cached
			resp.Cost = ev.Summary.Cost
			resp.Degraded = ev.Summary.Degraded
			resp.ShardsMissing = ev.Summary.ShardsMissing
			resp.ResultsCertified = ev.Summary.ResultsCertified
			summarized = true
		case EventError:
			if ev.Error == nil {
				return nil, Errorf(CodeInternal, "error event carries no error")
			}
			return nil, ev.Error
		case EventTrace:
			if !summarized {
				return nil, Errorf(CodeInternal, "trace event before the summary")
			}
			if ev.Trace == nil {
				return nil, Errorf(CodeInternal, "trace event carries no trace")
			}
			resp.Trace = ev.Trace
		default:
			return nil, Errorf(CodeInternal, "unknown event type %q", ev.Type)
		}
	}
	if !summarized {
		return nil, Errorf(CodeInternal, "stream ended without a summary event")
	}
	return resp, nil
}
