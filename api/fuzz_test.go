package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzRequestDecode exercises the full wire path — JSON decode,
// Normalize, Canonical — against arbitrary bodies. Invariants:
//
//  1. decode + Normalize never panic, whatever the bytes;
//  2. Normalize is idempotent: a second pass neither fails nor moves
//     the canonical encoding;
//  3. the canonical encoding survives a marshal/decode/normalize round
//     trip — the property that lets any transport recompute the cache
//     key from the wire form.
//
// Run the smoke pass with:
//
//	go test -run=^$ -fuzz=FuzzRequestDecode -fuzztime=10s ./api
func FuzzRequestDecode(f *testing.F) {
	f.Add(`{"query":[0.1,0.2],"relations":["a","b"],"k":5}`)
	f.Add(`{"version":"v1","query":[0.01,0.028],"relations":["SF-hotels","SF-restaurants"],"k":3,"algorithm":"HRJN*","access":"Score","transform":"id","weights":{"ws":1,"wq":2000,"wmu":2000}}`)
	f.Add(`{"query":[1e308,-1e308],"relations":["x","y"],"k":1,"epsilon":0.5,"boundPeriod":8,"dominancePeriod":4,"maxSumDepths":100,"maxCombinations":50,"timeoutMillis":250,"noCache":true}`)
	f.Add(`{"query":[0],"relations":["a,b","c|d=e"],"k":1}`)
	f.Add(`{"k":-1}`)
	f.Add(`{"query":[null],"relations":"nope"}`)
	f.Add(`not json at all`)
	f.Add(`{"query":[0.1,0.2],"relations":["a","b"],"k":5,"weights":{"ws":0,"wq":0,"wmu":0}}`)
	f.Fuzz(func(t *testing.T, body string) {
		dec := json.NewDecoder(strings.NewReader(body))
		dec.DisallowUnknownFields()
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // malformed JSON is the transport's problem
		}
		if aerr := req.Normalize(Limits{MaxK: 1000}); aerr != nil {
			if aerr.Code != CodeBadRequest {
				t.Fatalf("Normalize returned non-bad_request code %q for %q", aerr.Code, body)
			}
			return
		}
		canon := req.Canonical()
		if canon == "" || !strings.HasPrefix(canon, Version+"|") {
			t.Fatalf("canonical encoding %q lacks the version prefix", canon)
		}
		if aerr := req.Normalize(Limits{MaxK: 1000}); aerr != nil {
			t.Fatalf("re-normalize failed: %v", aerr)
		}
		if again := req.Canonical(); again != canon {
			t.Fatalf("normalize is not idempotent:\n  %s\n  %s", canon, again)
		}
		buf, err := json.Marshal(&req)
		if err != nil {
			t.Fatalf("marshal normalized request: %v", err)
		}
		var back Request
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("decode re-marshaled request: %v", err)
		}
		if aerr := back.Normalize(Limits{MaxK: 1000}); aerr != nil {
			t.Fatalf("normalize re-marshaled request: %v", aerr)
		}
		if back.Canonical() != canon {
			t.Fatalf("canonical encoding did not survive the round trip:\n  %s\n  %s", canon, back.Canonical())
		}
	})
}
