// Package api defines the transport-neutral, versioned request/response
// model of the proximity rank join service: every front end (HTTP JSON,
// the streaming NDJSON endpoint, future gRPC or remote-shard transports)
// and the library's Query session speak these types, so validation,
// defaulting, and the canonical cache-key encoding live in exactly one
// place.
//
// The package is pure data: it depends on nothing but the standard
// library, and in particular not on the engine. Translation into engine
// options happens in the facade (proxrank.OptionsFromRequest).
//
// The life of a Request: a caller fills the required fields (Query,
// Relations, K) and whatever options it cares about; Normalize validates
// everything, folds aliases (hrjn → cbrr, id → identity, case variants)
// and fills defaults, so two semantically equal requests become
// structurally equal; Canonical then encodes exactly the answer-affecting
// fields into the deterministic string that servers use as their cache
// and single-flight key. Transport and delivery knobs (TimeoutMillis,
// NoCache, Overflow, MaxBuffered, BlockSize) are validated but excluded from the
// encoding, so requests differing only in how they want the answer
// delivered share one cache entry and coalesce into one engine run.
//
// Streaming consumers receive the same answer as a sequence of
// ResultEvent values — K result events in rank order, then one summary —
// and CollectStream folds a finished sequence back into a Response,
// which is how equivalence between the batch and streaming surfaces is
// stated (and tested).
//
// docs/API.md at the repository root documents the HTTP wire form of
// every field, with validation rules and verified examples.
package api
