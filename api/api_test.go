package api

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func validRequest() *Request {
	return &Request{
		Query:     []float64{0.1, 0.2},
		Relations: []string{"hotels", "restaurants"},
		K:         5,
	}
}

// TestNormalizeDefaults: a minimal request is rewritten to the canonical
// full form.
func TestNormalizeDefaults(t *testing.T) {
	r := validRequest()
	if err := r.Normalize(Limits{}); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if r.Version != Version {
		t.Errorf("Version = %q, want %q", r.Version, Version)
	}
	if r.Algorithm != AlgorithmTBPA {
		t.Errorf("Algorithm = %q, want %q", r.Algorithm, AlgorithmTBPA)
	}
	if r.Access != AccessDistance {
		t.Errorf("Access = %q, want %q", r.Access, AccessDistance)
	}
	if r.Transform != TransformLog {
		t.Errorf("Transform = %q, want %q", r.Transform, TransformLog)
	}
	if r.Weights == nil || *r.Weights != (Weights{Ws: 1, Wq: 1, Wmu: 1}) {
		t.Errorf("Weights = %+v, want unit weights", r.Weights)
	}
}

// TestNormalizeAliases: every accepted alias folds onto its canonical
// spelling, so semantically equal requests become structurally equal.
func TestNormalizeAliases(t *testing.T) {
	cases := []struct {
		field string
		in    func(*Request)
		check func(*Request) bool
	}{
		{"hrjn->cbrr", func(r *Request) { r.Algorithm = "HRJN" }, func(r *Request) bool { return r.Algorithm == AlgorithmCBRR }},
		{"hrjn*->cbpa", func(r *Request) { r.Algorithm = "hrjn*" }, func(r *Request) bool { return r.Algorithm == AlgorithmCBPA }},
		{"TBRR case", func(r *Request) { r.Algorithm = "TbRr" }, func(r *Request) bool { return r.Algorithm == AlgorithmTBRR }},
		{"id->identity", func(r *Request) { r.Transform = "id" }, func(r *Request) bool { return r.Transform == TransformIdentity }},
		{"SCORE case", func(r *Request) { r.Access = "Score" }, func(r *Request) bool { return r.Access == AccessScore }},
		{"DROP case", func(r *Request) { r.Overflow = "Drop" }, func(r *Request) bool { return r.Overflow == OverflowDrop }},
		{"empty overflow stays empty", func(r *Request) { r.Overflow = "" }, func(r *Request) bool { return r.Overflow == "" }},
	}
	for _, tc := range cases {
		r := validRequest()
		tc.in(r)
		if err := r.Normalize(Limits{}); err != nil {
			t.Errorf("%s: Normalize: %v", tc.field, err)
			continue
		}
		if !tc.check(r) {
			t.Errorf("%s: alias not canonicalized: %+v", tc.field, r)
		}
	}
}

// TestNormalizeRejects: the full table of malformed requests, one field
// at a time.
func TestNormalizeRejects(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"bad version", func(r *Request) { r.Version = "v2" }},
		{"no query", func(r *Request) { r.Query = nil }},
		{"NaN query", func(r *Request) { r.Query = []float64{0.1, nan} }},
		{"Inf query", func(r *Request) { r.Query = []float64{inf, 0} }},
		{"one relation", func(r *Request) { r.Relations = r.Relations[:1] }},
		{"empty relation name", func(r *Request) { r.Relations = []string{"a", ""} }},
		{"k zero", func(r *Request) { r.K = 0 }},
		{"k negative", func(r *Request) { r.K = -3 }},
		{"bad algorithm", func(r *Request) { r.Algorithm = "quantum" }},
		{"bad access", func(r *Request) { r.Access = "random" }},
		{"bad transform", func(r *Request) { r.Transform = "sqrt" }},
		{"bad overflow", func(r *Request) { r.Overflow = "buffer" }},
		{"negative weight", func(r *Request) { r.Weights = &Weights{Ws: -1, Wq: 1, Wmu: 1} }},
		{"NaN weight", func(r *Request) { r.Weights = &Weights{Ws: nan, Wq: 1, Wmu: 1} }},
		{"infinite weight", func(r *Request) { r.Weights = &Weights{Ws: inf, Wq: 1, Wmu: 1} }},
		{"all-zero weights", func(r *Request) { r.Weights = &Weights{} }},
		{"negative epsilon", func(r *Request) { r.Epsilon = -0.5 }},
		{"NaN epsilon", func(r *Request) { r.Epsilon = nan }},
		{"infinite epsilon", func(r *Request) { r.Epsilon = inf }},
		{"negative timeout", func(r *Request) { r.TimeoutMillis = -5 }},
		{"negative maxSumDepths", func(r *Request) { r.MaxSumDepths = -100 }},
		{"negative maxCombinations", func(r *Request) { r.MaxCombinations = -1 }},
		{"negative boundPeriod", func(r *Request) { r.BoundPeriod = -2 }},
		{"negative dominancePeriod", func(r *Request) { r.DominancePeriod = -2 }},
		{"negative maxBuffered", func(r *Request) { r.MaxBuffered = -1 }},
		{"maxBuffered below k", func(r *Request) { r.K = 5; r.MaxBuffered = 4 }},
	}
	for _, tc := range cases {
		r := validRequest()
		tc.mutate(r)
		err := r.Normalize(Limits{})
		if err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, r)
			continue
		}
		if err.Code != CodeBadRequest {
			t.Errorf("%s: code = %q, want %q", tc.name, err.Code, CodeBadRequest)
		}
	}
}

// TestNormalizeMaxK: the server-side K limit applies only when set.
func TestNormalizeMaxK(t *testing.T) {
	r := validRequest()
	r.K = 10_000
	if err := r.Normalize(Limits{}); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
	r2 := validRequest()
	r2.K = 10_000
	err := r2.Normalize(Limits{MaxK: 100})
	if err == nil || err.Code != CodeBadRequest {
		t.Fatalf("MaxK=100 accepted K=10000 (err %v)", err)
	}
}

// TestNormalizeIdempotent: normalizing twice is a no-op.
func TestNormalizeIdempotent(t *testing.T) {
	r := validRequest()
	r.Algorithm = "HRJN*"
	if err := r.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	before := *r
	weights := *r.Weights
	if err := r.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, *r) || *r.Weights != weights {
		t.Errorf("re-normalize changed the request:\n  %+v\n  %+v", before, *r)
	}
}

// TestCanonicalEquivalence: requests that differ only in aliases,
// defaults, or transport knobs share one canonical encoding — the
// property the cache key and single-flight identity rely on.
func TestCanonicalEquivalence(t *testing.T) {
	base := validRequest()
	if err := base.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	variants := []func(*Request){
		func(r *Request) {}, // explicit defaults spelled out
		func(r *Request) { r.Algorithm = "TBPA" },
		func(r *Request) { r.Access = "Distance" },
		func(r *Request) { r.Transform = "" },
		func(r *Request) { r.Weights = &Weights{Ws: 1, Wq: 1, Wmu: 1} },
		func(r *Request) { r.TimeoutMillis = 5000 },    // transport knob: excluded
		func(r *Request) { r.NoCache = true },          // transport knob: excluded
		func(r *Request) { r.Overflow = OverflowDrop }, // delivery knob: excluded
		// Engine-tuning knob: excluded (validation guarantees a bounded
		// buffer cannot change the response, so caching/coalescing across
		// it is sound).
		func(r *Request) { r.MaxBuffered = 64 },
	}
	for i, mutate := range variants {
		r := validRequest()
		mutate(r)
		if err := r.Normalize(Limits{}); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if r.Canonical() != base.Canonical() {
			t.Errorf("variant %d: canonical diverged:\n  %s\n  %s", i, r.Canonical(), base.Canonical())
		}
	}
}

// TestCanonicalSensitivity: every answer-affecting field must move the
// encoding.
func TestCanonicalSensitivity(t *testing.T) {
	base := validRequest()
	if err := base.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*Request){
		"k":         func(r *Request) { r.K = 6 },
		"algorithm": func(r *Request) { r.Algorithm = AlgorithmCBRR },
		"access":    func(r *Request) { r.Access = AccessScore },
		"transform": func(r *Request) { r.Transform = TransformIdentity },
		"weights":   func(r *Request) { r.Weights = &Weights{Ws: 2, Wq: 1, Wmu: 1} },
		"epsilon":   func(r *Request) { r.Epsilon = 0.5 },
		"query":     func(r *Request) { r.Query = []float64{0.1, 0.3} },
		"relations": func(r *Request) { r.Relations = []string{"hotels", "bars"} },
		"caps":      func(r *Request) { r.MaxSumDepths = 7 },
	}
	for name, mutate := range variants {
		r := validRequest()
		mutate(r)
		if err := r.Normalize(Limits{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Canonical() == base.Canonical() {
			t.Errorf("%s: change did not move the canonical encoding %q", name, base.Canonical())
		}
	}
}

// TestRequestJSONRoundTrip: the wire tags survive a marshal/unmarshal
// cycle with canonical equality.
func TestRequestJSONRoundTrip(t *testing.T) {
	r := validRequest()
	r.Epsilon = 0.25
	r.Weights = &Weights{Ws: 2, Wq: 1, Wmu: 0.5}
	if err := r.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if aerr := back.Normalize(Limits{}); aerr != nil {
		t.Fatal(aerr)
	}
	if back.Canonical() != r.Canonical() {
		t.Errorf("round trip moved the canonical encoding:\n  %s\n  %s", r.Canonical(), back.Canonical())
	}
}

// TestCollectStream reassembles a response and rejects malformed event
// sequences.
func TestCollectStream(t *testing.T) {
	c1 := Combination{Score: -1, Tuples: []Tuple{{Relation: "a", ID: "x"}}}
	c2 := Combination{Score: -2, Tuples: []Tuple{{Relation: "a", ID: "y"}}}
	events := []ResultEvent{
		{Type: EventResult, Rank: 1, Result: &c1},
		{Type: EventResult, Rank: 2, Result: &c2},
		{Type: EventSummary, Summary: &Summary{Count: 2, Cached: true, Cost: Cost{SumDepths: 7}}},
	}
	resp, aerr := CollectStream(events)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if len(resp.Results) != 2 || resp.Results[0].Score != -1 || !resp.Cached || resp.Cost.SumDepths != 7 {
		t.Errorf("collected response wrong: %+v", resp)
	}
	if _, aerr := CollectStream(events[:2]); aerr == nil {
		t.Error("missing summary accepted")
	}
	if _, aerr := CollectStream([]ResultEvent{{Type: EventError, Error: Errorf(CodeTimeout, "late")}}); aerr == nil || aerr.Code != CodeTimeout {
		t.Errorf("error event not propagated: %v", aerr)
	}
}

// TestErrorHTTPStatus pins the code→status table.
func TestErrorHTTPStatus(t *testing.T) {
	for code, want := range map[ErrorCode]int{
		CodeBadRequest: 400, CodeNotFound: 404, CodeConflict: 409,
		CodeTimeout: 504, CodeCanceled: 408, CodeOverloaded: 503,
		CodeDNF: 422, CodeInternal: 500,
	} {
		if got := code.HTTPStatus(); got != want {
			t.Errorf("%s: status %d, want %d", code, got, want)
		}
	}
	if s := Errorf(CodeDNF, "capped after %d accesses", 7).Error(); !strings.Contains(s, "dnf") || !strings.Contains(s, "7 accesses") {
		t.Errorf("Error() = %q", s)
	}
}
