package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

var negInf = math.Inf(-1)
var posInf = math.Inf(1)

// prefixCap is the initial capacity of the per-relation prefix slices, so
// the first few dozen pulls never reallocate them.
const prefixCap = 64

// relState is the engine-side view of one input relation: the extracted
// prefix P_i plus the first/last access statistics the bounds consume.
type relState struct {
	index     int
	src       relation.Source
	tuples    []relation.Tuple // P_i in access order
	dists     []float64        // distance from q, parallel to tuples
	exhausted bool
	maxScore  float64
	// solo holds each prefix tuple's separable upper contribution
	// (agg.Separable.SoloBound), parallel to tuples; soloMax is its running
	// maximum and soloAbsMax the running maximum magnitude (the scale of
	// the floating-point error a sum of solo terms can carry). All three
	// drive score-floor pruning during formation and stay empty when the
	// aggregation is not separable.
	solo       []float64
	soloMax    float64
	soloAbsMax float64
	// qterm caches each prefix tuple's centroid-independent score term
	// (agg.BlockScorer.QTerm), parallel to tuples; the columnar input of
	// the batched scoring kernel. Empty when block scoring is off.
	qterm []float64
}

// depth returns p_i.
func (r *relState) depth() int { return len(r.tuples) }

// firstDist and lastDist are δ(x(R_i[1]), q) and δ(x(R_i[p_i]), q), both 0
// when nothing was extracted (paper convention).
func (r *relState) firstDist() float64 {
	if len(r.dists) == 0 {
		return 0
	}
	return r.dists[0]
}

func (r *relState) lastDist() float64 {
	if len(r.dists) == 0 {
		return 0
	}
	return r.dists[len(r.dists)-1]
}

// firstScore and lastScore are σ(R_i[1]) and σ(R_i[p_i]); σ_max when
// nothing was extracted (the best any unseen tuple could have).
func (r *relState) firstScore() float64 {
	if len(r.tuples) == 0 {
		return r.maxScore
	}
	return r.tuples[0].Score
}

func (r *relState) lastScore() float64 {
	if len(r.tuples) == 0 {
		return r.maxScore
	}
	return r.tuples[len(r.tuples)-1].Score
}

// bounder is the BS component of the ProxRJ template. Registration
// (integrating a new tuple or an exhaustion) is separated from threshold
// computation so that the engine can skip recomputation between blocks of
// pulls (Options.BoundPeriod, the practical trade-off of paper §4.2): a
// stale threshold remains a correct upper bound because the unseen set
// only shrinks.
type bounder interface {
	// register integrates the tuple just appended to relation ri.
	register(ri int)
	// registerExhausted reacts to relation ri running dry.
	registerExhausted(ri int)
	// threshold computes the current upper bound t on unseen combinations.
	threshold() float64
	// potential returns pot_i for the PA strategy (−inf when no unseen
	// combination can involve relation ri).
	potential(ri int) float64
}

// puller is the PS component.
type puller interface {
	// choose returns the index of a non-exhausted relation, or -1 when all
	// are exhausted.
	choose(e *Engine) int
}

// Engine executes the ProxRJ template over a fixed set of sources.
type Engine struct {
	opts  Options
	q     vec.Vector
	n     int
	dim   int
	kind  relation.AccessKind
	rels  []*relState
	arena *combArena
	out   *refTopK // the batch top-K buffer; also the default sink
	// sink receives formed combinations: out in batch mode, the session
	// buffer when a pipelined Iterator drives the engine.
	sink  refSink
	bound bounder
	pull  puller
	stats Stats
	t     float64 // current upper bound
	pulls int64   // global access counter (epoch for lazy bounds)
	// sep/scorer are the optional aggregation fast paths: sep unlocks
	// score-floor pruning, scorer the allocation-free leaf evaluation.
	sep    agg.Separable
	scorer agg.ScratchScorer
	// blk is the batched-kernel fast path: the innermost enumeration level
	// scores candidate blocks of width blockSize in one kernel call over
	// the columnar qterm/vector state instead of one leaf at a time.
	blk       agg.BlockScorer
	blockSize int
	lastVar   int // innermost non-pulled level of the current formation
	// Formation scratch, reused across every formCombinations call.
	scrRanks  []int32
	scrSigmas []float64
	scrXs     []vec.Vector
	scrMu     vec.Vector
	sufBound  []float64 // sufBound[i]: Σ soloMax over levels ≥ i (skip excluded)
	sufCount  []int64   // sufCount[i]: Π depth over levels ≥ i (skip excluded)
	pruneMag  float64   // Σ soloAbsMax: term-magnitude scale for pruneSlack
	// Block-mode scratch: per-slot cached qterms, the kernel's working
	// storage, and the per-block candidate/column/output buffers.
	scrQterms []float64
	blkScr    agg.BlockScratch
	blkCands  []int32
	blkQ      []float64
	blkXs     []vec.Vector
	blkOut    []float64
	// Emission arenas: materialize carves public Combination slices from
	// these in chunks instead of allocating two slices per result.
	matTuples []relation.Tuple
	matRanks  []int
}

// NewEngine validates the configuration and builds an engine. All sources
// must share one access kind and one dimensionality matching the query.
func NewEngine(sources []relation.Source, opts Options) (*Engine, error) {
	if len(sources) < 2 {
		return nil, ErrNoRelations
	}
	if opts.K < 1 {
		return nil, ErrBadK
	}
	if opts.Agg == nil {
		return nil, ErrNilAggregator
	}
	if opts.Epsilon < 0 || math.IsNaN(opts.Epsilon) {
		return nil, fmt.Errorf("core: Epsilon must be non-negative, got %v", opts.Epsilon)
	}
	if opts.MaxBuffered < 0 {
		return nil, fmt.Errorf("core: MaxBuffered must be non-negative, got %d", opts.MaxBuffered)
	}
	if opts.BlockSize < 0 {
		return nil, fmt.Errorf("core: BlockSize must be non-negative, got %d", opts.BlockSize)
	}
	kind := sources[0].Kind()
	dim := sources[0].Relation().Dim()
	if opts.Query.Dim() != dim {
		return nil, fmt.Errorf("%w: query dim %d, relations dim %d", ErrDimMismatch, opts.Query.Dim(), dim)
	}
	for _, s := range sources[1:] {
		if s.Kind() != kind {
			return nil, ErrMixedAccess
		}
		if s.Relation().Dim() != dim {
			return nil, fmt.Errorf("%w: relation %q has dim %d, want %d",
				ErrDimMismatch, s.Relation().Name, s.Relation().Dim(), dim)
		}
	}
	// Detect the aggregation fast paths up front: the scratch slab layout
	// below depends on which of them are active.
	scorer, _ := opts.Agg.(agg.ScratchScorer)
	var sep agg.Separable
	if !opts.disablePrune {
		sep, _ = opts.Agg.(agg.Separable)
	}
	var blk agg.BlockScorer
	if !opts.disableBlock {
		blk, _ = opts.Agg.(agg.BlockScorer)
	}
	blockSize := 0
	if blk != nil {
		blockSize = opts.BlockSize
		if blockSize == 0 {
			blockSize = DefaultBlockSize
		}
	}

	n := len(sources)
	e := &Engine{
		opts:      opts,
		q:         opts.Query.Clone(),
		n:         n,
		dim:       dim,
		kind:      kind,
		arena:     newCombArena(n),
		t:         posInf,
		sep:       sep,
		scorer:    scorer,
		blk:       blk,
		blockSize: blockSize,
		sufCount:  make([]int64, n+1),
	}
	e.arena.reserve(opts.K)
	e.out = newRefTopK(opts.K, e.arena, &e.stats.PeakBuffered)
	e.sink = e.out
	e.stats.Depths = make([]int, n)

	// colCap is the initial capacity of relation i's prefix columns.
	colCap := func(i int) int {
		c := prefixCap
		if l := sources[i].Relation().Len(); l < c {
			c = l
		}
		return c
	}
	colTotal := 0
	for i := range sources {
		colTotal += colCap(i)
	}

	// Every float64 the engine owns — formation scratch, block-kernel
	// lanes, and the per-relation dists/solo/qterm columns — is carved
	// from one slab, so construction costs one allocation instead of one
	// per buffer. Columns take zero-length full-capacity views (the
	// three-index slices below), so an append that outgrows its segment
	// relocates that column without touching its neighbors.
	cols := 1 // dists
	if sep != nil {
		cols++ // solo
	}
	if blk != nil {
		cols++ // qterm
	}
	nf := n + (n + 1) + dim + cols*colTotal
	if blk != nil {
		nf += 2*blockSize + n
	}
	floats := make([]float64, nf)
	takeN := func(k int) []float64 { s := floats[:k:k]; floats = floats[k:]; return s }
	takeCol := func(c int) []float64 { s := floats[:0:c]; floats = floats[c:]; return s }
	e.scrSigmas = takeN(n)
	e.sufBound = takeN(n + 1)
	e.scrMu = vec.Vector(takeN(dim))

	// Vector-view scratch shares one backing array the same way, and
	// scrRanks shares its int32 backing with the block candidate list.
	nv := n
	if blk != nil {
		nv += blockSize
	}
	vecs := make([]vec.Vector, nv)
	e.scrXs = vecs[:n:n]
	i32 := make([]int32, n, n+prefixCap)
	e.scrRanks = i32[:n:n]

	if blk != nil {
		e.scrQterms = takeN(n)
		e.blkQ = takeN(blockSize)
		e.blkOut = takeN(blockSize)
		e.blkXs = vecs[n : n+blockSize : n+blockSize]
		e.blkCands = i32[n:n:cap(i32)]
		// Pre-size the kernel scratch to the full block width: the widths
		// ScoreBlock sees grow with the candidate lists, and regrowing
		// lane buffers mid-run would allocate on the hot path.
		e.blkScr.Ensure(dim, blockSize)
	}

	// The relation states live in one backing array and their tuple
	// columns in one slab; the float columns come from the slab above.
	states := make([]relState, n)
	e.rels = make([]*relState, n)
	tupSlab := make([]relation.Tuple, colTotal)
	for i, s := range sources {
		c := colCap(i)
		rs := &states[i]
		rs.index = i
		rs.src = s
		rs.maxScore = s.Relation().MaxScore
		rs.tuples = tupSlab[:0:c]
		tupSlab = tupSlab[c:]
		rs.dists = takeCol(c)
		if sep != nil {
			rs.solo = takeCol(c)
		}
		if blk != nil {
			rs.qterm = takeCol(c)
		}
		e.rels[i] = rs
	}

	// Select the bounding scheme. The tight bound needs the quadratic
	// geometry; otherwise fall back to the corner bound (still correct).
	wantTight := opts.Algorithm.Bound() == TightBound
	quad, isQuad := opts.Agg.(agg.Quadratic)
	switch {
	case wantTight && isQuad && kind == relation.DistanceAccess:
		e.bound = newTightDistBounder(e, quad)
	case wantTight && isQuad && kind == relation.ScoreAccess:
		e.bound = newTightScoreBounder(e, quad)
	case wantTight:
		e.stats.BoundDowngraded = true
		fallthrough
	default:
		e.bound = newCornerBounder(e)
	}
	if opts.Algorithm.Pull() == PotentialAdaptive {
		e.pull = &potentialAdaptive{}
	} else {
		e.pull = &roundRobin{}
	}
	return e, nil
}

// Run executes Algorithm 1 to completion and returns the top-K result.
func (e *Engine) Run() (Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the loop checks ctx
// between pulls and aborts with a wrapped ctx.Err() as soon as the
// deadline passes or the context is canceled. A canceled run returns no
// partial result — callers that want progress under a budget should use
// MaxSumDepths/MaxCombinations instead, which end with a DNF result.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	start := time.Now()
	dnf := false
	for {
		if done := e.satisfied(); done {
			break
		}
		if e.capped() {
			dnf = true
			break
		}
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("core: run canceled after %d accesses: %w", e.stats.SumDepths, err)
		}
		ri := e.pull.choose(e)
		if ri < 0 {
			break // all exhausted: everything has been seen
		}
		if err := e.step(ri); err != nil {
			return Result{}, err
		}
	}
	e.stats.TotalTime = time.Since(start)
	refs := e.out.sortedRefs()
	combs := make([]Combination, len(refs))
	for i, ref := range refs {
		combs[i] = e.materialize(ref)
	}
	return Result{
		Combinations: combs,
		Threshold:    e.t,
		DNF:          dnf,
		Stats:        e.stats,
	}, nil
}

// materialize converts an arena-backed ref into a public Combination,
// reconstructing tuples from the relation prefixes (rank r of relation i
// is always rels[i].tuples[r] — prefixes only ever grow).
//
// The emitted slices are carved from chunked backing arrays (capacity-
// capped views, so callers appending to a Combination cannot clobber a
// neighbor) instead of two allocations per emission: a batch drain of K
// results costs two chunk allocations, and a long-lived iterator pays
// two per matChunk emissions. A full chunk is abandoned to the garbage
// collector once every Combination carved from it is dropped; one
// retained Combination keeps at most matChunk·n entries alive.
func (e *Engine) materialize(ref combRef) Combination {
	const matChunk = 16
	rank32 := e.arena.ranksAt(ref.slot)
	if len(e.matTuples)+e.n > cap(e.matTuples) {
		c := matChunk * e.n
		if k := e.opts.K * e.n; c < k {
			c = k // a batch drain emits K at once; carve it in one chunk
		}
		e.matTuples = make([]relation.Tuple, 0, c)
		e.matRanks = make([]int, 0, c)
	}
	mt, mr := len(e.matTuples), len(e.matRanks)
	for i, r := range rank32 {
		e.matTuples = append(e.matTuples, e.rels[i].tuples[r])
		e.matRanks = append(e.matRanks, int(r))
	}
	tuples := e.matTuples[mt : mt+e.n : mt+e.n]
	ranks := e.matRanks[mr : mr+e.n : mr+e.n]
	return Combination{Tuples: tuples, Ranks: ranks, Score: ref.score}
}

// satisfied implements the stopping test of Algorithm 1 line 3: the buffer
// holds K combinations whose worst score is at least the bound (less the
// optional approximation slack).
func (e *Engine) satisfied() bool {
	if e.out.len() < e.opts.K {
		return false
	}
	return e.out.kthScore() >= e.t-e.opts.Epsilon-1e-9
}

func (e *Engine) capped() bool {
	if e.opts.MaxSumDepths > 0 && e.stats.SumDepths >= e.opts.MaxSumDepths {
		return true
	}
	if e.opts.MaxCombinations > 0 && e.stats.CombinationsFormed >= e.opts.MaxCombinations {
		return true
	}
	return false
}

// step pulls one tuple from relation ri, forms the new combinations, and
// updates the bound (Algorithm 1 lines 5-9). The wall-clock sampling of
// the bound components only runs under Options.CollectTimings, so the
// default hot path pays no timer calls per pull.
func (e *Engine) step(ri int) error {
	rs := e.rels[ri]
	var pStart time.Time
	if e.opts.Tracer != nil {
		pStart = time.Now()
	}
	tup, err := rs.src.Next()
	if errors.Is(err, relation.ErrExhausted) {
		rs.exhausted = true
		var bStart time.Time
		if e.opts.CollectTimings {
			bStart = time.Now()
		}
		e.bound.registerExhausted(ri)
		e.t = e.bound.threshold()
		if e.opts.CollectTimings {
			e.stats.BoundTime += time.Since(bStart)
		}
		if e.opts.Tracer != nil {
			e.opts.Tracer.TraceBound(e.stats.SumDepths, e.t)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: access to relation %d (%s): %w", ri, rs.src.Relation().Name, err)
	}
	e.pulls++
	e.stats.Depths[ri]++
	e.stats.SumDepths++

	// One distance evaluation serves formation, the prefix statistics the
	// bounders read, and the separable pruning term.
	dist := e.opts.Agg.Metric().Distance(tup.Vec, e.q)
	var solo float64
	if e.sep != nil {
		solo = e.sep.SoloBound(ri, tup.Score, dist)
	}
	var qt float64
	if e.blk != nil {
		qt = e.blk.QTerm(ri, tup.Score, tup.Vec, e.q)
	}

	e.formCombinations(ri, tup, solo, qt)

	rs.tuples = append(rs.tuples, tup)
	rs.dists = append(rs.dists, dist)
	if e.blk != nil {
		rs.qterm = append(rs.qterm, qt)
	}
	if e.sep != nil {
		rs.solo = append(rs.solo, solo)
		if len(rs.solo) == 1 || solo > rs.soloMax {
			rs.soloMax = solo
		}
		if a := math.Abs(solo); a > rs.soloAbsMax {
			rs.soloAbsMax = a
		}
	}

	var bStart time.Time
	var domBefore time.Duration
	if e.opts.CollectTimings {
		bStart = time.Now()
		domBefore = e.stats.DominanceTime
	}
	e.bound.register(ri)
	updated := false
	if p := e.opts.BoundPeriod; p <= 1 || e.pulls%int64(p) == 0 {
		e.t = e.bound.threshold()
		e.stats.BoundUpdates++
		updated = true
	}
	if e.opts.CollectTimings {
		// Dominance testing runs inside register but is reported as its own
		// stacked component (Fig 3(m)/(n)); keep BoundTime disjoint from it.
		e.stats.BoundTime += time.Since(bStart) - (e.stats.DominanceTime - domBefore)
	}
	if tr := e.opts.Tracer; tr != nil {
		tr.TracePull(ri, rs.depth(), time.Since(pStart))
		if updated {
			tr.TraceBound(e.stats.SumDepths, e.t)
		}
	}
	return nil
}

// formCombinations enumerates P_1 × … × {τ} × … × P_n and offers each
// member to the output buffer (Algorithm 1 lines 6-7). With a separable
// aggregation, subtrees whose best possible completion cannot beat the
// sink's score floor are cut before materialization; the skipped members
// still count into Stats.CombinationsFormed (and CombinationsPruned), so
// the paper's cost metric and the MaxCombinations cap semantics are
// unchanged by pruning.
func (e *Engine) formCombinations(ri int, tup relation.Tuple, solo, qt float64) {
	for _, rs := range e.rels {
		if rs.index != ri && rs.depth() == 0 {
			return
		}
	}
	// The new tuple occupies its slot at every leaf; its rank is the depth
	// before append.
	e.scrRanks[ri] = int32(e.rels[ri].depth())
	e.scrSigmas[ri] = tup.Score
	e.scrXs[ri] = tup.Vec
	if e.blk != nil {
		e.scrQterms[ri] = qt
		// The innermost level that varies (the pulled slot never does) is
		// where the batched kernel takes over from the recursion.
		last := e.n - 1
		if last == ri {
			last--
		}
		e.lastVar = last
	}
	if e.sep != nil {
		// Suffix tables over the remaining levels: the best additional solo
		// mass and the number of leaves below each level. pruneMag collects
		// the largest term magnitude any partial sum can contain, which
		// sets the scale of its floating-point error (see pruneSlack).
		var sb float64
		sc := int64(1)
		mag := math.Abs(solo)
		e.sufBound[e.n] = 0
		e.sufCount[e.n] = 1
		for i := e.n - 1; i >= 0; i-- {
			if i != ri {
				sb += e.rels[i].soloMax
				// Saturate: wide joins over deep prefixes can push the
				// leaf count past int64 (pruning is what makes that regime
				// reachable at all), and a wrapped count would corrupt
				// CombinationsFormed and defeat the MaxCombinations cap.
				if d := int64(e.rels[i].depth()); sc > math.MaxInt64/d {
					sc = math.MaxInt64
				} else {
					sc *= d
				}
				mag += e.rels[i].soloAbsMax
			}
			e.sufBound[i] = sb
			e.sufCount[i] = sc
		}
		e.pruneMag = mag
	}
	e.enumerate(0, ri, solo)
}

// satAdd adds counter deltas with saturation at MaxInt64, matching the
// saturated suffix counts.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// pruneSlack is the safety margin under the score floor that keeps
// pruning conservative against floating-point divergence between the
// incremental solo sums and the full aggregation: a subtree is cut only
// when its upper bound is below floor − slack, so rounding can never
// prune a combination the buffer would have admitted (admitting a doomed
// one is harmless — offer rejects it exactly as before). The margin
// scales with the magnitude of the summed terms (mag), not just the
// floor: solo terms can be many orders larger than the scores they
// cancel to, and the summation error follows the terms. 1e-9 relative
// overshoots the actual ~1e-15-per-term error by six orders while still
// being far below any meaningful score separation.
func pruneSlack(floor, mag float64) float64 {
	return 1e-9 * (1 + math.Abs(floor) + mag)
}

// enumerate recurses over relation levels, carrying the partial solo sum
// of the chosen tuples (meaningful only when e.sep != nil).
func (e *Engine) enumerate(i, skip int, partial float64) {
	if i == e.n {
		e.stats.CombinationsFormed++
		var score float64
		if e.scorer != nil {
			score = e.scorer.ScoreScratch(e.q, e.scrSigmas, e.scrXs, e.scrMu)
		} else {
			score = e.opts.Agg.Score(e.q, e.scrSigmas, e.scrXs)
		}
		e.sink.offer(score, e.scrRanks)
		return
	}
	if i == skip {
		e.enumerate(i+1, skip, partial)
		return
	}
	if e.blk != nil && i == e.lastVar {
		e.enumerateBlock(i, partial)
		return
	}
	rs := e.rels[i]
	if e.sep != nil {
		if floor, ok := e.sink.floor(); ok {
			slack := pruneSlack(floor, e.pruneMag)
			sufB, sufC := e.sufBound[i+1], e.sufCount[i+1]
			for r, t := range rs.tuples {
				next := partial + rs.solo[r]
				if next+sufB < floor-slack {
					e.stats.CombinationsFormed = satAdd(e.stats.CombinationsFormed, sufC)
					e.stats.CombinationsPruned = satAdd(e.stats.CombinationsPruned, sufC)
					continue
				}
				e.scrRanks[i] = int32(r)
				e.scrSigmas[i] = t.Score
				e.scrXs[i] = t.Vec
				if e.blk != nil {
					e.scrQterms[i] = rs.qterm[r]
				}
				e.enumerate(i+1, skip, next)
			}
			return
		}
	}
	for r, t := range rs.tuples {
		e.scrRanks[i] = int32(r)
		e.scrSigmas[i] = t.Score
		e.scrXs[i] = t.Vec
		if e.blk != nil {
			e.scrQterms[i] = rs.qterm[r]
		}
		var next float64
		if e.sep != nil {
			next = partial + rs.solo[r]
		}
		e.enumerate(i+1, skip, next)
	}
}

// enumerateBlock replaces the innermost varying level of the recursion
// with batched kernel calls. The prune filter runs first over the whole
// prefix against the sink floor captured once at entry — exactly the
// capture discipline of the scalar level, whose in-loop offers never
// refresh the floor either — then survivors are scored blockSize at a
// time and offered in rank order. Same offers, same stats, same bits.
func (e *Engine) enumerateBlock(i int, partial float64) {
	rs := e.rels[i]
	cands := e.blkCands[:0]
	pruned := false
	var floor, slack float64
	if e.sep != nil {
		if f, ok := e.sink.floor(); ok {
			pruned, floor = true, f
			slack = pruneSlack(floor, e.pruneMag)
		}
	}
	if pruned {
		sufB, sufC := e.sufBound[i+1], e.sufCount[i+1]
		for r := range rs.tuples {
			next := partial + rs.solo[r]
			if next+sufB < floor-slack {
				e.stats.CombinationsFormed = satAdd(e.stats.CombinationsFormed, sufC)
				e.stats.CombinationsPruned = satAdd(e.stats.CombinationsPruned, sufC)
				continue
			}
			cands = append(cands, int32(r))
		}
	} else {
		for r := range rs.tuples {
			cands = append(cands, int32(r))
		}
	}
	e.blkCands = cands // keep any growth for the next formation
	for start := 0; start < len(cands); start += e.blockSize {
		end := start + e.blockSize
		if end > len(cands) {
			end = len(cands)
		}
		chunk := cands[start:end]
		w := len(chunk)
		for j, r := range chunk {
			e.blkQ[j] = rs.qterm[r]
			e.blkXs[j] = rs.tuples[r].Vec
		}
		e.blk.ScoreBlock(e.q, e.scrQterms, e.scrXs, i, e.blkQ[:w], e.blkXs[:w], &e.blkScr, e.blkOut[:w])
		for j, r := range chunk {
			e.stats.CombinationsFormed++
			e.scrRanks[i] = r
			e.sink.offer(e.blkOut[j], e.scrRanks)
		}
	}
}

// Threshold returns the current upper bound t (exported for tests and
// diagnostics).
func (e *Engine) Threshold() float64 { return e.t }

// Depth returns the current depth of relation ri.
func (e *Engine) Depth(ri int) int { return e.rels[ri].depth() }

// roundRobin cycles R_1, …, R_n, skipping exhausted relations.
type roundRobin struct {
	next int
}

func (r *roundRobin) choose(e *Engine) int {
	for tries := 0; tries < e.n; tries++ {
		i := r.next % e.n
		r.next++
		if !e.rels[i].exhausted {
			return i
		}
	}
	return -1
}

// potentialAdaptive picks the relation with maximal potential (paper
// §3.3), breaking ties in favor of least depth, then least index.
type potentialAdaptive struct{}

func (p *potentialAdaptive) choose(e *Engine) int {
	best := -1
	bestPot := negInf
	for i, rs := range e.rels {
		if rs.exhausted {
			continue
		}
		pot := e.bound.potential(i)
		switch {
		case best < 0,
			pot > bestPot+potTieEps,
			pot > bestPot-potTieEps && rs.depth() < e.rels[best].depth():
			best = i
			bestPot = pot
		}
	}
	return best
}

// potTieEps treats potentials within this tolerance as tied so that the
// depth/index tie-breakers stay deterministic under floating-point noise.
const potTieEps = 1e-9
