package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

var negInf = math.Inf(-1)
var posInf = math.Inf(1)

// prefixCap is the initial capacity of the per-relation prefix slices, so
// the first few dozen pulls never reallocate them.
const prefixCap = 64

// relState is the engine-side view of one input relation: the extracted
// prefix P_i plus the first/last access statistics the bounds consume.
type relState struct {
	index     int
	src       relation.Source
	tuples    []relation.Tuple // P_i in access order
	dists     []float64        // distance from q, parallel to tuples
	exhausted bool
	maxScore  float64
	// solo holds each prefix tuple's separable upper contribution
	// (agg.Separable.SoloBound), parallel to tuples; soloMax is its running
	// maximum and soloAbsMax the running maximum magnitude (the scale of
	// the floating-point error a sum of solo terms can carry). All three
	// drive score-floor pruning during formation and stay empty when the
	// aggregation is not separable.
	solo       []float64
	soloMax    float64
	soloAbsMax float64
}

// depth returns p_i.
func (r *relState) depth() int { return len(r.tuples) }

// firstDist and lastDist are δ(x(R_i[1]), q) and δ(x(R_i[p_i]), q), both 0
// when nothing was extracted (paper convention).
func (r *relState) firstDist() float64 {
	if len(r.dists) == 0 {
		return 0
	}
	return r.dists[0]
}

func (r *relState) lastDist() float64 {
	if len(r.dists) == 0 {
		return 0
	}
	return r.dists[len(r.dists)-1]
}

// firstScore and lastScore are σ(R_i[1]) and σ(R_i[p_i]); σ_max when
// nothing was extracted (the best any unseen tuple could have).
func (r *relState) firstScore() float64 {
	if len(r.tuples) == 0 {
		return r.maxScore
	}
	return r.tuples[0].Score
}

func (r *relState) lastScore() float64 {
	if len(r.tuples) == 0 {
		return r.maxScore
	}
	return r.tuples[len(r.tuples)-1].Score
}

// bounder is the BS component of the ProxRJ template. Registration
// (integrating a new tuple or an exhaustion) is separated from threshold
// computation so that the engine can skip recomputation between blocks of
// pulls (Options.BoundPeriod, the practical trade-off of paper §4.2): a
// stale threshold remains a correct upper bound because the unseen set
// only shrinks.
type bounder interface {
	// register integrates the tuple just appended to relation ri.
	register(ri int)
	// registerExhausted reacts to relation ri running dry.
	registerExhausted(ri int)
	// threshold computes the current upper bound t on unseen combinations.
	threshold() float64
	// potential returns pot_i for the PA strategy (−inf when no unseen
	// combination can involve relation ri).
	potential(ri int) float64
}

// puller is the PS component.
type puller interface {
	// choose returns the index of a non-exhausted relation, or -1 when all
	// are exhausted.
	choose(e *Engine) int
}

// Engine executes the ProxRJ template over a fixed set of sources.
type Engine struct {
	opts  Options
	q     vec.Vector
	n     int
	dim   int
	kind  relation.AccessKind
	rels  []*relState
	arena *combArena
	out   *refTopK // the batch top-K buffer; also the default sink
	// sink receives formed combinations: out in batch mode, the session
	// buffer when a pipelined Iterator drives the engine.
	sink  refSink
	bound bounder
	pull  puller
	stats Stats
	t     float64 // current upper bound
	pulls int64   // global access counter (epoch for lazy bounds)
	// sep/scorer are the optional aggregation fast paths: sep unlocks
	// score-floor pruning, scorer the allocation-free leaf evaluation.
	sep    agg.Separable
	scorer agg.ScratchScorer
	// Formation scratch, reused across every formCombinations call.
	scrRanks  []int32
	scrSigmas []float64
	scrXs     []vec.Vector
	scrMu     vec.Vector
	sufBound  []float64 // sufBound[i]: Σ soloMax over levels ≥ i (skip excluded)
	sufCount  []int64   // sufCount[i]: Π depth over levels ≥ i (skip excluded)
	pruneMag  float64   // Σ soloAbsMax: term-magnitude scale for pruneSlack
}

// NewEngine validates the configuration and builds an engine. All sources
// must share one access kind and one dimensionality matching the query.
func NewEngine(sources []relation.Source, opts Options) (*Engine, error) {
	if len(sources) < 2 {
		return nil, ErrNoRelations
	}
	if opts.K < 1 {
		return nil, ErrBadK
	}
	if opts.Agg == nil {
		return nil, ErrNilAggregator
	}
	if opts.Epsilon < 0 || math.IsNaN(opts.Epsilon) {
		return nil, fmt.Errorf("core: Epsilon must be non-negative, got %v", opts.Epsilon)
	}
	if opts.MaxBuffered < 0 {
		return nil, fmt.Errorf("core: MaxBuffered must be non-negative, got %d", opts.MaxBuffered)
	}
	kind := sources[0].Kind()
	dim := sources[0].Relation().Dim()
	if opts.Query.Dim() != dim {
		return nil, fmt.Errorf("%w: query dim %d, relations dim %d", ErrDimMismatch, opts.Query.Dim(), dim)
	}
	for _, s := range sources[1:] {
		if s.Kind() != kind {
			return nil, ErrMixedAccess
		}
		if s.Relation().Dim() != dim {
			return nil, fmt.Errorf("%w: relation %q has dim %d, want %d",
				ErrDimMismatch, s.Relation().Name, s.Relation().Dim(), dim)
		}
	}
	e := &Engine{
		opts:      opts,
		q:         opts.Query.Clone(),
		n:         len(sources),
		dim:       dim,
		kind:      kind,
		arena:     newCombArena(len(sources)),
		t:         posInf,
		scrRanks:  make([]int32, len(sources)),
		scrSigmas: make([]float64, len(sources)),
		scrXs:     make([]vec.Vector, len(sources)),
		scrMu:     vec.New(dim),
		sufBound:  make([]float64, len(sources)+1),
		sufCount:  make([]int64, len(sources)+1),
	}
	e.out = newRefTopK(opts.K, e.arena, &e.stats.PeakBuffered)
	e.sink = e.out
	e.rels = make([]*relState, e.n)
	for i, s := range sources {
		c := prefixCap
		if l := s.Relation().Len(); l < c {
			c = l
		}
		e.rels[i] = &relState{
			index:    i,
			src:      s,
			maxScore: s.Relation().MaxScore,
			tuples:   make([]relation.Tuple, 0, c),
			dists:    make([]float64, 0, c),
		}
	}
	e.stats.Depths = make([]int, e.n)
	if !opts.disablePrune {
		if sep, ok := opts.Agg.(agg.Separable); ok {
			e.sep = sep
			for _, rs := range e.rels {
				rs.solo = make([]float64, 0, cap(rs.tuples))
			}
		}
	}
	if scorer, ok := opts.Agg.(agg.ScratchScorer); ok {
		e.scorer = scorer
	}

	// Select the bounding scheme. The tight bound needs the quadratic
	// geometry; otherwise fall back to the corner bound (still correct).
	wantTight := opts.Algorithm.Bound() == TightBound
	quad, isQuad := opts.Agg.(agg.Quadratic)
	switch {
	case wantTight && isQuad && kind == relation.DistanceAccess:
		e.bound = newTightDistBounder(e, quad)
	case wantTight && isQuad && kind == relation.ScoreAccess:
		e.bound = newTightScoreBounder(e, quad)
	case wantTight:
		e.stats.BoundDowngraded = true
		fallthrough
	default:
		e.bound = newCornerBounder(e)
	}
	if opts.Algorithm.Pull() == PotentialAdaptive {
		e.pull = &potentialAdaptive{}
	} else {
		e.pull = &roundRobin{}
	}
	return e, nil
}

// Run executes Algorithm 1 to completion and returns the top-K result.
func (e *Engine) Run() (Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the loop checks ctx
// between pulls and aborts with a wrapped ctx.Err() as soon as the
// deadline passes or the context is canceled. A canceled run returns no
// partial result — callers that want progress under a budget should use
// MaxSumDepths/MaxCombinations instead, which end with a DNF result.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	start := time.Now()
	dnf := false
	for {
		if done := e.satisfied(); done {
			break
		}
		if e.capped() {
			dnf = true
			break
		}
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("core: run canceled after %d accesses: %w", e.stats.SumDepths, err)
		}
		ri := e.pull.choose(e)
		if ri < 0 {
			break // all exhausted: everything has been seen
		}
		if err := e.step(ri); err != nil {
			return Result{}, err
		}
	}
	e.stats.TotalTime = time.Since(start)
	refs := e.out.sortedRefs()
	combs := make([]Combination, len(refs))
	for i, ref := range refs {
		combs[i] = e.materialize(ref)
	}
	return Result{
		Combinations: combs,
		Threshold:    e.t,
		DNF:          dnf,
		Stats:        e.stats,
	}, nil
}

// materialize converts an arena-backed ref into a public Combination,
// reconstructing tuples from the relation prefixes (rank r of relation i
// is always rels[i].tuples[r] — prefixes only ever grow).
func (e *Engine) materialize(ref combRef) Combination {
	rank32 := e.arena.ranksAt(ref.slot)
	tuples := make([]relation.Tuple, e.n)
	ranks := make([]int, e.n)
	for i, r := range rank32 {
		tuples[i] = e.rels[i].tuples[r]
		ranks[i] = int(r)
	}
	return Combination{Tuples: tuples, Ranks: ranks, Score: ref.score}
}

// satisfied implements the stopping test of Algorithm 1 line 3: the buffer
// holds K combinations whose worst score is at least the bound (less the
// optional approximation slack).
func (e *Engine) satisfied() bool {
	if e.out.len() < e.opts.K {
		return false
	}
	return e.out.kthScore() >= e.t-e.opts.Epsilon-1e-9
}

func (e *Engine) capped() bool {
	if e.opts.MaxSumDepths > 0 && e.stats.SumDepths >= e.opts.MaxSumDepths {
		return true
	}
	if e.opts.MaxCombinations > 0 && e.stats.CombinationsFormed >= e.opts.MaxCombinations {
		return true
	}
	return false
}

// step pulls one tuple from relation ri, forms the new combinations, and
// updates the bound (Algorithm 1 lines 5-9). The wall-clock sampling of
// the bound components only runs under Options.CollectTimings, so the
// default hot path pays no timer calls per pull.
func (e *Engine) step(ri int) error {
	rs := e.rels[ri]
	var pStart time.Time
	if e.opts.Tracer != nil {
		pStart = time.Now()
	}
	tup, err := rs.src.Next()
	if errors.Is(err, relation.ErrExhausted) {
		rs.exhausted = true
		var bStart time.Time
		if e.opts.CollectTimings {
			bStart = time.Now()
		}
		e.bound.registerExhausted(ri)
		e.t = e.bound.threshold()
		if e.opts.CollectTimings {
			e.stats.BoundTime += time.Since(bStart)
		}
		if e.opts.Tracer != nil {
			e.opts.Tracer.TraceBound(e.stats.SumDepths, e.t)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: access to relation %d (%s): %w", ri, rs.src.Relation().Name, err)
	}
	e.pulls++
	e.stats.Depths[ri]++
	e.stats.SumDepths++

	// One distance evaluation serves formation, the prefix statistics the
	// bounders read, and the separable pruning term.
	dist := e.opts.Agg.Metric().Distance(tup.Vec, e.q)
	var solo float64
	if e.sep != nil {
		solo = e.sep.SoloBound(ri, tup.Score, dist)
	}

	e.formCombinations(ri, tup, solo)

	rs.tuples = append(rs.tuples, tup)
	rs.dists = append(rs.dists, dist)
	if e.sep != nil {
		rs.solo = append(rs.solo, solo)
		if len(rs.solo) == 1 || solo > rs.soloMax {
			rs.soloMax = solo
		}
		if a := math.Abs(solo); a > rs.soloAbsMax {
			rs.soloAbsMax = a
		}
	}

	var bStart time.Time
	var domBefore time.Duration
	if e.opts.CollectTimings {
		bStart = time.Now()
		domBefore = e.stats.DominanceTime
	}
	e.bound.register(ri)
	updated := false
	if p := e.opts.BoundPeriod; p <= 1 || e.pulls%int64(p) == 0 {
		e.t = e.bound.threshold()
		e.stats.BoundUpdates++
		updated = true
	}
	if e.opts.CollectTimings {
		// Dominance testing runs inside register but is reported as its own
		// stacked component (Fig 3(m)/(n)); keep BoundTime disjoint from it.
		e.stats.BoundTime += time.Since(bStart) - (e.stats.DominanceTime - domBefore)
	}
	if tr := e.opts.Tracer; tr != nil {
		tr.TracePull(ri, rs.depth(), time.Since(pStart))
		if updated {
			tr.TraceBound(e.stats.SumDepths, e.t)
		}
	}
	return nil
}

// formCombinations enumerates P_1 × … × {τ} × … × P_n and offers each
// member to the output buffer (Algorithm 1 lines 6-7). With a separable
// aggregation, subtrees whose best possible completion cannot beat the
// sink's score floor are cut before materialization; the skipped members
// still count into Stats.CombinationsFormed (and CombinationsPruned), so
// the paper's cost metric and the MaxCombinations cap semantics are
// unchanged by pruning.
func (e *Engine) formCombinations(ri int, tup relation.Tuple, solo float64) {
	for _, rs := range e.rels {
		if rs.index != ri && rs.depth() == 0 {
			return
		}
	}
	// The new tuple occupies its slot at every leaf; its rank is the depth
	// before append.
	e.scrRanks[ri] = int32(e.rels[ri].depth())
	e.scrSigmas[ri] = tup.Score
	e.scrXs[ri] = tup.Vec
	if e.sep != nil {
		// Suffix tables over the remaining levels: the best additional solo
		// mass and the number of leaves below each level. pruneMag collects
		// the largest term magnitude any partial sum can contain, which
		// sets the scale of its floating-point error (see pruneSlack).
		var sb float64
		sc := int64(1)
		mag := math.Abs(solo)
		e.sufBound[e.n] = 0
		e.sufCount[e.n] = 1
		for i := e.n - 1; i >= 0; i-- {
			if i != ri {
				sb += e.rels[i].soloMax
				// Saturate: wide joins over deep prefixes can push the
				// leaf count past int64 (pruning is what makes that regime
				// reachable at all), and a wrapped count would corrupt
				// CombinationsFormed and defeat the MaxCombinations cap.
				if d := int64(e.rels[i].depth()); sc > math.MaxInt64/d {
					sc = math.MaxInt64
				} else {
					sc *= d
				}
				mag += e.rels[i].soloAbsMax
			}
			e.sufBound[i] = sb
			e.sufCount[i] = sc
		}
		e.pruneMag = mag
	}
	e.enumerate(0, ri, solo)
}

// satAdd adds counter deltas with saturation at MaxInt64, matching the
// saturated suffix counts.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// pruneSlack is the safety margin under the score floor that keeps
// pruning conservative against floating-point divergence between the
// incremental solo sums and the full aggregation: a subtree is cut only
// when its upper bound is below floor − slack, so rounding can never
// prune a combination the buffer would have admitted (admitting a doomed
// one is harmless — offer rejects it exactly as before). The margin
// scales with the magnitude of the summed terms (mag), not just the
// floor: solo terms can be many orders larger than the scores they
// cancel to, and the summation error follows the terms. 1e-9 relative
// overshoots the actual ~1e-15-per-term error by six orders while still
// being far below any meaningful score separation.
func pruneSlack(floor, mag float64) float64 {
	return 1e-9 * (1 + math.Abs(floor) + mag)
}

// enumerate recurses over relation levels, carrying the partial solo sum
// of the chosen tuples (meaningful only when e.sep != nil).
func (e *Engine) enumerate(i, skip int, partial float64) {
	if i == e.n {
		e.stats.CombinationsFormed++
		var score float64
		if e.scorer != nil {
			score = e.scorer.ScoreScratch(e.q, e.scrSigmas, e.scrXs, e.scrMu)
		} else {
			score = e.opts.Agg.Score(e.q, e.scrSigmas, e.scrXs)
		}
		e.sink.offer(score, e.scrRanks)
		return
	}
	if i == skip {
		e.enumerate(i+1, skip, partial)
		return
	}
	rs := e.rels[i]
	if e.sep != nil {
		if floor, ok := e.sink.floor(); ok {
			slack := pruneSlack(floor, e.pruneMag)
			sufB, sufC := e.sufBound[i+1], e.sufCount[i+1]
			for r, t := range rs.tuples {
				next := partial + rs.solo[r]
				if next+sufB < floor-slack {
					e.stats.CombinationsFormed = satAdd(e.stats.CombinationsFormed, sufC)
					e.stats.CombinationsPruned = satAdd(e.stats.CombinationsPruned, sufC)
					continue
				}
				e.scrRanks[i] = int32(r)
				e.scrSigmas[i] = t.Score
				e.scrXs[i] = t.Vec
				e.enumerate(i+1, skip, next)
			}
			return
		}
	}
	for r, t := range rs.tuples {
		e.scrRanks[i] = int32(r)
		e.scrSigmas[i] = t.Score
		e.scrXs[i] = t.Vec
		var next float64
		if e.sep != nil {
			next = partial + rs.solo[r]
		}
		e.enumerate(i+1, skip, next)
	}
}

// Threshold returns the current upper bound t (exported for tests and
// diagnostics).
func (e *Engine) Threshold() float64 { return e.t }

// Depth returns the current depth of relation ri.
func (e *Engine) Depth(ri int) int { return e.rels[ri].depth() }

// roundRobin cycles R_1, …, R_n, skipping exhausted relations.
type roundRobin struct {
	next int
}

func (r *roundRobin) choose(e *Engine) int {
	for tries := 0; tries < e.n; tries++ {
		i := r.next % e.n
		r.next++
		if !e.rels[i].exhausted {
			return i
		}
	}
	return -1
}

// potentialAdaptive picks the relation with maximal potential (paper
// §3.3), breaking ties in favor of least depth, then least index.
type potentialAdaptive struct{}

func (p *potentialAdaptive) choose(e *Engine) int {
	best := -1
	bestPot := negInf
	for i, rs := range e.rels {
		if rs.exhausted {
			continue
		}
		pot := e.bound.potential(i)
		switch {
		case best < 0,
			pot > bestPot+potTieEps,
			pot > bestPot-potTieEps && rs.depth() < e.rels[best].depth():
			best = i
			bestPot = pot
		}
	}
	return best
}

// potTieEps treats potentials within this tolerance as tied so that the
// depth/index tie-breakers stay deterministic under floating-point noise.
const potTieEps = 1e-9
