package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

var negInf = math.Inf(-1)
var posInf = math.Inf(1)

// relState is the engine-side view of one input relation: the extracted
// prefix P_i plus the first/last access statistics the bounds consume.
type relState struct {
	index     int
	src       relation.Source
	tuples    []relation.Tuple // P_i in access order
	dists     []float64        // distance from q, parallel to tuples
	exhausted bool
	maxScore  float64
}

// depth returns p_i.
func (r *relState) depth() int { return len(r.tuples) }

// firstDist and lastDist are δ(x(R_i[1]), q) and δ(x(R_i[p_i]), q), both 0
// when nothing was extracted (paper convention).
func (r *relState) firstDist() float64 {
	if len(r.dists) == 0 {
		return 0
	}
	return r.dists[0]
}

func (r *relState) lastDist() float64 {
	if len(r.dists) == 0 {
		return 0
	}
	return r.dists[len(r.dists)-1]
}

// firstScore and lastScore are σ(R_i[1]) and σ(R_i[p_i]); σ_max when
// nothing was extracted (the best any unseen tuple could have).
func (r *relState) firstScore() float64 {
	if len(r.tuples) == 0 {
		return r.maxScore
	}
	return r.tuples[0].Score
}

func (r *relState) lastScore() float64 {
	if len(r.tuples) == 0 {
		return r.maxScore
	}
	return r.tuples[len(r.tuples)-1].Score
}

// bounder is the BS component of the ProxRJ template. Registration
// (integrating a new tuple or an exhaustion) is separated from threshold
// computation so that the engine can skip recomputation between blocks of
// pulls (Options.BoundPeriod, the practical trade-off of paper §4.2): a
// stale threshold remains a correct upper bound because the unseen set
// only shrinks.
type bounder interface {
	// register integrates the tuple just appended to relation ri.
	register(ri int)
	// registerExhausted reacts to relation ri running dry.
	registerExhausted(ri int)
	// threshold computes the current upper bound t on unseen combinations.
	threshold() float64
	// potential returns pot_i for the PA strategy (−inf when no unseen
	// combination can involve relation ri).
	potential(ri int) float64
}

// puller is the PS component.
type puller interface {
	// choose returns the index of a non-exhausted relation, or -1 when all
	// are exhausted.
	choose(e *Engine) int
}

// Engine executes the ProxRJ template over a fixed set of sources.
type Engine struct {
	opts   Options
	q      vec.Vector
	n      int
	dim    int
	kind   relation.AccessKind
	rels   []*relState
	out    *topK
	bound  bounder
	pull   puller
	stats  Stats
	t      float64 // current upper bound
	pulls  int64   // global access counter (epoch for lazy bounds)
	result []Combination
	// sink, when set, receives formed combinations instead of the top-K
	// buffer (used by the pipelined Iterator).
	sink func(Combination)
}

// NewEngine validates the configuration and builds an engine. All sources
// must share one access kind and one dimensionality matching the query.
func NewEngine(sources []relation.Source, opts Options) (*Engine, error) {
	if len(sources) < 2 {
		return nil, ErrNoRelations
	}
	if opts.K < 1 {
		return nil, ErrBadK
	}
	if opts.Agg == nil {
		return nil, ErrNilAggregator
	}
	if opts.Epsilon < 0 || math.IsNaN(opts.Epsilon) {
		return nil, fmt.Errorf("core: Epsilon must be non-negative, got %v", opts.Epsilon)
	}
	kind := sources[0].Kind()
	dim := sources[0].Relation().Dim()
	if opts.Query.Dim() != dim {
		return nil, fmt.Errorf("%w: query dim %d, relations dim %d", ErrDimMismatch, opts.Query.Dim(), dim)
	}
	for _, s := range sources[1:] {
		if s.Kind() != kind {
			return nil, ErrMixedAccess
		}
		if s.Relation().Dim() != dim {
			return nil, fmt.Errorf("%w: relation %q has dim %d, want %d",
				ErrDimMismatch, s.Relation().Name, s.Relation().Dim(), dim)
		}
	}
	e := &Engine{
		opts: opts,
		q:    opts.Query.Clone(),
		n:    len(sources),
		dim:  dim,
		kind: kind,
		out:  newTopK(opts.K),
		t:    posInf,
	}
	e.rels = make([]*relState, e.n)
	for i, s := range sources {
		e.rels[i] = &relState{index: i, src: s, maxScore: s.Relation().MaxScore}
	}
	e.stats.Depths = make([]int, e.n)

	// Select the bounding scheme. The tight bound needs the quadratic
	// geometry; otherwise fall back to the corner bound (still correct).
	wantTight := opts.Algorithm.Bound() == TightBound
	quad, isQuad := opts.Agg.(agg.Quadratic)
	switch {
	case wantTight && isQuad && kind == relation.DistanceAccess:
		e.bound = newTightDistBounder(e, quad)
	case wantTight && isQuad && kind == relation.ScoreAccess:
		e.bound = newTightScoreBounder(e, quad)
	case wantTight:
		e.stats.BoundDowngraded = true
		fallthrough
	default:
		e.bound = newCornerBounder(e)
	}
	if opts.Algorithm.Pull() == PotentialAdaptive {
		e.pull = &potentialAdaptive{}
	} else {
		e.pull = &roundRobin{}
	}
	return e, nil
}

// Run executes Algorithm 1 to completion and returns the top-K result.
func (e *Engine) Run() (Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the loop checks ctx
// between pulls and aborts with a wrapped ctx.Err() as soon as the
// deadline passes or the context is canceled. A canceled run returns no
// partial result — callers that want progress under a budget should use
// MaxSumDepths/MaxCombinations instead, which end with a DNF result.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	start := time.Now()
	dnf := false
	for {
		if done := e.satisfied(); done {
			break
		}
		if e.capped() {
			dnf = true
			break
		}
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("core: run canceled after %d accesses: %w", e.stats.SumDepths, err)
		}
		ri := e.pull.choose(e)
		if ri < 0 {
			break // all exhausted: everything has been seen
		}
		if err := e.step(ri); err != nil {
			return Result{}, err
		}
	}
	e.stats.TotalTime = time.Since(start)
	return Result{
		Combinations: e.out.sorted(),
		Threshold:    e.t,
		DNF:          dnf,
		Stats:        e.stats,
	}, nil
}

// satisfied implements the stopping test of Algorithm 1 line 3: the buffer
// holds K combinations whose worst score is at least the bound (less the
// optional approximation slack).
func (e *Engine) satisfied() bool {
	if e.out.len() < e.opts.K {
		return false
	}
	return e.out.kthScore() >= e.t-e.opts.Epsilon-1e-9
}

func (e *Engine) capped() bool {
	if e.opts.MaxSumDepths > 0 && e.stats.SumDepths >= e.opts.MaxSumDepths {
		return true
	}
	if e.opts.MaxCombinations > 0 && e.stats.CombinationsFormed >= e.opts.MaxCombinations {
		return true
	}
	return false
}

// step pulls one tuple from relation ri, forms the new combinations, and
// updates the bound (Algorithm 1 lines 5-9).
func (e *Engine) step(ri int) error {
	rs := e.rels[ri]
	tup, err := rs.src.Next()
	if errors.Is(err, relation.ErrExhausted) {
		rs.exhausted = true
		bStart := time.Now()
		e.bound.registerExhausted(ri)
		e.t = e.bound.threshold()
		e.stats.BoundTime += time.Since(bStart)
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: access to relation %d (%s): %w", ri, rs.src.Relation().Name, err)
	}
	e.pulls++
	e.stats.Depths[ri]++
	e.stats.SumDepths++

	e.formCombinations(ri, tup)

	rs.tuples = append(rs.tuples, tup)
	rs.dists = append(rs.dists, e.opts.Agg.Metric().Distance(tup.Vec, e.q))

	bStart := time.Now()
	domBefore := e.stats.DominanceTime
	e.bound.register(ri)
	if p := e.opts.BoundPeriod; p <= 1 || e.pulls%int64(p) == 0 {
		e.t = e.bound.threshold()
		e.stats.BoundUpdates++
	}
	// Dominance testing runs inside register but is reported as its own
	// stacked component (Fig 3(m)/(n)); keep BoundTime disjoint from it.
	e.stats.BoundTime += time.Since(bStart) - (e.stats.DominanceTime - domBefore)
	return nil
}

// formCombinations materializes P_1 × … × {τ} × … × P_n and offers each
// member to the output buffer (Algorithm 1 lines 6-7).
func (e *Engine) formCombinations(ri int, tup relation.Tuple) {
	for _, rs := range e.rels {
		if rs.index != ri && rs.depth() == 0 {
			return
		}
	}
	tuples := make([]relation.Tuple, e.n)
	ranks := make([]int, e.n)
	sigmas := make([]float64, e.n)
	xs := make([]vec.Vector, e.n)
	tuples[ri] = tup
	ranks[ri] = e.rels[ri].depth() // rank of the new tuple (0-based = current depth before append)
	sigmas[ri] = tup.Score
	xs[ri] = tup.Vec
	e.enumerate(0, ri, tuples, ranks, sigmas, xs)
}

func (e *Engine) enumerate(i, skip int, tuples []relation.Tuple, ranks []int, sigmas []float64, xs []vec.Vector) {
	if i == e.n {
		score := e.opts.Agg.Score(e.q, sigmas, xs)
		comb := Combination{
			Tuples: append([]relation.Tuple(nil), tuples...),
			Ranks:  append([]int(nil), ranks...),
			Score:  score,
		}
		if e.sink != nil {
			e.sink(comb)
		} else {
			e.out.push(comb)
		}
		e.stats.CombinationsFormed++
		return
	}
	if i == skip {
		e.enumerate(i+1, skip, tuples, ranks, sigmas, xs)
		return
	}
	for r, t := range e.rels[i].tuples {
		tuples[i] = t
		ranks[i] = r
		sigmas[i] = t.Score
		xs[i] = t.Vec
		e.enumerate(i+1, skip, tuples, ranks, sigmas, xs)
	}
}

// Threshold returns the current upper bound t (exported for tests and
// diagnostics).
func (e *Engine) Threshold() float64 { return e.t }

// Depth returns the current depth of relation ri.
func (e *Engine) Depth(ri int) int { return e.rels[ri].depth() }

// roundRobin cycles R_1, …, R_n, skipping exhausted relations.
type roundRobin struct {
	next int
}

func (r *roundRobin) choose(e *Engine) int {
	for tries := 0; tries < e.n; tries++ {
		i := r.next % e.n
		r.next++
		if !e.rels[i].exhausted {
			return i
		}
	}
	return -1
}

// potentialAdaptive picks the relation with maximal potential (paper
// §3.3), breaking ties in favor of least depth, then least index.
type potentialAdaptive struct{}

func (p *potentialAdaptive) choose(e *Engine) int {
	best := -1
	bestPot := negInf
	for i, rs := range e.rels {
		if rs.exhausted {
			continue
		}
		pot := e.bound.potential(i)
		switch {
		case best < 0,
			pot > bestPot+potTieEps,
			pot > bestPot-potTieEps && rs.depth() < e.rels[best].depth():
			best = i
			bestPot = pot
		}
	}
	return best
}

// potTieEps treats potentials within this tolerance as tied so that the
// depth/index tie-breakers stay deterministic under floating-point noise.
const potTieEps = 1e-9
