package core

import (
	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

// tightScoreBounder implements the tight bound for score-based access
// (paper Appendix C). The completion problem (39) is unconstrained in the
// unseen locations and its optimum has the closed form of eq. (41):
//
//	y* = q + (ν−q)·m·w_µ / (m·w_µ + n·w_q)
//
// Within a subset M the bound of a partial splits into a static geometric
// part and the additive unseen score caps Σ w_s·T(σ(R_i[p_i])); the caps
// shrink uniformly for every partial of M as scores descend, so only the
// best geometric value per subset must be retained (Algorithm 3's
// τ_best^M bookkeeping) — no partial list is stored at all.
//
// The geometric evaluations run through per-bounder scratch (centroid,
// optimal completion point, reconstruction list), so the steady state
// allocates nothing per partial.
type tightScoreBounder struct {
	e             *Engine
	quad          agg.Quadratic
	ws, wq, wmu   float64
	subsets       []*scoreSubset
	exhaustedMask int
	// geo scratch, reused across every geometric evaluation.
	nuBuf    vec.Vector
	diffBuf  vec.Vector
	ystarBuf vec.Vector
	muBuf    vec.Vector
	ptsBuf   []vec.Vector
	// extendSubset walk state (single-threaded recursion scratch).
	extOthers []int
	extXs     []vec.Vector
	extSS     *scoreSubset
	extPos    int
	extTauT   float64
}

type scoreSubset struct {
	mask    int
	members []int
	unseen  []int
	bestGeo float64 // max over PC(M) of the geometric bound part
	any     bool
}

func newTightScoreBounder(e *Engine, quad agg.Quadratic) *tightScoreBounder {
	ws, wq, wmu := quad.Weights()
	b := &tightScoreBounder{
		e:    e,
		quad: quad,
		ws:   ws, wq: wq, wmu: wmu,
		nuBuf:     vec.New(e.dim),
		diffBuf:   vec.New(e.dim),
		ystarBuf:  vec.New(e.dim),
		muBuf:     vec.New(e.dim),
		ptsBuf:    make([]vec.Vector, 0, e.n),
		extOthers: make([]int, 0, e.n),
		extXs:     make([]vec.Vector, e.n),
	}
	full := 1 << e.n
	b.subsets = make([]*scoreSubset, full-1)
	for mask := 0; mask < full-1; mask++ {
		ss := &scoreSubset{mask: mask, bestGeo: negInf}
		for i := 0; i < e.n; i++ {
			if mask&(1<<i) != 0 {
				ss.members = append(ss.members, i)
			} else {
				ss.unseen = append(ss.unseen, i)
			}
		}
		b.subsets[mask] = ss
	}
	// The empty partial: all n points at the optimum y* = q, zero distance
	// penalties, zero seen score.
	b.subsets[0].bestGeo = 0
	b.subsets[0].any = true
	e.stats.PartialsTracked++
	return b
}

func (b *tightScoreBounder) register(ri int) {
	rs := b.e.rels[ri]
	tau := rs.tuples[len(rs.tuples)-1]
	for _, ss := range b.subsets {
		if ss.mask&(1<<ri) == 0 {
			continue
		}
		b.extendSubset(ss, ri, tau)
	}
}

// extendSubset evaluates the geometric bound of every new partial
// PC(M−{ri}) × {τ} and keeps the per-subset maximum. The walk state lives
// on the bounder (the engine is single-threaded), so the enumeration
// itself allocates nothing.
func (b *tightScoreBounder) extendSubset(ss *scoreSubset, ri int, tau relation.Tuple) {
	// Enumerate the cartesian product of the other members' buffers.
	others := b.extOthers[:0]
	for _, j := range ss.members {
		if j != ri {
			others = append(others, j)
		}
	}
	b.extOthers = others
	xs := b.extXs[:len(ss.members)]
	// Position of ri within members.
	pos := 0
	for pos < len(ss.members) && ss.members[pos] != ri {
		pos++
	}
	xs[pos] = tau.Vec
	b.extSS, b.extPos = ss, pos
	b.extTauT = b.ws * b.quad.TransformScore(tau.Score)
	b.extend(0, 0)
}

// extend recurses over the other members' prefixes (extendSubset's state).
func (b *tightScoreBounder) extend(oi int, acc float64) {
	ss := b.extSS
	xs := b.extXs[:len(ss.members)]
	if oi == len(b.extOthers) {
		if g := b.geo(xs, acc+b.extTauT); g > ss.bestGeo {
			ss.bestGeo = g
		}
		ss.any = true
		b.e.stats.PartialsTracked++
		return
	}
	j := b.extOthers[oi]
	xi := oi
	if oi >= b.extPos {
		xi = oi + 1
	}
	for _, t := range b.e.rels[j].tuples {
		xs[xi] = t.Vec
		b.extend(oi+1, acc+b.ws*b.quad.TransformScore(t.Score))
	}
}

// geo evaluates the geometric part of the bound: seen transformed scores
// plus the distance penalties at the closed-form optimal completion. The
// scratch-based evaluation replays the allocating formulation's
// floating-point operation sequence exactly (MeanInto ≡ Mean,
// AddScaledInto ≡ AddScaled over SubInto ≡ Sub).
func (b *tightScoreBounder) geo(xs []vec.Vector, sumT float64) float64 {
	e := b.e
	m := len(xs)
	n := e.n
	u := n - m

	ystar := e.q
	if m > 0 && b.wmu != 0 {
		nu := vec.MeanInto(b.nuBuf, xs)
		denom := float64(m)*b.wmu + float64(n)*b.wq
		if denom > 0 {
			diff := vec.SubInto(b.diffBuf, nu, e.q)
			ystar = vec.AddScaledInto(b.ystarBuf, e.q, float64(m)*b.wmu/denom, diff)
		}
	}
	pts := b.ptsBuf[:0]
	pts = append(pts, xs...)
	for k := 0; k < u; k++ {
		pts = append(pts, ystar)
	}
	mu := vec.MeanInto(b.muBuf, pts)
	val := sumT
	for _, pt := range pts {
		val -= b.wq*pt.Dist2(e.q) + b.wmu*pt.Dist2(mu)
	}
	e.stats.QPSolves++
	return val
}

func (b *tightScoreBounder) registerExhausted(ri int) {
	b.exhaustedMask |= 1 << ri
}

func (b *tightScoreBounder) valid(ss *scoreSubset) bool {
	return ss.any && ss.mask&b.exhaustedMask == b.exhaustedMask
}

// tsM is the subset bound: best geometric part plus the current unseen
// score caps (eq. (40) with the Algorithm 3 incremental bookkeeping).
func (b *tightScoreBounder) tsM(ss *scoreSubset) float64 {
	v := ss.bestGeo
	for _, j := range ss.unseen {
		v += b.ws * b.quad.TransformScore(b.e.rels[j].lastScore())
	}
	return v
}

func (b *tightScoreBounder) threshold() float64 {
	t := negInf
	for _, ss := range b.subsets {
		if !b.valid(ss) {
			continue
		}
		if tm := b.tsM(ss); tm > t {
			t = tm
		}
	}
	return t
}

func (b *tightScoreBounder) potential(ri int) float64 {
	if b.e.rels[ri].exhausted {
		return negInf
	}
	pot := negInf
	bit := 1 << ri
	for _, ss := range b.subsets {
		if ss.mask&bit != 0 || !b.valid(ss) {
			continue
		}
		if tm := b.tsM(ss); tm > pot {
			pot = tm
		}
	}
	return pot
}
