package core

import (
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

// ---------------------------------------------------------------------------
// Golden tests against every worked example in the paper.
// ---------------------------------------------------------------------------

// table1Relations builds the three relations of paper Table 1.
func table1Relations(t testing.TB) []*relation.Relation {
	t.Helper()
	r1 := relation.MustNew("R1", 1.0, []relation.Tuple{
		{ID: "t1_1", Score: 0.5, Vec: vec.Of(0, -0.5)},
		{ID: "t1_2", Score: 1.0, Vec: vec.Of(0, 1)},
	})
	r2 := relation.MustNew("R2", 1.0, []relation.Tuple{
		{ID: "t2_1", Score: 1.0, Vec: vec.Of(1, 1)},
		{ID: "t2_2", Score: 0.8, Vec: vec.Of(-2, 2)},
	})
	r3 := relation.MustNew("R3", 1.0, []relation.Tuple{
		{ID: "t3_1", Score: 1.0, Vec: vec.Of(-1, 1)},
		{ID: "t3_2", Score: 0.4, Vec: vec.Of(-2, -2)},
	})
	return []*relation.Relation{r1, r2, r3}
}

func distanceSources(t testing.TB, rels []*relation.Relation, q vec.Vector) []relation.Source {
	t.Helper()
	out := make([]relation.Source, len(rels))
	for i, r := range rels {
		s, err := relation.NewDistanceSource(r, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func defaultAgg() agg.Function {
	return agg.MustEuclideanSum(agg.DefaultWeights(), agg.LogScore)
}

// TestPaperTable1 checks that the Naive oracle reproduces the eight sorted
// combination scores of Table 1.
func TestPaperTable1(t *testing.T) {
	rels := table1Relations(t)
	combos, err := Naive(rels, vec.Of(0, 0), defaultAgg(), 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-7.0, -8.4, -13.9, -16.3, -21.0, -22.6, -28.9, -29.5}
	if len(combos) != len(want) {
		t.Fatalf("got %d combinations, want %d", len(combos), len(want))
	}
	for i, w := range want {
		if math.Abs(combos[i].Score-w) > 0.05 {
			t.Errorf("combo %d score %.2f, want %.1f", i, combos[i].Score, w)
		}
	}
}

// engineAfterFullTable1 pulls both tuples of each relation (p_i = 2).
func engineAfterFullTable1(t *testing.T, a Algorithm) *Engine {
	t.Helper()
	rels := table1Relations(t)
	q := vec.Of(0, 0)
	e, err := NewEngine(distanceSources(t, rels, q), Options{
		K: 1, Algorithm: a, Query: q, Agg: defaultAgg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range []int{0, 0, 1, 1, 2, 2} {
		if err := e.step(ri); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestPaperTable3 checks every per-subset bound t_M of Table 3 and the
// final tight threshold t = −7, achieved by completing τ2^(1) × τ3^(1).
func TestPaperTable3(t *testing.T) {
	e := engineAfterFullTable1(t, TBRR)
	b := e.bound.(*tightDistBounder)

	// Relation bits: R1 = 1, R2 = 2, R3 = 4.
	wantTM := map[int]float64{
		0: -19.2, // ∅
		1: -19.2, // {1}
		2: -12.8, // {2}
		4: -12.8, // {3}
		3: -13.5, // {1,2}
		5: -13.5, // {1,3}
		6: -7.0,  // {2,3}
	}
	for mask, want := range wantTM {
		got := b.tM(b.subsets[mask])
		if math.Abs(got-want) > 0.05 {
			t.Errorf("t_M for mask %03b = %.2f, want %.1f", mask, got, want)
		}
	}
	if got := b.threshold(); math.Abs(got-(-7)) > 0.05 {
		t.Errorf("tight threshold = %.2f, want -7", got)
	}
	if math.Abs(e.Threshold()-(-7)) > 0.05 {
		t.Errorf("engine threshold = %.2f, want -7", e.Threshold())
	}
}

// TestPaperTable3PerPartial checks the individual t(τ) values of Table 3.
func TestPaperTable3PerPartial(t *testing.T) {
	e := engineAfterFullTable1(t, TBRR)
	b := e.bound.(*tightDistBounder)

	// Within a subset, partials are created in pull order; for the Table 1
	// pull sequence the partial list orders are deterministic. Identify
	// each partial by the IDs of its seen tuples instead of list position.
	wantByKey := map[string]float64{
		"":          -19.2,
		"t1_1":      -20.6,
		"t1_2":      -19.2,
		"t2_1":      -12.8,
		"t2_2":      -19.4,
		"t3_1":      -12.8,
		"t3_2":      -20.1,
		"t1_1|t2_1": -16.0,
		"t1_1|t2_2": -24.0,
		"t1_2|t2_1": -13.5,
		"t1_2|t2_2": -20.4,
		"t1_1|t3_1": -16.0,
		"t1_1|t3_2": -22.0,
		"t1_2|t3_1": -13.5,
		"t1_2|t3_2": -26.4,
		"t2_1|t3_1": -7.0,
		"t2_1|t3_2": -21.0,
		"t2_2|t3_1": -13.1,
		"t2_2|t3_2": -26.8,
	}
	rels := table1Relations(t)
	idOf := func(ri int, x vec.Vector) string {
		for i := 0; i < rels[ri].Len(); i++ {
			if rels[ri].At(i).Vec.Equal(x) {
				return rels[ri].At(i).ID
			}
		}
		t.Fatalf("unknown vector %v in R%d", x, ri+1)
		return ""
	}
	checked := 0
	for _, ss := range b.subsets {
		for id := range ss.partials {
			p := &ss.partials[id]
			key := ""
			for k, x := range p.xs {
				if k > 0 {
					key += "|"
				}
				key += idOf(ss.members[k], x)
			}
			want, ok := wantByKey[key]
			if !ok {
				t.Errorf("unexpected partial %q", key)
				continue
			}
			// Refresh the cached bound through the subset (lazy mode).
			b.computeBound(ss, p)
			if math.Abs(p.bound-want) > 0.05 {
				t.Errorf("t(%s) = %.2f, want %.1f", key, p.bound, want)
			}
			checked++
		}
	}
	if checked != len(wantByKey) {
		t.Errorf("checked %d partials, want %d", checked, len(wantByKey))
	}
}

// TestPaperExample31Corner checks the corner bound values of Example 3.1:
// t_c = max{−5, −10.25, −10.25} = −5, which cannot certify the true top-1
// (score −7) even though the tight bound can.
func TestPaperExample31Corner(t *testing.T) {
	e := engineAfterFullTable1(t, CBRR)
	c := e.bound.(*cornerBounder)
	wantTi := []float64{-5, -10.25, -10.25}
	for i, want := range wantTi {
		if got := c.potential(i); math.Abs(got-want) > 1e-9 {
			t.Errorf("t_%d = %v, want %v", i+1, got, want)
		}
	}
	if got := c.threshold(); math.Abs(got-(-5)) > 1e-9 {
		t.Errorf("corner threshold = %v, want -5", got)
	}
	// The seen top-1 scores −7 < t_c: the corner-bound algorithm cannot stop.
	if e.satisfied() {
		t.Error("corner bound incorrectly certified the top-1 at depth (2,2,2)")
	}
	// The tight bound can (Example 3.1).
	te := engineAfterFullTable1(t, TBRR)
	if !te.satisfied() {
		t.Error("tight bound failed to certify the top-1 at depth (2,2,2)")
	}
}

// TestPaperExample32Reconstruction checks the optimal unseen locations of
// Example 3.2 through the QP + ray reconstruction path.
func TestPaperExample32Reconstruction(t *testing.T) {
	e := engineAfterFullTable1(t, TBRR)
	b := e.bound.(*tightDistBounder)

	// Partial τ2^(1) (mask {2} = bit 1): y1* = [√2/2, √2/2], y3* = [2, 2].
	ss := b.subsets[2]
	var p *distPartial
	for id := range ss.partials {
		if ss.partials[id].xs[0].Equal(vec.Of(1, 1)) {
			p = &ss.partials[id]
		}
	}
	if p == nil {
		t.Fatal("partial τ2^(1) not found")
	}
	lower := []float64{e.rels[0].lastDist(), e.rels[2].lastDist()}
	if math.Abs(lower[0]-1) > 1e-12 || math.Abs(lower[1]-2*math.Sqrt2) > 1e-12 {
		t.Fatalf("δ = %v, want (1, 2√2)", lower)
	}
	b.computeBound(ss, p)
	if math.Abs(p.bound-(-12.8)) > 0.05 {
		t.Fatalf("t(τ2^(1)) = %.2f, want -12.8", p.bound)
	}

	// Partial τ1^(1) × τ3^(1) (mask {1,3} = 5): y2* ≈ [−2.53, 1.26], t = −16.
	ss = b.subsets[5]
	p = nil
	for id := range ss.partials {
		if ss.partials[id].xs[0].Equal(vec.Of(0, -0.5)) && ss.partials[id].xs[1].Equal(vec.Of(-1, 1)) {
			p = &ss.partials[id]
		}
	}
	if p == nil {
		t.Fatal("partial τ1^(1) × τ3^(1) not found")
	}
	b.computeBound(ss, p)
	if math.Abs(p.bound-(-16)) > 0.05 {
		t.Fatalf("t(τ1^(1)×τ3^(1)) = %.2f, want -16", p.bound)
	}
	// Reconstruct y2* explicitly.
	dir, _ := p.nu.Sub(e.q).Unit()
	if !p.nu.ApproxEqual(vec.Of(-0.5, 0.25), 1e-12) {
		t.Fatalf("ν = %v, want [-0.5 0.25]", p.nu)
	}
	y2 := e.q.AddScaled(2*math.Sqrt2, dir)
	if !y2.ApproxEqual(vec.Of(-2.5298, 1.2649), 1e-3) {
		t.Fatalf("y2* = %v, want ≈ [-2.53 1.26]", y2)
	}
}

// TestPaperExample33Dominance checks that none of the four partials of
// PC({2,3}) is dominated (Figure 2).
func TestPaperExample33Dominance(t *testing.T) {
	rels := table1Relations(t)
	q := vec.Of(0, 0)
	e, err := NewEngine(distanceSources(t, rels, q), Options{
		K: 1, Algorithm: TBRR, Query: q, Agg: defaultAgg(), DominancePeriod: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range []int{0, 0, 1, 1, 2, 2} {
		if err := e.step(ri); err != nil {
			t.Fatal(err)
		}
	}
	b := e.bound.(*tightDistBounder)
	ss := b.subsets[6] // {2,3}
	if len(ss.partials) != 4 {
		t.Fatalf("PC({2,3}) has %d partials, want 4", len(ss.partials))
	}
	b.dominanceSweep(ss)
	for i, p := range ss.partials {
		if p.dominated {
			t.Errorf("partial %d of PC({2,3}) dominated; Figure 2 shows all regions non-empty", i)
		}
	}
}

// TestPaperTheorem31 reproduces the adversarial instance of the Theorem 3.1
// proof: with the corner bound the depth on R1 grows with the number of
// filler tuples, while the tight bound stops after a bounded prefix.
func TestPaperTheorem31(t *testing.T) {
	const fillers = 30
	// w_s = 0: scores are immaterial; LogScore with σ = 1 gives 0 anyway.
	fn := agg.MustEuclideanSum(agg.Weights{Ws: 0, Wq: 1, Wmu: 1}, agg.LogScore)
	q := vec.Of(0, 0)

	r1Tuples := []relation.Tuple{
		{ID: "t1_1", Score: 1, Vec: vec.Of(0, -0.5)},
		{ID: "t1_2", Score: 1, Vec: vec.Of(0, 1)},
	}
	// Fillers strictly between distance 1 and √1.5 keep the corner bound
	// above the true top-1 score −5.5.
	for i := 0; i < fillers; i++ {
		d := 1.0 + 0.2*float64(i+1)/float64(fillers+1) // in (1, 1.2), √1.5 ≈ 1.2247
		r1Tuples = append(r1Tuples, relation.Tuple{
			ID: "filler", Score: 1, Vec: vec.Of(0, d),
		})
	}
	r1Tuples = append(r1Tuples, relation.Tuple{ID: "far", Score: 1, Vec: vec.Of(0, 2.5)})
	r1 := relation.MustNew("R1", 1, r1Tuples)
	r2 := relation.MustNew("R2", 1, []relation.Tuple{
		{ID: "t2_1", Score: 1, Vec: vec.Of(0, 2)},
		{ID: "t2_2", Score: 1, Vec: vec.Of(-2, 2)},
	})
	rels := []*relation.Relation{r1, r2}

	run := func(a Algorithm) Result {
		e, err := NewEngine(distanceSources(t, rels, q), Options{
			K: 1, Algorithm: a, Query: q, Agg: fn,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tb := run(TBRR)
	cb := run(CBRR)

	if math.Abs(tb.Combinations[0].Score-(-5.5)) > 1e-9 {
		t.Fatalf("tight top-1 score = %v, want -5.5", tb.Combinations[0].Score)
	}
	if math.Abs(cb.Combinations[0].Score-(-5.5)) > 1e-9 {
		t.Fatalf("corner top-1 score = %v, want -5.5", cb.Combinations[0].Score)
	}
	if tb.Stats.Depths[0] > 4 {
		t.Errorf("tight depth on R1 = %d, want a small constant", tb.Stats.Depths[0])
	}
	if cb.Stats.Depths[0] <= fillers {
		t.Errorf("corner depth on R1 = %d, want > %d (must pass the fillers)", cb.Stats.Depths[0], fillers)
	}
}

// TestPaperTheoremC1 reproduces the score-based adversarial instance of
// Theorem C.1: the corner bound forces reading past an arbitrary number of
// high-score fillers, the tight bound does not.
func TestPaperTheoremC1(t *testing.T) {
	const fillers = 30
	fn := defaultAgg()
	q := vec.Of(0.0)

	r1 := relation.MustNew("R1", 1, []relation.Tuple{
		{ID: "t1_1", Score: 1, Vec: vec.Of(1)},
		{ID: "t1_2", Score: math.Exp(-5), Vec: vec.Of(0)},
	})
	r2Tuples := []relation.Tuple{
		{ID: "t2_1", Score: 1, Vec: vec.Of(1)},
		{ID: "t2_2", Score: 1, Vec: vec.Of(1.0 / 3.0)},
	}
	// Fillers with scores above e^{-4/3} but placed far away.
	for i := 0; i < fillers; i++ {
		s := 0.99 - 0.7*float64(i)/float64(fillers) // stays above e^{-4/3} ≈ 0.2636
		r2Tuples = append(r2Tuples, relation.Tuple{ID: "filler", Score: s, Vec: vec.Of(50)})
	}
	r2Tuples = append(r2Tuples, relation.Tuple{ID: "low", Score: 0.1, Vec: vec.Of(60)})
	r2 := relation.MustNew("R2", 1, r2Tuples)

	run := func(a Algorithm) Result {
		e, err := NewEngine([]relation.Source{
			relation.NewScoreSource(r1), relation.NewScoreSource(r2),
		}, Options{K: 1, Algorithm: a, Query: q, Agg: fn})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tb := run(TBRR)
	cb := run(CBRR)
	if math.Abs(tb.Combinations[0].Score-(-4.0/3.0)) > 1e-9 {
		t.Fatalf("tight top-1 = %v, want -4/3", tb.Combinations[0].Score)
	}
	if math.Abs(cb.Combinations[0].Score-(-4.0/3.0)) > 1e-9 {
		t.Fatalf("corner top-1 = %v, want -4/3", cb.Combinations[0].Score)
	}
	if tb.Stats.Depths[1] > 4 {
		t.Errorf("tight depth on R2 = %d, want a small constant", tb.Stats.Depths[1])
	}
	if cb.Stats.Depths[1] <= fillers {
		t.Errorf("corner depth on R2 = %d, want > %d", cb.Stats.Depths[1], fillers)
	}
}
