package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

// randomInstance generates a random proximity rank join problem.
type instance struct {
	rels []*relation.Relation
	q    vec.Vector
	fn   agg.Function
	k    int
}

func randomInstance(r *rand.Rand, maxN, maxSize int) instance {
	n := 2 + r.Intn(maxN-1)
	d := 1 + r.Intn(3)
	rels := make([]*relation.Relation, n)
	for i := 0; i < n; i++ {
		size := 2 + r.Intn(maxSize-1)
		tuples := make([]relation.Tuple, size)
		for j := range tuples {
			v := vec.New(d)
			for c := range v {
				v[c] = r.NormFloat64() * 3
			}
			tuples[j] = relation.Tuple{
				ID:    string(rune('a'+i)) + string(rune('0'+j%10)),
				Score: 0.05 + 0.95*r.Float64(),
				Vec:   v,
			}
		}
		rels[i] = relation.MustNew(string(rune('A'+i)), 1.0, tuples)
	}
	q := vec.New(d)
	for c := range q {
		q[c] = r.NormFloat64()
	}
	transform := agg.LogScore
	if r.Intn(2) == 0 {
		transform = agg.IdentityScore
	}
	fn := agg.MustEuclideanSum(agg.Weights{
		Ws:  0.2 + r.Float64()*2,
		Wq:  0.2 + r.Float64()*2,
		Wmu: r.Float64() * 2,
	}, transform)
	return instance{rels: rels, q: q, fn: fn, k: 1 + r.Intn(5)}
}

func (in instance) sources(t testing.TB, kind relation.AccessKind) []relation.Source {
	t.Helper()
	out := make([]relation.Source, len(in.rels))
	for i, rel := range in.rels {
		if kind == relation.DistanceAccess {
			s, err := relation.NewDistanceSource(rel, in.q, in.fn.Metric())
			if err != nil {
				t.Fatal(err)
			}
			out[i] = s
		} else {
			out[i] = relation.NewScoreSource(rel)
		}
	}
	return out
}

func runAlgo(t testing.TB, in instance, kind relation.AccessKind, opts Options) Result {
	t.Helper()
	opts.K = in.k
	opts.Query = in.q
	opts.Agg = in.fn
	e, err := NewEngine(in.sources(t, kind), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func scoresOf(combos []Combination) []float64 {
	out := make([]float64, len(combos))
	for i, c := range combos {
		out[i] = c.Score
	}
	return out
}

func sameScores(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// TestQuickAllAlgorithmsMatchNaive is the central correctness property:
// every algorithm, on both access kinds, with and without dominance and
// with eager or lazy bound maintenance, returns the same top-K score
// sequence as the exhaustive oracle.
func TestQuickAllAlgorithmsMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 6)
		want, err := Naive(in.rels, in.q, in.fn, in.k)
		if err != nil {
			return false
		}
		wantScores := scoresOf(want)
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			for _, algo := range Algorithms {
				for _, domPeriod := range []int{0, 1, 3} {
					for _, eager := range []bool{false, true} {
						if domPeriod != 0 && algo.Bound() != TightBound {
							continue
						}
						res := runAlgo(t, in, kind, Options{
							Algorithm:       algo,
							DominancePeriod: domPeriod,
							EagerBounds:     eager,
						})
						if res.DNF {
							return false
						}
						if !sameScores(scoresOf(res.Combinations), wantScores, 1e-7) {
							t.Logf("seed %d kind %v algo %v dom %d eager %v: got %v want %v",
								seed, kind, algo, domPeriod, eager,
								scoresOf(res.Combinations), wantScores)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickTightNeverDeeperThanCorner: with the same pulling strategy the
// tight bound never reads more from any relation (its threshold is ≤ the
// corner threshold at every state).
func TestQuickTightNeverDeeperThanCorner(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 8)
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			cb := runAlgo(t, in, kind, Options{Algorithm: CBRR})
			tb := runAlgo(t, in, kind, Options{Algorithm: TBRR})
			for i := range cb.Stats.Depths {
				if tb.Stats.Depths[i] > cb.Stats.Depths[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickTheorem35 checks depth(TBPA, I, i) ≤ depth(TBRR, I, i) for all i.
func TestQuickTheorem35(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 8)
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			rr := runAlgo(t, in, kind, Options{Algorithm: TBRR})
			pa := runAlgo(t, in, kind, Options{Algorithm: TBPA})
			for i := range rr.Stats.Depths {
				if pa.Stats.Depths[i] > rr.Stats.Depths[i] {
					t.Logf("seed %d kind %v: PA depths %v vs RR %v", seed, kind, pa.Stats.Depths, rr.Stats.Depths)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLazyEqualsEager: lazy heap maintenance must be observationally
// identical to the paper's eager recomputation (same depths, same results,
// same pull sequence).
func TestQuickLazyEqualsEager(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 7)
		for _, algo := range []Algorithm{TBRR, TBPA} {
			lazy := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: algo})
			eager := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: algo, EagerBounds: true})
			if lazy.Stats.SumDepths != eager.Stats.SumDepths {
				return false
			}
			for i := range lazy.Stats.Depths {
				if lazy.Stats.Depths[i] != eager.Stats.Depths[i] {
					return false
				}
			}
			if !sameScores(scoresOf(lazy.Combinations), scoresOf(eager.Combinations), 0) {
				return false
			}
			// Lazy must not solve more QPs than eager.
			if lazy.Stats.QPSolves > eager.Stats.QPSolves {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDominanceDoesNotChangeIO: dominance pruning saves bound
// computations but never changes the pull sequence or the result.
func TestQuickDominanceDoesNotChangeIO(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 7)
		for _, algo := range []Algorithm{TBRR, TBPA} {
			plain := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: algo})
			dom := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: algo, DominancePeriod: 2})
			if plain.Stats.SumDepths != dom.Stats.SumDepths {
				t.Logf("seed %d algo %v: depths %v vs %v (dominated %d)",
					seed, algo, plain.Stats.Depths, dom.Stats.Depths, dom.Stats.DominatedPartials)
				return false
			}
			if !sameScores(scoresOf(plain.Combinations), scoresOf(dom.Combinations), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundIsCorrect replays a full run and verifies that at every
// step, every combination that still used an unseen tuple at that step
// scored no more than the threshold recorded at that step.
func TestQuickBoundIsCorrect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 5)
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			for _, algo := range []Algorithm{CBRR, TBRR} {
				e, err := NewEngine(in.sources(t, kind), Options{
					K: 1 << 20, Algorithm: algo, Query: in.q, Agg: in.fn,
				})
				if err != nil {
					return false
				}
				// Pull round-robin to exhaustion, recording thresholds and
				// the step at which each tuple arrived.
				type pullRec struct {
					t float64
				}
				var recs []pullRec
				arrival := make([]map[string]int, e.n) // tuple ID -> step index
				for i := range arrival {
					arrival[i] = map[string]int{}
				}
				rr := &roundRobin{}
				for {
					ri := rr.choose(e)
					if ri < 0 {
						break
					}
					before := e.rels[ri].depth()
					if err := e.step(ri); err != nil {
						return false
					}
					if e.rels[ri].depth() > before {
						arrival[ri][e.rels[ri].tuples[before].ID] = len(recs)
					}
					recs = append(recs, pullRec{t: e.t})
				}
				// Every full combination: check against thresholds.
				all, err := Naive(in.rels, in.q, in.fn, 1<<20)
				if err != nil {
					return false
				}
				for _, c := range all {
					// The combination is "unseen" at step s if any member
					// arrived strictly after s.
					latest := 0
					for i, tup := range c.Tuples {
						step, ok := arrival[i][tup.ID]
						if !ok {
							return false // must have been pulled by exhaustion
						}
						if step > latest {
							latest = step
						}
					}
					// For steps s < latest the combination was still unseen.
					for s := 0; s < latest; s++ {
						if c.Score > recs[s].t+1e-7 {
							t.Logf("seed %d kind %v algo %v: score %.6f beats t=%.6f at step %d",
								seed, kind, algo, c.Score, recs[s].t, s)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestEngineValidation(t *testing.T) {
	in := instance{
		rels: []*relation.Relation{
			relation.MustNew("A", 1, []relation.Tuple{{ID: "a", Score: 0.5, Vec: vec.Of(0, 0)}}),
			relation.MustNew("B", 1, []relation.Tuple{{ID: "b", Score: 0.5, Vec: vec.Of(1, 1)}}),
		},
		q:  vec.Of(0, 0),
		fn: defaultAgg(),
		k:  1,
	}
	srcs := in.sources(t, relation.DistanceAccess)

	if _, err := NewEngine(srcs[:1], Options{K: 1, Query: in.q, Agg: in.fn}); !errors.Is(err, ErrNoRelations) {
		t.Errorf("single relation: %v", err)
	}
	if _, err := NewEngine(srcs, Options{K: 0, Query: in.q, Agg: in.fn}); !errors.Is(err, ErrBadK) {
		t.Errorf("K=0: %v", err)
	}
	if _, err := NewEngine(srcs, Options{K: 1, Query: in.q}); !errors.Is(err, ErrNilAggregator) {
		t.Errorf("nil agg: %v", err)
	}
	if _, err := NewEngine(srcs, Options{K: 1, Query: vec.Of(0), Agg: in.fn}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim mismatch: %v", err)
	}
	mixed := []relation.Source{srcs[0], relation.NewScoreSource(in.rels[1])}
	if _, err := NewEngine(mixed, Options{K: 1, Query: in.q, Agg: in.fn}); !errors.Is(err, ErrMixedAccess) {
		t.Errorf("mixed access: %v", err)
	}
}

func TestEngineKLargerThanCrossProduct(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := randomInstance(r, 2, 3)
	in.k = 1000
	res := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: TBRR})
	total := 1
	for _, rel := range in.rels {
		total *= rel.Len()
	}
	if len(res.Combinations) != total {
		t.Fatalf("got %d combinations, want the whole cross product %d", len(res.Combinations), total)
	}
	// Scores must be non-increasing.
	for i := 1; i < len(res.Combinations); i++ {
		if res.Combinations[i].Score > res.Combinations[i-1].Score+1e-12 {
			t.Fatal("result not sorted")
		}
	}
}

func TestEngineFaultPropagation(t *testing.T) {
	in := instance{
		rels: []*relation.Relation{
			relation.MustNew("A", 1, []relation.Tuple{
				{ID: "a1", Score: 0.5, Vec: vec.Of(0, 0)},
				{ID: "a2", Score: 0.5, Vec: vec.Of(1, 0)},
			}),
			relation.MustNew("B", 1, []relation.Tuple{
				{ID: "b1", Score: 0.5, Vec: vec.Of(0, 1)},
				{ID: "b2", Score: 0.5, Vec: vec.Of(1, 1)},
			}),
		},
		q: vec.Of(0, 0), fn: defaultAgg(), k: 4,
	}
	boom := errors.New("service unavailable")
	srcs := in.sources(t, relation.DistanceAccess)
	srcs[1] = &relation.FaultySource{Inner: srcs[1], FailAfter: 1, Err: boom}
	e, err := NewEngine(srcs, Options{K: 4, Algorithm: TBRR, Query: in.q, Agg: in.fn})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped boom", err)
	}
}

func TestEngineDNFCaps(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := randomInstance(r, 2, 8)
	in.k = 5
	res := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: CBRR, MaxSumDepths: 3})
	if !res.DNF {
		t.Fatal("MaxSumDepths did not trigger DNF")
	}
	if res.Stats.SumDepths > 3 {
		t.Fatalf("SumDepths = %d beyond cap", res.Stats.SumDepths)
	}
	res = runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: CBRR, MaxCombinations: 2})
	if !res.DNF {
		t.Fatal("MaxCombinations did not trigger DNF")
	}
}

func TestEngineDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	in := randomInstance(r, 3, 7)
	for _, algo := range Algorithms {
		a := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: algo})
		b := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: algo})
		if !sameScores(scoresOf(a.Combinations), scoresOf(b.Combinations), 0) {
			t.Fatalf("%v: nondeterministic scores", algo)
		}
		for i := range a.Stats.Depths {
			if a.Stats.Depths[i] != b.Stats.Depths[i] {
				t.Fatalf("%v: nondeterministic depths", algo)
			}
		}
		for i := range a.Combinations {
			for j := range a.Combinations[i].Ranks {
				if a.Combinations[i].Ranks[j] != b.Combinations[i].Ranks[j] {
					t.Fatalf("%v: nondeterministic tie-breaking", algo)
				}
			}
		}
	}
}

func TestEngineDepthAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := randomInstance(r, 2, 6)
	srcs := in.sources(t, relation.DistanceAccess)
	counters := make([]*relation.CountingSource, len(srcs))
	for i, s := range srcs {
		counters[i] = &relation.CountingSource{Inner: s}
		srcs[i] = counters[i]
	}
	e, err := NewEngine(srcs, Options{K: in.k, Algorithm: TBPA, Query: in.q, Agg: in.fn})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, c := range counters {
		if res.Stats.Depths[i] != c.Reads {
			t.Fatalf("relation %d: engine depth %d, source reads %d", i, res.Stats.Depths[i], c.Reads)
		}
		sum += c.Reads
	}
	if res.Stats.SumDepths != sum {
		t.Fatalf("SumDepths %d != Σ %d", res.Stats.SumDepths, sum)
	}
}

// TestEngineCosineFallsBackToCorner: a non-quadratic aggregation with a
// tight-bound algorithm must downgrade to the corner bound and still agree
// with the oracle.
func TestEngineCosineFallsBackToCorner(t *testing.T) {
	cos, err := agg.NewCosineProximity(agg.Weights{Ws: 1, Wq: 1, Wmu: 1}, agg.IdentityScore)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	in := randomInstance(r, 2, 6)
	in.fn = cos
	res := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: TBPA})
	if !res.Stats.BoundDowngraded {
		t.Fatal("expected BoundDowngraded for cosine aggregation")
	}
	want, err := Naive(in.rels, in.q, cos, in.k)
	if err != nil {
		t.Fatal(err)
	}
	if !sameScores(scoresOf(res.Combinations), scoresOf(want), 1e-9) {
		t.Fatalf("cosine results diverge: %v vs %v", scoresOf(res.Combinations), scoresOf(want))
	}
}

func TestTopKBuffer(t *testing.T) {
	b := newTopK(2)
	if b.kthScore() != negInf {
		t.Fatal("empty buffer kthScore")
	}
	b.push(Combination{Score: 1, Ranks: []int{0, 0}})
	b.push(Combination{Score: 3, Ranks: []int{1, 0}})
	b.push(Combination{Score: 2, Ranks: []int{0, 1}})
	if b.len() != 2 {
		t.Fatalf("len = %d", b.len())
	}
	got := b.sorted()
	if got[0].Score != 3 || got[1].Score != 2 {
		t.Fatalf("sorted = %v", scoresOf(got))
	}
	// Tie-breaking: equal scores ordered by rank vector.
	b2 := newTopK(1)
	b2.push(Combination{Score: 5, Ranks: []int{1, 0}})
	b2.push(Combination{Score: 5, Ranks: []int{0, 1}})
	if r := b2.sorted()[0].Ranks; r[0] != 0 || r[1] != 1 {
		t.Fatalf("tie-break kept %v", r)
	}
	// Reinserting the same combination keeps buffer stable.
	b2.push(Combination{Score: 5, Ranks: []int{0, 1}})
	if b2.len() != 1 {
		t.Fatal("duplicate push grew buffer")
	}
}

// TestQuickTopKMatchesSort: the buffer always retains the K best of any
// random stream under the deterministic order.
func TestQuickTopKMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(5)
		b := newTopK(k)
		var all []Combination
		for i := 0; i < 40; i++ {
			c := Combination{Score: math.Round(r.Float64()*10) / 2, Ranks: []int{r.Intn(5), r.Intn(5)}}
			all = append(all, c)
			b.push(c)
		}
		sort.Slice(all, func(i, j int) bool { return combWorse(all[j], all[i]) })
		want := all[:min(k, len(all))]
		got := b.sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnumNames(t *testing.T) {
	if CBRR.String() == "" || TBPA.ShortName() != "TBPA" || Algorithm(9).String() == "" {
		t.Error("algorithm names")
	}
	if CBRR.Bound() != CornerBound || TBRR.Bound() != TightBound {
		t.Error("Bound mapping")
	}
	if CBPA.Pull() != PotentialAdaptive || TBRR.Pull() != RoundRobin {
		t.Error("Pull mapping")
	}
	if CornerBound.String() != "corner" || TightBound.String() != "tight" || BoundKind(7).String() == "" {
		t.Error("bound names")
	}
	if RoundRobin.String() != "round-robin" || PotentialAdaptive.String() != "potential-adaptive" || PullKind(7).String() == "" {
		t.Error("pull names")
	}
}

func TestNaiveValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	in := randomInstance(r, 2, 3)
	if _, err := Naive(in.rels[:1], in.q, in.fn, 1); !errors.Is(err, ErrNoRelations) {
		t.Error("single relation accepted")
	}
	if _, err := Naive(in.rels, in.q, in.fn, 0); !errors.Is(err, ErrBadK) {
		t.Error("K=0 accepted")
	}
	if _, err := Naive(in.rels, in.q, nil, 1); !errors.Is(err, ErrNilAggregator) {
		t.Error("nil aggregation accepted")
	}
	if _, err := Naive(in.rels, vec.New(in.q.Dim()+1), in.fn, 1); !errors.Is(err, ErrDimMismatch) {
		t.Error("dim mismatch accepted")
	}
}
