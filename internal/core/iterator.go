package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/pqueue"
	"repro/internal/relation"
	"repro/internal/vec"
)

// Iterator is the pipelined form of the ProxRJ operator: instead of a
// fixed top-K it emits result combinations one at a time, each as soon as
// the bound certifies that no unseen combination can outrank it. This is
// the operator semantics of HRJN (rank join as a physical operator inside
// a pipeline) applied to proximity rank join; downstream consumers can
// stop pulling at any time, having paid I/O only for the prefix they
// consumed.
//
// Unlike Engine, the iterator must retain every formed combination that
// has not been emitted yet (any of them may eventually surface), so its
// memory grows with the cross product of the explored prefixes.
type Iterator struct {
	e       *Engine
	seen    *pqueue.Heap[Combination] // best-first buffer of unemitted results
	emitted int64
	err     error
	done    bool
}

// ErrIteratorDone is returned by Next after the cross product is
// exhausted.
var ErrIteratorDone = errors.New("core: iterator exhausted")

// ErrIteratorDNF is returned by Next once a MaxSumDepths/MaxCombinations
// cap has fired and no buffered combination can be certified anymore:
// the streaming twin of a batch run's DNF flag. The buffered best-effort
// results remain reachable through DrainBest.
var ErrIteratorDNF = errors.New("core: iterator aborted by MaxSumDepths/MaxCombinations cap")

// NewIterator builds a pipelined proximity rank join operator. Options.K
// is ignored (results stream indefinitely); all other options behave as in
// NewEngine.
func NewIterator(sources []relation.Source, opts Options) (*Iterator, error) {
	opts.K = 1 // engine validation only; the iterator manages its own buffer
	e, err := NewEngine(sources, opts)
	if err != nil {
		return nil, err
	}
	it := &Iterator{
		e:    e,
		seen: pqueue.New(func(a, b Combination) bool { return combWorse(b, a) }), // best-first
	}
	// Reroute formed combinations into the iterator's unbounded buffer.
	e.sink = func(c Combination) { it.seen.Push(c) }
	return it, nil
}

// Next returns the next-best combination, pulling as little input as
// possible to certify it. It returns ErrIteratorDone when every
// combination has been emitted, or the underlying access error.
func (it *Iterator) Next() (Combination, error) {
	return it.NextContext(context.Background())
}

// NextContext is Next with cooperative cancellation: the pull loop checks
// ctx and aborts with a wrapped ctx.Err() once the deadline passes or the
// context is canceled. Cancellation does not poison the iterator — the
// prefixes read so far are kept, and a later call with a live context
// resumes where this one stopped.
func (it *Iterator) NextContext(ctx context.Context) (Combination, error) {
	if it.err != nil {
		return Combination{}, it.err
	}
	start := time.Now()
	defer func() { it.e.stats.TotalTime += time.Since(start) }()
	for {
		// Emission test: the buffered best is certified once it reaches the
		// bound less the approximation slack — the per-result form of the
		// batch stopping test, so a K-prefix of the stream pulls exactly
		// what the batch run would.
		if best, ok := it.seen.Peek(); ok && best.Score >= it.e.t-it.e.opts.Epsilon-1e-9 {
			top, _ := it.seen.Pop()
			it.emitted++
			return top, nil
		}
		if it.done {
			// Bound is −inf once everything is exhausted; flush the buffer.
			if top, ok := it.seen.Pop(); ok {
				it.emitted++
				return top, nil
			}
			it.err = ErrIteratorDone
			return Combination{}, it.err
		}
		if err := ctx.Err(); err != nil {
			return Combination{}, fmt.Errorf("core: next canceled after %d accesses: %w", it.e.stats.SumDepths, err)
		}
		// Cap test sits where the batch loop has it: after the emission
		// test, before the next pull. Without further pulls the bound can
		// never tighten, so once capped nothing uncertified ever certifies.
		if it.e.capped() {
			return Combination{}, ErrIteratorDNF
		}
		ri := it.e.pull.choose(it.e)
		if ri < 0 {
			it.done = true
			continue
		}
		if err := it.e.step(ri); err != nil {
			it.err = err
			return Combination{}, err
		}
	}
}

// DrainBest pops the best buffered combination without certifying it
// against the bound. After ErrIteratorDNF this yields the engine's
// best-effort tail in the same order a capped batch run reports: the
// buffer holds every formed-but-unemitted combination, so emitted
// results plus the drain reproduce the batch top-K exactly.
func (it *Iterator) DrainBest() (Combination, bool) {
	top, ok := it.seen.Pop()
	if ok {
		it.emitted++
	}
	return top, ok
}

// Buffered returns the number of formed combinations awaiting emission.
func (it *Iterator) Buffered() int { return it.seen.Len() }

// Emitted returns how many combinations have been produced so far.
func (it *Iterator) Emitted() int64 { return it.emitted }

// Stats exposes the cost metrics accumulated so far.
func (it *Iterator) Stats() Stats { return it.e.stats }

// Threshold returns the current upper bound on unemitted, unseen
// combinations.
func (it *Iterator) Threshold() float64 { return it.e.t }

// NaiveStream is the oracle for Iterator tests: the fully sorted cross
// product.
func NaiveStream(rels []*relation.Relation, q vec.Vector, fn agg.Function) ([]Combination, error) {
	total := 1
	for _, r := range rels {
		total *= r.Len()
		if total > 1<<22 {
			return nil, fmt.Errorf("core: cross product too large for NaiveStream")
		}
	}
	return Naive(rels, q, fn, total)
}
