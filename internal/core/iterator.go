package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/agg"
	"repro/internal/pqueue"
	"repro/internal/relation"
	"repro/internal/vec"
)

// sessionBuffer holds a session's formed-but-unemitted combinations in
// arena-backed rank form. Unbounded by default, it supports a cap
// (Options.MaxBuffered) with two overflow policies:
//
//   - BufferPrune: combinations below the buffer's score floor (the worst
//     retained entry) are rejected — and, through refSink.floor, never even
//     materialized by the enumeration. Exact for consumers taking at most
//     MaxBuffered results; O(MaxBuffered) memory.
//   - BufferSpill: overflow moves to a flat columnar spill slab (score +
//     ranks, no heap structure, no per-entry allocation) and is revived in
//     sorted batches once the ranked heap drains. Exact for open
//     enumeration; the heap and arena stay O(MaxBuffered).
//
// The ranked heap is a min-max heap: emission pops the best while the cap
// evicts the worst. Spill invariant: every heap entry is strictly better
// (score, then lexicographic ranks) than the boundary — the best spilled
// entry — so the heap maximum is always the global best and emission
// order matches the unbounded buffer exactly.
type sessionBuffer struct {
	arena  *combArena
	max    int
	policy BufferPolicy
	heap   *pqueue.MinMax[combRef] // min = worst, max = best
	stats  *Stats
	tracer Tracer // nil unless the run is traced

	spillScores []float64
	spillRanks  []int32 // entry i occupies [i*n : (i+1)*n]
	hasBoundary bool
	boundScore  float64
	boundRanks  []int32

	// tier, when non-nil (Options.SpillDir), extends the slab with
	// file-backed segments: the slab flushes to disk at the tier's
	// watermark and revival k-way merges the slab with the segment
	// streams — the same global order the in-memory sort produces, so
	// emissions are byte-identical. err poisons the session on the first
	// segment I/O failure; Iterator surfaces it instead of emitting.
	tier *spillTier
	err  error
}

func newSessionBuffer(arena *combArena, max int, policy BufferPolicy, stats *Stats) *sessionBuffer {
	return &sessionBuffer{
		arena:  arena,
		max:    max,
		policy: policy,
		heap:   pqueue.NewMinMax(arena.refWorse),
		stats:  stats,
	}
}

func (b *sessionBuffer) spillCount() int {
	m := len(b.spillScores)
	if b.tier != nil {
		m += b.tier.pending()
	}
	return m
}

// buffered is the total number of retained combinations.
func (b *sessionBuffer) buffered() int { return b.heap.Len() + b.spillCount() }

func (b *sessionBuffer) trackPeak() {
	if l := b.buffered(); l > b.stats.PeakBuffered {
		b.stats.PeakBuffered = l
	}
}

// betterThanBoundary reports whether an incoming combination beats the
// spill boundary in the full result order.
func (b *sessionBuffer) betterThanBoundary(score float64, ranks []int32) bool {
	if score != b.boundScore {
		return score > b.boundScore
	}
	return lexLess32(ranks, b.boundRanks)
}

func (b *sessionBuffer) setBoundary(score float64, ranks []int32) {
	b.boundScore = score
	b.boundRanks = append(b.boundRanks[:0], ranks...)
	b.hasBoundary = true
}

func (b *sessionBuffer) spillAppend(score float64, ranks []int32) {
	b.spillScores = append(b.spillScores, score)
	b.spillRanks = append(b.spillRanks, ranks...)
	b.stats.SpilledCombinations++
	if b.tracer != nil {
		b.tracer.TraceBuffer(TraceActionSpill, 1)
	}
	if b.tier != nil && b.err == nil && len(b.spillScores) >= b.tier.watermark {
		b.flushSlab()
	}
}

// sortedSpillIndex returns slab indices in the canonical spill order:
// score descending, ties by ascending lexicographic ranks — the exact
// order revive emits and segment files are written in.
func sortedSpillIndex(scores []float64, ranks []int32, n int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		ix, iy := idx[x], idx[y]
		if scores[ix] != scores[iy] {
			return scores[ix] > scores[iy]
		}
		return lexLess32(ranks[ix*n:(ix+1)*n], ranks[iy*n:(iy+1)*n])
	})
	return idx
}

// flushSlab sorts the in-memory slab and moves it to one segment file.
// On failure the slab is kept (nothing is lost) and the session is
// poisoned — a spill tier that cannot write cannot stay exact.
func (b *sessionBuffer) flushSlab() {
	n := b.arena.n
	m := len(b.spillScores)
	idx := sortedSpillIndex(b.spillScores, b.spillRanks, n)
	scores := make([]float64, m)
	ranks := make([]int32, m*n)
	for o, i := range idx {
		scores[o] = b.spillScores[i]
		copy(ranks[o*n:(o+1)*n], b.spillRanks[i*n:(i+1)*n])
	}
	written, err := b.tier.flush(scores, ranks)
	if err != nil {
		b.err = err
		return
	}
	b.stats.SpilledBytes += written
	b.spillScores = b.spillScores[:0]
	b.spillRanks = b.spillRanks[:0]
}

// offer implements refSink.
func (b *sessionBuffer) offer(score float64, ranks []int32) {
	if b.max <= 0 {
		b.heap.Push(combRef{slot: b.arena.alloc(ranks), score: score})
		b.trackPeak()
		return
	}
	switch b.policy {
	case BufferSpill:
		if b.hasBoundary && !b.betterThanBoundary(score, ranks) {
			b.spillAppend(score, ranks)
			b.trackPeak()
			return
		}
		b.heap.Push(combRef{slot: b.arena.alloc(ranks), score: score})
		if b.heap.Len() > b.max {
			ev, _ := b.heap.PopMin()
			evRanks := b.arena.ranksAt(ev.slot)
			b.spillAppend(ev.score, evRanks)
			b.setBoundary(ev.score, evRanks)
			b.arena.release(ev.slot)
		}
		b.trackPeak()
	default: // BufferPrune
		if b.heap.Len() < b.max {
			b.heap.Push(combRef{slot: b.arena.alloc(ranks), score: score})
			b.trackPeak()
			return
		}
		worst, _ := b.heap.PeekMin()
		if b.arena.beats(score, ranks, worst) {
			b.heap.PopMin()
			b.arena.release(worst.slot)
			b.heap.Push(combRef{slot: b.arena.alloc(ranks), score: score})
		}
	}
}

// floor implements refSink: under the prune policy a full buffer rejects
// everything below its worst retained entry, so the enumeration can cut
// those subtrees pre-materialization. The spill policy retains everything
// and exposes no floor.
func (b *sessionBuffer) floor() (float64, bool) {
	if b.max > 0 && b.policy == BufferPrune && b.heap.Len() == b.max {
		worst, _ := b.heap.PeekMin()
		return worst.score, true
	}
	return negInf, false
}

// peekBest returns the best retained combination, reviving spilled
// entries when the ranked heap has drained.
func (b *sessionBuffer) peekBest() (combRef, bool) {
	if b.heap.Len() == 0 {
		b.revive()
	}
	return b.heap.PeekMax()
}

// popBest removes and returns the best retained combination. The caller
// owns the ref's arena slot and must release it after materializing.
func (b *sessionBuffer) popBest() (combRef, bool) {
	if b.heap.Len() == 0 {
		b.revive()
	}
	return b.heap.PopMax()
}

// revive moves the best spilled entries back into the ranked heap (at
// most max of them), keeping the rest — in the slab and in any spill
// segments — in sorted order behind a refreshed boundary. With a file
// tier this is a k-way selection over the sorted slab and the sorted
// segment streams; (score, ranks) keys are unique, so the merge emits
// exactly the order a global in-memory sort would.
func (b *sessionBuffer) revive() {
	if b.err != nil {
		return
	}
	m := b.spillCount()
	if m == 0 {
		return
	}
	take := m
	if b.max > 0 && take > b.max {
		take = b.max
	}
	if b.tracer != nil {
		b.tracer.TraceBuffer(TraceActionRevive, take)
	}
	n := b.arena.n
	idx := sortedSpillIndex(b.spillScores, b.spillRanks, n)
	cursor := 0
	if b.tier != nil && len(b.tier.segs) > 0 {
		for pushed := 0; pushed < take; pushed++ {
			score, ranks, fromSeg, err := b.bestSpilled(idx, cursor)
			if err != nil {
				b.err = err
				return
			}
			b.heap.Push(combRef{slot: b.arena.alloc(ranks), score: score})
			if fromSeg != nil {
				fromSeg.loaded = false
			} else {
				cursor++
			}
		}
		b.tier.compact()
	} else {
		for _, i := range idx[:take] {
			b.heap.Push(combRef{slot: b.arena.alloc(b.spillRanks[i*n : (i+1)*n]), score: b.spillScores[i]})
		}
		cursor = take
	}
	rest := idx[cursor:]
	scores := make([]float64, 0, len(rest))
	ranks := make([]int32, 0, len(rest)*n)
	for _, i := range rest {
		scores = append(scores, b.spillScores[i])
		ranks = append(ranks, b.spillRanks[i*n:(i+1)*n]...)
	}
	b.spillScores = scores
	b.spillRanks = ranks
	b.refreshBoundary()
}

// bestSpilled returns the best unconsumed spilled entry across the
// sorted slab (idx[cursor:]) and every segment head, without consuming
// it: the caller pops the winner (advance cursor or clear seg.loaded).
// The returned ranks alias either the slab or the segment's head buffer
// and must be copied (arena.alloc does) before the next call.
func (b *sessionBuffer) bestSpilled(idx []int, cursor int) (float64, []int32, *spillSegment, error) {
	n := b.arena.n
	have := false
	var bestScore float64
	var bestRanks []int32
	var fromSeg *spillSegment
	if cursor < len(idx) {
		i := idx[cursor]
		bestScore, bestRanks, have = b.spillScores[i], b.spillRanks[i*n:(i+1)*n], true
	}
	for _, s := range b.tier.segs {
		ok, err := b.tier.ensureHead(s)
		if err != nil {
			return 0, nil, nil, err
		}
		if !ok {
			continue
		}
		if !have || s.head > bestScore || (s.head == bestScore && lexLess32(s.headRanks, bestRanks)) {
			bestScore, bestRanks, fromSeg, have = s.head, s.headRanks, s, true
		}
	}
	if !have {
		return 0, nil, nil, fmt.Errorf("core: spill accounting lost entries")
	}
	return bestScore, bestRanks, fromSeg, nil
}

// refreshBoundary recomputes the spill boundary as the best remaining
// spilled entry — the head of the compacted slab or of a segment — or
// clears it when nothing remains spilled.
func (b *sessionBuffer) refreshBoundary() {
	n := b.arena.n
	have := false
	var score float64
	var ranks []int32
	if len(b.spillScores) > 0 {
		score, ranks, have = b.spillScores[0], b.spillRanks[:n], true
	}
	if b.tier != nil {
		for _, s := range b.tier.segs {
			ok, err := b.tier.ensureHead(s)
			if err != nil {
				b.err = err
				return
			}
			if !ok {
				continue
			}
			if !have || s.head > score || (s.head == score && lexLess32(s.headRanks, ranks)) {
				score, ranks, have = s.head, s.headRanks, true
			}
		}
	}
	if !have {
		b.hasBoundary = false
		return
	}
	b.setBoundary(score, ranks)
}

// Iterator is the pipelined form of the ProxRJ operator: instead of a
// fixed top-K it emits result combinations one at a time, each as soon as
// the bound certifies that no unseen combination can outrank it. This is
// the operator semantics of HRJN (rank join as a physical operator inside
// a pipeline) applied to proximity rank join; downstream consumers can
// stop pulling at any time, having paid I/O only for the prefix they
// consumed.
//
// Unbounded, the iterator retains every formed combination that has not
// been emitted yet (any of them may eventually surface), in compact
// arena-backed rank form. Options.MaxBuffered bounds that retention — see
// BufferPolicy for the prune/spill trade-off.
type Iterator struct {
	e       *Engine
	buf     *sessionBuffer
	emitted int64
	err     error
	done    bool
}

// ErrIteratorDone is returned by Next after the cross product is
// exhausted.
var ErrIteratorDone = errors.New("core: iterator exhausted")

// ErrIteratorDNF is returned by Next once a MaxSumDepths/MaxCombinations
// cap has fired and no buffered combination can be certified anymore:
// the streaming twin of a batch run's DNF flag. The buffered best-effort
// results remain reachable through DrainBest.
var ErrIteratorDNF = errors.New("core: iterator aborted by MaxSumDepths/MaxCombinations cap")

// NewIterator builds a pipelined proximity rank join operator. Options.K
// is ignored (results stream indefinitely); all other options behave as in
// NewEngine.
func NewIterator(sources []relation.Source, opts Options) (*Iterator, error) {
	bufMax, policy := opts.MaxBuffered, opts.BufferPolicy
	opts.K = 1 // engine validation only; the iterator manages its own buffer
	e, err := NewEngine(sources, opts)
	if err != nil {
		return nil, err
	}
	it := &Iterator{
		e:   e,
		buf: newSessionBuffer(e.arena, bufMax, policy, &e.stats),
	}
	it.buf.tracer = opts.Tracer
	if bufMax > 0 && policy == BufferSpill && opts.SpillDir != "" {
		tier, err := newSpillTier(opts.SpillDir, e.arena.n, opts.SpillMemBytes, opts.spillFault)
		if err != nil {
			return nil, err
		}
		it.buf.tier = tier
	}
	// Reroute formed combinations into the session buffer.
	e.sink = it.buf
	return it, nil
}

// Next returns the next-best combination, pulling as little input as
// possible to certify it. It returns ErrIteratorDone when every
// combination has been emitted, or the underlying access error.
func (it *Iterator) Next() (Combination, error) {
	return it.NextContext(context.Background())
}

// NextContext is Next with cooperative cancellation: the pull loop checks
// ctx and aborts with a wrapped ctx.Err() once the deadline passes or the
// context is canceled. Cancellation does not poison the iterator — the
// prefixes read so far are kept, and a later call with a live context
// resumes where this one stopped.
func (it *Iterator) NextContext(ctx context.Context) (Combination, error) {
	if it.err != nil {
		return Combination{}, it.err
	}
	start := time.Now()
	defer func() { it.e.stats.TotalTime += time.Since(start) }()
	for {
		// Emission test: the buffered best is certified once it reaches the
		// bound less the approximation slack — the per-result form of the
		// batch stopping test, so a K-prefix of the stream pulls exactly
		// what the batch run would.
		best, ok := it.buf.peekBest()
		if it.buf.err != nil {
			// A spill tier failure (write or revival) forfeits exactness;
			// poison the iterator rather than emit a possibly wrong order.
			it.err = it.buf.err
			return Combination{}, it.err
		}
		if ok && best.score >= it.e.t-it.e.opts.Epsilon-1e-9 {
			return it.emitBest(), nil
		}
		if it.done {
			// Bound is −inf once everything is exhausted; flush the buffer.
			if _, ok := it.buf.peekBest(); ok {
				return it.emitBest(), nil
			}
			it.err = ErrIteratorDone
			return Combination{}, it.err
		}
		if err := ctx.Err(); err != nil {
			return Combination{}, fmt.Errorf("core: next canceled after %d accesses: %w", it.e.stats.SumDepths, err)
		}
		// Cap test sits where the batch loop has it: after the emission
		// test, before the next pull. Without further pulls the bound can
		// never tighten, so once capped nothing uncertified ever certifies.
		if it.e.capped() {
			return Combination{}, ErrIteratorDNF
		}
		ri := it.e.pull.choose(it.e)
		if ri < 0 {
			it.done = true
			continue
		}
		if err := it.e.step(ri); err != nil {
			it.err = err
			return Combination{}, err
		}
	}
}

// emitBest pops, materializes, and recycles the best buffered
// combination; callers must have checked the buffer is non-empty.
func (it *Iterator) emitBest() Combination {
	ref, _ := it.buf.popBest()
	c := it.e.materialize(ref)
	it.e.arena.release(ref.slot)
	it.emitted++
	return c
}

// DrainBest pops the best buffered combination without certifying it
// against the bound. After ErrIteratorDNF this yields the engine's
// best-effort tail in the same order a capped batch run reports: the
// buffer holds the best formed-but-unemitted combinations, so emitted
// results plus the drain reproduce the batch top-K exactly.
func (it *Iterator) DrainBest() (Combination, bool) {
	if _, ok := it.buf.peekBest(); !ok || it.buf.err != nil {
		return Combination{}, false
	}
	return it.emitBest(), true
}

// Buffered returns the number of formed combinations awaiting emission.
func (it *Iterator) Buffered() int { return it.buf.buffered() }

// Emitted returns how many combinations have been produced so far.
func (it *Iterator) Emitted() int64 { return it.emitted }

// Stats exposes the cost metrics accumulated so far.
func (it *Iterator) Stats() Stats { return it.e.stats }

// Threshold returns the current upper bound on unemitted, unseen
// combinations.
func (it *Iterator) Threshold() float64 { return it.e.t }

// NaiveStream is the oracle for Iterator tests: the fully sorted cross
// product.
func NaiveStream(rels []*relation.Relation, q vec.Vector, fn agg.Function) ([]Combination, error) {
	total := 1
	for _, r := range rels {
		total *= r.Len()
		if total > 1<<22 {
			return nil, fmt.Errorf("core: cross product too large for NaiveStream")
		}
	}
	return Naive(rels, q, fn, total)
}
