// Package core implements the ProxRJ template of the paper: rank join
// over n relations where a combination's value aggregates tuple scores,
// distance from the query point, and mutual proximity, answered with as
// little sorted access as the chosen bound allows.
//
// The template has two axes, giving the four algorithm instantiations
// the rest of the repository names cbrr, cbpa, tbrr, and tbpa:
//
//   - The bound. Corner bounds (corner.go) evaluate the aggregation at
//     the corner configurations of the unseen region — cheap,
//     HRJN-style. Tight bounds (tight_distance.go, tight_score.go) solve
//     small quadratic programs (internal/qp) for the exact supremum over
//     the unseen region, instance-optimal in sorted access.
//   - The pulling strategy. Round-robin cycles relations; potential-
//     adaptive pulls the relation whose deepening most reduces the
//     bound.
//
// The Engine (engine.go) owns the pulled prefixes, forms combinations
// incrementally as tuples arrive, and maintains the stopping threshold;
// dominance pruning (dominance.go) discards tuples that can never
// appear in a top combination. Enumeration is allocation-free on the
// hot path: combinations live in a rank-slab arena (arena.go) as
// (slot, score) references with tuples reconstructed from prefixes on
// emission, subtree pruning cuts combination formation below the buffer
// floor, and the session buffer (buffer.go) holds candidates in a
// min-max heap (internal/pqueue) bounded by Options.MaxBuffered with
// prune or spill overflow policies.
//
// Iterator (iterator.go) is the ranked-enumeration surface the facade's
// Stream/Query sessions wrap: Next certifies and emits one combination
// at a time — the rank-1 result long before a full run would finish —
// enforces the MaxSumDepths/MaxCombinations caps as ErrIteratorDNF, and
// DrainBest yields the uncertified best-effort tail after a cap. Stats
// carries the paper's cost model (per-relation depths, sumDepths,
// combinations formed/pruned, bound updates, QP solves) for every run.
package core
