package core

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/vec"
)

// TestCornerScoreAccessFormulas checks eq. (36)-(38) explicitly: under
// score-based access the corner bound combines the first scores of the
// other relations with the last score of the unseen one, all at zero
// distances.
func TestCornerScoreAccessFormulas(t *testing.T) {
	r1 := relation.MustNew("R1", 1, []relation.Tuple{
		{ID: "a", Score: 0.9, Vec: vec.Of(3, 0)},
		{ID: "b", Score: 0.5, Vec: vec.Of(0, 4)},
	})
	r2 := relation.MustNew("R2", 1, []relation.Tuple{
		{ID: "c", Score: 0.8, Vec: vec.Of(1, 1)},
		{ID: "d", Score: 0.2, Vec: vec.Of(2, 2)},
	})
	e, err := NewEngine([]relation.Source{
		relation.NewScoreSource(r1), relation.NewScoreSource(r2),
	}, Options{K: 1, Algorithm: CBRR, Query: vec.Of(0, 0), Agg: defaultAgg()})
	if err != nil {
		t.Fatal(err)
	}
	c := e.bound.(*cornerBounder)

	// Before any pull: every cap is σ_max = 1 → g(1,0,0) = 0 → t = 0.
	if got := c.threshold(); math.Abs(got) > 1e-12 {
		t.Fatalf("initial threshold = %v, want 0", got)
	}

	// Pull both tuples of R1 and one of R2.
	for _, ri := range []int{0, 0, 1} {
		if err := e.step(ri); err != nil {
			t.Fatal(err)
		}
	}
	// t_1 = g(σ_last(R1)) + g(σ_first(R2)) = ln 0.5 + ln 0.8
	want1 := math.Log(0.5) + math.Log(0.8)
	if got := c.potential(0); math.Abs(got-want1) > 1e-12 {
		t.Errorf("t_1 = %v, want %v", got, want1)
	}
	// t_2 = g(σ_first(R1)) + g(σ_last(R2)) = ln 0.9 + ln 0.8
	want2 := math.Log(0.9) + math.Log(0.8)
	if got := c.potential(1); math.Abs(got-want2) > 1e-12 {
		t.Errorf("t_2 = %v, want %v", got, want2)
	}
	if got := c.threshold(); math.Abs(got-math.Max(want1, want2)) > 1e-12 {
		t.Errorf("threshold = %v, want %v", got, math.Max(want1, want2))
	}
}

// TestCornerDistanceAccessFormulas checks eq. (3)-(5): distances of the
// first and last accessed tuples with σ_max scores and zero centroid
// distance.
func TestCornerDistanceAccessFormulas(t *testing.T) {
	r1 := relation.MustNew("R1", 1, []relation.Tuple{
		{ID: "a", Score: 0.9, Vec: vec.Of(3, 0)}, // dist 3
		{ID: "b", Score: 0.5, Vec: vec.Of(0, 4)}, // dist 4
	})
	r2 := relation.MustNew("R2", 1, []relation.Tuple{
		{ID: "c", Score: 0.8, Vec: vec.Of(1, 0)}, // dist 1
		{ID: "d", Score: 0.2, Vec: vec.Of(2, 0)}, // dist 2
	})
	q := vec.Of(0, 0)
	srcs := distanceSources(t, []*relation.Relation{r1, r2}, q)
	e, err := NewEngine(srcs, Options{K: 1, Algorithm: CBRR, Query: q, Agg: defaultAgg()})
	if err != nil {
		t.Fatal(err)
	}
	c := e.bound.(*cornerBounder)
	for _, ri := range []int{0, 0, 1} {
		if err := e.step(ri); err != nil {
			t.Fatal(err)
		}
	}
	// t_1 = g(1, lastDist(R1)=4, 0) + g(1, firstDist(R2)=1, 0) = −16 − 1.
	if got := c.potential(0); math.Abs(got-(-17)) > 1e-12 {
		t.Errorf("t_1 = %v, want -17", got)
	}
	// t_2 = g(1, firstDist(R1)=3, 0) + g(1, lastDist(R2)=1, 0) = −9 − 1.
	if got := c.potential(1); math.Abs(got-(-10)) > 1e-12 {
		t.Errorf("t_2 = %v, want -10", got)
	}
	if got := c.threshold(); math.Abs(got-(-10)) > 1e-12 {
		t.Errorf("threshold = %v, want -10", got)
	}
	// Exhaust R2: its potential dies, threshold falls back to t_1.
	e.rels[1].exhausted = true
	if got := c.potential(1); !math.IsInf(got, -1) {
		t.Errorf("exhausted potential = %v, want -inf", got)
	}
	if got := c.threshold(); math.Abs(got-(-17)) > 1e-12 {
		t.Errorf("threshold after exhaustion = %v, want -17", got)
	}
}

// TestExplainBreakdown exercises the diagnostic API on the Table 1 state.
func TestExplainBreakdown(t *testing.T) {
	e := engineAfterFullTable1(t, TBRR)
	subsets, ok := e.TightBoundBreakdown()
	if !ok {
		t.Fatal("breakdown unavailable for tight engine")
	}
	if len(subsets) != 7 {
		t.Fatalf("subsets = %d, want 7 (proper subsets of 3 relations)", len(subsets))
	}
	total := 0
	best := math.Inf(-1)
	for _, sb := range subsets {
		total += len(sb.Partials)
		if sb.TM > best {
			best = sb.TM
		}
		if !sb.Valid {
			t.Errorf("subset %v invalid with nothing exhausted", sb.Members)
		}
	}
	if total != 19 {
		t.Fatalf("partials = %d, want 19", total)
	}
	if math.Abs(best-(-7)) > 0.05 {
		t.Fatalf("max t_M = %v, want -7", best)
	}
	// Corner engines have no breakdown.
	ce := engineAfterFullTable1(t, CBRR)
	if _, ok := ce.TightBoundBreakdown(); ok {
		t.Fatal("breakdown reported for corner engine")
	}
}
