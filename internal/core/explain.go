package core

import "sort"

// PartialBound describes one partial combination's contribution to the
// tight bound, for diagnostics and for regenerating the paper's Table 3.
type PartialBound struct {
	// TupleIDs are the IDs of the seen tuples, in member-relation order;
	// empty for the empty partial ⟨⟩.
	TupleIDs []string
	// Bound is t(τ), freshly computed against the current distance
	// constraints.
	Bound float64
	// Dominated reports whether dominance pruning removed the partial.
	Dominated bool
}

// SubsetBound describes one proper subset M of relations.
type SubsetBound struct {
	// Members are the relation indices in M (ascending; empty for ∅).
	Members []int
	// TM is t_M = max over live partials (−Inf when PC(M) is empty or the
	// subset cannot complete).
	TM float64
	// Valid reports whether M can still describe an unseen combination.
	Valid bool
	// Partials lists every tracked partial of PC(M).
	Partials []PartialBound
}

// TightBoundBreakdown exposes the per-subset state of the tight
// bounding scheme (distance access). ok is false when the engine runs a
// different bounding scheme. All stale cached bounds are refreshed, so
// the reported values are current; this is a diagnostic call and its QP
// work is excluded from the engine's cost statistics.
func (e *Engine) TightBoundBreakdown() (subsets []SubsetBound, ok bool) {
	b, isTight := e.bound.(*tightDistBounder)
	if !isTight {
		return nil, false
	}
	savedQP := e.stats.QPSolves
	defer func() { e.stats.QPSolves = savedQP }()

	for _, ss := range b.subsets {
		sb := SubsetBound{
			Members: append([]int(nil), ss.members...),
			Valid:   b.valid(ss),
			TM:      negInf,
		}
		for id := range ss.partials {
			p := &ss.partials[id]
			b.computeBound(ss, p)
			ids := make([]string, len(p.xs))
			for k, x := range p.xs {
				ids[k] = b.tupleIDByVector(ss.members[k], x)
			}
			sb.Partials = append(sb.Partials, PartialBound{
				TupleIDs:  ids,
				Bound:     p.bound,
				Dominated: p.dominated,
			})
			if !p.dominated && p.bound > sb.TM {
				sb.TM = p.bound
			}
		}
		subsets = append(subsets, sb)
	}
	sort.Slice(subsets, func(i, j int) bool {
		if len(subsets[i].Members) != len(subsets[j].Members) {
			return len(subsets[i].Members) < len(subsets[j].Members)
		}
		for k := range subsets[i].Members {
			if subsets[i].Members[k] != subsets[j].Members[k] {
				return subsets[i].Members[k] < subsets[j].Members[k]
			}
		}
		return false
	})
	return subsets, true
}

// tupleIDByVector finds the ID of the buffered tuple of relation ri whose
// vector is x (partials reference tuple vectors, not whole tuples).
func (b *tightDistBounder) tupleIDByVector(ri int, x []float64) string {
	for _, tup := range b.e.rels[ri].tuples {
		if tup.Vec.Equal(x) {
			return tup.ID
		}
	}
	return "?"
}

// StepForTest pulls one tuple from relation ri; exported for harnesses
// that need to drive the engine to a specific state (e.g. regenerating
// the paper's Table 3 at depth (2,2,2)).
func (e *Engine) StepForTest(ri int) error { return e.step(ri) }
