package core

import (
	"repro/internal/lp"
	"repro/internal/vec"
)

// Dominance pruning (paper §3.2.2 and Appendix B.5).
//
// For a subset M with |M| = m, the unconstrained symmetric completion
// objective of a partial τ_α is the quadratic
//
//	f_α(ỹ) = K_α − a·‖ỹ‖² − 2·b_αᵀ·ỹ,     ỹ = y − q
//
// whose quadratic coefficient a is shared by every partial of M, so the
// region where τ_α beats τ_β is the half-space 2(b_α−b_β)ᵀỹ ≤ K_α−K_β.
// The dominance region D(τ_α) is the intersection over all β; τ_α is
// dominated when that polyhedron is empty — decided by a feasibility LP.
// Dominated partials can never determine t_M (their constrained optimum is
// covered by some other partial's), so they are dropped from the bound
// heap; once dominated, always dominated, because regions only shrink as
// new partials arrive.

// dominanceCoeffs fills p.domG (= 2·b_α, preallocated in the subset's
// gradient slab) and p.domK for partial p of subset ss, in coordinates
// shifted by the query. The intermediates run through bounder scratch;
// hoisting β·ν̃ out of the spread loop is bit-neutral because the factor
// is identical on every iteration.
func (b *tightDistBounder) dominanceCoeffs(ss *subsetState, p *distPartial) {
	e := b.e
	n := float64(e.n)
	m := float64(len(ss.members))
	if len(ss.members) == 0 {
		if p.domG == nil {
			p.domG = vec.New(e.dim)
		}
		for i := range p.domG {
			p.domG[i] = 0
		}
		p.domK = 0
		return
	}
	beta := m / n
	nuT := vec.SubInto(b.domNuT, p.nu, e.q)
	// b_α = −w_µ·(n−m)·(m/n)·ν̃  (paper eq. (25)); domG = 2·b_α.
	vec.ScaleInto(p.domG, -2*b.wmu*(n-m)*beta, nuT)

	// K_α collects every y-free term of the objective:
	//   Σ_seen [w_s·T(σ) − w_q·‖x̃‖²]  +  Σ_unseen w_s·T(σ_max)
	//   − w_µ·[ Σ_seen ‖x̃_i − β·ν̃‖² + (n−m)·β²·‖ν̃‖² ].
	k := p.sumT
	for _, j := range ss.unseen {
		k += b.ws * b.quad.TransformScore(e.rels[j].maxScore)
	}
	var spread float64
	betaNu := vec.ScaleInto(b.domBNu, beta, nuT)
	for _, x := range p.xs {
		xt := vec.SubInto(b.domXT, x, e.q)
		k -= b.wq * xt.Norm2()
		var s float64
		for i, v := range xt {
			d := v - betaNu[i]
			s += d * d
		}
		spread += s
	}
	spread += (n - m) * beta * beta * nuT.Norm2()
	k -= b.wmu * spread
	p.domK = k
}

// dominanceEval evaluates f_α at ỹ = y − q; used by tests to validate the
// quadratic expansion against direct scoring.
func (b *tightDistBounder) dominanceEval(ss *subsetState, p *distPartial, y vec.Vector) float64 {
	n := float64(b.e.n)
	m := float64(len(ss.members))
	a := b.wq*(n-m) + b.wmu*m*(n-m)/n
	yt := y.Sub(b.e.q)
	return p.domK - a*yt.Norm2() - p.domG.Dot(yt)
}

// dominanceSweep runs the emptiness test for every live partial of ss
// against the other live partials, flagging and removing the dominated
// ones. Already-dominated partials are skipped both as candidates and as
// constraint sources (Appendix B.5 speed-up).
//
// Before paying for an LP, each candidate is screened at its own
// unconstrained peak ỹ_α = −b_α/a: if f_α is maximal there among the live
// partials, that point witnesses D(τ_α) ≠ ∅ and the LP is skipped. The
// screen is exact (never mis-flags); only candidates that lose at their
// own peak go to the LP. The live set and peak point come from bounder
// scratch; the LP rows are still built fresh, but only on the rare
// screen-miss path.
func (b *tightDistBounder) dominanceSweep(ss *subsetState) {
	if len(ss.members) == 0 {
		return // single empty partial, nothing to dominate
	}
	live := b.liveBuf[:0]
	for id := range ss.partials {
		if !ss.partials[id].dominated {
			live = append(live, id)
		}
	}
	b.liveBuf = live // keep any growth for the next sweep
	if len(live) < 2 {
		return
	}
	n := float64(b.e.n)
	m := float64(len(ss.members))
	a := b.wq*(n-m) + b.wmu*m*(n-m)/n

	// evalAt computes f_p(ỹ) = K_p − a·‖ỹ‖² − domG_pᵀ·ỹ in shifted coords.
	evalAt := func(p *distPartial, yt vec.Vector, ynorm2 float64) float64 {
		return p.domK - a*ynorm2 - p.domG.Dot(yt)
	}
	for _, ai := range live {
		alpha := &ss.partials[ai]
		if alpha.dominated {
			continue
		}
		if a > 1e-300 {
			// Witness screen at α's unconstrained peak.
			peak := vec.ScaleInto(b.domPeak, -1/(2*a), alpha.domG)
			pn2 := peak.Norm2()
			fa := evalAt(alpha, peak, pn2)
			wins := true
			for _, bi := range live {
				if bi == ai {
					continue
				}
				betaP := &ss.partials[bi]
				if betaP.dominated {
					continue
				}
				if evalAt(betaP, peak, pn2) > fa+1e-12 {
					wins = false
					break
				}
			}
			if wins {
				continue // witnessed non-empty; no LP needed
			}
		}
		rows := make([][]float64, 0, len(live)-1)
		rhs := make([]float64, 0, len(live)-1)
		for _, bi := range live {
			if bi == ai {
				continue
			}
			betaP := &ss.partials[bi]
			if betaP.dominated {
				continue
			}
			row := make([]float64, b.e.dim)
			for d := 0; d < b.e.dim; d++ {
				row[d] = alpha.domG[d] - betaP.domG[d]
			}
			rows = append(rows, row)
			rhs = append(rhs, alpha.domK-betaP.domK)
		}
		if len(rows) == 0 {
			continue
		}
		feasible, err := lp.FeasibleHalfSpaces(rows, rhs)
		b.e.stats.DominanceLPs++
		if err != nil {
			continue // keep the partial: pruning must stay conservative
		}
		if !feasible {
			alpha.dominated = true
			ss.heap.Remove(alpha.id)
			b.e.stats.DominatedPartials++
		}
	}
}
