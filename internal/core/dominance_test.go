package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/vec"
)

// buildEngineAtDepth pulls `pulls` tuples round-robin on a random instance
// and returns the engine (tight distance bounder).
func buildEngineAtDepth(t testing.TB, r *rand.Rand, domPeriod int) (*Engine, instance) {
	t.Helper()
	in := randomInstance(r, 3, 6)
	e, err := NewEngine(in.sources(t, relation.DistanceAccess), Options{
		K: in.k, Algorithm: TBRR, Query: in.q, Agg: in.fn, DominancePeriod: domPeriod,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := &roundRobin{}
	pulls := 2 + r.Intn(8)
	for i := 0; i < pulls; i++ {
		ri := rr.choose(e)
		if ri < 0 {
			break
		}
		if err := e.step(ri); err != nil {
			t.Fatal(err)
		}
	}
	return e, in
}

// TestQuickDominanceQuadraticExpansion validates the half-space
// coefficients: f_α(y) from (domG, domK) must equal the aggregation score
// of the combination completed with every unseen tuple placed at y with
// score σ_max.
func TestQuickDominanceQuadraticExpansion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, in := buildEngineAtDepth(t, r, 1)
		b, ok := e.bound.(*tightDistBounder)
		if !ok {
			return false
		}
		for _, ss := range b.subsets {
			if len(ss.members) == 0 || len(ss.partials) == 0 {
				continue
			}
			p := &ss.partials[r.Intn(len(ss.partials))]
			for trial := 0; trial < 4; trial++ {
				y := vec.New(e.dim)
				for c := range y {
					y[c] = r.NormFloat64() * 4
				}
				got := b.dominanceEval(ss, p, y)

				// Direct: build the full combination with unseen at y,
				// locating the partial's tuples by vector identity.
				sigmas := make([]float64, 0, e.n)
				xs := make([]vec.Vector, 0, e.n)
				for k, x := range p.xs {
					ri := ss.members[k]
					var sigma float64
					found := false
					for _, tup := range e.rels[ri].tuples {
						if tup.Vec.Equal(x) {
							sigma = tup.Score
							found = true
							break
						}
					}
					if !found {
						return false
					}
					sigmas = append(sigmas, sigma)
					xs = append(xs, x)
				}
				for _, j := range ss.unseen {
					sigmas = append(sigmas, e.rels[j].maxScore)
					xs = append(xs, y)
				}
				want := in.fn.Score(e.q, sigmas, xs)
				if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
					t.Logf("seed %d mask %b: f_α(y)=%v direct=%v", seed, ss.mask, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickDominatedNeverDeterminesTM: after a dominance sweep, recomputing
// every bound must show that no dominated partial strictly exceeds the
// subset's surviving maximum.
func TestQuickDominatedNeverDeterminesTM(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, _ := buildEngineAtDepth(t, r, 1)
		b := e.bound.(*tightDistBounder)
		for _, ss := range b.subsets {
			if !b.valid(ss) {
				continue
			}
			tm := b.tM(ss)
			for id := range ss.partials {
				p := &ss.partials[id]
				if !p.dominated {
					continue
				}
				b.computeBound(ss, p)
				if p.bound > tm+1e-7 {
					t.Logf("seed %d mask %b: dominated bound %v > tM %v", seed, ss.mask, p.bound, tm)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickTightnessWitness validates Theorem 3.2 constructively: for the
// subset and partial attaining the threshold, the reconstructed completion
// is feasible (unseen locations at distance ≥ δ_i) and scores exactly t.
func TestQuickTightnessWitness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, in := buildEngineAtDepth(t, r, 0)
		b := e.bound.(*tightDistBounder)
		tGlobal := b.threshold()
		if math.IsInf(tGlobal, -1) {
			return true
		}
		// Find the achieving subset/partial and rebuild its witness.
		for _, ss := range b.subsets {
			if !b.valid(ss) {
				continue
			}
			for id := range ss.partials {
				p := &ss.partials[id]
				b.computeBound(ss, p)
				if math.Abs(p.bound-tGlobal) > 1e-9 {
					continue
				}
				// Rebuild the reconstruction exactly as computeBound does.
				dir := b.baseDir
				if len(ss.members) > 0 {
					if d, ok := p.nu.Sub(e.q).Unit(); ok {
						dir = d
					}
				}
				fixed := make([]float64, len(p.xs))
				for k, x := range p.xs {
					fixed[k] = x.Sub(e.q).Dot(dir)
				}
				lower := make([]float64, len(ss.unseen))
				for k, j := range ss.unseen {
					lower[k] = e.rels[j].lastDist()
				}
				sol, err := solve14ForTest(b, fixed, lower)
				if err != nil {
					return false
				}
				sigmas := make([]float64, 0, e.n)
				xs := make([]vec.Vector, 0, e.n)
				for k, x := range p.xs {
					ri := ss.members[k]
					for _, tup := range e.rels[ri].tuples {
						if tup.Vec.Equal(x) {
							sigmas = append(sigmas, tup.Score)
							break
						}
					}
					xs = append(xs, x)
				}
				for k, j := range ss.unseen {
					y := e.q.AddScaled(sol[k], dir)
					// Feasibility: the witness respects distance access.
					if y.Dist(e.q) < e.rels[j].lastDist()-1e-9 {
						return false
					}
					sigmas = append(sigmas, e.rels[j].maxScore)
					xs = append(xs, y)
				}
				if len(sigmas) != e.n {
					return false
				}
				want := in.fn.Score(e.q, sigmas, xs)
				return math.Abs(want-tGlobal) <= 1e-7*(1+math.Abs(tGlobal))
			}
		}
		return false // threshold unachieved by any partial: not tight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func solve14ForTest(b *tightDistBounder, fixed, lower []float64) ([]float64, error) {
	sol, err := qpSolve14(b.wq, b.wmu, fixed, lower)
	return sol, err
}
