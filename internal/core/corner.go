package core

import "repro/internal/relation"

// cornerBounder implements the HRJN-style corner bound for both access
// kinds (paper eq. (3)-(5) for distance access, eq. (36)-(38) for score
// access). It is correct for any monotone aggregation but not tight, so
// algorithms built on it are not instance-optimal (Theorems 3.1 and C.1).
type cornerBounder struct {
	e     *Engine
	parts []float64 // scratch for f's arguments
}

func newCornerBounder(e *Engine) *cornerBounder {
	return &cornerBounder{e: e, parts: make([]float64, e.n)}
}

func (c *cornerBounder) register(int)          {}
func (c *cornerBounder) registerExhausted(int) {}

// threshold is t_c = max_i t_i over relations that can still produce an
// unseen tuple.
func (c *cornerBounder) threshold() float64 {
	t := negInf
	for i, rs := range c.e.rels {
		if rs.exhausted {
			continue
		}
		if ti := c.potential(i); ti > t {
			t = ti
		}
	}
	return t
}

// potential computes t_i = f(S̄_1, …, S_i, …, S̄_n): the bound on
// combinations whose unseen member comes from relation i.
func (c *cornerBounder) potential(i int) float64 {
	if c.e.rels[i].exhausted {
		return negInf
	}
	for j, rs := range c.e.rels {
		if j == i {
			c.parts[j] = c.unseenCap(rs)
		} else {
			c.parts[j] = c.seenCap(rs)
		}
	}
	return c.e.opts.Agg.F(c.parts)
}

// seenCap is S̄_j: the best proximity weighted score any tuple of R_j can
// attain, anchored at the first accessed tuple.
func (c *cornerBounder) seenCap(rs *relState) float64 {
	if c.e.kind == relation.DistanceAccess {
		return c.e.opts.Agg.G(rs.index, rs.maxScore, rs.firstDist(), 0)
	}
	return c.e.opts.Agg.G(rs.index, rs.firstScore(), 0, 0)
}

// unseenCap is S_i: the best proximity weighted score an unseen tuple of
// R_i can attain, anchored at the last accessed tuple.
func (c *cornerBounder) unseenCap(rs *relState) float64 {
	if c.e.kind == relation.DistanceAccess {
		return c.e.opts.Agg.G(rs.index, rs.maxScore, rs.lastDist(), 0)
	}
	return c.e.opts.Agg.G(rs.index, rs.lastScore(), 0, 0)
}
