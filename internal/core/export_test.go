package core

import "repro/internal/qp"

// qpSolve14 re-exports the QP entry point for white-box tests.
func qpSolve14(wq, wmu float64, fixed, lower []float64) ([]float64, error) {
	sol, err := qp.Solve14(wq, wmu, fixed, lower)
	if err != nil {
		return nil, err
	}
	return sol.Unseen, nil
}
