// Package core implements the ProxRJ template of the paper (Algorithm 1)
// and its four instantiations: the corner and tight bounding schemes
// crossed with the round-robin and potential-adaptive pulling strategies.
// CBRR and CBPA correspond to the HRJN and HRJN* operators of Ilyas et
// al.; TBRR and TBPA are the paper's instance-optimal algorithms.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

// BoundKind selects the bounding scheme of the ProxRJ template.
type BoundKind int

const (
	// CornerBound is the HRJN-style bound (paper eq. (3)/(36)); correct but
	// not tight, hence not instance-optimal (Theorems 3.1, C.1).
	CornerBound BoundKind = iota
	// TightBound is the paper's tight bound (eq. (9)/(40)); instance-optimal
	// with either pulling strategy (Theorems 3.3, C.3, Corollary 3.6).
	TightBound
)

// String implements fmt.Stringer.
func (b BoundKind) String() string {
	switch b {
	case CornerBound:
		return "corner"
	case TightBound:
		return "tight"
	}
	return fmt.Sprintf("BoundKind(%d)", int(b))
}

// PullKind selects the pulling strategy.
type PullKind int

const (
	// RoundRobin accesses relations cyclically.
	RoundRobin PullKind = iota
	// PotentialAdaptive accesses the relation with the highest potential
	// (paper §3.3), breaking ties by least depth, then least index.
	PotentialAdaptive
)

// String implements fmt.Stringer.
func (p PullKind) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case PotentialAdaptive:
		return "potential-adaptive"
	}
	return fmt.Sprintf("PullKind(%d)", int(p))
}

// Algorithm names the four tested ProxRJ instantiations (paper §4.1).
// The zero value is TBPA, the paper's best algorithm, so that a zero
// Options selects it by default.
type Algorithm int

const (
	// TBPA is tight bound + potential adaptive (instance-optimal, never
	// deeper than TBRR; the default).
	TBPA Algorithm = iota
	// TBRR is tight bound + round robin.
	TBRR
	// CBPA is corner bound + potential adaptive (≡ HRJN*).
	CBPA
	// CBRR is corner bound + round robin (≡ HRJN).
	CBRR
)

// Algorithms lists all four in paper order.
var Algorithms = []Algorithm{CBRR, CBPA, TBRR, TBPA}

// Bound returns the algorithm's bounding scheme.
func (a Algorithm) Bound() BoundKind {
	if a == TBRR || a == TBPA {
		return TightBound
	}
	return CornerBound
}

// Pull returns the algorithm's pulling strategy.
func (a Algorithm) Pull() PullKind {
	if a == CBPA || a == TBPA {
		return PotentialAdaptive
	}
	return RoundRobin
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case CBRR:
		return "CBRR(HRJN)"
	case CBPA:
		return "CBPA(HRJN*)"
	case TBRR:
		return "TBRR"
	case TBPA:
		return "TBPA"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ShortName returns the bare paper label without the HRJN aliases.
func (a Algorithm) ShortName() string {
	switch a {
	case CBRR:
		return "CBRR"
	case CBPA:
		return "CBPA"
	case TBRR:
		return "TBRR"
	case TBPA:
		return "TBPA"
	}
	return a.String()
}

// Options configure a ProxRJ run.
type Options struct {
	// K is the number of top combinations to return (must be ≥ 1).
	K int
	// Algorithm selects the bound/pull pair; default CBRR.
	Algorithm Algorithm
	// Query is the target vector q.
	Query vec.Vector
	// Agg is the aggregation function; the tight bound requires it to
	// implement agg.Quadratic (the engine falls back to the corner bound
	// otherwise and records the downgrade in Stats.BoundDowngraded).
	Agg agg.Function
	// DominancePeriod enables dominance pruning for the distance-based
	// tight bound: every DominancePeriod pulls the dominance LPs are run
	// (paper §3.2.2 and Fig. 3(m)/(n)). 0 disables dominance.
	DominancePeriod int
	// EagerBounds recomputes every affected partial-combination bound on
	// each pull, exactly as paper Algorithm 2; the default (false) uses a
	// lazy max-heap that yields identical thresholds with fewer QP solves.
	EagerBounds bool
	// BoundPeriod recomputes the stopping threshold only every so many
	// pulls (the "blocks of tuples" trade-off of paper §4.2). A stale
	// threshold is still a correct upper bound, so correctness is
	// unaffected; at most BoundPeriod−1 extra pulls may happen before the
	// stopping condition is noticed. 0 or 1 means every pull.
	BoundPeriod int
	// Epsilon relaxes the stopping condition to kth-best ≥ t − Epsilon:
	// the run may stop earlier, and every returned combination is
	// guaranteed to score within Epsilon of any combination it displaced
	// (the approximation contract of Finger & Polyzotis's approximate
	// bounds, applied at the stopping test). 0 means exact.
	Epsilon float64
	// MaxSumDepths aborts the run (DNF) once total accesses reach this
	// value; 0 means unlimited.
	MaxSumDepths int
	// MaxCombinations aborts the run (DNF) once this many combinations
	// have been formed; 0 means unlimited.
	MaxCombinations int64
	// MaxBuffered bounds the session buffer of a pipelined Iterator: the
	// number of formed-but-unemitted combinations retained in ranked form.
	// 0 means unbounded. What happens past the bound is BufferPolicy's
	// choice. Batch engines (Run) ignore it — their buffer is K by
	// construction.
	MaxBuffered int
	// BufferPolicy selects the overflow behavior once MaxBuffered is
	// reached (meaningful only with MaxBuffered > 0).
	BufferPolicy BufferPolicy
	// BlockSize sets the width of the batched scoring kernel: at the
	// innermost enumeration level, surviving candidate combinations are
	// scored against the columnar per-relation state in blocks of this
	// size instead of one leaf at a time. 0 selects DefaultBlockSize;
	// 1 degenerates to per-candidate kernel calls; negative is invalid.
	// Results are byte-identical for every value (the batch kernels replay
	// the scalar operation sequence exactly), so BlockSize is an engine
	// tuning knob, not part of a query's identity.
	BlockSize int
	// CollectTimings enables the per-pull wall-clock sampling behind
	// Stats.BoundTime and Stats.DominanceTime (the stacked bars of
	// Fig. 3(d)-(n)). Off by default so stats collection does not tax
	// every pull; Stats.TotalTime is always collected.
	CollectTimings bool
	// Tracer, when non-nil, observes the run at pull granularity: every
	// access with its depth and wall time, every threshold update, every
	// buffer pressure event. Nil costs one pointer check per pull.
	Tracer Tracer
	// SpillDir, when non-empty, gives a BufferSpill session a file-backed
	// spill tier: once the in-memory spill slab reaches the SpillMemBytes
	// watermark it is sorted and flushed to a compact columnar segment
	// file under SpillDir, and revival merges the slab with the segment
	// streams. Emissions are byte-identical to the purely in-memory slab;
	// resident memory stays O(MaxBuffered + SpillMemBytes) however far
	// the enumeration outruns the consumer. Ignored unless the session
	// runs MaxBuffered > 0 with BufferSpill.
	SpillDir string
	// SpillMemBytes bounds the in-memory spill slab when SpillDir is set;
	// 0 selects DefaultSpillMemBytes.
	SpillMemBytes int
	// disablePrune turns score-floor pruning off even for separable
	// aggregations. Test-only: the unpruned run is the byte-identity
	// oracle for the pruned one.
	disablePrune bool
	// disableBlock turns the batched scoring kernel off even for
	// aggregations that support it. Test-only: the scalar formation path
	// is the byte-identity oracle for the block-pull mode.
	disableBlock bool
	// spillFault, when non-nil, is called before each entry written to a
	// spill segment. Test-only: returning an error simulates a crash
	// mid-segment — the torn file is left behind and the session poisons.
	spillFault func() error
}

// DefaultSpillMemBytes is the in-memory spill slab watermark used when
// Options.SpillDir is set and SpillMemBytes is 0.
const DefaultSpillMemBytes = 4 << 20

// DefaultBlockSize is the scoring block width used when Options.BlockSize
// is 0; chosen by benchmark (see EXPERIMENTS.md) as the point where the
// kernel's per-block overheads are fully amortized without outgrowing L1.
const DefaultBlockSize = 64

// BufferPolicy selects what a pipelined Iterator does with formed
// combinations once its buffer holds Options.MaxBuffered of them.
type BufferPolicy int

const (
	// BufferPrune drops the combination ranking below the buffer's score
	// floor (the worst retained one). The first MaxBuffered results of the
	// stream are exactly the unbounded stream's — a consumer that takes at
	// most MaxBuffered results (a batch run drained to K with
	// MaxBuffered = K) sees identical output in O(MaxBuffered) memory.
	BufferPrune BufferPolicy = iota
	// BufferSpill keeps every combination: the ranked heap stays capped at
	// MaxBuffered and overflow moves to a flat, append-only spill slab in
	// compact rank form, revived in sorted batches as the heap drains.
	// Open enumeration stays exact; memory grows with the spilled count at
	// the compact per-entry cost instead of heap-managed combinations.
	BufferSpill
)

// String implements fmt.Stringer.
func (p BufferPolicy) String() string {
	switch p {
	case BufferPrune:
		return "prune"
	case BufferSpill:
		return "spill"
	}
	return fmt.Sprintf("BufferPolicy(%d)", int(p))
}

// Combination is one joined result with its aggregate score.
type Combination struct {
	// Tuples holds one tuple per input relation, in relation order.
	Tuples []relation.Tuple
	// Ranks holds the access rank (0-based pull position) of each tuple in
	// its relation; used for deterministic tie-breaking.
	Ranks []int
	// Score is the aggregate score S(τ).
	Score float64
}

// Stats records the cost metrics of a run (paper §4.1).
type Stats struct {
	// Depths is the number of tuples pulled per relation; SumDepths is the
	// paper's primary I/O metric.
	Depths    []int
	SumDepths int
	// CombinationsFormed counts cross-product members formed — the paper's
	// combination cost metric. Members cut by score-floor pruning are
	// included (and tallied separately in CombinationsPruned), so the
	// metric and the MaxCombinations cap read identically with pruning on
	// or off.
	CombinationsFormed int64
	// CombinationsPruned counts the CombinationsFormed members that
	// score-floor pruning skipped without materializing.
	CombinationsPruned int64
	// PeakBuffered is the high-water mark of retained combinations (the
	// output buffer plus, for sessions, the spill slab).
	PeakBuffered int
	// SpilledCombinations counts combinations moved to a session buffer's
	// compact spill slab (BufferSpill policy only).
	SpilledCombinations int64
	// SpilledBytes counts bytes written to file-backed spill segments
	// (Options.SpillDir); zero when the slab never reached the watermark.
	SpilledBytes int64
	// BoundUpdates counts updateBound invocations (one per pull).
	BoundUpdates int64
	// QPSolves counts tight-bound optimizations (problem (14) instances).
	QPSolves int64
	// PartialsTracked counts partial combinations ever registered.
	PartialsTracked int64
	// DominanceLPs counts feasibility LPs solved; DominatedPartials counts
	// partials pruned by dominance.
	DominanceLPs      int64
	DominatedPartials int64
	// BoundDowngraded is set when a tight bound was requested but the
	// aggregation is not Quadratic, so the corner bound was used.
	BoundDowngraded bool
	// TotalTime is wall-clock for the whole run; BoundTime and
	// DominanceTime are the fractions spent in updateBound and in the
	// dominance test (the stacked bars of Fig. 3(d)-(n)).
	TotalTime     time.Duration
	BoundTime     time.Duration
	DominanceTime time.Duration
}

// Result is the output of a ProxRJ run.
type Result struct {
	// Combinations holds up to K results ordered by decreasing score
	// (ties: lexicographically by ranks).
	Combinations []Combination
	// Threshold is the final upper bound t at termination.
	Threshold float64
	// DNF is true when a MaxSumDepths/MaxCombinations cap stopped the run
	// before the bound certified the top-K (paper reports CBPA as DNF for
	// n = 4 in the same way).
	DNF bool
	// Stats are the run's cost metrics.
	Stats Stats
}

// Errors returned by engine construction and runs.
var (
	ErrNoRelations   = errors.New("core: at least two relations are required")
	ErrBadK          = errors.New("core: K must be at least 1")
	ErrMixedAccess   = errors.New("core: all sources must share one access kind")
	ErrDimMismatch   = errors.New("core: query and relation dimensions disagree")
	ErrNilAggregator = errors.New("core: aggregation function is required")
)
