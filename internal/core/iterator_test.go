package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// TestIteratorStreamsFullOrder: draining the iterator yields the whole
// cross product in exactly the oracle's score order.
func TestIteratorStreamsFullOrder(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	in := randomInstance(r, 3, 5)
	want, err := NaiveStream(in.rels, in.q, in.fn)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIterator(in.sources(t, relation.DistanceAccess), Options{
		K: 1, Algorithm: TBPA, Query: in.q, Agg: in.fn,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		got, err := it.Next()
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if math.Abs(got.Score-w.Score) > 1e-9 {
			t.Fatalf("result %d: score %v, want %v", i, got.Score, w.Score)
		}
	}
	if _, err := it.Next(); !errors.Is(err, ErrIteratorDone) {
		t.Fatalf("after exhaustion err = %v", err)
	}
	if it.Emitted() != int64(len(want)) {
		t.Fatalf("Emitted = %d, want %d", it.Emitted(), len(want))
	}
	// Errors are sticky.
	if _, err := it.Next(); !errors.Is(err, ErrIteratorDone) {
		t.Fatalf("second exhausted call err = %v", err)
	}
}

// TestQuickIteratorPrefixMatchesOracle: for random instances and both
// access kinds, the first k emitted results match the oracle, and the
// I/O paid grows with the consumed prefix.
func TestQuickIteratorPrefixMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 5)
		want, err := NaiveStream(in.rels, in.q, in.fn)
		if err != nil {
			return false
		}
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			for _, algo := range []Algorithm{TBPA, CBRR} {
				it, err := NewIterator(in.sources(t, kind), Options{
					K: 1, Algorithm: algo, Query: in.q, Agg: in.fn,
				})
				if err != nil {
					return false
				}
				k := 1 + r.Intn(len(want))
				prevDepths := 0
				for i := 0; i < k; i++ {
					got, err := it.Next()
					if err != nil {
						return false
					}
					if math.Abs(got.Score-want[i].Score) > 1e-9 {
						return false
					}
					if it.Stats().SumDepths < prevDepths {
						return false // I/O cannot shrink
					}
					prevDepths = it.Stats().SumDepths
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestIteratorLazyIO: consuming only the top result must cost no more I/O
// than a K=1 engine run (the pipelined operator pulls on demand).
func TestIteratorLazyIO(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	in := randomInstance(r, 2, 8)
	engineRes := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: TBPA, K: 1})

	it, err := NewIterator(in.sources(t, relation.DistanceAccess), Options{
		K: 1, Algorithm: TBPA, Query: in.q, Agg: in.fn,
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(top.Score-engineRes.Combinations[0].Score) > 1e-9 {
		t.Fatalf("iterator top %v, engine top %v", top.Score, engineRes.Combinations[0].Score)
	}
	if it.Stats().SumDepths > engineRes.Stats.SumDepths {
		t.Fatalf("iterator paid %d accesses for top-1, engine paid %d",
			it.Stats().SumDepths, engineRes.Stats.SumDepths)
	}
}

// TestIteratorFaultSticky: an access error surfaces and subsequent calls
// keep returning it.
func TestIteratorFaultSticky(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := randomInstance(r, 2, 6)
	boom := errors.New("link down")
	srcs := in.sources(t, relation.DistanceAccess)
	srcs[0] = &relation.FaultySource{Inner: srcs[0], FailAfter: 1, Err: boom}
	it, err := NewIterator(srcs, Options{K: 1, Algorithm: TBRR, Query: in.q, Agg: in.fn})
	if err != nil {
		t.Fatal(err)
	}
	consumed := 0
	for {
		_, err := it.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want boom", err)
			}
			break
		}
		consumed++
		if consumed > 1000 {
			t.Fatal("fault never surfaced")
		}
	}
	if _, err := it.Next(); !errors.Is(err, boom) {
		t.Fatalf("error not sticky: %v", err)
	}
}

// TestIteratorThresholdMonotone: the reported threshold never increases
// as the iterator consumes input.
func TestIteratorThresholdMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	in := randomInstance(r, 2, 7)
	it, err := NewIterator(in.sources(t, relation.DistanceAccess), Options{
		K: 1, Algorithm: TBRR, Query: in.q, Agg: in.fn,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for {
		_, err := it.Next()
		if err != nil {
			break
		}
		if cur := it.Threshold(); cur > prev+1e-9 {
			t.Fatalf("threshold rose from %v to %v", prev, cur)
		} else {
			prev = cur
		}
	}
}
