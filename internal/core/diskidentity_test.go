package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/relfile"
)

// seqTracer records the full observable schedule of a run — every pull
// (relation and depth), every threshold recomputation (at its cumulative
// depth, with the threshold's exact bits), and every buffer pressure
// event — so two runs can be compared access for access, not just by
// their aggregate counters.
type seqTracer struct {
	pulls  [][2]int
	bounds []struct {
		sum  int
		bits uint64
	}
	bufs []struct {
		action string
		count  int
	}
}

func (s *seqTracer) TracePull(rel, depth int, _ time.Duration) {
	s.pulls = append(s.pulls, [2]int{rel, depth})
}

func (s *seqTracer) TraceBound(sum int, threshold float64) {
	s.bounds = append(s.bounds, struct {
		sum  int
		bits uint64
	}{sum, math.Float64bits(threshold)})
}

func (s *seqTracer) TraceBuffer(action string, count int) {
	s.bufs = append(s.bufs, struct {
		action string
		count  int
	}{action, count})
}

func (s *seqTracer) sameAs(o *seqTracer) error {
	if len(s.pulls) != len(o.pulls) {
		return fmt.Errorf("pull count %d vs %d", len(s.pulls), len(o.pulls))
	}
	for i := range s.pulls {
		if s.pulls[i] != o.pulls[i] {
			return fmt.Errorf("pull %d: %v vs %v", i, s.pulls[i], o.pulls[i])
		}
	}
	if len(s.bounds) != len(o.bounds) {
		return fmt.Errorf("bound count %d vs %d", len(s.bounds), len(o.bounds))
	}
	for i := range s.bounds {
		if s.bounds[i] != o.bounds[i] {
			return fmt.Errorf("bound %d: %+v vs %+v", i, s.bounds[i], o.bounds[i])
		}
	}
	if len(s.bufs) != len(o.bufs) {
		return fmt.Errorf("buffer event count %d vs %d", len(s.bufs), len(o.bufs))
	}
	for i := range s.bufs {
		if s.bufs[i] != o.bufs[i] {
			return fmt.Errorf("buffer event %d: %+v vs %+v", i, s.bufs[i], o.bufs[i])
		}
	}
	return nil
}

// relfileSharded round-trips every relation of the instance through the
// relfile format: partition in memory, write, mmap back, load. The
// returned relations hold no tuples on the Go heap.
func relfileSharded(t *testing.T, in instance, shards int, strategy relation.PartitionStrategy) []*relation.Sharded {
	t.Helper()
	dir := t.TempDir()
	out := make([]*relation.Sharded, len(in.rels))
	for i, rel := range in.rels {
		s, err := relation.Partition(rel, shards, strategy)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("r%d.prox", i))
		if err := relfile.Write(path, s); err != nil {
			t.Fatal(err)
		}
		f, err := relfile.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		loaded, err := f.Load(rel.Name)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = loaded
	}
	return out
}

// shardedSources opens the serving path's source plan over sharded
// relations: one stream per shard (R-tree backed for distance access,
// exactly as the executor opens them) merged into one canonical stream.
func shardedSources(t *testing.T, shs []*relation.Sharded, in instance, kind relation.AccessKind) []relation.Source {
	t.Helper()
	out := make([]relation.Source, len(shs))
	for i, sh := range shs {
		perShard := make([]relation.Source, sh.NumShards())
		for j := 0; j < sh.NumShards(); j++ {
			src, err := sh.ShardSource(j, kind, in.q, in.fn.Metric(), true)
			if err != nil {
				t.Fatal(err)
			}
			perShard[j] = src
		}
		merged, err := sh.Merge(perShard)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = merged
	}
	return out
}

// drainSources is drainIterator over an explicit source plan.
func drainSources(t *testing.T, sources []relation.Source, in instance, opts Options) (emitted, drained []Combination, terminal error, stats Stats) {
	t.Helper()
	opts.Query = in.q
	opts.Agg = in.fn
	it, err := NewIterator(sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, err := it.Next()
		if err != nil {
			if !errors.Is(err, ErrIteratorDone) && !errors.Is(err, ErrIteratorDNF) {
				t.Fatalf("iterator failed: %v", err)
			}
			terminal = err
			break
		}
		emitted = append(emitted, c)
	}
	for {
		c, ok := it.DrainBest()
		if !ok {
			break
		}
		drained = append(drained, c)
	}
	return emitted, drained, terminal, it.Stats()
}

type diskRun struct {
	emitted, drained []Combination
	terminal         error
	stats            Stats
	trace            *seqTracer
}

func runDisk(t *testing.T, sources []relation.Source, in instance, opts Options) diskRun {
	t.Helper()
	tr := &seqTracer{}
	opts.Tracer = tr
	e, d, term, st := drainSources(t, sources, in, opts)
	return diskRun{emitted: e, drained: d, terminal: term, stats: st, trace: tr}
}

func (a diskRun) mustMatch(t *testing.T, label string, b diskRun) {
	t.Helper()
	if !errors.Is(a.terminal, b.terminal) && !errors.Is(b.terminal, a.terminal) {
		t.Fatalf("%s: terminal %v vs %v", label, a.terminal, b.terminal)
	}
	if err := combosIdentical(a.emitted, b.emitted); err != nil {
		t.Fatalf("%s: emissions: %v", label, err)
	}
	if err := combosIdentical(a.drained, b.drained); err != nil {
		t.Fatalf("%s: drain: %v", label, err)
	}
	if err := statsIdentical(a.stats, b.stats); err != nil {
		t.Fatalf("%s: stats: %v", label, err)
	}
	// Beyond statsIdentical's schedule counters, the optimization
	// counters must also agree: pruning and spilling decide identically
	// whatever the storage backend.
	if a.stats.CombinationsPruned != b.stats.CombinationsPruned {
		t.Fatalf("%s: pruned %d vs %d", label, a.stats.CombinationsPruned, b.stats.CombinationsPruned)
	}
	if a.stats.SpilledCombinations != b.stats.SpilledCombinations {
		t.Fatalf("%s: spilled %d vs %d", label, a.stats.SpilledCombinations, b.stats.SpilledCombinations)
	}
	if a.stats.PeakBuffered != b.stats.PeakBuffered {
		t.Fatalf("%s: peak %d vs %d", label, a.stats.PeakBuffered, b.stats.PeakBuffered)
	}
	if err := a.trace.sameAs(b.trace); err != nil {
		t.Fatalf("%s: schedule: %v", label, err)
	}
}

// TestDiskIdentity is the storage byte-identity property: for all four
// algorithms and both access kinds, a session served from mmap-backed
// relfile shards — with and without the file spill tier — emits exactly
// what the all-RAM session emits: Float64bits-equal scores, identical
// rank vectors and tuples, identical stats including the optimization
// counters, and the identical pull/bound/buffer schedule.
func TestDiskIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(63018))
	spilledSomewhere := false
	for ci, c := range identityCases(r, 6) {
		opts := c.opts
		opts.MaxBuffered = 1 + r.Intn(5)
		opts.BufferPolicy = BufferSpill
		shards := 1 + r.Intn(3)
		strategy := relation.HashPartition
		if r.Intn(2) == 0 {
			strategy = relation.GridPartition
		}

		ram := runDisk(t, c.in.sources(t, c.kind), c.in, opts)
		disk := relfileSharded(t, c.in, shards, strategy)

		fromDisk := runDisk(t, shardedSources(t, disk, c.in, c.kind), c.in, opts)
		fromDisk.mustMatch(t, fmt.Sprintf("case %d (%v,%v,%d shards) relfile", ci, opts.Algorithm, c.kind, shards), ram)

		spillOpts := opts
		spillOpts.SpillDir = t.TempDir()
		spillOpts.SpillMemBytes = 1 // watermark 1: every spilled entry hits disk
		withSpill := runDisk(t, shardedSources(t, disk, c.in, c.kind), c.in, spillOpts)
		withSpill.mustMatch(t, fmt.Sprintf("case %d (%v,%v) relfile+spill", ci, opts.Algorithm, c.kind), ram)
		if withSpill.stats.SpilledCombinations > 0 {
			if withSpill.stats.SpilledBytes == 0 {
				t.Fatalf("case %d: spilled %d combinations but wrote no segment bytes",
					ci, withSpill.stats.SpilledCombinations)
			}
			spilledSomewhere = true
		}
		if ram.stats.SpilledBytes != 0 {
			t.Fatalf("case %d: RAM run reported spill segment bytes", ci)
		}
	}
	if !spilledSomewhere {
		t.Fatal("property never exercised the file spill tier; enlarge the instances")
	}
}

// TestDiskSpillDrainsClean: a session that spilled to disk removes its
// segment files as they are consumed — a fully drained session leaves
// the spill directory empty.
func TestDiskSpillDrainsClean(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	in := randomInstance(r, 2, 14)
	dir := t.TempDir()
	opts := Options{
		Algorithm:     CBRR,
		MaxBuffered:   2,
		BufferPolicy:  BufferSpill,
		SpillDir:      dir,
		SpillMemBytes: 1,
	}
	_, _, _, stats := drainSources(t, in.sources(t, relation.ScoreAccess), in, opts)
	if stats.SpilledBytes == 0 {
		t.Skip("instance too small to spill")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("drained session left %d files in the spill dir", len(left))
	}
}
