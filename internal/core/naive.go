package core

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

// Naive computes the exact top-K by scoring the entire cross product.
// It is the correctness oracle for the ProxRJ algorithms and the "read
// everything" baseline of the paper's motivation: its sumDepths is always
// Σ|R_i|.
func Naive(rels []*relation.Relation, q vec.Vector, fn agg.Function, k int) ([]Combination, error) {
	if len(rels) < 2 {
		return nil, ErrNoRelations
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if fn == nil {
		return nil, ErrNilAggregator
	}
	for _, r := range rels {
		if r.Dim() != q.Dim() {
			return nil, fmt.Errorf("%w: relation %q dim %d, query dim %d", ErrDimMismatch, r.Name, r.Dim(), q.Dim())
		}
	}
	n := len(rels)
	out := newTopK(k)
	tuples := make([]relation.Tuple, n)
	ranks := make([]int, n)
	sigmas := make([]float64, n)
	xs := make([]vec.Vector, n)

	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out.push(Combination{
				Tuples: append([]relation.Tuple(nil), tuples...),
				Ranks:  append([]int(nil), ranks...),
				Score:  fn.Score(q, sigmas, xs),
			})
			return
		}
		for r := 0; r < rels[i].Len(); r++ {
			t := rels[i].At(r)
			tuples[i] = t
			ranks[i] = r
			sigmas[i] = t.Score
			xs[i] = t.Vec
			rec(i + 1)
		}
	}
	rec(0)
	return out.sorted(), nil
}
