package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

func mustAgg(t *testing.T, ws, wq, wmu float64) agg.Function {
	t.Helper()
	fn, err := agg.NewEuclideanSum(agg.Weights{Ws: ws, Wq: wq, Wmu: wmu}, agg.IdentityScore)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// combosIdentical requires bit-exact equality: scores, rank vectors, and
// the tuples themselves. This is the "byte-identical results" contract of
// the hot-path optimizations — pruning, the combination arena, and the
// bounded session buffer must be invisible in the output.
func combosIdentical(a, b []Combination) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return fmt.Errorf("combination %d: score %v vs %v", i, a[i].Score, b[i].Score)
		}
		if len(a[i].Ranks) != len(b[i].Ranks) {
			return fmt.Errorf("combination %d: rank arity", i)
		}
		for j := range a[i].Ranks {
			if a[i].Ranks[j] != b[i].Ranks[j] {
				return fmt.Errorf("combination %d: ranks %v vs %v", i, a[i].Ranks, b[i].Ranks)
			}
			ta, tb := a[i].Tuples[j], b[i].Tuples[j]
			if ta.ID != tb.ID || ta.Score != tb.Score || !ta.Vec.Equal(tb.Vec) {
				return fmt.Errorf("combination %d tuple %d: %+v vs %+v", i, j, ta, tb)
			}
		}
	}
	return nil
}

// statsIdentical compares every schedule-derived counter; the
// optimization-reporting fields (CombinationsPruned, PeakBuffered,
// SpilledCombinations) and wall-clock times are the only ones allowed to
// differ.
func statsIdentical(a, b Stats) error {
	if a.SumDepths != b.SumDepths {
		return fmt.Errorf("sumDepths %d vs %d", a.SumDepths, b.SumDepths)
	}
	for i := range a.Depths {
		if a.Depths[i] != b.Depths[i] {
			return fmt.Errorf("depths %v vs %v", a.Depths, b.Depths)
		}
	}
	if a.CombinationsFormed != b.CombinationsFormed {
		return fmt.Errorf("combinationsFormed %d vs %d", a.CombinationsFormed, b.CombinationsFormed)
	}
	if a.BoundUpdates != b.BoundUpdates {
		return fmt.Errorf("boundUpdates %d vs %d", a.BoundUpdates, b.BoundUpdates)
	}
	if a.QPSolves != b.QPSolves {
		return fmt.Errorf("qpSolves %d vs %d", a.QPSolves, b.QPSolves)
	}
	if a.PartialsTracked != b.PartialsTracked {
		return fmt.Errorf("partialsTracked %d vs %d", a.PartialsTracked, b.PartialsTracked)
	}
	if a.DominanceLPs != b.DominanceLPs || a.DominatedPartials != b.DominatedPartials {
		return fmt.Errorf("dominance counters differ")
	}
	if a.BoundDowngraded != b.BoundDowngraded {
		return fmt.Errorf("boundDowngraded %v vs %v", a.BoundDowngraded, b.BoundDowngraded)
	}
	return nil
}

// identityCase is one randomized operating point of the property.
type identityCase struct {
	in   instance
	kind relation.AccessKind
	opts Options // K/Query/Agg filled by runAlgo
}

func identityCases(r *rand.Rand, trials int) []identityCase {
	var out []identityCase
	for i := 0; i < trials; i++ {
		in := randomInstance(r, 3, 14)
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			for _, algo := range Algorithms {
				opts := Options{Algorithm: algo}
				if r.Intn(3) == 0 {
					opts.Epsilon = r.Float64() * 0.2
				}
				if r.Intn(3) == 0 {
					opts.BoundPeriod = 1 + r.Intn(4)
				}
				if kind == relation.DistanceAccess && algo.Bound() == TightBound && r.Intn(2) == 0 {
					opts.DominancePeriod = 1 + r.Intn(6)
				}
				if r.Intn(4) == 0 {
					// A tight cap forces the DNF path through the same
					// comparison.
					opts.MaxCombinations = 1 + int64(r.Intn(40))
				}
				out = append(out, identityCase{in: in, kind: kind, opts: opts})
			}
		}
	}
	return out
}

// TestQuickPruneByteIdentity: a batch run with score-floor pruning (the
// default) is byte-identical — combinations, ranks, threshold, DNF flag,
// and every schedule counter — to the unpruned run, across both access
// kinds, all four bound/pull instantiations, tight caps, epsilon, and
// bound periods.
func TestQuickPruneByteIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(417))
	for ci, c := range identityCases(r, 20) {
		pruned := runAlgo(t, c.in, c.kind, c.opts)
		base := c.opts
		base.disablePrune = true
		plain := runAlgo(t, c.in, c.kind, base)
		if err := combosIdentical(pruned.Combinations, plain.Combinations); err != nil {
			t.Fatalf("case %d (%v, %v): %v", ci, c.opts.Algorithm, c.kind, err)
		}
		if math.Float64bits(pruned.Threshold) != math.Float64bits(plain.Threshold) {
			t.Fatalf("case %d: threshold %v vs %v", ci, pruned.Threshold, plain.Threshold)
		}
		if pruned.DNF != plain.DNF {
			t.Fatalf("case %d: DNF %v vs %v", ci, pruned.DNF, plain.DNF)
		}
		if err := statsIdentical(pruned.Stats, plain.Stats); err != nil {
			t.Fatalf("case %d (%v, %v): %v", ci, c.opts.Algorithm, c.kind, err)
		}
		if plain.Stats.CombinationsPruned != 0 {
			t.Fatalf("case %d: unpruned run reported pruning", ci)
		}
		if pruned.Stats.PeakBuffered > c.in.k {
			t.Fatalf("case %d: batch peak buffered %d exceeds K=%d", ci, pruned.Stats.PeakBuffered, c.in.k)
		}
	}
}

// drainIterator drives an iterator to completion: every certified
// emission, the terminal error, and the best-effort drain after it.
func drainIterator(t *testing.T, in instance, kind relation.AccessKind, opts Options) (emitted, drained []Combination, terminal error, stats Stats) {
	t.Helper()
	opts.Query = in.q
	opts.Agg = in.fn
	it, err := NewIterator(in.sources(t, kind), opts)
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, err := it.Next()
		if err != nil {
			if !errors.Is(err, ErrIteratorDone) && !errors.Is(err, ErrIteratorDNF) {
				t.Fatalf("iterator failed: %v", err)
			}
			terminal = err
			break
		}
		emitted = append(emitted, c)
	}
	for {
		c, ok := it.DrainBest()
		if !ok {
			break
		}
		drained = append(drained, c)
	}
	return emitted, drained, terminal, it.Stats()
}

// TestQuickSessionBufferByteIdentity: the bounded session buffer is
// invisible in the stream. BufferSpill reproduces the unbounded stream in
// full (emissions, terminal condition, drain order); BufferPrune
// reproduces its first MaxBuffered results and the drained-to-K batch
// contract under DNF caps; and the bounded runs pull exactly the same
// input (identical schedule counters).
func TestQuickSessionBufferByteIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	for ci, c := range identityCases(r, 8) {
		base := c.opts
		base.disablePrune = true
		baseEmit, baseDrain, baseErr, baseStats := drainIterator(t, c.in, c.kind, base)

		spill := c.opts
		spill.MaxBuffered = 1 + r.Intn(5)
		spill.BufferPolicy = BufferSpill
		spEmit, spDrain, spErr, spStats := drainIterator(t, c.in, c.kind, spill)
		if !errors.Is(spErr, baseErr) {
			t.Fatalf("case %d: spill terminal %v vs %v", ci, spErr, baseErr)
		}
		if err := combosIdentical(spEmit, baseEmit); err != nil {
			t.Fatalf("case %d: spill emissions: %v", ci, err)
		}
		if err := combosIdentical(spDrain, baseDrain); err != nil {
			t.Fatalf("case %d: spill drain: %v", ci, err)
		}
		if err := statsIdentical(spStats, baseStats); err != nil {
			t.Fatalf("case %d: spill stats: %v", ci, err)
		}

		k := c.in.k
		prune := c.opts
		prune.MaxBuffered = k
		prune.BufferPolicy = BufferPrune
		prEmit, prDrain, prErr, prStats := drainIterator(t, c.in, c.kind, prune)
		if !errors.Is(prErr, baseErr) {
			t.Fatalf("case %d: prune terminal %v vs %v", ci, prErr, baseErr)
		}
		// The batch contract: emissions plus the best-effort drain,
		// truncated to K, match the unbounded run result for result.
		baseK := append(append([]Combination{}, baseEmit...), baseDrain...)
		prK := append(append([]Combination{}, prEmit...), prDrain...)
		if len(baseK) > k {
			baseK = baseK[:k]
		}
		if len(prK) > k {
			prK = prK[:k]
		}
		if err := combosIdentical(prK, baseK); err != nil {
			t.Fatalf("case %d (%v, %v): prune first-K: %v", ci, c.opts.Algorithm, c.kind, err)
		}
		if err := statsIdentical(prStats, baseStats); err != nil {
			t.Fatalf("case %d: prune stats: %v", ci, err)
		}
		if prStats.PeakBuffered > k {
			t.Fatalf("case %d: prune peak buffered %d exceeds cap %d", ci, prStats.PeakBuffered, k)
		}
		if spStats.SpilledCombinations > 0 && spStats.PeakBuffered < prStats.PeakBuffered {
			t.Fatalf("case %d: implausible peaks: spill %d < prune %d", ci, spStats.PeakBuffered, prStats.PeakBuffered)
		}
	}
}

// TestQuickBlockByteIdentity: the batched scoring kernel is invisible in
// the output. For every algorithm and access kind, a run whose innermost
// enumeration level is scored through ScoreBlock — at widths 1 (every
// block is a single candidate), 7 (blocks straddle candidate-list
// boundaries), and 64 (the default) — is byte-identical to the scalar
// per-candidate path: combinations, ranks, threshold, DNF flag, and
// every schedule counter including CombinationsFormed and
// CombinationsPruned (block mode makes the same prune decisions with the
// same float associativity, so even the optimization-reporting counter
// must agree).
func TestQuickBlockByteIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(8191))
	for ci, c := range identityCases(r, 8) {
		scalar := c.opts
		scalar.disableBlock = true
		plain := runAlgo(t, c.in, c.kind, scalar)
		for _, bs := range []int{1, 7, 64} {
			blocked := c.opts
			blocked.BlockSize = bs
			res := runAlgo(t, c.in, c.kind, blocked)
			if err := combosIdentical(res.Combinations, plain.Combinations); err != nil {
				t.Fatalf("case %d bs=%d (%v, %v): %v", ci, bs, c.opts.Algorithm, c.kind, err)
			}
			if math.Float64bits(res.Threshold) != math.Float64bits(plain.Threshold) {
				t.Fatalf("case %d bs=%d: threshold %v vs %v", ci, bs, res.Threshold, plain.Threshold)
			}
			if res.DNF != plain.DNF {
				t.Fatalf("case %d bs=%d: DNF %v vs %v", ci, bs, res.DNF, plain.DNF)
			}
			if err := statsIdentical(res.Stats, plain.Stats); err != nil {
				t.Fatalf("case %d bs=%d (%v, %v): %v", ci, bs, c.opts.Algorithm, c.kind, err)
			}
			if res.Stats.CombinationsPruned != plain.Stats.CombinationsPruned {
				t.Fatalf("case %d bs=%d: pruned %d vs %d", ci, bs,
					res.Stats.CombinationsPruned, plain.Stats.CombinationsPruned)
			}
		}
	}
}

// TestQuickBlockByteIdentityStream extends the block identity to the
// incremental surface: the iterator's emission order, terminal
// condition, and best-effort drain are unchanged by batched scoring.
func TestQuickBlockByteIdentityStream(t *testing.T) {
	r := rand.New(rand.NewSource(131071))
	for ci, c := range identityCases(r, 4) {
		scalar := c.opts
		scalar.disableBlock = true
		baseEmit, baseDrain, baseErr, baseStats := drainIterator(t, c.in, c.kind, scalar)
		for _, bs := range []int{1, 7, 64} {
			blocked := c.opts
			blocked.BlockSize = bs
			emit, drain, terminal, stats := drainIterator(t, c.in, c.kind, blocked)
			if !errors.Is(terminal, baseErr) {
				t.Fatalf("case %d bs=%d: terminal %v vs %v", ci, bs, terminal, baseErr)
			}
			if err := combosIdentical(emit, baseEmit); err != nil {
				t.Fatalf("case %d bs=%d: emissions: %v", ci, bs, err)
			}
			if err := combosIdentical(drain, baseDrain); err != nil {
				t.Fatalf("case %d bs=%d: drain: %v", ci, bs, err)
			}
			if err := statsIdentical(stats, baseStats); err != nil {
				t.Fatalf("case %d bs=%d: stats: %v", ci, bs, err)
			}
		}
	}
}

// TestQuickPruneByteIdentityLargeMagnitude targets the floating-point
// corner of the prune slack: identity scores and wide coordinates make
// the per-tuple solo terms many orders of magnitude larger than the
// aggregate scores they cancel to, so the incremental partial sums carry
// absolute error far above any fixed epsilon. The slack scales with the
// term magnitude, and pruning must stay byte-invisible.
func TestQuickPruneByteIdentityLargeMagnitude(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		n := 2 + r.Intn(2)
		d := 1 + r.Intn(2)
		rels := make([]*relation.Relation, n)
		for i := 0; i < n; i++ {
			size := 4 + r.Intn(10)
			tuples := make([]relation.Tuple, size)
			for j := range tuples {
				v := vec.New(d)
				for c := range v {
					v[c] = r.NormFloat64() * 1e3
				}
				tuples[j] = relation.Tuple{
					ID:    fmt.Sprintf("t%d-%d", i, j),
					Score: 1 + r.Float64()*1e6,
					Vec:   v,
				}
			}
			rels[i] = relation.MustNew(fmt.Sprintf("R%d", i), 1e6+1, tuples)
		}
		q := vec.New(d)
		for c := range q {
			q[c] = r.NormFloat64() * 1e3
		}
		in := instance{
			rels: rels,
			q:    q,
			fn:   mustAgg(t, 1, 1e3, 1e3),
			k:    1 + r.Intn(4),
		}
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			for _, algo := range Algorithms {
				opts := Options{Algorithm: algo}
				pruned := runAlgo(t, in, kind, opts)
				base := opts
				base.disablePrune = true
				plain := runAlgo(t, in, kind, base)
				if err := combosIdentical(pruned.Combinations, plain.Combinations); err != nil {
					t.Fatalf("trial %d (%v, %v): %v", trial, algo, kind, err)
				}
				if err := statsIdentical(pruned.Stats, plain.Stats); err != nil {
					t.Fatalf("trial %d (%v, %v): %v", trial, algo, kind, err)
				}
			}
		}
	}
}

// TestBatchPeakBufferedIsOK asserts the acceptance property directly: a
// batch engine's retained-combination high-water mark is K, no matter how
// many combinations the run forms.
func TestBatchPeakBufferedIsOK(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	in := randomInstance(r, 2, 14) // maximal sizes: a dense cross product
	for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
		res := runAlgo(t, in, kind, Options{Algorithm: CBRR})
		if res.Stats.CombinationsFormed <= int64(in.k) {
			t.Skipf("instance too small to be interesting: %d combinations", res.Stats.CombinationsFormed)
		}
		if res.Stats.PeakBuffered > in.k {
			t.Fatalf("%v: peak buffered %d, want <= K=%d (formed %d)",
				kind, res.Stats.PeakBuffered, in.k, res.Stats.CombinationsFormed)
		}
	}
}
