package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
)

// A spill segment file holds one sorted batch of spilled combinations in
// the same compact columnar form as the in-memory slab:
//
//	magic "PROXSPL1" | arity u32 | count u32
//	count × (score f64 | arity × rank i32)    little-endian
//	crc u32                                   CRC-32C over the entry region
//
// Entries are written in descending (score, then ascending lexicographic
// ranks) order — exactly the order revive sorts the in-memory slab into —
// so revival is a k-way merge of already-sorted streams and emits the
// same sequence the purely in-memory slab would.
const (
	spillMagic      = "PROXSPL1"
	spillHeaderSize = 16
)

var spillCRC = crc32.MakeTable(crc32.Castagnoli)

// tierSeq disambiguates segment names across tiers within one process.
var tierSeq atomic.Int64

// spillTier is the file-backed tier of a session buffer's spill store.
// It owns a set of segment files, each sorted internally, plus the read
// cursors over them. Not safe for concurrent use — like the session
// buffer it extends, it belongs to a single Iterator.
// The tier must not reference the engine (directly or through &Stats,
// which points into the engine allocation): the session buffer holds the
// tier and the engine holds the buffer, so a back-pointer would close a
// reference cycle through the finalizer target — and Go never runs
// finalizers on objects inside such cycles, leaking every abandoned
// session's segments until process exit. Byte accounting therefore lives
// with the caller (flush returns the written size).
type spillTier struct {
	dir       string
	n         int // ranks per entry
	watermark int // slab entries that trigger a flush
	id        int64
	seq       int
	segs      []*spillSegment
	fault     func() error
}

// spillSegment is one on-disk sorted batch plus its streaming read
// state. head/headRanks hold the next unconsumed entry once loaded.
type spillSegment struct {
	f         *os.File
	path      string
	count     int
	pos       int // entries consumed
	r         *bufio.Reader
	head      float64
	headRanks []int32
	loaded    bool
}

// spillEntrySize is the on-disk size of one combination.
func spillEntrySize(n int) int { return 8 + 4*n }

// newSpillTier prepares a file-backed tier rooted at dir and sweeps
// leftovers from dead processes. The finalizer covers sessions that are
// abandoned without draining (Iterator has no Close); a drained tier has
// already removed its files and the finalizer is a no-op.
func newSpillTier(dir string, n, memBytes int, fault func() error) (*spillTier, error) {
	if memBytes <= 0 {
		memBytes = DefaultSpillMemBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: spill dir: %w", err)
	}
	sweepSpillDir(dir)
	w := memBytes / spillEntrySize(n)
	if w < 1 {
		w = 1
	}
	t := &spillTier{dir: dir, n: n, watermark: w, id: tierSeq.Add(1), fault: fault}
	runtime.SetFinalizer(t, func(t *spillTier) { t.discard() })
	return t, nil
}

// sweepSpillDir removes spill segments left behind by processes that no
// longer exist — including partial segments torn by a crash mid-write.
// Files whose embedded pid is still alive are never touched, so
// concurrent sessions can share a spill directory.
func sweepSpillDir(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		pid, ok := spillSegmentPid(e.Name())
		if !ok || pidAlive(pid) {
			continue
		}
		os.Remove(filepath.Join(dir, e.Name()))
	}
}

// spillSegmentPid parses the owning pid out of a segment file name
// (prox-<pid>-<tier>-<seq>.spill).
func spillSegmentPid(name string) (int, bool) {
	if !strings.HasPrefix(name, "prox-") || !strings.HasSuffix(name, ".spill") {
		return 0, false
	}
	parts := strings.Split(strings.TrimSuffix(strings.TrimPrefix(name, "prox-"), ".spill"), "-")
	if len(parts) != 3 {
		return 0, false
	}
	pid, err := strconv.Atoi(parts[0])
	if err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}

// validSpillSegment reports whether path holds a structurally complete
// segment: intact header, exact size for its entry count, and a
// matching checksum. A writer killed mid-segment fails this.
func validSpillSegment(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [spillHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	if string(hdr[0:8]) != spillMagic {
		return false
	}
	n := int(binary.LittleEndian.Uint32(hdr[8:12]))
	count := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if n < 1 || count < 1 || n > 1<<16 {
		return false
	}
	st, err := f.Stat()
	if err != nil {
		return false
	}
	body := int64(count) * int64(spillEntrySize(n))
	if st.Size() != int64(spillHeaderSize)+body+4 {
		return false
	}
	crc := crc32.New(spillCRC)
	if _, err := io.CopyN(crc, f, body); err != nil {
		return false
	}
	var tail [4]byte
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return false
	}
	return crc.Sum32() == binary.LittleEndian.Uint32(tail[:])
}

// flush writes the slab (already sorted descending) as one segment file
// and returns the bytes written. The file descriptor stays open: reads
// go through the same fd, so an external unlink cannot hurt a live
// session. On a write error (including an injected fault) the torn file
// is left behind, exactly as a crash would leave it, and the error
// poisons the session.
func (t *spillTier) flush(scores []float64, ranks []int32) (int64, error) {
	name := fmt.Sprintf("prox-%d-%d-%d.spill", os.Getpid(), t.id, t.seq)
	t.seq++
	path := filepath.Join(t.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("core: spill segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var hdr [spillHeaderSize]byte
	copy(hdr[0:8], spillMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(t.n))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(scores)))
	crc := crc32.New(spillCRC)
	var entry = make([]byte, spillEntrySize(t.n))
	written := int64(0)
	werr := func() error {
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		written += spillHeaderSize
		for i, s := range scores {
			if t.fault != nil {
				if err := t.fault(); err != nil {
					return err
				}
			}
			binary.LittleEndian.PutUint64(entry[0:8], math.Float64bits(s))
			for j := 0; j < t.n; j++ {
				binary.LittleEndian.PutUint32(entry[8+4*j:], uint32(ranks[i*t.n+j]))
			}
			crc.Write(entry)
			if _, err := w.Write(entry); err != nil {
				return err
			}
			written += int64(len(entry))
		}
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
		if _, err := w.Write(tail[:]); err != nil {
			return err
		}
		written += 4
		return w.Flush()
	}()
	if werr != nil {
		// Simulate the crash faithfully: push what the OS already has,
		// close, and leave the partial file for the next sweep.
		w.Flush()
		f.Close()
		return written, fmt.Errorf("core: spill segment %s: %w", name, werr)
	}
	t.segs = append(t.segs, &spillSegment{f: f, path: path, count: len(scores)})
	return written, nil
}

// pending is the number of unconsumed entries across all segments.
func (t *spillTier) pending() int {
	total := 0
	for _, s := range t.segs {
		total += s.count - s.pos
		if s.loaded {
			total++ // pos already counts the loaded-but-unpopped head
		}
	}
	return total
}

// ensureHead loads the segment's next entry into head/headRanks.
// Returns false when the segment is exhausted (and closes + removes it).
func (t *spillTier) ensureHead(s *spillSegment) (bool, error) {
	if s.loaded {
		return true, nil
	}
	if s.pos >= s.count {
		return false, nil
	}
	if s.r == nil {
		if _, err := s.f.Seek(spillHeaderSize, 0); err != nil {
			return false, fmt.Errorf("core: spill read: %w", err)
		}
		s.r = bufio.NewReaderSize(s.f, 1<<16)
	}
	entry := make([]byte, spillEntrySize(t.n))
	if _, err := io.ReadFull(s.r, entry); err != nil {
		return false, fmt.Errorf("core: spill read %s: %w", s.path, err)
	}
	s.head = math.Float64frombits(binary.LittleEndian.Uint64(entry[0:8]))
	if s.headRanks == nil {
		s.headRanks = make([]int32, t.n)
	}
	for j := 0; j < t.n; j++ {
		s.headRanks[j] = int32(binary.LittleEndian.Uint32(entry[8+4*j:]))
	}
	s.pos++
	s.loaded = true
	return true, nil
}

// compact drops exhausted segments, closing and unlinking their files.
func (t *spillTier) compact() {
	live := t.segs[:0]
	for _, s := range t.segs {
		if !s.loaded && s.pos >= s.count {
			s.f.Close()
			os.Remove(s.path)
			continue
		}
		live = append(live, s)
	}
	t.segs = live
}

// discard releases every segment; used when the session is dropped
// without draining.
func (t *spillTier) discard() {
	for _, s := range t.segs {
		s.f.Close()
		os.Remove(s.path)
	}
	t.segs = nil
}
