package core

import "time"

// Tracer observes one engine run at pull granularity. It is the hook
// behind per-query tracing and the traced-run pull histograms: nil (the
// default) costs the hot path exactly one pointer check per pull, so
// untraced runs — including every benchmark — pay nothing.
//
// Callbacks arrive on the goroutine driving the engine, in causal
// order, and must not retain the engine. Implementations are expected
// to be cheap (append to a preallocated slice, observe a histogram);
// the engine does not buffer on their behalf.
type Tracer interface {
	// TracePull reports one completed sorted access: the relation's join
	// position, its depth after the pull, and the wall time of the whole
	// step (access + combination formation + bound registration).
	TracePull(relation, depth int, d time.Duration)
	// TraceBound reports a stopping-threshold recomputation with the
	// cumulative access depth at which it happened. The threshold may be
	// ±Inf (+Inf before the first finite bound, −Inf after exhaustion).
	TraceBound(sumDepths int, threshold float64)
	// TraceBuffer reports session-buffer pressure: action is "spill" or
	// "revive", count the number of combinations moved.
	TraceBuffer(action string, count int)
}

// Buffer actions reported through Tracer.TraceBuffer.
const (
	TraceActionSpill  = "spill"
	TraceActionRevive = "revive"
)
