//go:build !unix

package core

// pidAlive without a cheap existence probe errs on the side of keeping
// files: spill leftovers are never reclaimed for other pids, only
// re-created names from this process get overwritten.
func pidAlive(pid int) bool { return true }
