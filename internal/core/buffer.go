package core

import (
	"sort"

	"repro/internal/pqueue"
)

// topK is the output buffer O of Algorithm 1: it retains the K best
// combinations seen so far, with deterministic tie-breaking (lower rank
// vectors win on equal scores).
type topK struct {
	k    int
	heap *pqueue.Heap[Combination] // worst-first
}

// combWorse reports whether a is a strictly worse result than b.
func combWorse(a, b Combination) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return rankLess(b.Ranks, a.Ranks) // higher rank vector is worse
}

// rankLess is lexicographic order on rank vectors.
func rankLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func newTopK(k int) *topK {
	return &topK{k: k, heap: pqueue.New(combWorse)}
}

// push offers a combination, evicting the worst if the buffer overflows.
func (t *topK) push(c Combination) {
	if t.heap.Len() < t.k {
		t.heap.Push(c)
		return
	}
	worst, _ := t.heap.Peek()
	if combWorse(worst, c) {
		t.heap.Pop()
		t.heap.Push(c)
	}
}

// len returns the number of buffered combinations.
func (t *topK) len() int { return t.heap.Len() }

// kthScore returns the score of the worst buffered combination; callers
// must check len() == k before treating it as the K-th best.
func (t *topK) kthScore() float64 {
	worst, ok := t.heap.Peek()
	if !ok {
		return negInf
	}
	return worst.Score
}

// sorted drains nothing and returns the buffered combinations best-first.
func (t *topK) sorted() []Combination {
	out := make([]Combination, len(t.heap.Items()))
	copy(out, t.heap.Items())
	sort.Slice(out, func(i, j int) bool { return combWorse(out[j], out[i]) })
	return out
}
