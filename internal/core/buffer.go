package core

import (
	"sort"

	"repro/internal/pqueue"
)

// topK is the slice-backed top-K buffer retained for the Naive oracle: it
// keeps the K best combinations seen so far, with deterministic
// tie-breaking (lower rank vectors win on equal scores). The engine's hot
// path uses the arena-backed refTopK below instead.
type topK struct {
	k    int
	heap *pqueue.Heap[Combination] // worst-first
}

// combWorse reports whether a is a strictly worse result than b.
func combWorse(a, b Combination) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return rankLess(b.Ranks, a.Ranks) // higher rank vector is worse
}

// rankLess is lexicographic order on rank vectors.
func rankLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func newTopK(k int) *topK {
	return &topK{k: k, heap: pqueue.New(combWorse)}
}

// push offers a combination, evicting the worst if the buffer overflows.
func (t *topK) push(c Combination) {
	if t.heap.Len() < t.k {
		t.heap.Push(c)
		return
	}
	worst, _ := t.heap.Peek()
	if combWorse(worst, c) {
		t.heap.Pop()
		t.heap.Push(c)
	}
}

// len returns the number of buffered combinations.
func (t *topK) len() int { return t.heap.Len() }

// kthScore returns the score of the worst buffered combination; callers
// must check len() == k before treating it as the K-th best.
func (t *topK) kthScore() float64 {
	worst, ok := t.heap.Peek()
	if !ok {
		return negInf
	}
	return worst.Score
}

// sorted drains nothing and returns the buffered combinations best-first.
func (t *topK) sorted() []Combination {
	out := make([]Combination, len(t.heap.Items()))
	copy(out, t.heap.Items())
	sort.Slice(out, func(i, j int) bool { return combWorse(out[j], out[i]) })
	return out
}

// refSink is the destination of formed combinations on the hot path: the
// batch refTopK or the iterator's session buffer. offer receives the
// aggregate score and the scratch rank vector (copied only if the
// combination is retained); floor exposes the score below which an
// incoming combination is certain to be rejected, which enumerate uses to
// prune cross-product subtrees before they are materialized.
type refSink interface {
	offer(score float64, ranks []int32)
	floor() (float64, bool)
}

// refTopK is the arena-backed output buffer O of Algorithm 1: it retains
// the K best combinations with the same total order as topK, but one
// retained combination costs one arena slot (n int32 ranks) instead of
// two heap allocations, and evicted combinations recycle their slot.
type refTopK struct {
	k     int
	arena *combArena
	heap  *pqueue.Heap[combRef] // worst-first
	peak  *int                  // high-water mark sink (Stats.PeakBuffered)
}

func newRefTopK(k int, arena *combArena, peak *int) *refTopK {
	t := &refTopK{k: k, arena: arena, heap: pqueue.New(arena.refWorse), peak: peak}
	t.heap.Grow(k)
	return t
}

// offer implements refSink: combinations that cannot enter the top K are
// rejected without touching the arena.
func (t *refTopK) offer(score float64, ranks []int32) {
	if t.heap.Len() < t.k {
		t.heap.Push(combRef{slot: t.arena.alloc(ranks), score: score})
		if t.heap.Len() > *t.peak {
			*t.peak = t.heap.Len()
		}
		return
	}
	worst, _ := t.heap.Peek()
	if t.arena.beats(score, ranks, worst) {
		t.heap.Pop()
		t.arena.release(worst.slot)
		t.heap.Push(combRef{slot: t.arena.alloc(ranks), score: score})
	}
}

// floor implements refSink: once the buffer holds K combinations, nothing
// scoring below the current K-th best can ever be admitted.
func (t *refTopK) floor() (float64, bool) {
	if t.heap.Len() < t.k {
		return negInf, false
	}
	worst, _ := t.heap.Peek()
	return worst.score, true
}

// len returns the number of buffered combinations.
func (t *refTopK) len() int { return t.heap.Len() }

// kthScore returns the score of the worst buffered combination.
func (t *refTopK) kthScore() float64 {
	worst, ok := t.heap.Peek()
	if !ok {
		return negInf
	}
	return worst.score
}

// sortedRefs returns the buffered refs best-first.
func (t *refTopK) sortedRefs() []combRef {
	out := make([]combRef, len(t.heap.Items()))
	copy(out, t.heap.Items())
	sort.Slice(out, func(i, j int) bool { return t.arena.refWorse(out[j], out[i]) })
	return out
}
