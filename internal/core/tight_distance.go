package core

import (
	"time"

	"repro/internal/agg"
	"repro/internal/pqueue"
	"repro/internal/qp"
	"repro/internal/relation"
	"repro/internal/vec"
)

// tightDistBounder implements the tight bounding scheme for distance-based
// access (paper §3.2). For every proper subset M of relations it tracks
// the partial combinations PC(M); the bound t(τ) of each partial is the
// optimum of paper problem (12), solved through the collinearity reduction
// of Theorem 3.4 and the 1-D QP (14). t_M = max t(τ) and the threshold is
// t = max_M t_M (eq. (8)-(9)).
//
// Bound maintenance is lazy by default: δ_i only grows, so cached bounds
// only shrink on recomputation and a max-heap refreshed from the top gives
// the exact t_M while recomputing only candidates that could be maximal.
// Options.EagerBounds reproduces the paper's Algorithm 2 schedule instead
// (recompute every affected partial on every pull).
//
// Partial state is arena'd: the partials of a subset live in one value
// slice (the heap id is the index), and their vector payloads — seen
// tuples, centroid, dominance gradient — are views into per-subset slabs
// appended in id order. Growing a slab relocates future segments only;
// committed views keep pointing at the retired array, which is written
// exactly once at partial creation and read-only afterwards, so no view
// ever dangles. Bound recomputation runs through per-bounder scratch
// buffers and qp.Eval, making the steady-state hot path allocation-free.
type tightDistBounder struct {
	e             *Engine
	quad          agg.Quadratic
	ws, wq, wmu   float64
	subsets       []*subsetState
	exhaustedMask int
	baseDir       vec.Vector // fallback ray direction when ν = q or m = 0
	// computeBound scratch, reused across every bound evaluation.
	dirBuf     vec.Vector
	fixedBuf   []float64
	lowerBuf   []float64
	ptsBuf     []vec.Vector
	unseenSlab []float64 // reconstruction points, dim floats per unseen
	muBuf      vec.Vector
	qpScr      qp.Scratch
	// Dominance scratch (see dominance.go).
	domNuT  vec.Vector
	domBNu  vec.Vector
	domXT   vec.Vector
	domPeak vec.Vector
	liveBuf []int
}

// subsetState holds PC(M) for one proper subset M (identified by bitmask).
type subsetState struct {
	mask       int
	members    []int                 // relations in M, ascending
	unseen     []int                 // complement, ascending
	partials   []distPartial         // arena: index = partial id = heap id
	xsSlab     []vec.Vector          // len(members) tuple views per partial, id order
	nuSlab     []float64             // dim floats per partial: centroid storage
	domGSlab   []float64             // dim floats per partial: dominance gradients
	heap       pqueue.Dense[float64] // max-heap: partial id -> cached bound
	deltaEpoch int64                 // pull counter when an unseen δ last changed
}

// distPartial is one partial combination τ ∈ PC(M). The slice fields are
// views into the owning subset's slabs.
type distPartial struct {
	id        int
	xs        []vec.Vector // seen feature vectors, member order
	sumT      float64      // Σ w_s·T(σ) over seen tuples
	nu        vec.Vector   // centroid of seen tuples (nil when m = 0)
	bound     float64      // cached t(τ)
	epoch     int64        // pull counter at last bound computation
	dominated bool
	domG      vec.Vector // 2·b_α of the dominance form (shifted by q)
	domK      float64    // constant K_α of the dominance form
}

// growFloats extends s to length n, doubling capacity on reallocation
// (with a floor, so the first partials of a subset do not reallocate
// once each) — slab growth stays amortized O(1) per appended element.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * n
	if c < 256 {
		c = 256
	}
	ns := make([]float64, n, c)
	copy(ns, s)
	return ns
}

func newTightDistBounder(e *Engine, quad agg.Quadratic) *tightDistBounder {
	ws, wq, wmu := quad.Weights()
	b := &tightDistBounder{
		e:    e,
		quad: quad,
		ws:   ws, wq: wq, wmu: wmu,
		ptsBuf: make([]vec.Vector, 0, e.n),
	}
	// All float scratch — ray directions, per-relation columns, the
	// unseen reconstruction points, and (when dominance screening is on)
	// the dominance work vectors — comes from one slab.
	nf := 3*e.dim + 2*e.n + e.n*e.dim
	if e.opts.DominancePeriod > 0 {
		nf += 4 * e.dim
	}
	fs := make([]float64, nf)
	take := func(k int) []float64 { s := fs[:k:k]; fs = fs[k:]; return s }
	b.baseDir = vec.Vector(take(e.dim))
	b.dirBuf = vec.Vector(take(e.dim))
	b.muBuf = vec.Vector(take(e.dim))
	b.fixedBuf = take(e.n)
	b.lowerBuf = take(e.n)
	b.unseenSlab = take(e.n * e.dim)
	b.baseDir[0] = 1
	if e.opts.DominancePeriod > 0 {
		b.domNuT = vec.Vector(take(e.dim))
		b.domBNu = vec.Vector(take(e.dim))
		b.domXT = vec.Vector(take(e.dim))
		b.domPeak = vec.Vector(take(e.dim))
	}
	full := 1 << e.n
	// Subset states are one backing array behind the by-mask pointer
	// index, and the members/unseen lists are carved from one int slab
	// (each subset partitions the n relations between the two).
	b.subsets = make([]*subsetState, full-1)
	states := make([]subsetState, full-1)
	ints := make([]int, (full-1)*e.n)
	for mask := 0; mask < full-1; mask++ {
		ss := &states[mask]
		ss.mask = mask
		ss.heap = pqueue.MakeDense[float64](func(a, c float64) bool { return a > c })
		k := 0
		for i := 0; i < e.n; i++ {
			if mask&(1<<i) != 0 {
				k++
			}
		}
		ss.members = ints[:0:k]
		ss.unseen = ints[k : k : k+(e.n-k)]
		ints = ints[e.n:]
		for i := 0; i < e.n; i++ {
			if mask&(1<<i) != 0 {
				ss.members = append(ss.members, i)
			} else {
				ss.unseen = append(ss.unseen, i)
			}
		}
		b.subsets[mask] = ss
	}
	// The empty partial ⟨⟩ exists from the start; its bound is refreshed on
	// first use (epoch -1 forces a recomputation).
	b.subsets[0].partials = []distPartial{{id: 0, bound: posInf, epoch: -1}}
	b.subsets[0].heap.Push(0, posInf)
	e.stats.PartialsTracked++
	return b
}

func (b *tightDistBounder) register(ri int) {
	epoch := b.e.pulls
	rs := b.e.rels[ri]
	tau := rs.tuples[len(rs.tuples)-1]

	for _, ss := range b.subsets {
		if ss.mask&(1<<ri) == 0 {
			// δ_ri tightened: every bound in this subset is now stale.
			ss.deltaEpoch = epoch
			continue
		}
		b.extendSubset(ss, ri, tau)
	}
	if b.e.opts.EagerBounds {
		// Paper Algorithm 2: recompute every stale affected partial now.
		for _, ss := range b.subsets {
			if ss.mask&(1<<ri) != 0 || !b.valid(ss) {
				continue
			}
			for id := range ss.partials {
				p := &ss.partials[id]
				if p.dominated || p.epoch >= ss.deltaEpoch {
					continue
				}
				b.computeBound(ss, p)
				ss.heap.Update(p.id, p.bound)
			}
		}
	}
	if period := b.e.opts.DominancePeriod; period > 0 && b.e.pulls%int64(period) == 0 {
		var dStart time.Time
		if b.e.opts.CollectTimings {
			dStart = time.Now()
		}
		for _, ss := range b.subsets {
			if ss.mask&(1<<ri) != 0 {
				b.dominanceSweep(ss)
			}
		}
		if b.e.opts.CollectTimings {
			b.e.stats.DominanceTime += time.Since(dStart)
		}
	}
}

// extendSubset adds the partial combinations of M that use the new tuple:
// PC(M − {ri}) × {τ}. Each new partial appends exactly len(members) tuple
// views, one centroid, and (under dominance) one gradient to the subset
// slabs, so segment offsets are a multiple of the id.
func (b *tightDistBounder) extendSubset(ss *subsetState, ri int, tau relation.Tuple) {
	baseMask := ss.mask &^ (1 << ri)
	base := b.subsets[baseMask]
	// Position of ri among ss.members, to keep xs in member order.
	pos := 0
	for pos < len(ss.members) && ss.members[pos] != ri {
		pos++
	}
	m := len(ss.members)
	dim := b.e.dim
	tauT := b.ws * b.quad.TransformScore(tau.Score)
	if cap(ss.partials) == 0 {
		// First extension of this subset: reserve room for a batch of
		// partials so the arena and view slab are not regrown once per
		// early id.
		const seed = 64
		ss.partials = make([]distPartial, 0, seed)
		ss.xsSlab = make([]vec.Vector, 0, seed*m)
		ss.heap.Grow(seed)
	}
	for bi := range base.partials {
		bp := &base.partials[bi]
		id := len(ss.partials)
		off := id * m
		ss.xsSlab = append(ss.xsSlab, bp.xs[:pos]...)
		ss.xsSlab = append(ss.xsSlab, tau.Vec)
		ss.xsSlab = append(ss.xsSlab, bp.xs[pos:]...)
		xs := ss.xsSlab[off : off+m : off+m]
		ss.nuSlab = growFloats(ss.nuSlab, (id+1)*dim)
		nu := vec.MeanInto(vec.Vector(ss.nuSlab[id*dim:(id+1)*dim]), xs)
		p := distPartial{id: id, xs: xs, sumT: bp.sumT + tauT, nu: nu}
		if b.e.opts.DominancePeriod > 0 {
			ss.domGSlab = growFloats(ss.domGSlab, (id+1)*dim)
			p.domG = vec.Vector(ss.domGSlab[id*dim : (id+1)*dim])
			b.dominanceCoeffs(ss, &p)
		}
		b.computeBound(ss, &p)
		ss.partials = append(ss.partials, p)
		ss.heap.Push(id, p.bound)
		b.e.stats.PartialsTracked++
	}
}

func (b *tightDistBounder) registerExhausted(ri int) {
	b.exhaustedMask |= 1 << ri
}

// valid reports whether subset M can still describe an unseen combination:
// every unseen relation must be unexhausted, and PC(M) non-empty.
func (b *tightDistBounder) valid(ss *subsetState) bool {
	if ss.mask&b.exhaustedMask != b.exhaustedMask {
		return false // some exhausted relation would have to supply an unseen tuple
	}
	return ss.heap.Len() > 0
}

func (b *tightDistBounder) threshold() float64 {
	t := negInf
	for _, ss := range b.subsets {
		if !b.valid(ss) {
			continue
		}
		if tm := b.tM(ss); tm > t {
			t = tm
		}
	}
	return t
}

func (b *tightDistBounder) potential(ri int) float64 {
	if b.e.rels[ri].exhausted {
		return negInf
	}
	pot := negInf
	bit := 1 << ri
	for _, ss := range b.subsets {
		if ss.mask&bit != 0 || !b.valid(ss) {
			continue
		}
		if tm := b.tM(ss); tm > pot {
			pot = tm
		}
	}
	return pot
}

// tM returns max{t(τ) : τ ∈ PC(M)} with lazy top-refresh: cached bounds
// are upper bounds of current ones (δ only grows), so once the heap top is
// fresh it dominates every other cached — hence every other true — bound.
func (b *tightDistBounder) tM(ss *subsetState) float64 {
	for {
		id, cached, ok := ss.heap.Peek()
		if !ok {
			return negInf
		}
		p := &ss.partials[id]
		if p.epoch >= ss.deltaEpoch {
			return cached
		}
		b.computeBound(ss, p)
		ss.heap.Update(id, p.bound)
	}
}

// computeBound solves problem (12) for partial p via the Theorem 3.4
// reduction and stores the resulting t(τ). All working storage comes from
// the bounder scratch; the evaluation is bit-identical to the allocating
// formulation it replaced (SubDot ≡ Sub+Dot, ScaleInPlace ≡ Scale,
// AddScaledInto ≡ AddScaled, MeanInto ≡ Mean — each replays the same
// floating-point operation sequence).
func (b *tightDistBounder) computeBound(ss *subsetState, p *distPartial) {
	e := b.e
	m := len(ss.members)
	u := len(ss.unseen)

	// Ray direction from q through the partial centroid ν. When ν = q (or
	// m = 0) every direction is optimal for the unseen placement and the
	// fixed projections' sum (the only quantity the 1-D argmin depends on)
	// is zero either way, so an arbitrary axis is exact.
	dir := b.baseDir
	if m > 0 {
		d := vec.SubInto(b.dirBuf, p.nu, e.q)
		if nrm := d.Norm(); nrm >= 1e-300 {
			dir = d.ScaleInPlace(1 / nrm)
		}
	}
	fixed := b.fixedBuf[:m]
	for k, x := range p.xs {
		fixed[k] = vec.SubDot(x, e.q, dir)
	}
	lower := b.lowerBuf[:u]
	for k, j := range ss.unseen {
		lower[k] = e.rels[j].lastDist()
	}
	sol, err := qp.Eval(b.wq, b.wmu, fixed, lower, &b.qpScr)
	if err != nil {
		// Weights were validated at aggregation construction; treat any
		// residual failure as "no pruning" rather than wrong pruning.
		p.bound = posInf
		p.epoch = e.pulls
		return
	}
	e.stats.QPSolves++

	// Reconstruct the optimal unseen locations (eq. (15)) and evaluate the
	// true objective (12) there; this restores the perpendicular residual
	// terms the 1-D form drops.
	pts := b.ptsBuf[:0]
	pts = append(pts, p.xs...)
	for k := range ss.unseen {
		pt := vec.Vector(b.unseenSlab[k*e.dim : (k+1)*e.dim])
		pts = append(pts, vec.AddScaledInto(pt, e.q, sol.Unseen[k], dir))
	}
	val := p.sumT
	for _, j := range ss.unseen {
		val += b.ws * b.quad.TransformScore(e.rels[j].maxScore)
	}
	mu := vec.MeanInto(b.muBuf, pts)
	for _, pt := range pts {
		val -= b.wq*pt.Dist2(e.q) + b.wmu*pt.Dist2(mu)
	}
	p.bound = val
	p.epoch = e.pulls
}
