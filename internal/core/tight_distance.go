package core

import (
	"time"

	"repro/internal/agg"
	"repro/internal/pqueue"
	"repro/internal/qp"
	"repro/internal/relation"
	"repro/internal/vec"
)

// tightDistBounder implements the tight bounding scheme for distance-based
// access (paper §3.2). For every proper subset M of relations it tracks
// the partial combinations PC(M); the bound t(τ) of each partial is the
// optimum of paper problem (12), solved through the collinearity reduction
// of Theorem 3.4 and the 1-D QP (14). t_M = max t(τ) and the threshold is
// t = max_M t_M (eq. (8)-(9)).
//
// Bound maintenance is lazy by default: δ_i only grows, so cached bounds
// only shrink on recomputation and a max-heap refreshed from the top gives
// the exact t_M while recomputing only candidates that could be maximal.
// Options.EagerBounds reproduces the paper's Algorithm 2 schedule instead
// (recompute every affected partial on every pull).
type tightDistBounder struct {
	e             *Engine
	quad          agg.Quadratic
	ws, wq, wmu   float64
	subsets       []*subsetState
	exhaustedMask int
	baseDir       vec.Vector // fallback ray direction when ν = q or m = 0
}

// subsetState holds PC(M) for one proper subset M (identified by bitmask).
type subsetState struct {
	mask       int
	members    []int // relations in M, ascending
	unseen     []int // complement, ascending
	partials   []*distPartial
	heap       *pqueue.Indexed[float64] // max-heap: partial id -> cached bound
	deltaEpoch int64                    // pull counter when an unseen δ last changed
}

// distPartial is one partial combination τ ∈ PC(M).
type distPartial struct {
	id        int
	xs        []vec.Vector // seen feature vectors, member order
	sumT      float64      // Σ w_s·T(σ) over seen tuples
	nu        vec.Vector   // centroid of seen tuples (nil when m = 0)
	bound     float64      // cached t(τ)
	epoch     int64        // pull counter at last bound computation
	dominated bool
	domG      vec.Vector // 2·b_α of the dominance form (shifted by q)
	domK      float64    // constant K_α of the dominance form
}

func newTightDistBounder(e *Engine, quad agg.Quadratic) *tightDistBounder {
	ws, wq, wmu := quad.Weights()
	b := &tightDistBounder{
		e:    e,
		quad: quad,
		ws:   ws, wq: wq, wmu: wmu,
		baseDir: vec.New(e.dim),
	}
	b.baseDir[0] = 1
	full := 1 << e.n
	b.subsets = make([]*subsetState, full-1)
	for mask := 0; mask < full-1; mask++ {
		ss := &subsetState{
			mask: mask,
			heap: pqueue.NewIndexed[float64](func(a, c float64) bool { return a > c }),
		}
		for i := 0; i < e.n; i++ {
			if mask&(1<<i) != 0 {
				ss.members = append(ss.members, i)
			} else {
				ss.unseen = append(ss.unseen, i)
			}
		}
		b.subsets[mask] = ss
	}
	// The empty partial ⟨⟩ exists from the start; its bound is refreshed on
	// first use (epoch -1 forces a recomputation).
	empty := &distPartial{id: 0, bound: posInf, epoch: -1}
	b.subsets[0].partials = []*distPartial{empty}
	b.subsets[0].heap.Push(0, empty.bound)
	e.stats.PartialsTracked++
	return b
}

func (b *tightDistBounder) register(ri int) {
	epoch := b.e.pulls
	rs := b.e.rels[ri]
	tau := rs.tuples[len(rs.tuples)-1]

	for _, ss := range b.subsets {
		if ss.mask&(1<<ri) == 0 {
			// δ_ri tightened: every bound in this subset is now stale.
			ss.deltaEpoch = epoch
			continue
		}
		b.extendSubset(ss, ri, tau)
	}
	if b.e.opts.EagerBounds {
		// Paper Algorithm 2: recompute every stale affected partial now.
		for _, ss := range b.subsets {
			if ss.mask&(1<<ri) != 0 || !b.valid(ss) {
				continue
			}
			for _, p := range ss.partials {
				if p.dominated || p.epoch >= ss.deltaEpoch {
					continue
				}
				b.computeBound(ss, p)
				ss.heap.Update(p.id, p.bound)
			}
		}
	}
	if period := b.e.opts.DominancePeriod; period > 0 && b.e.pulls%int64(period) == 0 {
		var dStart time.Time
		if b.e.opts.CollectTimings {
			dStart = time.Now()
		}
		for _, ss := range b.subsets {
			if ss.mask&(1<<ri) != 0 {
				b.dominanceSweep(ss)
			}
		}
		if b.e.opts.CollectTimings {
			b.e.stats.DominanceTime += time.Since(dStart)
		}
	}
}

// extendSubset adds the partial combinations of M that use the new tuple:
// PC(M − {ri}) × {τ}.
func (b *tightDistBounder) extendSubset(ss *subsetState, ri int, tau relation.Tuple) {
	baseMask := ss.mask &^ (1 << ri)
	base := b.subsets[baseMask]
	// Position of ri among ss.members, to keep xs in member order.
	pos := 0
	for pos < len(ss.members) && ss.members[pos] != ri {
		pos++
	}
	tauT := b.ws * b.quad.TransformScore(tau.Score)
	for _, bp := range base.partials {
		xs := make([]vec.Vector, 0, len(ss.members))
		xs = append(xs, bp.xs[:pos]...)
		xs = append(xs, tau.Vec)
		xs = append(xs, bp.xs[pos:]...)
		p := &distPartial{
			id:   len(ss.partials),
			xs:   xs,
			sumT: bp.sumT + tauT,
			nu:   vec.Mean(xs...),
		}
		if b.e.opts.DominancePeriod > 0 {
			b.dominanceCoeffs(ss, p)
		}
		b.computeBound(ss, p)
		ss.partials = append(ss.partials, p)
		ss.heap.Push(p.id, p.bound)
		b.e.stats.PartialsTracked++
	}
}

func (b *tightDistBounder) registerExhausted(ri int) {
	b.exhaustedMask |= 1 << ri
}

// valid reports whether subset M can still describe an unseen combination:
// every unseen relation must be unexhausted, and PC(M) non-empty.
func (b *tightDistBounder) valid(ss *subsetState) bool {
	if ss.mask&b.exhaustedMask != b.exhaustedMask {
		return false // some exhausted relation would have to supply an unseen tuple
	}
	return ss.heap.Len() > 0
}

func (b *tightDistBounder) threshold() float64 {
	t := negInf
	for _, ss := range b.subsets {
		if !b.valid(ss) {
			continue
		}
		if tm := b.tM(ss); tm > t {
			t = tm
		}
	}
	return t
}

func (b *tightDistBounder) potential(ri int) float64 {
	if b.e.rels[ri].exhausted {
		return negInf
	}
	pot := negInf
	bit := 1 << ri
	for _, ss := range b.subsets {
		if ss.mask&bit != 0 || !b.valid(ss) {
			continue
		}
		if tm := b.tM(ss); tm > pot {
			pot = tm
		}
	}
	return pot
}

// tM returns max{t(τ) : τ ∈ PC(M)} with lazy top-refresh: cached bounds
// are upper bounds of current ones (δ only grows), so once the heap top is
// fresh it dominates every other cached — hence every other true — bound.
func (b *tightDistBounder) tM(ss *subsetState) float64 {
	for {
		id, cached, ok := ss.heap.Peek()
		if !ok {
			return negInf
		}
		p := ss.partials[id]
		if p.epoch >= ss.deltaEpoch {
			return cached
		}
		b.computeBound(ss, p)
		ss.heap.Update(id, p.bound)
	}
}

// computeBound solves problem (12) for partial p via the Theorem 3.4
// reduction and stores the resulting t(τ).
func (b *tightDistBounder) computeBound(ss *subsetState, p *distPartial) {
	e := b.e
	m := len(ss.members)
	u := len(ss.unseen)

	// Ray direction from q through the partial centroid ν. When ν = q (or
	// m = 0) every direction is optimal for the unseen placement and the
	// fixed projections' sum (the only quantity the 1-D argmin depends on)
	// is zero either way, so an arbitrary axis is exact.
	dir := b.baseDir
	if m > 0 {
		if d, ok := p.nu.Sub(e.q).Unit(); ok {
			dir = d
		}
	}
	fixed := make([]float64, m)
	for k, x := range p.xs {
		fixed[k] = x.Sub(e.q).Dot(dir)
	}
	lower := make([]float64, u)
	for k, j := range ss.unseen {
		lower[k] = e.rels[j].lastDist()
	}
	sol, err := qp.Solve14(b.wq, b.wmu, fixed, lower)
	if err != nil {
		// Weights were validated at aggregation construction; treat any
		// residual failure as "no pruning" rather than wrong pruning.
		p.bound = posInf
		p.epoch = e.pulls
		return
	}
	e.stats.QPSolves++

	// Reconstruct the optimal unseen locations (eq. (15)) and evaluate the
	// true objective (12) there; this restores the perpendicular residual
	// terms the 1-D form drops.
	pts := make([]vec.Vector, 0, m+u)
	pts = append(pts, p.xs...)
	for k := range ss.unseen {
		pts = append(pts, e.q.AddScaled(sol.Unseen[k], dir))
	}
	val := p.sumT
	for _, j := range ss.unseen {
		val += b.ws * b.quad.TransformScore(e.rels[j].maxScore)
	}
	mu := vec.Mean(pts...)
	for _, pt := range pts {
		val -= b.wq*pt.Dist2(e.q) + b.wmu*pt.Dist2(mu)
	}
	p.bound = val
	p.epoch = e.pulls
}
