package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// TestQuickBoundPeriodCorrect: block-wise threshold recomputation (paper
// §4.2's practical trade-off) never changes the returned top-K and reads
// at most BoundPeriod−1 extra tuples per stop decision, while issuing
// fewer threshold recomputations.
func TestQuickBoundPeriodCorrect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 7)
		for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
			for _, algo := range []Algorithm{TBRR, TBPA, CBRR} {
				base := runAlgo(t, in, kind, Options{Algorithm: algo})
				for _, period := range []int{2, 5} {
					blocked := runAlgo(t, in, kind, Options{Algorithm: algo, BoundPeriod: period})
					if !sameScores(scoresOf(blocked.Combinations), scoresOf(base.Combinations), 1e-9) {
						t.Logf("seed %d %v %v period %d: results differ", seed, kind, algo, period)
						return false
					}
					if blocked.Stats.SumDepths < base.Stats.SumDepths {
						// Blocking can only delay stopping, never hasten it.
						t.Logf("seed %d %v %v period %d: blocked read less (%d < %d)",
							seed, kind, algo, period, blocked.Stats.SumDepths, base.Stats.SumDepths)
						return false
					}
					if blocked.Stats.SumDepths > base.Stats.SumDepths+period {
						t.Logf("seed %d %v %v period %d: overshoot %d vs %d",
							seed, kind, algo, period, blocked.Stats.SumDepths, base.Stats.SumDepths)
						return false
					}
					if blocked.Stats.BoundUpdates > base.Stats.BoundUpdates {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBoundPeriodReducesQPs: on the tight distance bound, blocking defers
// lazy refreshes, so strictly fewer QP solves happen on a non-trivial run.
func TestBoundPeriodReducesQPs(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	in := randomInstance(r, 3, 8)
	in.k = 3
	base := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: TBRR})
	blocked := runAlgo(t, in, relation.DistanceAccess, Options{Algorithm: TBRR, BoundPeriod: 4})
	if blocked.Stats.QPSolves > base.Stats.QPSolves {
		t.Fatalf("blocking increased QP solves: %d vs %d", blocked.Stats.QPSolves, base.Stats.QPSolves)
	}
}
