package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/agg"
	"repro/internal/relation"
	"repro/internal/vec"
)

// TestScoreBoundClosedFormC1 checks the closed form of Appendix C.2 on the
// Theorem C.1 instance: for the partial τ1^(1) (x = [1], σ = 1) with n = 2
// and unit weights, the optimal unseen location is y* = 1/3 and the
// geometric bound value is −4/3 − (seen score term 0).
func TestScoreBoundClosedFormC1(t *testing.T) {
	r1 := relation.MustNew("R1", 1, []relation.Tuple{
		{ID: "a", Score: 1, Vec: vec.Of(1)},
		{ID: "b", Score: math.Exp(-5), Vec: vec.Of(0)},
	})
	r2 := relation.MustNew("R2", 1, []relation.Tuple{
		{ID: "c", Score: 1, Vec: vec.Of(1)},
		{ID: "d", Score: 1, Vec: vec.Of(1.0 / 3.0)},
	})
	e, err := NewEngine([]relation.Source{
		relation.NewScoreSource(r1), relation.NewScoreSource(r2),
	}, Options{K: 1, Algorithm: TBRR, Query: vec.Of(0.0), Agg: defaultAgg()})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.step(0); err != nil { // pull τ1^(1)
		t.Fatal(err)
	}
	b := e.bound.(*tightScoreBounder)

	// Closed form: y* = q + (ν−q)·m·wµ/(m·wµ + n·wq) = 1·1/(1+2) = 1/3.
	geo := b.geo([]vec.Vector{vec.Of(1)}, 0)
	if math.Abs(geo-(-4.0/3.0)) > 1e-9 {
		t.Fatalf("geo = %v, want -4/3 (optimum at y* = 1/3)", geo)
	}
	// Subset {R1} (mask 1): ts_M = geo + ws·ln(lastScore of R2) = -4/3 + 0.
	if got := b.tsM(b.subsets[1]); math.Abs(got-(-4.0/3.0)) > 1e-9 {
		t.Fatalf("ts_M = %v, want -4/3", got)
	}
}

// TestQuickScoreGeoIsOptimal: the closed-form completion value is at least
// the value of any random completion placement (the unconstrained optimum
// of problem (39)).
func TestQuickScoreGeoIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 5)
		quad := in.fn.(agg.Quadratic)
		ws, wq, wmu := quad.Weights()
		e, err := NewEngine(in.sources(t, relation.ScoreAccess), Options{
			K: in.k, Algorithm: TBRR, Query: in.q, Agg: in.fn,
		})
		if err != nil {
			return false
		}
		// Pull a few tuples round-robin.
		rr := &roundRobin{}
		for i := 0; i < 3+r.Intn(5); i++ {
			ri := rr.choose(e)
			if ri < 0 {
				break
			}
			if err := e.step(ri); err != nil {
				return false
			}
		}
		b, ok := e.bound.(*tightScoreBounder)
		if !ok {
			return false
		}
		// Random partial from a random non-empty subset.
		for _, ss := range b.subsets {
			m := len(ss.members)
			if m == 0 || m == e.n {
				continue
			}
			xs := make([]vec.Vector, 0, m)
			var sumT float64
			okAll := true
			for _, j := range ss.members {
				rs := e.rels[j]
				if rs.depth() == 0 {
					okAll = false
					break
				}
				tup := rs.tuples[r.Intn(rs.depth())]
				xs = append(xs, tup.Vec)
				sumT += ws * quad.TransformScore(tup.Score)
			}
			if !okAll {
				continue
			}
			geo := b.geo(xs, sumT)
			// Any random placement of the unseen points must not beat geo.
			u := e.n - m
			for trial := 0; trial < 15; trial++ {
				pts := make([]vec.Vector, 0, e.n)
				pts = append(pts, xs...)
				for k := 0; k < u; k++ {
					y := vec.New(e.dim)
					for c := range y {
						y[c] = r.NormFloat64() * 3
					}
					pts = append(pts, y)
				}
				mu := vec.Mean(pts...)
				val := sumT
				for _, pt := range pts {
					val -= wq*pt.Dist2(e.q) + wmu*pt.Dist2(mu)
				}
				if val > geo+1e-7 {
					t.Logf("seed %d mask %b: random completion %v beats closed form %v", seed, ss.mask, val, geo)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickEpsilonApproximation: with slack ε the engine may stop earlier
// but every returned score is within ε of the exact one at the same rank.
func TestQuickEpsilonApproximation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstance(r, 3, 6)
		exact, err := Naive(in.rels, in.q, in.fn, in.k)
		if err != nil {
			return false
		}
		for _, eps := range []float64{0.5, 2.0} {
			for _, kind := range []relation.AccessKind{relation.DistanceAccess, relation.ScoreAccess} {
				res := runAlgo(t, in, kind, Options{Algorithm: TBPA, Epsilon: eps})
				exactRes := runAlgo(t, in, kind, Options{Algorithm: TBPA})
				if res.Stats.SumDepths > exactRes.Stats.SumDepths {
					return false // approximation may never cost more I/O
				}
				for i := range res.Combinations {
					if exact[i].Score-res.Combinations[i].Score > eps+1e-7 {
						t.Logf("seed %d eps %v: rank %d score %v vs exact %v",
							seed, eps, i, res.Combinations[i].Score, exact[i].Score)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEpsilonValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	in := randomInstance(r, 2, 3)
	_, err := NewEngine(in.sources(t, relation.DistanceAccess), Options{
		K: 1, Query: in.q, Agg: in.fn, Epsilon: -0.5,
	})
	if err == nil {
		t.Fatal("negative epsilon accepted")
	}
	_, err = NewEngine(in.sources(t, relation.DistanceAccess), Options{
		K: 1, Query: in.q, Agg: in.fn, Epsilon: math.NaN(),
	})
	if err == nil {
		t.Fatal("NaN epsilon accepted")
	}
}
