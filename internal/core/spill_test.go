package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
)

// spillingOptions returns options that force the file tier on for every
// spilled combination.
func spillingOptions(dir string) Options {
	return Options{
		Algorithm:     CBRR,
		MaxBuffered:   1,
		BufferPolicy:  BufferSpill,
		SpillDir:      dir,
		SpillMemBytes: 1,
	}
}

// TestSpillSegmentRoundTrip exercises the tier directly: flushed batches
// come back through the head cursor in order, segments validate as
// complete, and consumed segments are removed from disk.
func TestSpillSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tier, err := newSpillTier(dir, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := []float64{0.9, 0.5, 0.5, 0.1}
	ranks := []int32{0, 1, 2, 3, 2, 4, 5, 6}
	written, err := tier.flush(scores, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if written == 0 {
		t.Fatal("no bytes accounted")
	}
	if got := tier.pending(); got != 4 {
		t.Fatalf("pending %d, want 4", got)
	}
	if !validSpillSegment(tier.segs[0].path) {
		t.Fatal("freshly written segment does not validate")
	}
	for i := range scores {
		seg := tier.segs[0]
		ok, err := tier.ensureHead(seg)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("segment dry at entry %d", i)
		}
		if seg.head != scores[i] {
			t.Fatalf("entry %d: score %v, want %v", i, seg.head, scores[i])
		}
		if seg.headRanks[0] != ranks[2*i] || seg.headRanks[1] != ranks[2*i+1] {
			t.Fatalf("entry %d: ranks %v", i, seg.headRanks)
		}
		seg.loaded = false
	}
	tier.compact()
	if len(tier.segs) != 0 || tier.pending() != 0 {
		t.Fatal("consumed segment not released")
	}
	if files, _ := os.ReadDir(dir); len(files) != 0 {
		t.Fatal("consumed segment file not removed")
	}
}

// TestSpillCrashSafety is the crash-safety property of the spill tier:
// a writer dying mid-segment (injected fault) leaves a torn file and a
// poisoned session — never a silently wrong stream — and on reopen the
// partial segment is detected, discarded, and the query re-derives
// byte-identical results from scratch.
func TestSpillCrashSafety(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	in := randomInstance(r, 2, 14)
	dir := t.TempDir()

	// Baseline: the all-RAM spill session.
	base := Options{Algorithm: CBRR, MaxBuffered: 1, BufferPolicy: BufferSpill}
	baseEmit, baseDrain, baseErr, baseStats := drainSources(t, in.sources(t, relation.ScoreAccess), in, base)
	if baseStats.SpilledCombinations == 0 {
		t.Skip("instance too small to spill")
	}

	// Crash the writer partway through its first segment.
	calls := 0
	crash := spillingOptions(dir)
	crash.spillFault = func() error {
		calls++
		if calls > 0 {
			return errors.New("injected media failure")
		}
		return nil
	}
	crash.Query = in.q
	crash.Agg = in.fn
	it, err := NewIterator(in.sources(t, relation.ScoreAccess), crash)
	if err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for {
		_, err := it.Next()
		if err == nil {
			continue
		}
		if errors.Is(err, ErrIteratorDone) || errors.Is(err, ErrIteratorDNF) {
			t.Fatalf("session with failing spill terminated cleanly: %v", err)
		}
		if !strings.Contains(err.Error(), "injected media failure") {
			t.Fatalf("unexpected terminal: %v", err)
		}
		sawFault = true
		break
	}
	if !sawFault {
		t.Fatal("fault never surfaced")
	}
	if _, ok := it.DrainBest(); ok {
		t.Fatal("poisoned session still drains results")
	}

	// The crash left a torn segment behind; it must fail validation.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("expected exactly the torn segment, found %d files", len(files))
	}
	torn := filepath.Join(dir, files[0].Name())
	if validSpillSegment(torn) {
		t.Fatal("partial segment validates as complete")
	}

	// Reopen after the "crash": rename the leftover to a dead pid (the
	// in-process fault kept our own pid alive) and let tier creation
	// sweep it, then verify the rerun is byte-identical to the baseline.
	dead := filepath.Join(dir, "prox-999999999-1-0.spill")
	if err := os.Rename(torn, dead); err != nil {
		t.Fatal(err)
	}
	clean := spillingOptions(dir)
	emit, drain, terminal, stats := drainSources(t, in.sources(t, relation.ScoreAccess), in, clean)
	if _, err := os.Stat(dead); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn segment survived the sweep: %v", err)
	}
	if !errors.Is(terminal, baseErr) {
		t.Fatalf("terminal %v vs %v", terminal, baseErr)
	}
	if err := combosIdentical(emit, baseEmit); err != nil {
		t.Fatalf("emissions after recovery: %v", err)
	}
	if err := combosIdentical(drain, baseDrain); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	if err := statsIdentical(stats, baseStats); err != nil {
		t.Fatalf("stats after recovery: %v", err)
	}
}

// TestSpillSweepSparesLiveFiles: the sweep must never reclaim segments
// whose owning process is still alive (concurrent sessions may share a
// spill directory), nor files it does not recognize.
func TestSpillSweepSparesLiveFiles(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, fmt.Sprintf("prox-%d-7-0.spill", os.Getpid()))
	foreign := filepath.Join(dir, "not-a-segment.txt")
	deadFile := filepath.Join(dir, "prox-999999999-1-0.spill")
	for _, p := range []string{live, foreign, deadFile} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	sweepSpillDir(dir)
	if _, err := os.Stat(live); err != nil {
		t.Fatal("sweep removed a live process's segment")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("sweep removed an unrelated file")
	}
	if _, err := os.Stat(deadFile); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("sweep kept a dead process's segment")
	}
}

// TestSpillAbandonedSessionReleasesSegments pins the finalizer path: a
// session dropped without draining must release its segment files at the
// next collection, not at process exit. This regressed once when the
// tier held a *Stats pointing into the engine allocation — the session
// buffer holds the tier and the engine holds the buffer, so that
// back-pointer closed a reference cycle through the finalizer target,
// and Go never runs finalizers on objects inside such cycles.
func TestSpillAbandonedSessionReleasesSegments(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	in := randomInstance(r, 2, 14)
	dir := t.TempDir()
	glob := func() []string {
		segs, err := filepath.Glob(filepath.Join(dir, "*.spill"))
		if err != nil {
			t.Fatal(err)
		}
		return segs
	}

	opts := spillingOptions(dir)
	opts.Query = in.q
	opts.Agg = in.fn
	spilled := func() bool {
		it, err := NewIterator(in.sources(t, relation.ScoreAccess), opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if _, err := it.Next(); err != nil {
				break
			}
			if len(glob()) > 0 {
				return true // abandon mid-session with segments on disk
			}
		}
		return false
	}()
	if !spilled {
		t.Skip("instance too small to leave segments on disk")
	}

	// The finalizer needs one collection to queue and its own goroutine
	// to run; poll a few cycles before declaring a leak.
	deadline := time.Now().Add(10 * time.Second)
	for len(glob()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned session leaked %d segment files", len(glob()))
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}
