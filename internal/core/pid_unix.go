//go:build unix

package core

import "syscall"

// pidAlive reports whether a process with the given pid exists. Signal 0
// performs the existence check without delivering anything; EPERM means
// the process exists but belongs to someone else.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}
