package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestRunContextCanceled: an already-expired context aborts the run
// before any pull and surfaces the context error.
func TestRunContextCanceled(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(11)), 3, 12)
	e, err := NewEngine(in.sources(t, relation.DistanceAccess), Options{
		K: in.k, Query: in.q, Agg: in.fn,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestRunContextBackground: a background context changes nothing — the
// run matches Run() on the same instance.
func TestRunContextBackground(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(12)), 3, 12)
	mk := func() *Engine {
		e, err := NewEngine(in.sources(t, relation.DistanceAccess), Options{
			K: in.k, Query: in.q, Agg: in.fn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	plain, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := mk().RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Combinations) != len(ctxed.Combinations) {
		t.Fatalf("result sizes differ: %d vs %d", len(plain.Combinations), len(ctxed.Combinations))
	}
	for i := range plain.Combinations {
		if plain.Combinations[i].Score != ctxed.Combinations[i].Score {
			t.Fatalf("combination %d: score %v vs %v", i,
				plain.Combinations[i].Score, ctxed.Combinations[i].Score)
		}
	}
}

// TestNextContextResumes: cancellation must not poison the iterator —
// after a canceled NextContext, a call with a live context produces the
// exact sequence an uncanceled iterator would.
func TestNextContextResumes(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(13)), 2, 8)
	mk := func() *Iterator {
		it, err := NewIterator(in.sources(t, relation.DistanceAccess), Options{
			Query: in.q, Agg: in.fn,
		})
		if err != nil {
			t.Fatal(err)
		}
		return it
	}

	want := mk()
	got := mk()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	sawCancel := false
	for i := 0; i < 8; i++ {
		wc, werr := want.Next()
		// A canceled call either pops an already-certified buffered result
		// (no pulls needed) or fails with context.Canceled before pulling.
		gc, gerr := got.NextContext(canceled)
		if gerr != nil {
			if !errors.Is(gerr, context.Canceled) {
				t.Fatalf("step %d: err = %v, want context.Canceled", i, gerr)
			}
			sawCancel = true
			gc, gerr = got.NextContext(context.Background())
		}
		if !errors.Is(gerr, werr) && (gerr != nil || werr != nil) {
			t.Fatalf("step %d: err %v vs %v", i, gerr, werr)
		}
		if werr != nil {
			break
		}
		if wc.Score != gc.Score {
			t.Fatalf("step %d: score %v vs %v after cancellation", i, gc.Score, wc.Score)
		}
	}
	if !sawCancel {
		t.Fatal("no NextContext call ever needed a pull; instance too small to exercise cancellation")
	}
}
