package core

// combArena stores the payload of buffered combinations in one flat rank
// slab with a freelist of recycled slots. A buffered combination is fully
// identified by its rank vector — the engine retains every pulled tuple
// in its relation prefixes, so tuples are reconstructed on emission as
// rels[i].tuples[rank[i]] instead of being copied per combination. One
// slot therefore costs n int32s instead of the two heap-allocated slices
// (tuples + ranks) the hot path used to pay per formed combination, and
// evicting a combination returns its slot for reuse, so batch runs touch
// a bounded working set no matter how many combinations stream through
// the buffer.
type combArena struct {
	n     int
	ranks []int32 // slot s occupies ranks[s*n : (s+1)*n]
	free  []int32
}

// combRef is an arena-backed combination handle: the aggregate score
// inline (every comparison needs it), the rank payload in the arena.
type combRef struct {
	slot  int32
	score float64
}

func newCombArena(n int) *combArena {
	return &combArena{n: n}
}

// reserve pre-sizes the slab and freelist for the given number of live
// slots, so a buffer with a known retention bound (the batch top-K)
// never grows the arena incrementally.
func (a *combArena) reserve(slots int) {
	if cap(a.ranks) < slots*a.n {
		ranks := make([]int32, len(a.ranks), slots*a.n)
		copy(ranks, a.ranks)
		a.ranks = ranks
	}
	if cap(a.free) < 1 {
		a.free = make([]int32, 0, 8)
	}
}

// alloc copies ranks into a fresh or recycled slot and returns its index.
func (a *combArena) alloc(ranks []int32) int32 {
	var s int32
	if n := len(a.free); n > 0 {
		s = a.free[n-1]
		a.free = a.free[:n-1]
		copy(a.ranks[int(s)*a.n:(int(s)+1)*a.n], ranks)
		return s
	}
	s = int32(len(a.ranks) / a.n)
	a.ranks = append(a.ranks, ranks...)
	return s
}

// release returns slot s to the freelist.
func (a *combArena) release(s int32) {
	a.free = append(a.free, s)
}

// ranksAt returns the rank vector stored in slot s. The slice aliases the
// slab: valid until the slot is released.
func (a *combArena) ranksAt(s int32) []int32 {
	return a.ranks[int(s)*a.n : (int(s)+1)*a.n]
}

// slots returns the number of live (allocated, unreleased) slots.
func (a *combArena) slots() int {
	return len(a.ranks)/a.n - len(a.free)
}

// lexLess32 is lexicographic order on rank vectors.
func lexLess32(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// refWorse reports whether a is a strictly worse result than b — the
// arena-backed twin of combWorse, with identical tie-breaking (equal
// scores: the higher rank vector loses).
func (a *combArena) refWorse(x, y combRef) bool {
	if x.score != y.score {
		return x.score < y.score
	}
	return lexLess32(a.ranksAt(y.slot), a.ranksAt(x.slot))
}

// beats reports whether an incoming combination (score + scratch ranks,
// not yet in the arena) is strictly better than the buffered ref — the
// allocation-free form of refWorse(ref, incoming).
func (a *combArena) beats(score float64, ranks []int32, ref combRef) bool {
	if score != ref.score {
		return score > ref.score
	}
	return lexLess32(ranks, a.ranksAt(ref.slot))
}
