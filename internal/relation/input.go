package relation

import (
	"fmt"

	"repro/internal/vec"
)

// Input is anything the rank-join engine can read a relation from: a
// plain *Relation or a *Sharded partitioned relation. The openSource
// method is unexported, so only this package's types satisfy the
// contract — a foreign implementation could not uphold the canonical
// (key, ordinal) ordering the merge layer depends on.
type Input interface {
	// InputRelation returns the logical relation being queried (the parent
	// relation for sharded inputs), carrying σ_max and metadata.
	InputRelation() *Relation
	// openSource builds one ordered stream for the given access
	// configuration.
	openSource(kind AccessKind, q vec.Vector, metric vec.Metric, useRTree bool) (Source, error)
}

// InputRelation implements Input: a relation is its own logical relation.
func (r *Relation) InputRelation() *Relation { return r }

// openSource implements Input for a plain relation, dispatching exactly
// as the facade's historical source construction did.
func (r *Relation) openSource(kind AccessKind, q vec.Vector, metric vec.Metric, useRTree bool) (Source, error) {
	if r.IsStub() {
		return nil, fmt.Errorf("relation %q: cannot open a local source over a remote stub", r.Name)
	}
	switch {
	case kind == ScoreAccess:
		return NewScoreSource(r), nil
	case useRTree:
		return NewRTreeDistanceSource(r, q)
	default:
		return NewDistanceSource(r, q, metric)
	}
}

// OpenSource builds the ordered stream of in for one access
// configuration: the score order when kind is ScoreAccess, otherwise a
// distance order from q — incremental R-tree traversal when useRTree is
// set, a full sort under metric (nil = Euclidean) when not. Sharded
// inputs return a merged stream over their shards.
func OpenSource(in Input, kind AccessKind, q vec.Vector, metric vec.Metric, useRTree bool) (Source, error) {
	return in.openSource(kind, q, metric, useRTree)
}
