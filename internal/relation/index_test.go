package relation

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/vec"
)

func randomRelation(t *testing.T, seed int64, size, dim int) *Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple, size)
	for i := range tuples {
		v := vec.New(dim)
		for c := range v {
			v[c] = r.NormFloat64()
		}
		tuples[i] = Tuple{ID: string(rune('a' + i%26)), Score: 0.1 + 0.9*r.Float64(), Vec: v}
	}
	rel, err := New("idx", 1.0, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestRTreeIndexSharedTraversals runs many concurrent traversals over one
// shared index and checks each against the full-sort distance source for
// the same query: same tuples, in non-decreasing distance order.
func TestRTreeIndexSharedTraversals(t *testing.T) {
	rel := randomRelation(t, 42, 120, 3)
	ix := NewRTreeIndex(rel)
	r := rand.New(rand.NewSource(43))
	queries := make([]vec.Vector, 16)
	for i := range queries {
		q := vec.New(3)
		for c := range q {
			q[c] = r.NormFloat64()
		}
		queries[i] = q
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for _, q := range queries {
		wg.Add(1)
		go func(q vec.Vector) {
			defer wg.Done()
			src, err := ix.Source(q)
			if err != nil {
				errs <- err
				return
			}
			want, err := NewDistanceSource(rel, q, vec.Euclidean{})
			if err != nil {
				errs <- err
				return
			}
			prev := -1.0
			for i := 0; ; i++ {
				got, gerr := src.Next()
				ref, werr := want.Next()
				if errors.Is(gerr, ErrExhausted) != errors.Is(werr, ErrExhausted) {
					t.Errorf("query %v: exhaustion mismatch at %d", q, i)
					return
				}
				if errors.Is(gerr, ErrExhausted) {
					return
				}
				gd := (vec.Euclidean{}).Distance(got.Vec, q)
				wd := (vec.Euclidean{}).Distance(ref.Vec, q)
				if gd < prev-1e-12 {
					t.Errorf("query %v: distance went backwards at %d (%v after %v)", q, i, gd, prev)
					return
				}
				if gd != wd {
					t.Errorf("query %v: rank %d distance %v, full sort says %v", q, i, gd, wd)
					return
				}
				prev = gd
			}
		}(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRTreeIndexDimMismatch rejects queries of the wrong dimensionality.
func TestRTreeIndexDimMismatch(t *testing.T) {
	ix := NewRTreeIndex(randomRelation(t, 7, 10, 2))
	if _, err := ix.Source(vec.Of(1, 2, 3)); err == nil {
		t.Fatal("Source accepted a 3-d query over a 2-d relation")
	}
}
