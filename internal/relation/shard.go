package relation

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/vec"
)

// PartitionStrategy selects how Partition assigns tuples to shards.
type PartitionStrategy int

const (
	// HashPartition spreads tuples across shards by a hash of their ID:
	// size-balanced in expectation, oblivious to geometry. The right
	// default for score access and mixed workloads.
	HashPartition PartitionStrategy = iota
	// GridPartition packs spatially close tuples into the same shard via
	// an equal-width grid over the bounding box (the spatial-partitioning
	// idea of MapReduce kNN joins): per-shard R-trees stay compact and a
	// distance query drains mostly one shard's stream.
	GridPartition
)

// String implements fmt.Stringer.
func (s PartitionStrategy) String() string {
	switch s {
	case HashPartition:
		return "hash"
	case GridPartition:
		return "grid"
	}
	return fmt.Sprintf("PartitionStrategy(%d)", int(s))
}

// ParsePartitionStrategy maps a case-insensitive name to a strategy; the
// empty string selects HashPartition.
func ParsePartitionStrategy(name string) (PartitionStrategy, error) {
	switch strings.ToLower(name) {
	case "", "hash":
		return HashPartition, nil
	case "grid":
		return GridPartition, nil
	}
	return 0, fmt.Errorf("relation: unknown partition strategy %q (want hash|grid)", name)
}

// maxShards bounds requested shard counts; beyond this the per-shard
// bookkeeping dwarfs any conceivable win.
const maxShards = 1 << 16

// shard is one piece of a partitioned relation: its own relation (and
// hence its own indexes) plus the mapping from shard storage indexes back
// to parent ordinals. orig is nil when the shard IS the parent (the
// single-shard fast path), making ordinals the identity.
type shard struct {
	rel    *Relation
	orig   []int
	rtree  *RTreeIndex
	score  *ScoreIndex
	bounds ShardBounds
	// File-backed shards (see AssembleSharded) read straight from
	// columnar storage instead of a materialized tuple slice: cols is the
	// storage, lazy builds the R-tree on first distance access, and rel is
	// a metadata stub.
	cols Columns
	lazy *lazyRTree
}

// ShardBounds is one shard's bounding metadata: a bounding ball
// (centroid + radius) over its vectors and its true maximum score. From
// it a coordinator derives, without touching the shard's tuples, a lower
// bound on any sort key the shard can produce — the basis for
// distance-aware shard pruning (the partition-pruning idea of the
// MapReduce kNN-join literature applied to rank-join sources).
type ShardBounds struct {
	// Centroid is the mean of the shard's vectors.
	Centroid []float64 `json:"centroid"`
	// Radius is the maximum Euclidean distance from Centroid to any
	// tuple in the shard.
	Radius float64 `json:"radius"`
	// MaxScore is the largest tuple score present in the shard (its
	// effective σ_max, at most the parent's declared bound).
	MaxScore float64 `json:"maxScore"`
	// Tuples is the shard's tuple count.
	Tuples int `json:"tuples"`
}

// boundSlack shrinks derived lower bounds by a relative hair so that
// floating-point rounding in the centroid/radius/triangle-inequality
// arithmetic can never push a bound above a shard's true minimum key —
// which would reorder a byte-identical merge. The true bound inequality
// holds exactly in real arithmetic; 1e-9 relative dwarfs the ~1e-15
// per-operation error while costing nothing measurable in pruning power.
const boundSlack = 1e-9

// DistanceLowerBound returns a sound lower bound on the Euclidean
// distance from q to any tuple in the shard: max(0, d(q,centroid) −
// radius), deflated by boundSlack. Valid only for the plain Euclidean
// metric (the triangle inequality is what makes it sound).
func (b ShardBounds) DistanceLowerBound(q vec.Vector) float64 {
	d := vec.Euclidean{}.Distance(vec.Vector(b.Centroid), q) - b.Radius
	if d <= 0 {
		return 0
	}
	return d * (1 - boundSlack)
}

// computeBounds derives the bounding metadata of one shard's relation.
func computeBounds(r *Relation) ShardBounds {
	n := len(r.tuples)
	b := ShardBounds{Tuples: n, MaxScore: math.Inf(-1)}
	if n == 0 {
		b.MaxScore = 0
		b.Centroid = make([]float64, r.dim)
		return b
	}
	c := make([]float64, r.dim)
	for _, t := range r.tuples {
		for d := 0; d < r.dim; d++ {
			c[d] += t.Vec[d]
		}
		if t.Score > b.MaxScore {
			b.MaxScore = t.Score
		}
	}
	for d := range c {
		c[d] /= float64(n)
	}
	b.Centroid = c
	for _, t := range r.tuples {
		if d := (vec.Euclidean{}).Distance(t.Vec, c); d > b.Radius {
			b.Radius = d
		}
	}
	return b
}

// Sharded is a relation partitioned into shards, each with its own
// R-tree and score order, built in parallel at construction and shared
// read-only across queries. Query-time streams are per-shard sources
// k-way-merged back into one canonical order (see MergedSource), so a
// sharded relation answers byte-identically to its unsharded form while
// bounding per-shard index memory and enabling parallel builds and
// fan-out.
type Sharded struct {
	parent   *Relation
	shards   []shard
	strategy PartitionStrategy
}

// Partition splits r into at most n shards under the given strategy and
// builds the per-shard indexes in parallel. Fewer than n shards are
// returned when the strategy leaves some empty (n exceeding the tuple
// count, or hash skew). n = 1 reuses r itself as the sole shard.
func Partition(r *Relation, n int, strategy PartitionStrategy) (*Sharded, error) {
	if r == nil {
		return nil, fmt.Errorf("relation: cannot partition a nil relation")
	}
	if r.IsStub() {
		return nil, fmt.Errorf("relation %q: cannot partition a remote stub", r.Name)
	}
	if n < 1 {
		return nil, fmt.Errorf("relation %q: shard count %d must be at least 1", r.Name, n)
	}
	if n > maxShards {
		return nil, fmt.Errorf("relation %q: shard count %d exceeds the maximum %d", r.Name, n, maxShards)
	}
	var groups [][]int
	if n > 1 {
		switch strategy {
		case HashPartition:
			groups = hashGroups(r, n)
		case GridPartition:
			groups = gridGroups(r, n)
		default:
			return nil, fmt.Errorf("relation %q: unknown partition strategy %v", r.Name, strategy)
		}
	}
	// Drop empty shards; a merge over empty streams is pure overhead.
	kept := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			kept = append(kept, g)
		}
	}
	groups = kept

	s := &Sharded{parent: r, strategy: strategy}
	if len(groups) <= 1 {
		// One shard is the relation itself: no tuple copies, identity
		// ordinals, and per-query streams with zero merge overhead.
		s.shards = []shard{{rel: r}}
	} else {
		s.shards = make([]shard, len(groups))
		for i, g := range groups {
			tuples := make([]Tuple, len(g))
			for j, idx := range g {
				tuples[j] = r.tuples[idx]
			}
			s.shards[i] = shard{
				rel: &Relation{
					Name:     fmt.Sprintf("%s#%d", r.Name, i),
					MaxScore: r.MaxScore,
					tuples:   tuples,
					dim:      r.dim,
				},
				orig: g,
			}
		}
	}
	// Index construction dominates partitioning cost; build every shard's
	// R-tree and score order concurrently.
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.rtree = NewRTreeIndex(sh.rel)
			sh.score = newScoreIndex(sh.rel, sh.orig)
			sh.bounds = computeBounds(sh.rel)
		}(&s.shards[i])
	}
	wg.Wait()
	return s, nil
}

// fnv64a is the FNV-1a hash, inlined to keep tuple assignment
// allocation-free.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashGroups assigns tuple i to shard fnv64a(ID) mod n, preserving
// storage order within each group.
func hashGroups(r *Relation, n int) [][]int {
	groups := make([][]int, n)
	for i, t := range r.tuples {
		g := int(fnv64a(t.ID) % uint64(n))
		groups[g] = append(groups[g], i)
	}
	return groups
}

// gridGroups lays an equal-width grid of at least n cells over the
// bounding box, orders tuples by cell (row-major, storage order within a
// cell), and cuts the ordering into n size-balanced contiguous runs:
// spatial locality from the grid, balance from the cut.
func gridGroups(r *Relation, n int) [][]int {
	dim := r.dim
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	for d := 0; d < dim; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, t := range r.tuples {
		for d := 0; d < dim; d++ {
			lo[d] = math.Min(lo[d], t.Vec[d])
			hi[d] = math.Max(hi[d], t.Vec[d])
		}
	}
	// Cells per axis: the smallest g with g^dim >= n, so the grid is at
	// least as fine as the shard count.
	g := 1
	for pow(g, dim) < n {
		g++
	}
	cellOf := func(t Tuple) int {
		id := 0
		for d := 0; d < dim; d++ {
			c := 0
			if span := hi[d] - lo[d]; span > 0 {
				c = int(float64(g) * (t.Vec[d] - lo[d]) / span)
				if c >= g {
					c = g - 1
				}
			}
			id = id*g + c
		}
		return id
	}
	order := make([]int, len(r.tuples))
	cells := make([]int, len(r.tuples))
	for i, t := range r.tuples {
		order[i] = i
		cells[i] = cellOf(t)
	}
	sort.SliceStable(order, func(a, b int) bool { return cells[order[a]] < cells[order[b]] })
	groups := make([][]int, n)
	for i := 0; i < n; i++ {
		from, to := i*len(order)/n, (i+1)*len(order)/n
		if from < to {
			groups[i] = order[from:to]
		}
	}
	return groups
}

// pow is integer exponentiation, saturating at maxShards to keep the
// grid-resolution search loop bounded.
func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out >= maxShards {
			return maxShards
		}
	}
	return out
}

// Relation returns the parent relation.
func (s *Sharded) Relation() *Relation { return s.parent }

// InputRelation implements Input.
func (s *Sharded) InputRelation() *Relation { return s.parent }

// NumShards returns the number of non-empty shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Strategy returns the partition strategy the shards were built under.
func (s *Sharded) Strategy() PartitionStrategy { return s.strategy }

// FileBacked reports whether the shards read from external columnar
// storage (AssembleSharded) rather than materialized tuple slices.
func (s *Sharded) FileBacked() bool {
	return len(s.shards) > 0 && s.shards[0].cols != nil
}

// ShardOrdinals returns shard i's parent-relation ordinals in shard
// storage order (a fresh slice). The file writer persists these so a
// loaded shard can keep breaking merge-key ties in the parent's order.
func (s *Sharded) ShardOrdinals(i int) []int {
	sh := &s.shards[i]
	out := make([]int, sh.rel.Len())
	switch {
	case sh.cols != nil:
		for j := range out {
			out[j] = sh.cols.Ordinal(j)
		}
	case sh.orig == nil:
		for j := range out {
			out[j] = j
		}
	default:
		copy(out, sh.orig)
	}
	return out
}

// ShardSizes returns the tuple count of each shard.
func (s *Sharded) ShardSizes() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		out[i] = s.shards[i].rel.Len()
	}
	return out
}

// ShardRelation returns shard i's backing relation (for introspection and
// tests; its tuple order is shard storage order, not access order).
func (s *Sharded) ShardRelation(i int) *Relation { return s.shards[i].rel }

// ShardBounds returns shard i's bounding metadata.
func (s *Sharded) ShardBounds(i int) ShardBounds { return s.shards[i].bounds }

// ShardSource opens the ordered stream of shard i for one access
// configuration, using the shard's precomputed indexes where possible.
// The streams of all shards under one configuration merge back into the
// canonical relation order via Merge.
func (s *Sharded) ShardSource(i int, kind AccessKind, q vec.Vector, metric vec.Metric, useRTree bool) (Source, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("relation %q: shard %d out of range [0,%d)", s.parent.Name, i, len(s.shards))
	}
	sh := &s.shards[i]
	if sh.cols != nil {
		return sh.colSource(kind, q, metric, useRTree)
	}
	switch {
	case kind == ScoreAccess:
		return sh.score.Source(), nil
	case useRTree:
		if q.Dim() != s.parent.dim {
			return nil, fmt.Errorf("relation %q: query dim %d, want %d", s.parent.Name, q.Dim(), s.parent.dim)
		}
		return &rtreeSource{rel: sh.rel, orig: sh.orig, it: sh.rtree.tree.NearestNeighbors(q)}, nil
	default:
		return newDistanceSource(sh.rel, sh.orig, q, metric)
	}
}

// Merge k-way-merges one stream per shard (as produced by ShardSource,
// in shard order) into a single stream in the canonical relation order.
// A single-shard set passes its stream through untouched.
func (s *Sharded) Merge(sources []Source) (Source, error) {
	if len(sources) != len(s.shards) {
		return nil, fmt.Errorf("relation %q: merging %d sources across %d shards", s.parent.Name, len(sources), len(s.shards))
	}
	if len(sources) == 1 {
		return sources[0], nil
	}
	kind := sources[0].Kind()
	ks := make([]KeyedSource, len(sources))
	for i, src := range sources {
		k, ok := src.(KeyedSource)
		if !ok {
			return nil, fmt.Errorf("relation %q: source %d (%T) is not a shard stream", s.parent.Name, i, src)
		}
		if src.Kind() != kind {
			return nil, fmt.Errorf("relation %q: source %d has access kind %v, source 0 has %v", s.parent.Name, i, src.Kind(), kind)
		}
		ks[i] = k
	}
	return newMergedSource(s.parent, kind, ks), nil
}

// distanceSources builds the sorted distance stream of every shard in one
// pass over shared columnar slabs: one tuple/key/ordinal column set for
// all shards, one reused sort scratch, and one sliceSource backing array,
// instead of newDistanceSource's per-shard allocations. The emitted
// streams are element-for-element identical to per-shard construction —
// only the placement of their backing memory changes.
func (s *Sharded) distanceSources(q vec.Vector, metric vec.Metric) ([]Source, error) {
	if q.Dim() != s.parent.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", s.parent.Name, q.Dim(), s.parent.dim)
	}
	if metric == nil {
		metric = vec.Euclidean{}
	}
	total, maxLen := 0, 0
	for i := range s.shards {
		n := s.shards[i].rel.Len()
		total += n
		if n > maxLen {
			maxLen = n
		}
	}
	sources := make([]Source, len(s.shards))
	states := make([]sliceSource, len(s.shards))
	ordSlab := make([]Tuple, total)
	keySlab := make([]float64, total)
	ordsSlab := make([]int, total)
	ks := make([]keyedTuple, maxLen)
	off := 0
	for i := range s.shards {
		sh := &s.shards[i]
		n := sh.rel.Len()
		kss := ks[:n]
		fillKeyed(kss, sh.rel, sh.orig, func(t Tuple) float64 {
			return metric.Distance(t.Vec, q)
		})
		sortKeyed(kss)
		ord := ordSlab[off : off+n : off+n]
		keys := keySlab[off : off+n : off+n]
		ords := ordsSlab[off : off+n : off+n]
		off += n
		unpackKeyed(kss, ord, keys, ords)
		states[i] = sliceSource{rel: sh.rel, kind: DistanceAccess, ord: ord, keys: keys, ords: ords}
		sources[i] = &states[i]
	}
	return sources, nil
}

// openSource implements Input: per-shard streams merged into one.
func (s *Sharded) openSource(kind AccessKind, q vec.Vector, metric vec.Metric, useRTree bool) (Source, error) {
	if kind == DistanceAccess && !useRTree && len(s.shards) > 1 && !s.FileBacked() {
		sources, err := s.distanceSources(q, metric)
		if err != nil {
			return nil, err
		}
		return s.Merge(sources)
	}
	sources := make([]Source, len(s.shards))
	for i := range s.shards {
		src, err := s.ShardSource(i, kind, q, metric, useRTree)
		if err != nil {
			return nil, err
		}
		sources[i] = src
	}
	return s.Merge(sources)
}

// ScoreSource opens the merged score-access stream.
func (s *Sharded) ScoreSource() (Source, error) {
	return s.openSource(ScoreAccess, nil, nil, false)
}

// DistanceSource opens the merged distance-access stream from q, backed
// by the per-shard R-trees.
func (s *Sharded) DistanceSource(q vec.Vector) (Source, error) {
	return s.openSource(DistanceAccess, q, nil, true)
}
