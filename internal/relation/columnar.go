package relation

import (
	"fmt"
	"sync"

	"repro/internal/rtree"
	"repro/internal/vec"
)

// Columns is the read-only columnar storage contract a file-backed shard
// provides (see internal/relfile): tuples addressed by storage index,
// where storage order IS the canonical score-access order — scores
// non-increasing, ties by ascending parent ordinal. Tuple and Vec may
// return views aliasing a memory-mapped file; the implementation must
// keep the mapping valid for as long as the Columns value is reachable.
type Columns interface {
	// Len returns the shard's tuple count.
	Len() int
	// Tuple materializes the i-th tuple. ID and Vec may alias backing
	// storage; Attrs is built per call (nil when the tuple has none).
	Tuple(i int) Tuple
	// Vec returns the i-th feature vector without materializing the rest
	// of the tuple (index builds touch only vectors).
	Vec(i int) vec.Vector
	// Ordinal returns the i-th tuple's ordinal in the parent relation.
	Ordinal(i int) int
}

// FileShard describes one shard of a relation assembled from external
// columnar storage: the columns themselves plus the bounding metadata
// computed at build time. Bounds are stored, not recomputed, because
// computeBounds sums vectors in the builder's storage order and
// re-deriving them over a different permutation would drift the float
// bits advertised to coordinators.
type FileShard struct {
	Cols   Columns
	Bounds ShardBounds
}

// lazyRTree builds a shard's R-tree on first distance access instead of
// at assembly: a file-backed relation serving only score access never
// pays the O(n·dim) heap of tree rectangles. sync.Once makes the build
// safe under concurrent first queries; the resulting tree is the same
// bulk load Partition performs eagerly, so emissions are identical.
type lazyRTree struct {
	once sync.Once
	ix   *RTreeIndex
}

func (l *lazyRTree) index(sh *shard) *RTreeIndex {
	l.once.Do(func() {
		n := sh.cols.Len()
		pts := make([]vec.Vector, n)
		vals := make([]int, n)
		for i := 0; i < n; i++ {
			pts[i] = sh.cols.Vec(i)
			vals[i] = i
		}
		l.ix = &RTreeIndex{rel: sh.rel, tree: rtree.BulkLoad(sh.rel.Dim(), pts, vals)}
	})
	return l.ix
}

// autoShardTarget is the tuples-per-shard the admission heuristic aims
// for: small enough that a shard's R-tree builds in single-digit
// milliseconds and bounding metadata stays selective, large enough that
// the k-way merge over shard heads stays shallow.
const autoShardTarget = 8192

// AutoShardCount picks a shard count from a relation's size: one shard
// per autoShardTarget tuples (rounded up), clamped to [1, 64]. Catalog
// admission and proxgen share this heuristic so a file built offline
// gets the same layout a live registration would.
func AutoShardCount(tuples int) int {
	if tuples <= autoShardTarget {
		return 1
	}
	s := (tuples + autoShardTarget - 1) / autoShardTarget
	if s > 64 {
		return 64
	}
	return s
}

// AssembleSharded builds a Sharded over prebuilt file-backed shards.
// Unlike Partition it copies no tuples and sorts nothing: each shard's
// storage order is already the canonical score order (the loader
// validated it), bounds come stored from the file, and R-trees build
// lazily on first distance access. parent is typically a metadata-only
// stub (NewStub) — the engine reconstructs emitted tuples from its own
// pulled prefixes, never from the parent's tuple storage, which is what
// lets a loaded relation's tuples stay on disk.
func AssembleSharded(parent *Relation, shards []FileShard, strategy PartitionStrategy) (*Sharded, error) {
	if parent == nil {
		return nil, fmt.Errorf("relation: cannot assemble a nil relation")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("relation %q: no shards to assemble", parent.Name)
	}
	if len(shards) > maxShards {
		return nil, fmt.Errorf("relation %q: shard count %d exceeds the maximum %d", parent.Name, len(shards), maxShards)
	}
	total := 0
	for i, fs := range shards {
		if fs.Cols == nil {
			return nil, fmt.Errorf("relation %q: shard %d has no columns", parent.Name, i)
		}
		n := fs.Cols.Len()
		if n < 1 {
			return nil, fmt.Errorf("relation %q: shard %d is empty", parent.Name, i)
		}
		total += n
	}
	if total != parent.Len() {
		return nil, fmt.Errorf("relation %q: shards hold %d tuples, parent advertises %d", parent.Name, total, parent.Len())
	}
	s := &Sharded{parent: parent, strategy: strategy}
	s.shards = make([]shard, len(shards))
	for i, fs := range shards {
		rel := parent
		if len(shards) > 1 {
			sub, err := NewStub(fmt.Sprintf("%s#%d", parent.Name, i), parent.MaxScore, parent.dim, fs.Cols.Len())
			if err != nil {
				return nil, err
			}
			rel = sub
		}
		s.shards[i] = shard{rel: rel, cols: fs.Cols, bounds: fs.Bounds, lazy: &lazyRTree{}}
	}
	return s, nil
}

// colScoreSource streams a file-backed shard in score order straight off
// its columns: storage order is the canonical (−score, ordinal) order,
// so no sort, no materialized tuple slice, and no per-tuple heap beyond
// what the caller retains. The engine keeps only the pulled prefix, so a
// score-access query over an arbitrarily large shard touches heap
// proportional to its depth, not the shard size.
type colScoreSource struct {
	rel  *Relation
	cols Columns
	pos  int
}

func (s *colScoreSource) Next() (Tuple, error) {
	t, _, _, err := s.NextKeyed()
	return t, err
}

// NextKeyed implements KeyedSource. The merge key is −score, exactly
// what newScoreSource computes: float negation is exact, so merged
// emissions are bit-identical to the materialized index's.
func (s *colScoreSource) NextKeyed() (Tuple, float64, int, error) {
	if s.pos >= s.cols.Len() {
		return Tuple{}, 0, 0, ErrExhausted
	}
	i := s.pos
	s.pos++
	t := s.cols.Tuple(i)
	return t, -t.Score, s.cols.Ordinal(i), nil
}

func (s *colScoreSource) Kind() AccessKind    { return ScoreAccess }
func (s *colScoreSource) Relation() *Relation { return s.rel }

// newColDistanceSource is the sorted (non-R-tree) distance stream over a
// file-backed shard: materialize the keyed view from the columns, sort
// by (distance, ordinal), serve. Per-query O(n) like the in-memory
// sorted path it mirrors; the R-tree route is the scalable one.
func newColDistanceSource(rel *Relation, cols Columns, q vec.Vector, metric vec.Metric) (*sliceSource, error) {
	if q.Dim() != rel.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", rel.Name, q.Dim(), rel.dim)
	}
	if metric == nil {
		metric = vec.Euclidean{}
	}
	n := cols.Len()
	ks := make([]keyedTuple, n)
	for i := 0; i < n; i++ {
		t := cols.Tuple(i)
		ks[i] = keyedTuple{t: t, key: metric.Distance(t.Vec, q), ord: cols.Ordinal(i)}
	}
	sortKeyed(ks)
	ord := make([]Tuple, n)
	keys := make([]float64, n)
	ords := make([]int, n)
	unpackKeyed(ks, ord, keys, ords)
	return &sliceSource{rel: rel, kind: DistanceAccess, ord: ord, keys: keys, ords: ords}, nil
}

// colSource opens one access stream over a file-backed shard.
func (sh *shard) colSource(kind AccessKind, q vec.Vector, metric vec.Metric, useRTree bool) (Source, error) {
	switch {
	case kind == ScoreAccess:
		return &colScoreSource{rel: sh.rel, cols: sh.cols}, nil
	case useRTree:
		if q.Dim() != sh.rel.dim {
			return nil, fmt.Errorf("relation %q: query dim %d, want %d", sh.rel.Name, q.Dim(), sh.rel.dim)
		}
		return &rtreeSource{rel: sh.rel, cols: sh.cols, it: sh.lazy.index(sh).tree.NearestNeighbors(q)}, nil
	default:
		return newColDistanceSource(sh.rel, sh.cols, q, metric)
	}
}
