package relation

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/rtree"
	"repro/internal/vec"
)

// Tuple is one object of a relation: named identity, a quality score, and
// a feature vector in R^d.
type Tuple struct {
	ID    string
	Score float64
	Vec   vec.Vector
	Attrs map[string]string
}

// Relation is an immutable collection of tuples sharing a dimensionality
// and a known maximum possible score σ_max (the paper's σ_j^max, needed by
// the bounding schemes).
type Relation struct {
	Name     string
	MaxScore float64
	tuples   []Tuple
	dim      int
	// stubLen, for a metadata-only stub (see NewStub), is the advertised
	// tuple count of a relation whose tuples live in another process.
	// Zero for ordinary relations, whose tuples slice is never empty.
	stubLen int
}

// ErrExhausted is returned by Source.Next when the relation has been read
// completely.
var ErrExhausted = errors.New("relation: source exhausted")

// New validates tuples and builds a relation. Every tuple must share one
// dimensionality, have a finite positive score not exceeding maxScore, and
// a finite feature vector.
func New(name string, maxScore float64, tuples []Tuple) (*Relation, error) {
	if maxScore <= 0 || math.IsInf(maxScore, 0) || math.IsNaN(maxScore) {
		return nil, fmt.Errorf("relation %q: max score %v must be finite and positive", name, maxScore)
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("relation %q: no tuples", name)
	}
	dim := tuples[0].Vec.Dim()
	if dim == 0 {
		return nil, fmt.Errorf("relation %q: zero-dimensional tuples", name)
	}
	for i, t := range tuples {
		if t.Vec.Dim() != dim {
			return nil, fmt.Errorf("relation %q: tuple %d has dim %d, want %d", name, i, t.Vec.Dim(), dim)
		}
		if !t.Vec.IsFinite() {
			return nil, fmt.Errorf("relation %q: tuple %d has a non-finite vector", name, i)
		}
		if math.IsNaN(t.Score) || t.Score <= 0 || t.Score > maxScore {
			return nil, fmt.Errorf("relation %q: tuple %d score %v outside (0, %v]", name, i, t.Score, maxScore)
		}
	}
	own := make([]Tuple, len(tuples))
	copy(own, tuples)
	return &Relation{Name: name, MaxScore: maxScore, tuples: own, dim: dim}, nil
}

// NewStub builds a metadata-only relation describing tuples that live in
// another process (a remote shard server). It carries everything the
// engine and a catalog read from a relation — name, σ_max, the feature
// dimensionality, and the remote tuple count via Len — but holds no
// tuples itself: At and Tuples must not be used, local sources cannot be
// opened over it, and it cannot be partitioned. A coordinator hands a
// stub to MergedSource as the parent of remote shard streams, so engine
// bounds (σ_max) and error messages reflect the true remote relation.
func NewStub(name string, maxScore float64, dim, count int) (*Relation, error) {
	if maxScore <= 0 || math.IsInf(maxScore, 0) || math.IsNaN(maxScore) {
		return nil, fmt.Errorf("relation %q: max score %v must be finite and positive", name, maxScore)
	}
	if dim < 1 {
		return nil, fmt.Errorf("relation %q: dimensionality %d must be at least 1", name, dim)
	}
	if count < 1 {
		return nil, fmt.Errorf("relation %q: remote tuple count %d must be at least 1", name, count)
	}
	return &Relation{Name: name, MaxScore: maxScore, dim: dim, stubLen: count}, nil
}

// IsStub reports whether the relation is a metadata-only stub for
// remotely-held tuples (see NewStub).
func (r *Relation) IsStub() bool { return r.stubLen > 0 }

// MustNew is New that panics on error, for tests and literals.
func MustNew(name string, maxScore float64, tuples []Tuple) *Relation {
	r, err := New(name, maxScore, tuples)
	if err != nil {
		panic(err)
	}
	return r
}

// Len returns the number of tuples (the advertised remote count for a
// stub).
func (r *Relation) Len() int {
	if r.stubLen > 0 {
		return r.stubLen
	}
	return len(r.tuples)
}

// Dim returns the feature-space dimensionality.
func (r *Relation) Dim() int { return r.dim }

// At returns the i-th tuple in storage order (not access order).
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Tuples returns a copy of the tuple slice.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	return out
}

// AccessKind selects the sequential ordering a source provides.
type AccessKind int

const (
	// DistanceAccess streams tuples by increasing distance from the query.
	DistanceAccess AccessKind = iota
	// ScoreAccess streams tuples by decreasing score.
	ScoreAccess
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case DistanceAccess:
		return "distance"
	case ScoreAccess:
		return "score"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// Source is a sequential reader over a relation in a fixed access order.
type Source interface {
	// Next returns the next tuple, or ErrExhausted when done. Other errors
	// model transient access failures (see FaultySource).
	Next() (Tuple, error)
	// Kind reports the access ordering this source guarantees.
	Kind() AccessKind
	// Relation returns the underlying relation (for σ_max and metadata).
	Relation() *Relation
}

// KeyedSource is the contract merged shard streams rely on: alongside
// each tuple, the source reports the ascending sort key its order is
// defined by (distance, or negated score for score access) and the
// tuple's ordinal in the parent relation. Ordinals break key ties with a
// total order every shard of one relation agrees on, which is what makes
// a k-way merge of shard streams byte-identical to the unsharded stream
// (see MergedSource).
//
// Exported so that a stream arriving from another process — a remote
// shard server speaking the shardrpc wire protocol — can join a merge on
// equal terms with local shard streams. A foreign implementation must
// uphold the canonical (key, ordinal) ordering: keys ascending, ordinals
// unique within the parent relation and breaking every key tie.
type KeyedSource interface {
	Source
	NextKeyed() (t Tuple, key float64, ord int, err error)
}

// BoundedSource is a KeyedSource that can report, before its first read,
// a sound lower bound on every merge key it will emit. MergedSource
// keeps such a source latent — represented in the merge by a virtual
// head at the bound — and first reads it only when the bound reaches the
// front of the merge. A latent source whose bound is never reached is
// never read at all; for remote shard streams that is distance-aware
// shard pruning with zero wire traffic, and the emitted sequence is
// provably identical to eagerly priming every source (every real key of
// the source is >= the bound, so no emission could have preceded the
// materialization point).
type BoundedSource interface {
	KeyedSource
	// KeyLowerBound returns b with b <= key for every tuple the source
	// will emit. The bound must stay sound under floating-point rounding
	// (see ShardBounds.DistanceLowerBound for the slack discipline);
	// an overestimate can reorder emissions across shards.
	KeyLowerBound() float64
}

// sliceSource streams a pre-ordered copy of the tuples.
type sliceSource struct {
	rel  *Relation
	kind AccessKind
	ord  []Tuple
	keys []float64 // ascending merge key per position
	ords []int     // parent-relation ordinal per position
	pos  int
}

func (s *sliceSource) Next() (Tuple, error) {
	t, _, _, err := s.NextKeyed()
	return t, err
}

// NextKeyed implements KeyedSource.
func (s *sliceSource) NextKeyed() (Tuple, float64, int, error) {
	if s.pos >= len(s.ord) {
		return Tuple{}, 0, 0, ErrExhausted
	}
	i := s.pos
	s.pos++
	return s.ord[i], s.keys[i], s.ords[i], nil
}

func (s *sliceSource) Kind() AccessKind    { return s.kind }
func (s *sliceSource) Relation() *Relation { return s.rel }

// ordinalOf maps a storage index to its parent-relation ordinal: identity
// for a whole relation, orig[i] for a shard (see Partition).
func ordinalOf(orig []int, i int) int {
	if orig == nil {
		return i
	}
	return orig[i]
}

// keyedTuple pairs a tuple with its ascending merge key and its
// parent-relation ordinal, the sort unit of every materialized access
// order.
type keyedTuple struct {
	t   Tuple
	key float64
	ord int
}

// sortKeyed orders by (key, ordinal) ascending. Ordinals are unique
// within one relation, so the comparator is a total order and the
// resulting permutation is independent of the sorting algorithm — an
// unstable slices.SortFunc yields exactly the order the previous
// reflection-based sort.Slice did, without its per-call Swapper
// allocations.
func sortKeyed(ks []keyedTuple) {
	slices.SortFunc(ks, func(a, b keyedTuple) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		case a.ord < b.ord:
			return -1
		case a.ord > b.ord:
			return 1
		}
		return 0
	})
}

// fillKeyed computes the keyed view of r's tuples into ks (len must equal
// r.Len()).
func fillKeyed(ks []keyedTuple, r *Relation, orig []int, keyOf func(Tuple) float64) {
	for i, t := range r.tuples {
		ks[i] = keyedTuple{t: t, key: keyOf(t), ord: ordinalOf(orig, i)}
	}
}

// unpackKeyed scatters a sorted keyed view into parallel columns.
func unpackKeyed(ks []keyedTuple, ord []Tuple, keys []float64, ords []int) {
	for i, k := range ks {
		ord[i] = k.t
		keys[i] = k.key
		ords[i] = k.ord
	}
}

// newSortedSource sorts r's tuples by (key, ordinal) ascending and wraps
// them in a sliceSource. orig is nil for a whole relation; for shards it
// maps storage indexes back to parent ordinals so that ties resolve in
// the parent's order.
func newSortedSource(r *Relation, kind AccessKind, orig []int, keyOf func(Tuple) float64) *sliceSource {
	ks := make([]keyedTuple, len(r.tuples))
	fillKeyed(ks, r, orig, keyOf)
	sortKeyed(ks)
	ord := make([]Tuple, len(ks))
	keys := make([]float64, len(ks))
	ords := make([]int, len(ks))
	unpackKeyed(ks, ord, keys, ords)
	return &sliceSource{rel: r, kind: kind, ord: ord, keys: keys, ords: ords}
}

// newDistanceSource is NewDistanceSource with an optional shard ordinal
// mapping.
func newDistanceSource(r *Relation, orig []int, q vec.Vector, metric vec.Metric) (*sliceSource, error) {
	if q.Dim() != r.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", r.Name, q.Dim(), r.dim)
	}
	if metric == nil {
		metric = vec.Euclidean{}
	}
	return newSortedSource(r, DistanceAccess, orig, func(t Tuple) float64 {
		return metric.Distance(t.Vec, q)
	}), nil
}

// NewDistanceSource returns a source that yields tuples of r sorted by
// increasing metric distance from q (ties broken by storage index for
// determinism). The whole order is computed up front; for large relations
// prefer NewRTreeDistanceSource, which sorts incrementally.
func NewDistanceSource(r *Relation, q vec.Vector, metric vec.Metric) (Source, error) {
	return newDistanceSource(r, nil, q, metric)
}

// newScoreSource is NewScoreSource with an optional shard ordinal mapping.
func newScoreSource(r *Relation, orig []int) *sliceSource {
	return newSortedSource(r, ScoreAccess, orig, func(t Tuple) float64 { return -t.Score })
}

// NewScoreSource returns a source that yields tuples of r sorted by
// decreasing score (ties broken by storage index).
func NewScoreSource(r *Relation) Source {
	return newScoreSource(r, nil)
}

// ScoreIndex is the score-sorted order of a relation, computed once and
// shared read-only across queries: each Source call opens an independent
// cursor over the same slice, so concurrent score-access queries skip the
// per-query sort.
type ScoreIndex struct {
	rel  *Relation
	ord  []Tuple
	keys []float64
	ords []int
}

// newScoreIndex is NewScoreIndex with an optional shard ordinal mapping.
func newScoreIndex(r *Relation, orig []int) *ScoreIndex {
	src := newScoreSource(r, orig)
	return &ScoreIndex{rel: r, ord: src.ord, keys: src.keys, ords: src.ords}
}

// NewScoreIndex sorts r by decreasing score (ties by storage index) once.
func NewScoreIndex(r *Relation) *ScoreIndex {
	return newScoreIndex(r, nil)
}

// Relation returns the indexed relation.
func (ix *ScoreIndex) Relation() *Relation { return ix.rel }

// Source opens a score-access source over the precomputed order. Safe to
// call from multiple goroutines.
func (ix *ScoreIndex) Source() Source {
	return &sliceSource{rel: ix.rel, kind: ScoreAccess, ord: ix.ord, keys: ix.keys, ords: ix.ords}
}

// rtreeSource serves distance-based access through an R-tree's incremental
// nearest-neighbor traversal, so no global sort is ever materialized.
//
// The raw traversal breaks exact-distance ties by heap insertion order,
// which depends on tree structure. rtreeSource re-orders each run of
// equal distances by parent ordinal instead, so that every distance
// source — full sort, whole-relation R-tree, or merged shard R-trees —
// emits one canonical (distance, ordinal) sequence.
type rtreeSource struct {
	rel     *Relation
	orig    []int   // shard ordinal mapping; nil = identity
	cols    Columns // file-backed shard storage; nil = rel.tuples
	it      *rtree.NNIterator[int]
	look    nnHit // one-item lookahead past the current tie run
	hasLook bool
	batch   []nnHit // current equal-distance run, ordinal-sorted
}

// nnHit is one materialized traversal result.
type nnHit struct {
	idx  int // storage index within rel
	ord  int // parent-relation ordinal
	dist float64
}

// RTreeIndex is a bulk-loaded R-tree over a relation's feature vectors,
// built once and shared read-only across queries: each Source call opens
// an independent incremental nearest-neighbor traversal over the same
// tree, so concurrent queries pay only the O(1) iterator setup instead of
// a per-query bulk load. The tree is never mutated after construction,
// which makes Source safe for concurrent use.
type RTreeIndex struct {
	rel  *Relation
	tree *rtree.Tree[int]
}

// NewRTreeIndex bulk-loads r's vectors into an R-tree.
func NewRTreeIndex(r *Relation) *RTreeIndex {
	pts := make([]vec.Vector, len(r.tuples))
	vals := make([]int, len(r.tuples))
	for i, t := range r.tuples {
		pts[i] = t.Vec
		vals[i] = i
	}
	return &RTreeIndex{rel: r, tree: rtree.BulkLoad(r.dim, pts, vals)}
}

// Relation returns the indexed relation.
func (ix *RTreeIndex) Relation() *Relation { return ix.rel }

// Source opens a distance-access source that streams tuples by increasing
// Euclidean distance from q. Safe to call from multiple goroutines.
func (ix *RTreeIndex) Source(q vec.Vector) (Source, error) {
	if q.Dim() != ix.rel.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", ix.rel.Name, q.Dim(), ix.rel.dim)
	}
	return &rtreeSource{rel: ix.rel, it: ix.tree.NearestNeighbors(q)}, nil
}

// NewRTreeDistanceSource bulk-loads r into an R-tree and streams tuples by
// increasing Euclidean distance from q via incremental NN traversal. For
// repeated queries over one relation, build a shared NewRTreeIndex once
// and call its Source method instead.
func NewRTreeDistanceSource(r *Relation, q vec.Vector) (Source, error) {
	if q.Dim() != r.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", r.Name, q.Dim(), r.dim)
	}
	return NewRTreeIndex(r).Source(q)
}

func (s *rtreeSource) Next() (Tuple, error) {
	t, _, _, err := s.NextKeyed()
	return t, err
}

// take pulls the next traversal result, honoring the lookahead slot.
func (s *rtreeSource) take() (nnHit, bool) {
	if s.hasLook {
		s.hasLook = false
		return s.look, true
	}
	idx, d, ok := s.it.Next()
	if !ok {
		return nnHit{}, false
	}
	ord := ordinalOf(s.orig, idx)
	if s.cols != nil {
		ord = s.cols.Ordinal(idx)
	}
	return nnHit{idx: idx, ord: ord, dist: d}, true
}

// NextKeyed implements KeyedSource.
func (s *rtreeSource) NextKeyed() (Tuple, float64, int, error) {
	if len(s.batch) == 0 {
		first, ok := s.take()
		if !ok {
			return Tuple{}, 0, 0, ErrExhausted
		}
		s.batch = append(s.batch[:0], first)
		for {
			h, ok := s.take()
			if !ok {
				break
			}
			if h.dist != first.dist {
				s.look, s.hasLook = h, true
				break
			}
			s.batch = append(s.batch, h)
		}
		// Order the tie run by parent ordinal. Ordinals are unique, so an
		// insertion sort gives the canonical order without the reflection
		// swapper sort.Slice allocates; tie runs are short in practice.
		for i := 1; i < len(s.batch); i++ {
			for j := i; j > 0 && s.batch[j].ord < s.batch[j-1].ord; j-- {
				s.batch[j], s.batch[j-1] = s.batch[j-1], s.batch[j]
			}
		}
	}
	h := s.batch[0]
	s.batch = s.batch[1:]
	if s.cols != nil {
		return s.cols.Tuple(h.idx), h.dist, h.ord, nil
	}
	return s.rel.tuples[h.idx], h.dist, h.ord, nil
}

func (s *rtreeSource) Kind() AccessKind    { return DistanceAccess }
func (s *rtreeSource) Relation() *Relation { return s.rel }

// FaultySource wraps a source and fails with Err after FailAfter successful
// reads, modelling a remote service outage. Used for failure-injection
// tests of the engine's error propagation.
type FaultySource struct {
	Inner     Source
	FailAfter int
	Err       error
	reads     int
}

// Next implements Source.
func (f *FaultySource) Next() (Tuple, error) {
	if f.reads >= f.FailAfter {
		if f.Err != nil {
			return Tuple{}, f.Err
		}
		return Tuple{}, errors.New("relation: injected fault")
	}
	t, err := f.Inner.Next()
	if err == nil {
		f.reads++
	}
	return t, err
}

// Kind implements Source.
func (f *FaultySource) Kind() AccessKind { return f.Inner.Kind() }

// Relation implements Source.
func (f *FaultySource) Relation() *Relation { return f.Inner.Relation() }

// CountingSource wraps a source and counts successful reads; the engine's
// own depth accounting is cross-checked against it in tests.
type CountingSource struct {
	Inner Source
	Reads int
}

// Next implements Source.
func (c *CountingSource) Next() (Tuple, error) {
	t, err := c.Inner.Next()
	if err == nil {
		c.Reads++
	}
	return t, err
}

// Kind implements Source.
func (c *CountingSource) Kind() AccessKind { return c.Inner.Kind() }

// Relation implements Source.
func (c *CountingSource) Relation() *Relation { return c.Inner.Relation() }
