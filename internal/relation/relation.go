// Package relation defines the tuple and relation model of proximity rank
// join and the sequential access paths over them: distance-based access
// (tuples in increasing distance from a query vector) and score-based
// access (tuples in decreasing score), per Definition 2.1 of the paper.
//
// Sources deliberately hide the relation contents behind a sequential
// Next() so that algorithms can only learn what they have paid for — the
// sumDepths cost model of the paper measures exactly these calls.
package relation

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rtree"
	"repro/internal/vec"
)

// Tuple is one object of a relation: named identity, a quality score, and
// a feature vector in R^d.
type Tuple struct {
	ID    string
	Score float64
	Vec   vec.Vector
	Attrs map[string]string
}

// Relation is an immutable collection of tuples sharing a dimensionality
// and a known maximum possible score σ_max (the paper's σ_j^max, needed by
// the bounding schemes).
type Relation struct {
	Name     string
	MaxScore float64
	tuples   []Tuple
	dim      int
}

// ErrExhausted is returned by Source.Next when the relation has been read
// completely.
var ErrExhausted = errors.New("relation: source exhausted")

// New validates tuples and builds a relation. Every tuple must share one
// dimensionality, have a finite positive score not exceeding maxScore, and
// a finite feature vector.
func New(name string, maxScore float64, tuples []Tuple) (*Relation, error) {
	if maxScore <= 0 || math.IsInf(maxScore, 0) || math.IsNaN(maxScore) {
		return nil, fmt.Errorf("relation %q: max score %v must be finite and positive", name, maxScore)
	}
	if len(tuples) == 0 {
		return nil, fmt.Errorf("relation %q: no tuples", name)
	}
	dim := tuples[0].Vec.Dim()
	if dim == 0 {
		return nil, fmt.Errorf("relation %q: zero-dimensional tuples", name)
	}
	for i, t := range tuples {
		if t.Vec.Dim() != dim {
			return nil, fmt.Errorf("relation %q: tuple %d has dim %d, want %d", name, i, t.Vec.Dim(), dim)
		}
		if !t.Vec.IsFinite() {
			return nil, fmt.Errorf("relation %q: tuple %d has a non-finite vector", name, i)
		}
		if math.IsNaN(t.Score) || t.Score <= 0 || t.Score > maxScore {
			return nil, fmt.Errorf("relation %q: tuple %d score %v outside (0, %v]", name, i, t.Score, maxScore)
		}
	}
	own := make([]Tuple, len(tuples))
	copy(own, tuples)
	return &Relation{Name: name, MaxScore: maxScore, tuples: own, dim: dim}, nil
}

// MustNew is New that panics on error, for tests and literals.
func MustNew(name string, maxScore float64, tuples []Tuple) *Relation {
	r, err := New(name, maxScore, tuples)
	if err != nil {
		panic(err)
	}
	return r
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Dim returns the feature-space dimensionality.
func (r *Relation) Dim() int { return r.dim }

// At returns the i-th tuple in storage order (not access order).
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Tuples returns a copy of the tuple slice.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	return out
}

// AccessKind selects the sequential ordering a source provides.
type AccessKind int

const (
	// DistanceAccess streams tuples by increasing distance from the query.
	DistanceAccess AccessKind = iota
	// ScoreAccess streams tuples by decreasing score.
	ScoreAccess
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case DistanceAccess:
		return "distance"
	case ScoreAccess:
		return "score"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// Source is a sequential reader over a relation in a fixed access order.
type Source interface {
	// Next returns the next tuple, or ErrExhausted when done. Other errors
	// model transient access failures (see FaultySource).
	Next() (Tuple, error)
	// Kind reports the access ordering this source guarantees.
	Kind() AccessKind
	// Relation returns the underlying relation (for σ_max and metadata).
	Relation() *Relation
}

// sliceSource streams a pre-ordered copy of the tuples.
type sliceSource struct {
	rel  *Relation
	kind AccessKind
	ord  []Tuple
	pos  int
}

func (s *sliceSource) Next() (Tuple, error) {
	if s.pos >= len(s.ord) {
		return Tuple{}, ErrExhausted
	}
	t := s.ord[s.pos]
	s.pos++
	return t, nil
}

func (s *sliceSource) Kind() AccessKind    { return s.kind }
func (s *sliceSource) Relation() *Relation { return s.rel }

// NewDistanceSource returns a source that yields tuples of r sorted by
// increasing metric distance from q (ties broken by storage index for
// determinism). The whole order is computed up front; for large relations
// prefer NewRTreeDistanceSource, which sorts incrementally.
func NewDistanceSource(r *Relation, q vec.Vector, metric vec.Metric) (Source, error) {
	if q.Dim() != r.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", r.Name, q.Dim(), r.dim)
	}
	if metric == nil {
		metric = vec.Euclidean{}
	}
	type keyed struct {
		t Tuple
		d float64
		i int
	}
	ks := make([]keyed, len(r.tuples))
	for i, t := range r.tuples {
		ks[i] = keyed{t: t, d: metric.Distance(t.Vec, q), i: i}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		if ks[a].d != ks[b].d {
			return ks[a].d < ks[b].d
		}
		return ks[a].i < ks[b].i
	})
	ord := make([]Tuple, len(ks))
	for i, k := range ks {
		ord[i] = k.t
	}
	return &sliceSource{rel: r, kind: DistanceAccess, ord: ord}, nil
}

// NewScoreSource returns a source that yields tuples of r sorted by
// decreasing score (ties broken by storage index).
func NewScoreSource(r *Relation) Source {
	type keyed struct {
		t Tuple
		i int
	}
	ks := make([]keyed, len(r.tuples))
	for i, t := range r.tuples {
		ks[i] = keyed{t: t, i: i}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		if ks[a].t.Score != ks[b].t.Score {
			return ks[a].t.Score > ks[b].t.Score
		}
		return ks[a].i < ks[b].i
	})
	ord := make([]Tuple, len(ks))
	for i, k := range ks {
		ord[i] = k.t
	}
	return &sliceSource{rel: r, kind: ScoreAccess, ord: ord}
}

// ScoreIndex is the score-sorted order of a relation, computed once and
// shared read-only across queries: each Source call opens an independent
// cursor over the same slice, so concurrent score-access queries skip the
// per-query sort.
type ScoreIndex struct {
	rel *Relation
	ord []Tuple
}

// NewScoreIndex sorts r by decreasing score (ties by storage index) once.
func NewScoreIndex(r *Relation) *ScoreIndex {
	src := NewScoreSource(r).(*sliceSource)
	return &ScoreIndex{rel: r, ord: src.ord}
}

// Relation returns the indexed relation.
func (ix *ScoreIndex) Relation() *Relation { return ix.rel }

// Source opens a score-access source over the precomputed order. Safe to
// call from multiple goroutines.
func (ix *ScoreIndex) Source() Source {
	return &sliceSource{rel: ix.rel, kind: ScoreAccess, ord: ix.ord}
}

// rtreeSource serves distance-based access through an R-tree's incremental
// nearest-neighbor traversal, so no global sort is ever materialized.
type rtreeSource struct {
	rel *Relation
	it  *rtree.NNIterator[int]
}

// RTreeIndex is a bulk-loaded R-tree over a relation's feature vectors,
// built once and shared read-only across queries: each Source call opens
// an independent incremental nearest-neighbor traversal over the same
// tree, so concurrent queries pay only the O(1) iterator setup instead of
// a per-query bulk load. The tree is never mutated after construction,
// which makes Source safe for concurrent use.
type RTreeIndex struct {
	rel  *Relation
	tree *rtree.Tree[int]
}

// NewRTreeIndex bulk-loads r's vectors into an R-tree.
func NewRTreeIndex(r *Relation) *RTreeIndex {
	pts := make([]vec.Vector, len(r.tuples))
	vals := make([]int, len(r.tuples))
	for i, t := range r.tuples {
		pts[i] = t.Vec
		vals[i] = i
	}
	return &RTreeIndex{rel: r, tree: rtree.BulkLoad(r.dim, pts, vals)}
}

// Relation returns the indexed relation.
func (ix *RTreeIndex) Relation() *Relation { return ix.rel }

// Source opens a distance-access source that streams tuples by increasing
// Euclidean distance from q. Safe to call from multiple goroutines.
func (ix *RTreeIndex) Source(q vec.Vector) (Source, error) {
	if q.Dim() != ix.rel.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", ix.rel.Name, q.Dim(), ix.rel.dim)
	}
	return &rtreeSource{rel: ix.rel, it: ix.tree.NearestNeighbors(q)}, nil
}

// NewRTreeDistanceSource bulk-loads r into an R-tree and streams tuples by
// increasing Euclidean distance from q via incremental NN traversal. For
// repeated queries over one relation, build a shared NewRTreeIndex once
// and call its Source method instead.
func NewRTreeDistanceSource(r *Relation, q vec.Vector) (Source, error) {
	if q.Dim() != r.dim {
		return nil, fmt.Errorf("relation %q: query dim %d, want %d", r.Name, q.Dim(), r.dim)
	}
	return NewRTreeIndex(r).Source(q)
}

func (s *rtreeSource) Next() (Tuple, error) {
	idx, _, ok := s.it.Next()
	if !ok {
		return Tuple{}, ErrExhausted
	}
	return s.rel.tuples[idx], nil
}

func (s *rtreeSource) Kind() AccessKind    { return DistanceAccess }
func (s *rtreeSource) Relation() *Relation { return s.rel }

// FaultySource wraps a source and fails with Err after FailAfter successful
// reads, modelling a remote service outage. Used for failure-injection
// tests of the engine's error propagation.
type FaultySource struct {
	Inner     Source
	FailAfter int
	Err       error
	reads     int
}

// Next implements Source.
func (f *FaultySource) Next() (Tuple, error) {
	if f.reads >= f.FailAfter {
		if f.Err != nil {
			return Tuple{}, f.Err
		}
		return Tuple{}, errors.New("relation: injected fault")
	}
	t, err := f.Inner.Next()
	if err == nil {
		f.reads++
	}
	return t, err
}

// Kind implements Source.
func (f *FaultySource) Kind() AccessKind { return f.Inner.Kind() }

// Relation implements Source.
func (f *FaultySource) Relation() *Relation { return f.Inner.Relation() }

// CountingSource wraps a source and counts successful reads; the engine's
// own depth accounting is cross-checked against it in tests.
type CountingSource struct {
	Inner Source
	Reads int
}

// Next implements Source.
func (c *CountingSource) Next() (Tuple, error) {
	t, err := c.Inner.Next()
	if err == nil {
		c.Reads++
	}
	return t, err
}

// Kind implements Source.
func (c *CountingSource) Kind() AccessKind { return c.Inner.Kind() }

// Relation implements Source.
func (c *CountingSource) Relation() *Relation { return c.Inner.Relation() }
