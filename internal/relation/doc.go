// Package relation defines the tuple and relation model of proximity rank
// join and the sequential access paths over them: distance-based access
// (tuples in increasing distance from a query vector) and score-based
// access (tuples in decreasing score), per Definition 2.1 of the paper.
//
// Sources deliberately hide the relation contents behind a sequential
// Next() so that algorithms can only learn what they have paid for — the
// sumDepths cost model of the paper measures exactly these calls. Every
// access path yields one canonical tuple order per (access kind, query):
// ties are broken deterministically, so any two sources over the same
// data — plain, index-backed, or a k-way merge of shard streams — are
// byte-identical. That invariant is what lets the serving layer shard
// relations (Partition, Sharded, MergedSource) and cache answers without
// the storage layout ever changing a result.
//
// The pieces:
//
//   - Tuple, Relation: the data model; New validates scores against the
//     relation's σ_max and fixes the canonical base order.
//   - Sources: sequential access with per-call cost, for both access
//     kinds, optionally R-tree-accelerated (distance) or sorted-index
//     (score) via the shared RTreeIndex / ScoreIndex.
//   - Partition, Sharded, MergedSource: hash or grid partitioning,
//     per-shard index builds, and the ordinal-aware merge that restores
//     the canonical order across shard streams.
//   - CSV reading for data import (ReadCSV and friends).
package relation
