package relation

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the CSV reader and
// that anything it accepts survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,score,x1,x2\na,0.5,1,2\nb,0.9,3,4\n")
	f.Add("id,score,x1\nh,1.0,0\n")
	f.Add("id,score,x1,x2,city\nh,0.8,1,2,Boston\n")
	f.Add("id,score\n")
	f.Add("")
	f.Add("id,score,x1\nh,NaN,1\n")
	f.Add("id,score,x1\nh,1e309,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		rel, err := ReadCSV(strings.NewReader(input), "fuzz", 0)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var buf strings.Builder
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("accepted relation failed to serialize: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()), "fuzz2", rel.MaxScore)
		if err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q\ncsv: %q", err, input, buf.String())
		}
		if back.Len() != rel.Len() || back.Dim() != rel.Dim() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.Len(), back.Dim(), rel.Len(), rel.Dim())
		}
	})
}
