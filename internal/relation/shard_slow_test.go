//go:build slow

package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// TestMergedSourceProperty is the heavyweight randomized form of the
// ordering invariant: across random relations (varying size, dimension,
// tie density), shard counts, strategies, and access kinds, a merged
// stream of random shards must emit exactly the sequence of the
// unsharded source. Gated behind -tags=slow; the always-on tests cover
// the same invariant on fixed seeds.
func TestMergedSourceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		size := 1 + r.Intn(300)
		dim := 1 + r.Intn(4)
		gridVals := 2 + r.Intn(8) // coarse grids force distance ties
		scoreVals := 1 + r.Intn(6)
		tuples := make([]Tuple, size)
		for i := range tuples {
			v := vec.New(dim)
			for c := range v {
				v[c] = float64(r.Intn(gridVals))
			}
			tuples[i] = Tuple{
				ID:    fmt.Sprintf("r%d-%d", trial, i),
				Score: 0.1 + 0.1*float64(r.Intn(scoreVals)),
				Vec:   v,
			}
		}
		rel, err := New(fmt.Sprintf("prop%d", trial), 1.0, tuples)
		if err != nil {
			t.Fatal(err)
		}
		shards := 1 + r.Intn(9)
		strategy := PartitionStrategy(r.Intn(2))
		s, err := Partition(rel, shards, strategy)
		if err != nil {
			t.Fatal(err)
		}
		q := vec.New(dim)
		for c := range q {
			q[c] = r.NormFloat64() * float64(gridVals)
		}
		label := fmt.Sprintf("trial %d (size=%d dim=%d shards=%d/%d %v)",
			trial, size, dim, s.NumShards(), shards, strategy)

		wantScore := drain(t, NewScoreSource(rel))
		gotScore, err := s.ScoreSource()
		if err != nil {
			t.Fatal(err)
		}
		sameSequence(t, label+" score", drain(t, gotScore), wantScore)

		wantSorted, err := NewDistanceSource(rel, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotSorted, err := OpenSource(s, DistanceAccess, q, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		sameSequence(t, label+" distance-sorted", drain(t, gotSorted), drain(t, wantSorted))

		wantTree, err := NewRTreeDistanceSource(rel, q)
		if err != nil {
			t.Fatal(err)
		}
		gotTree, err := s.DistanceSource(q)
		if err != nil {
			t.Fatal(err)
		}
		sameSequence(t, label+" distance-rtree", drain(t, gotTree), drain(t, wantTree))
	}
}
