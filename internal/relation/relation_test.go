package relation

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func tup(id string, score float64, xs ...float64) Tuple {
	return Tuple{ID: id, Score: score, Vec: vec.Of(xs...)}
}

func testRelation(t *testing.T) *Relation {
	t.Helper()
	return MustNew("r", 1.0, []Tuple{
		tup("a", 0.5, 0, -0.5),
		tup("b", 1.0, 0, 1),
		tup("c", 0.9, 2, 2),
		tup("d", 0.1, -1, 0),
	})
}

func TestNewValidation(t *testing.T) {
	good := []Tuple{tup("a", 0.5, 1, 2)}
	cases := []struct {
		name     string
		maxScore float64
		tuples   []Tuple
	}{
		{"bad max", 0, good},
		{"nan max", math.NaN(), good},
		{"empty", 1, nil},
		{"dim mismatch", 1, []Tuple{tup("a", 0.5, 1), tup("b", 0.5, 1, 2)}},
		{"zero dim", 1, []Tuple{{ID: "a", Score: 0.5, Vec: vec.New(0)}}},
		{"score over max", 1, []Tuple{tup("a", 1.5, 1)}},
		{"zero score", 1, []Tuple{tup("a", 0, 1)}},
		{"nan vec", 1, []Tuple{tup("a", 0.5, math.NaN())}},
	}
	for _, c := range cases {
		if _, err := New("r", c.maxScore, c.tuples); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := New("r", 1, good); err != nil {
		t.Errorf("valid relation rejected: %v", err)
	}
}

func TestRelationAccessors(t *testing.T) {
	r := testRelation(t)
	if r.Len() != 4 || r.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", r.Len(), r.Dim())
	}
	if r.At(1).ID != "b" {
		t.Fatalf("At(1) = %v", r.At(1))
	}
	ts := r.Tuples()
	ts[0].ID = "mutated"
	if r.At(0).ID != "a" {
		t.Fatal("Tuples() exposes internal storage")
	}
}

func drain(t *testing.T, s Source) []Tuple {
	t.Helper()
	var out []Tuple
	for {
		tp, err := s.Next()
		if errors.Is(err, ErrExhausted) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, tp)
	}
}

func TestDistanceSourceOrder(t *testing.T) {
	r := testRelation(t)
	s, err := NewDistanceSource(r, vec.Of(0, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != DistanceAccess || s.Relation() != r {
		t.Fatal("metadata wrong")
	}
	got := drain(t, s)
	wantIDs := []string{"a", "b", "d", "c"} // dist 0.5, 1, 1, 2√2 (b before d: index tie? b=1, d=1 → index order)
	for i, id := range wantIDs {
		if got[i].ID != id {
			t.Fatalf("order %v", got)
		}
	}
}

func TestScoreSourceOrder(t *testing.T) {
	r := testRelation(t)
	s := NewScoreSource(r)
	if s.Kind() != ScoreAccess {
		t.Fatal("kind wrong")
	}
	got := drain(t, s)
	want := []string{"b", "c", "a", "d"}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("order %v", got)
		}
	}
}

func TestDistanceSourceDimMismatch(t *testing.T) {
	r := testRelation(t)
	if _, err := NewDistanceSource(r, vec.Of(0), nil); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := NewRTreeDistanceSource(r, vec.Of(0)); err == nil {
		t.Fatal("rtree dim mismatch accepted")
	}
}

// Property: the R-tree-backed source yields the same distance sequence as
// the sorted source (IDs may differ on exact ties, distances must match).
func TestQuickRTreeSourceMatchesSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(3)
		n := 1 + r.Intn(80)
		tuples := make([]Tuple, n)
		for i := range tuples {
			v := vec.New(d)
			for j := range v {
				v[j] = r.NormFloat64() * 4
			}
			tuples[i] = Tuple{ID: string(rune('a' + i%26)), Score: 0.01 + r.Float64()*0.99, Vec: v}
		}
		rel, err := New("r", 1, tuples)
		if err != nil {
			return false
		}
		q := vec.New(d)
		for j := range q {
			q[j] = r.NormFloat64()
		}
		s1, err1 := NewDistanceSource(rel, q, nil)
		s2, err2 := NewRTreeDistanceSource(rel, q)
		if err1 != nil || err2 != nil {
			return false
		}
		for {
			t1, e1 := s1.Next()
			t2, e2 := s2.Next()
			if errors.Is(e1, ErrExhausted) || errors.Is(e2, ErrExhausted) {
				return errors.Is(e1, ErrExhausted) && errors.Is(e2, ErrExhausted)
			}
			if e1 != nil || e2 != nil {
				return false
			}
			if math.Abs(t1.Vec.Dist(q)-t2.Vec.Dist(q)) > 1e-9 {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFaultySource(t *testing.T) {
	r := testRelation(t)
	wantErr := errors.New("boom")
	s := &FaultySource{Inner: NewScoreSource(r), FailAfter: 2, Err: wantErr}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Default error when none specified.
	s2 := &FaultySource{Inner: NewScoreSource(r), FailAfter: 0}
	if _, err := s2.Next(); err == nil {
		t.Fatal("no error from exhausted fault budget")
	}
	if s.Kind() != ScoreAccess || s.Relation() != r {
		t.Fatal("faulty source metadata wrong")
	}
}

func TestCountingSource(t *testing.T) {
	r := testRelation(t)
	s := &CountingSource{Inner: NewScoreSource(r)}
	drainCount := 0
	for {
		if _, err := s.Next(); err != nil {
			break
		}
		drainCount++
	}
	if s.Reads != drainCount || s.Reads != r.Len() {
		t.Fatalf("Reads = %d, drained %d", s.Reads, drainCount)
	}
	if s.Kind() != ScoreAccess || s.Relation() != r {
		t.Fatal("counting source metadata wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := testRelation(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "r2", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() || back.Dim() != r.Dim() {
		t.Fatalf("round trip shape: %d/%d", back.Len(), back.Dim())
	}
	for i := 0; i < r.Len(); i++ {
		a, b := r.At(i), back.At(i)
		if a.ID != b.ID || a.Score != b.Score || !a.Vec.Equal(b.Vec) {
			t.Fatalf("tuple %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestCSVAttrsAndInferredMax(t *testing.T) {
	in := "id,score,x1,x2,city\nh1,0.8,1,2,Boston\nh2,0.4,3,4,Dallas\n"
	r, err := ReadCSV(strings.NewReader(in), "hotels", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxScore != 0.8 {
		t.Fatalf("inferred max = %v", r.MaxScore)
	}
	if r.At(0).Attrs["city"] != "Boston" {
		t.Fatalf("attrs = %v", r.At(0).Attrs)
	}
}

func TestCSVErrors(t *testing.T) {
	bad := []string{
		"",                           // no header
		"foo,bar\n",                  // wrong header
		"id,score\nh,0.5\n",          // no vector columns
		"id,score,x1\nh,abc,1\n",     // bad score
		"id,score,x1\nh,0.5,zzz\n",   // bad component
		"id,score,x1\nh,0.5,1,9,9\n", // field count mismatch
	}
	for i, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s), "r", 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCSVFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/rel.csv"
	r := testRelation(t)
	if err := SaveCSVFile(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile(path, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("Len = %d", back.Len())
	}
	if _, err := LoadCSVFile(dir+"/missing.csv", "", 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestAccessKindString(t *testing.T) {
	if DistanceAccess.String() != "distance" || ScoreAccess.String() != "score" {
		t.Fatal("AccessKind strings wrong")
	}
	if AccessKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}
