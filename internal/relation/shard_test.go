package relation

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/vec"
)

// tieRelation builds a relation engineered to collide: scores drawn from
// a handful of discrete values and vectors snapped to a coarse integer
// grid (with occasional exact duplicates), so score ties and exact
// distance ties both occur and the canonical ordinal tie-break is
// actually exercised.
func tieRelation(t testing.TB, seed int64, size, dim int) *Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tuples := make([]Tuple, size)
	for i := range tuples {
		v := vec.New(dim)
		for c := range v {
			v[c] = float64(r.Intn(5))
		}
		if i > 0 && r.Intn(4) == 0 {
			v = tuples[r.Intn(i)].Vec // exact duplicate location
		}
		tuples[i] = Tuple{
			ID:    fmt.Sprintf("t%03d", i),
			Score: 0.2 + 0.2*float64(r.Intn(4)),
			Vec:   v,
		}
	}
	rel, err := New("tied", 1.0, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// sameSequence asserts two drains are byte-identical: same tuples, same
// scores, same order.
func sameSequence(t *testing.T, label string, got, want []Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tuples, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("%s: rank %d is %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestPartitionCoversEveryTuple: shards are a true partition — disjoint,
// complete, and size-consistent — under both strategies.
func TestPartitionCoversEveryTuple(t *testing.T) {
	rel := tieRelation(t, 11, 97, 2)
	for _, strategy := range []PartitionStrategy{HashPartition, GridPartition} {
		s, err := Partition(rel, 5, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumShards() < 2 {
			t.Fatalf("%v: %d shards from 97 tuples, want several", strategy, s.NumShards())
		}
		seen := make(map[string]int)
		total := 0
		for i := 0; i < s.NumShards(); i++ {
			sh := s.ShardRelation(i)
			total += sh.Len()
			for j := 0; j < sh.Len(); j++ {
				seen[sh.At(j).ID]++
			}
		}
		if total != rel.Len() {
			t.Fatalf("%v: shard sizes sum to %d, want %d (sizes %v)", strategy, total, rel.Len(), s.ShardSizes())
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("%v: tuple %s appears in %d shards", strategy, id, n)
			}
		}
	}
}

// TestPartitionDegenerateCounts: n = 1 reuses the relation itself, and n
// beyond the tuple count collapses to at most Len() non-empty shards.
func TestPartitionDegenerateCounts(t *testing.T) {
	rel := tieRelation(t, 13, 6, 2)
	one, err := Partition(rel, 1, GridPartition)
	if err != nil {
		t.Fatal(err)
	}
	if one.NumShards() != 1 || one.ShardRelation(0) != rel {
		t.Fatalf("single-shard partition did not reuse the relation")
	}
	many, err := Partition(rel, 50, GridPartition)
	if err != nil {
		t.Fatal(err)
	}
	if got := many.NumShards(); got > rel.Len() || got < 1 {
		t.Fatalf("50-way partition of 6 tuples yielded %d shards", got)
	}
	if _, err := Partition(rel, 0, HashPartition); err == nil {
		t.Fatal("Partition accepted shard count 0")
	}
	if _, err := Partition(nil, 2, HashPartition); err == nil {
		t.Fatal("Partition accepted a nil relation")
	}
}

// TestMergedSourceMatchesUnsharded is the ordering-invariant acceptance
// test at the relation layer: for both access kinds, both strategies,
// and all three distance backends, a merged stream over ≥4 shards must
// be byte-identical to the unsharded stream — ties included.
func TestMergedSourceMatchesUnsharded(t *testing.T) {
	rel := tieRelation(t, 17, 120, 2)
	q := vec.Of(1.3, 2.1)
	for _, strategy := range []PartitionStrategy{HashPartition, GridPartition} {
		s, err := Partition(rel, 4, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumShards() < 4 {
			t.Fatalf("%v: got %d shards, want 4", strategy, s.NumShards())
		}

		wantScore := drain(t, NewScoreSource(rel))
		gotSrc, err := s.ScoreSource()
		if err != nil {
			t.Fatal(err)
		}
		if gotSrc.Kind() != ScoreAccess || gotSrc.Relation() != rel {
			t.Fatalf("%v: merged score source kind/relation wrong", strategy)
		}
		sameSequence(t, strategy.String()+"/score", drain(t, gotSrc), wantScore)

		wantSorted, err := NewDistanceSource(rel, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		mergedSorted, err := OpenSource(s, DistanceAccess, q, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		sameSequence(t, strategy.String()+"/distance-sorted", drain(t, mergedSorted), drain(t, wantSorted))

		wantRTree, err := NewRTreeIndex(rel).Source(q)
		if err != nil {
			t.Fatal(err)
		}
		mergedRTree, err := s.DistanceSource(q)
		if err != nil {
			t.Fatal(err)
		}
		if mergedRTree.Kind() != DistanceAccess || mergedRTree.Relation() != rel {
			t.Fatalf("%v: merged distance source kind/relation wrong", strategy)
		}
		sameSequence(t, strategy.String()+"/distance-rtree", drain(t, mergedRTree), drain(t, wantRTree))
	}
}

// TestCanonicalDistanceOrderAcrossBackends: with ordinal tie-batching,
// the R-tree traversal and the full sort agree on one canonical
// sequence even in the presence of exact distance ties.
func TestCanonicalDistanceOrderAcrossBackends(t *testing.T) {
	rel := tieRelation(t, 23, 80, 2)
	q := vec.Of(2, 2)
	sorted, err := NewDistanceSource(rel, q, vec.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	viaTree, err := NewRTreeDistanceSource(rel, q)
	if err != nil {
		t.Fatal(err)
	}
	sameSequence(t, "rtree vs sort", drain(t, viaTree), drain(t, sorted))
}

// TestMergedSourceLazyPulls: a merged stream that is only partially
// consumed must not read past one head per shard beyond what it emitted.
func TestMergedSourceLazyPulls(t *testing.T) {
	rel := tieRelation(t, 29, 60, 2)
	s, err := Partition(rel, 4, HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumShards()
	counted := make([]*CountingSource, n)
	sources := make([]Source, n)
	for i := 0; i < n; i++ {
		src, err := s.ShardSource(i, ScoreAccess, nil, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		// CountingSource is not a shard stream, so count beneath the merge
		// by re-wrapping: pull through the counting layer via a tiny local
		// keyed adapter.
		cs := &CountingSource{Inner: src}
		counted[i] = cs
		sources[i] = countingKeyed{cs, src.(KeyedSource)}
	}
	merged, err := s.Merge(sources)
	if err != nil {
		t.Fatal(err)
	}
	const prefix = 10
	for i := 0; i < prefix; i++ {
		if _, err := merged.Next(); err != nil {
			t.Fatal(err)
		}
	}
	reads := 0
	for _, c := range counted {
		reads += c.Reads
	}
	if max := prefix + n; reads > max {
		t.Fatalf("merged prefix of %d pulled %d underlying tuples, want at most %d", prefix, reads, max)
	}
}

// countingKeyed threads NextKeyed through a CountingSource so merge-layer
// laziness is observable in tests.
type countingKeyed struct {
	*CountingSource
	keyed KeyedSource
}

func (c countingKeyed) NextKeyed() (Tuple, float64, int, error) {
	t, key, ord, err := c.keyed.NextKeyed()
	if err == nil {
		c.CountingSource.Reads++
	}
	return t, key, ord, err
}

// TestMergeRejectsForeignSources: sources that are not this package's
// shard streams, wrong counts, and mixed kinds are all refused.
func TestMergeRejectsForeignSources(t *testing.T) {
	rel := tieRelation(t, 31, 40, 2)
	s, err := Partition(rel, 3, HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumShards()
	good := make([]Source, n)
	for i := 0; i < n; i++ {
		if good[i], err = s.ShardSource(i, ScoreAccess, nil, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Merge(good[:n-1]); err == nil {
		t.Fatal("Merge accepted a short source list")
	}
	foreign := append([]Source{}, good...)
	foreign[0] = &CountingSource{Inner: good[0]}
	if _, err := s.Merge(foreign); err == nil {
		t.Fatal("Merge accepted a non-shard source")
	}
	if n >= 2 {
		mixed := append([]Source{}, good...)
		if mixed[1], err = s.ShardSource(1, DistanceAccess, vec.Of(0, 0), nil, true); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Merge(mixed); err == nil {
			t.Fatal("Merge accepted mixed access kinds")
		}
	}
}

// TestParallelShardBuildsAndQueries is the -race test of the sharded
// path: many sharded relations built concurrently (each of which builds
// its own shard indexes in parallel), then concurrently queried while
// sharing the immutable shard indexes.
func TestParallelShardBuildsAndQueries(t *testing.T) {
	rel := tieRelation(t, 37, 150, 3)
	const builders = 6
	built := make([]*Sharded, builders)
	var wg sync.WaitGroup
	for b := 0; b < builders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			s, err := Partition(rel, 2+b, PartitionStrategy(b%2))
			if err != nil {
				t.Error(err)
				return
			}
			built[b] = s
		}(b)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	want := drain(t, NewScoreSource(rel))
	q := vec.Of(1, 1, 1)
	wantDist, err := NewRTreeDistanceSource(rel, q)
	if err != nil {
		t.Fatal(err)
	}
	wantDistSeq := drain(t, wantDist)
	for b, s := range built {
		wg.Add(2)
		go func(b int, s *Sharded) {
			defer wg.Done()
			src, err := s.ScoreSource()
			if err != nil {
				t.Error(err)
				return
			}
			sameSequence(t, fmt.Sprintf("builder %d score", b), drain(t, src), want)
		}(b, s)
		go func(b int, s *Sharded) {
			defer wg.Done()
			src, err := s.DistanceSource(q)
			if err != nil {
				t.Error(err)
				return
			}
			sameSequence(t, fmt.Sprintf("builder %d distance", b), drain(t, src), wantDistSeq)
		}(b, s)
	}
	wg.Wait()
}

// TestPartitionStrategyParse round-trips the strategy names.
func TestPartitionStrategyParse(t *testing.T) {
	for _, s := range []PartitionStrategy{HashPartition, GridPartition} {
		got, err := ParsePartitionStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParsePartitionStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if got, err := ParsePartitionStrategy(""); err != nil || got != HashPartition {
		t.Fatalf("empty strategy = %v, %v; want hash", got, err)
	}
	if _, err := ParsePartitionStrategy("mod"); err == nil {
		t.Fatal("ParsePartitionStrategy accepted an unknown name")
	}
}
