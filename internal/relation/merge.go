package relation

import (
	"errors"
)

// MergedSource k-way-merges N ordered shard streams into one Source that
// preserves the access-kind ordering contract: a small heap holds one
// head per live shard, keyed by (sort key, parent ordinal). Because each
// shard stream is itself (key, ordinal)-sorted and ordinals are unique
// across shards, the merged sequence is the unique canonical order of the
// parent relation — byte-identical to the unsharded stream.
//
// Pulling is lazy: nothing is read at construction, the heap is primed
// with one tuple per shard on the first Next, and a shard is re-pulled
// only after its head has been emitted. Draining a prefix of the merged
// stream therefore costs at most len(prefix)+N underlying reads.
//
// The heap is inlined and preallocated to the shard count, and the
// steady-state emit path is allocation-free: the root head is emitted by
// peek, then overwritten in place by its shard's next tuple and restored
// with a single sift-down — one fixup per tuple instead of the pop+push
// pair of a generic heap, and no re-boxing of the head struct.
type MergedSource struct {
	rel    *Relation
	kind   AccessKind
	inputs []keyedSource
	heads  []mergeHead // binary min-heap by (key, ord)
	primed int         // inputs [0,primed) have contributed their first head
	// pending marks that heads[0] was emitted by the previous Next and must
	// be refilled (or retired) before the next emit. Kept set across a
	// failed refill so a retry re-pulls the same shard without skipping or
	// duplicating tuples.
	pending bool
}

// mergeHead is one shard's current front tuple.
type mergeHead struct {
	src keyedSource
	t   Tuple
	key float64
	ord int
}

// newMergedSource builds the merged stream over per-shard sources that
// all share one access kind.
func newMergedSource(parent *Relation, kind AccessKind, inputs []keyedSource) *MergedSource {
	return &MergedSource{
		rel:    parent,
		kind:   kind,
		inputs: inputs,
		heads:  make([]mergeHead, 0, len(inputs)),
	}
}

func (m *MergedSource) less(a, b *mergeHead) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.ord < b.ord
}

func (m *MergedSource) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(&m.heads[i], &m.heads[parent]) {
			return
		}
		m.heads[i], m.heads[parent] = m.heads[parent], m.heads[i]
		i = parent
	}
}

func (m *MergedSource) siftDown(i int) {
	n := len(m.heads)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && m.less(&m.heads[right], &m.heads[left]) {
			least = right
		}
		if !m.less(&m.heads[least], &m.heads[i]) {
			return
		}
		m.heads[i], m.heads[least] = m.heads[least], m.heads[i]
		i = least
	}
}

// prime reads the first tuple of src into the heap; an already-exhausted
// shard is retired silently.
func (m *MergedSource) prime(src keyedSource) error {
	t, key, ord, err := src.nextKeyed()
	if errors.Is(err, ErrExhausted) {
		return nil
	}
	if err != nil {
		return err
	}
	m.heads = append(m.heads, mergeHead{src: src, t: t, key: key, ord: ord})
	m.siftUp(len(m.heads) - 1)
	return nil
}

// refillRoot replaces the emitted root head with its shard's next tuple in
// place (or retires the shard on exhaustion) and restores heap order with
// one sift-down.
func (m *MergedSource) refillRoot() error {
	t, key, ord, err := m.heads[0].src.nextKeyed()
	if errors.Is(err, ErrExhausted) {
		last := len(m.heads) - 1
		m.heads[0] = m.heads[last]
		m.heads[last] = mergeHead{} // release the retired shard's source
		m.heads = m.heads[:last]
		m.siftDown(0)
		m.pending = false
		return nil
	}
	if err != nil {
		return err // pending stays set: a retry refills the same shard
	}
	h := &m.heads[0]
	h.t, h.key, h.ord = t, key, ord
	m.siftDown(0)
	m.pending = false
	return nil
}

// Next implements Source. Access errors from a shard propagate as-is and
// leave the merge consistent: a retry re-pulls the failed shard without
// skipping or duplicating tuples.
func (m *MergedSource) Next() (Tuple, error) {
	for m.primed < len(m.inputs) {
		if err := m.prime(m.inputs[m.primed]); err != nil {
			return Tuple{}, err
		}
		m.primed++
	}
	if m.pending {
		if err := m.refillRoot(); err != nil {
			return Tuple{}, err
		}
	}
	if len(m.heads) == 0 {
		return Tuple{}, ErrExhausted
	}
	m.pending = true
	return m.heads[0].t, nil
}

// Kind implements Source.
func (m *MergedSource) Kind() AccessKind { return m.kind }

// Relation implements Source: the parent relation, so σ_max and error
// messages reflect what the caller queried.
func (m *MergedSource) Relation() *Relation { return m.rel }
