package relation

import (
	"errors"
	"fmt"
)

// MergedSource k-way-merges N ordered shard streams into one Source that
// preserves the access-kind ordering contract: a small heap holds one
// head per live shard, keyed by (sort key, parent ordinal). Because each
// shard stream is itself (key, ordinal)-sorted and ordinals are unique
// across shards, the merged sequence is the unique canonical order of the
// parent relation — byte-identical to the unsharded stream.
//
// Pulling is lazy: nothing is read at construction, the heap is primed
// on the first Next, and a shard is re-pulled only after its head has
// been emitted. Draining a prefix of the merged stream therefore costs
// at most len(prefix)+N underlying reads.
//
// Inputs that implement BoundedSource are primed without a read: they
// enter the heap as a latent head at their key lower bound (ordinal −1,
// so at key ties the latent head sorts before every real head) and are
// first read only when that bound reaches the heap root. Every real key
// of such a source is >= its bound, so no emission the eager merge would
// have made can precede the materialization point — the output is
// byte-identical — while a source whose bound the merge never reaches is
// never read at all. For remote shard streams this deferral is
// distance-aware shard pruning: the coordinator opens a remote stream
// only when the merge provably needs keys at or past the shard's bound.
//
// The heap is inlined and preallocated to the shard count, and the
// steady-state emit path is allocation-free: the root head is emitted by
// peek, then overwritten in place by its shard's next tuple and restored
// with a single sift-down — one fixup per tuple instead of the pop+push
// pair of a generic heap, and no re-boxing of the head struct.
type MergedSource struct {
	rel    *Relation
	kind   AccessKind
	inputs []KeyedSource
	heads  []mergeHead // binary min-heap by (key, ord)
	primed int         // inputs [0,primed) have contributed their first head
	// pending marks that heads[0] was emitted by the previous Next and must
	// be refilled (or retired) before the next emit. Kept set across a
	// failed refill so a retry re-pulls the same shard without skipping or
	// duplicating tuples.
	pending bool
}

// mergeHead is one shard's current front tuple — or, for a latent
// bounded source, the virtual head standing in for its first unread
// tuple.
type mergeHead struct {
	src KeyedSource
	t   Tuple
	key float64
	ord int
	// latent marks a bounded source that has not been read yet: key is
	// its lower bound, ord is −1, and t is zero. The source is read (and
	// the head becomes real) only when it reaches the heap root.
	latent bool
}

// newMergedSource builds the merged stream over per-shard sources that
// all share one access kind.
func newMergedSource(parent *Relation, kind AccessKind, inputs []KeyedSource) *MergedSource {
	return &MergedSource{
		rel:    parent,
		kind:   kind,
		inputs: inputs,
		heads:  make([]mergeHead, 0, len(inputs)),
	}
}

// NewMergedSource merges externally-constructed keyed streams — remote
// shard readers, local shard sources, or any mix — into the canonical
// parent order. Every input must stream in kind's (key, ordinal) order
// with ordinals unique across all inputs; parent supplies σ_max and
// metadata for the engine. Inputs implementing BoundedSource are opened
// lazily (see the type comment).
func NewMergedSource(parent *Relation, kind AccessKind, inputs []KeyedSource) (*MergedSource, error) {
	if parent == nil {
		return nil, fmt.Errorf("relation: merged source needs a parent relation")
	}
	for i, src := range inputs {
		if src == nil {
			return nil, fmt.Errorf("relation %q: merge input %d is nil", parent.Name, i)
		}
		if src.Kind() != kind {
			return nil, fmt.Errorf("relation %q: merge input %d has access kind %v, want %v",
				parent.Name, i, src.Kind(), kind)
		}
	}
	return newMergedSource(parent, kind, inputs), nil
}

func (m *MergedSource) less(a, b *mergeHead) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.ord < b.ord
}

func (m *MergedSource) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(&m.heads[i], &m.heads[parent]) {
			return
		}
		m.heads[i], m.heads[parent] = m.heads[parent], m.heads[i]
		i = parent
	}
}

func (m *MergedSource) siftDown(i int) {
	n := len(m.heads)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && m.less(&m.heads[right], &m.heads[left]) {
			least = right
		}
		if !m.less(&m.heads[least], &m.heads[i]) {
			return
		}
		m.heads[i], m.heads[least] = m.heads[least], m.heads[i]
		i = least
	}
}

// prime enters src into the heap: bounded sources as a latent head
// without a read, everything else by reading its first tuple (an
// already-exhausted shard is retired silently).
func (m *MergedSource) prime(src KeyedSource) error {
	if b, ok := src.(BoundedSource); ok {
		m.heads = append(m.heads, mergeHead{src: src, key: b.KeyLowerBound(), ord: -1, latent: true})
		m.siftUp(len(m.heads) - 1)
		return nil
	}
	t, key, ord, err := src.NextKeyed()
	if errors.Is(err, ErrExhausted) {
		return nil
	}
	if err != nil {
		return err
	}
	m.heads = append(m.heads, mergeHead{src: src, t: t, key: key, ord: ord})
	m.siftUp(len(m.heads) - 1)
	return nil
}

// retireRoot drops the root head (its shard is exhausted) and restores
// heap order.
func (m *MergedSource) retireRoot() {
	last := len(m.heads) - 1
	m.heads[0] = m.heads[last]
	m.heads[last] = mergeHead{} // release the retired shard's source
	m.heads = m.heads[:last]
	m.siftDown(0)
}

// refillRoot replaces the emitted root head with its shard's next tuple in
// place (or retires the shard on exhaustion) and restores heap order with
// one sift-down.
func (m *MergedSource) refillRoot() error {
	t, key, ord, err := m.heads[0].src.NextKeyed()
	if errors.Is(err, ErrExhausted) {
		m.retireRoot()
		m.pending = false
		return nil
	}
	if err != nil {
		return err // pending stays set: a retry refills the same shard
	}
	h := &m.heads[0]
	h.t, h.key, h.ord = t, key, ord
	m.siftDown(0)
	m.pending = false
	return nil
}

// materializeRoot reads the first tuple of the latent root and turns its
// virtual head real (or retires the shard if it turns out empty). On a
// transient read error the head stays latent at the root, so a retry
// re-attempts the same source without skipping or reordering anything.
func (m *MergedSource) materializeRoot() error {
	t, key, ord, err := m.heads[0].src.NextKeyed()
	if errors.Is(err, ErrExhausted) {
		m.retireRoot()
		return nil
	}
	if err != nil {
		return err
	}
	h := &m.heads[0]
	h.t, h.key, h.ord, h.latent = t, key, ord, false
	m.siftDown(0)
	return nil
}

// Next implements Source. Access errors from a shard propagate as-is and
// leave the merge consistent: a retry re-pulls the failed shard without
// skipping or duplicating tuples.
func (m *MergedSource) Next() (Tuple, error) {
	for m.primed < len(m.inputs) {
		if err := m.prime(m.inputs[m.primed]); err != nil {
			return Tuple{}, err
		}
		m.primed++
	}
	if m.pending {
		if err := m.refillRoot(); err != nil {
			return Tuple{}, err
		}
	}
	// A latent head at the root means the merge has advanced to a shard's
	// lower bound: its true first tuple may now be due, so read it. The
	// loop re-checks because materialization can surface another latent
	// head (or retire the shard and promote one).
	for len(m.heads) > 0 && m.heads[0].latent {
		if err := m.materializeRoot(); err != nil {
			return Tuple{}, err
		}
	}
	if len(m.heads) == 0 {
		return Tuple{}, ErrExhausted
	}
	m.pending = true
	return m.heads[0].t, nil
}

// Kind implements Source.
func (m *MergedSource) Kind() AccessKind { return m.kind }

// Relation implements Source: the parent relation, so σ_max and error
// messages reflect what the caller queried.
func (m *MergedSource) Relation() *Relation { return m.rel }
