package relation

import (
	"errors"

	"repro/internal/pqueue"
)

// MergedSource k-way-merges N ordered shard streams into one Source that
// preserves the access-kind ordering contract: a small heap holds one
// head per live shard, keyed by (sort key, parent ordinal). Because each
// shard stream is itself (key, ordinal)-sorted and ordinals are unique
// across shards, the merged sequence is the unique canonical order of the
// parent relation — byte-identical to the unsharded stream.
//
// Pulling is lazy: nothing is read at construction, the heap is primed
// with one tuple per shard on the first Next, and a shard is re-pulled
// only after its head has been emitted. Draining a prefix of the merged
// stream therefore costs at most len(prefix)+N underlying reads.
type MergedSource struct {
	rel    *Relation
	kind   AccessKind
	inputs []keyedSource
	heap   *pqueue.Heap[mergeHead]
	primed int         // inputs [0,primed) have contributed their first head
	refill keyedSource // shard whose head was emitted by the previous Next
}

// mergeHead is one shard's current front tuple.
type mergeHead struct {
	src keyedSource
	t   Tuple
	key float64
	ord int
}

// newMergedSource builds the merged stream over per-shard sources that
// all share one access kind.
func newMergedSource(parent *Relation, kind AccessKind, inputs []keyedSource) *MergedSource {
	return &MergedSource{
		rel:    parent,
		kind:   kind,
		inputs: inputs,
		heap: pqueue.New(func(a, b mergeHead) bool {
			if a.key != b.key {
				return a.key < b.key
			}
			return a.ord < b.ord
		}),
	}
}

// pull reads one tuple from src into the heap; exhaustion retires the
// shard silently.
func (m *MergedSource) pull(src keyedSource) error {
	t, key, ord, err := src.nextKeyed()
	if errors.Is(err, ErrExhausted) {
		return nil
	}
	if err != nil {
		return err
	}
	m.heap.Push(mergeHead{src: src, t: t, key: key, ord: ord})
	return nil
}

// Next implements Source. Access errors from a shard propagate as-is and
// leave the merge consistent: a retry re-pulls the failed shard without
// skipping or duplicating tuples.
func (m *MergedSource) Next() (Tuple, error) {
	for m.primed < len(m.inputs) {
		if err := m.pull(m.inputs[m.primed]); err != nil {
			return Tuple{}, err
		}
		m.primed++
	}
	if m.refill != nil {
		if err := m.pull(m.refill); err != nil {
			return Tuple{}, err
		}
		m.refill = nil
	}
	top, ok := m.heap.Pop()
	if !ok {
		return Tuple{}, ErrExhausted
	}
	m.refill = top.src
	return top.t, nil
}

// Kind implements Source.
func (m *MergedSource) Kind() AccessKind { return m.kind }

// Relation implements Source: the parent relation, so σ_max and error
// messages reflect what the caller queried.
func (m *MergedSource) Relation() *Relation { return m.rel }
