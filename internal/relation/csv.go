package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSV layout: a header row "id,score,x1,...,xd[,attr...]" followed by one
// row per tuple. Columns after the vector components are treated as named
// attributes keyed by their header.

// WriteCSV serializes r to w.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "score"}
	for i := 0; i < r.Dim(); i++ {
		header = append(header, fmt.Sprintf("x%d", i+1))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < r.Len(); i++ {
		t := r.At(i)
		rec := []string{t.ID, strconv.FormatFloat(t.Score, 'g', -1, 64)}
		for _, x := range t.Vec {
			rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation from r. maxScore is the relation's σ_max;
// pass 0 to use the largest score found.
func ReadCSV(rd io.Reader, name string, maxScore float64) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation csv %q: header: %w", name, err)
	}
	if len(header) < 3 || strings.ToLower(header[0]) != "id" || strings.ToLower(header[1]) != "score" {
		return nil, fmt.Errorf("relation csv %q: header must start with id,score,x1,...", name)
	}
	// Vector columns are the contiguous run of x1..xd; anything after is an
	// attribute column.
	dim := 0
	for i := 2; i < len(header); i++ {
		if strings.HasPrefix(strings.ToLower(header[i]), "x") {
			dim++
		} else {
			break
		}
	}
	if dim == 0 {
		return nil, fmt.Errorf("relation csv %q: no vector columns", name)
	}
	attrCols := header[2+dim:]

	var tuples []Tuple
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation csv %q line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation csv %q line %d: %d fields, want %d", name, line, len(rec), len(header))
		}
		score, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("relation csv %q line %d: bad score %q", name, line, rec[1])
		}
		v := make([]float64, dim)
		for j := 0; j < dim; j++ {
			v[j], err = strconv.ParseFloat(rec[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("relation csv %q line %d: bad component %q", name, line, rec[2+j])
			}
		}
		t := Tuple{ID: rec[0], Score: score, Vec: v}
		if len(attrCols) > 0 {
			t.Attrs = make(map[string]string, len(attrCols))
			for j, col := range attrCols {
				t.Attrs[col] = rec[2+dim+j]
			}
		}
		tuples = append(tuples, t)
	}
	if maxScore == 0 {
		for _, t := range tuples {
			if t.Score > maxScore {
				maxScore = t.Score
			}
		}
	}
	return New(name, maxScore, tuples)
}

// LoadCSVFile reads a relation from a CSV file, naming it after the path's
// base name when name is empty.
func LoadCSVFile(path, name string, maxScore float64) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if name == "" {
		name = path
	}
	return ReadCSV(f, name, maxScore)
}

// SaveCSVFile writes a relation to a CSV file.
func SaveCSVFile(path string, r *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
