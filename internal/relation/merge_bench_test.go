package relation

import (
	"errors"
	"testing"

	"repro/internal/vec"
)

// BenchmarkMergedSource drains a sharded relation through the k-way merge
// under both access kinds. The steady-state emit path (peek, in-place
// refill, one sift-down) must stay allocation-free: the allocs/op of this
// benchmark are dominated by per-shard stream construction, not by the
// per-tuple merge work.
func BenchmarkMergedSource(b *testing.B) {
	const size, dim, shards = 1024, 3, 8
	rel := tieRelation(b, 3, size, dim)
	sh, err := Partition(rel, shards, HashPartition)
	if err != nil {
		b.Fatal(err)
	}
	q := vec.Of(1, 2, 1)

	for _, bc := range []struct {
		name string
		kind AccessKind
	}{
		{"score", ScoreAccess},
		{"distance", DistanceAccess},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sources := make([]Source, sh.NumShards())
				for s := range sources {
					src, err := sh.ShardSource(s, bc.kind, q, vec.Euclidean{}, false)
					if err != nil {
						b.Fatal(err)
					}
					sources[s] = src
				}
				merged, err := sh.Merge(sources)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, err := merged.Next()
					if errors.Is(err, ErrExhausted) {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					n++
				}
				if n != size {
					b.Fatalf("drained %d tuples, want %d", n, size)
				}
			}
		})
	}
}
