package pqueue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasic(t *testing.T) {
	h := NewDense[float64](func(a, b float64) bool { return a > b }) // max-heap
	if _, _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
	h.Push(10, 1.5)
	h.Push(20, 9.5)
	h.Push(30, 4.5)
	if k, v, _ := h.Peek(); k != 20 || v != 9.5 {
		t.Fatalf("Peek = %d %v", k, v)
	}
	if !h.Contains(30) || h.Contains(99) || h.Contains(-1) {
		t.Fatal("Contains wrong")
	}
	if v, ok := h.Get(30); !ok || v != 4.5 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	h.Update(10, 100)
	if k, _, _ := h.Peek(); k != 10 {
		t.Fatalf("after Update peek key = %d", k)
	}
	if !h.Remove(10) {
		t.Fatal("Remove existing failed")
	}
	if h.Remove(10) {
		t.Fatal("Remove of absent key reported true")
	}
	k, v, ok := h.Pop()
	if !ok || k != 20 || v != 9.5 {
		t.Fatalf("Pop = %d %v %v", k, v, ok)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	// A removed key can be pushed again.
	h.Push(10, 2.5)
	if v, ok := h.Get(10); !ok || v != 2.5 {
		t.Fatalf("re-push Get = %v %v", v, ok)
	}
}

func TestDenseDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key did not panic")
		}
	}()
	h := NewDense[int](intMin)
	h.Push(1, 1)
	h.Push(1, 2)
}

func TestDenseNegativeKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative key did not panic")
		}
	}()
	NewDense[int](intMin).Push(-1, 1)
}

func TestDenseUpdateMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("update missing key did not panic")
		}
	}()
	NewDense[int](intMin).Update(5, 1)
}

// Property: Dense agrees with Indexed operation for operation — same
// peeks, same pop order — under a random push/update/remove sequence
// with dense arena-style keys. Dense replaced Indexed under the tight
// bound's per-subset heap, so behavioral equality is what keeps that
// swap invisible.
func TestQuickDenseMatchesIndexed(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		max := func(a, b float64) bool { return a > b }
		d := NewDense[float64](max)
		ix := NewIndexed[float64](max)
		live := []int{}
		nextKey := 0
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0, 1: // push
				v := r.Float64()
				d.Push(nextKey, v)
				ix.Push(nextKey, v)
				live = append(live, nextKey)
				nextKey++
			case 2: // update random existing
				if len(live) == 0 {
					continue
				}
				k := live[r.Intn(len(live))]
				v := r.Float64() * 2
				d.Update(k, v)
				ix.Update(k, v)
			case 3: // remove random existing
				if len(live) == 0 {
					continue
				}
				i := r.Intn(len(live))
				k := live[i]
				live = append(live[:i], live[i+1:]...)
				if !d.Remove(k) || !ix.Remove(k) {
					return false
				}
			}
			dk, dv, dok := d.Peek()
			ik, iv, iok := ix.Peek()
			if dok != iok || dv != iv || dk != ik {
				return false
			}
			if d.Len() != ix.Len() {
				return false
			}
		}
		for d.Len() > 0 {
			dk, dv, _ := d.Pop()
			ik, iv, iok := ix.Pop()
			if !iok || dk != ik || dv != iv {
				return false
			}
		}
		_, _, ok := ix.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
