package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intMin(a, b int) bool { return a < b }

func TestHeapBasic(t *testing.T) {
	h := New(intMin)
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
	for _, x := range []int{5, 3, 8, 1, 9, 2} {
		h.Push(x)
	}
	if h.Len() != 6 {
		t.Fatalf("Len = %d", h.Len())
	}
	if top, _ := h.Peek(); top != 1 {
		t.Fatalf("Peek = %d", top)
	}
	var got []int
	for h.Len() > 0 {
		x, _ := h.Pop()
		got = append(got, x)
	}
	want := []int{1, 2, 3, 5, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestHeapClear(t *testing.T) {
	h := New(intMin)
	h.Push(1)
	h.Push(2)
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("Clear left elements")
	}
	h.Push(7)
	if top, _ := h.Pop(); top != 7 {
		t.Fatal("heap unusable after Clear")
	}
}

// Property: heap pop order equals sorted order for random inputs.
func TestQuickHeapSorts(t *testing.T) {
	f := func(xs []int) bool {
		h := New(intMin)
		for _, x := range xs {
			h.Push(x)
		}
		sorted := append([]int(nil), xs...)
		sort.Ints(sorted)
		for _, want := range sorted {
			got, ok := h.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := h.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexedBasic(t *testing.T) {
	h := NewIndexed[float64](func(a, b float64) bool { return a > b }) // max-heap
	h.Push(10, 1.5)
	h.Push(20, 9.5)
	h.Push(30, 4.5)
	if k, v, _ := h.Peek(); k != 20 || v != 9.5 {
		t.Fatalf("Peek = %d %v", k, v)
	}
	if !h.Contains(30) || h.Contains(99) {
		t.Fatal("Contains wrong")
	}
	if v, ok := h.Get(30); !ok || v != 4.5 {
		t.Fatalf("Get = %v %v", v, ok)
	}
	h.Update(10, 100)
	if k, _, _ := h.Peek(); k != 10 {
		t.Fatalf("after Update peek key = %d", k)
	}
	if !h.Remove(10) {
		t.Fatal("Remove existing failed")
	}
	if h.Remove(10) {
		t.Fatal("Remove of absent key reported true")
	}
	k, v, ok := h.Pop()
	if !ok || k != 20 || v != 9.5 {
		t.Fatalf("Pop = %d %v %v", k, v, ok)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestIndexedDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key did not panic")
		}
	}()
	h := NewIndexed[int](intMin)
	h.Push(1, 1)
	h.Push(1, 2)
}

func TestIndexedUpdateMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("update missing key did not panic")
		}
	}()
	NewIndexed[int](intMin).Update(5, 1)
}

// Property: under a random sequence of push/update/remove operations the
// indexed heap always pops the true maximum remaining value.
func TestQuickIndexedMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewIndexed[float64](func(a, b float64) bool { return a > b })
		oracle := map[int]float64{}
		nextKey := 0
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0, 1: // push
				v := r.Float64()
				h.Push(nextKey, v)
				oracle[nextKey] = v
				nextKey++
			case 2: // update random existing
				if len(oracle) == 0 {
					continue
				}
				k := randomKey(r, oracle)
				v := r.Float64() * 2
				h.Update(k, v)
				oracle[k] = v
			case 3: // remove random existing
				if len(oracle) == 0 {
					continue
				}
				k := randomKey(r, oracle)
				if !h.Remove(k) {
					return false
				}
				delete(oracle, k)
			}
			// Check the peek against oracle max.
			if len(oracle) == 0 {
				if _, _, ok := h.Peek(); ok {
					return false
				}
				continue
			}
			wantV := -1.0
			for _, v := range oracle {
				if v > wantV {
					wantV = v
				}
			}
			_, v, ok := h.Peek()
			if !ok || v != wantV {
				return false
			}
		}
		// Drain and check descending order.
		prev := 1e18
		for h.Len() > 0 {
			_, v, _ := h.Pop()
			if v > prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomKey(r *rand.Rand, m map[int]float64) int {
	i := r.Intn(len(m))
	for k := range m {
		if i == 0 {
			return k
		}
		i--
	}
	panic("unreachable")
}
