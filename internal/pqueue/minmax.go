package pqueue

import "math/bits"

// MinMax is a double-ended priority queue implemented as a min-max heap
// (Atkinson et al. 1986): even levels order toward the minimum, odd
// levels toward the maximum, so both ends are readable in O(1) and
// removable in O(log n) with no auxiliary structure. The engine's bounded
// enumeration buffer relies on exactly this pair of operations: emit the
// best buffered combination while evicting or spilling the worst once
// the buffer reaches its cap.
//
// The zero value is not usable; construct with NewMinMax. less(a, b)
// reports that a orders before b (toward the Min end).
type MinMax[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewMinMax returns an empty min-max heap ordered by less.
func NewMinMax[T any](less func(a, b T) bool) *MinMax[T] {
	return &MinMax[T]{less: less}
}

// Len returns the number of queued elements.
func (h *MinMax[T]) Len() int { return len(h.items) }

// Grow reserves capacity for at least n total elements.
func (h *MinMax[T]) Grow(n int) {
	if cap(h.items) < n {
		items := make([]T, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

// Push inserts x.
func (h *MinMax[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// PeekMin returns the element ordering first; ok is false when empty.
func (h *MinMax[T]) PeekMin() (top T, ok bool) {
	if len(h.items) == 0 {
		return top, false
	}
	return h.items[0], true
}

// PeekMax returns the element ordering last; ok is false when empty.
func (h *MinMax[T]) PeekMax() (top T, ok bool) {
	if len(h.items) == 0 {
		return top, false
	}
	return h.items[h.maxIndex()], true
}

// PopMin removes and returns the element ordering first.
func (h *MinMax[T]) PopMin() (top T, ok bool) {
	if len(h.items) == 0 {
		return top, false
	}
	return h.removeAt(0), true
}

// PopMax removes and returns the element ordering last.
func (h *MinMax[T]) PopMax() (top T, ok bool) {
	if len(h.items) == 0 {
		return top, false
	}
	return h.removeAt(h.maxIndex()), true
}

// Items returns the backing slice in heap order (not sorted). The caller
// must not mutate it.
func (h *MinMax[T]) Items() []T { return h.items }

// Clear empties the heap, retaining capacity.
func (h *MinMax[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// maxIndex returns the index of the maximum element (len > 0).
func (h *MinMax[T]) maxIndex() int {
	switch len(h.items) {
	case 1:
		return 0
	case 2:
		return 1
	}
	if h.less(h.items[1], h.items[2]) {
		return 2
	}
	return 1
}

// removeAt removes and returns items[i], restoring the heap property.
func (h *MinMax[T]) removeAt(i int) T {
	last := len(h.items) - 1
	out := h.items[i]
	h.items[i] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	return out
}

// onMinLevel reports whether index i sits on an even (min-ordered) level.
func onMinLevel(i int) bool {
	return bits.Len(uint(i)+1)%2 == 1
}

// before reports whether a orders before b in the direction of level kind
// min (toward Min when min, toward Max otherwise).
func (h *MinMax[T]) before(a, b T, min bool) bool {
	if min {
		return h.less(a, b)
	}
	return h.less(b, a)
}

func (h *MinMax[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
}

// up restores the heap property from a freshly written index toward the
// root.
func (h *MinMax[T]) up(i int) {
	if i == 0 {
		return
	}
	parent := (i - 1) / 2
	min := onMinLevel(i)
	if h.before(h.items[parent], h.items[i], min) {
		// The element belongs on the opposite-ordered levels.
		h.swap(i, parent)
		h.upSame(parent, !min)
		return
	}
	h.upSame(i, min)
}

// upSame bubbles items[i] up its own level kind (grandparent chain).
func (h *MinMax[T]) upSame(i int, min bool) {
	for i > 2 {
		g := ((i-1)/2 - 1) / 2
		if !h.before(h.items[i], h.items[g], min) {
			return
		}
		h.swap(i, g)
		i = g
	}
}

// down restores the heap property from index i toward the leaves.
func (h *MinMax[T]) down(i int) {
	min := onMinLevel(i)
	n := len(h.items)
	for {
		// m: the extreme element among children and grandchildren of i.
		m, grand := -1, false
		child := 2*i + 1
		for c := child; c <= child+1 && c < n; c++ {
			if m < 0 || h.before(h.items[c], h.items[m], min) {
				m, grand = c, false
			}
		}
		gchild := 2*child + 1
		for g := gchild; g <= gchild+3 && g < n; g++ {
			if m < 0 || h.before(h.items[g], h.items[m], min) {
				m, grand = g, true
			}
		}
		if m < 0 || !h.before(h.items[m], h.items[i], min) {
			return
		}
		h.swap(m, i)
		if !grand {
			return
		}
		if p := (m - 1) / 2; h.before(h.items[p], h.items[m], min) {
			h.swap(m, p)
		}
		i = m
	}
}
