// Package pqueue provides generic binary heaps used throughout the library:
// the engine's top-K output buffer, the lazy bound heaps of the tight
// bounding scheme, and the R-tree's incremental nearest-neighbor traversal.
//
// Heap is a plain priority queue ordered by a user-supplied less function.
// Indexed is a priority queue that additionally tracks element positions so
// that priorities can be updated or elements removed in O(log n). Dense is
// Indexed specialized for small dense non-negative keys: the position table
// is a slice, making the steady state allocation-free.
package pqueue

// Heap is a binary heap over T. The zero value is not usable; construct
// with New.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// New returns an empty heap ordered by less (less(a,b) means a has higher
// priority and is popped first).
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of queued elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Grow reserves capacity for at least n total elements.
func (h *Heap[T]) Grow(n int) {
	if cap(h.items) < n {
		items := make([]T, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

// Push inserts x.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the highest-priority element without removing it.
// ok is false when the heap is empty.
func (h *Heap[T]) Peek() (top T, ok bool) {
	if len(h.items) == 0 {
		return top, false
	}
	return h.items[0], true
}

// Pop removes and returns the highest-priority element.
// ok is false when the heap is empty.
func (h *Heap[T]) Pop() (top T, ok bool) {
	if len(h.items) == 0 {
		return top, false
	}
	top = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top, true
}

// Items returns the backing slice in heap order (not sorted). The caller
// must not mutate it.
func (h *Heap[T]) Items() []T { return h.items }

// Clear empties the heap, retaining capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		best := l
		if r < n && h.less(h.items[r], h.items[l]) {
			best = r
		}
		if !h.less(h.items[best], h.items[i]) {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// Indexed is a priority queue whose elements carry a stable integer key;
// priorities can be changed (Fix) and arbitrary elements removed in
// O(log n). Keys must be unique among live elements.
type Indexed[T any] struct {
	items []indexedItem[T]
	pos   map[int]int // key -> index in items
	less  func(a, b T) bool
}

type indexedItem[T any] struct {
	key int
	val T
}

// NewIndexed returns an empty indexed heap ordered by less.
func NewIndexed[T any](less func(a, b T) bool) *Indexed[T] {
	return &Indexed[T]{pos: make(map[int]int), less: less}
}

// Len returns the number of queued elements.
func (h *Indexed[T]) Len() int { return len(h.items) }

// Contains reports whether key is queued.
func (h *Indexed[T]) Contains(key int) bool {
	_, ok := h.pos[key]
	return ok
}

// Get returns the value stored under key.
func (h *Indexed[T]) Get(key int) (val T, ok bool) {
	i, ok := h.pos[key]
	if !ok {
		return val, false
	}
	return h.items[i].val, true
}

// Push inserts val under key. It panics if key is already present.
func (h *Indexed[T]) Push(key int, val T) {
	if _, dup := h.pos[key]; dup {
		panic("pqueue: duplicate key")
	}
	h.items = append(h.items, indexedItem[T]{key: key, val: val})
	i := len(h.items) - 1
	h.pos[key] = i
	h.up(i)
}

// Peek returns the highest-priority key and value.
func (h *Indexed[T]) Peek() (key int, val T, ok bool) {
	if len(h.items) == 0 {
		return 0, val, false
	}
	return h.items[0].key, h.items[0].val, true
}

// Pop removes and returns the highest-priority key and value.
func (h *Indexed[T]) Pop() (key int, val T, ok bool) {
	if len(h.items) == 0 {
		return 0, val, false
	}
	it := h.items[0]
	h.removeAt(0)
	return it.key, it.val, true
}

// Update replaces the value under key and restores heap order. It panics
// if key is absent.
func (h *Indexed[T]) Update(key int, val T) {
	i, ok := h.pos[key]
	if !ok {
		panic("pqueue: update of missing key")
	}
	h.items[i].val = val
	h.fix(i)
}

// Remove deletes key if present and reports whether it was there.
func (h *Indexed[T]) Remove(key int) bool {
	i, ok := h.pos[key]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

func (h *Indexed[T]) removeAt(i int) {
	last := len(h.items) - 1
	delete(h.pos, h.items[i].key)
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].key] = i
	}
	h.items[last] = indexedItem[T]{}
	h.items = h.items[:last]
	if i < len(h.items) {
		h.fix(i)
	}
}

func (h *Indexed[T]) fix(i int) {
	h.up(i)
	h.down(i)
}

func (h *Indexed[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i].val, h.items[parent].val) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Indexed[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		best := l
		if r < n && h.less(h.items[r].val, h.items[l].val) {
			best = r
		}
		if !h.less(h.items[best].val, h.items[i].val) {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *Indexed[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].key] = i
	h.pos[h.items[j].key] = j
}

// Dense is an indexed priority queue specialized for small, dense,
// non-negative keys (array indices): the key→position table is a slice
// instead of a map, so Push, Update, and Remove allocate only when the
// backing arrays grow — the steady state is allocation-free. Sift order
// is identical to Indexed, so replacing one with the other preserves
// heap layout (and therefore Peek tie-breaking) exactly.
//
// Keys must be non-negative; the position table grows to the largest
// key ever pushed, so keys should stay proportional to the number of
// live elements (ids handed out by an arena, slice indices).
type Dense[T any] struct {
	items []indexedItem[T]
	pos   []int32 // key -> index in items, -1 when absent
	less  func(a, b T) bool
}

// NewDense returns an empty dense-key indexed heap ordered by less.
func NewDense[T any](less func(a, b T) bool) *Dense[T] {
	return &Dense[T]{less: less}
}

// MakeDense returns an empty dense-key indexed heap by value, for
// embedding in a larger arena-allocated struct without a separate heap
// allocation.
func MakeDense[T any](less func(a, b T) bool) Dense[T] {
	return Dense[T]{less: less}
}

// Len returns the number of queued elements.
func (h *Dense[T]) Len() int { return len(h.items) }

// Grow reserves capacity for at least n total elements (and keys up to
// n-1) so a known batch of pushes does not reallocate once per doubling.
func (h *Dense[T]) Grow(n int) {
	if cap(h.items) < n {
		items := make([]indexedItem[T], len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
	if cap(h.pos) < n {
		np := make([]int32, len(h.pos), n)
		copy(np, h.pos)
		h.pos = np
	}
	for len(h.pos) < cap(h.pos) {
		h.pos = append(h.pos, -1)
	}
}

// Contains reports whether key is queued.
func (h *Dense[T]) Contains(key int) bool {
	return key >= 0 && key < len(h.pos) && h.pos[key] >= 0
}

// Get returns the value stored under key.
func (h *Dense[T]) Get(key int) (val T, ok bool) {
	if !h.Contains(key) {
		return val, false
	}
	return h.items[h.pos[key]].val, true
}

// Push inserts val under key. It panics if key is negative or already
// present.
func (h *Dense[T]) Push(key int, val T) {
	if key < 0 {
		panic("pqueue: negative key")
	}
	if h.Contains(key) {
		panic("pqueue: duplicate key")
	}
	for key >= len(h.pos) {
		// Grow the position table with a floor so early pushes do not
		// reallocate once per key.
		n := 2 * cap(h.pos)
		if n < 64 {
			n = 64
		}
		np := make([]int32, len(h.pos), n)
		copy(np, h.pos)
		h.pos = np
		for len(h.pos) < cap(h.pos) {
			h.pos = append(h.pos, -1)
		}
	}
	h.items = append(h.items, indexedItem[T]{key: key, val: val})
	i := len(h.items) - 1
	h.pos[key] = int32(i)
	h.up(i)
}

// Peek returns the highest-priority key and value.
func (h *Dense[T]) Peek() (key int, val T, ok bool) {
	if len(h.items) == 0 {
		return 0, val, false
	}
	return h.items[0].key, h.items[0].val, true
}

// Pop removes and returns the highest-priority key and value.
func (h *Dense[T]) Pop() (key int, val T, ok bool) {
	if len(h.items) == 0 {
		return 0, val, false
	}
	it := h.items[0]
	h.removeAt(0)
	return it.key, it.val, true
}

// Update replaces the value under key and restores heap order. It panics
// if key is absent.
func (h *Dense[T]) Update(key int, val T) {
	if !h.Contains(key) {
		panic("pqueue: update of missing key")
	}
	i := int(h.pos[key])
	h.items[i].val = val
	h.fix(i)
}

// Remove deletes key if present and reports whether it was there.
func (h *Dense[T]) Remove(key int) bool {
	if !h.Contains(key) {
		return false
	}
	h.removeAt(int(h.pos[key]))
	return true
}

func (h *Dense[T]) removeAt(i int) {
	last := len(h.items) - 1
	h.pos[h.items[i].key] = -1
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].key] = int32(i)
	}
	h.items[last] = indexedItem[T]{}
	h.items = h.items[:last]
	if i < len(h.items) {
		h.fix(i)
	}
}

func (h *Dense[T]) fix(i int) {
	h.up(i)
	h.down(i)
}

func (h *Dense[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i].val, h.items[parent].val) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Dense[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		best := l
		if r < n && h.less(h.items[r].val, h.items[l].val) {
			best = r
		}
		if !h.less(h.items[best].val, h.items[i].val) {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *Dense[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].key] = int32(i)
	h.pos[h.items[j].key] = int32(j)
}
