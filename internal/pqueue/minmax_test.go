package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMinMaxBasic(t *testing.T) {
	h := NewMinMax(func(a, b int) bool { return a < b })
	if _, ok := h.PeekMin(); ok {
		t.Fatal("PeekMin on empty heap reported ok")
	}
	if _, ok := h.PopMax(); ok {
		t.Fatal("PopMax on empty heap reported ok")
	}
	for _, v := range []int{5, 1, 9, 3, 7, 2, 8} {
		h.Push(v)
	}
	if mn, _ := h.PeekMin(); mn != 1 {
		t.Fatalf("PeekMin = %d, want 1", mn)
	}
	if mx, _ := h.PeekMax(); mx != 9 {
		t.Fatalf("PeekMax = %d, want 9", mx)
	}
	if v, _ := h.PopMax(); v != 9 {
		t.Fatalf("PopMax = %d, want 9", v)
	}
	if v, _ := h.PopMin(); v != 1 {
		t.Fatalf("PopMin = %d, want 1", v)
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d, want 5", h.Len())
	}
	h.Clear()
	if h.Len() != 0 {
		t.Fatalf("Len after Clear = %d", h.Len())
	}
}

// TestMinMaxAgainstSort drives random mixed operations and checks every
// pop against a mirrored sorted reference.
func TestMinMaxAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		h := NewMinMax(func(a, b int) bool { return a < b })
		var ref []int
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(4); {
			case r <= 1 || len(ref) == 0:
				v := rng.Intn(1000)
				h.Push(v)
				ref = append(ref, v)
				sort.Ints(ref)
			case r == 2:
				got, ok := h.PopMin()
				if !ok || got != ref[0] {
					t.Fatalf("trial %d op %d: PopMin = %d,%v, want %d", trial, op, got, ok, ref[0])
				}
				ref = ref[1:]
			default:
				got, ok := h.PopMax()
				if !ok || got != ref[len(ref)-1] {
					t.Fatalf("trial %d op %d: PopMax = %d,%v, want %d", trial, op, got, ok, ref[len(ref)-1])
				}
				ref = ref[:len(ref)-1]
			}
			if h.Len() != len(ref) {
				t.Fatalf("trial %d op %d: Len = %d, want %d", trial, op, h.Len(), len(ref))
			}
			if len(ref) > 0 {
				if mn, _ := h.PeekMin(); mn != ref[0] {
					t.Fatalf("trial %d op %d: PeekMin = %d, want %d", trial, op, mn, ref[0])
				}
				if mx, _ := h.PeekMax(); mx != ref[len(ref)-1] {
					t.Fatalf("trial %d op %d: PeekMax = %d, want %d", trial, op, mx, ref[len(ref)-1])
				}
			}
		}
	}
}

// TestMinMaxDuplicates exercises heavy duplication, where level-order
// invariants are easiest to violate.
func TestMinMaxDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewMinMax(func(a, b int) bool { return a < b })
	var ref []int
	for i := 0; i < 2000; i++ {
		v := rng.Intn(4)
		h.Push(v)
		ref = append(ref, v)
	}
	sort.Ints(ref)
	for lo, hi := 0, len(ref)-1; lo <= hi; {
		if lo%2 == 0 {
			got, _ := h.PopMin()
			if got != ref[lo] {
				t.Fatalf("PopMin = %d, want %d", got, ref[lo])
			}
			lo++
		} else {
			got, _ := h.PopMax()
			if got != ref[hi] {
				t.Fatalf("PopMax = %d, want %d", got, ref[hi])
			}
			hi--
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}
