package benchcore

import (
	"strings"
	"testing"
)

func snap(results ...Result) Snapshot {
	return Snapshot{Benchmarks: results}
}

func TestCheckAllocs(t *testing.T) {
	committed := snap(
		Result{Name: "TopK", AllocsPerOp: 100},
		Result{Name: "SessionNext", AllocsPerOp: 4},
		Result{Name: "Retired", AllocsPerOp: 50},
	)

	t.Run("within tolerance passes", func(t *testing.T) {
		fresh := snap(
			Result{Name: "TopK", AllocsPerOp: 110}, // exactly +10%
			Result{Name: "SessionNext", AllocsPerOp: 5},
		)
		if err := CheckAllocs(fresh, committed, 0.10); err != nil {
			t.Fatalf("unexpected failure: %v", err)
		}
	})

	t.Run("regression fails with every violation named", func(t *testing.T) {
		fresh := snap(
			Result{Name: "TopK", AllocsPerOp: 150},
			Result{Name: "SessionNext", AllocsPerOp: 40},
		)
		err := CheckAllocs(fresh, committed, 0.10)
		if err == nil {
			t.Fatal("want regression error")
		}
		if !strings.Contains(err.Error(), "TopK") || !strings.Contains(err.Error(), "SessionNext") {
			t.Fatalf("error should name both violations: %v", err)
		}
	})

	t.Run("small-count floor allows one stray allocation", func(t *testing.T) {
		committed := snap(Result{Name: "ZeroAlloc", AllocsPerOp: 0})
		if err := CheckAllocs(snap(Result{Name: "ZeroAlloc", AllocsPerOp: 1}), committed, 0.10); err != nil {
			t.Fatalf("+1 over a zero baseline must pass: %v", err)
		}
		if err := CheckAllocs(snap(Result{Name: "ZeroAlloc", AllocsPerOp: 2}), committed, 0.10); err == nil {
			t.Fatal("+2 over a zero baseline must fail")
		}
	})

	t.Run("unknown and retired benchmarks are skipped", func(t *testing.T) {
		fresh := snap(Result{Name: "BrandNew", AllocsPerOp: 1 << 30})
		if err := CheckAllocs(fresh, committed, 0.10); err != nil {
			t.Fatalf("new benchmark must not fail the gate: %v", err)
		}
	})
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := snap(Result{Name: "TopK", Iterations: 3, NsPerOp: 1.5, BytesPerOp: 64, AllocsPerOp: 2})
	s.GoOS, s.GoArch, s.NumCPU = "linux", "amd64", 4
	var b strings.Builder
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0] != s.Benchmarks[0] || got.GoOS != "linux" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}
