// Package benchcore defines the engine hot-path micro-benchmarks in one
// place, so `go test -bench=HotPath` and the committed BENCH_core.json
// snapshot (`proxbench -core-out`) measure exactly the same workloads:
// batch TopK (tight and corner bounds), incremental session Next, and a
// sharded-merge query. The JSON snapshot is the perf trajectory record —
// regenerate it on the same class of hardware before claiming a win or a
// regression (see EXPERIMENTS.md).
package benchcore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	proxrank "repro"
)

// Spec names one hot-path benchmark.
type Spec struct {
	Name  string
	Bench func(b *testing.B)
}

// Specs lists the hot-path benchmarks in report order.
func Specs() []Spec {
	return []Spec{
		{Name: "TopK", Bench: BenchTopK},
		{Name: "TopKCorner", Bench: BenchTopKCorner},
		{Name: "SessionNext", Bench: BenchSessionNext},
		{Name: "ShardedMerge", Bench: BenchShardedMerge},
	}
}

func mustRels(n, base int, seed int64) ([]*proxrank.Relation, proxrank.Vector) {
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.Relations = n
	cfg.BaseTuples = base
	cfg.Seed = seed
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		panic(err)
	}
	return rels, proxrank.Vector{0, 0}
}

func inputsOf(rels []*proxrank.Relation) []proxrank.Input {
	inputs := make([]proxrank.Input, len(rels))
	for i, r := range rels {
		inputs[i] = r
	}
	return inputs
}

// Workload state is built once per process and shared read-only, so the
// benchmarks time queries, not data generation.
var (
	batchOnce sync.Once
	batchRels []*proxrank.Relation
	batchQ    proxrank.Vector

	sessOnce sync.Once
	sessRels []*proxrank.Relation
	sessQ    proxrank.Vector

	shardOnce   sync.Once
	shardInputs []proxrank.Input
	shardQ      proxrank.Vector
)

func batchSetup() ([]*proxrank.Relation, proxrank.Vector) {
	batchOnce.Do(func() { batchRels, batchQ = mustRels(2, 400, 42) })
	return batchRels, batchQ
}

func sessSetup() ([]*proxrank.Relation, proxrank.Vector) {
	sessOnce.Do(func() { sessRels, sessQ = mustRels(2, 2000, 7) })
	return sessRels, sessQ
}

func shardSetup() ([]proxrank.Input, proxrank.Vector) {
	shardOnce.Do(func() {
		rels, q := mustRels(2, 2000, 42)
		inputs := make([]proxrank.Input, len(rels))
		for i, r := range rels {
			sharded, err := proxrank.NewShardedRelation(r, 8, proxrank.HashPartition)
			if err != nil {
				panic(err)
			}
			inputs[i] = sharded
		}
		shardInputs, shardQ = inputs, q
	})
	return shardInputs, shardQ
}

// BenchTopK is the headline batch query at the paper's default operating
// point (2 relations × 400 tuples, K = 10, TBPA).
func BenchTopK(b *testing.B) {
	rels, q := batchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxrank.TopK(q, rels, proxrank.Options{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchTopKCorner is the same query under the corner bound (CBRR): the
// deepest-reading algorithm, hence the largest cross product — the
// workload where combination formation dominates.
func BenchTopKCorner(b *testing.B) {
	rels, q := batchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxrank.TopK(q, rels, proxrank.Options{K: 10, Algorithm: proxrank.CBRR}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchSessionNext measures one incremental Next(1) on a long-lived
// ranked-enumeration session over 2 × 2000 tuples, with the session
// buffer bounded under the spill policy (the open-enumeration
// configuration). The session is rebuilt off the clock when exhausted.
func BenchSessionNext(b *testing.B) {
	rels, q := sessSetup()
	opts := proxrank.Options{K: 10, MaxBuffered: 1024, BufferPolicy: proxrank.BufferSpill}
	inputs := inputsOf(rels)
	sess, err := proxrank.NewQueryInputs(q, inputs, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Next(1); err != nil {
			if errors.Is(err, proxrank.ErrStreamDone) {
				b.StopTimer()
				if sess, err = proxrank.NewQueryInputs(q, inputs, opts); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				continue
			}
			b.Fatal(err)
		}
	}
}

// BenchShardedMerge runs the batch query over hash-sharded relations
// (8 shards each), so every pull crosses the k-way merged shard streams.
func BenchShardedMerge(b *testing.B) {
	inputs, q := shardSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxrank.TopKInputs(q, inputs, proxrank.Options{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// Result is one benchmark measurement of a Snapshot.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// Snapshot is the BENCH_core.json document.
type Snapshot struct {
	GeneratedAt string   `json:"generatedAt"`
	GoOS        string   `json:"goos"`
	GoArch      string   `json:"goarch"`
	NumCPU      int      `json:"numCPU"`
	Benchmarks  []Result `json:"benchmarks"`
}

// Run executes every hot-path benchmark through testing.Benchmark and
// returns the snapshot.
func Run() Snapshot {
	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	for _, spec := range Specs() {
		r := testing.Benchmark(spec.Bench)
		snap.Benchmarks = append(snap.Benchmarks, Result{
			Name:        spec.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return snap
}

// Write renders a snapshot as indented JSON.
func (s Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("benchcore: encoding snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a BENCH_core.json document.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("benchcore: decoding snapshot: %w", err)
	}
	return s, nil
}

// CheckAllocs gates allocation regressions: every benchmark present in
// both snapshots must not exceed the committed allocs/op by more than
// tol (a fraction; 0.10 allows 10% headroom). Allocation counts are the
// one hot-path metric that is deterministic across hardware — unlike
// ns/op, which CI runners make too noisy to gate on — so this is the
// check that keeps the arena'd partial state and the allocation-free
// merge from silently regressing. Benchmarks appearing in only one
// snapshot are skipped (renames and additions are not regressions); all
// violations are reported together.
func CheckAllocs(fresh, committed Snapshot, tol float64) error {
	base := make(map[string]Result, len(committed.Benchmarks))
	for _, b := range committed.Benchmarks {
		base[b.Name] = b
	}
	var bad []string
	for _, b := range fresh.Benchmarks {
		ref, ok := base[b.Name]
		if !ok {
			continue
		}
		// The +1 floor keeps a tiny committed count (0 or 1 allocs/op)
		// from turning one stray allocation into a hard failure.
		limit := int64(float64(ref.AllocsPerOp)*(1+tol)) + 1
		if b.AllocsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op exceeds committed %d (+%.0f%% tolerance → limit %d)",
				b.Name, b.AllocsPerOp, ref.AllocsPerOp, tol*100, limit))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchcore: allocation regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}
