package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func benchPoints(n, d int) []vec.Vector {
	r := rand.New(rand.NewSource(1))
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := vec.New(d)
		for j := range p {
			p[j] = r.NormFloat64() * 100
		}
		pts[i] = p
	}
	return pts
}

func BenchmarkBulkLoad10k(b *testing.B) {
	pts := benchPoints(10_000, 2)
	vals := make([]int, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(2, pts, vals)
	}
}

func BenchmarkInsert10k(b *testing.B) {
	pts := benchPoints(10_000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New[int](2)
		for j, p := range pts {
			tr.Insert(p, j)
		}
	}
}

// The distance-access pattern of the engine: construct once, then consume
// a short prefix of the NN stream.
func BenchmarkNNPrefix100of10k(b *testing.B) {
	pts := benchPoints(10_000, 2)
	vals := make([]int, len(pts))
	tr := BulkLoad(2, pts, vals)
	q := vec.Of(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.NearestNeighbors(q)
		for j := 0; j < 100; j++ {
			if _, _, ok := it.Next(); !ok {
				b.Fatal("stream ended early")
			}
		}
	}
}

func BenchmarkKNearest10(b *testing.B) {
	pts := benchPoints(10_000, 4)
	vals := make([]int, len(pts))
	tr := BulkLoad(4, pts, vals)
	q := vec.New(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNearest(q, 10)
	}
}
