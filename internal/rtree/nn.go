package rtree

import (
	"math"

	"repro/internal/pqueue"
	"repro/internal/vec"
)

// NNIterator streams entries in non-decreasing Euclidean distance from a
// query point using the incremental best-first traversal of Hjaltason &
// Samet. Construction is O(1); each Next pops from a priority queue that
// mixes internal nodes (keyed by MinDist to their MBR) and materialized
// leaf entries (keyed by exact distance).
//
// The iterator is a snapshot-free view: mutating the tree while iterating
// is not supported.
type NNIterator[T any] struct {
	tree  *Tree[T]
	query vec.Vector
	heap  *pqueue.Heap[nnItem[T]]
	seq   uint64
}

type nnItem[T any] struct {
	dist2 float64
	node  *node[T] // non-nil for deferred subtrees
	value T
	rect  Rect
	seq   uint64 // tiebreaker for deterministic order
}

// NearestNeighbors returns an iterator over all entries ordered by distance
// from q.
func (t *Tree[T]) NearestNeighbors(q vec.Vector) *NNIterator[T] {
	if q.Dim() != t.dim {
		panic("rtree: query dimension mismatch")
	}
	it := &NNIterator[T]{
		tree:  t,
		query: q.Clone(),
		heap: pqueue.New(func(a, b nnItem[T]) bool {
			if a.dist2 != b.dist2 {
				return a.dist2 < b.dist2
			}
			// Nodes before entries at equal key so pruning stays correct,
			// then stable by insertion sequence.
			an, bn := a.node != nil, b.node != nil
			if an != bn {
				return an
			}
			return a.seq < b.seq
		}),
	}
	if t.size > 0 {
		it.heap.Push(nnItem[T]{dist2: nodeRect(t.root).MinDist2(q), node: t.root})
	}
	return it
}

// Next returns the next closest entry and its Euclidean distance. ok is
// false once all entries have been produced.
func (it *NNIterator[T]) Next() (value T, dist float64, ok bool) {
	for {
		item, any := it.heap.Pop()
		if !any {
			var zero T
			return zero, 0, false
		}
		if item.node == nil {
			return item.value, math.Sqrt(item.dist2), true
		}
		for _, e := range item.node.entries {
			it.seq++
			child := nnItem[T]{dist2: e.rect.MinDist2(it.query), seq: it.seq}
			if item.node.leaf {
				child.value = e.value
				child.rect = e.rect
			} else {
				child.node = e.child
			}
			it.heap.Push(child)
		}
	}
}

// KNearest returns the k closest point entries to q with their distances
// (fewer if the tree is smaller).
func (t *Tree[T]) KNearest(q vec.Vector, k int) (values []T, dists []float64) {
	it := t.NearestNeighbors(q)
	for len(values) < k {
		v, d, ok := it.Next()
		if !ok {
			break
		}
		values = append(values, v)
		dists = append(dists, d)
	}
	return values, dists
}
