// Package rtree implements an in-memory R-tree over d-dimensional points
// and rectangles, with Guttman quadratic-split insertion, STR bulk loading,
// range search, and the incremental nearest-neighbor traversal of
// Hjaltason & Samet (SIGMOD 1998) — the access paradigm cited by the paper
// as the natural provider of distance-ordered streams. The proximity rank
// join access layer uses it to serve distance-based sequential access
// without materializing a fully sorted relation.
package rtree

import (
	"fmt"

	"repro/internal/vec"
)

// Rect is an axis-aligned hyperrectangle (minimum bounding rectangle).
type Rect struct {
	Min, Max vec.Vector
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p vec.Vector) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// NewRect validates and returns a rectangle.
func NewRect(min, max vec.Vector) (Rect, error) {
	if min.Dim() != max.Dim() {
		return Rect{}, fmt.Errorf("rtree: min dim %d != max dim %d", min.Dim(), max.Dim())
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rtree: min[%d]=%v > max[%d]=%v", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min.Clone(), Max: max.Clone()}, nil
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return r.Min.Dim() }

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p vec.Vector) bool {
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o overlap (boundaries inclusive).
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Max[i] < o.Min[i] || o.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Enlarged returns the smallest rectangle covering both r and o.
func (r Rect) Enlarged(o Rect) Rect {
	min := r.Min.Clone()
	max := r.Max.Clone()
	for i := range min {
		if o.Min[i] < min[i] {
			min[i] = o.Min[i]
		}
		if o.Max[i] > max[i] {
			max[i] = o.Max[i]
		}
	}
	return Rect{Min: min, Max: max}
}

// Volume returns the hypervolume of r.
func (r Rect) Volume() float64 {
	v := 1.0
	for i := range r.Min {
		v *= r.Max[i] - r.Min[i]
	}
	return v
}

// Margin returns the sum of edge lengths (used as a split tiebreaker).
func (r Rect) Margin() float64 {
	var s float64
	for i := range r.Min {
		s += r.Max[i] - r.Min[i]
	}
	return s
}

// Enlargement returns the volume increase needed for r to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Enlarged(o).Volume() - r.Volume()
}

// MinDist2 returns the squared Euclidean distance from p to the closest
// point of r (zero when p is inside). This is the standard R-tree NN
// pruning bound.
func (r Rect) MinDist2(p vec.Vector) float64 {
	var s float64
	for i := range p {
		switch {
		case p[i] < r.Min[i]:
			d := r.Min[i] - p[i]
			s += d * d
		case p[i] > r.Max[i]:
			d := p[i] - r.Max[i]
			s += d * d
		}
	}
	return s
}

// Center returns the midpoint of r.
func (r Rect) Center() vec.Vector {
	c := vec.New(r.Dim())
	for i := range c {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}
