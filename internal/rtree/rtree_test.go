package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestRectBasics(t *testing.T) {
	r, err := NewRect(vec.Of(0, 0), vec.Of(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Volume() != 6 || r.Margin() != 5 {
		t.Fatalf("vol=%v margin=%v", r.Volume(), r.Margin())
	}
	if !r.Contains(vec.Of(1, 1)) || r.Contains(vec.Of(3, 1)) {
		t.Fatal("Contains wrong")
	}
	if !r.Center().Equal(vec.Of(1, 1.5)) {
		t.Fatalf("Center = %v", r.Center())
	}
	o := Rect{Min: vec.Of(1, 1), Max: vec.Of(5, 5)}
	if !r.Intersects(o) {
		t.Fatal("overlapping rects reported disjoint")
	}
	if r.Intersects(Rect{Min: vec.Of(10, 10), Max: vec.Of(11, 11)}) {
		t.Fatal("disjoint rects reported overlapping")
	}
	e := r.Enlarged(o)
	if !e.Min.Equal(vec.Of(0, 0)) || !e.Max.Equal(vec.Of(5, 5)) {
		t.Fatalf("Enlarged = %+v", e)
	}
}

func TestNewRectRejectsInverted(t *testing.T) {
	if _, err := NewRect(vec.Of(1), vec.Of(0)); err == nil {
		t.Fatal("inverted rect accepted")
	}
	if _, err := NewRect(vec.Of(1), vec.Of(0, 1)); err == nil {
		t.Fatal("mismatched dims accepted")
	}
}

func TestRectMinDist2(t *testing.T) {
	r := Rect{Min: vec.Of(0, 0), Max: vec.Of(1, 1)}
	if d := r.MinDist2(vec.Of(0.5, 0.5)); d != 0 {
		t.Fatalf("inside dist = %v", d)
	}
	if d := r.MinDist2(vec.Of(2, 0.5)); d != 1 {
		t.Fatalf("side dist = %v", d)
	}
	if d := r.MinDist2(vec.Of(2, 2)); d != 2 {
		t.Fatalf("corner dist = %v", d)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New[int](2)
	pts := []vec.Vector{
		vec.Of(0, 0), vec.Of(1, 1), vec.Of(2, 2), vec.Of(5, 5), vec.Of(-1, 3),
	}
	for i, p := range pts {
		tr.Insert(p, i)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []int
	tr.SearchIntersect(Rect{Min: vec.Of(0, 0), Max: vec.Of(2.5, 2.5)}, func(_ Rect, v int) bool {
		got = append(got, v)
		return true
	})
	sort.Ints(got)
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("search got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("search got %v, want %v", got, want)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New[int](1)
	for i := 0; i < 100; i++ {
		tr.Insert(vec.Of(float64(i)), i)
	}
	count := 0
	tr.SearchIntersect(Rect{Min: vec.Of(0), Max: vec.Of(99)}, func(_ Rect, _ int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestInsertManySplits(t *testing.T) {
	tr := New[int](2)
	r := rand.New(rand.NewSource(1))
	n := 500
	for i := 0; i < n; i++ {
		tr.Insert(vec.Of(r.Float64()*100, r.Float64()*100), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("expected splits; height = %d", tr.Height())
	}
	// Every value must be findable.
	seen := make([]bool, n)
	tr.SearchIntersect(Rect{Min: vec.Of(-1, -1), Max: vec.Of(101, 101)}, func(_ Rect, v int) bool {
		seen[v] = true
		return true
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost after splits", i)
		}
	}
}

func TestBulkLoadAndKNearest(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 300
	pts := make([]vec.Vector, n)
	vals := make([]int, n)
	for i := range pts {
		pts[i] = vec.Of(r.NormFloat64()*10, r.NormFloat64()*10, r.NormFloat64()*10)
		vals[i] = i
	}
	tr := BulkLoad(3, pts, vals)
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	q := vec.Of(0, 0, 0)
	got, dists := tr.KNearest(q, 10)
	// Brute force.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pts[idx[a]].Dist(q) < pts[idx[b]].Dist(q) })
	for i := 0; i < 10; i++ {
		if math.Abs(dists[i]-pts[idx[i]].Dist(q)) > 1e-12 {
			t.Fatalf("kNN #%d: got %d at %v, want %d at %v", i, got[i], dists[i], idx[i], pts[idx[i]].Dist(q))
		}
	}
}

func TestNNIteratorEmptyAndExhaustion(t *testing.T) {
	tr := New[string](2)
	it := tr.NearestNeighbors(vec.Of(0, 0))
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty tree yielded an entry")
	}
	tr.Insert(vec.Of(1, 0), "a")
	it = tr.NearestNeighbors(vec.Of(0, 0))
	v, d, ok := it.Next()
	if !ok || v != "a" || math.Abs(d-1) > 1e-12 {
		t.Fatalf("Next = %v %v %v", v, d, ok)
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator yielded an entry")
	}
}

// Property: the incremental NN iterator emits every point exactly once, in
// exactly brute-force distance order, for both inserted and bulk-loaded
// trees across dimensions.
func TestQuickNNMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		n := 1 + r.Intn(120)
		pts := make([]vec.Vector, n)
		vals := make([]int, n)
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = r.NormFloat64() * 5
			}
			pts[i] = p
			vals[i] = i
		}
		q := vec.New(d)
		for j := range q {
			q[j] = r.NormFloat64() * 5
		}
		var tr *Tree[int]
		if seed%2 == 0 {
			tr = BulkLoad(d, pts, vals)
		} else {
			tr = New[int](d)
			for i, p := range pts {
				tr.Insert(p, i)
			}
		}
		it := tr.NearestNeighbors(q)
		prev := -1.0
		seen := make([]bool, n)
		count := 0
		for {
			v, dist, ok := it.Next()
			if !ok {
				break
			}
			if dist < prev-1e-12 {
				return false // out of order
			}
			if seen[v] {
				return false // duplicate
			}
			if math.Abs(dist-pts[v].Dist(q)) > 1e-9 {
				return false // wrong distance
			}
			seen[v] = true
			prev = dist
			count++
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: range search agrees with a brute-force filter.
func TestQuickSearchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(3)
		n := r.Intn(150)
		tr := New[int](d)
		pts := make([]vec.Vector, n)
		for i := 0; i < n; i++ {
			p := vec.New(d)
			for j := range p {
				p[j] = r.Float64() * 10
			}
			pts[i] = p
			tr.Insert(p, i)
		}
		lo, hi := vec.New(d), vec.New(d)
		for j := 0; j < d; j++ {
			a, b := r.Float64()*10, r.Float64()*10
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		q := Rect{Min: lo, Max: hi}
		got := map[int]bool{}
		tr.SearchIntersect(q, func(_ Rect, v int) bool { got[v] = true; return true })
		for i, p := range pts {
			if q.Contains(p) != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bulk load did not panic")
		}
	}()
	BulkLoad(2, []vec.Vector{vec.Of(0, 0)}, []int{})
}

func TestInsertWrongDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dim insert did not panic")
		}
	}()
	New[int](2).Insert(vec.Of(1), 0)
}
