package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestDeleteBasic(t *testing.T) {
	tr := New[int](2)
	tr.Insert(vec.Of(1, 1), 10)
	tr.Insert(vec.Of(2, 2), 20)
	if !tr.Delete(vec.Of(1, 1), nil) {
		t.Fatal("existing entry not deleted")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Delete(vec.Of(1, 1), nil) {
		t.Fatal("deleted twice")
	}
	if tr.Delete(vec.Of(9, 9), nil) {
		t.Fatal("deleted missing point")
	}
	if tr.Delete(vec.Of(1), nil) {
		t.Fatal("deleted with wrong dimension")
	}
	// Remaining entry still findable.
	vals, _ := tr.KNearest(vec.Of(0, 0), 1)
	if len(vals) != 1 || vals[0] != 20 {
		t.Fatalf("KNearest after delete = %v", vals)
	}
}

func TestDeleteWithMatcher(t *testing.T) {
	tr := New[int](1)
	tr.Insert(vec.Of(5), 1)
	tr.Insert(vec.Of(5), 2) // same location, different value
	if tr.Delete(vec.Of(5), func(v int) bool { return v == 3 }) {
		t.Fatal("matcher mismatch deleted")
	}
	if !tr.Delete(vec.Of(5), func(v int) bool { return v == 2 }) {
		t.Fatal("matching entry not deleted")
	}
	vals, _ := tr.KNearest(vec.Of(5), 2)
	if len(vals) != 1 || vals[0] != 1 {
		t.Fatalf("remaining = %v", vals)
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tr := New[int](2)
	for i := 0; i < 40; i++ {
		tr.Insert(vec.Of(float64(i), float64(i%7)), i)
	}
	for i := 0; i < 40; i++ {
		if !tr.Delete(vec.Of(float64(i), float64(i%7)), nil) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if _, _, ok := tr.NearestNeighbors(vec.Of(0, 0)).Next(); ok {
		t.Fatal("empty tree yields entries")
	}
	// Tree stays usable.
	tr.Insert(vec.Of(1, 1), 99)
	vals, _ := tr.KNearest(vec.Of(1, 1), 1)
	if len(vals) != 1 || vals[0] != 99 {
		t.Fatal("tree unusable after emptying")
	}
}

func TestDeleteCollapsesRoot(t *testing.T) {
	tr := New[int](1)
	n := 300
	for i := 0; i < n; i++ {
		tr.Insert(vec.Of(float64(i)), i)
	}
	tall := tr.Height()
	if tall < 2 {
		t.Fatal("tree never grew")
	}
	for i := 0; i < n-1; i++ {
		if !tr.Delete(vec.Of(float64(i)), nil) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Height() >= tall {
		t.Fatalf("height %d did not shrink from %d", tr.Height(), tall)
	}
	vals, _ := tr.KNearest(vec.Of(0), 1)
	if len(vals) != 1 || vals[0] != n-1 {
		t.Fatalf("survivor = %v", vals)
	}
}

// Property: after deleting a random subset, the NN stream over the
// remainder matches brute force exactly.
func TestQuickDeleteThenNN(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(3)
		n := 10 + r.Intn(120)
		pts := make([]vec.Vector, n)
		tr := New[int](d)
		for i := range pts {
			p := vec.New(d)
			for j := range p {
				p[j] = math.Round(r.NormFloat64()*50) / 10 // discrete coords, some duplicates
			}
			pts[i] = p
			tr.Insert(p, i)
		}
		alive := map[int]bool{}
		for i := range pts {
			alive[i] = true
		}
		for del := 0; del < n/2; del++ {
			i := r.Intn(n)
			if !alive[i] {
				continue
			}
			if !tr.Delete(pts[i], func(v int) bool { return v == i }) {
				return false
			}
			alive[i] = false
		}
		liveCount := 0
		for _, a := range alive {
			if a {
				liveCount++
			}
		}
		if tr.Len() != liveCount {
			return false
		}
		q := vec.New(d)
		for j := range q {
			q[j] = r.NormFloat64() * 3
		}
		it := tr.NearestNeighbors(q)
		prev := -1.0
		seen := 0
		for {
			v, dist, ok := it.Next()
			if !ok {
				break
			}
			if !alive[v] || dist < prev-1e-12 {
				return false
			}
			if math.Abs(dist-pts[v].Dist(q)) > 1e-9 {
				return false
			}
			prev = dist
			seen++
		}
		return seen == liveCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
