package rtree

import "repro/internal/vec"

// Delete removes one point entry located exactly at p whose value
// satisfies match (pass nil to match any value there). It reports whether
// an entry was removed. Underflowing nodes are condensed: their surviving
// entries are reinserted, and the root is collapsed when it has a single
// child, following Guttman's CondenseTree.
func (t *Tree[T]) Delete(p vec.Vector, match func(T) bool) bool {
	if t.size == 0 || p.Dim() != t.dim {
		return false
	}
	var orphans []entry[T]
	deleted := t.deleteRec(t.root, p, match, &orphans)
	if !deleted {
		return false
	}
	t.size--
	// Collapse a root that lost all entries or chains to a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if t.root.leaf && len(t.root.entries) == 0 {
		t.height = 1
	}
	// Reinsert orphaned leaf entries.
	for _, e := range orphans {
		t.size--
		t.InsertRect(e.rect, e.value)
	}
	return true
}

// deleteRec descends into subtrees containing p, removes the entry, and
// condenses underflowing children, accumulating their leaf entries into
// orphans.
func (t *Tree[T]) deleteRec(n *node[T], p vec.Vector, match func(T) bool, orphans *[]entry[T]) bool {
	if n.leaf {
		for i, e := range n.entries {
			if !e.rect.Min.Equal(p) || !e.rect.Max.Equal(p) {
				continue
			}
			if match != nil && !match(e.value) {
				continue
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			return true
		}
		return false
	}
	for i, e := range n.entries {
		if !e.rect.Contains(p) {
			continue
		}
		if !t.deleteRec(e.child, p, match, orphans) {
			continue
		}
		child := e.child
		if len(child.entries) < t.minEntries {
			// Condense: drop the child and orphan its contents.
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			collectLeafEntries(child, orphans)
		} else {
			n.entries[i].rect = nodeRect(child)
		}
		return true
	}
	return false
}

func collectLeafEntries[T any](n *node[T], out *[]entry[T]) {
	if n.leaf {
		*out = append(*out, n.entries...)
		return
	}
	for _, e := range n.entries {
		collectLeafEntries(e.child, out)
	}
}
