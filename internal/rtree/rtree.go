package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vec"
)

const (
	defaultMaxEntries = 16
	defaultMinEntries = 4
)

// Tree is an R-tree mapping rectangles (or points) to payloads of type T.
// The zero value is not usable; construct with New or BulkLoad.
type Tree[T any] struct {
	dim        int
	root       *node[T]
	size       int
	maxEntries int
	minEntries int
	height     int
}

type entry[T any] struct {
	rect  Rect
	child *node[T] // non-nil for inner entries
	value T        // payload for leaf entries
}

type node[T any] struct {
	leaf    bool
	entries []entry[T]
}

// New returns an empty R-tree over R^dim.
func New[T any](dim int) *Tree[T] {
	if dim <= 0 {
		panic("rtree: dimension must be positive")
	}
	return &Tree[T]{
		dim:        dim,
		root:       &node[T]{leaf: true},
		maxEntries: defaultMaxEntries,
		minEntries: defaultMinEntries,
		height:     1,
	}
}

// Len returns the number of stored entries.
func (t *Tree[T]) Len() int { return t.size }

// Dim returns the tree's dimensionality.
func (t *Tree[T]) Dim() int { return t.dim }

// Height returns the number of levels (1 for a leaf-only tree).
func (t *Tree[T]) Height() int { return t.height }

// Insert adds a point entry.
func (t *Tree[T]) Insert(p vec.Vector, value T) {
	t.InsertRect(PointRect(p), value)
}

// InsertRect adds a rectangle entry using Guttman's algorithm with
// quadratic split.
func (t *Tree[T]) InsertRect(r Rect, value T) {
	if r.Dim() != t.dim {
		panic(fmt.Sprintf("rtree: insert dim %d into %d-dim tree", r.Dim(), t.dim))
	}
	e := entry[T]{rect: r, value: value}
	split := t.insert(t.root, e, t.height)
	if split != nil {
		// Root split: grow the tree.
		oldRoot := t.root
		t.root = &node[T]{leaf: false, entries: []entry[T]{
			{rect: nodeRect(oldRoot), child: oldRoot},
			{rect: nodeRect(split), child: split},
		}}
		t.height++
	}
	t.size++
}

// insert descends to a leaf (level counts down from t.height) and returns a
// new sibling node if the visited node was split.
func (t *Tree[T]) insert(n *node[T], e entry[T], level int) *node[T] {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
		return nil
	}
	i := chooseSubtree(n, e.rect)
	child := n.entries[i].child
	split := t.insert(child, e, level-1)
	n.entries[i].rect = nodeRect(child)
	if split != nil {
		n.entries = append(n.entries, entry[T]{rect: nodeRect(split), child: split})
		if len(n.entries) > t.maxEntries {
			return t.splitNode(n)
		}
	}
	return nil
}

// chooseSubtree picks the child whose MBR needs least enlargement
// (ties: smallest volume, then lowest index).
func chooseSubtree[T any](n *node[T], r Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestVol := math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Enlargement(r)
		vol := e.rect.Volume()
		if enl < bestEnl-1e-15 || (enl <= bestEnl+1e-15 && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// splitNode performs Guttman's quadratic split in place, returning the new
// sibling that receives part of the entries.
func (t *Tree[T]) splitNode(n *node[T]) *node[T] {
	entries := n.entries
	// Pick seeds: the pair wasting the most volume if grouped together.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.Enlarged(entries[j].rect).Volume() -
				entries[i].rect.Volume() - entries[j].rect.Volume()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	groupA := []entry[T]{entries[seedA]}
	groupB := []entry[T]{entries[seedB]}
	rectA, rectB := entries[seedA].rect, entries[seedB].rect
	rest := make([]entry[T], 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group must take all remaining to reach minEntries, do so.
		if len(groupA)+len(rest) <= t.minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				rectA = rectA.Enlarged(e.rect)
			}
			break
		}
		if len(groupB)+len(rest) <= t.minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				rectB = rectB.Enlarged(e.rect)
			}
			break
		}
		// PickNext: entry with greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			dA := rectA.Enlargement(e.rect)
			dB := rectB.Enlargement(e.rect)
			if diff := math.Abs(dA - dB); diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		dA := rectA.Enlargement(e.rect)
		dB := rectB.Enlargement(e.rect)
		if dA < dB || (dA == dB && rectA.Volume() <= rectB.Volume()) {
			groupA = append(groupA, e)
			rectA = rectA.Enlarged(e.rect)
		} else {
			groupB = append(groupB, e)
			rectB = rectB.Enlarged(e.rect)
		}
	}
	n.entries = groupA
	return &node[T]{leaf: n.leaf, entries: groupB}
}

func nodeRect[T any](n *node[T]) Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Enlarged(e.rect)
	}
	return r
}

// SearchIntersect invokes fn for every entry whose rectangle intersects q;
// fn returning false stops the search early.
func (t *Tree[T]) SearchIntersect(q Rect, fn func(Rect, T) bool) {
	if t.size == 0 {
		return
	}
	t.search(t.root, q, fn)
}

func (t *Tree[T]) search(n *node[T], q Rect, fn func(Rect, T) bool) bool {
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.value) {
				return false
			}
		} else if !t.search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// BulkLoad builds a tree over point data with the Sort-Tile-Recursive (STR)
// algorithm. pts and values must have equal length.
func BulkLoad[T any](dim int, pts []vec.Vector, values []T) *Tree[T] {
	if len(pts) != len(values) {
		panic("rtree: pts/values length mismatch")
	}
	t := New[T](dim)
	if len(pts) == 0 {
		return t
	}
	leafEntries := make([]entry[T], len(pts))
	for i, p := range pts {
		if p.Dim() != dim {
			panic(fmt.Sprintf("rtree: point %d has dim %d, want %d", i, p.Dim(), dim))
		}
		leafEntries[i] = entry[T]{rect: PointRect(p), value: values[i]}
	}
	strSort(leafEntries, 0, dim, t.maxEntries)
	// Pack leaves.
	level := packLevel(leafEntries, t.maxEntries, true)
	t.height = 1
	// Pack upper levels until a single root remains.
	for len(level) > 1 {
		upper := make([]entry[T], len(level))
		for i, n := range level {
			upper[i] = entry[T]{rect: nodeRect(n), child: n}
		}
		strSort(upper, 0, dim, t.maxEntries)
		level = packLevel(upper, t.maxEntries, false)
		t.height++
	}
	t.root = level[0]
	t.size = len(pts)
	return t
}

// strSort orders entries by the STR tiling recursion on rect centers.
func strSort[T any](entries []entry[T], axis, dim, capacity int) {
	if len(entries) <= capacity || axis >= dim {
		return
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].rect.Center()[axis] < entries[j].rect.Center()[axis]
	})
	// Number of slabs along this axis.
	nLeaves := (len(entries) + capacity - 1) / capacity
	slabs := int(math.Ceil(math.Pow(float64(nLeaves), 1/float64(dim-axis))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		strSort(entries[start:end], axis+1, dim, capacity)
	}
}

func packLevel[T any](entries []entry[T], capacity int, leaf bool) []*node[T] {
	var nodes []*node[T]
	for start := 0; start < len(entries); start += capacity {
		end := start + capacity
		if end > len(entries) {
			end = len(entries)
		}
		chunk := make([]entry[T], end-start)
		copy(chunk, entries[start:end])
		nodes = append(nodes, &node[T]{leaf: leaf, entries: chunk})
	}
	return nodes
}
