// Package broker decouples event production from event delivery: a
// Topic is a single-producer, multi-subscriber buffer of ordered events
// that the producer fills at its own speed and every subscriber drains
// at its own, with a bounded window on how far delivery may lag
// production before an overflow policy intervenes.
//
// The service layer uses one Topic per in-flight streamed query: the
// engine publishes each certified result the moment it exists and runs
// to completion at engine speed (releasing its worker slot), while the
// leader's sink, coalesced followers attaching mid-run, and any other
// subscriber consume independently. A subscriber always starts from
// event zero — the full history is retained for the Topic's lifetime —
// so a follower that attaches mid-run replays the certified prefix and
// then tails live events. History is bounded in practice because a
// streamed query publishes at most K result events plus one summary.
//
// Overflow: Capacity bounds how many events the producer may publish
// beyond what a subscriber has consumed, measured from the subscriber's
// attach point (replaying old history never throttles the producer; only
// falling behind on events published after attach does). When a
// subscriber exhausts its window, its policy decides:
//
//   - PolicyBlock: Publish waits for the subscriber to catch up, charging
//     the wait against that subscriber's cumulative block budget (the
//     Topic's block timeout); once the budget is spent the subscriber is
//     dropped. The budget is cumulative across the whole stream — a
//     consumer that drip-feeds just fast enough to stay at the window
//     edge cannot throttle the producer indefinitely, it can delay the
//     stream by at most the budget in total.
//   - PolicyDrop: the subscriber is dropped immediately. The producer
//     never waits.
//
// A dropped subscriber's Next returns ErrSlowSubscriber; everyone else
// is unaffected. Dropping is the safety valve that keeps one stalled
// consumer from holding the producer (and whatever resources it pins)
// hostage.
package broker

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Policy selects what happens to a subscriber that has exhausted its lag
// window when the producer wants to publish.
type Policy int8

const (
	// PolicyBlock makes Publish wait for the subscriber to catch up,
	// within the subscriber's cumulative block budget (the Topic's block
	// timeout), before dropping it.
	PolicyBlock Policy = iota
	// PolicyDrop drops the subscriber immediately, never delaying the
	// producer.
	PolicyDrop
)

// String returns the canonical spelling ("block" or "drop").
func (p Policy) String() string {
	if p == PolicyDrop {
		return "drop"
	}
	return "block"
}

// ErrSlowSubscriber is returned by Sub.Next after the subscriber was
// dropped for exceeding its lag window.
var ErrSlowSubscriber = errors.New("broker: subscriber dropped: consuming slower than the delivery buffer allows")

// ErrDone is returned by Sub.Next after every published event has been
// delivered and the Topic was closed without error.
var ErrDone = errors.New("broker: topic done")

// Topic is one replayable event log. Publish and Close must be called
// from a single producer goroutine; Subscribe and Sub methods are safe
// from any goroutine.
type Topic[T any] struct {
	mu sync.Mutex
	// arrived is closed and replaced whenever state a subscriber may be
	// waiting on changes (new event, close, drop).
	arrived chan struct{}
	// advanced is closed and replaced whenever state the producer may be
	// waiting on changes (a subscriber consumed an event or detached).
	advanced chan struct{}

	events   []T
	capacity int
	blockFor time.Duration
	closed   bool
	err      error // terminal error, valid once closed
	// producerWaiting gates wakeProducer: consumers only pay the
	// close+remake of advanced when Publish is actually parked on a
	// laggard, keeping the common uncontended path signal-free.
	producerWaiting bool

	subs    map[*Sub[T]]struct{}
	dropped int // subscribers removed by overflow, for stats

	// ins, when attached, receives lifecycle telemetry (subscriber
	// counts, lag, blocked time, drops). Nil costs nothing.
	ins *Instruments
}

// DefaultCapacity is the lag window used when New is given a
// non-positive capacity.
const DefaultCapacity = 64

// DefaultBlockTimeout is the publish wait used for PolicyBlock
// subscribers when New is given a non-positive timeout.
const DefaultBlockTimeout = time.Second

// New returns an empty Topic. capacity bounds each subscriber's lag
// window (<=0 takes DefaultCapacity); blockFor is each PolicyBlock
// subscriber's cumulative block budget — the total time Publish will
// ever wait on it across the Topic's lifetime — before it is dropped
// (<=0 takes DefaultBlockTimeout).
func New[T any](capacity int, blockFor time.Duration) *Topic[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if blockFor <= 0 {
		blockFor = DefaultBlockTimeout
	}
	return &Topic[T]{
		arrived:  make(chan struct{}),
		advanced: make(chan struct{}),
		capacity: capacity,
		blockFor: blockFor,
		subs:     make(map[*Sub[T]]struct{}),
	}
}

// Sub is one subscription: an independent cursor over the Topic's
// events, starting at event zero.
type Sub[T any] struct {
	topic  *Topic[T]
	policy Policy
	cursor int
	base   int // len(events) at attach: lag is measured past this point
	// blockSpent is how much of the cumulative block budget this
	// subscriber has consumed by stalling the producer.
	blockSpent time.Duration
	dropped    bool
	gone       bool // canceled by the subscriber itself
}

// Subscribe attaches a new subscriber that will observe every event from
// the beginning of the Topic, then live events as they are published.
// Subscribing to a closed Topic is valid: the subscriber replays the
// final history and then sees the terminal outcome.
func (t *Topic[T]) Subscribe(policy Policy) *Sub[T] {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Sub[T]{topic: t, policy: policy, base: len(t.events)}
	if !t.closed {
		t.subs[s] = struct{}{}
		if t.ins != nil {
			t.ins.Subscribers.Add(1)
		}
	}
	return s
}

// lag is the number of post-attach events the subscriber has not
// consumed yet. Callers hold t.mu.
func (s *Sub[T]) lag(published int) int {
	c := s.cursor
	if c < s.base {
		c = s.base
	}
	return published - c
}

// Publish appends one event, enforcing every live subscriber's lag
// window first: PolicyDrop laggards are dropped immediately, PolicyBlock
// laggards are waited on — the wait charged against each laggard's
// cumulative block budget — and dropped once their budget is spent.
// Budgets are cumulative across the Topic's lifetime, so a subscriber
// that repeatedly catches up at the last instant still delays the
// producer by at most blockFor in total, and concurrent laggards are
// charged in parallel rather than serially. Publish itself never fails;
// it returns the number of subscribers dropped by this call.
func (t *Topic[T]) Publish(ev T) int {
	t.mu.Lock()
	droppedBefore := t.dropped
	for {
		// Laggards entitled to throttle this publish, and the smallest
		// remaining budget among them (the longest this wait may last).
		var blocking []*Sub[T]
		var minRemain time.Duration
		for s := range t.subs {
			if s.lag(len(t.events)) < t.capacity {
				continue
			}
			remain := t.blockFor - s.blockSpent
			if s.policy == PolicyDrop || remain <= 0 {
				t.drop(s)
				continue
			}
			if len(blocking) == 0 || remain < minRemain {
				minRemain = remain
			}
			blocking = append(blocking, s)
		}
		if len(blocking) == 0 {
			break
		}
		t.producerWaiting = true
		advanced := t.advanced
		t.mu.Unlock()
		timer := time.NewTimer(minRemain)
		start := time.Now()
		select {
		case <-advanced:
		case <-timer.C:
		}
		timer.Stop()
		elapsed := time.Since(start)
		t.mu.Lock()
		t.producerWaiting = false
		for _, s := range blocking {
			s.blockSpent += elapsed
		}
		if t.ins != nil {
			t.ins.BlockedNanos.Add(int64(elapsed))
			if t.ins.ObserveBlocked != nil {
				t.ins.ObserveBlocked(elapsed)
			}
		}
	}
	t.events = append(t.events, ev)
	t.notePeakLag()
	t.wakeSubscribers()
	n := t.dropped - droppedBefore
	t.mu.Unlock()
	return n
}

// drop removes a subscriber for exceeding its window. Callers hold t.mu.
func (t *Topic[T]) drop(s *Sub[T]) {
	if _, ok := t.subs[s]; !ok {
		return
	}
	delete(t.subs, s)
	s.dropped = true
	t.dropped++
	if t.ins != nil {
		t.ins.Subscribers.Add(-1)
		if s.policy == PolicyDrop {
			t.ins.DroppedDrop.Add(1)
		} else {
			t.ins.DroppedBlock.Add(1)
		}
	}
	t.wakeSubscribers()
}

// wakeSubscribers signals every waiting subscriber. Callers hold t.mu.
func (t *Topic[T]) wakeSubscribers() {
	close(t.arrived)
	t.arrived = make(chan struct{})
}

// wakeProducer signals a waiting Publish, if any. Callers hold t.mu.
func (t *Topic[T]) wakeProducer() {
	if !t.producerWaiting {
		return
	}
	close(t.advanced)
	t.advanced = make(chan struct{})
}

// Close marks the Topic complete with a terminal outcome. Subscribers
// drain the remaining events and then observe err (nil maps to ErrDone).
// The event history stays readable: late subscribers still replay it.
func (t *Topic[T]) Close(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	t.err = err
	t.wakeSubscribers()
}

// Dropped returns how many subscribers overflow has removed so far.
func (t *Topic[T]) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of events published so far.
func (t *Topic[T]) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Next returns the subscriber's next event, waiting for the producer if
// none is pending. It ends with ErrDone after a clean Close, the Close
// error after a failed one, ErrSlowSubscriber if the subscriber was
// dropped, or ctx.Err() if the wait is abandoned (the subscription stays
// valid and a later Next resumes).
func (s *Sub[T]) Next(ctx context.Context) (T, error) {
	var zero T
	t := s.topic
	for {
		t.mu.Lock()
		switch {
		case s.dropped:
			t.mu.Unlock()
			return zero, ErrSlowSubscriber
		case s.cursor < len(t.events):
			ev := t.events[s.cursor]
			s.cursor++
			if !s.dropped && !s.gone {
				t.wakeProducer()
			}
			t.mu.Unlock()
			return ev, nil
		case t.closed:
			err := t.err
			t.mu.Unlock()
			if err == nil {
				err = ErrDone
			}
			return zero, err
		}
		arrived := t.arrived
		t.mu.Unlock()
		select {
		case <-arrived:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// Cancel detaches the subscriber so it no longer constrains the
// producer. It is idempotent and safe after Close; a canceled subscriber
// may keep reading already-published history but never blocks anyone.
func (s *Sub[T]) Cancel() {
	t := s.topic
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subs[s]; ok {
		delete(t.subs, s)
		if t.ins != nil {
			t.ins.Subscribers.Add(-1)
		}
		t.wakeProducer()
	}
	s.gone = true
}
