package broker

import (
	"sync/atomic"
	"time"
)

// Instruments collects delivery telemetry across every Topic it is
// attached to. The service layer owns one Instruments for all streamed
// queries and wires the counters into its metrics registry and stats
// snapshot; the broker itself stays dependency-free — it only bumps
// atomics and calls the optional observation hooks.
//
// All counter fields are safe for concurrent use. The hook functions
// must be set before the first Attach and never changed afterwards;
// they are called with the Topic's lock held and must be cheap and
// non-blocking (a histogram observation, not I/O).
type Instruments struct {
	// Subscribers is the number of currently attached subscribers across
	// all instrumented topics (a gauge: Subscribe adds, Cancel and
	// overflow drops subtract).
	Subscribers atomic.Int64
	// PeakLag is the largest post-attach lag (events published but not
	// consumed) any subscriber has reached.
	PeakLag atomic.Int64
	// BlockedNanos accumulates the producer time Publish spent parked on
	// block-policy laggards.
	BlockedNanos atomic.Int64
	// DroppedBlock and DroppedDrop count subscribers removed by
	// overflow, split by their policy: a DroppedBlock subscriber spent
	// its whole block budget first, a DroppedDrop one was removed the
	// moment it lagged a full window.
	DroppedBlock atomic.Int64
	DroppedDrop  atomic.Int64

	// ObserveLag, when set, receives the maximum subscriber lag after
	// each publish — the send-pacing signal.
	ObserveLag func(lag int)
	// ObserveBlocked, when set, receives each blocked-publish wait.
	ObserveBlocked func(d time.Duration)
}

// Attach wires ins into the Topic's lifecycle events. Call it before
// the Topic is shared; passing nil is a no-op.
func (t *Topic[T]) Attach(ins *Instruments) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ins = ins
}

// maxLag reports the largest post-attach lag among live subscribers.
// Callers hold t.mu.
func (t *Topic[T]) maxLag() int {
	max := 0
	for s := range t.subs {
		if l := s.lag(len(t.events)); l > max {
			max = l
		}
	}
	return max
}

// notePeakLag folds the current maximum lag into the instruments.
// Callers hold t.mu.
func (t *Topic[T]) notePeakLag() {
	if t.ins == nil {
		return
	}
	lag := t.maxLag()
	for {
		cur := t.ins.PeakLag.Load()
		if int64(lag) <= cur || t.ins.PeakLag.CompareAndSwap(cur, int64(lag)) {
			break
		}
	}
	if t.ins.ObserveLag != nil {
		t.ins.ObserveLag(lag)
	}
}
