package broker

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// drain consumes the subscription to its terminal error, returning the
// events seen.
func drain(t *testing.T, s *Sub[int]) ([]int, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out []int
	for {
		ev, err := s.Next(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// TestReplayThenTail: a subscriber attached mid-run sees the full prefix
// and then the live tail, in order.
func TestReplayThenTail(t *testing.T) {
	top := New[int](8, time.Second)
	for i := 0; i < 5; i++ {
		top.Publish(i)
	}
	late := top.Subscribe(PolicyBlock)
	for i := 5; i < 10; i++ {
		top.Publish(i)
	}
	top.Close(nil)
	got, err := drain(t, late)
	if !errors.Is(err, ErrDone) {
		t.Fatalf("terminal error %v, want ErrDone", err)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d events, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d = %d, want %d", i, v, i)
		}
	}
}

// TestSubscribeAfterClose: the history outlives the producer.
func TestSubscribeAfterClose(t *testing.T) {
	top := New[int](4, time.Second)
	top.Publish(1)
	top.Publish(2)
	top.Close(nil)
	got, err := drain(t, top.Subscribe(PolicyDrop))
	if !errors.Is(err, ErrDone) || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestCloseError: subscribers drain buffered events first, then observe
// the terminal error.
func TestCloseError(t *testing.T) {
	boom := errors.New("boom")
	top := New[int](4, time.Second)
	s := top.Subscribe(PolicyBlock)
	top.Publish(7)
	top.Close(boom)
	got, err := drain(t, s)
	if !errors.Is(err, boom) {
		t.Fatalf("terminal error %v, want boom", err)
	}
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("events before error: %v", got)
	}
}

// TestDropPolicyNeverBlocksProducer: with a stalled PolicyDrop
// subscriber, every Publish returns immediately; the laggard is dropped
// once it exhausts its window and its Next reports ErrSlowSubscriber.
func TestDropPolicyNeverBlocksProducer(t *testing.T) {
	const capacity = 4
	top := New[int](capacity, time.Minute) // block timeout must never matter
	stalled := top.Subscribe(PolicyDrop)
	start := time.Now()
	dropped := 0
	for i := 0; i < capacity+3; i++ {
		dropped += top.Publish(i)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("publishing took %v with a drop-policy laggard", el)
	}
	if dropped != 1 || top.Dropped() != 1 {
		t.Fatalf("dropped %d (topic %d), want 1", dropped, top.Dropped())
	}
	ctx := context.Background()
	// The dropped subscriber may still be holding unread events, but its
	// guarantee is gone: Next reports the drop.
	if _, err := stalled.Next(ctx); !errors.Is(err, ErrSlowSubscriber) {
		t.Fatalf("stalled Next: %v, want ErrSlowSubscriber", err)
	}
}

// TestBlockPolicyWaitsThenDrops: a PolicyBlock laggard delays Publish up
// to the block timeout, after which it is dropped and the producer runs
// free.
func TestBlockPolicyWaitsThenDrops(t *testing.T) {
	const capacity = 2
	top := New[int](capacity, 50*time.Millisecond)
	stalled := top.Subscribe(PolicyBlock)
	for i := 0; i < capacity; i++ {
		if n := top.Publish(i); n != 0 {
			t.Fatalf("publish %d dropped %d subscribers inside the window", i, n)
		}
	}
	start := time.Now()
	n := top.Publish(capacity) // window exhausted: must wait, then drop
	el := time.Since(start)
	if n != 1 {
		t.Fatalf("over-window publish dropped %d, want 1", n)
	}
	if el < 40*time.Millisecond {
		t.Fatalf("producer waited only %v, want ~50ms block", el)
	}
	if el > 2*time.Second {
		t.Fatalf("producer waited %v, want ~50ms", el)
	}
	// Subsequent publishes are unconstrained.
	start = time.Now()
	for i := 0; i < 100; i++ {
		top.Publish(i)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("post-drop publishing took %v", el)
	}
	if _, err := stalled.Next(context.Background()); !errors.Is(err, ErrSlowSubscriber) {
		t.Fatalf("stalled Next: %v", err)
	}
}

// TestBlockBudgetIsCumulative: a drip-feeding subscriber that always
// catches up at the last instant cannot throttle the producer forever —
// the block budget is charged across waits, so the total producer delay
// is bounded by ~blockFor regardless of how many events remain.
func TestBlockBudgetIsCumulative(t *testing.T) {
	const capacity = 2
	const budget = 120 * time.Millisecond
	top := New[int](capacity, budget)
	drip := top.Subscribe(PolicyBlock)
	// The consumer reads exactly one event each time the producer has
	// been parked for a while — the adversarial "just fast enough" pace.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, err := drip.Next(ctx)
			cancel()
			if err != nil {
				return
			}
		}
	}()
	start := time.Now()
	for i := 0; i < 60; i++ { // far more events than the budget could cover per-publish
		top.Publish(i)
	}
	elapsed := time.Since(start)
	// Per-publish budgets would allow ~60×120ms = 7.2s of stalling; the
	// cumulative budget caps the total near `budget` (generous slack for
	// scheduling noise).
	if elapsed > 10*budget {
		t.Fatalf("60 publishes took %v against a drip-feeder; cumulative budget %v not enforced", elapsed, budget)
	}
	if top.Dropped() != 1 {
		t.Fatalf("drip-feeder not dropped after exhausting its budget (dropped=%d)", top.Dropped())
	}
}

// TestBlockPolicyCatchUpUnblocks: a blocked Publish resumes as soon as
// the laggard consumes, without waiting for the deadline.
func TestBlockPolicyCatchUpUnblocks(t *testing.T) {
	const capacity = 2
	top := New[int](capacity, 10*time.Second) // deadline must not be what unblocks
	slow := top.Subscribe(PolicyBlock)
	top.Publish(0)
	top.Publish(1)
	done := make(chan int, 1)
	go func() { done <- top.Publish(2) }()
	select {
	case <-done:
		t.Fatal("over-window publish returned before the laggard consumed")
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := slow.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-done:
		if n != 0 {
			t.Fatalf("publish dropped %d after catch-up", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("publish still blocked after the laggard caught up")
	}
}

// TestLateAttachGetsFreshWindow: lag is measured from the attach point,
// so a subscriber joining a long history is not instantly over-window.
func TestLateAttachGetsFreshWindow(t *testing.T) {
	const capacity = 4
	top := New[int](capacity, time.Minute)
	for i := 0; i < 100; i++ {
		top.Publish(i)
	}
	late := top.Subscribe(PolicyBlock)
	start := time.Now()
	for i := 0; i < capacity-1; i++ { // strictly inside the fresh window
		if n := top.Publish(100 + i); n != 0 {
			t.Fatalf("publish dropped late attacher %d events after attach", i)
		}
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("late attacher throttled the producer: %v", el)
	}
	top.Close(nil)
	got, err := drain(t, late)
	if !errors.Is(err, ErrDone) || len(got) != 103 {
		t.Fatalf("late attacher saw %d events (%v), want 103", len(got), err)
	}
}

// TestCancelDetaches: a canceled subscriber stops constraining the
// producer.
func TestCancelDetaches(t *testing.T) {
	top := New[int](2, time.Minute)
	s := top.Subscribe(PolicyBlock)
	top.Publish(0)
	top.Publish(1)
	s.Cancel()
	start := time.Now()
	for i := 0; i < 50; i++ {
		top.Publish(i)
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("canceled subscriber still throttles: %v", el)
	}
}

// TestNextContextCancel: an abandoned wait returns ctx.Err and the
// subscription survives.
func TestNextContextCancel(t *testing.T) {
	top := New[int](4, time.Second)
	s := top.Subscribe(PolicyBlock)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next: %v, want deadline exceeded", err)
	}
	top.Publish(42)
	ev, err := s.Next(context.Background())
	if err != nil || ev != 42 {
		t.Fatalf("resumed Next = %d, %v", ev, err)
	}
}

// TestConcurrentSubscribers: many subscribers at different speeds all
// observe the identical full sequence (none within their windows are
// dropped), raced under -race.
func TestConcurrentSubscribers(t *testing.T) {
	const n = 500
	top := New[int](64, time.Second)
	var wg sync.WaitGroup
	results := make([][]int, 8)
	for i := range results {
		i := i
		s := top.Subscribe(PolicyBlock)
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := drain(t, s)
			if !errors.Is(err, ErrDone) {
				t.Errorf("sub %d: %v", i, err)
			}
			results[i] = got
		}()
	}
	for i := 0; i < n; i++ {
		top.Publish(i)
	}
	top.Close(nil)
	wg.Wait()
	for i, got := range results {
		if len(got) != n {
			t.Fatalf("sub %d saw %d events, want %d", i, len(got), n)
		}
		for j, v := range got {
			if v != j {
				t.Fatalf("sub %d event %d = %d", i, j, v)
			}
		}
	}
}
