// Package relfile implements the .prox relation file: a versioned,
// checksummed, memory-mapped columnar format that stores a partitioned
// relation exactly as the serving path wants to read it, so the catalog
// opens a prebuilt relation without re-sorting, re-partitioning, or
// copying tuples onto the heap.
//
// # File layout
//
//	header (64 B)
//	  magic "PROXREL1" | version u32 | strategy u32 | dim u32 | shards u32
//	  tuples u64 | maxScore f64 | dirOff u64 | dirLen u64
//	  dirCRC u32 | headerCRC u32
//	shard directory (shards × (104 + 8·dim) B, CRC-guarded)
//	  per shard: tuple count, absolute offsets of its seven regions,
//	  region CRC, and the stored bounding metadata (radius, max score,
//	  centroid) advertised to coordinators
//	per-shard regions (8-byte aligned, zero-padded between)
//	  scores  n × f64   rank slab: non-increasing, ties by ordinal
//	  vecs    n × dim × f64
//	  ords    n × u32   parent-relation ordinals
//	  idOffs  (n+1) × u32 into idBytes
//	  idBytes raw ID bytes
//	  attrOffs (n+1) × u32 into attrBytes
//	  attrBytes per-tuple blobs: count u32, then sorted (klen u32, key,
//	  vlen u32, value) pairs; empty blob = no attributes
//
// All integers and float bit patterns are little-endian; checksums are
// CRC-32C (Castagnoli). Every shard's storage order is the canonical
// score-access order — scores non-increasing, equal scores by ascending
// parent ordinal — which is the same total order the in-memory
// ScoreIndex sorts into, so a loaded shard streams score access with no
// sort and byte-identical emissions. The grid/hash partitioner's shard
// assignment maps one shard to one contiguous run of file regions;
// per-shard index builds and shardrpc bounding metadata read straight
// from those regions.
//
// Open validates the whole file — header and directory checksums, region
// alignment, bounds and non-overlap of every directory entry, per-shard
// CRCs, the ordinal permutation, score order, offset-table monotonicity,
// attribute blob structure, and the stored radius against the mapped
// vectors — before handing out any view, so a later read can never step
// outside the mapping. Checksums detect accidental corruption; the
// format is not hardened against adversarial files beyond never reading
// out of bounds.
//
// # Mapping lifetime
//
// Loaded relations hand out tuple IDs and vectors that alias the mapping
// (zero-copy). The mapping therefore stays alive for the life of the
// process unless Close is called explicitly — the serving path never
// closes: query results, cached responses, and in-flight sessions may
// all still reference mapped bytes after a catalog eviction, and an
// address-space mapping of clean file-backed pages costs no resident
// memory the OS cannot reclaim. Close is for tools and tests that know
// no view escapes.
package relfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"sync"
	"unsafe"

	"repro/internal/relation"
	"repro/internal/vec"
)

// Format constants. These are wire-stable: bump Version on any
// incompatible layout change.
const (
	// Magic is the 8-byte file signature.
	Magic = "PROXREL1"
	// Version is the current format version.
	Version = 1
	// HeaderSize is the fixed header length in bytes.
	HeaderSize = 64
	// Extension is the conventional file suffix; the catalog and
	// proxserve recognize it to select the relfile loader.
	Extension = ".prox"
)

// ErrCorrupt is wrapped by every structural validation failure, so
// callers can distinguish a damaged file from an I/O error with
// errors.Is.
var ErrCorrupt = errors.New("relfile: corrupt file")

// corruptf builds a structured validation error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entrySize is the directory entry length for one shard.
func entrySize(dim int) int { return 104 + 8*dim }

// align8 rounds up to the next multiple of 8.
func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// shardData is one parsed, validated shard: typed views into the
// mapping plus the stored bounds.
type shardData struct {
	n         int
	scores    []float64
	vecs      []float64
	ords      []uint32
	idOffs    []uint32
	idBytes   []byte
	attrOffs  []uint32
	attrBytes []byte
	bounds    relation.ShardBounds
}

// File is an opened, fully validated relation file. Its views alias the
// mapping; see the package comment for the lifetime contract.
type File struct {
	path     string
	data     []byte
	hold     any // retains the fallback read buffer (non-mmap platforms)
	unmap    func() error
	closeOne sync.Once
	closeErr error

	dim      int
	tuples   int
	maxScore float64
	strategy relation.PartitionStrategy
	views    []shardData
}

// Open maps the file at path read-only and validates it end to end.
func Open(path string) (*File, error) {
	h, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relfile: %w", err)
	}
	defer h.Close()
	st, err := h.Stat()
	if err != nil {
		return nil, fmt.Errorf("relfile: %w", err)
	}
	size := st.Size()
	if size < HeaderSize {
		return nil, fmt.Errorf("relfile: %s: file is %d bytes, header needs %d: %w", path, size, HeaderSize, ErrCorrupt)
	}
	const maxSize = 1 << 46
	if size > maxSize {
		return nil, fmt.Errorf("relfile: %s: %d bytes exceeds the mappable maximum", path, size)
	}
	data, unmap, hold, err := mapFile(h, size)
	if err != nil {
		return nil, fmt.Errorf("relfile: %s: %w", path, err)
	}
	f, err := parse(data)
	if err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, fmt.Errorf("relfile: %s: %w", path, err)
	}
	f.path, f.unmap, f.hold = path, unmap, hold
	return f, nil
}

// Decode parses a relation file from a byte slice (no mapping). The
// bytes are copied into 8-byte-aligned storage first, so data of any
// alignment — including fuzzer inputs — is safe.
func Decode(data []byte) (*File, error) {
	aligned, hold := alignedCopy(data)
	f, err := parse(aligned)
	if err != nil {
		return nil, err
	}
	f.hold = hold
	return f, nil
}

// alignedCopy copies b into the bytes of a fresh []uint64, guaranteeing
// the 8-byte base alignment the float/int views require.
func alignedCopy(b []byte) ([]byte, any) {
	words := make([]uint64, (len(b)+7)/8+1)
	out := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:len(b)]
	copy(out, b)
	return out, words
}

// Close unmaps the file. Tools and tests only: every view handed out —
// including relations from Load and any tuple they produced — becomes
// invalid. The serving path never calls Close; see the package comment.
func (f *File) Close() error {
	f.closeOne.Do(func() {
		f.views = nil
		f.data = nil
		if f.unmap != nil {
			f.closeErr = f.unmap()
		}
	})
	return f.closeErr
}

// Path returns the file path ("" for Decode-built files).
func (f *File) Path() string { return f.path }

// Dim returns the feature dimensionality.
func (f *File) Dim() int { return f.dim }

// Tuples returns the total tuple count across shards.
func (f *File) Tuples() int { return f.tuples }

// MaxScore returns the relation's declared σ_max.
func (f *File) MaxScore() float64 { return f.maxScore }

// Shards returns the shard count.
func (f *File) Shards() int { return len(f.views) }

// Strategy returns the partition strategy the shards were built under.
func (f *File) Strategy() relation.PartitionStrategy { return f.strategy }

// ShardBounds returns shard i's stored bounding metadata.
func (f *File) ShardBounds(i int) relation.ShardBounds { return f.views[i].bounds }

// ShardLen returns shard i's tuple count.
func (f *File) ShardLen(i int) int { return f.views[i].n }

// parse validates data (which must be 8-byte aligned) and builds the
// typed views. It never reads outside data.
func parse(data []byte) (*File, error) {
	if len(data) < HeaderSize {
		return nil, corruptf("truncated header: %d bytes", len(data))
	}
	if string(data[0:8]) != Magic {
		return nil, corruptf("bad magic %q", data[0:8])
	}
	if crc32.Checksum(data[0:60], castagnoli) != binary.LittleEndian.Uint32(data[60:64]) {
		return nil, corruptf("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, corruptf("unsupported version %d (want %d)", v, Version)
	}
	strategyRaw := binary.LittleEndian.Uint32(data[12:16])
	if strategyRaw > uint32(relation.GridPartition) {
		return nil, corruptf("unknown partition strategy %d", strategyRaw)
	}
	dim := int(binary.LittleEndian.Uint32(data[16:20]))
	shards := int(binary.LittleEndian.Uint32(data[20:24]))
	tuples := binary.LittleEndian.Uint64(data[24:32])
	maxScore := math.Float64frombits(binary.LittleEndian.Uint64(data[32:40]))
	dirOff := binary.LittleEndian.Uint64(data[40:48])
	dirLen := binary.LittleEndian.Uint64(data[48:56])
	dirCRC := binary.LittleEndian.Uint32(data[56:60])

	if dim < 1 || dim > 1<<20 {
		return nil, corruptf("dimensionality %d out of range", dim)
	}
	if shards < 1 || shards > 1<<16 {
		return nil, corruptf("shard count %d out of range", shards)
	}
	if tuples < 1 || tuples > uint64(len(data)) {
		return nil, corruptf("tuple count %d out of range", tuples)
	}
	if math.IsNaN(maxScore) || math.IsInf(maxScore, 0) || maxScore <= 0 {
		return nil, corruptf("max score %v must be finite and positive", maxScore)
	}
	if dirOff != HeaderSize {
		return nil, corruptf("directory offset %d, want %d", dirOff, HeaderSize)
	}
	if want := uint64(shards) * uint64(entrySize(dim)); dirLen != want {
		return nil, corruptf("directory length %d, want %d for %d shards", dirLen, want, shards)
	}
	dir, err := region(data, dirOff, dirLen, "directory")
	if err != nil {
		return nil, err
	}
	if crc32.Checksum(dir, castagnoli) != dirCRC {
		return nil, corruptf("directory checksum mismatch")
	}

	f := &File{
		data:     data,
		dim:      dim,
		tuples:   int(tuples),
		maxScore: maxScore,
		strategy: relation.PartitionStrategy(strategyRaw),
		views:    make([]shardData, shards),
	}
	// Interval bookkeeping for the non-overlap check: header, directory,
	// and every shard region must occupy disjoint byte ranges.
	type span struct {
		start, end uint64
		what       string
	}
	spans := []span{
		{0, HeaderSize, "header"},
		{dirOff, dirOff + dirLen, "directory"},
	}

	sum := uint64(0)
	for s := 0; s < shards; s++ {
		e := dir[s*entrySize(dim) : (s+1)*entrySize(dim)]
		n64 := binary.LittleEndian.Uint64(e[0:8])
		if n64 < 1 || n64 > tuples {
			return nil, corruptf("shard %d: tuple count %d out of range", s, n64)
		}
		n := int(n64)
		sum += n64
		offs := [7]uint64{
			binary.LittleEndian.Uint64(e[8:16]),  // scores
			binary.LittleEndian.Uint64(e[16:24]), // vecs
			binary.LittleEndian.Uint64(e[24:32]), // ords
			binary.LittleEndian.Uint64(e[32:40]), // idOffs
			binary.LittleEndian.Uint64(e[40:48]), // idBytes
			binary.LittleEndian.Uint64(e[56:64]), // attrOffs
			binary.LittleEndian.Uint64(e[64:72]), // attrBytes
		}
		idBytesLen := binary.LittleEndian.Uint64(e[48:56])
		attrBytesLen := binary.LittleEndian.Uint64(e[72:80])
		if idBytesLen > math.MaxUint32 || attrBytesLen > math.MaxUint32 {
			return nil, corruptf("shard %d: byte region exceeds u32 offsets", s)
		}
		lens := [7]uint64{
			8 * n64,
			8 * n64 * uint64(dim),
			4 * n64,
			4 * (n64 + 1),
			idBytesLen,
			4 * (n64 + 1),
			attrBytesLen,
		}
		names := [7]string{"scores", "vecs", "ords", "idOffs", "idBytes", "attrOffs", "attrBytes"}
		var regions [7][]byte
		for r := 0; r < 7; r++ {
			if offs[r]%8 != 0 {
				return nil, corruptf("shard %d: %s region misaligned at %d", s, names[r], offs[r])
			}
			b, err := region(data, offs[r], lens[r], fmt.Sprintf("shard %d %s", s, names[r]))
			if err != nil {
				return nil, err
			}
			regions[r] = b
			spans = append(spans, span{offs[r], offs[r] + lens[r], fmt.Sprintf("shard %d %s", s, names[r])})
		}
		crc := crc32.New(castagnoli)
		for _, b := range regions {
			crc.Write(b)
		}
		if crc.Sum32() != binary.LittleEndian.Uint32(e[80:84]) {
			return nil, corruptf("shard %d: region checksum mismatch", s)
		}
		radius := math.Float64frombits(binary.LittleEndian.Uint64(e[88:96]))
		shardMax := math.Float64frombits(binary.LittleEndian.Uint64(e[96:104]))
		if math.IsNaN(radius) || math.IsInf(radius, 0) || radius < 0 {
			return nil, corruptf("shard %d: radius %v out of range", s, radius)
		}
		if math.IsNaN(shardMax) || shardMax <= 0 || shardMax > maxScore {
			return nil, corruptf("shard %d: shard max score %v outside (0, %v]", s, shardMax, maxScore)
		}
		centroid := make([]float64, dim)
		for d := 0; d < dim; d++ {
			c := math.Float64frombits(binary.LittleEndian.Uint64(e[104+8*d : 112+8*d]))
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, corruptf("shard %d: non-finite centroid", s)
			}
			centroid[d] = c
		}
		f.views[s] = shardData{
			n:         n,
			scores:    f64view(regions[0], n),
			vecs:      f64view(regions[1], n*dim),
			ords:      u32view(regions[2], n),
			idOffs:    u32view(regions[3], n+1),
			idBytes:   regions[4],
			attrOffs:  u32view(regions[5], n+1),
			attrBytes: regions[6],
			bounds: relation.ShardBounds{
				Centroid: centroid,
				Radius:   radius,
				MaxScore: shardMax,
				Tuples:   n,
			},
		}
	}
	if sum != tuples {
		return nil, corruptf("shards hold %d tuples, header says %d", sum, tuples)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for i := 1; i < len(spans); i++ {
		if spans[i].start < spans[i-1].end {
			return nil, corruptf("%s overlaps %s", spans[i].what, spans[i-1].what)
		}
	}
	if err := f.validateContent(); err != nil {
		return nil, err
	}
	return f, nil
}

// region bounds-checks [off, off+n) against data, overflow-safely.
func region(data []byte, off, n uint64, what string) ([]byte, error) {
	if off > uint64(len(data)) || n > uint64(len(data))-off {
		return nil, corruptf("%s [%d,+%d) outside the %d-byte file", what, off, n, len(data))
	}
	return data[off : off+n : off+n], nil
}

// f64view reinterprets an 8-aligned byte region as float64s.
func f64view(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

// u32view reinterprets a 4-aligned byte region as uint32s.
func u32view(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

// validateContent checks the per-tuple invariants the engine relies on:
// finite scores within (0, σ_max], finite vectors, canonical storage
// order, a consistent ordinal permutation across shards, monotone
// offset tables, well-formed attribute blobs, and the stored radius
// matching the mapped vectors.
func (f *File) validateContent() error {
	seen := make([]bool, f.tuples)
	for s := range f.views {
		v := &f.views[s]
		for i := 0; i < v.n; i++ {
			sc := v.scores[i]
			if math.IsNaN(sc) || sc <= 0 || sc > f.maxScore {
				return corruptf("shard %d: tuple %d score %v outside (0, %v]", s, i, sc, f.maxScore)
			}
			ord := v.ords[i]
			if uint64(ord) >= uint64(f.tuples) {
				return corruptf("shard %d: tuple %d ordinal %d out of range", s, i, ord)
			}
			if seen[ord] {
				return corruptf("shard %d: duplicate ordinal %d", s, ord)
			}
			seen[ord] = true
			if i > 0 {
				prev := v.scores[i-1]
				if sc > prev || (sc == prev && ord <= v.ords[i-1]) {
					return corruptf("shard %d: tuples %d,%d break the (score desc, ordinal asc) order", s, i-1, i)
				}
			}
		}
		for _, x := range v.vecs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return corruptf("shard %d: non-finite vector component", s)
			}
		}
		if v.scores[0] != v.bounds.MaxScore {
			return corruptf("shard %d: stored max score %v, best tuple scores %v", s, v.bounds.MaxScore, v.scores[0])
		}
		if err := checkOffsets(v.idOffs, len(v.idBytes), s, "id"); err != nil {
			return err
		}
		if err := checkOffsets(v.attrOffs, len(v.attrBytes), s, "attr"); err != nil {
			return err
		}
		for i := 0; i < v.n; i++ {
			if err := checkAttrBlob(v.attrBytes[v.attrOffs[i]:v.attrOffs[i+1]], s, i); err != nil {
				return err
			}
		}
		// The radius is order-independent (a max over per-tuple distances
		// to the stored centroid), so it must reproduce bit-exactly from
		// the mapped vectors — the deepest corruption check we can run
		// without the writer's original tuple order.
		maxDist := 0.0
		c := vec.Vector(v.bounds.Centroid)
		for i := 0; i < v.n; i++ {
			if d := (vec.Euclidean{}).Distance(vec.Vector(v.vecs[i*f.dim:(i+1)*f.dim]), c); d > maxDist {
				maxDist = d
			}
		}
		if maxDist != v.bounds.Radius {
			return corruptf("shard %d: stored radius %v, vectors reach %v", s, v.bounds.Radius, maxDist)
		}
	}
	return nil
}

// checkOffsets validates an (n+1)-entry offset table: starts at 0,
// non-decreasing, ends exactly at the byte region's length.
func checkOffsets(offs []uint32, size int, shard int, what string) error {
	if offs[0] != 0 {
		return corruptf("shard %d: %s offsets start at %d", shard, what, offs[0])
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return corruptf("shard %d: %s offsets decrease at %d", shard, what, i)
		}
	}
	if int(offs[len(offs)-1]) != size {
		return corruptf("shard %d: %s offsets end at %d, region is %d bytes", shard, what, offs[len(offs)-1], size)
	}
	return nil
}

// checkAttrBlob validates one tuple's attribute encoding without
// materializing it.
func checkAttrBlob(b []byte, shard, tuple int) error {
	if len(b) == 0 {
		return nil
	}
	if len(b) < 4 {
		return corruptf("shard %d: tuple %d attr blob truncated", shard, tuple)
	}
	count := binary.LittleEndian.Uint32(b)
	if count == 0 {
		return corruptf("shard %d: tuple %d non-empty attr blob with zero count", shard, tuple)
	}
	off := uint64(4)
	for j := uint32(0); j < count; j++ {
		for k := 0; k < 2; k++ {
			if off+4 > uint64(len(b)) {
				return corruptf("shard %d: tuple %d attr blob truncated", shard, tuple)
			}
			l := uint64(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			if l > uint64(len(b))-off {
				return corruptf("shard %d: tuple %d attr length overruns blob", shard, tuple)
			}
			off += l
		}
	}
	if off != uint64(len(b)) {
		return corruptf("shard %d: tuple %d attr blob has %d trailing bytes", shard, tuple, uint64(len(b))-off)
	}
	return nil
}
