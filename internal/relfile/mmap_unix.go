//go:build unix

package relfile

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. The returned unmap releases the mapping;
// hold is unused on mmap platforms (the kernel pins the pages, not the
// Go heap). The file descriptor may be closed immediately after — the
// mapping outlives it.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, hold any, err error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil, nil
}
