//go:build !unix

package relfile

import (
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without syscall.Mmap falls back to reading the
// whole file into an 8-byte-aligned heap buffer. hold keeps the backing
// []uint64 reachable; unmap is a no-op (the GC owns the memory).
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, hold any, err error) {
	words := make([]uint64, (size+7)/8+1)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:size]
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, nil, err
	}
	return buf, func() error { return nil }, words, nil
}
