package relfile

import (
	"encoding/binary"

	"repro/internal/relation"
	"repro/internal/vec"
)

// Load assembles a servable sharded relation over the file's mapped
// columns under the given relation name (the name is a catalog concern,
// not a file one — the same file can register under any name, like a
// CSV). The parent relation is a metadata-only stub: no tuple is copied
// onto the heap, score access streams the slabs in storage order, and
// R-trees for distance access build lazily per shard on first use. The
// returned relation aliases the mapping — see the package comment for
// why the serving path never closes a File.
func (f *File) Load(name string) (*relation.Sharded, error) {
	parent, err := relation.NewStub(name, f.maxScore, f.dim, f.tuples)
	if err != nil {
		return nil, err
	}
	shards := make([]relation.FileShard, len(f.views))
	for i := range f.views {
		shards[i] = relation.FileShard{
			Cols:   &shardView{f: f, d: &f.views[i], dim: f.dim},
			Bounds: f.views[i].bounds,
		}
	}
	return relation.AssembleSharded(parent, shards, f.strategy)
}

// shardView adapts one parsed shard to relation.Columns. It retains its
// *File, which keeps the mapping (or the fallback buffer) reachable for
// as long as any loaded relation — or any tuple view it produced — is.
type shardView struct {
	f   *File
	d   *shardData
	dim int
}

func (v *shardView) Len() int { return v.d.n }

func (v *shardView) Vec(i int) vec.Vector {
	return vec.Vector(v.d.vecs[i*v.dim : (i+1)*v.dim])
}

func (v *shardView) Ordinal(i int) int { return int(v.d.ords[i]) }

func (v *shardView) Tuple(i int) relation.Tuple {
	return relation.Tuple{
		ID:    string(v.d.idBytes[v.d.idOffs[i]:v.d.idOffs[i+1]]),
		Score: v.d.scores[i],
		Vec:   v.Vec(i),
		Attrs: v.attrs(i),
	}
}

// attrs decodes tuple i's attribute blob into a fresh map (nil when the
// tuple has none). Open validated the structure, so the walk is
// bounds-safe by construction.
func (v *shardView) attrs(i int) map[string]string {
	blob := v.d.attrBytes[v.d.attrOffs[i]:v.d.attrOffs[i+1]]
	if len(blob) == 0 {
		return nil
	}
	count := binary.LittleEndian.Uint32(blob)
	m := make(map[string]string, count)
	off := uint32(4)
	for j := uint32(0); j < count; j++ {
		kl := binary.LittleEndian.Uint32(blob[off:])
		off += 4
		k := string(blob[off : off+kl])
		off += kl
		vl := binary.LittleEndian.Uint32(blob[off:])
		off += 4
		m[k] = string(blob[off : off+vl])
		off += vl
	}
	return m
}
