package relfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/relation"
)

// Write serializes a partitioned in-memory relation to path in relfile
// format, atomically (write to a temp file in the same directory, then
// rename). Each shard's slabs are emitted in the canonical score-access
// order — score descending, ties by ascending parent ordinal — so the
// loader can stream score access without sorting, and the bounds the
// partitioner computed are stored verbatim (never recomputed at load,
// where the float summation order would differ).
//
// s must hold its tuples in memory: a file-backed or remote-stub
// Sharded cannot be re-encoded.
func Write(path string, s *relation.Sharded) error {
	if s == nil {
		return fmt.Errorf("relfile: cannot write a nil relation")
	}
	if s.FileBacked() {
		return fmt.Errorf("relfile: relation %q is file-backed; re-encoding views is not supported", s.Relation().Name)
	}
	parent := s.Relation()
	if parent.IsStub() {
		return fmt.Errorf("relfile: relation %q holds its tuples remotely", parent.Name)
	}
	dim := parent.Dim()
	shards := s.NumShards()
	dirLen := uint64(shards) * uint64(entrySize(dim))
	dataOff := align8(HeaderSize + dirLen)

	type encShard struct {
		regions [7][]byte
		offs    [7]uint64
		crc     uint32
		bounds  relation.ShardBounds
		n       int
	}
	enc := make([]encShard, shards)
	off := dataOff
	for i := 0; i < shards; i++ {
		regions, n, err := encodeShard(s.ShardRelation(i), s.ShardOrdinals(i))
		if err != nil {
			return fmt.Errorf("relfile: relation %q shard %d: %w", parent.Name, i, err)
		}
		e := encShard{regions: regions, n: n, bounds: s.ShardBounds(i)}
		for r := range e.regions {
			e.offs[r] = off
			off = align8(off + uint64(len(e.regions[r])))
		}
		crc := crc32.New(castagnoli)
		for _, b := range e.regions {
			crc.Write(b)
		}
		e.crc = crc.Sum32()
		enc[i] = e
	}

	dir := make([]byte, dirLen)
	for i, e := range enc {
		d := dir[i*entrySize(dim):]
		binary.LittleEndian.PutUint64(d[0:8], uint64(e.n))
		for r := 0; r < 5; r++ {
			binary.LittleEndian.PutUint64(d[8+8*r:16+8*r], e.offs[r])
		}
		binary.LittleEndian.PutUint64(d[48:56], uint64(len(e.regions[4])))
		binary.LittleEndian.PutUint64(d[56:64], e.offs[5])
		binary.LittleEndian.PutUint64(d[64:72], e.offs[6])
		binary.LittleEndian.PutUint64(d[72:80], uint64(len(e.regions[6])))
		binary.LittleEndian.PutUint32(d[80:84], e.crc)
		binary.LittleEndian.PutUint64(d[88:96], math.Float64bits(e.bounds.Radius))
		binary.LittleEndian.PutUint64(d[96:104], math.Float64bits(e.bounds.MaxScore))
		for dd := 0; dd < dim; dd++ {
			binary.LittleEndian.PutUint64(d[104+8*dd:112+8*dd], math.Float64bits(e.bounds.Centroid[dd]))
		}
	}

	hdr := make([]byte, HeaderSize)
	copy(hdr[0:8], Magic)
	binary.LittleEndian.PutUint32(hdr[8:12], Version)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(s.Strategy()))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(dim))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(shards))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(parent.Len()))
	binary.LittleEndian.PutUint64(hdr[32:40], math.Float64bits(parent.MaxScore))
	binary.LittleEndian.PutUint64(hdr[40:48], HeaderSize)
	binary.LittleEndian.PutUint64(hdr[48:56], dirLen)
	binary.LittleEndian.PutUint32(hdr[56:60], crc32.Checksum(dir, castagnoli))
	binary.LittleEndian.PutUint32(hdr[60:64], crc32.Checksum(hdr[0:60], castagnoli))

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("relfile: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriterSize(tmp, 1<<20)
	pos := uint64(0)
	emit := func(b []byte, at uint64) error {
		for pos < at {
			if err := w.WriteByte(0); err != nil {
				return err
			}
			pos++
		}
		n, err := w.Write(b)
		pos += uint64(n)
		return err
	}
	werr := emit(hdr, 0)
	if werr == nil {
		werr = emit(dir, HeaderSize)
	}
	for _, e := range enc {
		for r := range e.regions {
			if werr != nil {
				break
			}
			werr = emit(e.regions[r], e.offs[r])
		}
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("relfile: writing %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("relfile: %w", err)
	}
	return nil
}

// encodeShard builds one shard's seven region buffers in canonical
// score order. ords maps the shard's storage index to the parent
// ordinal.
func encodeShard(rel *relation.Relation, ords []int) ([7][]byte, int, error) {
	if rel.IsStub() {
		return [7][]byte{}, 0, fmt.Errorf("tuples are held remotely")
	}
	n := rel.Len()
	dim := rel.Dim()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := rel.At(idx[a]), rel.At(idx[b])
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		return ords[idx[a]] < ords[idx[b]]
	})

	scores := make([]byte, 8*n)
	vecs := make([]byte, 8*n*dim)
	ordB := make([]byte, 4*n)
	idOffs := make([]byte, 4*(n+1))
	var idBytes, attrBytes []byte
	attrOffs := make([]byte, 4*(n+1))
	for i, j := range idx {
		t := rel.At(j)
		binary.LittleEndian.PutUint64(scores[8*i:], math.Float64bits(t.Score))
		for d := 0; d < dim; d++ {
			binary.LittleEndian.PutUint64(vecs[8*(i*dim+d):], math.Float64bits(t.Vec[d]))
		}
		binary.LittleEndian.PutUint32(ordB[4*i:], uint32(ords[j]))
		idBytes = append(idBytes, t.ID...)
		binary.LittleEndian.PutUint32(idOffs[4*(i+1):], uint32(len(idBytes)))
		attrBytes = appendAttrBlob(attrBytes, t.Attrs)
		binary.LittleEndian.PutUint32(attrOffs[4*(i+1):], uint32(len(attrBytes)))
	}
	if len(idBytes) > math.MaxUint32 || len(attrBytes) > math.MaxUint32 {
		return [7][]byte{}, 0, fmt.Errorf("id/attr bytes exceed the 4 GiB per-shard limit")
	}
	return [7][]byte{scores, vecs, ordB, idOffs, idBytes, attrOffs, attrBytes}, n, nil
}

// appendAttrBlob appends one tuple's attribute encoding: nothing for an
// empty map, else a count followed by key-sorted length-prefixed pairs
// (sorted so the encoding — and every downstream checksum — is
// deterministic).
func appendAttrBlob(dst []byte, attrs map[string]string) []byte {
	if len(attrs) == 0 {
		return dst
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(k)))
		dst = append(dst, k...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(attrs[k])))
		dst = append(dst, attrs[k]...)
	}
	return dst
}
