package relfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
	"repro/internal/vec"
)

// testRelation builds a deterministic random relation with IDs of mixed
// length (including empty) and sparse attributes.
func testRelation(t testing.TB, seed int64, n, dim int) *relation.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		v := make(vec.Vector, dim)
		for d := range v {
			v[d] = r.NormFloat64()
		}
		id := fmt.Sprintf("tuple-%d", i)
		if i%7 == 0 {
			id = ""
		}
		var attrs map[string]string
		if i%3 == 0 {
			attrs = map[string]string{"color": "red", "i": fmt.Sprint(i)}
		}
		// A few duplicate scores exercise the ordinal tiebreak.
		score := 0.05 + 0.95*float64(1+r.Intn(20))/20
		tuples[i] = relation.Tuple{ID: id, Score: score, Vec: v, Attrs: attrs}
	}
	rel, err := relation.New("t", 1, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// writeTemp partitions rel, writes it as a relfile, and returns the
// path plus the in-memory Sharded it encoded.
func writeTemp(t *testing.T, rel *relation.Relation, shards int, strategy relation.PartitionStrategy) (string, *relation.Sharded) {
	t.Helper()
	s, err := relation.Partition(rel, shards, strategy)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rel.prox")
	if err := Write(path, s); err != nil {
		t.Fatal(err)
	}
	return path, s
}

func TestRoundTrip(t *testing.T) {
	for _, strategy := range []relation.PartitionStrategy{relation.HashPartition, relation.GridPartition} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v-%d", strategy, shards), func(t *testing.T) {
				rel := testRelation(t, int64(shards)*100+int64(strategy), 83, 3)
				path, orig := writeTemp(t, rel, shards, strategy)
				f, err := Open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if f.Dim() != rel.Dim() || f.Tuples() != rel.Len() || f.Shards() != orig.NumShards() {
					t.Fatalf("metadata mismatch: dim=%d tuples=%d shards=%d", f.Dim(), f.Tuples(), f.Shards())
				}
				if f.MaxScore() != rel.MaxScore || f.Strategy() != strategy {
					t.Fatalf("maxScore=%v strategy=%v", f.MaxScore(), f.Strategy())
				}
				loaded, err := f.Load("t")
				if err != nil {
					t.Fatal(err)
				}
				if !loaded.FileBacked() {
					t.Fatal("loaded relation is not file-backed")
				}
				compareSharded(t, rel, orig, f, loaded)
			})
		}
	}
}

// compareSharded checks stored bounds bit-for-bit against the
// partitioner's and every loaded tuple against the original relation by
// parent ordinal, plus the canonical storage order within each shard.
func compareSharded(t *testing.T, rel *relation.Relation, orig *relation.Sharded, f *File, loaded *relation.Sharded) {
	t.Helper()
	if loaded.NumShards() != orig.NumShards() {
		t.Fatalf("shards: %d vs %d", loaded.NumShards(), orig.NumShards())
	}
	seen := make([]bool, rel.Len())
	for i := 0; i < orig.NumShards(); i++ {
		ob, lb := orig.ShardBounds(i), loaded.ShardBounds(i)
		if math.Float64bits(ob.Radius) != math.Float64bits(lb.Radius) ||
			math.Float64bits(ob.MaxScore) != math.Float64bits(lb.MaxScore) ||
			ob.Tuples != lb.Tuples {
			t.Fatalf("shard %d bounds drifted: %+v vs %+v", i, ob, lb)
		}
		for d := range ob.Centroid {
			if math.Float64bits(ob.Centroid[d]) != math.Float64bits(lb.Centroid[d]) {
				t.Fatalf("shard %d centroid drifted", i)
			}
		}
		view := &shardView{f: f, d: &f.views[i], dim: f.dim}
		prevScore := math.Inf(1)
		prevOrd := -1
		for j := 0; j < view.Len(); j++ {
			got := view.Tuple(j)
			ord := view.Ordinal(j)
			if seen[ord] {
				t.Fatalf("ordinal %d appears twice", ord)
			}
			seen[ord] = true
			want := rel.At(ord)
			if got.ID != want.ID || math.Float64bits(got.Score) != math.Float64bits(want.Score) {
				t.Fatalf("shard %d tuple %d: got %q/%v want %q/%v", i, j, got.ID, got.Score, want.ID, want.Score)
			}
			for d := range want.Vec {
				if math.Float64bits(got.Vec[d]) != math.Float64bits(want.Vec[d]) {
					t.Fatalf("shard %d tuple %d vec drifted", i, j)
				}
			}
			if len(got.Attrs) != len(want.Attrs) {
				t.Fatalf("shard %d tuple %d attrs: %v vs %v", i, j, got.Attrs, want.Attrs)
			}
			for k, v := range want.Attrs {
				if got.Attrs[k] != v {
					t.Fatalf("shard %d tuple %d attr %q: %q vs %q", i, j, k, got.Attrs[k], v)
				}
			}
			if got.Score > prevScore || (got.Score == prevScore && ord <= prevOrd) {
				t.Fatalf("shard %d breaks canonical order at %d", i, j)
			}
			prevScore, prevOrd = got.Score, ord
		}
	}
	for ord, ok := range seen {
		if !ok {
			t.Fatalf("ordinal %d missing from file", ord)
		}
	}
}

func TestDecodeMatchesOpen(t *testing.T) {
	rel := testRelation(t, 7, 31, 2)
	path, _ := writeTemp(t, rel, 3, relation.GridPartition)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately misalign the input: Decode must realign internally.
	shifted := append(make([]byte, 1, len(raw)+1), raw...)
	f, err := Decode(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	if f.Tuples() != rel.Len() || f.Shards() != 3 {
		t.Fatalf("decode metadata: tuples=%d shards=%d", f.Tuples(), f.Shards())
	}
	if _, err := f.Load("t"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsUnencodable(t *testing.T) {
	if err := Write(filepath.Join(t.TempDir(), "x.prox"), nil); err == nil {
		t.Fatal("nil relation accepted")
	}
	rel := testRelation(t, 1, 16, 2)
	path, _ := writeTemp(t, rel, 2, relation.HashPartition)
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := f.Load("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(filepath.Join(t.TempDir(), "y.prox"), loaded); err == nil {
		t.Fatal("file-backed relation re-encoded")
	}
}

// reseal recomputes the directory and header checksums after a test
// mutated file bytes, so the corruption under test is the only
// inconsistency left.
func reseal(data []byte) {
	dirOff := binary.LittleEndian.Uint64(data[40:48])
	dirLen := binary.LittleEndian.Uint64(data[48:56])
	table := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(data[56:60], crc32.Checksum(data[dirOff:dirOff+dirLen], table))
	binary.LittleEndian.PutUint32(data[60:64], crc32.Checksum(data[0:60], table))
}

func TestCorruptFiles(t *testing.T) {
	rel := testRelation(t, 3, 41, 2)
	path, _ := writeTemp(t, rel, 2, relation.HashPartition)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dim := 2
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:HeaderSize-10] }, "truncated header"},
		{"bad magic", func(b []byte) []byte { copy(b, "NOTAPROX"); return b }, "bad magic"},
		{"bad version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 99)
			reseal(b)
			return b
		}, "unsupported version"},
		{"header checksum mismatch", func(b []byte) []byte { b[33] ^= 0xff; return b }, "header checksum"},
		{"directory checksum mismatch", func(b []byte) []byte { b[HeaderSize+3] ^= 0xff; return b }, "directory checksum"},
		{"zero dim", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 0)
			reseal(b)
			return b
		}, "dimensionality"},
		{"absurd shard count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:24], 1<<20)
			reseal(b)
			return b
		}, "out of range"},
		{"non-finite max score", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:40], math.Float64bits(math.NaN()))
			reseal(b)
			return b
		}, "max score"},
		{"region outside file", func(b []byte) []byte {
			e := b[HeaderSize:]
			binary.LittleEndian.PutUint64(e[8:16], uint64(len(b))+8)
			reseal(b)
			return b
		}, "outside"},
		{"misaligned region", func(b []byte) []byte {
			e := b[HeaderSize:]
			off := binary.LittleEndian.Uint64(e[8:16])
			binary.LittleEndian.PutUint64(e[8:16], off+4)
			reseal(b)
			return b
		}, "misaligned"},
		{"shard checksum mismatch", func(b []byte) []byte {
			e := b[HeaderSize:]
			off := binary.LittleEndian.Uint64(e[8:16])
			b[off] ^= 0xff
			return b
		}, "region checksum"},
		{"overlapping directory entries", func(b []byte) []byte {
			e0 := b[HeaderSize : HeaderSize+uint64(entrySize(dim))]
			e1 := b[HeaderSize+uint64(entrySize(dim)) : HeaderSize+2*uint64(entrySize(dim))]
			// Point shard 1's score region into shard 0's and recompute
			// shard 1's CRC so only the overlap is wrong.
			binary.LittleEndian.PutUint64(e1[8:16], binary.LittleEndian.Uint64(e0[8:16]))
			n1 := binary.LittleEndian.Uint64(e1[0:8])
			crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
			offs := [7]uint64{
				binary.LittleEndian.Uint64(e1[8:16]),
				binary.LittleEndian.Uint64(e1[16:24]),
				binary.LittleEndian.Uint64(e1[24:32]),
				binary.LittleEndian.Uint64(e1[32:40]),
				binary.LittleEndian.Uint64(e1[40:48]),
				binary.LittleEndian.Uint64(e1[56:64]),
				binary.LittleEndian.Uint64(e1[64:72]),
			}
			lens := [7]uint64{8 * n1, 8 * n1 * uint64(dim), 4 * n1, 4 * (n1 + 1),
				binary.LittleEndian.Uint64(e1[48:56]), 4 * (n1 + 1), binary.LittleEndian.Uint64(e1[72:80])}
			for r := 0; r < 7; r++ {
				crc.Write(b[offs[r] : offs[r]+lens[r]])
			}
			binary.LittleEndian.PutUint32(e1[80:84], crc.Sum32())
			reseal(b)
			return b
		}, "overlaps"},
		{"tuple count mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:32], binary.LittleEndian.Uint64(b[24:32])-1)
			reseal(b)
			return b
		}, ""},
		{"radius mismatch", func(b []byte) []byte {
			e := b[HeaderSize:]
			r := math.Float64frombits(binary.LittleEndian.Uint64(e[88:96]))
			binary.LittleEndian.PutUint64(e[88:96], math.Float64bits(r+1))
			reseal(b)
			return b
		}, "radius"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), pristine...)
			b = tc.mutate(b)
			_, err := Decode(b)
			if err == nil {
				t.Fatal("corruption accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			// The same bytes through a temp file and Open must fail too.
			p := filepath.Join(t.TempDir(), "bad.prox")
			if werr := os.WriteFile(p, b, 0o644); werr != nil {
				t.Fatal(werr)
			}
			if _, oerr := Open(p); oerr == nil || !errors.Is(oerr, ErrCorrupt) {
				t.Fatalf("Open: %v", oerr)
			}
		})
	}
}

// TestTruncationSweep chops the file at every offset in a stride sweep:
// every prefix must fail cleanly, never panic or over-read.
func TestTruncationSweep(t *testing.T) {
	rel := testRelation(t, 9, 23, 2)
	path, _ := writeTemp(t, rel, 2, relation.GridPartition)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut += 13 {
		if _, err := Decode(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func FuzzRelFileDecode(f *testing.F) {
	rel := testRelation(f, 11, 19, 2)
	s, err := relation.Partition(rel, 2, relation.HashPartition)
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.prox")
	if err := Write(path, s); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:HeaderSize])
	f.Add([]byte(Magic))
	flipped := append([]byte(nil), raw...)
	flipped[70] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := Decode(data)
		if err != nil {
			return // any error is fine; panics and over-reads are not
		}
		// A file that validates must be fully traversable.
		loaded, err := pf.Load("fuzz")
		if err != nil {
			t.Fatalf("validated file failed to load: %v", err)
		}
		for i := 0; i < loaded.NumShards(); i++ {
			src, err := loaded.ShardSource(i, relation.ScoreAccess, nil, nil, false)
			if err != nil {
				t.Fatal(err)
			}
			for {
				tu, err := src.Next()
				if errors.Is(err, relation.ErrExhausted) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				_ = tu.ID
				_ = tu.Attrs
			}
		}
	})
}
