package lp

import (
	"math/rand"
	"testing"
)

// Dominance testing solves one feasibility system per candidate partial;
// the constraint count u grows with the retrieved depth. These sizes
// bracket what Fig 3(m)/(n) runs encounter.
func benchFeasible(b *testing.B, d, u int) {
	r := rand.New(rand.NewSource(1))
	g := make([][]float64, u)
	h := make([]float64, u)
	for i := range g {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		g[i] = row
		h[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FeasibleHalfSpaces(g, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeasibleD2U10(b *testing.B)   { benchFeasible(b, 2, 10) }
func BenchmarkFeasibleD2U100(b *testing.B)  { benchFeasible(b, 2, 100) }
func BenchmarkFeasibleD2U1000(b *testing.B) { benchFeasible(b, 2, 1000) }
func BenchmarkFeasibleD8U100(b *testing.B)  { benchFeasible(b, 8, 100) }
