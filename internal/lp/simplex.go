// Package lp implements a dense two-phase primal simplex solver and the
// half-space feasibility test used by the dominance pruning of proximity
// rank join (paper §3.2.2, problem (35)).
//
// The dominance test asks whether a polyhedron {y ∈ R^d : G·y ≤ h} is
// empty. The number of rows u grows with the retrieved depth (u can be in
// the thousands) while d stays small, so FeasibleHalfSpaces solves the
// small dual program
//
//	minimize  hᵀλ   subject to  Gᵀλ = 0,  Σλ = 1,  λ ≥ 0
//
// with only d+1 equality rows: the primal system is feasible iff the dual
// is infeasible or its optimum is ≥ 0 (a negative optimum exhibits a
// Farkas certificate of emptiness).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective is unbounded below.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrIterationLimit is returned when simplex exceeds its pivot budget,
// which should not happen with Bland's rule on well-posed inputs.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

const eps = 1e-9

// SolveStandard solves  minimize cᵀx  s.t.  A·x = b, x ≥ 0  with a
// two-phase tableau simplex using Bland's rule. A is given in row-major
// rows; b may have any signs.
func SolveStandard(a [][]float64, b, c []float64) (x []float64, value float64, status Status, err error) {
	m := len(a)
	if len(b) != m {
		return nil, 0, 0, fmt.Errorf("lp: %d rows but %d rhs entries", m, len(b))
	}
	n := len(c)
	for i, row := range a {
		if len(row) != n {
			return nil, 0, 0, fmt.Errorf("lp: row %d has %d cols, want %d", i, len(row), n)
		}
	}

	// Tableau: columns = n structural + m artificial + 1 rhs.
	cols := n + m + 1
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, cols)
		sign := 1.0
		if b[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * a[i][j]
		}
		t[i][n+i] = 1
		t[i][cols-1] = sign * b[i]
		basis[i] = n + i
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, cols)
	for j := n; j < n+m; j++ {
		phase1[j] = 1
	}
	val, err := runSimplex(t, basis, phase1, n+m)
	if err != nil {
		return nil, 0, 0, err
	}
	if val > eps {
		return nil, 0, Infeasible, nil
	}
	// Pivot remaining artificials out of the basis where possible; rows
	// where this fails are redundant and can be ignored (their artificial
	// stays at value 0).
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(t[i][j]) > eps {
				pivot(t, basis, i, j)
				pivoted = true
				break
			}
		}
		_ = pivoted
	}

	// Phase 2: original objective; artificial columns are barred by making
	// them prohibitively expensive and never eligible (limit to n columns).
	obj := make([]float64, cols)
	copy(obj, c)
	_, err = runSimplex(t, basis, obj, n)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return nil, 0, Unbounded, nil
		}
		return nil, 0, 0, err
	}

	x = make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t[i][cols-1]
		}
	}
	var v float64
	for j := 0; j < n; j++ {
		v += c[j] * x[j]
	}
	return x, v, Optimal, nil
}

var errUnbounded = errors.New("lp: unbounded")

// runSimplex performs primal simplex pivots on the tableau for the given
// objective, considering only the first limit columns as eligible entering
// variables. Returns the objective value at termination.
func runSimplex(t [][]float64, basis []int, c []float64, limit int) (float64, error) {
	m := len(t)
	if m == 0 {
		return 0, nil
	}
	cols := len(t[0])
	rhs := cols - 1
	// Reduced costs are computed directly: r_j = c_j − Σ_i c_{basis[i]}·t[i][j].
	maxIter := 2000 + 200*(m+cols)
	for iter := 0; iter < maxIter; iter++ {
		enter := -1
		for j := 0; j < limit; j++ {
			if reducedCost(t, basis, c, j) < -eps {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return objectiveValue(t, basis, c, rhs), nil
		}
		// Ratio test (Bland: smallest basis index breaks ties).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][rhs] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, errUnbounded
		}
		pivot(t, basis, leave, enter)
	}
	return 0, ErrIterationLimit
}

func reducedCost(t [][]float64, basis []int, c []float64, j int) float64 {
	r := c[j]
	for i := range t {
		cb := c[basis[i]]
		if cb != 0 {
			r -= cb * t[i][j]
		}
	}
	return r
}

func objectiveValue(t [][]float64, basis []int, c []float64, rhs int) float64 {
	var v float64
	for i := range t {
		if cb := c[basis[i]]; cb != 0 {
			v += cb * t[i][rhs]
		}
	}
	return v
}

func pivot(t [][]float64, basis []int, row, col int) {
	p := t[row][col]
	for j := range t[row] {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
