package lp

import "fmt"

// FeasibleHalfSpaces reports whether the polyhedron {y ∈ R^d : G·y ≤ h}
// is non-empty. G has one row per half-space; d is small (the feature
// space dimension) while len(G) can be large, so the decision is made on
// the dual program with only d+1 equality rows (see the package comment).
func FeasibleHalfSpaces(g [][]float64, h []float64) (bool, error) {
	u := len(g)
	if len(h) != u {
		return false, fmt.Errorf("lp: %d half-spaces but %d offsets", u, len(h))
	}
	if u == 0 {
		return true, nil
	}
	d := len(g[0])
	for i, row := range g {
		if len(row) != d {
			return false, fmt.Errorf("lp: half-space %d has dim %d, want %d", i, len(row), d)
		}
	}
	// Dual: minimize hᵀλ s.t. Gᵀλ = 0 (d rows), Σλ = 1, λ ≥ 0.
	a := make([][]float64, d+1)
	for r := 0; r < d; r++ {
		a[r] = make([]float64, u)
		for j := 0; j < u; j++ {
			a[r][j] = g[j][r]
		}
	}
	ones := make([]float64, u)
	for j := range ones {
		ones[j] = 1
	}
	a[d] = ones
	b := make([]float64, d+1)
	b[d] = 1

	_, val, status, err := SolveStandard(a, b, h)
	if err != nil {
		return false, err
	}
	switch status {
	case Infeasible:
		// No Farkas combination exists at all: the primal is feasible
		// (indeed unbounded in the t-relaxation).
		return true, nil
	case Unbounded:
		// hᵀλ unbounded below on the dual ⇒ a certificate with arbitrarily
		// negative value exists ⇒ primal infeasible.
		return false, nil
	default:
		// Primal min t = −val: feasible iff val ≥ 0 (within tolerance; ties
		// mean the region is a degenerate but non-empty face).
		return val >= -1e-9, nil
	}
}

// MinimizeLeq solves  minimize cᵀx  s.t.  A·x ≤ b  with x free, by
// splitting x = u − v (u, v ≥ 0) and adding slack variables. Intended for
// small problems (tests, examples, witness extraction).
func MinimizeLeq(a [][]float64, b, c []float64) (x []float64, value float64, status Status, err error) {
	m := len(a)
	if len(b) != m {
		return nil, 0, 0, fmt.Errorf("lp: %d rows but %d rhs entries", m, len(b))
	}
	var n int
	if m > 0 {
		n = len(a[0])
	} else {
		n = len(c)
	}
	if len(c) != n {
		return nil, 0, 0, fmt.Errorf("lp: objective has %d entries, want %d", len(c), n)
	}
	// Standard form variables: u (n), v (n), s (m).
	cols := 2*n + m
	sa := make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, cols)
		for j := 0; j < n; j++ {
			row[j] = a[i][j]
			row[n+j] = -a[i][j]
		}
		row[2*n+i] = 1
		sa[i] = row
	}
	sc := make([]float64, cols)
	for j := 0; j < n; j++ {
		sc[j] = c[j]
		sc[n+j] = -c[j]
	}
	z, v, status, err := SolveStandard(sa, b, sc)
	if err != nil || status != Optimal {
		return nil, 0, status, err
	}
	x = make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = z[j] - z[n+j]
	}
	return x, v, Optimal, nil
}
