package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveStandardKnown(t *testing.T) {
	// maximize 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0
	// → min −3x − 2y with slacks; optimum x=4, y=0, value −12.
	a := [][]float64{
		{1, 1, 1, 0},
		{1, 3, 0, 1},
	}
	b := []float64{4, 6}
	c := []float64{-3, -2, 0, 0}
	x, v, status, err := SolveStandard(a, b, c)
	if err != nil || status != Optimal {
		t.Fatalf("status=%v err=%v", status, err)
	}
	if math.Abs(v-(-12)) > 1e-9 || math.Abs(x[0]-4) > 1e-9 {
		t.Fatalf("x=%v v=%v", x, v)
	}
}

func TestSolveStandardInfeasible(t *testing.T) {
	// x = 1 and x = 2 simultaneously.
	a := [][]float64{{1}, {1}}
	b := []float64{1, 2}
	c := []float64{0}
	_, _, status, err := SolveStandard(a, b, c)
	if err != nil || status != Infeasible {
		t.Fatalf("status=%v err=%v", status, err)
	}
}

func TestSolveStandardUnbounded(t *testing.T) {
	// min −x s.t. x − y = 0, x,y ≥ 0 — can grow without bound.
	a := [][]float64{{1, -1}}
	b := []float64{0}
	c := []float64{-1, 0}
	_, _, status, err := SolveStandard(a, b, c)
	if err != nil || status != Unbounded {
		t.Fatalf("status=%v err=%v", status, err)
	}
}

func TestSolveStandardNegativeRHS(t *testing.T) {
	// −x = −3 → x = 3.
	a := [][]float64{{-1}}
	b := []float64{-3}
	c := []float64{1}
	x, v, status, err := SolveStandard(a, b, c)
	if err != nil || status != Optimal {
		t.Fatalf("status=%v err=%v", status, err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(v-3) > 1e-9 {
		t.Fatalf("x=%v v=%v", x, v)
	}
}

func TestSolveStandardShapeErrors(t *testing.T) {
	if _, _, _, err := SolveStandard([][]float64{{1}}, []float64{1, 2}, []float64{0}); err == nil {
		t.Error("rhs mismatch accepted")
	}
	if _, _, _, err := SolveStandard([][]float64{{1, 2}}, []float64{1}, []float64{0}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestSolveStandardDegenerateRedundantRows(t *testing.T) {
	// Duplicate constraints should not break phase transition.
	a := [][]float64{{1, 1}, {1, 1}, {2, 2}}
	b := []float64{2, 2, 4}
	c := []float64{1, 0}
	x, v, status, err := SolveStandard(a, b, c)
	if err != nil || status != Optimal {
		t.Fatalf("status=%v err=%v", status, err)
	}
	if math.Abs(v) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("x=%v v=%v", x, v)
	}
}

func TestMinimizeLeqFreeVariables(t *testing.T) {
	// min x + y s.t. −x ≤ 2, −y ≤ 5 → x = −2, y = −5.
	a := [][]float64{{-1, 0}, {0, -1}}
	b := []float64{2, 5}
	c := []float64{1, 1}
	x, v, status, err := MinimizeLeq(a, b, c)
	if err != nil || status != Optimal {
		t.Fatalf("status=%v err=%v", status, err)
	}
	if math.Abs(x[0]+2) > 1e-9 || math.Abs(x[1]+5) > 1e-9 || math.Abs(v+7) > 1e-9 {
		t.Fatalf("x=%v v=%v", x, v)
	}
}

func TestFeasibleHalfSpacesBasic(t *testing.T) {
	// x ≤ 1, −x ≤ −0.5 → [0.5, 1] non-empty.
	ok, err := FeasibleHalfSpaces([][]float64{{1}, {-1}}, []float64{1, -0.5})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// x ≤ 0, −x ≤ −1 → empty.
	ok, err = FeasibleHalfSpaces([][]float64{{1}, {-1}}, []float64{0, -1})
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestFeasibleHalfSpacesEdge(t *testing.T) {
	// No constraints: whole space.
	if ok, err := FeasibleHalfSpaces(nil, nil); err != nil || !ok {
		t.Fatalf("empty system: ok=%v err=%v", ok, err)
	}
	// Single half-space: always feasible.
	if ok, err := FeasibleHalfSpaces([][]float64{{1, 1}}, []float64{-100}); err != nil || !ok {
		t.Fatalf("single: ok=%v err=%v", ok, err)
	}
	// Degenerate touching: x ≤ 0 and −x ≤ 0 → {0} non-empty.
	if ok, err := FeasibleHalfSpaces([][]float64{{1}, {-1}}, []float64{0, 0}); err != nil || !ok {
		t.Fatalf("touching: ok=%v err=%v", ok, err)
	}
	// Shape error.
	if _, err := FeasibleHalfSpaces([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := FeasibleHalfSpaces([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestFeasibleHalfSpaces2D(t *testing.T) {
	// Triangle: x ≥ 0, y ≥ 0, x + y ≤ 1 — feasible.
	g := [][]float64{{-1, 0}, {0, -1}, {1, 1}}
	h := []float64{0, 0, 1}
	if ok, _ := FeasibleHalfSpaces(g, h); !ok {
		t.Fatal("triangle reported empty")
	}
	// Add x + y ≥ 3 → infeasible.
	g = append(g, []float64{-1, -1})
	h = append(h, -3)
	if ok, _ := FeasibleHalfSpaces(g, h); ok {
		t.Fatal("empty region reported feasible")
	}
}

// Property: FeasibleHalfSpaces agrees with a sampling + LP witness oracle
// on random low-dimensional systems.
func TestQuickFeasibleAgreesWithOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(3)
		u := 1 + r.Intn(8)
		g := make([][]float64, u)
		h := make([]float64, u)
		for i := range g {
			row := make([]float64, d)
			for j := range row {
				row[j] = r.NormFloat64()
			}
			g[i] = row
			h[i] = r.NormFloat64()
		}
		got, err := FeasibleHalfSpaces(g, h)
		if err != nil {
			return false
		}
		// Oracle: minimize max violation via MinimizeLeq on the epigraph
		// formulation min t s.t. G·y − t ≤ h.
		a := make([][]float64, u)
		for i := range a {
			row := make([]float64, d+1)
			copy(row, g[i])
			row[d] = -1
			a[i] = row
		}
		c := make([]float64, d+1)
		c[d] = 1
		_, v, status, err := MinimizeLeq(a, h, c)
		if err != nil {
			return false
		}
		want := status == Unbounded || (status == Optimal && v <= 1e-9)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: when the system was built around a known interior point it is
// always reported feasible.
func TestQuickFeasibleWitnessConstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		u := 1 + r.Intn(12)
		y := make([]float64, d)
		for j := range y {
			y[j] = r.NormFloat64() * 5
		}
		g := make([][]float64, u)
		h := make([]float64, u)
		for i := range g {
			row := make([]float64, d)
			var dot float64
			for j := range row {
				row[j] = r.NormFloat64()
				dot += row[j] * y[j]
			}
			g[i] = row
			h[i] = dot + r.Float64() // slack ≥ 0 keeps y feasible
		}
		ok, err := FeasibleHalfSpaces(g, h)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
