package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text-format exposition without
// promtool: it is the malformed-lines gate the CI smoke job and
// proxload run against a live /metrics scrape. It verifies, line by
// line:
//
//   - HELP/TYPE comments are well formed and TYPE names a known kind;
//   - every sample line parses as name, optional {labels}, and a float
//     value, with legal metric and label names and closed quotes;
//   - a sample's family, when TYPEd, matches the declared kind
//     (histogram samples must be _bucket/_sum/_count);
//   - histogram bucket series are cumulative in le order, end with a
//     +Inf bucket, and agree with the _count sample;
//   - no duplicate sample lines (same name and label set).
//
// The first violation is returned as an error naming the line number.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	types := map[string]Kind{}
	seen := map[string]int{} // full sample identity -> line no
	type bucketKey struct {
		family string
		labels string // labels minus le
	}
	type bucketSeries struct {
		les    []float64
		counts []int64
		count  int64 // from _count
		hasCnt bool
	}
	buckets := map[bucketKey]*bucketSeries{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			name, kind, ok := parseComment(text)
			if !ok {
				return fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			if kind != "" { // a TYPE line
				k := Kind(kind)
				if k != KindCounter && k != KindGauge && k != KindHistogram && kind != "summary" && kind != "untyped" {
					return fmt.Errorf("line %d: unknown TYPE %q for %q", line, kind, name)
				}
				types[name] = k
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		ident := name + labelIdentity(labels)
		if prev, dup := seen[ident]; dup {
			return fmt.Errorf("line %d: duplicate sample %s (first at line %d)", line, ident, prev)
		}
		seen[ident] = line
		fam, suffix := familyOf(name, types)
		if k, ok := types[fam]; ok && k == KindHistogram {
			if suffix == "" {
				return fmt.Errorf("line %d: histogram %q has plain sample %q (want _bucket/_sum/_count)", line, fam, name)
			}
			key := bucketKey{family: fam, labels: labelIdentityExcept(labels, "le")}
			s := buckets[key]
			if s == nil {
				s = &bucketSeries{}
				buckets[key] = s
			}
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %q lacks an le label", line, name)
				}
				ub, perr := parseLe(le)
				if perr != nil {
					return fmt.Errorf("line %d: %v", line, perr)
				}
				s.les = append(s.les, ub)
				s.counts = append(s.counts, int64(value))
			case "_count":
				s.count = int64(value)
				s.hasCnt = true
			}
		}
		if math.IsNaN(value) && types[fam] == KindCounter {
			return fmt.Errorf("line %d: counter %q has NaN value", line, name)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading exposition: %w", err)
	}
	for key, s := range buckets {
		if len(s.les) == 0 {
			return fmt.Errorf("histogram %s%s has no buckets", key.family, key.labels)
		}
		order := make([]int, len(s.les))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return s.les[order[a]] < s.les[order[b]] })
		prev := int64(-1)
		for _, i := range order {
			if s.counts[i] < prev {
				return fmt.Errorf("histogram %s%s buckets are not cumulative at le=%v", key.family, key.labels, s.les[i])
			}
			prev = s.counts[i]
		}
		last := order[len(order)-1]
		if !math.IsInf(s.les[last], 1) {
			return fmt.Errorf("histogram %s%s lacks a +Inf bucket", key.family, key.labels)
		}
		if s.hasCnt && s.counts[last] != s.count {
			return fmt.Errorf("histogram %s%s: +Inf bucket %d != _count %d", key.family, key.labels, s.counts[last], s.count)
		}
	}
	return nil
}

// parseComment handles # HELP and # TYPE lines; other comments pass
// through. Returns the metric name and, for TYPE lines, the kind.
func parseComment(text string) (name, kind string, ok bool) {
	switch {
	case strings.HasPrefix(text, "# HELP "):
		rest := strings.TrimPrefix(text, "# HELP ")
		sp := strings.IndexByte(rest, ' ')
		if sp <= 0 {
			// HELP with no text is legal; the name must still be valid.
			if !validName(rest) {
				return "", "", false
			}
			return rest, "", true
		}
		if !validName(rest[:sp]) {
			return "", "", false
		}
		return rest[:sp], "", true
	case strings.HasPrefix(text, "# TYPE "):
		rest := strings.TrimPrefix(text, "# TYPE ")
		fields := strings.Fields(rest)
		if len(fields) != 2 || !validName(fields[0]) {
			return "", "", false
		}
		return fields[0], fields[1], true
	default:
		return "", "", true // arbitrary comment
	}
}

// label is one parsed k="v" pair.
type label struct{ k, v string }

// parseSample splits a sample line into name, labels, and value.
func parseSample(text string) (string, []label, float64, error) {
	i := strings.IndexAny(text, "{ ")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", text)
	}
	name := text[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []label
	rest := text[i:]
	if rest[0] == '{' {
		end, ls, err := parseLabels(rest)
		if err != nil {
			return "", nil, 0, err
		}
		labels = ls
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", text)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	return name, labels, v, nil
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string) (int, []label, error) {
	var labels []label
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block %q", s)
		}
		name := s[i : i+eq]
		if !validName(name) && name != "le" {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %q value is not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %q value is unterminated", name)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("label %q value has a dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %q value has bad escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, label{k: name, v: val.String()})
	}
}

// parseValue parses a sample value, accepting the Prometheus special
// spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "Nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLe parses a bucket upper bound.
func parseLe(s string) (float64, error) {
	v, err := parseValue(s)
	if err != nil {
		return 0, fmt.Errorf("bad le value %q: %v", s, err)
	}
	return v, nil
}

// familyOf strips a histogram sample suffix when the base family is
// TYPEd as a histogram.
func familyOf(name string, types map[string]Kind) (family, suffix string) {
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name {
			if k, ok := types[base]; ok && k == KindHistogram {
				return base, sfx
			}
		}
	}
	return name, ""
}

// labelIdentity renders labels sorted by name for duplicate detection.
func labelIdentity(labels []label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(a, b int) bool { return ls[a].k < ls[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.k)
		b.WriteString("=")
		b.WriteString(strconv.Quote(l.v))
	}
	b.WriteByte('}')
	return b.String()
}

// labelIdentityExcept is labelIdentity with one label dropped (used to
// group histogram buckets across le).
func labelIdentityExcept(labels []label, drop string) string {
	kept := labels[:0:0]
	for _, l := range labels {
		if l.k != drop {
			kept = append(kept, l)
		}
	}
	return labelIdentity(kept)
}

// labelValue fetches a label by name.
func labelValue(labels []label, name string) (string, bool) {
	for _, l := range labels {
		if l.k == name {
			return l.v, true
		}
	}
	return "", false
}
