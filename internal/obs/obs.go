// Package obs is the system's dependency-free observability substrate: a
// metrics registry of atomic counters, gauges, and fixed-bucket
// histograms with Prometheus text-format exposition.
//
// The package deliberately implements the minimal slice of the
// Prometheus data model the serving layer needs — no client_golang
// dependency, no push, no summaries — while staying wire-compatible
// with any Prometheus-format scraper:
//
//   - Counter / CounterVec: monotone event counts.
//   - Gauge / GaugeFunc: instantaneous values; GaugeFunc reads a live
//     value at scrape time, which is how counters that already exist as
//     service atomics are exposed without a second source of truth.
//   - Histogram / HistogramVec: fixed cumulative buckets with an
//     implicit +Inf bucket, a sum, and a count.
//
// All recording operations are lock-free (atomics only) and safe for
// concurrent use; a histogram Observe is a binary search plus two
// atomic adds, cheap enough for per-request paths. Vec children are
// created on first use under a short mutex and cached, so steady-state
// label lookups take one read-locked map hit.
//
// Metric and label names are validated at registration and registration
// panics on duplicates or invalid names — both are programmer errors, a
// misnamed metric should fail loudly at startup, not at scrape time.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition TYPE of a metric family.
type Kind string

// Family kinds, matching the Prometheus text-format TYPE vocabulary.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Registry holds named metric families and renders them in Prometheus
// text format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // sorted family names, rebuilt on registration
}

// family is one named metric with all its labeled children.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string // label names, fixed at registration ("" children use none)

	mu       sync.RWMutex
	children map[string]metric // key: joined label values
	order    []string          // insertion-sorted keys for stable exposition

	buckets []float64 // histogram families only
}

// metric is anything a family can hold per label combination.
type metric interface {
	// write appends the sample lines for this child. labelStr is the
	// rendered {k="v",...} block, "" when the family has no labels.
	write(b *strings.Builder, name, labelStr string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_][a-zA-Z0-9_]* (colons are reserved for recording
// rules, so this registry rejects them).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register installs a new family or panics: duplicate and malformed
// registrations are programmer errors that must surface at startup.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[f.name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
	r.names = append(r.names, f.name)
	sort.Strings(r.names)
}

// Counter registers a monotone counter with no labels.
func (r *Registry) Counter(name, help string) *Counter {
	f := &family{name: name, help: help, kind: KindCounter, children: map[string]metric{}}
	r.register(f)
	c := &Counter{}
	f.addChild("", c)
	return c
}

// CounterVec registers a counter family with the given label names;
// children are created on first With.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: KindCounter, labels: labels, children: map[string]metric{}}
	r.register(f)
	return &CounterVec{f: f}
}

// Gauge registers an instantaneous value with no labels.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := &family{name: name, help: help, kind: KindGauge, children: map[string]metric{}}
	r.register(f)
	g := &Gauge{}
	f.addChild("", g)
	return g
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
// This is how values that already live in service atomics (worker
// saturation, cache entries, broker lag) are exposed without keeping a
// second copy that could drift.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := &family{name: name, help: help, kind: KindGauge, children: map[string]metric{}}
	r.register(f)
	f.addChild("", funcGauge{fn})
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time — the exposition form of a monotone count that already lives in
// a service atomic, guaranteeing /metrics and the legacy stats snapshot
// can never disagree. fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := &family{name: name, help: help, kind: KindCounter, children: map[string]metric{}}
	r.register(f)
	f.addChild("", funcGauge{fn})
}

// CounterFuncVec registers a labeled family of func-backed counters;
// each series is added once with Bind. Like CounterFunc, the functions
// must be monotone non-decreasing.
func (r *Registry) CounterFuncVec(name, help string, labels ...string) *FuncVec {
	f := &family{name: name, help: help, kind: KindCounter, labels: labels, children: map[string]metric{}}
	r.register(f)
	return &FuncVec{f: f}
}

// GaugeFuncVec registers a labeled family of func-backed gauges; each
// series is added once with Bind. Unlike CounterFuncVec, the functions
// may move in either direction (e.g. a circuit breaker's state enum).
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *FuncVec {
	f := &family{name: name, help: help, kind: KindGauge, labels: labels, children: map[string]metric{}}
	r.register(f)
	return &FuncVec{f: f}
}

// FuncVec is a labeled family whose series are scrape-time functions.
type FuncVec struct{ f *family }

// Bind installs fn as the series for the given label values; binding
// the same values twice panics.
func (v *FuncVec) Bind(fn func() float64, values ...string) {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.f.name, len(v.f.labels), len(values)))
	}
	v.f.addChild(strings.Join(values, "\xff"), funcGauge{fn})
}

// Histogram registers a fixed-bucket histogram with no labels. buckets
// are the upper bounds (inclusive, cumulative), strictly increasing;
// the +Inf bucket is implicit. The slice is cloned.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := &family{name: name, help: help, kind: KindHistogram, buckets: checkBuckets(name, buckets), children: map[string]metric{}}
	r.register(f)
	h := newHistogram(f.buckets)
	f.addChild("", h)
	return h
}

// HistogramVec registers a histogram family with label names; children
// share the bucket layout and are created on first With.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := &family{name: name, help: help, kind: KindHistogram, buckets: checkBuckets(name, buckets), labels: labels, children: map[string]metric{}}
	r.register(f)
	return &HistogramVec{f: f}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	out := make([]float64, len(buckets))
	copy(out, buckets)
	for i, b := range out {
		if math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram %q bucket %d is NaN", name, i))
		}
		if i > 0 && b <= out[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets must increase strictly (bucket %d)", name, i))
		}
	}
	if math.IsInf(out[len(out)-1], 1) {
		out = out[:len(out)-1] // +Inf is implicit
	}
	return out
}

// ExpBuckets returns n strictly increasing bucket bounds starting at
// start and growing by factor — the standard exponential layout for
// latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default layout for request-latency histograms:
// 100µs to ~52s, doubling.
func DurationBuckets() []float64 { return ExpBuckets(100e-6, 2, 20) }

// addChild installs a child under the joined-values key, keeping the
// exposition order sorted by key.
func (f *family) addChild(key string, m metric) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[key]; ok {
		panic(fmt.Sprintf("obs: metric %q child %q added twice", f.name, key))
	}
	f.children[key] = m
	i := sort.SearchStrings(f.order, key)
	f.order = append(f.order, "")
	copy(f.order[i+1:], f.order[i:])
	f.order[i] = key
}

// child returns the metric for the given label values, creating it via
// make on first use. Label-value count mismatches panic: the call site
// is statically wrong.
func (f *family) child(values []string, make func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.children[key]; ok {
		return m
	}
	m = make()
	f.children[key] = m
	i := sort.SearchStrings(f.order, key)
	f.order = append(f.order, "")
	copy(f.order[i+1:], f.order[i:])
	f.order[i] = key
	return m
}

// Counter is a monotone counter. The zero value is usable but must be
// obtained from a Registry to be exposed.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n, which must be non-negative (counters are monotone; a
// negative add is silently ignored rather than corrupting the series).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.n.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

func (c *Counter) write(b *strings.Builder, name, labelStr string) {
	b.WriteString(name)
	b.WriteString(labelStr)
	b.WriteByte(' ')
	fmt.Fprintf(b, "%d", c.n.Load())
	b.WriteByte('\n')
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values, creating
// it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() metric { return &Counter{} }).(*Counter)
}

// Gauge is an instantaneous float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; contended gauges should prefer Set from a
// single writer).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(b *strings.Builder, name, labelStr string) {
	b.WriteString(name)
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

// funcGauge renders a live value at scrape time.
type funcGauge struct{ fn func() float64 }

func (g funcGauge) write(b *strings.Builder, name, labelStr string) {
	b.WriteString(name)
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.fn()))
	b.WriteByte('\n')
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: one binary search, one bucket add, one CAS-looped sum add.
type Histogram struct {
	buckets []float64      // upper bounds, +Inf implicit
	counts  []atomic.Int64 // len(buckets)+1, last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records v. NaN observations are dropped (they would poison
// the sum and match no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound is >= v (le semantics).
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, clamping negatives
// (clock weirdness) to zero.
func (h *Histogram) ObserveDuration(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	h.Observe(seconds)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(b *strings.Builder, name, labelStr string) {
	// Cumulative buckets: snapshot counts first so the rendered series
	// is internally consistent even while observations land.
	cum := int64(0)
	snap := make([]int64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
	}
	for i, ub := range h.buckets {
		cum += snap[i]
		writeBucket(b, name, labelStr, formatFloat(ub), cum)
	}
	cum += snap[len(snap)-1]
	writeBucket(b, name, labelStr, "+Inf", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labelStr)
	b.WriteByte(' ')
	fmt.Fprintf(b, "%d", cum)
	b.WriteByte('\n')
}

func writeBucket(b *strings.Builder, name, labelStr, le string, n int64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if labelStr == "" {
		b.WriteString(`{le="`)
	} else {
		b.WriteString(labelStr[:len(labelStr)-1]) // strip closing brace
		b.WriteString(`,le="`)
	}
	b.WriteString(le)
	b.WriteString(`"} `)
	fmt.Fprintf(b, "%d", n)
	b.WriteByte('\n')
}

// HistogramVec is a histogram family keyed by label values; all
// children share one bucket layout.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values, creating
// it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.child(values, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}
