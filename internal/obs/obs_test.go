package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to an upper bound lands in that bucket (v <= le), and values
// past the last bound land only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	// Cumulative expectations: le=1 -> {0.5, 1}, le=2 -> +{1.0000001, 2},
	// le=4 -> +{3, 4}, +Inf -> +{5, 100}.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_hist_bucket{le="1"} 2`,
		`test_hist_bucket{le="2"} 4`,
		`test_hist_bucket{le="4"} 6`,
		`test_hist_bucket{le="+Inf"} 8`,
		`test_hist_count 8`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count() = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 3 + 4 + 5 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("Sum() = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramNaN drops NaN observations instead of poisoning the sum.
func TestHistogramNaN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_nan", "h", []float64{1})
	h.Observe(math.NaN())
	h.Observe(0.5)
	if h.Count() != 1 || h.Sum() != 0.5 {
		t.Errorf("after NaN observe: count=%d sum=%v, want 1, 0.5", h.Count(), h.Sum())
	}
}

// TestConcurrentRecording hammers every metric type from many
// goroutines; run under -race this is the data-race check, and the
// totals check that no observation is lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter", "c")
	g := r.Gauge("test_gauge", "g")
	h := r.Histogram("test_histogram", "h", ExpBuckets(1, 2, 8))
	cv := r.CounterVec("test_counter_vec", "cv", "who")
	hv := r.HistogramVec("test_histogram_vec", "hv", []float64{10, 100}, "who")

	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			who := string(rune('a' + id%3))
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 300))
				cv.With(who).Inc()
				hv.With(who).Observe(float64(j))
				if j%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b) // scrape while recording
				}
			}
		}(i)
	}
	wg.Wait()

	const total = goroutines * perG
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	sum := int64(0)
	for _, who := range []string{"a", "b", "c"} {
		sum += cv.With(who).Value()
	}
	if sum != total {
		t.Errorf("counter vec total = %d, want %d", sum, total)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := CheckExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("exposition after concurrent load: %v", err)
	}
}

// TestExpositionGolden pins the full text format byte for byte: family
// ordering (sorted by name), HELP/TYPE headers, label rendering and
// escaping, histogram series shape, float formatting.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last", "sorted last").Add(3)
	g := r.Gauge("mid_gauge", "a gauge")
	g.Set(2.5)
	cv := r.CounterVec("aa_first", "sorted first, with labels", "mode", "algo")
	cv.With("batch", "CBPA").Add(2)
	cv.With("stream", `we"ird\value`).Inc()
	h := r.Histogram("hist_metric", "a histogram", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	r.GaugeFunc("fn_gauge", "func-backed", func() float64 { return 7 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_first sorted first, with labels
# TYPE aa_first counter
aa_first{mode="batch",algo="CBPA"} 2
aa_first{mode="stream",algo="we\"ird\\value"} 1
# HELP fn_gauge func-backed
# TYPE fn_gauge gauge
fn_gauge 7
# HELP hist_metric a histogram
# TYPE hist_metric histogram
hist_metric_bucket{le="0.5"} 1
hist_metric_bucket{le="1"} 2
hist_metric_bucket{le="+Inf"} 3
hist_metric_sum 3
hist_metric_count 3
# HELP mid_gauge a gauge
# TYPE mid_gauge gauge
mid_gauge 2.5
# HELP zz_last sorted last
# TYPE zz_last counter
zz_last 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := CheckExposition(strings.NewReader(b.String())); err != nil {
		t.Errorf("golden output fails own checker: %v", err)
	}
}

// TestEmptyVecOmitted: a vec with no children emits nothing, not a
// headers-only family.
func TestEmptyVecOmitted(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("never_used", "no children", "x")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("empty vec produced output:\n%s", b.String())
	}
}

// TestRegistrationPanics: duplicate and malformed registrations are
// programmer errors and must fail loudly.
func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"duplicate name", func(r *Registry) { r.Counter("dup", "a"); r.Gauge("dup", "b") }},
		{"bad metric name", func(r *Registry) { r.Counter("bad-name", "x") }},
		{"leading digit", func(r *Registry) { r.Counter("1bad", "x") }},
		{"bad label name", func(r *Registry) { r.CounterVec("ok_name", "x", "bad-label") }},
		{"reserved le label", func(r *Registry) { r.HistogramVec("ok_hist", "x", []float64{1}, "le") }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("ok_hist2", "x", []float64{2, 1}) }},
		{"empty buckets", func(r *Registry) { r.Histogram("ok_hist3", "x", nil) }},
		{"label arity", func(r *Registry) { r.CounterVec("ok_vec", "x", "a", "b").With("only-one") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

// TestCounterMonotone: negative adds are ignored.
func TestCounterMonotone(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono", "m")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter after negative add = %d, want 5", c.Value())
	}
}

// TestCheckExpositionRejects feeds the checker malformed expositions it
// must reject — these are exactly the corruptions the CI gate exists to
// catch.
func TestCheckExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad metric name", "bad-name 1\n"},
		{"unquoted label", "m{l=v} 1\n"},
		{"unterminated labels", `m{l="v" 1` + "\n"},
		{"bad value", "m abc\n"},
		{"unknown TYPE", "# TYPE m sometype\nm 1\n"},
		{"duplicate sample", "m 1\nm 2\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + `h_bucket{le="+Inf"} 5` + "\n" +
			"h_sum 1\nh_count 5\n"},
		{"missing +Inf bucket", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + "h_sum 1\nh_count 5\n"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + "h_sum 1\nh_count 7\n"},
		{"plain histogram sample", "# TYPE h histogram\nh 5\n"},
		{"bad escape", `m{l="a\q"} 1` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckExposition(strings.NewReader(tc.in)); err == nil {
				t.Errorf("checker accepted malformed input:\n%s", tc.in)
			}
		})
	}
}

// TestCheckExpositionAccepts: well-formed edge cases must pass —
// untyped samples, timestamps, empty HELP, label-grouped histograms.
func TestCheckExpositionAccepts(t *testing.T) {
	in := `# some free comment
# HELP m
# TYPE m counter
m{a="x"} 1 1712000000000
m{a="y"} 2
# TYPE h histogram
h_bucket{mode="a",le="1"} 1
h_bucket{mode="a",le="+Inf"} 2
h_sum{mode="a"} 1.5
h_count{mode="a"} 2
h_bucket{mode="b",le="1"} 0
h_bucket{mode="b",le="+Inf"} 0
h_sum{mode="b"} 0
h_count{mode="b"} 0
untyped_sample 3.5
`
	if err := CheckExposition(strings.NewReader(in)); err != nil {
		t.Errorf("checker rejected well-formed input: %v", err)
	}
}

// TestExpBuckets pins the helper's layout.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestGaugeFuncLive: the function is read at scrape time, not
// registration time.
func TestGaugeFuncLive(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("live", "l", func() float64 { return v })
	v = 42
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "live 42\n") {
		t.Errorf("GaugeFunc not read at scrape time:\n%s", b.String())
	}
}
