package obs

import (
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// a # HELP and # TYPE header, children sorted by label values,
// histograms as cumulative le buckets ending in +Inf plus _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	r.mu.RUnlock()

	var b strings.Builder
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		f.writeFamily(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeFamily(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	children := make([]metric, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return // a vec with no observed children yet: no samples, no headers
	}
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.kind))
	b.WriteByte('\n')
	for i, key := range keys {
		children[i].write(b, f.name, f.labelString(key))
	}
}

// labelString renders the {k="v",...} block for a child key ("" for
// label-less families).
func (f *family) labelString(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := strings.Split(key, "\xff")
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with the special values spelled +Inf,
// -Inf, and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition at any GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
