package shardrpc

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast without touching the network.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

// String returns the exposition-friendly state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// BreakerConfig tunes one peer's circuit breaker. Zero values select
// the defaults documented on each field.
type BreakerConfig struct {
	// FailureThreshold opens the breaker after this many consecutive
	// transport failures (default 5).
	FailureThreshold int
	// ErrorRate opens the breaker when the windowed failure rate
	// reaches this fraction (default 0.5), once WindowMin outcomes have
	// been observed. It catches flapping peers that never fail
	// consecutively enough to trip FailureThreshold.
	ErrorRate float64
	// WindowMin is the minimum number of windowed outcomes before
	// ErrorRate applies (default 16; the window holds the last 32).
	WindowMin int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 1s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.ErrorRate <= 0 {
		c.ErrorRate = 0.5
	}
	if c.WindowMin <= 0 {
		c.WindowMin = 16
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// breakerWindow is the size of the sliding outcome window.
const breakerWindow = 32

// Breaker is a per-peer circuit breaker: closed → open on consecutive
// failures or a high windowed error rate, open → half-open after a
// cooldown, half-open → closed on a successful probe (or back to open
// on a failed one). Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	state   BreakerState
	consec  int // consecutive failures while closed
	win     [breakerWindow]bool
	wn, wi  int // filled size, next write index
	werr    int // failures currently in the window
	until   time.Time
	probing bool

	opens atomic.Int64
}

// NewBreaker builds a closed breaker with cfg (zero fields defaulted).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// State reports the breaker's position, folding an expired open period
// into half-open (the state a caller would observe by asking Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.now().Before(b.until) {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens counts closed/half-open → open transitions since construction.
func (b *Breaker) Opens() int64 { return b.opens.Load() }

// Allow reports whether a request may proceed. In half-open it grants
// the single probe slot; callers that are granted a slot must call
// Record with the outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds one request outcome back. Transport-level failures count
// against the peer; a structured server answer counts as a success
// (the peer is alive — it just said no).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// The probe's verdict. Late results from requests admitted
		// before the breaker opened land here too; treating them as the
		// probe errs toward whichever signal arrived last, which is the
		// freshest evidence either way.
		b.probing = false
		if ok {
			b.reset()
		} else {
			b.trip()
		}
	case BreakerClosed:
		b.observe(ok)
		if ok {
			b.consec = 0
		} else {
			b.consec++
		}
		// The rate rule is checked on every outcome (not just failures):
		// a flapping peer can cross the windowed threshold on the success
		// that completes the window.
		if b.consec >= b.cfg.FailureThreshold || b.rateTripped() {
			b.trip()
		}
	case BreakerOpen:
		// A stale completion from before the trip; the cooldown clock
		// is already running. Ignore.
	}
}

// Abandon releases a half-open probe slot without a verdict: the
// request was abandoned (e.g. it lost a hedge race and its connection
// was closed from under it), so its failure proves nothing about the
// peer.
func (b *Breaker) Abandon() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// observe pushes one outcome into the sliding window.
func (b *Breaker) observe(ok bool) {
	if b.wn == breakerWindow {
		if !b.win[b.wi] {
			b.werr--
		}
	} else {
		b.wn++
	}
	b.win[b.wi] = ok
	if !ok {
		b.werr++
	}
	b.wi = (b.wi + 1) % breakerWindow
}

// rateTripped reports whether the windowed error rate crosses the
// configured threshold.
func (b *Breaker) rateTripped() bool {
	return b.wn >= b.cfg.WindowMin && float64(b.werr) >= b.cfg.ErrorRate*float64(b.wn)
}

// trip opens the breaker and starts the cooldown.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.until = b.now().Add(b.cfg.Cooldown)
	b.probing = false
	b.consec = 0
	b.opens.Add(1)
}

// reset closes the breaker and clears its history.
func (b *Breaker) reset() {
	b.state = BreakerClosed
	b.consec = 0
	b.wn, b.wi, b.werr = 0, 0, 0
	b.probing = false
}
