package shardrpc

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/relation"
)

// Retry policy for transient transport failures: redial and re-issue up
// to maxAttempts times with bounded exponential backoff. Structured
// api.Errors from the server are NOT retried — the server answered; it
// just said no.
const (
	maxAttempts    = 4
	backoffBase    = 25 * time.Millisecond
	backoffCap     = 400 * time.Millisecond
	defaultTimeout = 5 * time.Second
)

// Peer is one remote shard server: an address, a pool of idle
// connections, and the per-peer health counters the coordinator exports.
// A Peer is safe for concurrent use; individual connections are not, so
// streaming callers check one out for the duration of a stream.
type Peer struct {
	// Addr is the server's host:port.
	Addr string
	// DialTimeout bounds connection establishment; PullTimeout bounds one
	// request/response exchange. Zero means defaultTimeout.
	DialTimeout time.Duration
	PullTimeout time.Duration
	// ObservePull, when set, receives the duration of every completed
	// exchange (success or failure) — the hook the service layer binds to
	// its per-peer latency histogram without shardrpc importing obs.
	ObservePull func(d time.Duration, err error)

	// Pulls counts exchanges attempted, Retries those re-issued after a
	// transport failure, Reconnects the dials that were not first contact.
	Pulls      atomic.Int64
	Retries    atomic.Int64
	Reconnects atomic.Int64

	mu     sync.Mutex
	idle   []net.Conn
	dialed bool
	closed bool
}

// NewPeer returns a peer for addr with default timeouts.
func NewPeer(addr string) *Peer { return &Peer{Addr: addr} }

func (p *Peer) dialTimeout() time.Duration {
	if p.DialTimeout > 0 {
		return p.DialTimeout
	}
	return defaultTimeout
}

func (p *Peer) pullTimeout() time.Duration {
	if p.PullTimeout > 0 {
		return p.PullTimeout
	}
	return defaultTimeout
}

// get returns an idle pooled connection or dials a new one.
func (p *Peer) get(ctx context.Context) (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("shardrpc: peer %s is closed", p.Addr)
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	again := p.dialed
	p.dialed = true
	p.mu.Unlock()
	if again {
		p.Reconnects.Add(1)
	}
	d := net.Dialer{Timeout: p.dialTimeout()}
	return d.DialContext(ctx, "tcp", p.Addr)
}

// put returns a connection to the idle pool. Only connections in a clean
// framing state (one full response read per request written) may be
// returned; anything doubtful must be closed instead.
func (p *Peer) put(c net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close drops the idle pool. Checked-out connections are unaffected;
// they are closed when their streams finish.
func (p *Peer) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// exchange performs one request/response on a specific connection under
// the pull deadline, reporting to ObservePull.
func (p *Peer) exchange(c net.Conn, req *Request, resp *Response) error {
	p.Pulls.Add(1)
	start := time.Now()
	err := func() error {
		if err := c.SetDeadline(time.Now().Add(p.pullTimeout())); err != nil {
			return err
		}
		if err := writeFrame(c, req); err != nil {
			return err
		}
		*resp = Response{}
		return readFrame(c, resp)
	}()
	if p.ObservePull != nil {
		p.ObservePull(time.Since(start), err)
	}
	return err
}

// Call performs one pooled request/response exchange with retries: a
// transport failure closes the connection, backs off, redials, and
// re-issues the request. Safe for every verb except VerbNext, whose
// stream state is connection-bound (remoteSource handles that case by
// re-pulling at its offset instead). A structured server-side failure is
// returned as its *api.Error without retrying.
func (p *Peer) Call(ctx context.Context, req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			p.Retries.Add(1)
			if err := sleepCtx(ctx, backoff(attempt)); err != nil {
				return nil, err
			}
		}
		c, err := p.get(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		var resp Response
		if err := p.exchange(c, req, &resp); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		p.put(c)
		if resp.Err != nil {
			return nil, resp.Err
		}
		return &resp, nil
	}
	return nil, api.Errorf(api.CodeUnavailable, "peer %s unreachable after %d attempts: %v", p.Addr, maxAttempts, lastErr)
}

// backoff returns the sleep before retry attempt n (n >= 1), doubling
// from backoffBase and capped at backoffCap.
func backoff(n int) time.Duration {
	d := backoffBase << (n - 1)
	if d > backoffCap {
		return backoffCap
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RemoteRelation is the coordinator's merged view of one relation across
// a fleet: the metadata every peer agreed on, plus which peers own which
// shard and each shard's bounds. A shard owned by more than one peer
// (replication) gives streaming failover for free.
type RemoteRelation struct {
	Name     string
	MaxScore float64
	Dim      int
	Tuples   int
	Shards   int
	// Owners[s] lists the peers serving shard s, in fleet order.
	Owners map[int][]*Peer
	// Bounds[s] is shard s's bounding metadata.
	Bounds map[int]relation.ShardBounds
}

// Stub builds the metadata-only relation the engine sees for a remote
// relation: correct name, σ_max, dimensionality, and tuple count, with
// no local tuples behind it.
func (r *RemoteRelation) Stub() (*relation.Relation, error) {
	return relation.NewStub(r.Name, r.MaxScore, r.Dim, r.Tuples)
}

// Fleet is the coordinator's set of shard-server peers.
type Fleet struct {
	peers []*Peer
}

// NewFleet builds a fleet over one peer per address.
func NewFleet(addrs []string) *Fleet {
	peers := make([]*Peer, len(addrs))
	for i, a := range addrs {
		peers[i] = NewPeer(a)
	}
	return &Fleet{peers: peers}
}

// Peers returns the fleet's peers in construction order.
func (f *Fleet) Peers() []*Peer { return f.peers }

// Close releases every peer's connection pool.
func (f *Fleet) Close() {
	for _, p := range f.peers {
		p.Close()
	}
}

// Discover hellos every peer and merges what they report into per-
// relation remote views. It fails loudly on disagreement — peers that
// report different metadata for the same relation name have not loaded
// identical data identically, and merging their streams would corrupt
// results — and on partial coverage (a shard no responding peer owns),
// because a coordinator missing a shard can never certify a top-K.
func (f *Fleet) Discover(ctx context.Context) (map[string]*RemoteRelation, error) {
	if len(f.peers) == 0 {
		return nil, fmt.Errorf("shardrpc: fleet has no peers")
	}
	rels := make(map[string]*RemoteRelation)
	for _, p := range f.peers {
		resp, err := p.Call(ctx, &Request{Verb: VerbHello})
		if err != nil {
			return nil, fmt.Errorf("shardrpc: hello %s: %w", p.Addr, err)
		}
		if resp.Hello == nil {
			return nil, fmt.Errorf("shardrpc: peer %s answered hello without a body", p.Addr)
		}
		for _, ri := range resp.Hello.Relations {
			r, ok := rels[ri.Name]
			if !ok {
				r = &RemoteRelation{
					Name:     ri.Name,
					MaxScore: ri.MaxScore,
					Dim:      ri.Dim,
					Tuples:   ri.Tuples,
					Shards:   ri.Shards,
					Owners:   make(map[int][]*Peer),
					Bounds:   make(map[int]relation.ShardBounds),
				}
				rels[ri.Name] = r
			} else if r.MaxScore != ri.MaxScore || r.Dim != ri.Dim || r.Tuples != ri.Tuples || r.Shards != ri.Shards {
				return nil, fmt.Errorf(
					"shardrpc: peers disagree on relation %q (peer %s reports maxScore=%v dim=%d tuples=%d shards=%d, fleet has maxScore=%v dim=%d tuples=%d shards=%d); all shard servers must load identical data with identical -shards/-shard-strategy",
					ri.Name, p.Addr, ri.MaxScore, ri.Dim, ri.Tuples, ri.Shards, r.MaxScore, r.Dim, r.Tuples, r.Shards)
			}
			for _, own := range ri.Owned {
				if own.Index < 0 || own.Index >= r.Shards {
					return nil, fmt.Errorf("shardrpc: peer %s owns shard %d of relation %q, out of range [0,%d)", p.Addr, own.Index, ri.Name, r.Shards)
				}
				if prev, seen := r.Bounds[own.Index]; seen && !boundsEqual(prev, own.Bounds) {
					return nil, fmt.Errorf("shardrpc: peers disagree on the bounds of relation %q shard %d", ri.Name, own.Index)
				}
				r.Owners[own.Index] = append(r.Owners[own.Index], p)
				r.Bounds[own.Index] = own.Bounds
			}
		}
	}
	for name, r := range rels {
		for s := 0; s < r.Shards; s++ {
			if len(r.Owners[s]) == 0 {
				return nil, fmt.Errorf("shardrpc: no peer owns shard %d of relation %q — the fleet cannot answer queries over it", s, name)
			}
		}
	}
	return rels, nil
}

func boundsEqual(a, b relation.ShardBounds) bool {
	if a.Radius != b.Radius || a.MaxScore != b.MaxScore || a.Tuples != b.Tuples || len(a.Centroid) != len(b.Centroid) {
		return false
	}
	for i := range a.Centroid {
		if a.Centroid[i] != b.Centroid[i] {
			return false
		}
	}
	return true
}
