package shardrpc

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/relation"
)

// Retry policy for transient transport failures: redial and re-issue up
// to maxAttempts times with bounded exponential backoff. Structured
// api.Errors from the server are NOT retried — the server answered; it
// just said no.
const (
	maxAttempts    = 4
	backoffBase    = 25 * time.Millisecond
	backoffCap     = 400 * time.Millisecond
	defaultTimeout = 5 * time.Second
)

// Peer is one remote shard server: an address, a pool of idle
// connections, and the per-peer health counters the coordinator exports.
// A Peer is safe for concurrent use; individual connections are not, so
// streaming callers check one out for the duration of a stream.
type Peer struct {
	// Addr is the server's host:port.
	Addr string
	// DialTimeout bounds connection establishment; PullTimeout bounds one
	// request/response exchange. Zero means defaultTimeout.
	DialTimeout time.Duration
	PullTimeout time.Duration
	// ObservePull, when set, receives the duration of every completed
	// exchange (success or failure) — the hook the service layer binds to
	// its per-peer latency histogram without shardrpc importing obs.
	ObservePull func(d time.Duration, err error)

	// Pulls counts exchanges attempted, Retries those re-issued after a
	// transport failure, Reconnects the dials that were not first contact.
	Pulls      atomic.Int64
	Retries    atomic.Int64
	Reconnects atomic.Int64
	// Hedges counts hedged requests issued TO this peer; HedgeWins those
	// whose response was adopted ahead of the primary's.
	Hedges    atomic.Int64
	HedgeWins atomic.Int64

	mu     sync.Mutex
	idle   []net.Conn
	dialed bool
	closed bool
	brk    *Breaker

	// Recent exchange durations (successes only), the basis of the
	// adaptive hedge trigger: hedge when the primary is slower than the
	// peer's own recent p90.
	latMu sync.Mutex
	lat   [latWindow]int64 // nanoseconds, ring
	latN  int              // filled size
	latI  int              // next write index
}

// latWindow is the size of the per-peer latency ring.
const latWindow = 32

// Breaker returns the peer's circuit breaker, creating it with default
// thresholds on first use.
func (p *Peer) Breaker() *Breaker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.brk == nil {
		p.brk = NewBreaker(BreakerConfig{})
	}
	return p.brk
}

// SetBreakerConfig replaces the peer's breaker with a fresh closed one
// under cfg. Call before serving traffic.
func (p *Peer) SetBreakerConfig(cfg BreakerConfig) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.brk = NewBreaker(cfg)
}

// observeLatency records one successful exchange duration.
func (p *Peer) observeLatency(d time.Duration) {
	p.latMu.Lock()
	p.lat[p.latI] = int64(d)
	p.latI = (p.latI + 1) % latWindow
	if p.latN < latWindow {
		p.latN++
	}
	p.latMu.Unlock()
}

// defaultHedgeDelay is the adaptive trigger before any latency history
// exists.
const defaultHedgeDelay = 50 * time.Millisecond

// hedgeDelay returns this peer's adaptive hedge trigger: the p90 of its
// recent successful exchanges (so only the slowest decile of requests
// hedge), clamped to [1ms, pullTimeout/2].
func (p *Peer) hedgeDelay() time.Duration {
	p.latMu.Lock()
	n := p.latN
	var buf [latWindow]int64
	copy(buf[:], p.lat[:])
	p.latMu.Unlock()
	if n < 8 {
		return defaultHedgeDelay
	}
	s := buf[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	d := time.Duration(s[(n*9)/10])
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if hi := p.pullTimeout() / 2; d > hi {
		d = hi
	}
	return d
}

// NewPeer returns a peer for addr with default timeouts.
func NewPeer(addr string) *Peer { return &Peer{Addr: addr} }

func (p *Peer) dialTimeout() time.Duration {
	if p.DialTimeout > 0 {
		return p.DialTimeout
	}
	return defaultTimeout
}

func (p *Peer) pullTimeout() time.Duration {
	if p.PullTimeout > 0 {
		return p.PullTimeout
	}
	return defaultTimeout
}

// get returns an idle pooled connection or dials a new one.
func (p *Peer) get(ctx context.Context) (net.Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("shardrpc: peer %s is closed", p.Addr)
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	again := p.dialed
	p.dialed = true
	p.mu.Unlock()
	if again {
		p.Reconnects.Add(1)
	}
	d := net.Dialer{Timeout: p.dialTimeout()}
	return d.DialContext(ctx, "tcp", p.Addr)
}

// put returns a connection to the idle pool. Only connections in a clean
// framing state (one full response read per request written) may be
// returned; anything doubtful must be closed instead.
func (p *Peer) put(c net.Conn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close drops the idle pool. Checked-out connections are unaffected;
// they are closed when their streams finish.
func (p *Peer) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// exchange performs one request/response on a specific connection under
// the pull deadline, reporting to ObservePull.
func (p *Peer) exchange(c net.Conn, req *Request, resp *Response) error {
	p.Pulls.Add(1)
	start := time.Now()
	err := func() error {
		if err := c.SetDeadline(time.Now().Add(p.pullTimeout())); err != nil {
			return err
		}
		if err := writeFrame(c, req); err != nil {
			return err
		}
		*resp = Response{}
		return readFrame(c, resp)
	}()
	d := time.Since(start)
	if err == nil {
		p.observeLatency(d)
	}
	if p.ObservePull != nil {
		p.ObservePull(d, err)
	}
	return err
}

// Call performs one pooled request/response exchange with retries: a
// transport failure closes the connection, backs off, redials, and
// re-issues the request. Safe for every verb except VerbNext, whose
// stream state is connection-bound (remoteSource handles that case by
// re-pulling at its offset instead). A structured server-side failure is
// returned as its *api.Error without retrying.
func (p *Peer) Call(ctx context.Context, req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			p.Retries.Add(1)
			if err := sleepCtx(ctx, backoff(attempt)); err != nil {
				return nil, err
			}
		}
		brk := p.Breaker()
		if !brk.Allow() {
			// Open circuit: fail fast instead of burning the rest of the
			// retry budget on a peer known to be down.
			if lastErr == nil {
				lastErr = fmt.Errorf("circuit open")
			}
			break
		}
		c, err := p.get(ctx)
		if err != nil {
			brk.Record(false)
			lastErr = err
			continue
		}
		var resp Response
		if err := p.exchange(c, req, &resp); err != nil {
			brk.Record(false)
			c.Close()
			lastErr = err
			continue
		}
		// The peer answered — a structured refusal still proves liveness.
		brk.Record(true)
		p.put(c)
		if resp.Err != nil {
			return nil, resp.Err
		}
		return &resp, nil
	}
	return nil, api.Errorf(api.CodeUnavailable, "peer %s unreachable after %d attempts: %v", p.Addr, maxAttempts, lastErr)
}

// backoff returns the sleep before retry attempt n (n >= 1): a full-
// jitter draw over an exponential window doubling from backoffBase and
// capped at backoffCap. Deterministic backoff made replicas that failed
// together retry in lockstep; the uniform draw over [0, window] spreads
// the retry wave out.
func backoff(n int) time.Duration {
	d := backoffBase << (n - 1)
	if d > backoffCap {
		d = backoffCap
	}
	return backoffJitter(d)
}

// backoffJitter draws the actual sleep given the window. A package
// variable so tests can pin it for deterministic timing.
var backoffJitter = func(window time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(window) + 1))
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RemoteRelation is the coordinator's merged view of one relation across
// a fleet: the metadata every peer agreed on, plus which peers own which
// shard and each shard's bounds. A shard owned by more than one peer
// (replication) gives streaming failover for free.
type RemoteRelation struct {
	Name     string
	MaxScore float64
	Dim      int
	Tuples   int
	Shards   int
	// Owners[s] lists the peers serving shard s, in fleet order.
	Owners map[int][]*Peer
	// Bounds[s] is shard s's bounding metadata.
	Bounds map[int]relation.ShardBounds
	// Hedge is the hedging policy sources over this relation inherit
	// (copied from the fleet at discovery).
	Hedge HedgePolicy
}

// HedgePolicy controls hedged pull/next requests on shards with more
// than one owner: when the primary replica's response is slower than
// the trigger, the same offset is pulled from another replica and the
// first complete response wins. Offset-addressed deterministic streams
// make the race invisible in the output — whichever replica answers,
// the bytes are the same.
type HedgePolicy struct {
	// After is the fixed hedge trigger. Zero selects the adaptive
	// trigger: the primary peer's own recent p90 exchange latency, so
	// only the slowest decile of requests hedge.
	After time.Duration
	// Disable turns hedging off entirely.
	Disable bool
}

// Stub builds the metadata-only relation the engine sees for a remote
// relation: correct name, σ_max, dimensionality, and tuple count, with
// no local tuples behind it.
func (r *RemoteRelation) Stub() (*relation.Relation, error) {
	return relation.NewStub(r.Name, r.MaxScore, r.Dim, r.Tuples)
}

// Fleet is the coordinator's set of shard-server peers.
type Fleet struct {
	peers []*Peer
	// Hedge is stamped onto every RemoteRelation Discover builds.
	Hedge HedgePolicy
}

// SetBreakerConfig applies cfg to every peer's circuit breaker.
func (f *Fleet) SetBreakerConfig(cfg BreakerConfig) {
	for _, p := range f.peers {
		p.SetBreakerConfig(cfg)
	}
}

// NewFleet builds a fleet over one peer per address.
func NewFleet(addrs []string) *Fleet {
	peers := make([]*Peer, len(addrs))
	for i, a := range addrs {
		peers[i] = NewPeer(a)
	}
	return &Fleet{peers: peers}
}

// Peers returns the fleet's peers in construction order.
func (f *Fleet) Peers() []*Peer { return f.peers }

// Close releases every peer's connection pool.
func (f *Fleet) Close() {
	for _, p := range f.peers {
		p.Close()
	}
}

// Discover hellos every peer and merges what they report into per-
// relation remote views. It fails loudly on disagreement — peers that
// report different metadata for the same relation name have not loaded
// identical data identically, and merging their streams would corrupt
// results — and on partial coverage (a shard no responding peer owns),
// because a coordinator missing a shard can never certify a top-K.
func (f *Fleet) Discover(ctx context.Context) (map[string]*RemoteRelation, error) {
	if len(f.peers) == 0 {
		return nil, fmt.Errorf("shardrpc: fleet has no peers")
	}
	rels := make(map[string]*RemoteRelation)
	for _, p := range f.peers {
		resp, err := p.Call(ctx, &Request{Verb: VerbHello})
		if err != nil {
			return nil, fmt.Errorf("shardrpc: hello %s: %w", p.Addr, err)
		}
		if resp.Hello == nil {
			return nil, fmt.Errorf("shardrpc: peer %s answered hello without a body", p.Addr)
		}
		for _, ri := range resp.Hello.Relations {
			r, ok := rels[ri.Name]
			if !ok {
				r = &RemoteRelation{
					Name:     ri.Name,
					MaxScore: ri.MaxScore,
					Dim:      ri.Dim,
					Tuples:   ri.Tuples,
					Shards:   ri.Shards,
					Owners:   make(map[int][]*Peer),
					Bounds:   make(map[int]relation.ShardBounds),
					Hedge:    f.Hedge,
				}
				rels[ri.Name] = r
			} else if r.MaxScore != ri.MaxScore || r.Dim != ri.Dim || r.Tuples != ri.Tuples || r.Shards != ri.Shards {
				return nil, fmt.Errorf(
					"shardrpc: peers disagree on relation %q (peer %s reports maxScore=%v dim=%d tuples=%d shards=%d, fleet has maxScore=%v dim=%d tuples=%d shards=%d); all shard servers must load identical data with identical -shards/-shard-strategy",
					ri.Name, p.Addr, ri.MaxScore, ri.Dim, ri.Tuples, ri.Shards, r.MaxScore, r.Dim, r.Tuples, r.Shards)
			}
			for _, own := range ri.Owned {
				if own.Index < 0 || own.Index >= r.Shards {
					return nil, fmt.Errorf("shardrpc: peer %s owns shard %d of relation %q, out of range [0,%d)", p.Addr, own.Index, ri.Name, r.Shards)
				}
				if prev, seen := r.Bounds[own.Index]; seen && !boundsEqual(prev, own.Bounds) {
					return nil, fmt.Errorf("shardrpc: peers disagree on the bounds of relation %q shard %d", ri.Name, own.Index)
				}
				r.Owners[own.Index] = append(r.Owners[own.Index], p)
				r.Bounds[own.Index] = own.Bounds
			}
		}
	}
	for name, r := range rels {
		for s := 0; s < r.Shards; s++ {
			if len(r.Owners[s]) == 0 {
				return nil, fmt.Errorf("shardrpc: no peer owns shard %d of relation %q — the fleet cannot answer queries over it", s, name)
			}
		}
	}
	return rels, nil
}

func boundsEqual(a, b relation.ShardBounds) bool {
	if a.Radius != b.Radius || a.MaxScore != b.MaxScore || a.Tuples != b.Tuples || len(a.Centroid) != len(b.Centroid) {
		return false
	}
	for i := range a.Centroid {
		if a.Centroid[i] != b.Centroid[i] {
			return false
		}
	}
	return true
}
