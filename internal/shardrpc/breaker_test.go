package shardrpc

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerConsecutiveFailuresOpen(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Record(false)
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state=%v, want closed", i+1, got)
		}
	}
	b.Record(false) // third consecutive failure trips it
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state=%v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens=%d, want 1", b.Opens())
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	clk.advance(time.Second + time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("after cooldown state=%v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens with a fresh cooldown.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after failed probe state=%v, want open", got)
	}
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe denied")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after successful probe state=%v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("freshly closed breaker denied a request")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 3})
	// Alternate failures and successes: never trips on the consecutive
	// rule (and the window stays below half errors).
	for i := 0; i < 6; i++ {
		b.Record(false)
		b.Record(true)
		b.Record(true)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state=%v, want closed (no 3 consecutive failures)", got)
	}
}

func TestBreakerErrorRateOpens(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 100, ErrorRate: 0.5, WindowMin: 8})
	// Alternate strictly: 50% error rate, never 2 consecutive failures.
	// Once WindowMin outcomes are in, the rate rule trips.
	for i := 0; i < 4; i++ {
		b.Record(false)
		b.Record(true)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state=%v, want open via error rate", got)
	}
}

func TestBreakerAbandonReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	b.Record(false)
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	if b.Allow() {
		t.Fatal("second probe admitted while first in flight")
	}
	b.Abandon()
	if !b.Allow() {
		t.Fatal("probe slot not released by Abandon")
	}
}

func TestBreakerIgnoresStaleResultsWhileOpen(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour})
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state=%v, want open", got)
	}
	// A request admitted before the trip completes late; the breaker
	// must stay open for its cooldown.
	b.Record(true)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("stale success closed the breaker: state=%v", got)
	}
}
