package shardrpc

import (
	"context"
	"fmt"
	"net"

	"repro/api"
	"repro/internal/relation"
)

// RemoteSource streams one remote shard as a relation.BoundedSource: the
// engine and merge layers cannot tell it from a local shard stream. It
// pulls batches over a checked-out peer connection, resumes
// byte-identically after a broken connection by re-pulling at its
// consumed offset (failing over to a replica owner when one exists), and
// reports its shard's key lower bound so MergedSource defers opening it
// — the mechanism behind distance-aware shard pruning. A RemoteSource is
// single-stream state and must not be shared across goroutines.
type RemoteSource struct {
	parent *relation.Relation // metadata stub of the logical relation
	kind   relation.AccessKind
	bound  float64

	relName string
	shard   int
	access  string
	query   []float64
	batch   int
	owners  []*Peer
	ctx     context.Context

	// opened flips on the first NextKeyed call: a source that ends its
	// query with opened still false was pruned — the merge never needed
	// any key at or past its bound.
	opened bool

	conn     net.Conn
	peer     *Peer // owner of conn
	ownerIdx int   // owner to try on the next (re)connect
	buf      []WireTuple
	pos      int
	offset   int // rows consumed from the stream (resume point)
	done     bool
}

// OpenRemoteShard builds the stream of one shard of a discovered remote
// relation. parent must be the stub (or local twin) of the logical
// relation; access is the wire access name (api.AccessDistance or
// api.AccessScore) with query set for distance access. Nothing is sent
// until the first read — constructing a RemoteSource is free, which is
// what lets a coordinator set up every shard's source and let the merge
// decide which ones to actually open. batch <= 0 selects DefaultBatch.
func OpenRemoteShard(ctx context.Context, parent *relation.Relation, rr *RemoteRelation, shard int, access string, query []float64, batch int) (*RemoteSource, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	kind, err := kindOf(access)
	if err != nil {
		return nil, err
	}
	owners := rr.Owners[shard]
	if len(owners) == 0 {
		return nil, fmt.Errorf("shardrpc: no peer owns shard %d of relation %q", shard, rr.Name)
	}
	bounds, ok := rr.Bounds[shard]
	if !ok {
		return nil, fmt.Errorf("shardrpc: no bounds for shard %d of relation %q", shard, rr.Name)
	}
	var bound float64
	switch kind {
	case relation.ScoreAccess:
		// Score streams ascend in key −score; the shard's true σ_max gives
		// the exact first key. No slack needed: the bound is a recorded
		// minimum, not derived arithmetic.
		bound = -bounds.MaxScore
	default:
		bound = bounds.DistanceLowerBound(query)
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &RemoteSource{
		parent:  parent,
		kind:    kind,
		bound:   bound,
		relName: rr.Name,
		shard:   shard,
		access:  access,
		query:   query,
		batch:   batch,
		owners:  owners,
		ctx:     ctx,
	}, nil
}

// kindOf maps a wire access name onto the relation-layer access kind.
func kindOf(access string) (relation.AccessKind, error) {
	switch access {
	case api.AccessScore:
		return relation.ScoreAccess, nil
	case api.AccessDistance:
		return relation.DistanceAccess, nil
	}
	return 0, fmt.Errorf("shardrpc: unknown access kind %q", access)
}

// Kind implements relation.Source.
func (r *RemoteSource) Kind() relation.AccessKind { return r.kind }

// Relation implements relation.Source: the logical parent, so σ_max,
// dimensionality, and error messages reflect what the caller queried.
func (r *RemoteSource) Relation() *relation.Relation { return r.parent }

// KeyLowerBound implements relation.BoundedSource.
func (r *RemoteSource) KeyLowerBound() float64 { return r.bound }

// Opened reports whether the stream was ever read. False after a query
// completes means the shard was pruned.
func (r *RemoteSource) Opened() bool { return r.opened }

// Shard returns the shard index this source streams.
func (r *RemoteSource) Shard() int { return r.shard }

// Next implements relation.Source.
func (r *RemoteSource) Next() (relation.Tuple, error) {
	t, _, _, err := r.NextKeyed()
	return t, err
}

// NextKeyed implements relation.KeyedSource. Transport failures retry
// transparently (redial, replica failover, offset resume); only after
// the retry budget is spent does it fail, with an *api.Error of code
// CodeUnavailable.
func (r *RemoteSource) NextKeyed() (relation.Tuple, float64, int, error) {
	r.opened = true
	for r.pos >= len(r.buf) {
		if r.done {
			return relation.Tuple{}, 0, 0, relation.ErrExhausted
		}
		if err := r.fetch(); err != nil {
			return relation.Tuple{}, 0, 0, err
		}
	}
	w := r.buf[r.pos]
	r.pos++
	r.offset++
	return w.Tuple(), w.Key, w.Ord, nil
}

// fetch pulls the next batch into buf. A healthy checked-out connection
// continues the stream with VerbNext; otherwise it (re)connects —
// rotating through replica owners — and re-opens with VerbPull at the
// consumed offset, which resumes the deterministic stream exactly where
// the last delivered row left it.
func (r *RemoteSource) fetch() error {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(r.ctx, backoff(attempt)); err != nil {
				return err
			}
		}
		verb := VerbNext
		if r.conn == nil {
			peer := r.owners[r.ownerIdx%len(r.owners)]
			r.ownerIdx++
			if attempt > 0 || lastErr != nil {
				peer.Retries.Add(1)
			}
			c, err := peer.get(r.ctx)
			if err != nil {
				lastErr = fmt.Errorf("dial %s: %w", peer.Addr, err)
				continue
			}
			r.conn, r.peer = c, peer
			verb = VerbPull
		}
		req := Request{
			Verb:     verb,
			Relation: r.relName,
			Shard:    r.shard,
			Access:   r.access,
			Query:    r.query,
			Offset:   r.offset,
			Batch:    r.batch,
		}
		var resp Response
		if err := r.peer.exchange(r.conn, &req, &resp); err != nil {
			r.conn.Close()
			r.conn, r.peer = nil, nil
			lastErr = err
			continue
		}
		if resp.Err != nil {
			// The server answered: a structured refusal, not a transport
			// fault. Surface it without burning retries.
			r.release()
			return resp.Err
		}
		r.buf, r.pos, r.done = resp.Tuples, 0, resp.Done
		if r.done {
			r.release()
		}
		return nil
	}
	return api.Errorf(api.CodeUnavailable,
		"shard %d of relation %q unreachable after %d attempts (last error: %v)",
		r.shard, r.relName, maxAttempts, lastErr)
}

// release returns the checked-out connection to its peer's pool. The
// connection is always in a clean framing state here (every exchange
// either completed or closed it), and an abandoned server-side stream
// cursor is harmless: the next pull on the connection resets it.
func (r *RemoteSource) release() {
	if r.conn != nil {
		r.peer.put(r.conn)
		r.conn, r.peer = nil, nil
	}
}

// Close releases the source's connection without draining the stream.
// Idempotent; the source stays formally usable (a later read re-pulls at
// its offset), though callers treat Close as the end of its life.
func (r *RemoteSource) Close() { r.release() }

// Exhausted reports whether the stream ended naturally (every row
// delivered).
func (r *RemoteSource) Exhausted() bool { return r.done && r.pos >= len(r.buf) }

var _ relation.BoundedSource = (*RemoteSource)(nil)
