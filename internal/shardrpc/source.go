package shardrpc

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/api"
	"repro/internal/relation"
)

// RemoteSource streams one remote shard as a relation.BoundedSource: the
// engine and merge layers cannot tell it from a local shard stream. It
// pulls batches over a checked-out peer connection, resumes
// byte-identically after a broken connection by re-pulling at its
// consumed offset (failing over to a replica owner when one exists), and
// reports its shard's key lower bound so MergedSource defers opening it
// — the mechanism behind distance-aware shard pruning. A RemoteSource is
// single-stream state and must not be shared across goroutines.
type RemoteSource struct {
	parent *relation.Relation // metadata stub of the logical relation
	kind   relation.AccessKind
	bound  float64

	relName string
	shard   int
	access  string
	query   []float64
	batch   int
	owners  []*Peer
	ctx     context.Context
	hedge   HedgePolicy

	// opened flips on the first NextKeyed call: a source that ends its
	// query with opened still false was pruned — the merge never needed
	// any key at or past its bound.
	opened bool

	// partial lets the source degrade instead of failing: when every
	// replica is unreachable or open-circuit, the stream ends early and
	// missing records that its shard's tail was abandoned.
	partial bool
	missing bool

	conn     net.Conn
	peer     *Peer // owner of conn
	ownerIdx int   // owner to try on the next (re)connect
	buf      []WireTuple
	pos      int
	offset   int // rows consumed from the stream (resume point)
	done     bool

	// Hedge budget: hedges stay under ~10% of exchanges.
	pulls  int
	hedges int
}

// OpenRemoteShard builds the stream of one shard of a discovered remote
// relation. parent must be the stub (or local twin) of the logical
// relation; access is the wire access name (api.AccessDistance or
// api.AccessScore) with query set for distance access. Nothing is sent
// until the first read — constructing a RemoteSource is free, which is
// what lets a coordinator set up every shard's source and let the merge
// decide which ones to actually open. batch <= 0 selects DefaultBatch.
func OpenRemoteShard(ctx context.Context, parent *relation.Relation, rr *RemoteRelation, shard int, access string, query []float64, batch int) (*RemoteSource, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	kind, err := kindOf(access)
	if err != nil {
		return nil, err
	}
	owners := rr.Owners[shard]
	if len(owners) == 0 {
		return nil, fmt.Errorf("shardrpc: no peer owns shard %d of relation %q", shard, rr.Name)
	}
	bounds, ok := rr.Bounds[shard]
	if !ok {
		return nil, fmt.Errorf("shardrpc: no bounds for shard %d of relation %q", shard, rr.Name)
	}
	var bound float64
	switch kind {
	case relation.ScoreAccess:
		// Score streams ascend in key −score; the shard's true σ_max gives
		// the exact first key. No slack needed: the bound is a recorded
		// minimum, not derived arithmetic.
		bound = -bounds.MaxScore
	default:
		bound = bounds.DistanceLowerBound(query)
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &RemoteSource{
		parent:  parent,
		kind:    kind,
		bound:   bound,
		relName: rr.Name,
		shard:   shard,
		access:  access,
		query:   query,
		batch:   batch,
		owners:  owners,
		ctx:     ctx,
		hedge:   rr.Hedge,
	}, nil
}

// kindOf maps a wire access name onto the relation-layer access kind.
func kindOf(access string) (relation.AccessKind, error) {
	switch access {
	case api.AccessScore:
		return relation.ScoreAccess, nil
	case api.AccessDistance:
		return relation.DistanceAccess, nil
	}
	return 0, fmt.Errorf("shardrpc: unknown access kind %q", access)
}

// Kind implements relation.Source.
func (r *RemoteSource) Kind() relation.AccessKind { return r.kind }

// Relation implements relation.Source: the logical parent, so σ_max,
// dimensionality, and error messages reflect what the caller queried.
func (r *RemoteSource) Relation() *relation.Relation { return r.parent }

// KeyLowerBound implements relation.BoundedSource.
func (r *RemoteSource) KeyLowerBound() float64 { return r.bound }

// Opened reports whether the stream was ever read. False after a query
// completes means the shard was pruned.
func (r *RemoteSource) Opened() bool { return r.opened }

// Shard returns the shard index this source streams.
func (r *RemoteSource) Shard() int { return r.shard }

// RelationName returns the logical relation this source streams.
func (r *RemoteSource) RelationName() string { return r.relName }

// SetPartial switches the source into partial mode: when every replica
// of its shard is unreachable or open-circuit, the stream ends early
// (reporting Missing) instead of failing the query. The default —
// partial off — fails with CodeUnavailable as strict callers expect.
func (r *RemoteSource) SetPartial(ok bool) { r.partial = ok }

// Missing reports whether the source abandoned its shard: partial mode
// was on and every replica was down when more rows were needed. A
// missing source's delivered prefix is still exact; only the tail (or,
// when it never connected, the whole shard) is absent.
func (r *RemoteSource) Missing() bool { return r.missing }

// Next implements relation.Source.
func (r *RemoteSource) Next() (relation.Tuple, error) {
	t, _, _, err := r.NextKeyed()
	return t, err
}

// NextKeyed implements relation.KeyedSource. Transport failures retry
// transparently (redial, replica failover, offset resume); only after
// the retry budget is spent does it fail, with an *api.Error of code
// CodeUnavailable.
func (r *RemoteSource) NextKeyed() (relation.Tuple, float64, int, error) {
	r.opened = true
	for r.pos >= len(r.buf) {
		if r.done {
			return relation.Tuple{}, 0, 0, relation.ErrExhausted
		}
		if err := r.fetch(); err != nil {
			return relation.Tuple{}, 0, 0, err
		}
	}
	w := r.buf[r.pos]
	r.pos++
	r.offset++
	return w.Tuple(), w.Key, w.Ord, nil
}

// fetch pulls the next batch into buf. A healthy checked-out connection
// continues the stream with VerbNext; otherwise it (re)connects —
// rotating through replica owners whose circuit breakers admit traffic
// — and re-opens with VerbPull at the consumed offset, which resumes
// the deterministic stream exactly where the last delivered row left
// it. When every replica is open-circuit the fetch fails fast without
// burning the retry budget on a shard known to be down; in partial mode
// that (and an exhausted retry budget) degrades the stream to an early
// end instead of an error.
func (r *RemoteSource) fetch() error {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(r.ctx, backoff(attempt)); err != nil {
				return err
			}
		}
		verb := VerbNext
		if r.conn == nil {
			peer := r.pickOwner()
			if peer == nil {
				if lastErr == nil {
					lastErr = fmt.Errorf("all %d replica(s) open-circuit", len(r.owners))
				}
				return r.unreachable(lastErr)
			}
			if attempt > 0 || lastErr != nil {
				peer.Retries.Add(1)
			}
			c, err := peer.get(r.ctx)
			if err != nil {
				peer.Breaker().Record(false)
				lastErr = fmt.Errorf("dial %s: %w", peer.Addr, err)
				continue
			}
			r.conn, r.peer = c, peer
			verb = VerbPull
		}
		req := Request{
			Verb:     verb,
			Relation: r.relName,
			Shard:    r.shard,
			Access:   r.access,
			Query:    r.query,
			Offset:   r.offset,
			Batch:    r.batch,
		}
		resp, err := r.exchangeHedged(&req)
		if err != nil {
			if r.ctx.Err() != nil {
				return r.ctx.Err()
			}
			lastErr = err
			continue
		}
		if resp.Err != nil {
			// The server answered: a structured refusal, not a transport
			// fault. Surface it without burning retries.
			r.release()
			return resp.Err
		}
		r.buf, r.pos, r.done = resp.Tuples, 0, resp.Done
		if r.done {
			r.release()
		}
		return nil
	}
	return r.unreachable(lastErr)
}

// pickOwner returns the next replica whose breaker admits a request,
// rotating from where the last (re)connect left off, or nil when every
// replica is open-circuit.
func (r *RemoteSource) pickOwner() *Peer {
	for i := 0; i < len(r.owners); i++ {
		p := r.owners[r.ownerIdx%len(r.owners)]
		r.ownerIdx++
		if p.Breaker().Allow() {
			return p
		}
	}
	return nil
}

// unreachable ends a fetch whose every avenue failed: an error in
// strict mode, a degraded early end of stream in partial mode.
func (r *RemoteSource) unreachable(lastErr error) error {
	if r.partial {
		r.missing = true
		r.buf, r.pos, r.done = nil, 0, true
		r.release()
		return nil
	}
	return api.Errorf(api.CodeUnavailable,
		"shard %d of relation %q unreachable after %d attempts (last error: %v)",
		r.shard, r.relName, maxAttempts, lastErr)
}

// exchResult is one lane of a (possibly hedged) exchange.
type exchResult struct {
	resp  *Response
	err   error
	conn  net.Conn
	peer  *Peer
	hedge bool
}

// exchangeHedged performs one exchange on the checked-out connection,
// hedging it against another replica when the primary's response is
// slower than the hedge trigger: the hedge re-pulls the SAME offset on
// its own connection, and the first complete response wins. Because
// shard streams are deterministic and offset-addressed, the output is
// byte-identical whichever lane wins. On success r.conn/r.peer hold the
// winning lane's connection; on failure the connection state is cleared.
func (r *RemoteSource) exchangeHedged(req *Request) (*Response, error) {
	r.pulls++
	primary, pconn := r.peer, r.conn
	results := make(chan exchResult, 2)
	inflight := 1
	go func() {
		var resp Response
		err := primary.exchange(pconn, req, &resp)
		results <- exchResult{resp: &resp, err: err, conn: pconn, peer: primary}
	}()

	var hedgeC <-chan time.Time
	if r.hedgeAllowed() {
		t := time.NewTimer(r.hedgeDelay(primary))
		defer t.Stop()
		hedgeC = t.C
	}

	for {
		select {
		case res := <-results:
			inflight--
			if res.err == nil {
				res.peer.Breaker().Record(true)
				if res.hedge {
					res.peer.HedgeWins.Add(1)
				}
				r.conn, r.peer = res.conn, res.peer
				r.abandon(results, inflight, res.conn)
				return res.resp, nil
			}
			res.peer.Breaker().Record(false)
			if res.conn != nil {
				res.conn.Close()
			}
			if inflight > 0 {
				continue // the other lane may still win
			}
			r.conn, r.peer = nil, nil
			return nil, res.err
		case <-hedgeC:
			hedgeC = nil
			hp := r.pickHedgePeer(primary)
			if hp == nil {
				continue
			}
			inflight++
			r.hedges++
			hp.Hedges.Add(1)
			hreq := *req
			hreq.Verb = VerbPull
			hreq.Offset = r.offset
			go func() {
				c, err := hp.get(r.ctx)
				if err != nil {
					results <- exchResult{err: err, peer: hp, hedge: true}
					return
				}
				var resp Response
				err = hp.exchange(c, &hreq, &resp)
				results <- exchResult{resp: &resp, err: err, conn: c, peer: hp, hedge: true}
			}()
		case <-r.ctx.Done():
			// Closing the primary connection unblocks its exchange; the
			// drainer reaps whatever is still in flight.
			pconn.Close()
			r.conn, r.peer = nil, nil
			r.abandon(results, inflight, nil)
			return nil, r.ctx.Err()
		}
	}
}

// abandon reaps n still-in-flight lanes in the background: their
// connections are closed (never pooled — their framing state is
// unknown), any half-open probe slot is released without a verdict,
// and their outcomes are not held against the peer (the loss may be
// one we induced by closing the winner race).
func (r *RemoteSource) abandon(results chan exchResult, n int, keep net.Conn) {
	if n <= 0 {
		return
	}
	go func() {
		for i := 0; i < n; i++ {
			res := <-results
			if res.conn != nil && res.conn != keep {
				res.conn.Close()
			}
			if res.peer != nil {
				res.peer.Breaker().Abandon()
			}
		}
	}()
}

// hedgeAllowed reports whether this fetch may hedge: hedging on, more
// than one replica, and the budget (~10% of exchanges, with one free)
// not yet spent.
func (r *RemoteSource) hedgeAllowed() bool {
	return !r.hedge.Disable && len(r.owners) > 1 && r.hedges*10 < r.pulls+9
}

// hedgeDelay is the trigger for hedging one exchange: the fixed policy
// value, or the primary's own recent p90 so only its slowest decile of
// requests hedge.
func (r *RemoteSource) hedgeDelay(primary *Peer) time.Duration {
	if r.hedge.After > 0 {
		return r.hedge.After
	}
	return primary.hedgeDelay()
}

// pickHedgePeer returns a replica other than the primary whose breaker
// admits a request, or nil.
func (r *RemoteSource) pickHedgePeer(primary *Peer) *Peer {
	for i := 0; i < len(r.owners); i++ {
		p := r.owners[(r.ownerIdx+i)%len(r.owners)]
		if p == primary {
			continue
		}
		if p.Breaker().Allow() {
			return p
		}
	}
	return nil
}

// release returns the checked-out connection to its peer's pool. The
// connection is always in a clean framing state here (every exchange
// either completed or closed it), and an abandoned server-side stream
// cursor is harmless: the next pull on the connection resets it.
func (r *RemoteSource) release() {
	if r.conn != nil {
		r.peer.put(r.conn)
		r.conn, r.peer = nil, nil
	}
}

// Close releases the source's connection without draining the stream.
// Idempotent; the source stays formally usable (a later read re-pulls at
// its offset), though callers treat Close as the end of its life.
func (r *RemoteSource) Close() { r.release() }

// Exhausted reports whether the stream ended naturally (every row
// delivered).
func (r *RemoteSource) Exhausted() bool { return r.done && r.pos >= len(r.buf) }

var _ relation.BoundedSource = (*RemoteSource)(nil)
