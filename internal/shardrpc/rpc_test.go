package shardrpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/api"
	"repro/internal/relation"
	"repro/internal/vec"
)

// testRelation builds a relation engineered for ties: discrete scores
// and grid-snapped vectors, so the ordinal tie-break is exercised on the
// wire exactly as it is locally.
func testRelation(t testing.TB, name string, seed int64, size, dim int) *relation.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, size)
	for i := range tuples {
		v := vec.New(dim)
		for c := range v {
			v[c] = float64(r.Intn(6))
		}
		tuples[i] = relation.Tuple{
			ID:    fmt.Sprintf("%s%03d", name, i),
			Score: 0.25 + 0.25*float64(r.Intn(3)),
			Vec:   v,
		}
	}
	rel, err := relation.New(name, 1.0, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// testBackend serves one sharded relation with an ownership predicate.
type testBackend struct {
	name   string
	rels   map[string]*relation.Sharded
	owns   func(shard int) bool
	events []api.ResultEvent
}

func (b *testBackend) Hello() HelloInfo {
	h := HelloInfo{Server: b.name}
	for name, s := range b.rels {
		rel := s.Relation()
		ri := RelationInfo{
			Name:     name,
			MaxScore: rel.MaxScore,
			Dim:      rel.Dim(),
			Tuples:   rel.Len(),
			Shards:   s.NumShards(),
		}
		for i := 0; i < s.NumShards(); i++ {
			if b.owns(i) {
				ri.Owned = append(ri.Owned, OwnedShard{Index: i, Bounds: s.ShardBounds(i)})
			}
		}
		h.Relations = append(h.Relations, ri)
	}
	return h
}

func (b *testBackend) OpenShard(relName string, shard int, access string, query []float64) (relation.KeyedSource, error) {
	s, ok := b.rels[relName]
	if !ok {
		return nil, api.Errorf(api.CodeNotFound, "relation %q is not registered", relName)
	}
	if shard < 0 || shard >= s.NumShards() || !b.owns(shard) {
		return nil, api.Errorf(api.CodeNotFound, "shard %d of %q is not served here", shard, relName)
	}
	kind, err := kindOf(access)
	if err != nil {
		return nil, api.Errorf(api.CodeBadRequest, "%v", err)
	}
	src, err := s.ShardSource(shard, kind, query, nil, true)
	if err != nil {
		return nil, err
	}
	return src.(relation.KeyedSource), nil
}

func (b *testBackend) Query(_ context.Context, _ *api.Request) ([]api.ResultEvent, error) {
	return b.events, nil
}

// startServer runs a server over backend on a loopback port.
func startServer(t *testing.T, backend Backend) (addr string) {
	t.Helper()
	srv := NewServer(backend)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return bound.String()
}

// shardedFixture partitions a tie-heavy relation and serves it from n
// servers, server i owning shard s when s%n == i, returning the fleet
// and the discovered remote view.
func shardedFixture(t *testing.T, shards, servers int, strategy relation.PartitionStrategy) (*relation.Sharded, *Fleet, *RemoteRelation) {
	t.Helper()
	rel := testRelation(t, "pts", 7, 90, 2)
	sharded, err := relation.Partition(rel, shards, strategy)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, servers)
	for i := 0; i < servers; i++ {
		i := i
		addrs[i] = startServer(t, &testBackend{
			name: fmt.Sprintf("srv%d", i),
			rels: map[string]*relation.Sharded{"pts": sharded},
			owns: func(s int) bool { return s%servers == i },
		})
	}
	fleet := NewFleet(addrs)
	t.Cleanup(fleet.Close)
	remotes, err := fleet.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := remotes["pts"]
	if !ok {
		t.Fatalf("discover returned %v, want relation pts", remotes)
	}
	return sharded, fleet, rr
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Verb: VerbPull, Relation: "r", Shard: 3, Access: api.AccessDistance,
		Query: []float64{1.5, math.Nextafter(2, 3)}, Offset: 17, Batch: 64}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Verb != in.Verb || out.Shard != in.Shard || out.Offset != in.Offset ||
		math.Float64bits(out.Query[1]) != math.Float64bits(in.Query[1]) {
		t.Fatalf("frame round trip: got %+v, want %+v", out, in)
	}
	// A hostile length prefix must be refused, not allocated.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if err := readFrame(&hdr, &out); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// drainKeyed pulls src dry, recording the exact bits of every row.
type keyedRow struct {
	id       string
	key, ord uint64
	score    uint64
	vec      []uint64
}

func drainKeyed(t *testing.T, src relation.KeyedSource, max int) []keyedRow {
	t.Helper()
	var rows []keyedRow
	for len(rows) < max {
		tu, key, ord, err := src.NextKeyed()
		if errors.Is(err, relation.ErrExhausted) {
			return rows
		}
		if err != nil {
			t.Fatal(err)
		}
		row := keyedRow{id: tu.ID, key: math.Float64bits(key), ord: uint64(ord), score: math.Float64bits(tu.Score)}
		for _, c := range tu.Vec {
			row.vec = append(row.vec, math.Float64bits(c))
		}
		rows = append(rows, row)
	}
	return rows
}

func rowsEqual(a, b []keyedRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.id != y.id || x.key != y.key || x.ord != y.ord || x.score != y.score || len(x.vec) != len(y.vec) {
			return false
		}
		for j := range x.vec {
			if x.vec[j] != y.vec[j] {
				return false
			}
		}
	}
	return true
}

// TestRemoteStreamByteIdentity: every shard streamed over the wire is
// bit-for-bit the local shard stream, for both access kinds.
func TestRemoteStreamByteIdentity(t *testing.T) {
	sharded, _, rr := shardedFixture(t, 4, 2, relation.HashPartition)
	stub, err := rr.Stub()
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{2, 2}
	for _, access := range []string{api.AccessDistance, api.AccessScore} {
		kind, _ := kindOf(access)
		for s := 0; s < sharded.NumShards(); s++ {
			local, err := sharded.ShardSource(s, kind, q, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := OpenRemoteShard(context.Background(), stub, rr, s, access, q, 7)
			if err != nil {
				t.Fatal(err)
			}
			want := drainKeyed(t, local.(relation.KeyedSource), 1<<20)
			got := drainKeyed(t, remote, 1<<20)
			if !rowsEqual(got, want) {
				t.Fatalf("%s shard %d: remote stream differs from local (%d vs %d rows)", access, s, len(got), len(want))
			}
			if !remote.Exhausted() {
				t.Fatalf("%s shard %d: remote source not marked exhausted after drain", access, s)
			}
		}
	}
}

// TestRemoteMergeByteIdentity: the k-way merge over remote shard streams
// is bit-for-bit the merge over local ones, and bounded (latent) priming
// changes nothing.
func TestRemoteMergeByteIdentity(t *testing.T) {
	sharded, _, rr := shardedFixture(t, 5, 2, relation.GridPartition)
	stub, err := rr.Stub()
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, 0.5}
	for _, access := range []string{api.AccessDistance, api.AccessScore} {
		kind, _ := kindOf(access)
		locals := make([]relation.Source, sharded.NumShards())
		for s := range locals {
			src, err := sharded.ShardSource(s, kind, q, nil, true)
			if err != nil {
				t.Fatal(err)
			}
			locals[s] = src
		}
		localMerged, err := sharded.Merge(locals)
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]relation.KeyedSource, sharded.NumShards())
		for s := range inputs {
			rs, err := OpenRemoteShard(context.Background(), stub, rr, s, access, q, 11)
			if err != nil {
				t.Fatal(err)
			}
			inputs[s] = rs
		}
		remoteMerged, err := relation.NewMergedSource(stub, kind, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			wt, werr := localMerged.Next()
			gt, gerr := remoteMerged.Next()
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s row %d: local err %v, remote err %v", access, i, werr, gerr)
			}
			if werr != nil {
				break
			}
			if wt.ID != gt.ID || math.Float64bits(wt.Score) != math.Float64bits(gt.Score) {
				t.Fatalf("%s row %d: local %q/%x, remote %q/%x", access, i,
					wt.ID, math.Float64bits(wt.Score), gt.ID, math.Float64bits(gt.Score))
			}
		}
	}
}

// TestRemoteMergePrunesFarShards: under grid partitioning, draining only
// a short prefix near the query must leave at least one far shard's
// stream unopened — the observable form of distance-aware pruning.
func TestRemoteMergePrunesFarShards(t *testing.T) {
	sharded, _, rr := shardedFixture(t, 6, 2, relation.GridPartition)
	stub, err := rr.Stub()
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0}
	inputs := make([]relation.KeyedSource, sharded.NumShards())
	remotes := make([]*RemoteSource, sharded.NumShards())
	for s := range inputs {
		rs, err := OpenRemoteShard(context.Background(), stub, rr, s, api.AccessDistance, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		inputs[s], remotes[s] = rs, rs
	}
	merged, err := relation.NewMergedSource(stub, relation.DistanceAccess, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := merged.Next(); err != nil {
			t.Fatal(err)
		}
	}
	opened := 0
	for _, rs := range remotes {
		if rs.Opened() {
			opened++
		}
	}
	if opened == len(remotes) {
		t.Fatalf("short prefix opened all %d shards; bounds pruned nothing", opened)
	}
}

// TestRemoteSourceResume: killing the connection mid-stream must be
// invisible — the source redials and re-pulls at its offset, and the
// delivered rows stay bit-for-bit identical.
func TestRemoteSourceResume(t *testing.T) {
	sharded, _, rr := shardedFixture(t, 3, 1, relation.HashPartition)
	stub, err := rr.Stub()
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{1, 1}
	local, err := sharded.ShardSource(0, relation.DistanceAccess, q, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	want := drainKeyed(t, local.(relation.KeyedSource), 1<<20)

	remote, err := OpenRemoteShard(context.Background(), stub, rr, 0, api.AccessDistance, q, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []keyedRow
	for i := 0; ; i++ {
		tu, key, ord, err := remote.NextKeyed()
		if errors.Is(err, relation.ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		row := keyedRow{id: tu.ID, key: math.Float64bits(key), ord: uint64(ord), score: math.Float64bits(tu.Score)}
		got = append(got, row)
		// Sever the live connection every few rows, in the middle of a
		// buffered batch and at batch edges alike.
		if i%5 == 2 && remote.conn != nil {
			remote.conn.Close()
		}
	}
	for i := range got {
		got[i].vec = want[i].vec // vec not tracked above; compare the rest
	}
	if !rowsEqual(got, want) {
		t.Fatalf("resumed stream differs: %d vs %d rows", len(got), len(want))
	}
	if remote.peerRetriesTotal() == 0 {
		t.Fatal("stream survived connection kills without recording any retries")
	}
}

// peerRetriesTotal sums retry counters over the source's owners.
func (r *RemoteSource) peerRetriesTotal() int64 {
	var n int64
	for _, p := range r.owners {
		n += p.Retries.Load()
	}
	return n
}

// TestDeadPeerCleanError: a peer that is gone for good must surface as a
// structured unavailable error, not a hang or a raw transport error.
func TestDeadPeerCleanError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore

	stub, err := relation.NewStub("pts", 1.0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	peer := NewPeer(addr)
	peer.DialTimeout = 200 * time.Millisecond
	peer.PullTimeout = 200 * time.Millisecond
	rr := &RemoteRelation{
		Name: "pts", MaxScore: 1.0, Dim: 2, Tuples: 10, Shards: 1,
		Owners: map[int][]*Peer{0: {peer}},
		Bounds: map[int]relation.ShardBounds{0: {Centroid: []float64{0, 0}, Radius: 1, MaxScore: 1, Tuples: 10}},
	}
	rs, err := OpenRemoteShard(context.Background(), stub, rr, 0, api.AccessScore, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = rs.NextKeyed()
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("dead peer: got %v, want *api.Error with code %q", err, api.CodeUnavailable)
	}
}

// TestQueryForwarding: the query verb carries the event stream verbatim.
func TestQueryForwarding(t *testing.T) {
	score := 0.75
	events := []api.ResultEvent{
		{Type: api.EventResult, Rank: 1, Result: &api.Combination{Score: score}},
		{Type: api.EventSummary, Summary: &api.Summary{Count: 1}},
	}
	addr := startServer(t, &testBackend{name: "q", rels: map[string]*relation.Sharded{},
		owns: func(int) bool { return true }, events: events})
	peer := NewPeer(addr)
	defer peer.Close()
	resp, err := peer.Call(context.Background(), &Request{Verb: VerbQuery, Request: &api.Request{Version: api.Version}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) != 2 || resp.Events[0].Result == nil ||
		math.Float64bits(resp.Events[0].Result.Score) != math.Float64bits(score) {
		t.Fatalf("forwarded events corrupted: %+v", resp.Events)
	}
}

// TestDiscoverRejectsDisagreement: peers reporting different metadata
// for one relation name must fail discovery.
func TestDiscoverRejectsDisagreement(t *testing.T) {
	relA := testRelation(t, "pts", 1, 40, 2)
	relB := testRelation(t, "pts", 2, 44, 2) // different tuple count
	sa, err := relation.Partition(relA, 2, relation.HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := relation.Partition(relB, 2, relation.HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	addrA := startServer(t, &testBackend{name: "a", rels: map[string]*relation.Sharded{"pts": sa}, owns: func(int) bool { return true }})
	addrB := startServer(t, &testBackend{name: "b", rels: map[string]*relation.Sharded{"pts": sb}, owns: func(int) bool { return true }})
	fleet := NewFleet([]string{addrA, addrB})
	defer fleet.Close()
	if _, err := fleet.Discover(context.Background()); err == nil {
		t.Fatal("discovery accepted disagreeing peers")
	}
}

// TestDiscoverRejectsCoverageGaps: a shard nobody owns fails discovery.
func TestDiscoverRejectsCoverageGaps(t *testing.T) {
	rel := testRelation(t, "pts", 3, 40, 2)
	s, err := relation.Partition(rel, 4, relation.HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, &testBackend{name: "a", rels: map[string]*relation.Sharded{"pts": s},
		owns: func(i int) bool { return i != 1 }})
	fleet := NewFleet([]string{addr})
	defer fleet.Close()
	if _, err := fleet.Discover(context.Background()); err == nil {
		t.Fatal("discovery accepted a fleet missing shard 1")
	}
}

// TestScoreBoundIsFirstKey: the advertised score bound equals the true
// first key of the shard stream — exactness the latent merge relies on.
func TestScoreBoundIsFirstKey(t *testing.T) {
	sharded, _, rr := shardedFixture(t, 4, 2, relation.HashPartition)
	stub, err := rr.Stub()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sharded.NumShards(); s++ {
		rs, err := OpenRemoteShard(context.Background(), stub, rr, s, api.AccessScore, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		bound := rs.KeyLowerBound()
		_, key, _, err := rs.NextKeyed()
		if err != nil {
			t.Fatal(err)
		}
		if bound != key {
			t.Fatalf("shard %d: score bound %v, first key %v", s, bound, key)
		}
		rs.Close()
	}
}

// TestDistanceBoundIsSound: for many random queries, every shard's
// advertised distance bound must lower-bound its true first key.
func TestDistanceBoundIsSound(t *testing.T) {
	sharded, _, rr := shardedFixture(t, 5, 2, relation.GridPartition)
	stub, err := rr.Stub()
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		q := []float64{rnd.Float64() * 6, rnd.Float64() * 6}
		for s := 0; s < sharded.NumShards(); s++ {
			rs, err := OpenRemoteShard(context.Background(), stub, rr, s, api.AccessDistance, q, 0)
			if err != nil {
				t.Fatal(err)
			}
			bound := rs.KeyLowerBound()
			_, key, _, err := rs.NextKeyed()
			if err != nil {
				t.Fatal(err)
			}
			rs.Close()
			if bound > key {
				t.Fatalf("trial %d shard %d: bound %v exceeds first key %v", trial, s, bound, key)
			}
		}
	}
}
