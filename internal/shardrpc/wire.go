// Package shardrpc is the distributed transport of the system: a
// stdlib-only, server-streaming RPC over TCP that lets one proxserve
// process (a coordinator) read shard streams and forward whole queries
// to others (shard servers).
//
// The protocol is deliberately minimal. Every message is a frame — a
// 4-byte big-endian length followed by that many bytes of JSON — and
// every exchange is strictly one request frame answered by one response
// frame. Streaming is client-driven: the coordinator pulls batches of
// tuples with repeated pull/next requests rather than the server pushing
// an unbounded stream. That keeps a connection in a clean framing state
// between exchanges, so connections pool safely, an abandoned stream
// costs nothing (the next pull on the connection simply resets the
// server's stream cursor), and a retry after a broken connection resumes
// byte-identically by re-pulling at the recorded offset.
//
// JSON is the payload encoding because Go's encoding/json marshals
// float64 values shortest-round-trip: the exact bit pattern of every
// key, score, and coordinate survives the wire, which is what makes a
// coordinator's k-way merge byte-identical to a single-node run.
package shardrpc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/api"
	"repro/internal/relation"
)

// Protocol verbs. Verbs other than VerbNext are stateless with respect
// to the connection; VerbNext continues the shard stream opened by the
// most recent VerbPull on the same connection.
const (
	// VerbHello asks the server to describe itself: which relations it
	// holds, how they are partitioned, which shards it owns, and each
	// owned shard's bounding metadata.
	VerbHello = "hello"
	// VerbPull opens a shard stream at an offset and returns the first
	// batch of (key, ordinal, tuple) rows in canonical order.
	VerbPull = "pull"
	// VerbNext returns the next batch of the connection's current stream.
	VerbNext = "next"
	// VerbQuery runs a whole api.Request on the server and returns its
	// api.ResultEvent stream verbatim.
	VerbQuery = "query"
	// VerbPing checks liveness.
	VerbPing = "ping"
)

// Request is the single client→server message shape; which fields matter
// depends on Verb.
type Request struct {
	Verb string `json:"verb"`
	// Pull fields.
	Relation string    `json:"relation,omitempty"`
	Shard    int       `json:"shard,omitempty"`
	Access   string    `json:"access,omitempty"` // api.AccessDistance or api.AccessScore
	Query    []float64 `json:"query,omitempty"`  // distance access only
	Offset   int       `json:"offset,omitempty"` // rows to skip (resume point)
	// Batch caps the rows of a pull/next response; servers clamp it to
	// [1, MaxBatch].
	Batch int `json:"batch,omitempty"`
	// Request carries the forwarded query for VerbQuery.
	Request *api.Request `json:"request,omitempty"`
}

// Response is the single server→client message shape. Exactly one of
// the verb-specific payloads is populated on success; Err reports a
// structured failure (the connection stays usable after one).
type Response struct {
	Err    *api.Error        `json:"err,omitempty"`
	Hello  *HelloInfo        `json:"hello,omitempty"`
	Tuples []WireTuple       `json:"tuples,omitempty"`
	Done   bool              `json:"done,omitempty"` // stream exhausted; no VerbNext needed
	Events []api.ResultEvent `json:"events,omitempty"`
}

// HelloInfo describes one shard server.
type HelloInfo struct {
	// Server is a human-readable identity (host:port the server listens on).
	Server string `json:"server"`
	// Relations lists every relation the server can serve shards of.
	Relations []RelationInfo `json:"relations"`
}

// RelationInfo is one relation's partition layout as seen by one server.
// Coordinators cross-check these between peers: every peer must agree on
// MaxScore, Dim, Tuples, and Shards for a relation of the same name,
// since ordinal agreement (and hence merge correctness) follows from
// every server having partitioned identical data identically.
type RelationInfo struct {
	Name     string  `json:"name"`
	MaxScore float64 `json:"maxScore"`
	Dim      int     `json:"dim"`
	Tuples   int     `json:"tuples"`
	// Shards is the total shard count of the partition.
	Shards int `json:"shards"`
	// Owned lists the shards this server serves, with their bounds.
	Owned []OwnedShard `json:"owned"`
}

// OwnedShard is one shard a server serves.
type OwnedShard struct {
	Index  int                  `json:"index"`
	Bounds relation.ShardBounds `json:"bounds"`
}

// WireTuple is one row of a shard stream: the canonical merge key and
// parent ordinal alongside the tuple itself. Key and Ord come from the
// server's KeyedSource, so the coordinator merges on exactly the values
// a local merge would have computed.
type WireTuple struct {
	Key   float64           `json:"key"`
	Ord   int               `json:"ord"`
	ID    string            `json:"id"`
	Score float64           `json:"score"`
	Vec   []float64         `json:"vec"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tuple converts the wire row back into a relation tuple.
func (w WireTuple) Tuple() relation.Tuple {
	return relation.Tuple{ID: w.ID, Score: w.Score, Vec: w.Vec, Attrs: w.Attrs}
}

// MaxBatch caps rows per pull/next response; DefaultBatch is used when a
// request leaves Batch unset.
const (
	MaxBatch     = 8192
	DefaultBatch = 512
)

// maxFrame bounds a frame's payload (64 MiB): far above any legitimate
// batch, low enough that a corrupt or hostile length prefix cannot make
// a reader allocate unboundedly.
const maxFrame = 64 << 20

// writeFrame writes one length-prefixed JSON frame.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("shardrpc: encode frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("shardrpc: frame of %d bytes exceeds the %d-byte limit", len(body), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON frame into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("shardrpc: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("shardrpc: decode frame: %w", err)
	}
	return nil
}
