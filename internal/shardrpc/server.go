package shardrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/api"
	"repro/internal/relation"
)

// Backend is what a shard server serves. The service layer implements it
// over its catalog and executor; shardrpc itself stays a pure transport
// with no dependency on the serving stack.
type Backend interface {
	// Hello describes the server: relations, partition layout, owned
	// shards and their bounds.
	Hello() HelloInfo
	// OpenShard opens the canonical keyed stream of one owned shard for
	// one access configuration. Errors are returned to the client as
	// structured api.Errors (an unowned shard or unknown relation should
	// yield api.CodeNotFound).
	OpenShard(relName string, shard int, access string, query []float64) (relation.KeyedSource, error)
	// Query runs a whole request and returns its event stream.
	Query(ctx context.Context, req *api.Request) ([]api.ResultEvent, error)
}

// Server accepts shardrpc connections and answers them from a Backend.
// Each connection is handled by one goroutine and carries at most one
// open shard stream (the target of VerbNext).
type Server struct {
	backend Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps backend; call Serve or Listen to start accepting.
func NewServer(backend Backend) *Server {
	return &Server{backend: backend, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr and starts serving in a background goroutine,
// returning the bound address (useful with a ":0" addr).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := s.Serve(ln); err != nil {
		ln.Close()
		return nil, err
	}
	return ln.Addr(), nil
}

// Serve starts accepting on an existing listener in a background
// goroutine. It is how chaos builds interpose a fault-injecting
// listener wrapper between the network and the server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("shardrpc: server is closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serve(ln)
	}()
	return nil
}

func (s *Server) serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// handle runs one connection's request/response loop until the peer
// hangs up or a transport error occurs. Structured failures (unknown
// relation, bad verb) are answered in-band and do not end the loop.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// stream is the connection's current shard stream (VerbNext target).
	var stream relation.KeyedSource
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return
		}
		var resp Response
		switch req.Verb {
		case VerbPing:
			// Empty success response.
		case VerbHello:
			h := s.backend.Hello()
			resp.Hello = &h
		case VerbPull:
			src, err := s.backend.OpenShard(req.Relation, req.Shard, req.Access, req.Query)
			if err == nil {
				err = skip(src, req.Offset)
			}
			if err != nil {
				stream = nil
				resp.Err = asWireError(err)
				break
			}
			stream = src
			resp.Tuples, resp.Done, err = fill(stream, batchSize(req.Batch))
			if err != nil {
				stream = nil
				resp = Response{Err: asWireError(err)}
			}
		case VerbNext:
			if stream == nil {
				resp.Err = api.Errorf(api.CodeBadRequest, "next without an open stream on this connection")
				break
			}
			var err error
			resp.Tuples, resp.Done, err = fill(stream, batchSize(req.Batch))
			if err != nil {
				stream = nil
				resp = Response{Err: asWireError(err)}
			}
		case VerbQuery:
			if req.Request == nil {
				resp.Err = api.Errorf(api.CodeBadRequest, "query verb needs a request body")
				break
			}
			events, err := s.backend.Query(context.Background(), req.Request)
			if err != nil {
				resp.Err = asWireError(err)
				break
			}
			resp.Events = events
		default:
			resp.Err = api.Errorf(api.CodeBadRequest, "unknown verb %q", req.Verb)
		}
		if resp.Done {
			stream = nil
		}
		if err := writeFrame(conn, &resp); err != nil {
			return
		}
	}
}

// batchSize clamps a requested batch to [1, MaxBatch].
func batchSize(n int) int {
	switch {
	case n <= 0:
		return DefaultBatch
	case n > MaxBatch:
		return MaxBatch
	}
	return n
}

// skip advances a freshly opened stream past n rows (the client's resume
// offset). Exhausting during the skip is fine — the following fill
// reports Done.
func skip(src relation.KeyedSource, n int) error {
	for i := 0; i < n; i++ {
		if _, _, _, err := src.NextKeyed(); err != nil {
			if errors.Is(err, relation.ErrExhausted) {
				return nil
			}
			return err
		}
	}
	return nil
}

// fill drains up to batch rows from the stream into wire form.
func fill(src relation.KeyedSource, batch int) ([]WireTuple, bool, error) {
	out := make([]WireTuple, 0, batch)
	for len(out) < batch {
		t, key, ord, err := src.NextKeyed()
		if errors.Is(err, relation.ErrExhausted) {
			return out, true, nil
		}
		if err != nil {
			return nil, false, err
		}
		out = append(out, WireTuple{Key: key, Ord: ord, ID: t.ID, Score: t.Score, Vec: t.Vec, Attrs: t.Attrs})
	}
	return out, false, nil
}

// asWireError shapes any backend failure as a structured api.Error so
// clients always get a code they can act on.
func asWireError(err error) *api.Error {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr
	}
	return api.Errorf(api.CodeInternal, "%s", fmt.Sprintf("%v", err))
}
