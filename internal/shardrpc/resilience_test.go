package shardrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/api"
	"repro/internal/faultinject"
	"repro/internal/relation"
)

// pinJitter pins the backoff jitter for a test, restoring it after.
func pinJitter(t *testing.T, f func(time.Duration) time.Duration) {
	t.Helper()
	old := backoffJitter
	backoffJitter = f
	t.Cleanup(func() { backoffJitter = old })
}

// fullWindow makes every backoff sleep its whole window (deterministic
// and long enough to cancel into).
func fullWindow(w time.Duration) time.Duration { return w }

// deadAddr returns a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestBackoffFullJitter(t *testing.T) {
	for n := 1; n <= 6; n++ {
		window := backoffBase << (n - 1)
		if window > backoffCap {
			window = backoffCap
		}
		for i := 0; i < 200; i++ {
			d := backoff(n)
			if d < 0 || d > window {
				t.Fatalf("backoff(%d) = %v outside [0, %v]", n, d, window)
			}
		}
	}
	// The rand source is injectable, so timing-sensitive tests can pin it.
	pinJitter(t, func(w time.Duration) time.Duration { return w / 2 })
	if got := backoff(1); got != backoffBase/2 {
		t.Fatalf("pinned backoff(1) = %v, want %v", got, backoffBase/2)
	}
	if got := backoff(10); got != backoffCap/2 {
		t.Fatalf("pinned backoff(10) = %v, want %v", got, backoffCap/2)
	}
}

// TestCallCancellationMidRetry: cancelling the context while Call is in
// a backoff sleep must return promptly with the context's own error —
// not an *api.Error — and leave no checked-out connection behind.
func TestCallCancellationMidRetry(t *testing.T) {
	pinJitter(t, fullWindow)
	p := NewPeer(deadAddr(t))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Land inside a backoff sleep (first window is 25ms, after a
		// near-instant refused dial).
		time.Sleep(35 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := p.Call(ctx, &Request{Verb: VerbPing})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		t.Fatalf("cancellation surfaced as *api.Error %v, want the raw ctx.Err()", apiErr)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("cancelled Call took %v, want a prompt return", elapsed)
	}
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	if idle != 0 {
		t.Fatalf("%d connections left in the pool after cancellation", idle)
	}
}

// deadRemote builds a RemoteRelation whose single shard is owned only
// by dead peers.
func deadRemote(t *testing.T, owners ...*Peer) (*relation.Relation, *RemoteRelation) {
	t.Helper()
	rel := testRelation(t, "pts", 11, 20, 2)
	sharded, err := relation.Partition(rel, 1, relation.HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	rr := &RemoteRelation{
		Name:     "pts",
		MaxScore: rel.MaxScore,
		Dim:      rel.Dim(),
		Tuples:   rel.Len(),
		Shards:   1,
		Owners:   map[int][]*Peer{0: owners},
		Bounds:   map[int]relation.ShardBounds{0: sharded.ShardBounds(0)},
	}
	return rel, rr
}

// TestNextKeyedCancellationMidRetry mirrors the Call test for the
// streaming path: a cancel during fetch's backoff sleep returns the
// context error promptly, with no connection checked out.
func TestNextKeyedCancellationMidRetry(t *testing.T) {
	pinJitter(t, fullWindow)
	rel, rr := deadRemote(t, NewPeer(deadAddr(t)))
	ctx, cancel := context.WithCancel(context.Background())
	src, err := OpenRemoteShard(ctx, rel, rr, 0, api.AccessScore, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(35 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, _, err = src.NextKeyed()
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		t.Fatalf("cancellation surfaced as *api.Error %v, want the raw ctx.Err()", apiErr)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("cancelled NextKeyed took %v, want a prompt return", elapsed)
	}
	if src.conn != nil {
		t.Fatal("cancelled source left a connection checked out")
	}
}

// TestBreakerFailFast: once a dead peer's breaker opens, further calls
// stop dialing it at all.
func TestBreakerFailFast(t *testing.T) {
	pinJitter(t, func(time.Duration) time.Duration { return 0 })
	p := NewPeer(deadAddr(t))
	p.SetBreakerConfig(BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour})
	if _, err := p.Call(context.Background(), &Request{Verb: VerbPing}); err == nil {
		t.Fatal("call to a dead peer succeeded")
	}
	if got := p.Breaker().State(); got != BreakerOpen {
		t.Fatalf("breaker state=%v after a failed call, want open", got)
	}
	redials := p.Reconnects.Load()
	_, err := p.Call(context.Background(), &Request{Verb: VerbPing})
	if err == nil {
		t.Fatal("open-circuit call succeeded")
	}
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("err = %v, want CodeUnavailable", err)
	}
	if got := p.Reconnects.Load(); got != redials {
		t.Fatalf("open-circuit call dialed the peer (%d redials, had %d)", got, redials)
	}
}

// TestPartialDegradesDeadShard: in partial mode a shard whose every
// replica is down ends its stream early and reports Missing, instead of
// failing the query; strict mode keeps the CodeUnavailable error.
func TestPartialDegradesDeadShard(t *testing.T) {
	pinJitter(t, func(time.Duration) time.Duration { return 0 })
	dead := NewPeer(deadAddr(t))
	rel, rr := deadRemote(t, dead)

	strict, err := OpenRemoteShard(context.Background(), rel, rr, 0, api.AccessScore, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = strict.NextKeyed()
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("strict source err = %v, want CodeUnavailable", err)
	}
	if strict.Missing() {
		t.Fatal("strict source reported Missing")
	}

	soft, err := OpenRemoteShard(context.Background(), rel, rr, 0, api.AccessScore, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	soft.SetPartial(true)
	_, _, _, err = soft.NextKeyed()
	if !errors.Is(err, relation.ErrExhausted) {
		t.Fatalf("partial source err = %v, want ErrExhausted", err)
	}
	if !soft.Missing() {
		t.Fatal("partial source did not report Missing")
	}
	if !soft.Exhausted() {
		t.Fatal("degraded source should read as exhausted to the merge")
	}
}

// startFaultedServer serves backend through a fault-injecting listener.
func startFaultedServer(t *testing.T, backend Backend, inj *faultinject.Injector) (addr string) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(backend)
	if err := srv.Serve(inj.Listener(raw)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return raw.Addr().String()
}

// TestHedgedPullRescuesStalledReplica: with the primary replica stalled
// by an injected delay, the hedge fires on the other replica, the
// stream completes well under the stall, and the rows are byte-for-byte
// the rows a healthy direct stream yields.
func TestHedgedPullRescuesStalledReplica(t *testing.T) {
	rel := testRelation(t, "pts", 7, 90, 2)
	sharded, err := relation.Partition(rel, 2, relation.HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	backend := func(name string) *testBackend {
		return &testBackend{
			name: name,
			rels: map[string]*relation.Sharded{"pts": sharded},
			owns: func(int) bool { return true },
		}
	}
	const stall = 600 * time.Millisecond
	inj, err := faultinject.Parse(fmt.Sprintf("verb=pull;action=delay;delay=%s|verb=next;action=delay;delay=%s", stall, stall))
	if err != nil {
		t.Fatal(err)
	}
	slowAddr := startFaultedServer(t, backend("slow"), inj)
	fastAddr := startServer(t, backend("fast"))

	fleet := NewFleet([]string{slowAddr, fastAddr})
	fleet.Hedge = HedgePolicy{After: 30 * time.Millisecond}
	t.Cleanup(fleet.Close)
	remotes, err := fleet.Discover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rr := remotes["pts"]

	src, err := OpenRemoteShard(context.Background(), rel, rr, 0, api.AccessScore, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var got []WireTuple
	for {
		tp, key, ord, err := src.NextKeyed()
		if errors.Is(err, relation.ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, WireTuple{Key: key, Ord: ord, ID: tp.ID, Score: tp.Score, Vec: tp.Vec})
	}
	elapsed := time.Since(start)
	if elapsed >= stall {
		t.Fatalf("stream took %v — the hedge did not rescue it from the %v stall", elapsed, stall)
	}
	hedges := fleet.Peers()[0].Hedges.Load() + fleet.Peers()[1].Hedges.Load()
	if hedges == 0 {
		t.Fatal("no hedged requests were issued")
	}

	// Byte-identity: same rows as the local shard stream.
	local, err := sharded.ShardSource(0, relation.ScoreAccess, nil, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	keyed := local.(relation.KeyedSource)
	for i := 0; ; i++ {
		tp, key, ord, err := keyed.NextKeyed()
		if errors.Is(err, relation.ErrExhausted) {
			if i != len(got) {
				t.Fatalf("remote stream has %d rows, local has %d", len(got), i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(got) {
			t.Fatalf("remote stream ended at row %d, local continues", i)
		}
		w := got[i]
		if w.Key != key || w.Ord != ord || w.ID != tp.ID || w.Score != tp.Score {
			t.Fatalf("row %d differs: remote {%v %d %s %v}, local {%v %d %s %v}", i, w.Key, w.Ord, w.ID, w.Score, key, ord, tp.ID, tp.Score)
		}
	}
}
