package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewAndDim(t *testing.T) {
	v := New(4)
	if v.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("component %d = %v, want 0", i, x)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestOfCopies(t *testing.T) {
	src := []float64{1, 2, 3}
	v := Of(src...)
	src[0] = 99
	if v[0] != 1 {
		t.Fatal("Of did not copy its arguments")
	}
}

func TestAddSubScale(t *testing.T) {
	a := Of(1, 2, 3)
	b := Of(4, 5, 6)
	if got := a.Add(b); !got.Equal(Of(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(Of(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(-2); !got.Equal(Of(-2, -4, -6)) {
		t.Errorf("Scale = %v", got)
	}
	// Originals untouched.
	if !a.Equal(Of(1, 2, 3)) || !b.Equal(Of(4, 5, 6)) {
		t.Error("operands mutated")
	}
}

func TestAddScaled(t *testing.T) {
	a := Of(1, 1)
	b := Of(2, -2)
	if got := a.AddScaled(0.5, b); !got.Equal(Of(2, 0)) {
		t.Errorf("AddScaled = %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := Of(1, 2)
	a.AddInPlace(Of(3, 4))
	if !a.Equal(Of(4, 6)) {
		t.Errorf("AddInPlace = %v", a)
	}
	a.ScaleInPlace(0.5)
	if !a.Equal(Of(2, 3)) {
		t.Errorf("ScaleInPlace = %v", a)
	}
}

func TestDotNormDist(t *testing.T) {
	a := Of(3, 4)
	if a.Norm() != 5 {
		t.Errorf("Norm = %v", a.Norm())
	}
	if a.Norm2() != 25 {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
	b := Of(0, 0)
	if a.Dist(b) != 5 || a.Dist2(b) != 25 {
		t.Errorf("Dist = %v Dist2 = %v", a.Dist(b), a.Dist2(b))
	}
	if got := a.Dot(Of(1, 1)); got != 7 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Add did not panic")
		}
	}()
	Of(1).Add(Of(1, 2))
}

func TestUnit(t *testing.T) {
	u, ok := Of(0, 3).Unit()
	if !ok || !u.ApproxEqual(Of(0, 1), 1e-15) {
		t.Errorf("Unit = %v ok=%v", u, ok)
	}
	z, ok := Of(0, 0).Unit()
	if ok {
		t.Errorf("Unit of zero vector reported ok, got %v", z)
	}
}

func TestMean(t *testing.T) {
	m := Mean(Of(0, 0), Of(2, 2), Of(4, -2))
	if !m.ApproxEqual(Of(2, 0), 1e-15) {
		t.Errorf("Mean = %v", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean() did not panic")
		}
	}()
	Mean()
}

func TestProjectOntoRay(t *testing.T) {
	// Paper Example 3.2: ν = [-0.5, 0.25], q = 0.
	nu := Of(-0.5, 0.25)
	u, _ := nu.Unit()
	q := Of(0, 0)
	theta1 := Of(0, -0.5).ProjectOntoRay(q, u)
	theta3 := Of(-1, 1).ProjectOntoRay(q, u)
	if !almostEq(theta1, -0.2236, 1e-3) {
		t.Errorf("θ1 = %v, want ≈ -0.22", theta1)
	}
	if !almostEq(theta3, 1.3416, 1e-3) {
		t.Errorf("θ3 = %v, want ≈ 1.34", theta3)
	}
}

func TestParseAndString(t *testing.T) {
	v, err := Parse("1.5, -2, 3e2")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Of(1.5, -2, 300)) {
		t.Errorf("Parse = %v", v)
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse of empty string succeeded")
	}
	if _, err := Parse("a,b"); err == nil {
		t.Error("Parse of junk succeeded")
	}
	if s := Of(1, 2).String(); s != "[1 2]" {
		t.Errorf("String = %q", s)
	}
}

func TestIsFinite(t *testing.T) {
	if !Of(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if Of(1, math.NaN()).IsFinite() || Of(math.Inf(1)).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2)
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func randomVec(r *rand.Rand, d int) Vector {
	v := New(d)
	for i := range v {
		v[i] = r.NormFloat64() * 10
	}
	return v
}

// Property: the Cauchy–Schwarz inequality and triangle inequality hold.
func TestQuickCauchySchwarzTriangle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(8)
		a, b, c := randomVec(r, d), randomVec(r, d), randomVec(r, d)
		if math.Abs(a.Dot(b)) > a.Norm()*b.Norm()+1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean minimizes the sum of squared distances against random
// perturbations (first-order optimality of the centroid).
func TestQuickMeanMinimizesSquaredDistance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(5)
		k := 2 + r.Intn(5)
		pts := make([]Vector, k)
		for i := range pts {
			pts[i] = randomVec(r, d)
		}
		m := Mean(pts...)
		sum := func(c Vector) float64 {
			var s float64
			for _, p := range pts {
				s += p.Dist2(c)
			}
			return s
		}
		base := sum(m)
		for trial := 0; trial < 8; trial++ {
			if sum(m.Add(randomVec(r, d).Scale(0.05))) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: projection onto a ray never exceeds the vector's distance from
// the origin of the ray.
func TestQuickProjectionBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		origin := randomVec(r, d)
		dir := randomVec(r, d)
		u, ok := dir.Unit()
		if !ok {
			return true
		}
		x := randomVec(r, d)
		return math.Abs(x.ProjectOntoRay(origin, u)) <= x.Dist(origin)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetrics(t *testing.T) {
	a, b := Of(0, 0), Of(3, 4)
	cases := []struct {
		m    Metric
		want float64
	}{
		{Euclidean{}, 5},
		{Manhattan{}, 7},
		{Chebyshev{}, 4},
	}
	for _, c := range cases {
		if got := c.m.Distance(a, b); got != c.want {
			t.Errorf("%s.Distance = %v, want %v", c.m.Name(), got, c.want)
		}
	}
}

func TestCosineDistance(t *testing.T) {
	cd := CosineDistance{}
	if got := cd.Distance(Of(1, 0), Of(2, 0)); !almostEq(got, 0, 1e-12) {
		t.Errorf("parallel cosine distance = %v", got)
	}
	if got := cd.Distance(Of(1, 0), Of(0, 5)); !almostEq(got, 1, 1e-12) {
		t.Errorf("orthogonal cosine distance = %v", got)
	}
	if got := cd.Distance(Of(1, 0), Of(-1, 0)); !almostEq(got, 2, 1e-12) {
		t.Errorf("antiparallel cosine distance = %v", got)
	}
	if got := cd.Distance(Of(0, 0), Of(1, 0)); got != 1 {
		t.Errorf("zero-vector cosine distance = %v, want 1", got)
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"euclidean", "l2", "", "manhattan", "l1", "chebyshev", "linf", "cosine"} {
		if MetricByName(name) == nil {
			t.Errorf("MetricByName(%q) = nil", name)
		}
	}
	if MetricByName("nope") != nil {
		t.Error("MetricByName(nope) != nil")
	}
}

func TestMetricSymmetryQuick(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, CosineDistance{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(6)
		a, b := randomVec(r, d), randomVec(r, d)
		for _, m := range metrics {
			if math.Abs(m.Distance(a, b)-m.Distance(b, a)) > 1e-12 {
				return false
			}
			if m.Distance(a, a) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
