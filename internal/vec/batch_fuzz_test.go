package vec

import (
	"encoding/binary"
	"math"
	"testing"
)

// vectorsFromBytes decodes a fuzz payload into a query vector and a
// column of dim-matched vectors. The first byte picks the dimension
// (1..4); every following 8-byte window is one float64 component,
// non-finite values clamped into range so the metric domains stay valid.
func vectorsFromBytes(data []byte) (Vector, []Vector) {
	if len(data) < 1 {
		return nil, nil
	}
	dim := int(data[0]%4) + 1
	data = data[1:]
	var comps []float64
	for len(data) >= 8 {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		// Keep magnitudes bounded so squared distances stay finite.
		if math.Abs(x) > 1e100 {
			x = math.Mod(x, 1e100)
		}
		comps = append(comps, x)
	}
	if len(comps) < dim*2 {
		return nil, nil
	}
	q := Vector(comps[:dim])
	comps = comps[dim:]
	var vs []Vector
	for len(comps) >= dim {
		vs = append(vs, Vector(comps[:dim]))
		comps = comps[dim:]
	}
	return q, vs
}

func seedCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	seed := []byte{2}
	for i := 0; i < 12; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(float64(i)*1.25-3))
		seed = append(seed, b[:]...)
	}
	f.Add(seed)
}

// FuzzDist2Into checks the batched squared-distance kernel against a loop
// of scalar Dist2 calls, requiring bitwise equality.
func FuzzDist2Into(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		q, vs := vectorsFromBytes(data)
		if len(vs) == 0 {
			return
		}
		got := make([]float64, len(vs))
		Dist2Into(got, vs, q)
		for j, v := range vs {
			if want := v.Dist2(q); math.Float64bits(got[j]) != math.Float64bits(want) {
				t.Fatalf("Dist2Into[%d] = %v, scalar %v", j, got[j], want)
			}
		}
	})
}

// FuzzDotInto checks the batched dot-product kernel against scalar Dot,
// and SubDot against the allocate-then-dot composition.
func FuzzDotInto(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		q, vs := vectorsFromBytes(data)
		if len(vs) == 0 {
			return
		}
		got := make([]float64, len(vs))
		DotInto(got, vs, q)
		for j, v := range vs {
			if want := v.Dot(q); math.Float64bits(got[j]) != math.Float64bits(want) {
				t.Fatalf("DotInto[%d] = %v, scalar %v", j, got[j], want)
			}
			sd := SubDot(v, q, q)
			if want := v.Sub(q).Dot(q); math.Float64bits(sd) != math.Float64bits(want) {
				t.Fatalf("SubDot[%d] = %v, scalar %v", j, sd, want)
			}
		}
	})
}

// FuzzDistanceBatch checks every built-in metric's batched distance
// kernel against a loop of scalar Distance calls, bitwise.
func FuzzDistanceBatch(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		q, vs := vectorsFromBytes(data)
		if len(vs) == 0 {
			return
		}
		got := make([]float64, len(vs))
		for _, m := range []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, CosineDistance{}} {
			DistanceBatch(m, got, vs, q)
			for j, v := range vs {
				if want := m.Distance(v, q); math.Float64bits(got[j]) != math.Float64bits(want) {
					t.Fatalf("%s batch[%d] = %v, scalar %v", m.Name(), j, got[j], want)
				}
			}
		}
	})
}

// FuzzMeanAccumulate checks that the factored accumulation phase composes
// back to MeanInto (and Mean) bit for bit.
func FuzzMeanAccumulate(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		q, vs := vectorsFromBytes(data)
		if len(vs) == 0 {
			return
		}
		dst := New(len(q))
		copy(dst, vs[0])
		MeanAccumulate(dst, vs[1:])
		dst.ScaleInPlace(1 / float64(len(vs)))
		want := Mean(vs...)
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(want[i]) {
				t.Fatalf("composed mean %v, Mean %v", dst, want)
			}
		}
	})
}
