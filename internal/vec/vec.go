// Package vec provides small dense real vectors and the geometric
// primitives used throughout the proximity rank join library: distances,
// centroids, projections onto rays, and norm manipulation.
//
// Vectors are plain []float64 values wrapped in the Vector type so that
// geometric intent is visible in signatures. All operations treat their
// receivers as immutable unless the name says otherwise (suffix InPlace).
package vec

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a point (or displacement) in R^d.
type Vector []float64

// ErrDimMismatch is returned or caused to panic when two vectors of
// different dimensionality are combined.
var ErrDimMismatch = errors.New("vec: dimension mismatch")

// New returns a zero vector of dimension d.
func New(d int) Vector {
	if d < 0 {
		panic("vec: negative dimension")
	}
	return make(Vector, d)
}

// Of builds a vector from the given components.
func Of(xs ...float64) Vector {
	v := make(Vector, len(xs))
	copy(v, xs)
	return v
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Equal reports whether v and w are component-wise identical.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether v and w agree within tol in every component.
func (v Vector) ApproxEqual(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func (v Vector) mustMatch(w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	v.mustMatch(w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	v.mustMatch(w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns s * v.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AddInPlace sets v = v + w and returns v.
func (v Vector) AddInPlace(w Vector) Vector {
	v.mustMatch(w)
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// ScaleInPlace sets v = s*v and returns v.
func (v Vector) ScaleInPlace(s float64) Vector {
	for i := range v {
		v[i] *= s
	}
	return v
}

// AddScaled returns v + s*w without mutating either operand.
func (v Vector) AddScaled(s float64, w Vector) Vector {
	v.mustMatch(w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + s*w[i]
	}
	return out
}

// Dot returns the inner product vᵀw.
func (v Vector) Dot(w Vector) float64 {
	v.mustMatch(w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm ‖v‖².
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm ‖v‖.
func (v Vector) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Dist returns the Euclidean distance ‖v−w‖.
func (v Vector) Dist(w Vector) float64 { return math.Sqrt(v.Dist2(w)) }

// Dist2 returns the squared Euclidean distance ‖v−w‖².
func (v Vector) Dist2(w Vector) float64 {
	v.mustMatch(w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Unit returns v/‖v‖ and true, or a zero vector and false when ‖v‖ is
// numerically zero (no direction is defined).
func (v Vector) Unit() (Vector, bool) {
	n := v.Norm()
	if n < 1e-300 {
		return New(len(v)), false
	}
	return v.Scale(1 / n), true
}

// ProjectOntoRay returns the scalar length of the orthogonal projection of
// (v − origin) onto the unit direction u. This is the paper's P(x(τ_i))
// operator (eq. 13) with u = (ν−q)/‖ν−q‖ and origin = q.
func (v Vector) ProjectOntoRay(origin, u Vector) float64 {
	return v.Sub(origin).Dot(u)
}

// Mean returns the arithmetic mean of the given vectors. It panics if the
// list is empty or dimensions disagree. For the squared-Euclidean scoring
// geometry of the paper this is the combination centroid µ(τ).
func Mean(vs ...Vector) Vector {
	if len(vs) == 0 {
		panic("vec: mean of no vectors")
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		out.AddInPlace(v)
	}
	return out.ScaleInPlace(1 / float64(len(vs)))
}

// MeanInto computes the arithmetic mean of the given vectors into dst
// (len(dst) must match their dimension) and returns dst. It performs the
// exact floating-point operation sequence of Mean, so the two agree
// bit-for-bit; the only difference is that the caller supplies the
// destination, which lets per-combination scoring run allocation-free.
func MeanInto(dst Vector, vs []Vector) Vector {
	if len(vs) == 0 {
		panic("vec: mean of no vectors")
	}
	dst.mustMatch(vs[0])
	copy(dst, vs[0])
	for _, v := range vs[1:] {
		dst.AddInPlace(v)
	}
	return dst.ScaleInPlace(1 / float64(len(vs)))
}

// String renders v as "[x1 x2 …]" with compact float formatting.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
	}
	b.WriteByte(']')
	return b.String()
}

// Parse parses a vector in the form "x1,x2,…" (or with spaces/semicolons).
func Parse(s string) (Vector, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ';' || r == ' ' || r == '\t'
	})
	if len(fields) == 0 {
		return nil, errors.New("vec: empty vector literal")
	}
	v := make(Vector, len(fields))
	for i, f := range fields {
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("vec: bad component %q: %w", f, err)
		}
		v[i] = x
	}
	return v, nil
}

// IsFinite reports whether every component of v is finite.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
