package vec

import "math"

// Metric is a distance function on R^d. Implementations must satisfy the
// metric axioms on their stated domain; CosineDistance is a metric only on
// the unit sphere (it is used there by the cosine-proximity extension).
type Metric interface {
	// Distance returns the distance between a and b.
	Distance(a, b Vector) float64
	// Name identifies the metric in reports and CLI flags.
	Name() string
}

// Euclidean is the L2 metric, the paper's reference distance.
type Euclidean struct{}

// Distance implements Metric.
func (Euclidean) Distance(a, b Vector) float64 { return a.Dist(b) }

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric. Provided for access-layer generality; the
// tight bounding scheme is specialized to Euclidean geometry only.
type Manhattan struct{}

// Distance implements Metric.
func (Manhattan) Distance(a, b Vector) float64 {
	a.mustMatch(b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance implements Metric.
func (Chebyshev) Distance(a, b Vector) float64 {
	a.mustMatch(b)
	var s float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > s {
			s = d
		}
	}
	return s
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// CosineDistance is 1 − cos(a,b), the dissimilarity named as future work in
// the paper's conclusion. Zero vectors are conventionally at distance 1 from
// everything (no direction information).
type CosineDistance struct{}

// Distance implements Metric.
func (CosineDistance) Distance(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na < 1e-300 || nb < 1e-300 {
		return 1
	}
	c := a.Dot(b) / (na * nb)
	// Clamp against rounding outside [-1, 1].
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// Name implements Metric.
func (CosineDistance) Name() string { return "cosine" }

// MetricByName returns the metric registered under name, or nil.
func MetricByName(name string) Metric {
	switch name {
	case "euclidean", "l2", "":
		return Euclidean{}
	case "manhattan", "l1":
		return Manhattan{}
	case "chebyshev", "linf":
		return Chebyshev{}
	case "cosine":
		return CosineDistance{}
	}
	return nil
}
