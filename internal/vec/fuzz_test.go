package vec

import "testing"

// FuzzParse checks that the vector literal parser never panics and that
// accepted vectors round trip through String (up to formatting precision).
func FuzzParse(f *testing.F) {
	f.Add("1,2,3")
	f.Add("-0.5; 2e10")
	f.Add("")
	f.Add("NaN")
	f.Add("1,,2")
	f.Add("  7  ")
	f.Fuzz(func(t *testing.T, input string) {
		v, err := Parse(input)
		if err != nil {
			return
		}
		if v.Dim() == 0 {
			t.Fatal("accepted an empty vector")
		}
		// String must itself re-parse to the same dimensionality.
		back, err := Parse(v.String()[1 : len(v.String())-1])
		if err != nil {
			t.Fatalf("String() output rejected: %q", v.String())
		}
		if back.Dim() != v.Dim() {
			t.Fatalf("round trip changed dim: %d vs %d", back.Dim(), v.Dim())
		}
	})
}
