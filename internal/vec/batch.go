package vec

import "math"

// Batch kernels over columns of vectors.
//
// The scoring hot path of the engine evaluates blocks of candidate
// combinations at a time; these kernels turn its per-element geometric
// primitives into single passes over a column block. Every kernel
// replays the exact floating-point operation sequence of its scalar
// counterpart element by element, so batch results are bit-identical to
// a loop of scalar calls — the property the engine's byte-identity
// contract rests on (and the one the package fuzz targets check).
//
// The loops hoist the dimension into a local and slice every operand to
// that length up front, which lets the compiler eliminate the per-element
// bounds checks.

// Dist2Into sets dst[j] = vs[j].Dist2(q) for every j. dst must have
// len(vs); every vector must match q's dimension.
func Dist2Into(dst []float64, vs []Vector, q Vector) {
	d := len(q)
	_ = dst[:len(vs)]
	for j, v := range vs {
		v.mustMatch(q)
		v = v[:d]
		var s float64
		for i, x := range v {
			diff := x - q[i]
			s += diff * diff
		}
		dst[j] = s
	}
}

// DotInto sets dst[j] = vs[j].Dot(q) for every j. dst must have len(vs).
func DotInto(dst []float64, vs []Vector, q Vector) {
	d := len(q)
	_ = dst[:len(vs)]
	for j, v := range vs {
		v.mustMatch(q)
		v = v[:d]
		var s float64
		for i, x := range v {
			s += x * q[i]
		}
		dst[j] = s
	}
}

// SubDot returns (a − b)·w without materializing the difference: the
// addition order matches a.Sub(b).Dot(w), so the result is bit-identical.
func SubDot(a, b, w Vector) float64 {
	a.mustMatch(b)
	a.mustMatch(w)
	var s float64
	for i, x := range a {
		s += (x - b[i]) * w[i]
	}
	return s
}

// SubInto sets dst = a − b (all three of one dimension) and returns dst.
// Bit-identical to a.Sub(b) with a caller-owned destination.
func SubInto(dst, a, b Vector) Vector {
	a.mustMatch(b)
	dst.mustMatch(a)
	for i, x := range a {
		dst[i] = x - b[i]
	}
	return dst
}

// AddScaledInto sets dst = v + s*w and returns dst. Bit-identical to
// v.AddScaled(s, w) with a caller-owned destination.
func AddScaledInto(dst Vector, v Vector, s float64, w Vector) Vector {
	v.mustMatch(w)
	dst.mustMatch(v)
	for i, x := range v {
		dst[i] = x + s*w[i]
	}
	return dst
}

// ScaleInto sets dst = s*v and returns dst. Bit-identical to v.Scale(s)
// with a caller-owned destination.
func ScaleInto(dst Vector, s float64, v Vector) Vector {
	dst.mustMatch(v)
	for i, x := range v {
		dst[i] = s * x
	}
	return dst
}

// MeanAccumulate adds each vector of vs into acc in order and returns
// acc. It is the accumulation phase of Mean/MeanInto factored out, so a
// caller can build centroid prefix sums incrementally: MeanInto(dst, vs)
// equals copy(dst, vs[0]); MeanAccumulate(dst, vs[1:]); dst.ScaleInPlace
// (1/len(vs)) bit for bit.
func MeanAccumulate(acc Vector, vs []Vector) Vector {
	d := len(acc)
	for _, v := range vs {
		acc.mustMatch(v)
		v = v[:d]
		for i, x := range v {
			acc[i] += x
		}
	}
	return acc
}

// DistanceBatch sets dst[j] = m.Distance(vs[j], q) for every j, with
// specialized single-pass loops for the built-in metrics. dst must have
// len(vs). Results are bit-identical to the scalar Distance calls.
func DistanceBatch(m Metric, dst []float64, vs []Vector, q Vector) {
	_ = dst[:len(vs)]
	switch m.(type) {
	case Euclidean:
		Dist2Into(dst, vs, q)
		for j := range dst[:len(vs)] {
			dst[j] = math.Sqrt(dst[j])
		}
	case Manhattan:
		d := len(q)
		for j, v := range vs {
			v.mustMatch(q)
			v = v[:d]
			var s float64
			for i, x := range v {
				s += math.Abs(x - q[i])
			}
			dst[j] = s
		}
	case Chebyshev:
		d := len(q)
		for j, v := range vs {
			v.mustMatch(q)
			v = v[:d]
			var s float64
			for i, x := range v {
				if diff := math.Abs(x - q[i]); diff > s {
					s = diff
				}
			}
			dst[j] = s
		}
	case CosineDistance:
		// One q norm for the whole block: the scalar call recomputes it per
		// element, but the recomputation is deterministic, so hoisting it
		// changes no bits.
		nq := q.Norm()
		for j, v := range vs {
			dst[j] = cosineDistanceWith(v, q, nq)
		}
	default:
		for j, v := range vs {
			dst[j] = m.Distance(v, q)
		}
	}
}

// cosineDistanceWith is CosineDistance.Distance with b's norm precomputed.
func cosineDistanceWith(a, b Vector, nb float64) float64 {
	na := a.Norm()
	if na < 1e-300 || nb < 1e-300 {
		return 1
	}
	c := a.Dot(b) / (na * nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}
