package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("At/Set/Add broken: %v", m)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
}

func TestMatrixFromRowsAndTranspose(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	mt := m.Transpose()
	if mt.Rows() != 2 || mt.Cols() != 3 || mt.At(0, 2) != 5 || mt.At(1, 0) != 2 {
		t.Fatalf("transpose wrong: %v", mt)
	}
}

func TestRaggedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	MatrixFromRows([][]float64{{1}, {1, 2}})
}

func TestIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	NewMatrix(1, 1).At(1, 0)
}

func TestMulAndMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul = %v", c)
			}
		}
	}
	v := a.MulVec([]float64{1, -1})
	if v[0] != -1 || v[1] != -1 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestIdentityAndAddScale(t *testing.T) {
	i2 := Identity(2)
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.Mul(i2); got.At(0, 1) != 2 || got.At(1, 0) != 3 {
		t.Fatalf("A*I != A: %v", got)
	}
	s := a.AddMatrix(i2)
	if s.At(0, 0) != 2 || s.At(1, 1) != 5 {
		t.Fatalf("AddMatrix = %v", s)
	}
	sc := a.Clone().ScaleInPlace(2)
	if sc.At(1, 1) != 8 || a.At(1, 1) != 4 {
		t.Fatalf("ScaleInPlace = %v (orig %v)", sc, a)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Identity(3).IsSymmetric(0) {
		t.Error("identity not symmetric")
	}
	m := MatrixFromRows([][]float64{{1, 2}, {2.1, 1}})
	if m.IsSymmetric(0.01) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if !m.IsSymmetric(0.2) {
		t.Error("near-symmetric matrix rejected with loose tol")
	}
	if NewMatrix(2, 3).IsSymmetric(1) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLinear(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUDet(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 8}, {4, 6}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-(-14)) > 1e-12 {
		t.Fatalf("Det = %v, want -14", d)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	wantL := MatrixFromRows([][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(l.At(i, j)-wantL.At(i, j)) > 1e-10 {
				t.Fatalf("L = %v", l)
			}
		}
	}
	x := c.Solve([]float64{1, 2, 3})
	// Verify residual.
	r := a.MulVec(x)
	for i, b := range []float64{1, 2, 3} {
		if math.Abs(r[i]-b) > 1e-9 {
			t.Fatalf("residual %v", r)
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if _, err := FactorCholesky(MatrixFromRows([][]float64{{1, 2}, {2, 1}})); err != ErrNotSPD {
		t.Fatalf("indefinite: err = %v", err)
	}
	if _, err := FactorCholesky(MatrixFromRows([][]float64{{1, 5}, {2, 1}})); err != ErrNotSPD {
		t.Fatalf("asymmetric: err = %v", err)
	}
}

func randomMatrix(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, r.NormFloat64())
		}
	}
	return m
}

// Property: LU solve produces small residuals on random well-conditioned
// systems (diagonally dominated to avoid near-singularity flakes).
func TestQuickLUResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		a := randomMatrix(r, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		res := a.MulVec(x)
		for i := range b {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cholesky of AᵀA + I solves correctly, and L·Lᵀ reconstructs it.
func TestQuickCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		g := randomMatrix(r, n)
		a := g.Transpose().Mul(g).AddMatrix(Identity(n))
		c, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		l := c.L()
		rec := l.Mul(l.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-8*(1+a.MaxAbs()) {
					return false
				}
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := c.Solve(b)
		res := a.MulVec(x)
		for i := range b {
			if math.Abs(res[i]-b[i]) > 1e-7*(1+a.MaxAbs()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: det(A·B) = det(A)·det(B) for random small matrices.
func TestQuickDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a, b := randomMatrix(r, n), randomMatrix(r, n)
		fa, errA := FactorLU(a)
		fb, errB := FactorLU(b)
		fab, errAB := FactorLU(a.Mul(b))
		if errA != nil || errB != nil || errAB != nil {
			return true // singular draw; skip
		}
		lhs, rhs := fab.Det(), fa.Det()*fb.Det()
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringSmoke(t *testing.T) {
	if s := Identity(2).String(); s == "" {
		t.Error("empty String()")
	}
}
