package linalg

import "math"

// LU is an LU factorization with partial pivoting: P·A = L·U, stored packed
// in a single matrix (unit lower triangle implicit).
type LU struct {
	lu    *Matrix
	pivot []int
	sign  int
}

// FactorLU computes the LU factorization of a square matrix A.
// It returns ErrSingular when a pivot is numerically zero relative to the
// scale of the matrix.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		panic("linalg: LU of non-square matrix")
	}
	n := a.Rows()
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	scale := lu.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	tol := scale * 1e-14 * float64(n)

	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest remaining entry in column k.
		p := k
		best := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > best {
				best, p = a, i
			}
		}
		pivot[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				lu.data[k*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[k*n+j]
			}
			sign = -sign
		}
		pv := lu.At(k, k)
		if math.Abs(pv) <= tol {
			return nil, ErrSingular
		}
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pv
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A·x = b for the factored A. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows()
	if len(b) != n {
		panic("linalg: LU solve dimension mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the row permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows()
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear solves A·x = b directly (factor + solve).
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Cholesky is the lower-triangular factor of a symmetric positive definite
// matrix: A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric positive
// definite matrix.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	n := a.Rows()
	if n != a.Cols() {
		panic("linalg: Cholesky of non-square matrix")
	}
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbs())) {
		return nil, ErrNotSPD
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrNotSPD
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve solves A·x = b using the factorization.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows()
	if len(b) != n {
		panic("linalg: Cholesky solve dimension mismatch")
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * y[j]
		}
		y[i] = s / c.l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// L returns the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }
