// Package linalg implements small dense linear algebra: matrices,
// LU factorization with partial pivoting, Cholesky factorization, and the
// linear solves required by the QP and LP solvers. The systems arising in
// proximity rank join are tiny (at most n ≈ number of joined relations, or
// d ≈ feature-space dimensionality), so clarity and numerical robustness
// are favored over blocking or vectorization.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite within tolerance.
var ErrNotSPD = errors.New("linalg: matrix not symmetric positive definite")

// NewMatrix returns an r×c zero matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// MatrixFromRows builds a matrix from row slices, which must have equal
// length. The data is copied.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m · other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: mul %dx%d by %dx%d", m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.Add(i, j, a*other.At(k, j))
			}
		}
	}
	return out
}

// MulVec returns m · x for a column vector x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("linalg: mulvec %dx%d by %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out
}

// ScaleInPlace multiplies every element by s and returns m.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// AddMatrix returns m + other.
func (m *Matrix) AddMatrix(other *Matrix) *Matrix {
	if m.rows != other.rows || m.cols != other.cols {
		panic("linalg: add shape mismatch")
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += other.data[i]
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
