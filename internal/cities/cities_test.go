package cities

import (
	"testing"

	"repro/internal/relation"
)

func TestAllFiveCities(t *testing.T) {
	cs := All()
	if len(cs) != 5 {
		t.Fatalf("cities = %d, want 5", len(cs))
	}
	codes := map[string]bool{}
	for _, c := range cs {
		codes[c.Code] = true
	}
	for _, code := range []string{"SF", "NY", "BO", "DA", "HO"} {
		if !codes[code] {
			t.Errorf("missing city %s", code)
		}
	}
}

func TestByCode(t *testing.T) {
	c, err := ByCode("SF")
	if err != nil || c.Name != "San Francisco" {
		t.Fatalf("ByCode(SF) = %v, %v", c.Name, err)
	}
	if _, err := ByCode("XX"); err == nil {
		t.Fatal("unknown code accepted")
	}
}

func TestRelationsShape(t *testing.T) {
	for _, c := range All() {
		rels, err := c.Relations()
		if err != nil {
			t.Fatalf("%s: %v", c.Code, err)
		}
		if len(rels) != 3 {
			t.Fatalf("%s: %d relations, want 3 (hotels, restaurants, theaters)", c.Code, len(rels))
		}
		for _, rel := range rels {
			if rel.Dim() != 2 {
				t.Errorf("%s/%s: dim %d, want 2 (lat/lon)", c.Code, rel.Name, rel.Dim())
			}
			if rel.Len() < 20 {
				t.Errorf("%s/%s: only %d POIs", c.Code, rel.Name, rel.Len())
			}
			for i := 0; i < rel.Len(); i++ {
				s := rel.At(i).Score
				if s < 0.2-1e-12 || s > 1 {
					t.Fatalf("%s/%s: rating score %v outside [0.2, 1]", c.Code, rel.Name, s)
				}
			}
		}
		// Restaurants outnumber theaters, as in real POI data.
		if rels[1].Len() <= rels[2].Len() {
			t.Errorf("%s: restaurants (%d) should outnumber theaters (%d)",
				c.Code, rels[1].Len(), rels[2].Len())
		}
		if c.Query().Dim() != 2 {
			t.Errorf("%s: query dim %d", c.Code, c.Query().Dim())
		}
	}
}

func TestDeterminism(t *testing.T) {
	c, _ := ByCode("BO")
	a, err := c.Relations()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Relations()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Len() != b[i].Len() {
			t.Fatal("lengths differ across generations")
		}
		for j := 0; j < a[i].Len(); j++ {
			if !a[i].At(j).Vec.Equal(b[i].At(j).Vec) || a[i].At(j).Score != b[i].At(j).Score {
				t.Fatal("city generation not deterministic")
			}
		}
	}
}

func TestCitiesDiffer(t *testing.T) {
	sf, _ := ByCode("SF")
	ny, _ := ByCode("NY")
	a, err := sf.Relations()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ny.Relations()
	if err != nil {
		t.Fatal(err)
	}
	if a[0].At(0).Vec.Equal(b[0].At(0).Vec) {
		t.Fatal("different cities produced identical data")
	}
}

func TestSourcesUsable(t *testing.T) {
	c, _ := ByCode("HO")
	rels, err := c.Relations()
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range rels {
		src, err := relation.NewDistanceSource(rel, c.Query(), nil)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for i := 0; i < 10; i++ {
			tup, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			d := tup.Vec.Dist(c.Query())
			if d < prev {
				t.Fatal("distance order violated")
			}
			prev = d
		}
	}
}
