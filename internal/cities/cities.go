// Package cities simulates the real data sets of the paper's Appendix D.2.
//
// The paper scraped hotels, restaurants and theaters with customer ratings
// and coordinates (d = 2) for five American cities through the now-defunct
// YQL console, querying from a landmark in each city (Fisherman's Wharf,
// Battery Park, …). That feed is unavailable, so this package generates a
// statistically faithful substitute: each city has a handful of districts
// (clustered POI density, as real cities do), per-category counts in
// realistic proportions (restaurants ≫ hotels ≳ theaters), and skewed
// rating distributions. Coordinates are degrees offset from the city
// center, matching the scale of the original latitude/longitude data.
// Generation is seeded per city, so every experiment is reproducible.
//
// The substitution preserves what the experiments actually exercise:
// distance-ordered streams of (score, 2-D location) tuples with non-uniform
// spatial density and inter-category density skew — exactly the regime
// where the adaptive pulling strategy and the tight bound pay off.
package cities

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/vec"
)

// City describes one simulated city data set.
type City struct {
	// Code is the paper's two-letter label (SF, NY, BO, DA, HO).
	Code string
	// Name is the full city name.
	Name string
	// LandmarkName names the query location (paper D.2 examples).
	LandmarkName string
	// landmark is the query vector, in degrees offset from the center.
	landmark vec.Vector
	// districts is the number of POI clusters.
	districts int
	// spread controls district size (degrees).
	spread float64
	// counts of hotels, restaurants, theaters.
	hotels, restaurants, theaters int
	// seed for deterministic generation.
	seed int64
}

// All lists the five cities in paper order.
func All() []City {
	return []City{
		{Code: "SF", Name: "San Francisco", LandmarkName: "Fisherman's Wharf",
			landmark: vec.Of(0.010, 0.028), districts: 7, spread: 0.012,
			hotels: 220, restaurants: 600, theaters: 90, seed: 411},
		{Code: "NY", Name: "New York", LandmarkName: "Battery Park",
			landmark: vec.Of(-0.015, -0.040), districts: 9, spread: 0.010,
			hotels: 350, restaurants: 900, theaters: 140, seed: 212},
		{Code: "BO", Name: "Boston", LandmarkName: "Faneuil Hall",
			landmark: vec.Of(0.006, 0.010), districts: 6, spread: 0.011,
			hotels: 160, restaurants: 420, theaters: 60, seed: 617},
		{Code: "DA", Name: "Dallas", LandmarkName: "Dealey Plaza",
			landmark: vec.Of(-0.008, 0.004), districts: 5, spread: 0.018,
			hotels: 180, restaurants: 380, theaters: 50, seed: 214},
		{Code: "HO", Name: "Honolulu", LandmarkName: "Waikiki Beach",
			landmark: vec.Of(0.020, -0.012), districts: 4, spread: 0.009,
			hotels: 240, restaurants: 300, theaters: 30, seed: 808},
	}
}

// ByCode returns the city with the given code, or an error.
func ByCode(code string) (City, error) {
	for _, c := range All() {
		if c.Code == code {
			return c, nil
		}
	}
	return City{}, fmt.Errorf("cities: unknown city code %q", code)
}

// Query returns the landmark query vector.
func (c City) Query() vec.Vector { return c.landmark.Clone() }

// Relations generates the three POI relations (hotels, restaurants,
// theaters) for the city. Scores are customer ratings normalized to (0,1].
func (c City) Relations() ([]*relation.Relation, error) {
	r := rand.New(rand.NewSource(c.seed))
	// District centers shared by all categories: hotels cluster where
	// restaurants do, as in real cities.
	centers := make([]vec.Vector, c.districts)
	weights := make([]float64, c.districts)
	var wsum float64
	for i := range centers {
		centers[i] = vec.Of((r.Float64()*2-1)*0.05, (r.Float64()*2-1)*0.05)
		weights[i] = 0.2 + r.Float64()
		wsum += weights[i]
	}
	pick := func() vec.Vector {
		x := r.Float64() * wsum
		for i, w := range weights {
			if x < w {
				return centers[i]
			}
			x -= w
		}
		return centers[len(centers)-1]
	}
	gen := func(name string, count int, ratingMean, ratingDev float64) (*relation.Relation, error) {
		tuples := make([]relation.Tuple, count)
		for j := range tuples {
			center := pick()
			pos := vec.Of(
				center[0]+r.NormFloat64()*c.spread,
				center[1]+r.NormFloat64()*c.spread,
			)
			// Ratings on a 1-5 star scale with Gaussian noise, normalized.
			stars := ratingMean + r.NormFloat64()*ratingDev
			if stars < 1 {
				stars = 1
			}
			if stars > 5 {
				stars = 5
			}
			tuples[j] = relation.Tuple{
				ID:    fmt.Sprintf("%s-%s-%d", c.Code, name, j),
				Score: stars / 5,
				Vec:   pos,
				Attrs: map[string]string{"city": c.Name, "category": name},
			}
		}
		return relation.New(fmt.Sprintf("%s-%s", c.Code, name), 1.0, tuples)
	}
	hotels, err := gen("hotels", c.hotels, 3.4, 0.8)
	if err != nil {
		return nil, err
	}
	restaurants, err := gen("restaurants", c.restaurants, 3.8, 0.7)
	if err != nil {
		return nil, err
	}
	theaters, err := gen("theaters", c.theaters, 3.6, 0.9)
	if err != nil {
		return nil, err
	}
	return []*relation.Relation{hotels, restaurants, theaters}, nil
}
