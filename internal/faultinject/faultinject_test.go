package faultinject

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	in, err := Parse("verb=pull;action=delay;delay=250ms;jitter=50ms | action=refuse;every=2")
	if err != nil {
		t.Fatal(err)
	}
	rules := in.Rules()
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if rules[0].Verb != "pull" || rules[0].Action != ActionDelay || rules[0].Delay != 250*time.Millisecond || rules[0].Jitter != 50*time.Millisecond {
		t.Fatalf("rule 0 parsed wrong: %+v", rules[0])
	}
	if rules[1].Action != ActionRefuse || rules[1].Every != 2 {
		t.Fatalf("rule 1 parsed wrong: %+v", rules[1])
	}
	for _, bad := range []string{"", "verb=pull", "action=explode", "nonsense", "action=delay;delay=forever"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestRuleSelectors(t *testing.T) {
	r := &Rule{Action: ActionDelay, Nth: 3}
	got := []bool{r.take(), r.take(), r.take(), r.take()}
	want := []bool{false, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nth=3: call %d fired=%v, want %v", i+1, got[i], want[i])
		}
	}
	r = &Rule{Action: ActionDelay, Every: 2}
	got = []bool{r.take(), r.take(), r.take(), r.take()}
	want = []bool{false, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("every=2: call %d fired=%v, want %v", i+1, got[i], want[i])
		}
	}
	r = &Rule{Action: ActionDelay, Times: 2}
	fired := 0
	for i := 0; i < 5; i++ {
		if r.take() {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("times=2: fired %d, want 2", fired)
	}
}

// frame helpers matching the shardrpc wire format.
func writeFrameErr(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func writeTestFrame(t *testing.T, w io.Writer, v any) {
	t.Helper()
	if err := writeFrameErr(w, v); err != nil {
		t.Fatal(err)
	}
}

func readTestFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

type testMsg struct {
	Verb string `json:"verb"`
	Body string `json:"body,omitempty"`
}

// echoServer accepts connections on ln and answers every request frame
// with one response frame echoing the verb.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					var req testMsg
					if err := readTestFrame(c, &req); err != nil {
						return
					}
					// Write failures (e.g. an injected reset) end the
					// connection, as a real server loop would.
					if err := writeFrameErr(c, testMsg{Verb: req.Verb, Body: "response to " + req.Verb}); err != nil {
						return
					}
				}
			}(c)
		}
	}()
}

func faultedListener(t *testing.T, in *Injector) net.Listener {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := in.Listener(raw)
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestRefuseAtAccept(t *testing.T) {
	in := New(&Rule{Action: ActionRefuse, Nth: 1})
	ln := faultedListener(t, in)
	echoServer(t, ln)

	// First connection is refused: dial may succeed (the kernel accepts)
	// but the first read sees EOF without a response.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err == nil {
		// The write itself may fail (broken pipe) — either way no
		// response must arrive.
		if writeFrameErr(c1, testMsg{Verb: "ping"}) == nil {
			var resp testMsg
			if err := readTestFrame(c1, &resp); err == nil {
				t.Fatal("refused connection answered a request")
			}
		}
		c1.Close()
	}
	// Second connection works.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	writeTestFrame(t, c2, testMsg{Verb: "ping"})
	var resp testMsg
	if err := readTestFrame(c2, &resp); err != nil {
		t.Fatalf("second connection failed: %v", err)
	}
	if resp.Verb != "ping" {
		t.Fatalf("echoed verb %q, want ping", resp.Verb)
	}
	if in.Fired() != 1 {
		t.Fatalf("fired %d faults, want 1", in.Fired())
	}
}

func TestDelayMatchesVerbOnly(t *testing.T) {
	const delay = 150 * time.Millisecond
	in := New(&Rule{Verb: "pull", Action: ActionDelay, Delay: delay})
	ln := faultedListener(t, in)
	echoServer(t, ln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	roundTrip := func(verb string) time.Duration {
		start := time.Now()
		writeTestFrame(t, c, testMsg{Verb: verb})
		var resp testMsg
		if err := readTestFrame(c, &resp); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	if d := roundTrip("ping"); d >= delay {
		t.Fatalf("unmatched verb delayed %v", d)
	}
	if d := roundTrip("pull"); d < delay {
		t.Fatalf("matched verb answered in %v, want >= %v", d, delay)
	}
}

func TestCorruptKeepsFraming(t *testing.T) {
	in := New(&Rule{Action: ActionCorrupt})
	ln := faultedListener(t, in)
	echoServer(t, ln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeTestFrame(t, c, testMsg{Verb: "pull", Body: "a recognizable body"})
	var resp testMsg
	err = readTestFrame(c, &resp)
	if err == nil {
		t.Fatal("corrupted frame decoded cleanly")
	}
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	if !errors.As(err, &syn) && !errors.As(err, &typ) {
		t.Fatalf("want a JSON decode error (whole frame, bad payload), got %v", err)
	}
}

func TestResetKillsConnectionMidFrame(t *testing.T) {
	in := New(&Rule{Verb: "next", Action: ActionReset})
	ln := faultedListener(t, in)
	echoServer(t, ln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeTestFrame(t, c, testMsg{Verb: "pull"})
	var resp testMsg
	if err := readTestFrame(c, &resp); err != nil {
		t.Fatalf("pull should pass: %v", err)
	}
	writeTestFrame(t, c, testMsg{Verb: "next"})
	if err := readTestFrame(c, &resp); err == nil {
		t.Fatal("reset connection delivered a whole response")
	}
}

func TestDripDeliversSlowlyButWhole(t *testing.T) {
	in := New(&Rule{Action: ActionDrip, Chunk: 4, Gap: 5 * time.Millisecond})
	ln := faultedListener(t, in)
	echoServer(t, ln)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	writeTestFrame(t, c, testMsg{Verb: "pull"})
	var resp testMsg
	if err := readTestFrame(c, &resp); err != nil {
		t.Fatalf("dripped frame should still decode: %v", err)
	}
	if resp.Body != "response to pull" {
		t.Fatalf("dripped body %q mangled", resp.Body)
	}
	// ~40 bytes at 4 bytes per 5ms gap: well over 25ms.
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("drip finished in %v, too fast to have dripped", d)
	}
}

func TestSetEnabledHealsFaults(t *testing.T) {
	in := New(&Rule{Action: ActionCorrupt})
	ln := faultedListener(t, in)
	echoServer(t, ln)
	in.SetEnabled(false)

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeTestFrame(t, c, testMsg{Verb: "pull"})
	var resp testMsg
	if err := readTestFrame(c, &resp); err != nil {
		t.Fatalf("disabled injector corrupted a frame: %v", err)
	}
	if in.Fired() != 0 {
		t.Fatalf("disabled injector fired %d faults", in.Fired())
	}
}
