package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds an injector from a compact spec string, the form the
// proxserve -fault-spec flag and proxload -chaos accept.
//
// A spec is one or more rules separated by '|'; each rule is a list of
// key=value pairs separated by ';':
//
//	verb=pull;action=delay;delay=1s;jitter=200ms
//	action=refuse
//	verb=next;action=reset;nth=3 | verb=pull;action=corrupt;every=5
//
// Keys: verb, peer, action (refuse|reset|delay|drip|corrupt), nth,
// every, times, delay, jitter, chunk, gap. Durations use Go syntax
// ("250ms", "1s"); whitespace around separators is ignored.
func Parse(spec string) (*Injector, error) {
	var rules []*Rule
	for _, part := range strings.Split(spec, "|") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty spec")
	}
	return New(rules...), nil
}

func parseRule(s string) (*Rule, error) {
	r := &Rule{}
	for _, kv := range strings.Split(s, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q is not key=value", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "verb":
			r.Verb = v
		case "peer":
			r.Peer = v
		case "action":
			switch Action(v) {
			case ActionRefuse, ActionReset, ActionDelay, ActionDrip, ActionCorrupt:
				r.Action = Action(v)
			default:
				return nil, fmt.Errorf("faultinject: unknown action %q", v)
			}
		case "nth":
			r.Nth, err = strconv.Atoi(v)
		case "every":
			r.Every, err = strconv.Atoi(v)
		case "times":
			r.Times, err = strconv.Atoi(v)
		case "chunk":
			r.Chunk, err = strconv.Atoi(v)
		case "delay":
			r.Delay, err = time.ParseDuration(v)
		case "jitter":
			r.Jitter, err = time.ParseDuration(v)
		case "gap":
			r.Gap, err = time.ParseDuration(v)
		default:
			return nil, fmt.Errorf("faultinject: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad value for %s: %v", k, err)
		}
	}
	if r.Action == "" {
		return nil, fmt.Errorf("faultinject: rule %q has no action", s)
	}
	return r, nil
}
