// Package faultinject is a programmable fault layer for chaos testing
// the shardrpc transport. It wraps net.Listener/net.Conn pairs on the
// server side and injects rule-driven faults into the request/response
// exchange: connection refusal at accept, mid-stream resets, latency
// with jitter, slow-drip responses, and frame corruption.
//
// The wrapper understands the shardrpc framing (4-byte big-endian
// length + JSON) just enough to find frame boundaries and sniff the
// request verb, so rules can target a single verb ("pull", "next",
// "hello", ...) and a specific occurrence (nth call, every Nth call, at
// most N times). It has no dependency on shardrpc itself and works on
// any protocol with the same framing.
//
// Faults are for tests and chaos builds only: proxserve refuses a
// -fault-spec unless PROXSERVE_CHAOS=1 is set in the environment.
package faultinject

import (
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Action is what a matched rule does to the exchange.
type Action string

const (
	// ActionRefuse closes the connection at accept time before any byte
	// is exchanged (the client sees an immediate EOF — operationally a
	// refused connection). Matched without a verb.
	ActionRefuse Action = "refuse"
	// ActionReset closes the connection mid-response: the length header
	// and half the body are written, then the socket dies.
	ActionReset Action = "reset"
	// ActionDelay sleeps Delay±Jitter before writing the response.
	ActionDelay Action = "delay"
	// ActionDrip writes the response in Chunk-byte pieces with Gap
	// between them (a slow-drip read from the client's point of view).
	ActionDrip Action = "drip"
	// ActionCorrupt flips bits in the response payload, leaving the
	// length header intact — the frame arrives whole but undecodable.
	ActionCorrupt Action = "corrupt"
)

// Rule matches a subset of exchanges and applies one Action to them.
// The zero selectors match everything: an empty Verb matches any verb
// (and, for ActionRefuse, the accept itself), an empty Peer matches any
// address, and Nth/Every/Times unset fire on every match.
type Rule struct {
	Verb  string // request verb to match ("" = any; ignored by refuse)
	Peer  string // substring of the local or remote address ("" = any)
	Nth   int    // fire only on the nth match (1-based)
	Every int    // fire on every nth match
	Times int    // fire at most this many times

	Action Action
	Delay  time.Duration // delay: base sleep
	Jitter time.Duration // delay: uniform extra sleep in [0, Jitter)
	Chunk  int           // drip: bytes per write (default 8)
	Gap    time.Duration // drip: sleep between chunks (default 1ms)

	matched atomic.Int64
	fired   atomic.Int64
}

// Fired reports how many times the rule has injected its fault.
func (r *Rule) Fired() int64 { return r.fired.Load() }

// take records one match and reports whether the rule fires on it.
func (r *Rule) take() bool {
	n := r.matched.Add(1)
	if r.Nth > 0 && n != int64(r.Nth) {
		return false
	}
	if r.Every > 1 && n%int64(r.Every) != 0 {
		return false
	}
	if r.Times > 0 && r.fired.Load() >= int64(r.Times) {
		return false
	}
	r.fired.Add(1)
	return true
}

// matchAddr reports whether the rule's Peer selector matches either end
// of the connection.
func (r *Rule) matchAddr(local, remote string) bool {
	return r.Peer == "" || contains(local, r.Peer) || contains(remote, r.Peer)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Injector holds a rule set and wraps listeners with it. Safe for
// concurrent use; SetEnabled(false) heals every fault at once (useful
// for breaker-recovery tests).
type Injector struct {
	rules    []*Rule
	disabled atomic.Bool

	mu  sync.Mutex
	rnd *rand.Rand
}

// New builds an injector over the given rules. Rules are evaluated in
// order; the first one that matches and fires wins.
func New(rules ...*Rule) *Injector {
	return &Injector{rules: rules, rnd: rand.New(rand.NewSource(1))}
}

// SetEnabled turns the whole injector on or off. Disabled injectors
// pass every byte through untouched.
func (in *Injector) SetEnabled(on bool) { in.disabled.Store(!on) }

// Rules returns the injector's rules (for firing-count assertions).
func (in *Injector) Rules() []*Rule { return in.rules }

// Fired reports the total faults injected across all rules.
func (in *Injector) Fired() int64 {
	var n int64
	for _, r := range in.rules {
		n += r.Fired()
	}
	return n
}

// jitter draws a uniform duration in [0, d).
func (in *Injector) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.rnd.Int63n(int64(d)))
}

// match returns the first rule that matches (verb, addrs) and fires.
func (in *Injector) match(verb, local, remote string) *Rule {
	if in.disabled.Load() {
		return nil
	}
	for _, r := range in.rules {
		if r.Action == ActionRefuse {
			continue // accept-time only
		}
		if r.Verb != "" && r.Verb != verb {
			continue
		}
		if !r.matchAddr(local, remote) {
			continue
		}
		if r.take() {
			return r
		}
	}
	return nil
}

// matchAccept returns the first refuse rule that matches and fires for
// a freshly accepted connection.
func (in *Injector) matchAccept(local, remote string) *Rule {
	if in.disabled.Load() {
		return nil
	}
	for _, r := range in.rules {
		if r.Action != ActionRefuse || !r.matchAddr(local, remote) {
			continue
		}
		if r.take() {
			return r
		}
	}
	return nil
}

// Listener wraps ln so every accepted connection passes through the
// injector. Refuse rules close connections at accept; everything else
// is applied per exchange by the wrapped conns.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: in}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if r := l.inj.matchAccept(addr(c.LocalAddr()), addr(c.RemoteAddr())); r != nil {
			c.Close()
			continue
		}
		return &conn{Conn: c, inj: l.inj}, nil
	}
}

func addr(a net.Addr) string {
	if a == nil {
		return ""
	}
	return a.String()
}

// conn is a server-side connection under fault injection. It
// reassembles request frames flowing through Read to sniff the verb,
// arms the matching rule, and applies it to the next complete response
// frame flowing through Write.
type conn struct {
	net.Conn
	inj *Injector

	mu      sync.Mutex
	rbuf    []byte // partial request frame bytes
	wbuf    []byte // partial response frame bytes
	pending *Rule  // armed action for the next response
	dead    bool   // reset fired; swallow everything
}

// errReset is returned to the server handler after a reset fires so its
// loop ends exactly as it would on a real broken socket.
type errReset struct{}

func (errReset) Error() string   { return "faultinject: connection reset" }
func (errReset) Timeout() bool   { return false }
func (errReset) Temporary() bool { return false }

// Read passes bytes through while scanning for complete request frames.
func (c *conn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.scanRequests(b[:n])
	}
	return n, err
}

// scanRequests accumulates request bytes, and for every completed frame
// sniffs the verb and arms the first firing rule.
func (c *conn) scanRequests(b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rbuf = append(c.rbuf, b...)
	for {
		frame, rest, ok := splitFrame(c.rbuf)
		if !ok {
			return
		}
		c.rbuf = rest
		var req struct {
			Verb string `json:"verb"`
		}
		_ = json.Unmarshal(frame[4:], &req)
		if r := c.inj.match(req.Verb, addr(c.LocalAddr()), addr(c.RemoteAddr())); r != nil {
			c.pending = r
		}
	}
}

// splitFrame splits buf into its first complete frame (header included)
// and the remainder.
func splitFrame(buf []byte) (frame, rest []byte, ok bool) {
	if len(buf) < 4 {
		return nil, buf, false
	}
	n := int(binary.BigEndian.Uint32(buf[:4]))
	if len(buf) < 4+n {
		return nil, buf, false
	}
	return buf[:4+n], buf[4+n:], true
}

// Write buffers until a complete response frame is present, then
// applies the armed action (if any) and forwards it.
func (c *conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return 0, errReset{}
	}
	c.wbuf = append(c.wbuf, b...)
	var frames [][]byte
	for {
		frame, rest, ok := splitFrame(c.wbuf)
		if !ok {
			break
		}
		frames = append(frames, frame)
		c.wbuf = rest
	}
	c.mu.Unlock()
	for _, frame := range frames {
		if err := c.writeFrame(frame); err != nil {
			return len(b), err
		}
	}
	// From the caller's point of view the bytes are accepted; faults
	// surface on the write that completes a frame.
	return len(b), nil
}

// writeFrame forwards one complete frame, applying the pending rule.
func (c *conn) writeFrame(frame []byte) error {
	c.mu.Lock()
	r := c.pending
	c.pending = nil
	c.mu.Unlock()
	if r == nil {
		_, err := c.Conn.Write(frame)
		return err
	}
	switch r.Action {
	case ActionDelay:
		time.Sleep(r.Delay + c.inj.jitter(r.Jitter))
		_, err := c.Conn.Write(frame)
		return err
	case ActionDrip:
		chunk, gap := r.Chunk, r.Gap
		if chunk <= 0 {
			chunk = 8
		}
		if gap <= 0 {
			gap = time.Millisecond
		}
		for len(frame) > 0 {
			n := chunk
			if n > len(frame) {
				n = len(frame)
			}
			if _, err := c.Conn.Write(frame[:n]); err != nil {
				return err
			}
			frame = frame[n:]
			if len(frame) > 0 {
				time.Sleep(gap)
			}
		}
		return nil
	case ActionCorrupt:
		bad := append([]byte(nil), frame...)
		// Flip bits mid-payload; the header stays honest so the client
		// reads a whole frame and fails to decode it.
		if len(bad) > 4 {
			bad[4+(len(bad)-4)/2] ^= 0xFF
			bad[len(bad)-1] ^= 0xFF
		}
		_, err := c.Conn.Write(bad)
		return err
	case ActionReset:
		half := frame[:4+(len(frame)-4)/2]
		_, _ = c.Conn.Write(half)
		c.mu.Lock()
		c.dead = true
		c.mu.Unlock()
		c.Conn.Close()
		return errReset{}
	default:
		_, err := c.Conn.Write(frame)
		return err
	}
}
