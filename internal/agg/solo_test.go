package agg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func randomCombo(r *rand.Rand, n, d int) (q vec.Vector, sigmas []float64, xs []vec.Vector) {
	q = vec.New(d)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	sigmas = make([]float64, n)
	xs = make([]vec.Vector, n)
	for i := range xs {
		sigmas[i] = 0.05 + 0.95*r.Float64()
		v := vec.New(d)
		for c := range v {
			v[c] = r.NormFloat64() * 2
		}
		xs[i] = v
	}
	return q, sigmas, xs
}

func testFunctions(r *rand.Rand) []Function {
	w := Weights{Ws: 0.1 + 2*r.Float64(), Wq: 0.1 + 2*r.Float64(), Wmu: 2 * r.Float64()}
	return []Function{
		MustEuclideanSum(w, LogScore),
		MustEuclideanSum(w, IdentityScore),
		mustCosine(w, LogScore),
	}
}

// TestScoreScratchBitIdentical: the allocation-free scoring path must be
// indistinguishable from Score, bit for bit — the engine substitutes it
// on the formation hot path under a byte-identity contract.
func TestScoreScratchBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(4)
		d := 1 + r.Intn(4)
		q, sigmas, xs := randomCombo(r, n, d)
		mu := vec.New(d)
		for _, fn := range testFunctions(r) {
			ss, ok := fn.(ScratchScorer)
			if !ok {
				t.Fatalf("%s does not implement ScratchScorer", fn.Name())
			}
			want := fn.Score(q, sigmas, xs)
			got := ss.ScoreScratch(q, sigmas, xs, mu)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("%s: ScoreScratch %v != Score %v", fn.Name(), got, want)
			}
		}
	}
}

// TestSoloBoundDominatesScore: the separable per-tuple bounds must sum to
// at least the full combination score — the soundness condition of
// score-floor pruning.
func TestSoloBoundDominatesScore(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(4)
		d := 1 + r.Intn(4)
		q, sigmas, xs := randomCombo(r, n, d)
		for _, fn := range testFunctions(r) {
			sep, ok := fn.(Separable)
			if !ok {
				t.Fatalf("%s does not implement Separable", fn.Name())
			}
			var ub float64
			for i, x := range xs {
				ub += sep.SoloBound(i, sigmas[i], fn.Metric().Distance(x, q))
			}
			score := fn.Score(q, sigmas, xs)
			if score > ub+1e-9*(1+math.Abs(ub)) {
				t.Fatalf("%s: score %v exceeds solo bound %v", fn.Name(), score, ub)
			}
		}
	}
}
