package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Paper Table 1: the eight combination scores with ws = wq = wµ = 1, q = 0.
func TestPaperTable1Scores(t *testing.T) {
	e := MustEuclideanSum(DefaultWeights(), LogScore)
	q := vec.Of(0, 0)

	r1 := []struct {
		sigma float64
		x     vec.Vector
	}{{0.5, vec.Of(0, -0.5)}, {1.0, vec.Of(0, 1)}}
	r2 := []struct {
		sigma float64
		x     vec.Vector
	}{{1.0, vec.Of(1, 1)}, {0.8, vec.Of(-2, 2)}}
	r3 := []struct {
		sigma float64
		x     vec.Vector
	}{{1.0, vec.Of(-1, 1)}, {0.4, vec.Of(-2, -2)}}

	score := func(i, j, k int) float64 {
		return e.Score(q,
			[]float64{r1[i].sigma, r2[j].sigma, r3[k].sigma},
			[]vec.Vector{r1[i].x, r2[j].x, r3[k].x})
	}
	cases := []struct {
		i, j, k int
		want    float64
	}{
		{1, 0, 0, -7.0},
		{0, 0, 0, -8.4},
		{1, 1, 0, -13.9},
		{0, 1, 0, -16.3},
		{0, 0, 1, -21.0},
		{1, 0, 1, -22.6},
		{0, 1, 1, -28.9},
		{1, 1, 1, -29.5},
	}
	for _, c := range cases {
		if got := score(c.i, c.j, c.k); !almostEq(got, c.want, 0.05) {
			t.Errorf("S(τ1^%d × τ2^%d × τ3^%d) = %.2f, want %.1f", c.i+1, c.j+1, c.k+1, got, c.want)
		}
	}
}

func TestWeightsValidate(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Weights{
		{Ws: -1, Wq: 1, Wmu: 1},
		{Ws: 1, Wq: math.NaN(), Wmu: 1},
		{Ws: 1, Wq: 1, Wmu: math.Inf(1)},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewEuclideanSum(Weights{Ws: -1}, LogScore); err == nil {
		t.Error("NewEuclideanSum accepted bad weights")
	}
	if _, err := NewCosineProximity(Weights{Wq: -1}, LogScore); err == nil {
		t.Error("NewCosineProximity accepted bad weights")
	}
}

func TestTransforms(t *testing.T) {
	logE := MustEuclideanSum(DefaultWeights(), LogScore)
	idE := MustEuclideanSum(DefaultWeights(), IdentityScore)
	if got := logE.TransformScore(1); got != 0 {
		t.Errorf("ln(1) = %v", got)
	}
	if got := idE.TransformScore(0.7); got != 0.7 {
		t.Errorf("identity(0.7) = %v", got)
	}
	if LogScore.String() != "log" || IdentityScore.String() != "identity" {
		t.Error("transform strings wrong")
	}
	if ScoreTransform(7).String() == "" {
		t.Error("unknown transform empty string")
	}
}

func TestGAndFConsistentWithScore(t *testing.T) {
	e := MustEuclideanSum(Weights{Ws: 2, Wq: 0.5, Wmu: 3}, LogScore)
	q := vec.Of(1, -1)
	xs := []vec.Vector{vec.Of(0, 0), vec.Of(2, 2), vec.Of(-1, 3)}
	sigmas := []float64{0.5, 0.9, 0.2}
	mu := vec.Mean(xs...)
	parts := make([]float64, len(xs))
	for i := range xs {
		parts[i] = e.G(i, sigmas[i], xs[i].Dist(q), xs[i].Dist(mu))
	}
	if got, want := e.F(parts), e.Score(q, sigmas, xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("F∘G = %v, Score = %v", got, want)
	}
}

func TestScorePanicsOnMismatch(t *testing.T) {
	e := MustEuclideanSum(DefaultWeights(), LogScore)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Score did not panic")
		}
	}()
	e.Score(vec.Of(0), []float64{1}, nil)
}

// Property: monotonicity required by eq. (1) — G non-decreasing in σ,
// non-increasing in both distances; F non-decreasing componentwise.
func TestQuickMonotonicity(t *testing.T) {
	fns := []Function{
		MustEuclideanSum(Weights{Ws: 1.5, Wq: 0.7, Wmu: 2}, LogScore),
		MustEuclideanSum(Weights{Ws: 1, Wq: 1, Wmu: 1}, IdentityScore),
		mustCosine(Weights{Ws: 1, Wq: 1, Wmu: 1}, IdentityScore),
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := 0.05 + r.Float64()*0.9
		dq := r.Float64() * 3
		dmu := r.Float64() * 3
		dSigma := r.Float64() * 0.05
		dDist := r.Float64()
		for _, fn := range fns {
			base := fn.G(0, sigma, dq, dmu)
			if fn.G(0, sigma+dSigma, dq, dmu) < base-1e-12 {
				return false
			}
			if fn.G(0, sigma, dq+dDist, dmu) > base+1e-12 {
				return false
			}
			if fn.G(0, sigma, dq, dmu+dDist) > base+1e-12 {
				return false
			}
			parts := []float64{r.NormFloat64(), r.NormFloat64()}
			fBase := fn.F(parts)
			parts[0] += dDist
			if fn.F(parts) < fBase-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustCosine(w Weights, tr ScoreTransform) *CosineProximity {
	c, err := NewCosineProximity(w, tr)
	if err != nil {
		panic(err)
	}
	return c
}

// Property: translation invariance of EuclideanSum when query and points
// shift together.
func TestQuickTranslationInvariance(t *testing.T) {
	e := MustEuclideanSum(DefaultWeights(), LogScore)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(4)
		n := 2 + r.Intn(3)
		q := randVec(r, d)
		shift := randVec(r, d)
		xs := make([]vec.Vector, n)
		shifted := make([]vec.Vector, n)
		sigmas := make([]float64, n)
		for i := range xs {
			xs[i] = randVec(r, d)
			shifted[i] = xs[i].Add(shift)
			sigmas[i] = 0.1 + r.Float64()*0.9
		}
		a := e.Score(q, sigmas, xs)
		b := e.Score(q.Add(shift), sigmas, shifted)
		return almostEq(a, b, 1e-8*(1+math.Abs(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func randVec(r *rand.Rand, d int) vec.Vector {
	v := vec.New(d)
	for i := range v {
		v[i] = r.NormFloat64() * 3
	}
	return v
}

// Property: adding spread (moving one point away from the centroid along
// the line through it) never increases the score when wµ > 0.
func TestQuickSpreadPenalty(t *testing.T) {
	e := MustEuclideanSum(Weights{Ws: 1, Wq: 0, Wmu: 1}, LogScore)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + r.Intn(3)
		q := vec.New(d)
		n := 3
		xs := make([]vec.Vector, n)
		sigmas := make([]float64, n)
		for i := range xs {
			xs[i] = randVec(r, d)
			sigmas[i] = 0.5
		}
		base := e.Score(q, sigmas, xs)
		mu := vec.Mean(xs...)
		// Move x0 further from the current centroid.
		dir := xs[0].Sub(mu)
		if dir.Norm() < 1e-9 {
			return true
		}
		far := append([]vec.Vector{xs[0].Add(dir)}, xs[1:]...)
		return e.Score(q, sigmas, far) <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCosineProximityScore(t *testing.T) {
	c := mustCosine(Weights{Ws: 1, Wq: 1, Wmu: 1}, IdentityScore)
	q := vec.Of(1, 0)
	// Both points aligned with the query: only score terms remain.
	got := c.Score(q, []float64{0.5, 0.5}, []vec.Vector{vec.Of(2, 0), vec.Of(3, 0)})
	if !almostEq(got, 1.0, 1e-9) {
		t.Fatalf("aligned score = %v, want 1.0", got)
	}
	// An orthogonal point is penalized.
	lower := c.Score(q, []float64{0.5, 0.5}, []vec.Vector{vec.Of(2, 0), vec.Of(0, 3)})
	if lower >= got {
		t.Fatalf("orthogonal score %v not below aligned %v", lower, got)
	}
}

func TestNames(t *testing.T) {
	if MustEuclideanSum(DefaultWeights(), LogScore).Name() == "" {
		t.Error("empty euclidean name")
	}
	if mustCosine(DefaultWeights(), LogScore).Name() == "" {
		t.Error("empty cosine name")
	}
}
