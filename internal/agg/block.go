package agg

import (
	"math"

	"repro/internal/vec"
)

// Block scoring: the engine's combination-formation hot path evaluates,
// at the innermost enumeration level, a run of candidate combinations
// that share every slot except one. BlockScorer turns that run into a
// single kernel call over columnar state instead of one ScoreScratch
// call per leaf.
//
// The contract is bitwise identity with the scalar path, which two
// observations make possible:
//
//   - Each slot's term splits as qterm − w_µ·dist(x, µ): qterm (the
//     score-transform and query-distance part) does not depend on the
//     centroid, so it can be computed once per pulled tuple and cached in
//     a per-relation column. Go evaluates a − b − c as (a−b) − c, so the
//     cached (a−b) reproduces the inline expression bit for bit.
//   - The centroid mean accumulates the slot vectors in index order, so
//     the partial sum over the fixed slots before the varying one is a
//     shared prefix: computed once per block, then extended per candidate
//     with the same operation sequence MeanInto would have used.
type BlockScorer interface {
	ScratchScorer
	// QTerm returns the centroid-independent part of slot i's term for a
	// tuple with the given score and feature vector: exactly the value
	// the ScoreScratch accumulation adds before subtracting the weighted
	// centroid distance.
	QTerm(i int, sigma float64, x, q vec.Vector) float64
	// ScoreBlock scores len(out) combinations that agree with (qterms,
	// xs) on every slot except vary, where candidate j places the tuple
	// with cached term candQ[j] and vector candXs[j]. qterms[vary] and
	// xs[vary] are ignored. Scores land in out, bit-identical to a
	// ScoreScratch call per candidate.
	ScoreBlock(q vec.Vector, qterms []float64, xs []vec.Vector, vary int,
		candQ []float64, candXs []vec.Vector, scr *BlockScratch, out []float64)
}

// BlockScratch is the reusable working storage of ScoreBlock: the shared
// centroid prefix, one centroid per block lane (views into a flat slab),
// and a distance column. It belongs to one engine and grows to the
// largest (dimension, block) it has seen.
type BlockScratch struct {
	prefix vec.Vector
	mus    []vec.Vector
	slab   []float64
	dist   []float64
	dim    int
}

// Ensure pre-sizes the scratch for dimension d and block width b. An
// engine that knows its block width up front calls this once at
// construction so the incremental widths ScoreBlock sees during a run
// (candidate lists grow one tuple per pull) never trigger a regrow.
func (s *BlockScratch) Ensure(d, b int) { s.ensure(d, b) }

// ensure sizes the scratch for dimension d and block width b.
func (s *BlockScratch) ensure(d, b int) {
	if s.dim != d || len(s.mus) < b {
		if s.dim != d {
			s.prefix = vec.New(d)
		}
		lanes := b
		if lanes < len(s.mus) {
			lanes = len(s.mus)
		}
		s.slab = make([]float64, d*lanes)
		s.mus = make([]vec.Vector, lanes)
		for j := 0; j < lanes; j++ {
			s.mus[j] = vec.Vector(s.slab[j*d : (j+1)*d])
		}
		s.dim = d
	}
	if cap(s.dist) < b {
		s.dist = make([]float64, b)
	}
	s.dist = s.dist[:b]
}

// centroids fills scr.mus[j] with the mean of xs with slot vary replaced
// by candXs[j], replaying MeanInto's accumulation order exactly: shared
// prefix over slots < vary, the candidate, the fixed suffix, then the
// 1/n scale.
func (s *BlockScratch) centroids(xs []vec.Vector, vary int, candXs []vec.Vector) {
	n := len(xs)
	b := len(candXs)
	if vary > 0 {
		copy(s.prefix, xs[0])
		vec.MeanAccumulate(s.prefix, xs[1:vary])
	}
	for j := 0; j < b; j++ {
		mu := s.mus[j]
		if vary == 0 {
			copy(mu, candXs[j])
		} else {
			copy(mu, s.prefix)
			mu.AddInPlace(candXs[j])
		}
	}
	for i := vary + 1; i < n; i++ {
		x := xs[i]
		for j := 0; j < b; j++ {
			s.mus[j].AddInPlace(x)
		}
	}
	inv := 1 / float64(n)
	for j := 0; j < b; j++ {
		s.mus[j].ScaleInPlace(inv)
	}
}

// QTerm implements BlockScorer: w_s·T(σ) − w_q·‖x−q‖², the first two
// operands of the ScoreScratch slot term.
func (e *EuclideanSum) QTerm(_ int, sigma float64, x, q vec.Vector) float64 {
	return e.W.Ws*e.TransformScore(sigma) - e.W.Wq*x.Dist2(q)
}

// ScoreBlock implements BlockScorer.
func (e *EuclideanSum) ScoreBlock(q vec.Vector, qterms []float64, xs []vec.Vector, vary int,
	candQ []float64, candXs []vec.Vector, scr *BlockScratch, out []float64) {
	n := len(xs)
	b := len(out)
	scr.ensure(len(q), b)
	scr.centroids(xs, vary, candXs[:b])
	mus := scr.mus[:b]
	dist := scr.dist[:b]
	for j := range out {
		out[j] = 0
	}
	// Slot-major accumulation: per candidate the terms still add in slot
	// order, exactly as the scalar loop over xs does.
	for i := 0; i < n; i++ {
		if i == vary {
			for j := 0; j < b; j++ {
				out[j] += candQ[j] - e.W.Wmu*candXs[j].Dist2(mus[j])
			}
			continue
		}
		vec.Dist2Into(dist, mus, xs[i])
		qt := qterms[i]
		for j := 0; j < b; j++ {
			out[j] += qt - e.W.Wmu*dist[j]
		}
	}
}

// QTerm implements BlockScorer: w_s·T(σ) − w_q·cosdist(x, q).
func (c *CosineProximity) QTerm(i int, sigma float64, x, q vec.Vector) float64 {
	t := sigma
	if c.Transform == LogScore {
		t = math.Log(sigma)
	}
	return c.W.Ws*t - c.W.Wq*c.metric.Distance(x, q)
}

// ScoreBlock implements BlockScorer.
func (c *CosineProximity) ScoreBlock(q vec.Vector, qterms []float64, xs []vec.Vector, vary int,
	candQ []float64, candXs []vec.Vector, scr *BlockScratch, out []float64) {
	n := len(xs)
	b := len(out)
	scr.ensure(len(q), b)
	scr.centroids(xs, vary, candXs[:b])
	mus := scr.mus[:b]
	dist := scr.dist[:b]
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < n; i++ {
		if i == vary {
			for j := 0; j < b; j++ {
				out[j] += candQ[j] - c.W.Wmu*c.metric.Distance(candXs[j], mus[j])
			}
			continue
		}
		// Cosine dissimilarity is bitwise symmetric (commutative dot and
		// product), so distance-from-fixed-x over the centroid column is
		// the scalar Distance(x, µ) exactly.
		vec.DistanceBatch(c.metric, dist, mus, xs[i])
		qt := qterms[i]
		for j := 0; j < b; j++ {
			out[j] += qt - c.W.Wmu*dist[j]
		}
	}
}
