// Package agg defines the aggregation functions of proximity rank join
// (paper eq. (1)) and the reference Euclidean sum instantiation (eq. (2)):
//
//	S(τ) = Σ_i  w_s·T(σ(τ_i)) − w_q·‖x(τ_i)−q‖² − w_µ·‖x(τ_i)−µ(τ)‖²
//
// where T is a monotone score transform (ln as in the paper, or identity
// as in Appendix C.2) and µ(τ) is the combination centroid — the
// arithmetic mean, which is the arg-min of the summed squared Euclidean
// distances used by the quadratic form.
//
// The corner bounding scheme works for any Function; the tight bounding
// scheme additionally requires the Quadratic interface, which exposes the
// weights of the closed-form geometry.
package agg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Function is an aggregation function in the shape of paper eq. (1):
// a per-relation proximity weighting g_i combined by a monotone f.
type Function interface {
	// G is the proximity weighting g_i: monotone non-decreasing in sigma,
	// non-increasing in the query distance dq and the centroid distance dmu.
	G(i int, sigma, dq, dmu float64) float64
	// F combines the n proximity weighted scores; monotone non-decreasing
	// in every argument.
	F(parts []float64) float64
	// Score evaluates the full combination: distances are derived from the
	// query q and the centroid of xs.
	Score(q vec.Vector, sigmas []float64, xs []vec.Vector) float64
	// Metric is the distance δ the function's G consumes; distance-based
	// access must stream tuples in increasing order of this metric for the
	// bounding schemes to be correct.
	Metric() vec.Metric
	// Name identifies the function in reports.
	Name() string
}

// Quadratic is implemented by aggregation functions whose geometry is the
// quadratic Euclidean form of eq. (2); it unlocks the tight bounding
// machinery (ray reduction + 1-D QP) and dominance half-spaces.
type Quadratic interface {
	Function
	// Weights returns (w_s, w_q, w_µ).
	Weights() (ws, wq, wmu float64)
	// TransformScore applies the score transform T (ln or identity).
	TransformScore(sigma float64) float64
}

// Separable is implemented by aggregation functions whose combination
// score is bounded above by a sum of per-tuple terms:
//
//	Score(q, σ, x) ≤ Σ_i SoloBound(i, σ_i, δ(x_i, q))
//
// For the reference aggregations the bound is G with the centroid
// distance zeroed — the centroid term only ever subtracts. The engine
// uses this to prune cross-product subtrees during combination formation:
// a partial combination whose best possible completion (its seen tuples'
// solo terms plus the per-relation maxima of the unseen slots) cannot
// reach the current score floor is cut without being materialized.
type Separable interface {
	Function
	// SoloBound returns an upper bound on tuple i's contribution to any
	// combination containing it; dq is the Metric distance to the query.
	SoloBound(i int, sigma, dq float64) float64
}

// ScratchScorer is implemented by aggregation functions that can evaluate
// Score through a caller-provided centroid scratch vector, avoiding the
// per-combination centroid allocation on the formation hot path. The
// result must be bit-identical to Score.
type ScratchScorer interface {
	Function
	// ScoreScratch is Score with mu (len = dim) as centroid scratch space.
	ScoreScratch(q vec.Vector, sigmas []float64, xs []vec.Vector, mu vec.Vector) float64
}

// ScoreTransform selects how σ enters the aggregation.
type ScoreTransform int

const (
	// LogScore uses w_s·ln(σ) as in paper eq. (2).
	LogScore ScoreTransform = iota
	// IdentityScore uses w_s·σ as in paper Appendix C.2.
	IdentityScore
)

// String implements fmt.Stringer.
func (t ScoreTransform) String() string {
	switch t {
	case LogScore:
		return "log"
	case IdentityScore:
		return "identity"
	}
	return fmt.Sprintf("ScoreTransform(%d)", int(t))
}

// Weights holds the user-preference weights of eq. (2).
type Weights struct {
	Ws, Wq, Wmu float64
}

// DefaultWeights matches the paper's experiments (w_s = w_q = w_µ = 1).
func DefaultWeights() Weights { return Weights{Ws: 1, Wq: 1, Wmu: 1} }

// Validate rejects negative or non-finite weights.
func (w Weights) Validate() error {
	for _, x := range []float64{w.Ws, w.Wq, w.Wmu} {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return errors.New("agg: weights must be finite and non-negative")
		}
	}
	return nil
}

// EuclideanSum is the paper's reference aggregation (eq. (2)).
type EuclideanSum struct {
	W         Weights
	Transform ScoreTransform
}

// NewEuclideanSum validates the weights and returns the aggregation.
func NewEuclideanSum(w Weights, transform ScoreTransform) (*EuclideanSum, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &EuclideanSum{W: w, Transform: transform}, nil
}

// MustEuclideanSum is NewEuclideanSum that panics on error.
func MustEuclideanSum(w Weights, transform ScoreTransform) *EuclideanSum {
	e, err := NewEuclideanSum(w, transform)
	if err != nil {
		panic(err)
	}
	return e
}

// TransformScore implements Quadratic. A log transform of σ = 0 is −∞;
// relation validation keeps scores strictly positive so this stays finite
// in normal operation.
func (e *EuclideanSum) TransformScore(sigma float64) float64 {
	if e.Transform == IdentityScore {
		return sigma
	}
	return math.Log(sigma)
}

// Weights implements Quadratic.
func (e *EuclideanSum) Weights() (ws, wq, wmu float64) { return e.W.Ws, e.W.Wq, e.W.Wmu }

// G implements Function: g(σ, y, z) = w_s·T(σ) − w_q·y² − w_µ·z².
func (e *EuclideanSum) G(_ int, sigma, dq, dmu float64) float64 {
	return e.W.Ws*e.TransformScore(sigma) - e.W.Wq*dq*dq - e.W.Wmu*dmu*dmu
}

// F implements Function: the sum combiner.
func (e *EuclideanSum) F(parts []float64) float64 {
	var s float64
	for _, p := range parts {
		s += p
	}
	return s
}

// Score implements Function using the mean centroid.
func (e *EuclideanSum) Score(q vec.Vector, sigmas []float64, xs []vec.Vector) float64 {
	if len(sigmas) != len(xs) || len(xs) == 0 {
		panic("agg: sigmas/xs mismatch or empty")
	}
	mu := vec.Mean(xs...)
	var s float64
	for i, x := range xs {
		s += e.W.Ws*e.TransformScore(sigmas[i]) - e.W.Wq*x.Dist2(q) - e.W.Wmu*x.Dist2(mu)
	}
	return s
}

// ScoreScratch implements ScratchScorer: the operation sequence matches
// Score exactly (MeanInto mirrors Mean bit-for-bit), only the centroid
// buffer is caller-owned.
func (e *EuclideanSum) ScoreScratch(q vec.Vector, sigmas []float64, xs []vec.Vector, mu vec.Vector) float64 {
	if len(sigmas) != len(xs) || len(xs) == 0 {
		panic("agg: sigmas/xs mismatch or empty")
	}
	vec.MeanInto(mu, xs)
	var s float64
	for i, x := range xs {
		s += e.W.Ws*e.TransformScore(sigmas[i]) - e.W.Wq*x.Dist2(q) - e.W.Wmu*x.Dist2(mu)
	}
	return s
}

// SoloBound implements Separable: g with the centroid distance zeroed.
// The dropped −w_µ·dmu² term is never positive, so the sum of solo bounds
// dominates the full score.
func (e *EuclideanSum) SoloBound(_ int, sigma, dq float64) float64 {
	return e.W.Ws*e.TransformScore(sigma) - e.W.Wq*dq*dq
}

// Metric implements Function.
func (e *EuclideanSum) Metric() vec.Metric { return vec.Euclidean{} }

// Name implements Function.
func (e *EuclideanSum) Name() string {
	return fmt.Sprintf("euclidean-sum(ws=%g,wq=%g,wmu=%g,%s)", e.W.Ws, e.W.Wq, e.W.Wmu, e.Transform)
}

// CosineProximity scores combinations with cosine dissimilarity in place of
// squared Euclidean distance — the extension named as future work in the
// paper's conclusion:
//
//	S(τ) = Σ_i w_s·T(σ_i) − w_q·cosdist(x_i, q) − w_µ·cosdist(x_i, µ)
//
// It implements Function but not Quadratic: the tight bound's closed-form
// geometry does not apply, so engines fall back to the (correct but looser)
// corner bound for this aggregation.
type CosineProximity struct {
	W         Weights
	Transform ScoreTransform
	metric    vec.CosineDistance
}

// NewCosineProximity validates the weights and returns the aggregation.
func NewCosineProximity(w Weights, transform ScoreTransform) (*CosineProximity, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &CosineProximity{W: w, Transform: transform}, nil
}

// G implements Function; dq and dmu are cosine dissimilarities in [0, 2].
func (c *CosineProximity) G(_ int, sigma, dq, dmu float64) float64 {
	t := sigma
	if c.Transform == LogScore {
		t = math.Log(sigma)
	}
	return c.W.Ws*t - c.W.Wq*dq - c.W.Wmu*dmu
}

// F implements Function.
func (c *CosineProximity) F(parts []float64) float64 {
	var s float64
	for _, p := range parts {
		s += p
	}
	return s
}

// Score implements Function with the mean centroid.
func (c *CosineProximity) Score(q vec.Vector, sigmas []float64, xs []vec.Vector) float64 {
	if len(sigmas) != len(xs) || len(xs) == 0 {
		panic("agg: sigmas/xs mismatch or empty")
	}
	mu := vec.Mean(xs...)
	var s float64
	for i, x := range xs {
		s += c.G(i, sigmas[i], c.metric.Distance(x, q), c.metric.Distance(x, mu))
	}
	return s
}

// ScoreScratch implements ScratchScorer (see EuclideanSum.ScoreScratch).
func (c *CosineProximity) ScoreScratch(q vec.Vector, sigmas []float64, xs []vec.Vector, mu vec.Vector) float64 {
	if len(sigmas) != len(xs) || len(xs) == 0 {
		panic("agg: sigmas/xs mismatch or empty")
	}
	vec.MeanInto(mu, xs)
	var s float64
	for i, x := range xs {
		s += c.G(i, sigmas[i], c.metric.Distance(x, q), c.metric.Distance(x, mu))
	}
	return s
}

// SoloBound implements Separable: g with the centroid dissimilarity
// zeroed (cosine dissimilarity is non-negative, so the dropped term only
// subtracts).
func (c *CosineProximity) SoloBound(i int, sigma, dq float64) float64 {
	return c.G(i, sigma, dq, 0)
}

// Metric implements Function.
func (c *CosineProximity) Metric() vec.Metric { return c.metric }

// Name implements Function.
func (c *CosineProximity) Name() string {
	return fmt.Sprintf("cosine-proximity(ws=%g,wq=%g,wmu=%g,%s)", c.W.Ws, c.W.Wq, c.W.Wmu, c.Transform)
}
