package agg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// TestScoreBlockBitIdentity: for both reference aggregations, every block
// width, every varying slot, and random geometry, ScoreBlock must equal a
// loop of ScoreScratch calls bit for bit — with qterms produced by QTerm,
// exactly as the engine caches them.
func TestScoreBlockBitIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	aggs := []BlockScorer{
		MustEuclideanSum(Weights{Ws: 1, Wq: 1, Wmu: 1}, LogScore),
		MustEuclideanSum(Weights{Ws: 2, Wq: 0.5, Wmu: 3}, IdentityScore),
		mustCosine(Weights{Ws: 1, Wq: 1, Wmu: 1}, LogScore),
		mustCosine(Weights{Ws: 0.7, Wq: 2, Wmu: 0.1}, IdentityScore),
	}
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(3)
		d := 1 + r.Intn(4)
		blockW := 1 + r.Intn(9)
		fn := aggs[r.Intn(len(aggs))]
		vary := r.Intn(n)

		q := randVec(r, d)
		sigmas := make([]float64, n)
		xs := make([]vec.Vector, n)
		qterms := make([]float64, n)
		for i := 0; i < n; i++ {
			sigmas[i] = 0.1 + r.Float64()*5
			xs[i] = randVec(r, d)
			qterms[i] = fn.QTerm(i, sigmas[i], xs[i], q)
		}
		candSig := make([]float64, blockW)
		candXs := make([]vec.Vector, blockW)
		candQ := make([]float64, blockW)
		for j := 0; j < blockW; j++ {
			candSig[j] = 0.1 + r.Float64()*5
			candXs[j] = randVec(r, d)
			candQ[j] = fn.QTerm(vary, candSig[j], candXs[j], q)
		}

		var scr BlockScratch
		out := make([]float64, blockW)
		fn.ScoreBlock(q, qterms, xs, vary, candQ, candXs, &scr, out)

		mu := vec.New(d)
		scalarSig := append([]float64{}, sigmas...)
		scalarXs := append([]vec.Vector{}, xs...)
		for j := 0; j < blockW; j++ {
			scalarSig[vary] = candSig[j]
			scalarXs[vary] = candXs[j]
			want := fn.ScoreScratch(q, scalarSig, scalarXs, mu)
			if math.Float64bits(out[j]) != math.Float64bits(want) {
				t.Fatalf("trial %d (%s, n=%d d=%d vary=%d block=%d lane %d): block %v, scalar %v",
					trial, fn.Name(), n, d, vary, blockW, j, out[j], want)
			}
		}
	}
}
