package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Paper Example 3.2 / Table 3, partial combination τ2^(1):
// fixed projection √2, unseen bounds δ1=1, δ3=2√2. Optimal θ = (1, 2√2)
// and the 1-D objective is 12.84 (t(τ) = −12.8 in the paper).
func TestSolve14PaperExampleTau2(t *testing.T) {
	s, err := Solve14(1, 1, []float64{math.Sqrt2}, []float64{1, 2 * math.Sqrt2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s.Unseen[0], 1, 1e-12) || !almostEq(s.Unseen[1], 2*math.Sqrt2, 1e-12) {
		t.Fatalf("unseen = %v", s.Unseen)
	}
	if !almostEq(s.Objective, 12.8378, 1e-3) {
		t.Fatalf("objective = %v, want ≈ 12.84", s.Objective)
	}
}

// Paper Table 3, empty partial combination ⟨⟩ with δ = (1, 2√2, 2√2):
// optimal θ1 = 1.131 (strictly above its bound), t(⟨⟩) = −19.2.
func TestSolve14PaperExampleEmptyPartial(t *testing.T) {
	s, err := Solve14(1, 1, nil, []float64{1, 2 * math.Sqrt2, 2 * math.Sqrt2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s.Unseen[0], 4*math.Sqrt2/5, 1e-9) { // ψ = wµ(δ2+δ3)/(3·2−2) = 4√2/5 ≈ 1.131
		t.Fatalf("θ1 = %v, want ≈ 1.1314", s.Unseen[0])
	}
	if !almostEq(s.Objective, 19.2, 0.05) {
		t.Fatalf("objective = %v, want ≈ 19.2", s.Objective)
	}
}

// Paper Example 3.2, partial τ1^(1)×τ3^(1): projections (−0.2236, 1.3416),
// unseen δ2 = 2√2 clamps.
func TestSolve14PaperExamplePair(t *testing.T) {
	s, err := Solve14(1, 1, []float64{-0.22360679, 1.34164079}, []float64{2 * math.Sqrt2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s.Unseen[0], 2*math.Sqrt2, 1e-9) {
		t.Fatalf("θ2 = %v, want 2√2", s.Unseen[0])
	}
}

func TestSolve14NoUnseen(t *testing.T) {
	s, err := Solve14(2, 3, []float64{1, -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// wq·(1+1) + wµ·((1)²+(−1)²) = 4 + 12 = wait: θ̄=0, spread = 1+1=2 → 2·2+3·2 = 10.
	if !almostEq(s.Objective, 10, 1e-12) {
		t.Fatalf("objective = %v, want 10", s.Objective)
	}
}

func TestSolve14EmptyProblem(t *testing.T) {
	s, err := Solve14(1, 1, nil, nil)
	if err != nil || s.Objective != 0 || len(s.Theta) != 0 {
		t.Fatalf("empty problem: %+v err=%v", s, err)
	}
}

func TestSolve14BadWeights(t *testing.T) {
	if _, err := Solve14(-1, 1, nil, []float64{1}); err != ErrBadWeights {
		t.Fatalf("err = %v", err)
	}
	if _, err := Solve14(1, math.Inf(1), nil, []float64{1}); err != ErrBadWeights {
		t.Fatalf("err = %v", err)
	}
}

// With w_q = 0 and no fixed variables the objective only penalizes spread;
// the optimum sets all variables to the largest bound (objective 0).
func TestSolve14ZeroWqAllFree(t *testing.T) {
	s, err := Solve14(0, 1, nil, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Unseen {
		if !almostEq(v, 3, 1e-9) {
			t.Fatalf("unseen[%d] = %v, want 3 (all at max δ)", i, v)
		}
	}
	if !almostEq(s.Objective, 0, 1e-9) {
		t.Fatalf("objective = %v, want 0", s.Objective)
	}
}

// Interior optimum: with a tiny δ the free stationary value exceeds the
// bound, so no clamping happens.
func TestSolve14InteriorOptimum(t *testing.T) {
	s, err := Solve14(1, 1, []float64{6}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	// ψ = wµ·6/(2·2−1) = 2.
	if !almostEq(s.Unseen[0], 2, 1e-12) {
		t.Fatalf("unseen = %v, want 2", s.Unseen[0])
	}
}

func TestHessian14Structure(t *testing.T) {
	h := Hessian14(2, 3, 4)
	if !h.IsSymmetric(0) {
		t.Fatal("H not symmetric")
	}
	// Row sums must equal w_q (the 11ᵀ/n part cancels w_µ on row sums).
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += h.At(i, j)
		}
		if !almostEq(s, 2, 1e-12) {
			t.Fatalf("row %d sum = %v, want w_q = 2", i, s)
		}
	}
}

// Property: Solve14's objective equals θᵀHθ and its solution satisfies the
// KKT conditions (stationarity for free, feasibility + multiplier sign for
// clamped).
func TestQuickSolve14KKT(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wq := r.Float64() * 2
		wmu := r.Float64() * 2
		m, u := r.Intn(3), 1+r.Intn(4)
		fixed := make([]float64, m)
		for i := range fixed {
			fixed[i] = r.NormFloat64() * 3
		}
		lower := make([]float64, u)
		for i := range lower {
			lower[i] = r.Float64() * 4
		}
		s, err := Solve14(wq, wmu, fixed, lower)
		if err != nil {
			return false
		}
		n := m + u
		var sum float64
		for _, th := range s.Theta {
			sum += th
		}
		for i := 0; i < u; i++ {
			th := s.Unseen[i]
			if th < lower[i]-1e-9 {
				return false // infeasible
			}
			g := 2 * ((wq+wmu)*th - wmu*sum/float64(n))
			if th > lower[i]+1e-9 {
				// Free: stationarity.
				if math.Abs(g) > 1e-6*(1+math.Abs(g)) && math.Abs(g) > 1e-6 {
					return false
				}
			} else if g < -1e-6 {
				// Clamped: non-negative multiplier.
				return false
			}
		}
		// Objective consistent with the quadratic form.
		return almostEq(s.Objective, Objective14(wq, wmu, s.Theta), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Solve14 matches the general active-set solver on random
// instances (Q = 2H so that ½xᵀQx = θᵀHθ).
func TestQuickSolve14MatchesActiveSet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wq := 0.1 + r.Float64()*2 // keep strictly convex for the general solver
		wmu := r.Float64() * 2
		m, u := r.Intn(3), 1+r.Intn(4)
		n := m + u
		fixed := make([]float64, m)
		for i := range fixed {
			fixed[i] = r.NormFloat64() * 2
		}
		lower := make([]float64, u)
		for i := range lower {
			lower[i] = r.Float64() * 3
		}
		fast, err := Solve14(wq, wmu, fixed, lower)
		if err != nil {
			return false
		}
		p := &BoundedProblem{
			Q:        Hessian14(wq, wmu, n).ScaleInPlace(2),
			C:        make([]float64, n),
			Fixed:    make([]bool, n),
			FixedVal: make([]float64, n),
			HasLower: make([]bool, n),
			Lower:    make([]float64, n),
		}
		for i := 0; i < m; i++ {
			p.Fixed[i] = true
			p.FixedVal[i] = fixed[i]
		}
		for i := 0; i < u; i++ {
			p.HasLower[m+i] = true
			p.Lower[m+i] = lower[i]
		}
		x, obj, err := SolveBounded(p)
		if err != nil {
			return false
		}
		if !almostEq(obj, fast.Objective, 1e-6*(1+math.Abs(obj))) {
			return false
		}
		for i := range x {
			if !almostEq(x[i], fast.Theta[i], 1e-6*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Solve14 is at least as good as any random feasible point.
func TestQuickSolve14GlobalOptimum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		wq := r.Float64() * 2
		wmu := r.Float64() * 2
		m, u := r.Intn(3), 1+r.Intn(4)
		fixed := make([]float64, m)
		for i := range fixed {
			fixed[i] = r.NormFloat64() * 2
		}
		lower := make([]float64, u)
		for i := range lower {
			lower[i] = r.Float64() * 3
		}
		s, err := Solve14(wq, wmu, fixed, lower)
		if err != nil {
			return false
		}
		theta := make([]float64, m+u)
		copy(theta, fixed)
		for trial := 0; trial < 40; trial++ {
			for i := 0; i < u; i++ {
				theta[m+i] = lower[i] + r.Float64()*5
			}
			if Objective14(wq, wmu, theta) < s.Objective-1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveBoundedSimple(t *testing.T) {
	// minimize (x−3)² + (y−1)² s.t. x ≥ 4, y free:
	// ½xᵀQx + cᵀx with Q = 2I, c = (−6, −2).
	p := &BoundedProblem{
		Q:        linalg.Identity(2).ScaleInPlace(2),
		C:        []float64{-6, -2},
		Fixed:    []bool{false, false},
		FixedVal: []float64{0, 0},
		HasLower: []bool{true, false},
		Lower:    []float64{4, 0},
	}
	x, _, err := SolveBounded(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 4, 1e-9) || !almostEq(x[1], 1, 1e-9) {
		t.Fatalf("x = %v, want (4, 1)", x)
	}
}

func TestSolveBoundedReleasesConstraint(t *testing.T) {
	// minimize (x−3)² with x ≥ 1: the bound is initially active at the
	// start point but must be released to reach x = 3.
	p := &BoundedProblem{
		Q:        linalg.Identity(1).ScaleInPlace(2),
		C:        []float64{-6},
		Fixed:    []bool{false},
		FixedVal: []float64{0},
		HasLower: []bool{true},
		Lower:    []float64{1},
	}
	x, _, err := SolveBounded(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-9) {
		t.Fatalf("x = %v, want 3", x)
	}
}

func TestSolveBoundedValidate(t *testing.T) {
	p := &BoundedProblem{Q: linalg.NewMatrix(2, 2), C: []float64{1}}
	if _, _, err := SolveBounded(p); err == nil {
		t.Fatal("mismatched problem accepted")
	}
	bad := &BoundedProblem{
		Q:        linalg.MatrixFromRows([][]float64{{1, 5}, {0, 1}}),
		C:        []float64{0, 0},
		Fixed:    make([]bool, 2),
		FixedVal: make([]float64, 2),
		HasLower: make([]bool, 2),
		Lower:    make([]float64, 2),
	}
	if _, _, err := SolveBounded(bad); err == nil {
		t.Fatal("asymmetric Q accepted")
	}
}
