package qp

import (
	"math/rand"
	"testing"
)

// The tight bound solves one instance of problem (14) per partial
// combination evaluation; its latency bounds the whole engine's CPU
// profile, so it is tracked here at the sizes that occur in practice
// (n = number of joined relations).
func benchSolve14(b *testing.B, m, u int) {
	r := rand.New(rand.NewSource(1))
	fixed := make([]float64, m)
	for i := range fixed {
		fixed[i] = r.NormFloat64() * 2
	}
	lower := make([]float64, u)
	for i := range lower {
		lower[i] = r.Float64() * 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve14(1, 1, fixed, lower); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve14N2(b *testing.B) { benchSolve14(b, 1, 1) }
func BenchmarkSolve14N3(b *testing.B) { benchSolve14(b, 2, 1) }
func BenchmarkSolve14N4(b *testing.B) { benchSolve14(b, 2, 2) }
func BenchmarkSolve14N8(b *testing.B) { benchSolve14(b, 4, 4) }

// The general active-set solver is the cross-check path; its cost shows
// what the specialized solver saves.
func BenchmarkActiveSetN4(b *testing.B) {
	m, u := 2, 2
	n := m + u
	r := rand.New(rand.NewSource(1))
	p := &BoundedProblem{
		Q:        Hessian14(1, 1, n).ScaleInPlace(2),
		C:        make([]float64, n),
		Fixed:    make([]bool, n),
		FixedVal: make([]float64, n),
		HasLower: make([]bool, n),
		Lower:    make([]float64, n),
	}
	for i := 0; i < m; i++ {
		p.Fixed[i] = true
		p.FixedVal[i] = r.NormFloat64() * 2
	}
	for i := m; i < n; i++ {
		p.HasLower[i] = true
		p.Lower[i] = r.Float64() * 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveBounded(p); err != nil {
			b.Fatal(err)
		}
	}
}
