// Package qp solves the convex quadratic programs arising in the tight
// bounding scheme of proximity rank join.
//
// The central problem is paper eq. (14): after the collinearity reduction
// (Theorem 3.4) the bound on a partial combination is
//
//	minimize   w_q·Σ θ_i² + w_µ·Σ (θ_i − θ̄)²
//	subject to θ_i = p_i      for seen tuples (ray projections, eq. 13)
//	           θ_i ≥ δ_i      for unseen tuples (distance-access constraint)
//
// with θ̄ the mean of all θ. The Hessian is H = w_q·I + w_µ·(I − 11ᵀ/n),
// whose special structure makes every free variable share a single
// stationary value; Solve14 exploits this for an exact O(u log u) solution.
// SolveBounded is a general primal active-set solver used to cross-check
// Solve14 and to support arbitrary convex quadratics with fixed variables
// and lower bounds.
package qp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrBadWeights is returned when a weight is negative or not finite.
var ErrBadWeights = errors.New("qp: weights must be finite and non-negative")

// ErrMaxIterations is returned when the active-set loop fails to converge,
// which indicates a non-convex or badly scaled problem.
var ErrMaxIterations = errors.New("qp: active-set iteration limit exceeded")

// Solution14 is the result of Solve14.
type Solution14 struct {
	// Theta holds the optimal coordinates for all variables: first the
	// fixed (seen) values as given, then the unseen values in input order.
	Theta []float64
	// Unseen aliases the unseen suffix of Theta.
	Unseen []float64
	// Objective is the minimized quadratic w_q·Σθ² + w_µ·Σ(θ−θ̄)².
	Objective float64
}

// Scratch holds the working storage of Eval so that a caller solving one
// problem (14) instance per bound evaluation — the engine solves tens of
// thousands per query — reuses the same two slices across calls instead
// of allocating them. A Scratch belongs to one engine (goroutine); it is
// deliberately not pooled, so ownership and lifetime stay explicit.
type Scratch struct {
	theta []float64
	order []int
}

// grow resizes the scratch for an n-variable problem with u unseen.
func (s *Scratch) grow(n, u int) {
	if cap(s.theta) < n {
		s.theta = make([]float64, n)
	}
	s.theta = s.theta[:n]
	if cap(s.order) < u {
		s.order = make([]int, u)
	}
	s.order = s.order[:u]
}

// Solve14 solves paper problem (14) exactly.
//
// fixed are the ray projections of the m seen tuples (may be negative);
// lower are the distance lower bounds δ_i ≥ 0 of the n−m unseen tuples.
// wq and wmu are the query- and centroid-distance weights (non-negative,
// not both zero together with an empty problem is fine — the objective is
// then identically zero).
//
// The returned solution owns its storage; the allocation-free variant for
// hot paths is Eval.
func Solve14(wq, wmu float64, fixed, lower []float64) (Solution14, error) {
	var scr Scratch
	return Eval(wq, wmu, fixed, lower, &scr)
}

// Eval is Solve14 writing into caller-owned scratch: the returned
// solution's Theta/Unseen alias scr's storage and stay valid only until
// the next Eval with the same scratch. Results are identical to Solve14.
func Eval(wq, wmu float64, fixed, lower []float64, scr *Scratch) (Solution14, error) {
	if !(wq >= 0) || !(wmu >= 0) || math.IsInf(wq, 0) || math.IsInf(wmu, 0) {
		return Solution14{}, ErrBadWeights
	}
	m, u := len(fixed), len(lower)
	n := m + u
	if n == 0 {
		return Solution14{Theta: nil, Unseen: nil, Objective: 0}, nil
	}

	scr.grow(n, u)
	theta := scr.theta
	copy(theta, fixed)
	unseen := theta[m:]

	if u == 0 {
		// Nothing to optimize; evaluate the objective at the fixed point.
		return Solution14{Theta: theta, Unseen: unseen, Objective: quad14(wq, wmu, theta)}, nil
	}

	// Sort unseen indices by δ descending: the optimal active set clamps a
	// prefix of this order (threshold structure of the shared stationary
	// value). Insertion sort: the typical u is n−m ≤ 3, and for any u < 12
	// the permutation (ties included) matches what sort.Slice used to
	// produce, without the reflection-based swapper allocation.
	order := scr.order
	for i := range order {
		order[i] = i
	}
	for i := 1; i < u; i++ {
		for j := i; j > 0 && lower[order[j]] > lower[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	sumFixed := 0.0
	for _, p := range fixed {
		sumFixed += p
	}

	// Try clamping the k largest-δ unseen variables for k = 0..u; the free
	// remainder shares ψ = w_µ·s / (n(w_q+w_µ) − kFree·w_µ). Pick the first
	// KKT-consistent split.
	sumClamped := 0.0
	chosen := false
	for k := 0; k <= u; k++ {
		kFree := u - k
		denom := float64(n)*(wq+wmu) - float64(kFree)*wmu
		if k > 0 {
			sumClamped += lower[order[k-1]]
		}
		if denom <= 1e-300 {
			// Degenerate (w_q = 0 and everything free): any common value is
			// optimal; clamping one more variable resolves it next round.
			continue
		}
		psi := wmu * (sumFixed + sumClamped) / denom
		// Feasibility of free variables: ψ ≥ every free δ.
		if kFree > 0 && psi < lower[order[k]]-1e-12 {
			continue
		}
		// Multiplier sign for clamped variables: every clamped δ ≥ ψ.
		if k > 0 && lower[order[k-1]] < psi-1e-12 {
			continue
		}
		for j := 0; j < k; j++ {
			unseen[order[j]] = lower[order[j]]
		}
		for j := k; j < u; j++ {
			unseen[order[j]] = psi
		}
		chosen = true
		break
	}
	if !chosen {
		// Unreachable for a convex problem, but fall back to the fully
		// clamped (always feasible) point rather than failing.
		for j := 0; j < u; j++ {
			unseen[j] = lower[j]
		}
	}
	return Solution14{Theta: theta, Unseen: unseen, Objective: quad14(wq, wmu, theta)}, nil
}

// quad14 evaluates w_q·Σθ² + w_µ·Σ(θ−θ̄)².
func quad14(wq, wmu float64, theta []float64) float64 {
	if len(theta) == 0 {
		return 0
	}
	var sum, sq float64
	for _, t := range theta {
		sum += t
		sq += t * t
	}
	mean := sum / float64(len(theta))
	var spread float64
	for _, t := range theta {
		d := t - mean
		spread += d * d
	}
	return wq*sq + wmu*spread
}

// Objective14 exposes the quadratic form of problem (14) for testing and
// bound evaluation.
func Objective14(wq, wmu float64, theta []float64) float64 { return quad14(wq, wmu, theta) }

// BoundedProblem is a convex quadratic program
//
//	minimize ½·xᵀQx + cᵀx
//	subject to x_i  = FixedVal_i  where Fixed_i
//	           x_i ≥ Lower_i      where HasLower_i
//
// Q must be symmetric positive semidefinite on the free subspace.
type BoundedProblem struct {
	Q        *linalg.Matrix
	C        []float64
	Fixed    []bool
	FixedVal []float64
	HasLower []bool
	Lower    []float64
}

// Validate checks structural consistency of the problem.
func (p *BoundedProblem) Validate() error {
	n := len(p.C)
	if p.Q.Rows() != n || p.Q.Cols() != n {
		return fmt.Errorf("qp: Q is %dx%d, want %dx%d", p.Q.Rows(), p.Q.Cols(), n, n)
	}
	if len(p.Fixed) != n || len(p.FixedVal) != n || len(p.HasLower) != n || len(p.Lower) != n {
		return fmt.Errorf("qp: constraint slices must all have length %d", n)
	}
	if !p.Q.IsSymmetric(1e-9 * (1 + p.Q.MaxAbs())) {
		return errors.New("qp: Q must be symmetric")
	}
	return nil
}

// SolveBounded solves the problem with a primal active-set method. The
// returned x is the optimizer; the second return is the objective value.
func SolveBounded(p *BoundedProblem) ([]float64, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)

	// Feasible start: fixed at their values, lower-bounded at their bounds,
	// free at zero.
	x := make([]float64, n)
	active := make([]bool, n) // lower bound treated as equality
	for i := 0; i < n; i++ {
		switch {
		case p.Fixed[i]:
			x[i] = p.FixedVal[i]
		case p.HasLower[i]:
			x[i] = p.Lower[i]
			active[i] = true
		}
	}

	const maxIter = 500
	for iter := 0; iter < maxIter; iter++ {
		// Solve the equality-constrained subproblem over free variables.
		free := freeIndices(p, active)
		xe, err := solveEquality(p, active, free, x)
		if err != nil {
			return nil, 0, err
		}
		if feasibleStep(p, free, x, xe) {
			copy(x, xe)
			// Check multipliers of active bounds: λ_i = (Qx + c)_i ≥ 0.
			g := grad(p, x)
			worst, worstIdx := -1e-10, -1
			for i := 0; i < n; i++ {
				if active[i] && g[i] < worst {
					worst, worstIdx = g[i], i
				}
			}
			if worstIdx < 0 {
				return x, objective(p, x), nil
			}
			active[worstIdx] = false
			continue
		}
		// Step toward xe, stopping at the first violated bound.
		alpha, blocking := 1.0, -1
		for _, i := range free {
			if !p.HasLower[i] {
				continue
			}
			dir := xe[i] - x[i]
			if dir >= -1e-15 {
				continue
			}
			a := (p.Lower[i] - x[i]) / dir
			if a < alpha {
				alpha, blocking = a, i
			}
		}
		for _, i := range free {
			x[i] += alpha * (xe[i] - x[i])
		}
		if blocking >= 0 {
			x[blocking] = p.Lower[blocking]
			active[blocking] = true
		}
	}
	return nil, 0, ErrMaxIterations
}

func freeIndices(p *BoundedProblem, active []bool) []int {
	var free []int
	for i := range p.C {
		if !p.Fixed[i] && !active[i] {
			free = append(free, i)
		}
	}
	return free
}

// solveEquality minimizes over the free coordinates with the others held at
// their current values: Q_FF x_F = −c_F − Q_FK x_K.
func solveEquality(p *BoundedProblem, active []bool, free []int, x []float64) ([]float64, error) {
	out := make([]float64, len(x))
	copy(out, x)
	k := len(free)
	if k == 0 {
		return out, nil
	}
	a := linalg.NewMatrix(k, k)
	b := make([]float64, k)
	for r, i := range free {
		rhs := -p.C[i]
		for j := 0; j < len(x); j++ {
			q := p.Q.At(i, j)
			if q == 0 {
				continue
			}
			if p.Fixed[j] || active[j] {
				rhs -= q * x[j]
			}
		}
		b[r] = rhs
		for c, j := range free {
			a.Set(r, c, p.Q.At(i, j))
		}
	}
	sol, err := linalg.SolveLinear(a, b)
	if err == linalg.ErrSingular {
		// PSD-singular on the free subspace: regularize minimally. The
		// regularized optimizer is a valid minimizer of the original when
		// the singular directions are objective-flat.
		for i := 0; i < k; i++ {
			a.Add(i, i, 1e-10*(1+a.MaxAbs()))
		}
		sol, err = linalg.SolveLinear(a, b)
	}
	if err != nil {
		return nil, err
	}
	for r, i := range free {
		out[i] = sol[r]
	}
	return out, nil
}

func feasibleStep(p *BoundedProblem, free []int, x, xe []float64) bool {
	for _, i := range free {
		if p.HasLower[i] && xe[i] < p.Lower[i]-1e-12 {
			return false
		}
	}
	return true
}

func grad(p *BoundedProblem, x []float64) []float64 {
	g := p.Q.MulVec(x)
	for i := range g {
		g[i] += p.C[i]
	}
	return g
}

func objective(p *BoundedProblem, x []float64) float64 {
	qx := p.Q.MulVec(x)
	var s float64
	for i := range x {
		s += 0.5*x[i]*qx[i] + p.C[i]*x[i]
	}
	return s
}

// Hessian14 builds the matrix H = w_q·I + w_µ·(I − 11ᵀ/n) of problem (14),
// for use with SolveBounded and in tests.
func Hessian14(wq, wmu float64, n int) *linalg.Matrix {
	h := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -wmu / float64(n)
			if i == j {
				v += wq + wmu
			}
			h.Set(i, j, v)
		}
	}
	return h
}
