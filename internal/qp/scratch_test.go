package qp

import (
	"math"
	"math/rand"
	"testing"
)

// TestEvalMatchesSolve14 checks that the scratch-based entry point is
// bitwise identical to Solve14 across random problems, including repeated
// reuse of one Scratch over problems of varying size.
func TestEvalMatchesSolve14(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var scr Scratch
	for trial := 0; trial < 500; trial++ {
		m, u := r.Intn(4), r.Intn(4)
		wq, wmu := r.Float64()*2, r.Float64()*2
		if r.Intn(8) == 0 {
			wq = 0
		}
		if r.Intn(8) == 0 {
			wmu = 0
		}
		fixed := make([]float64, m)
		for i := range fixed {
			fixed[i] = r.NormFloat64() * 3
		}
		lower := make([]float64, u)
		for i := range lower {
			lower[i] = r.Float64() * 4
			if r.Intn(3) == 0 && i > 0 {
				lower[i] = lower[i-1] // exercise ties
			}
		}
		want, errW := Solve14(wq, wmu, fixed, lower)
		got, errG := Eval(wq, wmu, fixed, lower, &scr)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errW, errG)
		}
		if errW != nil {
			continue
		}
		if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
			t.Fatalf("trial %d: objective %v vs %v", trial, got.Objective, want.Objective)
		}
		if len(got.Theta) != len(want.Theta) {
			t.Fatalf("trial %d: theta length %d vs %d", trial, len(got.Theta), len(want.Theta))
		}
		for i := range want.Theta {
			if math.Float64bits(got.Theta[i]) != math.Float64bits(want.Theta[i]) {
				t.Fatalf("trial %d: theta[%d] %v vs %v", trial, i, got.Theta[i], want.Theta[i])
			}
		}
	}
}

// BenchmarkQPBound tracks the cost of one tight-bound QP evaluation the
// way the engine pays it: a per-engine Scratch reused across calls. The
// allocs/op of this benchmark must stay at zero — it is the per-partial
// allocation hotspot the columnar hot path eliminated.
func BenchmarkQPBound(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	fixed := make([]float64, 2)
	for i := range fixed {
		fixed[i] = r.NormFloat64() * 2
	}
	lower := make([]float64, 2)
	for i := range lower {
		lower[i] = r.Float64() * 3
	}
	var scr Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(1, 1, fixed, lower, &scr); err != nil {
			b.Fatal(err)
		}
	}
}
