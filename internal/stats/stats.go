// Package stats aggregates run metrics across repeated experiments: the
// paper reports every figure as the average over ten seeded data sets
// (§4.1), with CPU time split into combination-forming, bound-update and
// dominance fractions (the stacked bars of Figure 3).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is one run's measurements.
type Sample struct {
	SumDepths          int
	Depths             []int
	CombinationsFormed int64
	QPSolves           int64
	DominanceLPs       int64
	DominatedPartials  int64
	TotalTime          time.Duration
	BoundTime          time.Duration
	DominanceTime      time.Duration
	DNF                bool
}

// Summary is the average of many samples.
type Summary struct {
	Runs               int
	DNFs               int
	SumDepths          float64
	CombinationsFormed float64
	QPSolves           float64
	DominanceLPs       float64
	DominatedPartials  float64
	TotalSeconds       float64
	BoundSeconds       float64
	DominanceSeconds   float64
	// OtherSeconds is Total − Bound − Dominance: the combination-forming
	// cost (the darker bottom bar in the paper's stacked charts).
	OtherSeconds float64
}

// Collector accumulates samples.
type Collector struct {
	samples []Sample
}

// Add appends one sample.
func (c *Collector) Add(s Sample) { c.samples = append(c.samples, s) }

// Len returns the number of samples collected.
func (c *Collector) Len() int { return len(c.samples) }

// Summarize averages over the non-DNF samples (DNFs are counted but do not
// pollute the means, mirroring how the paper reports "did not finish").
func (c *Collector) Summarize() Summary {
	var s Summary
	s.Runs = len(c.samples)
	n := 0
	for _, sm := range c.samples {
		if sm.DNF {
			s.DNFs++
			continue
		}
		n++
		s.SumDepths += float64(sm.SumDepths)
		s.CombinationsFormed += float64(sm.CombinationsFormed)
		s.QPSolves += float64(sm.QPSolves)
		s.DominanceLPs += float64(sm.DominanceLPs)
		s.DominatedPartials += float64(sm.DominatedPartials)
		s.TotalSeconds += sm.TotalTime.Seconds()
		s.BoundSeconds += sm.BoundTime.Seconds()
		s.DominanceSeconds += sm.DominanceTime.Seconds()
	}
	if n > 0 {
		f := 1 / float64(n)
		s.SumDepths *= f
		s.CombinationsFormed *= f
		s.QPSolves *= f
		s.DominanceLPs *= f
		s.DominatedPartials *= f
		s.TotalSeconds *= f
		s.BoundSeconds *= f
		s.DominanceSeconds *= f
	}
	s.OtherSeconds = s.TotalSeconds - s.BoundSeconds - s.DominanceSeconds
	if s.OtherSeconds < 0 {
		s.OtherSeconds = 0
	}
	return s
}

// SumDepthsQuantile returns the q-quantile (0..1) of the non-DNF sumDepths.
func (c *Collector) SumDepthsQuantile(q float64) float64 {
	var vals []float64
	for _, sm := range c.samples {
		if !sm.DNF {
			vals = append(vals, float64(sm.SumDepths))
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	idx := q * float64(len(vals)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return vals[lo]
	}
	frac := idx - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	out := fmt.Sprintf("sumDepths=%.1f cpu=%.4fs (bound %.4fs, dominance %.4fs)",
		s.SumDepths, s.TotalSeconds, s.BoundSeconds, s.DominanceSeconds)
	if s.DNFs > 0 {
		out += fmt.Sprintf(" [%d/%d DNF]", s.DNFs, s.Runs)
	}
	return out
}

// Gain returns the relative improvement of b over a in percent, where
// smaller is better: 100·(a−b)/a.
func Gain(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (a - b) / a
}
