package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeAverages(t *testing.T) {
	var c Collector
	c.Add(Sample{SumDepths: 10, CombinationsFormed: 100, QPSolves: 4,
		TotalTime: 2 * time.Second, BoundTime: time.Second, DominanceTime: 500 * time.Millisecond})
	c.Add(Sample{SumDepths: 20, CombinationsFormed: 300, QPSolves: 8,
		TotalTime: 4 * time.Second, BoundTime: 2 * time.Second, DominanceTime: 500 * time.Millisecond})
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	s := c.Summarize()
	if s.Runs != 2 || s.DNFs != 0 {
		t.Fatalf("runs/dnfs = %d/%d", s.Runs, s.DNFs)
	}
	if s.SumDepths != 15 || s.CombinationsFormed != 200 || s.QPSolves != 6 {
		t.Fatalf("averages wrong: %+v", s)
	}
	if s.TotalSeconds != 3 || s.BoundSeconds != 1.5 || s.DominanceSeconds != 0.5 {
		t.Fatalf("time averages wrong: %+v", s)
	}
	if math.Abs(s.OtherSeconds-1.0) > 1e-12 {
		t.Fatalf("OtherSeconds = %v, want 1.0", s.OtherSeconds)
	}
}

func TestSummarizeExcludesDNF(t *testing.T) {
	var c Collector
	c.Add(Sample{SumDepths: 10})
	c.Add(Sample{SumDepths: 99999, DNF: true})
	s := c.Summarize()
	if s.DNFs != 1 || s.Runs != 2 {
		t.Fatalf("dnfs/runs = %d/%d", s.DNFs, s.Runs)
	}
	if s.SumDepths != 10 {
		t.Fatalf("DNF polluted the mean: %v", s.SumDepths)
	}
	if !strings.Contains(s.String(), "DNF") {
		t.Errorf("String() misses DNF marker: %s", s.String())
	}
}

func TestSummarizeEmptyAndAllDNF(t *testing.T) {
	var c Collector
	s := c.Summarize()
	if s.Runs != 0 || s.SumDepths != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	c.Add(Sample{DNF: true})
	s = c.Summarize()
	if s.SumDepths != 0 || s.DNFs != 1 {
		t.Fatalf("all-DNF summary: %+v", s)
	}
}

func TestOtherSecondsNeverNegative(t *testing.T) {
	var c Collector
	// Accounting noise: bound slightly exceeds total.
	c.Add(Sample{TotalTime: time.Millisecond, BoundTime: 2 * time.Millisecond})
	if s := c.Summarize(); s.OtherSeconds < 0 {
		t.Fatalf("OtherSeconds = %v", s.OtherSeconds)
	}
}

func TestQuantile(t *testing.T) {
	var c Collector
	for _, d := range []int{10, 20, 30, 40} {
		c.Add(Sample{SumDepths: d})
	}
	c.Add(Sample{SumDepths: 9999, DNF: true})
	if q := c.SumDepthsQuantile(0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := c.SumDepthsQuantile(1); q != 40 {
		t.Errorf("q1 = %v", q)
	}
	if q := c.SumDepthsQuantile(0.5); q != 25 {
		t.Errorf("median = %v", q)
	}
	var empty Collector
	if q := empty.SumDepthsQuantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty quantile = %v, want NaN", q)
	}
}

func TestGain(t *testing.T) {
	if g := Gain(100, 70); g != 30 {
		t.Errorf("Gain = %v", g)
	}
	if g := Gain(0, 5); g != 0 {
		t.Errorf("Gain with zero base = %v", g)
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(depths []uint16) bool {
		if len(depths) == 0 {
			return true
		}
		var c Collector
		lo, hi := int(depths[0]), int(depths[0])
		for _, d := range depths {
			c.Add(Sample{SumDepths: int(d)})
			if int(d) < lo {
				lo = int(d)
			}
			if int(d) > hi {
				hi = int(d)
			}
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := c.SumDepthsQuantile(q)
			if v < prev-1e-9 || v < float64(lo)-1e-9 || v > float64(hi)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
