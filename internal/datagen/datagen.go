// Package datagen builds the synthetic data sets of the paper's
// experimental study (Appendix D.1): every relation draws tuple feature
// vectors from a d-dimensional uniform distribution centered at the origin
// with a target density ρ (tuples per volume unit), and scores from a
// uniform distribution. The skewness parameter ρ1/ρ2 raises the density of
// the first relation while all relations share one region of space.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/relation"
	"repro/internal/vec"
)

// SyntheticConfig parameterizes a synthetic data set (paper Table 2).
type SyntheticConfig struct {
	// Relations is n, the number of relations (≥ 2).
	Relations int
	// Dim is d, the feature-space dimensionality.
	Dim int
	// Density is ρ, tuples per volume unit.
	Density float64
	// Skew is ρ1/ρ2: the density multiplier of relation 1 relative to the
	// others. 1 means unskewed.
	Skew float64
	// BaseTuples is the tuple count of an unskewed relation; together with
	// Density it fixes the shared region volume V = BaseTuples/Density.
	BaseTuples int
	// MinScore keeps scores strictly positive (log transform safety).
	MinScore float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Defaults returns the paper's default operating point (Table 2 bold
// values): n = 2, d = 2, ρ = 100, skew 1.
func Defaults() SyntheticConfig {
	return SyntheticConfig{
		Relations:  2,
		Dim:        2,
		Density:    100,
		Skew:       1,
		BaseTuples: 400,
		MinScore:   0.01,
	}
}

// Validate checks the configuration.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Relations < 2:
		return fmt.Errorf("datagen: need ≥ 2 relations, got %d", c.Relations)
	case c.Dim < 1:
		return fmt.Errorf("datagen: need dim ≥ 1, got %d", c.Dim)
	case c.Density <= 0:
		return fmt.Errorf("datagen: density must be positive, got %v", c.Density)
	case c.Skew <= 0:
		return fmt.Errorf("datagen: skew must be positive, got %v", c.Skew)
	case c.BaseTuples < 1:
		return fmt.Errorf("datagen: need ≥ 1 base tuples, got %d", c.BaseTuples)
	case c.MinScore <= 0 || c.MinScore >= 1:
		return fmt.Errorf("datagen: MinScore must be in (0,1), got %v", c.MinScore)
	}
	return nil
}

// SideLength returns the edge length of the shared hypercube region:
// L = (BaseTuples/Density)^(1/Dim).
func (c SyntheticConfig) SideLength() float64 {
	return math.Pow(float64(c.BaseTuples)/c.Density, 1/float64(c.Dim))
}

// Synthetic generates the relations deterministically from the seed.
func Synthetic(c SyntheticConfig) ([]*relation.Relation, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(c.Seed))
	side := c.SideLength()
	rels := make([]*relation.Relation, c.Relations)
	for i := 0; i < c.Relations; i++ {
		count := c.BaseTuples
		if i == 0 {
			count = int(math.Round(float64(c.BaseTuples) * c.Skew))
		}
		if count < 1 {
			count = 1
		}
		tuples := make([]relation.Tuple, count)
		for j := range tuples {
			v := vec.New(c.Dim)
			for k := range v {
				v[k] = (r.Float64() - 0.5) * side
			}
			tuples[j] = relation.Tuple{
				ID:    fmt.Sprintf("r%d_%d", i+1, j),
				Score: c.MinScore + (1-c.MinScore)*r.Float64(),
				Vec:   v,
			}
		}
		rel, err := relation.New(fmt.Sprintf("R%d", i+1), 1.0, tuples)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
	}
	return rels, nil
}

// ClusterConfig parameterizes a Gaussian-mixture generator used for
// stress-testing adaptive pulling on non-uniform data.
type ClusterConfig struct {
	Relations int
	Dim       int
	Clusters  int
	Tuples    int     // per relation
	Spread    float64 // cluster standard deviation
	Extent    float64 // cluster centers uniform in [-Extent, Extent]^d
	MinScore  float64
	Seed      int64
}

// Clustered generates relations whose vectors form a shared Gaussian
// mixture; scores are biased so that denser clusters carry better scores,
// the regime where proximity and quality interact.
func Clustered(c ClusterConfig) ([]*relation.Relation, error) {
	if c.Relations < 2 || c.Dim < 1 || c.Clusters < 1 || c.Tuples < 1 {
		return nil, fmt.Errorf("datagen: bad cluster config %+v", c)
	}
	if c.MinScore <= 0 || c.MinScore >= 1 {
		return nil, fmt.Errorf("datagen: MinScore must be in (0,1), got %v", c.MinScore)
	}
	r := rand.New(rand.NewSource(c.Seed))
	centers := make([]vec.Vector, c.Clusters)
	quality := make([]float64, c.Clusters)
	for i := range centers {
		v := vec.New(c.Dim)
		for k := range v {
			v[k] = (r.Float64()*2 - 1) * c.Extent
		}
		centers[i] = v
		quality[i] = r.Float64()
	}
	rels := make([]*relation.Relation, c.Relations)
	for i := 0; i < c.Relations; i++ {
		tuples := make([]relation.Tuple, c.Tuples)
		for j := range tuples {
			ci := r.Intn(c.Clusters)
			v := centers[ci].Clone()
			for k := range v {
				v[k] += r.NormFloat64() * c.Spread
			}
			// Score mixes cluster quality with noise, clamped into
			// (MinScore, 1].
			s := 0.6*quality[ci] + 0.4*r.Float64()
			if s < c.MinScore {
				s = c.MinScore
			}
			if s > 1 {
				s = 1
			}
			tuples[j] = relation.Tuple{
				ID:    fmt.Sprintf("c%d_%d", i+1, j),
				Score: s,
				Vec:   v,
			}
		}
		rel, err := relation.New(fmt.Sprintf("C%d", i+1), 1.0, tuples)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
	}
	return rels, nil
}
