package datagen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultsValid(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.Relations = 1 },
		func(c *SyntheticConfig) { c.Dim = 0 },
		func(c *SyntheticConfig) { c.Density = 0 },
		func(c *SyntheticConfig) { c.Skew = 0 },
		func(c *SyntheticConfig) { c.BaseTuples = 0 },
		func(c *SyntheticConfig) { c.MinScore = 0 },
		func(c *SyntheticConfig) { c.MinScore = 1 },
	}
	for i, mut := range cases {
		c := Defaults()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := Synthetic(c); err == nil {
			t.Errorf("case %d generated", i)
		}
	}
}

func TestSyntheticShape(t *testing.T) {
	c := Defaults()
	c.Relations = 3
	c.Seed = 42
	rels, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 3 {
		t.Fatalf("relations = %d", len(rels))
	}
	side := c.SideLength()
	for _, rel := range rels {
		if rel.Len() != c.BaseTuples {
			t.Fatalf("%s has %d tuples, want %d", rel.Name, rel.Len(), c.BaseTuples)
		}
		if rel.Dim() != c.Dim {
			t.Fatalf("dim = %d", rel.Dim())
		}
		for i := 0; i < rel.Len(); i++ {
			tup := rel.At(i)
			for _, x := range tup.Vec {
				if math.Abs(x) > side/2+1e-12 {
					t.Fatalf("coordinate %v outside [-%v/2, %v/2]", x, side, side)
				}
			}
			if tup.Score < c.MinScore || tup.Score > 1 {
				t.Fatalf("score %v outside [%v, 1]", tup.Score, c.MinScore)
			}
		}
	}
}

func TestSyntheticSkew(t *testing.T) {
	c := Defaults()
	c.Skew = 4
	rels, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	if rels[0].Len() != 4*c.BaseTuples {
		t.Fatalf("skewed relation has %d tuples, want %d", rels[0].Len(), 4*c.BaseTuples)
	}
	if rels[1].Len() != c.BaseTuples {
		t.Fatalf("unskewed relation has %d tuples, want %d", rels[1].Len(), c.BaseTuples)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	c := Defaults()
	c.Seed = 7
	a, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := 0; j < a[i].Len(); j++ {
			if !a[i].At(j).Vec.Equal(b[i].At(j).Vec) || a[i].At(j).Score != b[i].At(j).Score {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c2 := c
	c2.Seed = 8
	d, err := Synthetic(c2)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].At(0).Vec.Equal(d[0].At(0).Vec) {
		t.Fatal("different seeds produced identical first tuple")
	}
}

// Property: the empirical density of relation 2..n matches ρ by
// construction (count / volume) and the side length solves the density
// equation.
func TestQuickDensityEquation(t *testing.T) {
	f := func(seed int64) bool {
		s := seed
		if s < 0 {
			s = -s
		}
		c := Defaults()
		c.Seed = seed
		c.Density = 20 + float64(s%7)*30
		c.Dim = 1 + int(s%4)
		side := c.SideLength()
		vol := math.Pow(side, float64(c.Dim))
		return math.Abs(vol*c.Density-float64(c.BaseTuples)) < 1e-6*float64(c.BaseTuples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestClustered(t *testing.T) {
	c := ClusterConfig{
		Relations: 3, Dim: 2, Clusters: 4, Tuples: 100,
		Spread: 0.3, Extent: 2, MinScore: 0.01, Seed: 5,
	}
	rels, err := Clustered(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 3 {
		t.Fatalf("relations = %d", len(rels))
	}
	for _, rel := range rels {
		if rel.Len() != 100 || rel.Dim() != 2 {
			t.Fatalf("shape %d/%d", rel.Len(), rel.Dim())
		}
	}
	// Determinism.
	rels2, err := Clustered(c)
	if err != nil {
		t.Fatal(err)
	}
	if !rels[0].At(0).Vec.Equal(rels2[0].At(0).Vec) {
		t.Fatal("clustered generation not deterministic")
	}
	// Validation.
	bad := c
	bad.Relations = 1
	if _, err := Clustered(bad); err == nil {
		t.Error("bad cluster config accepted")
	}
	bad = c
	bad.MinScore = 2
	if _, err := Clustered(bad); err == nil {
		t.Error("bad MinScore accepted")
	}
}
