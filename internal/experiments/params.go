// Package experiments reproduces the paper's experimental study (§4 and
// Figure 3). Each figure has a runner that sweeps one operating parameter
// of Table 2 while holding the others at their defaults, executes the four
// ProxRJ instantiations over seeded data sets, and renders the same
// series the paper plots.
package experiments

import "repro/internal/core"

// Table 2 — operating parameters (defaults in bold in the paper).
var (
	// KValues is the number of results sweep (default 10).
	KValues = []int{1, 10, 50}
	// DimValues is the dimensionality sweep (default 2).
	DimValues = []int{1, 2, 4, 8, 16}
	// DensityValues is the tuple density sweep (default 100).
	DensityValues = []float64{20, 50, 100, 200}
	// SkewValues is the ρ1/ρ2 sweep (default 1).
	SkewValues = []float64{1, 2, 4, 8}
	// NValues is the number-of-relations sweep (default 2).
	NValues = []int{2, 3, 4}
	// DominancePeriods is the Fig. 3(m)/(n) sweep; 0 renders as ∞
	// (dominance disabled).
	DominancePeriods = []int{1, 2, 4, 8, 12, 16, 0}
)

// Point is one synthetic operating point.
type Point struct {
	K       int
	N       int
	Dim     int
	Density float64
	Skew    float64
}

// DefaultPoint returns Table 2's bold defaults.
func DefaultPoint() Point {
	return Point{K: 10, N: 2, Dim: 2, Density: 100, Skew: 1}
}

// Settings control experiment execution (not the problem itself).
type Settings struct {
	// Reps is the number of seeded data sets averaged per point (paper: 10).
	Reps int
	// BaseTuples is the per-relation size of an unskewed relation.
	BaseTuples int
	// MaxSumDepths and MaxCombinations are the DNF guards; the paper
	// reports CBPA as unable to finish at n = 4 and we reproduce that as a
	// capped DNF rather than a five-minute wall-clock timeout.
	MaxSumDepths    int
	MaxCombinations int64
	// EagerCPU selects the paper-faithful eager bound recomputation for
	// the CPU-time figures (sumDepths figures are schedule-invariant).
	EagerCPU bool
	// Seed offsets the per-rep seeds, so independent suites can use
	// disjoint data.
	Seed int64
}

// DefaultSettings mirror the paper's methodology.
func DefaultSettings() Settings {
	return Settings{
		Reps:            10,
		BaseTuples:      400,
		MaxSumDepths:    4000,
		MaxCombinations: 2_000_000,
		EagerCPU:        true,
	}
}

// QuickSettings run the same experiments at reduced repetition for smoke
// tests and benchmarks.
func QuickSettings() Settings {
	s := DefaultSettings()
	s.Reps = 3
	s.BaseTuples = 250
	s.MaxSumDepths = 1500
	s.MaxCombinations = 400_000
	return s
}

// algorithms in paper presentation order.
var algorithms = []core.Algorithm{core.CBRR, core.CBPA, core.TBRR, core.TBPA}
