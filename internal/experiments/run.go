package experiments

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/cities"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/vec"
)

// defaultAgg is the aggregation of paper eq. (2) with the Example 2.1
// weights (w_s = w_q = w_µ = 1).
func defaultAgg() agg.Function {
	return agg.MustEuclideanSum(agg.DefaultWeights(), agg.LogScore)
}

// runOnce executes one algorithm over the given relations.
func runOnce(rels []*relation.Relation, q vec.Vector, opts core.Options) (core.Result, error) {
	sources := make([]relation.Source, len(rels))
	for i, rel := range rels {
		s, err := relation.NewDistanceSource(rel, q, opts.Agg.Metric())
		if err != nil {
			return core.Result{}, err
		}
		sources[i] = s
	}
	e, err := core.NewEngine(sources, opts)
	if err != nil {
		return core.Result{}, err
	}
	return e.Run()
}

func toSample(res core.Result) stats.Sample {
	return stats.Sample{
		SumDepths:          res.Stats.SumDepths,
		Depths:             res.Stats.Depths,
		CombinationsFormed: res.Stats.CombinationsFormed,
		QPSolves:           res.Stats.QPSolves,
		DominanceLPs:       res.Stats.DominanceLPs,
		DominatedPartials:  res.Stats.DominatedPartials,
		TotalTime:          res.Stats.TotalTime,
		BoundTime:          res.Stats.BoundTime,
		DominanceTime:      res.Stats.DominanceTime,
		DNF:                res.DNF,
	}
}

// RunSyntheticPoint averages one algorithm at one synthetic operating
// point over Settings.Reps seeded data sets. The query is the origin (the
// center of the generated region, as in Appendix D.1).
func RunSyntheticPoint(st Settings, p Point, algo core.Algorithm, domPeriod int, eager bool) (stats.Summary, error) {
	var col stats.Collector
	for rep := 0; rep < st.Reps; rep++ {
		cfg := datagen.SyntheticConfig{
			Relations:  p.N,
			Dim:        p.Dim,
			Density:    p.Density,
			Skew:       p.Skew,
			BaseTuples: st.BaseTuples,
			MinScore:   0.01,
			Seed:       st.Seed + int64(rep)*7919,
		}
		rels, err := datagen.Synthetic(cfg)
		if err != nil {
			return stats.Summary{}, err
		}
		res, err := runOnce(rels, vec.New(p.Dim), core.Options{
			K:               p.K,
			Algorithm:       algo,
			Query:           vec.New(p.Dim),
			Agg:             defaultAgg(),
			DominancePeriod: domPeriod,
			EagerBounds:     eager,
			MaxSumDepths:    st.MaxSumDepths,
			MaxCombinations: st.MaxCombinations,
			CollectTimings:  true,
		})
		if err != nil {
			return stats.Summary{}, fmt.Errorf("experiments: point %+v algo %v: %w", p, algo, err)
		}
		col.Add(toSample(res))
	}
	return col.Summarize(), nil
}

// RunCity executes one algorithm on a simulated city data set (n = 3:
// hotels × restaurants × theaters, K = 10 as in Appendix D.2). Timing
// repeats reuse the same data; sumDepths is deterministic per city.
func RunCity(st Settings, city cities.City, algo core.Algorithm, eager bool) (stats.Summary, error) {
	rels, err := city.Relations()
	if err != nil {
		return stats.Summary{}, err
	}
	reps := st.Reps
	if reps < 1 {
		reps = 1
	}
	var col stats.Collector
	for rep := 0; rep < reps; rep++ {
		res, err := runOnce(rels, city.Query(), core.Options{
			K:               10,
			Algorithm:       algo,
			Query:           city.Query(),
			Agg:             cityAgg(),
			EagerBounds:     eager,
			MaxSumDepths:    st.MaxSumDepths,
			MaxCombinations: st.MaxCombinations,
			CollectTimings:  true,
		})
		if err != nil {
			return stats.Summary{}, fmt.Errorf("experiments: city %s algo %v: %w", city.Code, algo, err)
		}
		col.Add(toSample(res))
	}
	return col.Summarize(), nil
}

// cityAgg weights the geographic terms up: city coordinates are degrees
// (≈ 0.01-0.05 in magnitude), so distance penalties need rescaling to
// compete with the score term, as any deployment tuning would do. 2000
// makes "a district away" (≈ 0.05°) cost about five units of log-score —
// the evening-planner regime where proximity genuinely matters.
func cityAgg() agg.Function {
	return agg.MustEuclideanSum(agg.Weights{Ws: 1, Wq: 2000, Wmu: 2000}, agg.LogScore)
}
