package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a rendered experiment result: the rows/series a paper figure
// reports, in text form.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// cell formats a float compactly.
func cell(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// secCell formats seconds with enough resolution for sub-millisecond runs.
func secCell(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.2fs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.0fµs", v*1e6)
	}
}
