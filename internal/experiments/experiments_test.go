package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cities"
	"repro/internal/core"
)

// tinySettings keep the smoke tests fast.
func tinySettings() Settings {
	return Settings{
		Reps:            2,
		BaseTuples:      120,
		MaxSumDepths:    600,
		MaxCombinations: 120_000,
		EagerCPU:        false,
	}
}

func TestRegistryCoversAllPanels(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d entries, want 17 (figures 3a-3n + tables t1-t3)", len(reg))
	}
	for _, id := range []string{"3a", "3b", "3c", "3d", "3e", "3f", "3g", "3h", "3i", "3j", "3k", "3l", "3m", "3n", "t1", "t2", "t3"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing entry %s", id)
		}
	}
	if _, ok := ByID("9z"); ok {
		t.Error("bogus figure found")
	}
}

// TestTablesReproducePaperValues checks the regenerated Tables 1 and 3
// against the paper's printed numbers (the harness-level version of the
// core golden tests).
func TestTablesReproducePaperValues(t *testing.T) {
	tbl, err := table1(Settings{})
	if err != nil {
		t.Fatal(err)
	}
	wantS := []string{"-7.0", "-8.4", "-13.9", "-16.3", "-21.0", "-22.6", "-28.9", "-29.5"}
	for i, w := range wantS {
		if tbl.Rows[i][1] != w {
			t.Errorf("table1 row %d: S = %s, want %s", i, tbl.Rows[i][1], w)
		}
	}
	tbl3, err := table3(Settings{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl3.Rows) != 19 {
		t.Fatalf("table3 has %d rows, want 19 partials", len(tbl3.Rows))
	}
	if !strings.Contains(tbl3.Notes[0], "t = -7.0") {
		t.Errorf("table3 overall bound note: %q", tbl3.Notes[0])
	}
}

func TestRunSyntheticPointBasic(t *testing.T) {
	st := tinySettings()
	p := DefaultPoint()
	p.K = 5
	s, err := RunSyntheticPoint(st, p, core.TBPA, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != st.Reps || s.DNFs != 0 {
		t.Fatalf("runs=%d dnfs=%d", s.Runs, s.DNFs)
	}
	if s.SumDepths <= 0 {
		t.Fatalf("sumDepths = %v", s.SumDepths)
	}
}

// TestTightBeatsCornerOnDefaults reproduces the paper's headline claim on
// a small instance of the default operating point: TBPA accesses fewer
// tuples than CBPA (≥ 15% in the paper; we only assert strict dominance to
// keep the smoke test robust at reduced sizes).
func TestTightBeatsCornerOnDefaults(t *testing.T) {
	st := tinySettings()
	st.Reps = 4
	p := DefaultPoint()
	cb, err := RunSyntheticPoint(st, p, core.CBPA, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := RunSyntheticPoint(st, p, core.TBPA, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if tb.SumDepths >= cb.SumDepths {
		t.Fatalf("TBPA %.1f accesses vs CBPA %.1f: tight bound should win", tb.SumDepths, cb.SumDepths)
	}
}

func TestRunCity(t *testing.T) {
	st := DefaultSettings()
	st.Reps = 1
	city, err := cities.ByCode("DA")
	if err != nil {
		t.Fatal(err)
	}
	sTB, err := RunCity(st, city, core.TBPA, false)
	if err != nil {
		t.Fatal(err)
	}
	sCB, err := RunCity(st, city, core.CBPA, false)
	if err != nil {
		t.Fatal(err)
	}
	if sTB.SumDepths <= 0 || sCB.SumDepths <= 0 {
		t.Fatal("city runs produced no accesses")
	}
	if sTB.SumDepths > sCB.SumDepths {
		t.Fatalf("city TBPA %.0f deeper than CBPA %.0f", sTB.SumDepths, sCB.SumDepths)
	}
}

// TestEveryFigureRuns smoke-tests all 14 panels at tiny settings and
// checks table shape.
func TestEveryFigureRuns(t *testing.T) {
	st := tinySettings()
	st.Reps = 1
	st.BaseTuples = 80
	st.MaxSumDepths = 300
	st.MaxCombinations = 60_000
	for _, fig := range Registry() {
		fig := fig
		t.Run(fig.ID, func(t *testing.T) {
			tbl, err := fig.Run(st)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 || len(tbl.Header) < 2 {
				t.Fatalf("figure %s produced empty table", fig.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("figure %s: row %v vs header %v", fig.ID, row, tbl.Header)
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), tbl.Header[0]) {
				t.Fatalf("figure %s render missing header", fig.ID)
			}
		})
	}
}

// TestFig3aShape checks the qualitative paper claim that the number of
// accesses grows sublinearly with K for every algorithm.
func TestFig3aShape(t *testing.T) {
	st := tinySettings()
	st.Reps = 3
	depths := map[int]float64{}
	for _, k := range []int{1, 10, 50} {
		p := DefaultPoint()
		p.K = k
		s, err := RunSyntheticPoint(st, p, core.TBPA, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		depths[k] = s.SumDepths
	}
	if !(depths[1] <= depths[10] && depths[10] <= depths[50]) {
		t.Fatalf("sumDepths not monotone in K: %v", depths)
	}
	if depths[50] >= 50*depths[1] {
		t.Fatalf("growth not sublinear: %v", depths)
	}
}

func TestTableCells(t *testing.T) {
	if cell(1235.6) != "1236" || cell(25.34) != "25.3" || cell(1.234) != "1.23" {
		t.Error("cell formatting")
	}
	if secCell(2.5) != "2.50s" || secCell(0.0021) != "2.10ms" || secCell(3e-5) != "30µs" {
		t.Errorf("secCell formatting: %s %s %s", secCell(2.5), secCell(0.0021), secCell(3e-5))
	}
}

func TestQuickAndDefaultSettings(t *testing.T) {
	d := DefaultSettings()
	q := QuickSettings()
	if d.Reps != 10 {
		t.Errorf("paper methodology is 10 reps, got %d", d.Reps)
	}
	if q.Reps >= d.Reps || q.BaseTuples >= d.BaseTuples {
		t.Error("quick settings are not quicker")
	}
}

// TestDominancePeriodLabels verifies the ∞ rendering of period 0.
func TestDominancePeriodLabels(t *testing.T) {
	st := tinySettings()
	st.Reps = 1
	st.BaseTuples = 60
	st.MaxSumDepths = 200
	tbl, err := fig3m(st)
	if err != nil {
		t.Fatal(err)
	}
	foundInf := false
	for _, row := range tbl.Rows {
		if row[0] == "inf" {
			foundInf = true
		} else if _, err := strconv.Atoi(row[0]); err != nil {
			t.Errorf("bad period label %q", row[0])
		}
	}
	if !foundInf {
		t.Error("missing the ∞ (disabled) dominance row")
	}
}
