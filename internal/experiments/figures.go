package experiments

import (
	"fmt"

	"repro/internal/cities"
	"repro/internal/core"
	"repro/internal/stats"
)

// Figure is one reproducible experiment of the paper's Figure 3.
type Figure struct {
	// ID is the paper panel label ("3a" … "3n").
	ID string
	// Title describes the sweep.
	Title string
	// Run executes the experiment and renders its table.
	Run func(st Settings) (*Table, error)
}

// Registry returns all figure runners in paper order.
func Registry() []Figure {
	return []Figure{
		{ID: "3a", Title: "Fig 3(a): sumDepths vs number of top results K", Run: fig3a},
		{ID: "3b", Title: "Fig 3(b): sumDepths vs number of dimensions d", Run: fig3b},
		{ID: "3c", Title: "Fig 3(c): sumDepths vs density rho", Run: fig3c},
		{ID: "3d", Title: "Fig 3(d): total CPU time vs K (with bound fraction)", Run: fig3d},
		{ID: "3e", Title: "Fig 3(e): total CPU time vs d (with bound fraction)", Run: fig3e},
		{ID: "3f", Title: "Fig 3(f): total CPU time vs rho (with bound fraction)", Run: fig3f},
		{ID: "3g", Title: "Fig 3(g): sumDepths vs skewness rho1/rho2", Run: fig3g},
		{ID: "3h", Title: "Fig 3(h): sumDepths vs number of relations n", Run: fig3h},
		{ID: "3i", Title: "Fig 3(i): sumDepths on the five city data sets", Run: fig3i},
		{ID: "3j", Title: "Fig 3(j): total CPU time vs skewness", Run: fig3j},
		{ID: "3k", Title: "Fig 3(k): total CPU time vs number of relations n", Run: fig3k},
		{ID: "3l", Title: "Fig 3(l): total CPU time on the five city data sets", Run: fig3l},
		{ID: "3m", Title: "Fig 3(m): total CPU time vs dominance period, n = 2", Run: fig3m},
		{ID: "3n", Title: "Fig 3(n): total CPU time vs dominance period, n = 3", Run: fig3n},
		{ID: "t1", Title: "Table 1: worked-example combination scores", Run: table1},
		{ID: "t2", Title: "Table 2: operating parameter grid", Run: table2},
		{ID: "t3", Title: "Table 3: partial combinations and tight bounds", Run: table3},
	}
}

// ByID returns the figure runner with the given ID.
func ByID(id string) (Figure, bool) {
	for _, f := range Registry() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// sweepDepths renders a sumDepths table with one row per parameter value
// and one column per algorithm.
func sweepDepths(st Settings, title, param string, values []string, point func(i int) Point) (*Table, error) {
	t := &Table{Title: title, Header: []string{param, "CBRR(HRJN)", "CBPA(HRJN*)", "TBRR", "TBPA"}}
	var lastCBPA, lastTBPA float64
	for i, label := range values {
		row := []string{label}
		for _, a := range algorithms {
			s, err := RunSyntheticPoint(st, point(i), a, 0, false)
			if err != nil {
				return nil, err
			}
			if s.DNFs == s.Runs {
				row = append(row, "DNF")
			} else {
				row = append(row, cell(s.SumDepths))
			}
			if a == core.CBPA {
				lastCBPA = s.SumDepths
			}
			if a == core.TBPA {
				lastTBPA = s.SumDepths
			}
		}
		t.Rows = append(t.Rows, row)
	}
	if lastCBPA > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("last row: TBPA saves %.0f%% of accesses vs CBPA",
			stats.Gain(lastCBPA, lastTBPA)))
	}
	return t, nil
}

// sweepCPU renders a CPU-time table (total with the updateBound fraction),
// the stacked-bar content of the paper's panels.
func sweepCPU(st Settings, title, param string, values []string, point func(i int) Point) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{param, "CBRR total", "CBPA total", "TBRR total(bound)", "TBPA total(bound)"},
	}
	for i, label := range values {
		row := []string{label}
		for _, a := range algorithms {
			s, err := RunSyntheticPoint(st, point(i), a, 0, st.EagerCPU)
			if err != nil {
				return nil, err
			}
			if s.DNFs == s.Runs {
				row = append(row, "DNF")
				continue
			}
			if a == core.TBRR || a == core.TBPA {
				row = append(row, fmt.Sprintf("%s(%s)", secCell(s.TotalSeconds), secCell(s.BoundSeconds)))
			} else {
				row = append(row, secCell(s.TotalSeconds))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"parenthesized value: time inside updateBound (lighter stacked bar in the paper)")
	return t, nil
}

func fig3a(st Settings) (*Table, error) {
	labels := make([]string, len(KValues))
	for i, k := range KValues {
		labels[i] = fmt.Sprintf("K=%d", k)
	}
	return sweepDepths(st, "Fig 3(a): sumDepths vs K (n=2, d=2, rho=100)", "K", labels, func(i int) Point {
		p := DefaultPoint()
		p.K = KValues[i]
		return p
	})
}

func fig3b(st Settings) (*Table, error) {
	labels := make([]string, len(DimValues))
	for i, d := range DimValues {
		labels[i] = fmt.Sprintf("d=%d", d)
	}
	return sweepDepths(st, "Fig 3(b): sumDepths vs d (K=10, n=2, rho=100)", "d", labels, func(i int) Point {
		p := DefaultPoint()
		p.Dim = DimValues[i]
		return p
	})
}

func fig3c(st Settings) (*Table, error) {
	labels := make([]string, len(DensityValues))
	for i, r := range DensityValues {
		labels[i] = fmt.Sprintf("rho=%g", r)
	}
	return sweepDepths(st, "Fig 3(c): sumDepths vs density (K=10, n=2, d=2)", "rho", labels, func(i int) Point {
		p := DefaultPoint()
		p.Density = DensityValues[i]
		return p
	})
}

func fig3d(st Settings) (*Table, error) {
	labels := make([]string, len(KValues))
	for i, k := range KValues {
		labels[i] = fmt.Sprintf("K=%d", k)
	}
	return sweepCPU(st, "Fig 3(d): CPU time vs K (n=2, d=2, rho=100)", "K", labels, func(i int) Point {
		p := DefaultPoint()
		p.K = KValues[i]
		return p
	})
}

func fig3e(st Settings) (*Table, error) {
	labels := make([]string, len(DimValues))
	for i, d := range DimValues {
		labels[i] = fmt.Sprintf("d=%d", d)
	}
	return sweepCPU(st, "Fig 3(e): CPU time vs d (K=10, n=2, rho=100)", "d", labels, func(i int) Point {
		p := DefaultPoint()
		p.Dim = DimValues[i]
		return p
	})
}

func fig3f(st Settings) (*Table, error) {
	labels := make([]string, len(DensityValues))
	for i, r := range DensityValues {
		labels[i] = fmt.Sprintf("rho=%g", r)
	}
	return sweepCPU(st, "Fig 3(f): CPU time vs density (K=10, n=2, d=2)", "rho", labels, func(i int) Point {
		p := DefaultPoint()
		p.Density = DensityValues[i]
		return p
	})
}

func fig3g(st Settings) (*Table, error) {
	labels := make([]string, len(SkewValues))
	for i, s := range SkewValues {
		labels[i] = fmt.Sprintf("skew=%g", s)
	}
	return sweepDepths(st, "Fig 3(g): sumDepths vs skewness (K=10, n=2, d=2, rho=100)", "rho1/rho2", labels, func(i int) Point {
		p := DefaultPoint()
		p.Skew = SkewValues[i]
		return p
	})
}

func fig3h(st Settings) (*Table, error) {
	labels := make([]string, len(NValues))
	for i, n := range NValues {
		labels[i] = fmt.Sprintf("n=%d", n)
	}
	return sweepDepths(st, "Fig 3(h): sumDepths vs number of relations (K=10, d=2, rho=100)", "n", labels, func(i int) Point {
		p := DefaultPoint()
		p.N = NValues[i]
		return p
	})
}

func fig3i(st Settings) (*Table, error) {
	t := &Table{
		Title:  "Fig 3(i): sumDepths on city data sets (n=3, K=10)",
		Header: []string{"city", "CBRR(HRJN)", "CBPA(HRJN*)", "TBRR", "TBPA"},
	}
	var cbpaSum, tbpaSum float64
	for _, city := range cities.All() {
		row := []string{city.Code}
		for _, a := range algorithms {
			st1 := st
			st1.Reps = 1 // sumDepths is deterministic per city
			s, err := RunCity(st1, city, a, false)
			if err != nil {
				return nil, err
			}
			if s.DNFs == s.Runs {
				row = append(row, "DNF")
			} else {
				row = append(row, cell(s.SumDepths))
			}
			if a == core.CBPA {
				cbpaSum += s.SumDepths
			}
			if a == core.TBPA {
				tbpaSum += s.SumDepths
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average: TBPA saves %.0f%% of accesses vs CBPA",
		stats.Gain(cbpaSum, tbpaSum)))
	return t, nil
}

func fig3j(st Settings) (*Table, error) {
	labels := make([]string, len(SkewValues))
	for i, s := range SkewValues {
		labels[i] = fmt.Sprintf("skew=%g", s)
	}
	return sweepCPU(st, "Fig 3(j): CPU time vs skewness (K=10, n=2, d=2, rho=100)", "rho1/rho2", labels, func(i int) Point {
		p := DefaultPoint()
		p.Skew = SkewValues[i]
		return p
	})
}

func fig3k(st Settings) (*Table, error) {
	labels := make([]string, len(NValues))
	for i, n := range NValues {
		labels[i] = fmt.Sprintf("n=%d", n)
	}
	return sweepCPU(st, "Fig 3(k): CPU time vs number of relations (K=10, d=2, rho=100)", "n", labels, func(i int) Point {
		p := DefaultPoint()
		p.N = NValues[i]
		return p
	})
}

func fig3l(st Settings) (*Table, error) {
	t := &Table{
		Title:  "Fig 3(l): CPU time on city data sets (n=3, K=10)",
		Header: []string{"city", "CBRR total", "CBPA total", "TBRR total(bound)", "TBPA total(bound)"},
	}
	for _, city := range cities.All() {
		row := []string{city.Code}
		for _, a := range algorithms {
			s, err := RunCity(st, city, a, st.EagerCPU)
			if err != nil {
				return nil, err
			}
			if s.DNFs == s.Runs {
				row = append(row, "DNF")
				continue
			}
			if a == core.TBRR || a == core.TBPA {
				row = append(row, fmt.Sprintf("%s(%s)", secCell(s.TotalSeconds), secCell(s.BoundSeconds)))
			} else {
				row = append(row, secCell(s.TotalSeconds))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// dominanceSweep is shared by Fig 3(m)/(n).
func dominanceSweep(st Settings, title string, n int) (*Table, error) {
	t := &Table{
		Title:  title,
		Header: []string{"period", "TBRR total(bound+dom)", "TBPA total(bound+dom)"},
	}
	for _, period := range DominancePeriods {
		label := fmt.Sprintf("%d", period)
		if period == 0 {
			label = "inf"
		}
		row := []string{label}
		for _, a := range []core.Algorithm{core.TBRR, core.TBPA} {
			p := DefaultPoint()
			p.N = n
			s, err := RunSyntheticPoint(st, p, a, period, st.EagerCPU)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%s(%s+%s)",
				secCell(s.TotalSeconds), secCell(s.BoundSeconds), secCell(s.DominanceSeconds)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"parenthesized values: updateBound time + dominance-test time (the two lighter stacked bars)",
		"period inf disables the dominance test")
	return t, nil
}

func fig3m(st Settings) (*Table, error) {
	return dominanceSweep(st, "Fig 3(m): CPU time vs dominance period (n=2)", 2)
}

func fig3n(st Settings) (*Table, error) {
	return dominanceSweep(st, "Fig 3(n): CPU time vs dominance period (n=3)", 3)
}
