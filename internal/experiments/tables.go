package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/vec"
)

// The paper's tables, regenerated from the implementation (not
// hard-coded): Table 1 (worked example scores), Table 2 (the parameter
// grid itself), Table 3 (per-partial tight bounds at depth (2,2,2)).

// table1Relations are the fixtures of paper Table 1 / Figure 1.
func table1Relations() ([]*relation.Relation, error) {
	r1, err := relation.New("R1", 1.0, []relation.Tuple{
		{ID: "τ1(1)", Score: 0.5, Vec: vec.Of(0, -0.5)},
		{ID: "τ1(2)", Score: 1.0, Vec: vec.Of(0, 1)},
	})
	if err != nil {
		return nil, err
	}
	r2, err := relation.New("R2", 1.0, []relation.Tuple{
		{ID: "τ2(1)", Score: 1.0, Vec: vec.Of(1, 1)},
		{ID: "τ2(2)", Score: 0.8, Vec: vec.Of(-2, 2)},
	})
	if err != nil {
		return nil, err
	}
	r3, err := relation.New("R3", 1.0, []relation.Tuple{
		{ID: "τ3(1)", Score: 1.0, Vec: vec.Of(-1, 1)},
		{ID: "τ3(2)", Score: 0.4, Vec: vec.Of(-2, -2)},
	})
	if err != nil {
		return nil, err
	}
	return []*relation.Relation{r1, r2, r3}, nil
}

func table1(Settings) (*Table, error) {
	rels, err := table1Relations()
	if err != nil {
		return nil, err
	}
	combos, err := core.Naive(rels, vec.Of(0, 0), defaultAgg(), 8)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 1: combinations of the worked example, sorted by S (ws=wq=wmu=1, q=0)",
		Header: []string{"combination", "S"},
	}
	for _, c := range combos {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s x %s x %s", c.Tuples[0].ID, c.Tuples[1].ID, c.Tuples[2].ID),
			fmt.Sprintf("%.1f", c.Score),
		})
	}
	t.Notes = append(t.Notes, "paper values: -7.0 -8.4 -13.9 -16.3 -21.0 -22.6 -28.9 -29.5")
	return t, nil
}

func table2(Settings) (*Table, error) {
	t := &Table{
		Title:  "Table 2: operating parameters (defaults marked *)",
		Header: []string{"parameter", "tested values"},
		Rows: [][]string{
			{"number of results K", "1, 10*, 50"},
			{"number of dimensions d", "1, 2*, 4, 8, 16"},
			{"density rho", "20, 50, 100*, 200"},
			{"skewness rho1/rho2", "1*, 2, 4, 8"},
			{"number of relations n", "2*, 3, 4"},
		},
	}
	return t, nil
}

func table3(Settings) (*Table, error) {
	rels, err := table1Relations()
	if err != nil {
		return nil, err
	}
	q := vec.Of(0, 0)
	sources := make([]relation.Source, len(rels))
	for i, r := range rels {
		s, err := relation.NewDistanceSource(r, q, nil)
		if err != nil {
			return nil, err
		}
		sources[i] = s
	}
	e, err := core.NewEngine(sources, core.Options{
		K: 1, Algorithm: core.TBRR, Query: q, Agg: defaultAgg(),
	})
	if err != nil {
		return nil, err
	}
	// Reach the paper's state: both tuples of each relation extracted.
	for _, ri := range []int{0, 0, 1, 1, 2, 2} {
		if err := e.StepForTest(ri); err != nil {
			return nil, err
		}
	}
	subsets, ok := e.TightBoundBreakdown()
	if !ok {
		return nil, fmt.Errorf("experiments: tight bound breakdown unavailable")
	}
	t := &Table{
		Title:  "Table 3: partial combinations and their tight upper bounds (depths 2,2,2)",
		Header: []string{"M", "partial", "t(tau)", "t_M"},
	}
	overall := e.Threshold()
	for _, sb := range subsets {
		mLabel := "{}"
		if len(sb.Members) > 0 {
			var parts []string
			for _, m := range sb.Members {
				parts = append(parts, fmt.Sprintf("%d", m+1))
			}
			mLabel = "{" + strings.Join(parts, ",") + "}"
		}
		for i, p := range sb.Partials {
			partial := "<>"
			if len(p.TupleIDs) > 0 {
				partial = strings.Join(p.TupleIDs, " x ")
			}
			tm := ""
			if i == 0 {
				tm = fmt.Sprintf("%.1f", sb.TM)
			}
			t.Rows = append(t.Rows, []string{mLabel, partial, fmt.Sprintf("%.1f", p.Bound), tm})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("overall tight bound t = %.1f (paper: -7.0, achieved completing τ2(1) x τ3(1))", overall))
	return t, nil
}
