package proxrank_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Figure 3(a)-(n)), plus ablation benchmarks for the design
// choices called out in DESIGN.md (lazy vs eager bound maintenance,
// dominance pruning, R-tree vs sorted access, tight vs corner bound).
//
// The figure benchmarks execute the corresponding experiment at reduced
// repetition (experiments.QuickSettings) and report the headline series as
// custom metrics, so `go test -bench=Fig` regenerates the whole study.
// Absolute seconds differ from the 2010 testbed; the shapes are what is
// reproduced (see EXPERIMENTS.md).

import (
	"context"
	"testing"

	proxrank "repro"
	"repro/internal/benchcore"
	"repro/internal/cities"
	"repro/internal/core"
	"repro/internal/experiments"
)

// BenchmarkHotPath runs the engine hot-path suite shared with the
// committed BENCH_core.json snapshot (cmd/proxbench -core-out): batch
// TopK under both bounds, incremental session Next, and a sharded-merge
// query. benchstat on `-bench=HotPath` before/after a change is the
// canonical way to claim a hot-path win.
func BenchmarkHotPath(b *testing.B) {
	for _, spec := range benchcore.Specs() {
		b.Run(spec.Name, spec.Bench)
	}
}

// benchFigure runs one figure panel per iteration.
func benchFigure(b *testing.B, id string) {
	fig, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	st := experiments.QuickSettings()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fig.Run(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03a(b *testing.B) { benchFigure(b, "3a") }
func BenchmarkFig03b(b *testing.B) { benchFigure(b, "3b") }
func BenchmarkFig03c(b *testing.B) { benchFigure(b, "3c") }
func BenchmarkFig03d(b *testing.B) { benchFigure(b, "3d") }
func BenchmarkFig03e(b *testing.B) { benchFigure(b, "3e") }
func BenchmarkFig03f(b *testing.B) { benchFigure(b, "3f") }
func BenchmarkFig03g(b *testing.B) { benchFigure(b, "3g") }
func BenchmarkFig03h(b *testing.B) { benchFigure(b, "3h") }
func BenchmarkFig03i(b *testing.B) { benchFigure(b, "3i") }
func BenchmarkFig03j(b *testing.B) { benchFigure(b, "3j") }
func BenchmarkFig03k(b *testing.B) { benchFigure(b, "3k") }
func BenchmarkFig03l(b *testing.B) { benchFigure(b, "3l") }
func BenchmarkFig03m(b *testing.B) { benchFigure(b, "3m") }
func BenchmarkFig03n(b *testing.B) { benchFigure(b, "3n") }

// benchRels builds a default synthetic instance once per benchmark.
func benchRels(b *testing.B, n, baseTuples int) ([]*proxrank.Relation, proxrank.Vector) {
	b.Helper()
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.Relations = n
	cfg.BaseTuples = baseTuples
	cfg.Seed = 42
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rels, proxrank.Vector{0, 0}
}

// benchTopK times one full query per iteration.
func benchTopK(b *testing.B, rels []*proxrank.Relation, q proxrank.Vector, opts proxrank.Options) {
	b.Helper()
	b.ReportAllocs()
	var sumDepths int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := proxrank.TopK(q, rels, opts)
		if err != nil {
			b.Fatal(err)
		}
		sumDepths = res.Stats.SumDepths
	}
	b.ReportMetric(float64(sumDepths), "sumDepths")
}

// Ablation: the four algorithms on the default operating point (the
// paper's headline comparison, Table 2 defaults).
func BenchmarkAlgorithmCBRR(b *testing.B) {
	rels, q := benchRels(b, 2, 400)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.CBRR})
}

func BenchmarkAlgorithmCBPA(b *testing.B) {
	rels, q := benchRels(b, 2, 400)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.CBPA})
}

func BenchmarkAlgorithmTBRR(b *testing.B) {
	rels, q := benchRels(b, 2, 400)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.TBRR})
}

func BenchmarkAlgorithmTBPA(b *testing.B) {
	rels, q := benchRels(b, 2, 400)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.TBPA})
}

// Ablation: lazy (default) vs eager (paper Algorithm 2) bound maintenance
// — identical I/O, different CPU (DESIGN.md §2).
func BenchmarkBoundMaintenanceLazy(b *testing.B) {
	rels, q := benchRels(b, 3, 200)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.TBPA})
}

func BenchmarkBoundMaintenanceEager(b *testing.B) {
	rels, q := benchRels(b, 3, 200)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.TBPA, EagerBounds: true})
}

// Ablation: dominance pruning period under eager bounds (Fig 3(m)/(n)
// micro version).
func BenchmarkDominanceOff(b *testing.B) {
	rels, q := benchRels(b, 3, 200)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.TBRR, EagerBounds: true})
}

func BenchmarkDominancePeriod8(b *testing.B) {
	rels, q := benchRels(b, 3, 200)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Algorithm: proxrank.TBRR, EagerBounds: true, DominancePeriod: 8})
}

// Ablation: sorted distance access vs R-tree incremental NN access.
func BenchmarkAccessSorted(b *testing.B) {
	rels, q := benchRels(b, 2, 2000)
	benchTopK(b, rels, q, proxrank.Options{K: 10})
}

func BenchmarkAccessRTree(b *testing.B) {
	rels, q := benchRels(b, 2, 2000)
	benchTopK(b, rels, q, proxrank.Options{K: 10, UseRTree: true})
}

// Score-based access (Appendix C algorithms).
func BenchmarkScoreAccessTBPA(b *testing.B) {
	rels, q := benchRels(b, 2, 400)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Access: proxrank.ScoreAccess})
}

func BenchmarkScoreAccessCBPA(b *testing.B) {
	rels, q := benchRels(b, 2, 400)
	benchTopK(b, rels, q, proxrank.Options{K: 10, Access: proxrank.ScoreAccess, Algorithm: proxrank.CBPA})
}

// City workload (the Fig 3(i)/(l) per-query cost).
func BenchmarkCityQuery(b *testing.B) {
	city, err := cities.ByCode("SF")
	if err != nil {
		b.Fatal(err)
	}
	rels, err := city.Relations()
	if err != nil {
		b.Fatal(err)
	}
	pub := make([]*proxrank.Relation, len(rels))
	copy(pub, rels)
	benchTopK(b, pub, city.Query(), proxrank.Options{
		K: 10, Weights: proxrank.Weights{Ws: 1, Wq: 2000, Wmu: 2000},
	})
}

// cityBenchSetup loads one bundled city study and its paper weighting.
func cityBenchSetup(b *testing.B, code string) ([]*proxrank.Relation, proxrank.Vector, proxrank.Options) {
	b.Helper()
	city, err := cities.ByCode(code)
	if err != nil {
		b.Fatal(err)
	}
	rels, err := city.Relations()
	if err != nil {
		b.Fatal(err)
	}
	opts := proxrank.Options{K: 10, Weights: proxrank.Weights{Ws: 1, Wq: 2000, Wmu: 2000}}
	return rels, proxrank.Vector(city.Query()), opts
}

// BenchmarkCityTimeToFirstResult measures ranked enumeration's headline
// property on the city studies: the latency until the rank-1 result is
// certified by a fresh Query session — what a streaming client waits
// before its first NDJSON line.
func BenchmarkCityTimeToFirstResult(b *testing.B) {
	for _, code := range []string{"SF", "NY", "BO", "DA", "HO"} {
		b.Run(code, func(b *testing.B) {
			rels, q, opts := cityBenchSetup(b, code)
			inputs := make([]proxrank.Input, len(rels))
			for i, r := range rels {
				inputs[i] = r
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess, err := proxrank.NewQueryInputs(q, inputs, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Next(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCityTimeToComplete is the batch twin: the same session
// drained to K=10, i.e. what a batch client waits for the full
// response. The gap to BenchmarkCityTimeToFirstResult is the latency
// incremental retrieval saves.
func BenchmarkCityTimeToComplete(b *testing.B) {
	for _, code := range []string{"SF", "NY", "BO", "DA", "HO"} {
		b.Run(code, func(b *testing.B) {
			rels, q, opts := cityBenchSetup(b, code)
			inputs := make([]proxrank.Input, len(rels))
			for i, r := range rels {
				inputs[i] = r
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sess, err := proxrank.NewQueryInputs(q, inputs, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.RunContext(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Oracle cost for scale: the naive full cross product the operators avoid.
func BenchmarkNaiveBaseline(b *testing.B) {
	rels, q := benchRels(b, 2, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: the benchmark harness exercises the same code paths the engine
// validates; keep a compile-time reference to core so the harness fails
// loudly if the algorithm set changes.
var _ = core.Algorithms
