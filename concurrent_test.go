package proxrank_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	proxrank "repro"
)

// TestStreamFromSourcesKindValidation is the regression test for the
// missing access-kind check: a score-ordered source handed to a stream
// configured for distance access used to be accepted silently, producing
// wrong bounds. It must now fail construction, exactly like
// TopKFromSources does.
func TestStreamFromSourcesKindValidation(t *testing.T) {
	rels := smallRelations(t)
	q := proxrank.Vector{0, 0}
	sources := []proxrank.Source{
		proxrank.NewScoreSource(rels[0]), // wrong kind for DistanceAccess below
		mustDistanceSource(t, rels[1], q),
	}
	_, err := proxrank.NewStreamFromSources(q, sources, proxrank.Options{Access: proxrank.DistanceAccess})
	if err == nil {
		t.Fatal("NewStreamFromSources accepted a score source under distance access")
	}
	if !strings.Contains(err.Error(), "access kind") {
		t.Fatalf("unhelpful error: %v", err)
	}

	// Same check must hold against the declared kind, matching TopKFromSources.
	_, topkErr := proxrank.TopKFromSources(q, sources, proxrank.Options{K: 1, Access: proxrank.DistanceAccess})
	if topkErr == nil {
		t.Fatal("TopKFromSources accepted the mismatched sources")
	}

	// Consistent sources still construct fine.
	ok := []proxrank.Source{
		proxrank.NewScoreSource(rels[0]),
		proxrank.NewScoreSource(rels[1]),
	}
	if _, err := proxrank.NewStreamFromSources(q, ok, proxrank.Options{Access: proxrank.ScoreAccess}); err != nil {
		t.Fatalf("consistent sources rejected: %v", err)
	}
}

func mustDistanceSource(t testing.TB, rel *proxrank.Relation, q proxrank.Vector) proxrank.Source {
	t.Helper()
	s, err := proxrank.NewDistanceSource(rel, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConcurrentSharedIndexQueries hammers one shared Relation and its
// precomputed indexes from many goroutines: TopKContext over shared
// R-tree sources, Stream.NextContext over shared score-order sources,
// and plain TopK — all against the same oracle. Run with -race.
func TestConcurrentSharedIndexQueries(t *testing.T) {
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.Relations = 2
	cfg.BaseTuples = 150
	cfg.Seed = 41
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := proxrank.Vector{0.2, 0.3}
	want, err := proxrank.NaiveTopK(q, rels, proxrank.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}

	rtrees := make([]*proxrank.RTreeIndex, len(rels))
	scores := make([]*proxrank.ScoreIndex, len(rels))
	for i, rel := range rels {
		rtrees[i] = proxrank.NewRTreeIndex(rel)
		scores[i] = proxrank.NewScoreIndex(rel)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) { errs <- err }

	// TopKContext over sources opened from the shared R-tree indexes.
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sources := make([]proxrank.Source, len(rtrees))
			for i, ix := range rtrees {
				s, err := ix.Source(q)
				if err != nil {
					fail(err)
					return
				}
				sources[i] = s
			}
			res, err := proxrank.TopKFromSourcesContext(context.Background(), q, sources, proxrank.Options{K: 4})
			if err != nil {
				fail(err)
				return
			}
			for i := range want {
				if math.Abs(res.Combinations[i].Score-want[i].Score) > 1e-9 {
					fail(errors.New("rtree-index result diverged from oracle"))
					return
				}
			}
		}()
	}

	// Streams over sources opened from the shared score indexes, driven
	// through NextContext.
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sources := make([]proxrank.Source, len(scores))
			for i, ix := range scores {
				sources[i] = ix.Source()
			}
			st, err := proxrank.NewStreamFromSources(q, sources, proxrank.Options{Access: proxrank.ScoreAccess})
			if err != nil {
				fail(err)
				return
			}
			for i := 0; i < 3; i++ {
				c, err := st.NextContext(context.Background())
				if err != nil {
					fail(err)
					return
				}
				if math.Abs(c.Score-want[i].Score) > 1e-9 {
					fail(errors.New("score-index stream diverged from oracle"))
					return
				}
			}
		}()
	}

	// Plain TopK over the same shared relations, mixed in.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := proxrank.TopKContext(context.Background(), q, rels, proxrank.Options{K: 4})
			if err != nil {
				fail(err)
				return
			}
			if math.Abs(res.Combinations[0].Score-want[0].Score) > 1e-9 {
				fail(errors.New("TopKContext result diverged from oracle"))
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTopKContextCancellation: the public entry point honors an expired
// context.
func TestTopKContextCancellation(t *testing.T) {
	rels := smallRelations(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := proxrank.TopKContext(ctx, proxrank.Vector{0, 0}, rels, proxrank.Options{K: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
