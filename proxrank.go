package proxrank

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/relfile"
	"repro/internal/vec"
)

// Re-exported data model. These aliases are the public names of the
// library's core types; downstream code never imports internal packages.
type (
	// Vector is a point in the feature space R^d.
	Vector = vec.Vector
	// Metric is a distance function on vectors.
	Metric = vec.Metric
	// Tuple is one scored, located object of a relation.
	Tuple = relation.Tuple
	// Relation is an immutable input collection with a known maximum score.
	Relation = relation.Relation
	// Source streams a relation in a fixed access order.
	Source = relation.Source
	// AccessKind selects distance-based or score-based sequential access.
	AccessKind = relation.AccessKind
	// Algorithm names a bounding-scheme/pulling-strategy pair.
	Algorithm = core.Algorithm
	// Combination is one join result with its aggregate score.
	Combination = core.Combination
	// Result is the ranked output plus run statistics.
	Result = core.Result
	// Stats carries the cost metrics of a run (sumDepths et al.).
	Stats = core.Stats
	// Weights tunes the aggregation of paper eq. (2).
	Weights = agg.Weights
	// ScoreTransform selects how scores enter the aggregation (ln or id).
	ScoreTransform = agg.ScoreTransform
	// RTreeIndex is a precomputed R-tree over one relation, shared
	// read-only across concurrent queries (see NewRTreeIndex).
	RTreeIndex = relation.RTreeIndex
	// ScoreIndex is a relation's precomputed score order, shared
	// read-only across concurrent queries (see NewScoreIndex).
	ScoreIndex = relation.ScoreIndex
	// ShardedRelation is a relation partitioned into shards with per-shard
	// indexes built in parallel; queries stream a k-way merge of the shard
	// orders that is byte-identical to the unsharded stream (see
	// NewShardedRelation).
	ShardedRelation = relation.Sharded
	// PartitionStrategy selects how NewShardedRelation assigns tuples to
	// shards (HashPartition or GridPartition).
	PartitionStrategy = relation.PartitionStrategy
	// Input is anything TopKInputs can query: a *Relation or a
	// *ShardedRelation.
	Input = relation.Input
)

// Access kinds.
const (
	DistanceAccess = relation.DistanceAccess
	ScoreAccess    = relation.ScoreAccess
)

// Algorithms.
const (
	// CBRR is the HRJN baseline: corner bound, round-robin pulling.
	CBRR = core.CBRR
	// CBPA is HRJN*: corner bound, potential-adaptive pulling.
	CBPA = core.CBPA
	// TBRR is the tight bound with round-robin pulling (instance-optimal).
	TBRR = core.TBRR
	// TBPA is the tight bound with adaptive pulling (the paper's best).
	TBPA = core.TBPA
)

// ParseAlgorithm maps a case-insensitive name — cbrr (or hrjn), cbpa (or
// hrjn*), tbrr, tbpa — to an Algorithm. The empty string selects TBPA,
// matching the Options default.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "tbpa":
		return TBPA, nil
	case "tbrr":
		return TBRR, nil
	case "cbpa", "hrjn*":
		return CBPA, nil
	case "cbrr", "hrjn":
		return CBRR, nil
	}
	return 0, fmt.Errorf("proxrank: unknown algorithm %q (want cbrr|cbpa|tbrr|tbpa)", s)
}

// Partition strategies.
const (
	// HashPartition spreads tuples across shards by a hash of their ID.
	HashPartition = relation.HashPartition
	// GridPartition packs spatially close tuples into the same shard.
	GridPartition = relation.GridPartition
)

// ParsePartitionStrategy maps a case-insensitive name — hash, grid — to a
// PartitionStrategy. The empty string selects HashPartition.
func ParsePartitionStrategy(s string) (PartitionStrategy, error) {
	return relation.ParsePartitionStrategy(s)
}

// Score transforms.
const (
	// LogScore aggregates w_s·ln σ (paper eq. (2)).
	LogScore = agg.LogScore
	// IdentityScore aggregates w_s·σ (paper Appendix C.2).
	IdentityScore = agg.IdentityScore
)

// Options configure TopK. The zero value plus a positive K is a valid
// configuration: TBPA over distance-based access with unit weights and
// logarithmic scores.
type Options struct {
	// K is the number of results (required, ≥ 1).
	K int
	// Algorithm defaults to TBPA.
	Algorithm Algorithm
	// Access defaults to DistanceAccess.
	Access AccessKind
	// Weights defaults to w_s = w_q = w_µ = 1.
	Weights Weights
	// Transform defaults to LogScore.
	Transform ScoreTransform
	// Proximity selects cosine dissimilarity instead of squared Euclidean
	// distance when true (the paper's future-work extension). The engine
	// then uses the corner bound, as the tight bound's closed-form
	// geometry is Euclidean.
	CosineProximity bool
	// DominancePeriod enables dominance pruning every so many accesses for
	// the distance-based tight bound (0 = off).
	DominancePeriod int
	// EagerBounds switches from lazy bound maintenance to the paper's
	// eager Algorithm 2 schedule (identical results, more CPU).
	EagerBounds bool
	// BoundPeriod recomputes the stopping threshold only every so many
	// pulls — the "blocks of tuples" CPU/I/O trade-off of paper §4.2.
	// Results are unchanged; at most BoundPeriod−1 extra tuples may be
	// read. 0 or 1 recomputes on every pull.
	BoundPeriod int
	// UseRTree serves distance-based access through R-tree incremental
	// nearest-neighbor traversal instead of a full sort.
	UseRTree bool
	// Epsilon relaxes the stopping test: the run may finish earlier and
	// every returned combination scores within Epsilon of any combination
	// it displaced. 0 means exact top-K.
	Epsilon float64
	// MaxSumDepths and MaxCombinations abort long runs, marking the result
	// DNF (0 = unlimited).
	MaxSumDepths    int
	MaxCombinations int64
	// MaxBuffered bounds a session's buffer of formed-but-unemitted
	// combinations (0 = unbounded). The batch TopK* entry points default
	// it to K, restoring O(K) peak memory with byte-identical results; a
	// Query or Stream consumed past MaxBuffered results under the default
	// BufferPrune policy may skip results, so open-ended sessions should
	// leave it 0 or select BufferSpill.
	MaxBuffered int
	// BufferPolicy selects the overflow behavior at MaxBuffered:
	// BufferPrune (default) drops combinations below the buffer's score
	// floor — exact for the first MaxBuffered results in O(MaxBuffered)
	// memory; BufferSpill keeps everything, moving overflow to a compact
	// append-only slab — exact for open enumeration with the ranked heap
	// still bounded.
	BufferPolicy BufferPolicy
	// BlockSize sets the width of the engine's batched scoring kernel at
	// the innermost combination-formation level (0 = the benchmarked
	// default, core.DefaultBlockSize). Results are byte-identical at any
	// width — the kernels replay the scalar operation sequence exactly —
	// so this is purely an engine tuning knob, like MaxBuffered.
	BlockSize int
	// CollectTimings enables the per-pull wall-clock sampling behind
	// Stats.BoundTime and Stats.DominanceTime. Off by default: the
	// timers measurably tax every pull, and most callers only need
	// Stats.TotalTime (always collected).
	CollectTimings bool
	// Tracer, when non-nil, observes the run at pull granularity — every
	// access with its depth and wall time, every threshold update, every
	// buffer pressure event. The hook behind per-query tracing; nil (the
	// default) costs one pointer check per pull.
	Tracer Tracer
	// SpillDir, when non-empty, gives BufferSpill sessions a file-backed
	// spill tier: overflow past the SpillMemBytes in-memory slab moves to
	// checksummed segment files under SpillDir, byte-identically to the
	// in-memory slab, so open enumeration over huge cross products runs
	// at flat resident memory. Ignored unless MaxBuffered > 0 with
	// BufferSpill.
	SpillDir string
	// SpillMemBytes bounds the in-memory slab ahead of the file tier
	// (0 = core.DefaultSpillMemBytes).
	SpillMemBytes int
}

// Tracer observes one run at pull granularity (see core.Tracer for the
// callback contract).
type Tracer = core.Tracer

// BufferPolicy selects what a bounded session buffer does at its cap.
type BufferPolicy = core.BufferPolicy

// Buffer policies.
const (
	// BufferPrune drops below-floor combinations (exact first MaxBuffered
	// results, O(MaxBuffered) memory).
	BufferPrune = core.BufferPrune
	// BufferSpill keeps every combination, spilling overflow to a compact
	// slab (exact open enumeration, bounded ranked heap).
	BufferSpill = core.BufferSpill
)

// NewRelation validates tuples and builds a relation; maxScore is the
// a-priori maximum score σ_max the bounding schemes rely on.
func NewRelation(name string, maxScore float64, tuples []Tuple) (*Relation, error) {
	return relation.New(name, maxScore, tuples)
}

// NewDistanceSource streams rel by increasing metric distance from query
// (pass nil for Euclidean).
func NewDistanceSource(rel *Relation, query Vector, metric Metric) (Source, error) {
	return relation.NewDistanceSource(rel, query, metric)
}

// NewRTreeDistanceSource streams rel by increasing Euclidean distance via
// incremental R-tree traversal.
func NewRTreeDistanceSource(rel *Relation, query Vector) (Source, error) {
	return relation.NewRTreeDistanceSource(rel, query)
}

// NewRTreeIndex bulk-loads rel into an R-tree once; the returned index is
// immutable and its Source method is safe for concurrent use, so repeated
// queries over one relation skip the per-query bulk load.
func NewRTreeIndex(rel *Relation) *RTreeIndex {
	return relation.NewRTreeIndex(rel)
}

// NewScoreIndex sorts rel by decreasing score once; the returned index is
// immutable and its Source method is safe for concurrent use, so repeated
// score-access queries skip the per-query sort.
func NewScoreIndex(rel *Relation) *ScoreIndex {
	return relation.NewScoreIndex(rel)
}

// NewScoreSource streams rel by decreasing score.
func NewScoreSource(rel *Relation) Source {
	return relation.NewScoreSource(rel)
}

// NewShardedRelation partitions rel into at most shards shards under the
// given strategy and builds every shard's R-tree and score order in
// parallel. The result is immutable and safe for concurrent use, and any
// query over it — TopKInputs, NewStreamInputs, or the service layer —
// returns byte-identical results to the unsharded relation, while
// bounding per-shard index memory and enabling parallel builds. Fewer
// shards may be returned when some would be empty.
func NewShardedRelation(rel *Relation, shards int, strategy PartitionStrategy) (*ShardedRelation, error) {
	return relation.Partition(rel, shards, strategy)
}

// ReadRelationCSV parses a relation from CSV ("id,score,x1,...,xd[,attr...]").
// Pass maxScore 0 to infer it from the data.
func ReadRelationCSV(r io.Reader, name string, maxScore float64) (*Relation, error) {
	return relation.ReadCSV(r, name, maxScore)
}

// WriteRelationCSV serializes a relation to CSV.
func WriteRelationCSV(w io.Writer, rel *Relation) error {
	return relation.WriteCSV(w, rel)
}

// LoadRelationCSV reads a relation from a CSV file.
func LoadRelationCSV(path, name string, maxScore float64) (*Relation, error) {
	return relation.LoadCSVFile(path, name, maxScore)
}

// SaveRelationCSV writes a relation to a CSV file.
func SaveRelationCSV(path string, rel *Relation) error {
	return relation.SaveCSVFile(path, rel)
}

// RelFileExtension is the conventional suffix of relfile relation files
// (".prox"); proxserve and the catalog use it to pick the loader.
const RelFileExtension = relfile.Extension

// SaveRelFile writes a sharded relation to path in the relfile format: a
// versioned, checksummed columnar layout whose per-shard slabs are
// stored in canonical score order, built once and memory-mapped at load.
func SaveRelFile(path string, s *ShardedRelation) error {
	return relfile.Write(path, s)
}

// LoadRelFile memory-maps a relfile relation under the given name. The
// loaded relation copies no tuples onto the heap: score access streams
// the mapped slabs directly, distance access builds per-shard R-trees
// lazily on first use, and shard bounds come stored from the file — so
// queries over it are byte-identical to the in-memory relation it was
// built from while resident memory stays flat in the relation size. The
// mapping stays alive for as long as the relation (or any tuple view it
// produced) is reachable.
func LoadRelFile(path, name string) (*ShardedRelation, error) {
	f, err := relfile.Open(path)
	if err != nil {
		return nil, err
	}
	return f.Load(name)
}

// AutoShardCount is the admission heuristic shared by proxgen and the
// service catalog: the shard count picked for a relation of the given
// size when the caller does not fix one (roughly one shard per 8k
// tuples, clamped to [1, 64]).
func AutoShardCount(tuples int) int {
	return relation.AutoShardCount(tuples)
}

func (o Options) aggregation() (agg.Function, error) {
	w := o.Weights
	if w == (Weights{}) {
		w = agg.DefaultWeights()
	}
	if o.CosineProximity {
		return agg.NewCosineProximity(w, o.Transform)
	}
	return agg.NewEuclideanSum(w, o.Transform)
}

func (o Options) engineOptions(query Vector, fn agg.Function) core.Options {
	return core.Options{
		K:               o.K,
		Algorithm:       o.Algorithm,
		Query:           query,
		Agg:             fn,
		DominancePeriod: o.DominancePeriod,
		EagerBounds:     o.EagerBounds,
		BoundPeriod:     o.BoundPeriod,
		Epsilon:         o.Epsilon,
		MaxSumDepths:    o.MaxSumDepths,
		MaxCombinations: o.MaxCombinations,
		MaxBuffered:     o.MaxBuffered,
		BufferPolicy:    o.BufferPolicy,
		BlockSize:       o.BlockSize,
		CollectTimings:  o.CollectTimings,
		Tracer:          o.Tracer,
		SpillDir:        o.SpillDir,
		SpillMemBytes:   o.SpillMemBytes,
	}
}

// BoundedToK returns the options with the session buffer defaulted for a
// run that consumes at most K results: bounding MaxBuffered to K keeps
// the output byte-identical while restoring O(K) peak heap memory (the
// buffer otherwise grows with CombinationsFormed). An explicit
// MaxBuffered wins, and the configured BufferPolicy is honored — the
// default prune drops below-floor combinations, BufferSpill moves them
// to the compact spill slab (and the file tier, with SpillDir) instead.
// Every at-most-K consumer — the batch TopK* entry points, the service
// executor's streamed runs, the CLI — applies exactly this rule; do not
// use it for sessions that may enumerate past K with the prune policy,
// where the pruned buffer could skip results.
func (o Options) BoundedToK() Options {
	if o.MaxBuffered == 0 && o.K > 0 {
		o.MaxBuffered = o.K
	}
	return o
}

// TopK answers a proximity rank join query over in-memory relations,
// building the appropriate sources for the configured access kind.
func TopK(query Vector, rels []*Relation, opts Options) (Result, error) {
	return TopKContext(context.Background(), query, rels, opts)
}

// TopKContext is TopK with cooperative cancellation: the run aborts with
// a wrapped ctx.Err() as soon as the context's deadline passes or it is
// canceled, without returning a partial result.
func TopKContext(ctx context.Context, query Vector, rels []*Relation, opts Options) (Result, error) {
	return TopKInputsContext(ctx, query, relationInputs(rels), opts)
}

// TopKInputs answers a query over a mix of plain and sharded relations:
// sharded inputs stream a merged view of their shards, so callers get
// partitioned indexes without involving the service layer.
func TopKInputs(query Vector, inputs []Input, opts Options) (Result, error) {
	return TopKInputsContext(context.Background(), query, inputs, opts)
}

// TopKInputsContext is TopKInputs with cooperative cancellation.
func TopKInputsContext(ctx context.Context, query Vector, inputs []Input, opts Options) (Result, error) {
	q, err := NewQueryInputs(query, inputs, opts.BoundedToK())
	if err != nil {
		return Result{}, err
	}
	return q.RunContext(ctx)
}

// relationInputs widens a relation list to the Input interface.
func relationInputs(rels []*Relation) []Input {
	inputs := make([]Input, len(rels))
	for i, rel := range rels {
		inputs[i] = rel
	}
	return inputs
}

// buildSources constructs one source per input for the configured access
// kind (shared by the batch and streaming entry points). Sharded inputs
// yield merged per-shard streams.
func buildSources(query Vector, inputs []Input, opts Options, fn agg.Function) ([]Source, error) {
	sources := make([]Source, len(inputs))
	for i, in := range inputs {
		s, err := relation.OpenSource(in, opts.Access, query, fn.Metric(), opts.UseRTree)
		if err != nil {
			return nil, err
		}
		sources[i] = s
	}
	return sources, nil
}

// checkSourceKinds verifies that every source delivers the access order
// the options announce — a mismatch would silently break the bounding
// schemes, which derive bounds from the access order.
func checkSourceKinds(sources []Source, access AccessKind) error {
	for _, s := range sources {
		if s.Kind() != access {
			return fmt.Errorf("proxrank: source %q has access kind %v, options say %v",
				s.Relation().Name, s.Kind(), access)
		}
	}
	return nil
}

// TopKFromSources answers a query over caller-supplied sources (remote
// services, fault-injected wrappers, custom orders). All sources must
// share one access kind consistent with opts.Access.
func TopKFromSources(query Vector, sources []Source, opts Options) (Result, error) {
	return TopKFromSourcesContext(context.Background(), query, sources, opts)
}

// TopKFromSourcesContext is TopKFromSources with cooperative
// cancellation.
//
// Like every batch entry point it is a Query session drained to K (see
// NewQuerySources): the engine is invoked through one path whether
// results are consumed as a batch or enumerated incrementally, and the
// pull sequence — hence every cost metric — is identical either way.
// Because the run consumes at most K results, the session buffer is
// bounded to K under the drop-below-floor policy (unless the caller set
// MaxBuffered explicitly): peak retained combinations are O(K) even
// though Stats.CombinationsFormed can be orders of magnitude larger, and
// the results are byte-identical to an unbounded run's.
func TopKFromSourcesContext(ctx context.Context, query Vector, sources []Source, opts Options) (Result, error) {
	q, err := NewQuerySources(query, sources, opts.BoundedToK())
	if err != nil {
		return Result{}, err
	}
	return q.RunContext(ctx)
}

// NaiveTopK scores the full cross product: the exact but exhaustive
// baseline, useful for validation and tiny inputs.
func NaiveTopK(query Vector, rels []*Relation, opts Options) ([]Combination, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	return core.Naive(rels, query, fn, opts.K)
}

// ErrDNF is a sentinel clients can use to detect capped runs. One
// condition, three surfaces (see api.CodeDNF for the wire mapping):
// batch results carry it as the Result.DNF flag with best-effort
// combinations attached; Query.Next and Stream.Next return ErrDNF once
// no buffered combination can be certified anymore; MustTopK panics
// with it.
var ErrDNF = errors.New("proxrank: run aborted by MaxSumDepths/MaxCombinations cap")

// MustTopK is TopK that panics on error or DNF; for examples and tests.
func MustTopK(query Vector, rels []*Relation, opts Options) Result {
	res, err := TopK(query, rels, opts)
	if err != nil {
		panic(err)
	}
	if res.DNF {
		panic(ErrDNF)
	}
	return res
}
