package proxrank_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	proxrank "repro"
)

// shardTestRelation builds a deterministic relation with engineered
// score and distance ties, so the byte-identical guarantee is tested
// where it is hardest.
func shardTestRelation(t testing.TB, name string, seed int64, size, dim int) *proxrank.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tuples := make([]proxrank.Tuple, size)
	for i := range tuples {
		v := make([]float64, dim)
		for c := range v {
			v[c] = float64(r.Intn(6))
		}
		tuples[i] = proxrank.Tuple{
			ID:    fmt.Sprintf("%s-%03d", name, i),
			Score: 0.25 + 0.25*float64(r.Intn(3)),
			Vec:   v,
		}
	}
	rel, err := proxrank.NewRelation(name, 1.0, tuples)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// TestTopKShardedMatchesUnsharded is the facade-layer acceptance test:
// relations partitioned into ≥4 shards must return byte-identical top-k
// results (same tuples, same scores, same order) as the unsharded
// relations, for both access kinds and both strategies.
func TestTopKShardedMatchesUnsharded(t *testing.T) {
	relA := shardTestRelation(t, "A", 101, 90, 2)
	relB := shardTestRelation(t, "B", 202, 110, 2)
	query := proxrank.Vector{2.2, 1.4}

	for _, strategy := range []proxrank.PartitionStrategy{proxrank.HashPartition, proxrank.GridPartition} {
		shardedA, err := proxrank.NewShardedRelation(relA, 4, strategy)
		if err != nil {
			t.Fatal(err)
		}
		shardedB, err := proxrank.NewShardedRelation(relB, 5, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if shardedA.NumShards() < 4 {
			t.Fatalf("%v: relation A has %d shards, want 4", strategy, shardedA.NumShards())
		}
		for _, access := range []proxrank.AccessKind{proxrank.DistanceAccess, proxrank.ScoreAccess} {
			for _, useRTree := range []bool{false, true} {
				if access == proxrank.ScoreAccess && useRTree {
					continue
				}
				opts := proxrank.Options{K: 12, Access: access, UseRTree: useRTree}
				want, err := proxrank.TopK(query, []*proxrank.Relation{relA, relB}, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := proxrank.TopKInputs(query, []proxrank.Input{shardedA, shardedB}, opts)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%v/%v/rtree=%v", strategy, access, useRTree)
				if !reflect.DeepEqual(got.Combinations, want.Combinations) {
					t.Fatalf("%s: sharded combinations diverge from unsharded\n got: %+v\nwant: %+v",
						label, got.Combinations, want.Combinations)
				}
				if got.Stats.SumDepths != want.Stats.SumDepths {
					t.Fatalf("%s: sharded sumDepths %d, unsharded %d (streams are not identical)",
						label, got.Stats.SumDepths, want.Stats.SumDepths)
				}
			}
		}
	}
}

// TestTopKInputsMixes plain and sharded inputs in one query.
func TestTopKInputsMixes(t *testing.T) {
	relA := shardTestRelation(t, "A", 7, 40, 2)
	relB := shardTestRelation(t, "B", 8, 50, 2)
	shardedB, err := proxrank.NewShardedRelation(relB, 4, proxrank.GridPartition)
	if err != nil {
		t.Fatal(err)
	}
	query := proxrank.Vector{1, 1}
	opts := proxrank.Options{K: 5}
	want := proxrank.MustTopK(query, []*proxrank.Relation{relA, relB}, opts)
	got, err := proxrank.TopKInputs(query, []proxrank.Input{relA, shardedB}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Combinations, want.Combinations) {
		t.Fatalf("mixed plain+sharded inputs diverge from unsharded")
	}
}

// benchShardedCity measures end-to-end TopK latency over the bundled SF
// city relations at a given shard count (1 = unsharded); EXPERIMENTS.md
// records the comparison.
func benchShardedCity(b *testing.B, shards int, strategy proxrank.PartitionStrategy) {
	rels, query, _, err := proxrank.CityDataset("SF")
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]proxrank.Input, len(rels))
	for i, rel := range rels {
		s, err := proxrank.NewShardedRelation(rel, shards, strategy)
		if err != nil {
			b.Fatal(err)
		}
		inputs[i] = s
	}
	opts := proxrank.Options{K: 10, UseRTree: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxrank.TopKInputs(query, inputs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCityTopKUnsharded(b *testing.B)    { benchShardedCity(b, 1, proxrank.HashPartition) }
func BenchmarkCityTopKSharded4Hash(b *testing.B) { benchShardedCity(b, 4, proxrank.HashPartition) }
func BenchmarkCityTopKSharded4Grid(b *testing.B) { benchShardedCity(b, 4, proxrank.GridPartition) }
func BenchmarkCityTopKSharded8Grid(b *testing.B) { benchShardedCity(b, 8, proxrank.GridPartition) }

// benchShardedBuild measures registration-time index construction, where
// per-shard parallelism is the win.
func benchShardedBuild(b *testing.B, shards int) {
	rel := shardTestRelation(b, "big", 1, 200000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proxrank.NewShardedRelation(rel, shards, proxrank.GridPartition); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedBuild1(b *testing.B) { benchShardedBuild(b, 1) }
func BenchmarkShardedBuild8(b *testing.B) { benchShardedBuild(b, 8) }

// TestStreamInputsSharded: the streaming operator over sharded inputs
// emits the same ranked sequence as over plain relations.
func TestStreamInputsSharded(t *testing.T) {
	relA := shardTestRelation(t, "A", 11, 35, 2)
	relB := shardTestRelation(t, "B", 12, 45, 2)
	shardedA, err := proxrank.NewShardedRelation(relA, 4, proxrank.HashPartition)
	if err != nil {
		t.Fatal(err)
	}
	shardedB, err := proxrank.NewShardedRelation(relB, 4, proxrank.GridPartition)
	if err != nil {
		t.Fatal(err)
	}
	query := proxrank.Vector{3, 2}
	opts := proxrank.Options{Access: proxrank.ScoreAccess}
	plain, err := proxrank.NewStream(query, []*proxrank.Relation{relA, relB}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := proxrank.NewStreamInputs(query, []proxrank.Input{shardedA, shardedB}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		want, werr := plain.Next()
		got, gerr := sharded.Next()
		if errors.Is(werr, proxrank.ErrStreamDone) || errors.Is(gerr, proxrank.ErrStreamDone) {
			if !errors.Is(werr, proxrank.ErrStreamDone) || !errors.Is(gerr, proxrank.ErrStreamDone) {
				t.Fatalf("rank %d: exhaustion mismatch (plain %v, sharded %v)", i, werr, gerr)
			}
			break
		}
		if werr != nil || gerr != nil {
			t.Fatalf("rank %d: errors plain=%v sharded=%v", i, werr, gerr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d: sharded stream emitted %+v, plain emitted %+v", i, got, want)
		}
	}
}
