package proxrank

import (
	"repro/internal/core"
	"repro/internal/relation"
)

// Stream is the pipelined form of the operator: results are produced one
// at a time, best first, each certified against the bound before it is
// emitted. Input is pulled lazily, so consuming only a prefix pays only
// that prefix's I/O — the operator composes into query pipelines the way
// HRJN does in a relational engine.
type Stream struct {
	it   *core.Iterator
	rels []*Relation
}

// ErrStreamDone is returned by Stream.Next once the whole cross product
// has been emitted.
var ErrStreamDone = core.ErrIteratorDone

// NewStream builds a streaming proximity rank join over in-memory
// relations. Options.K is ignored; all other options apply.
func NewStream(query Vector, rels []*Relation, opts Options) (*Stream, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	sources := make([]Source, len(rels))
	for i, rel := range rels {
		switch {
		case opts.Access == ScoreAccess:
			sources[i] = relation.NewScoreSource(rel)
		case opts.UseRTree:
			s, err := relation.NewRTreeDistanceSource(rel, query)
			if err != nil {
				return nil, err
			}
			sources[i] = s
		default:
			s, err := relation.NewDistanceSource(rel, query, fn.Metric())
			if err != nil {
				return nil, err
			}
			sources[i] = s
		}
	}
	return NewStreamFromSources(query, sources, opts)
}

// NewStreamFromSources builds a streaming operator over caller-supplied
// sources.
func NewStreamFromSources(query Vector, sources []Source, opts Options) (*Stream, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	eopts := opts.engineOptions(query, fn)
	eopts.K = 1
	it, err := core.NewIterator(sources, eopts)
	if err != nil {
		return nil, err
	}
	return &Stream{it: it}, nil
}

// Next returns the next-best combination, or ErrStreamDone / an access
// error.
func (s *Stream) Next() (Combination, error) { return s.it.Next() }

// Stats exposes the I/O and CPU cost paid so far.
func (s *Stream) Stats() Stats { return s.it.Stats() }

// Emitted returns the number of results produced so far.
func (s *Stream) Emitted() int64 { return s.it.Emitted() }
