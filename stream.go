package proxrank

import (
	"context"

	"repro/internal/core"
)

// Stream is the pipelined form of the operator: results are produced one
// at a time, best first, each certified against the bound before it is
// emitted. Input is pulled lazily, so consuming only a prefix pays only
// that prefix's I/O — the operator composes into query pipelines the way
// HRJN does in a relational engine.
type Stream struct {
	it   *core.Iterator
	rels []*Relation
}

// ErrStreamDone is returned by Stream.Next once the whole cross product
// has been emitted.
var ErrStreamDone = core.ErrIteratorDone

// NewStream builds a streaming proximity rank join over in-memory
// relations. Options.K is ignored; all other options apply.
func NewStream(query Vector, rels []*Relation, opts Options) (*Stream, error) {
	return NewStreamInputs(query, relationInputs(rels), opts)
}

// NewStreamInputs builds a streaming proximity rank join over a mix of
// plain and sharded relations: sharded inputs are read through a lazy
// k-way merge of their shard streams, so consuming a prefix of the
// output still pays only that prefix's I/O.
func NewStreamInputs(query Vector, inputs []Input, opts Options) (*Stream, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	sources, err := buildSources(query, inputs, opts, fn)
	if err != nil {
		return nil, err
	}
	return NewStreamFromSources(query, sources, opts)
}

// NewStreamFromSources builds a streaming operator over caller-supplied
// sources. All sources must share one access kind consistent with
// opts.Access — a mismatched source would silently corrupt the bounds.
func NewStreamFromSources(query Vector, sources []Source, opts Options) (*Stream, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	if err := checkSourceKinds(sources, opts.Access); err != nil {
		return nil, err
	}
	eopts := opts.engineOptions(query, fn)
	eopts.K = 1
	it, err := core.NewIterator(sources, eopts)
	if err != nil {
		return nil, err
	}
	return &Stream{it: it}, nil
}

// Next returns the next-best combination, or ErrStreamDone / an access
// error.
func (s *Stream) Next() (Combination, error) { return s.it.Next() }

// NextContext is Next with cooperative cancellation: the pull loop aborts
// with a wrapped ctx.Err() once ctx expires. Cancellation does not poison
// the stream — a later call with a live context resumes where this one
// stopped, keeping all input read so far.
func (s *Stream) NextContext(ctx context.Context) (Combination, error) {
	return s.it.NextContext(ctx)
}

// Stats exposes the I/O and CPU cost paid so far.
func (s *Stream) Stats() Stats { return s.it.Stats() }

// Emitted returns the number of results produced so far.
func (s *Stream) Emitted() int64 { return s.it.Emitted() }
