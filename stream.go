package proxrank

import (
	"context"
	"errors"

	"repro/internal/core"
)

// Stream is the pipelined form of the operator: results are produced one
// at a time, best first, each certified against the bound before it is
// emitted. Input is pulled lazily, so consuming only a prefix pays only
// that prefix's I/O — the operator composes into query pipelines the way
// HRJN does in a relational engine.
//
// Stream is the low-level operator; most callers want the Query session
// built on top of it (see NewQuery), which adds batch semantics, DNF
// handling, and the api.Request surface.
type Stream struct {
	it   *core.Iterator
	rels []*Relation
}

// ErrStreamDone is returned by Stream.Next once the whole cross product
// has been emitted.
var ErrStreamDone = core.ErrIteratorDone

// NewStream builds a streaming proximity rank join over in-memory
// relations. Options.K is ignored; all other options apply — in
// particular Epsilon relaxes per-result certification exactly as it
// relaxes the batch stopping test, and the MaxSumDepths/MaxCombinations
// caps abort the stream with ErrDNF. An unbounded stream retains every
// formed-but-unemitted combination in compact rank form; set MaxBuffered
// (with BufferSpill to keep open enumeration exact, or BufferPrune when
// at most MaxBuffered results will be consumed) to bound it.
func NewStream(query Vector, rels []*Relation, opts Options) (*Stream, error) {
	return NewStreamInputs(query, relationInputs(rels), opts)
}

// NewStreamInputs builds a streaming proximity rank join over a mix of
// plain and sharded relations: sharded inputs are read through a lazy
// k-way merge of their shard streams, so consuming a prefix of the
// output still pays only that prefix's I/O.
func NewStreamInputs(query Vector, inputs []Input, opts Options) (*Stream, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	sources, err := buildSources(query, inputs, opts, fn)
	if err != nil {
		return nil, err
	}
	return NewStreamFromSources(query, sources, opts)
}

// NewStreamFromSources builds a streaming operator over caller-supplied
// sources. All sources must share one access kind consistent with
// opts.Access — a mismatched source would silently corrupt the bounds.
// This is the single point where streaming and batch execution invoke
// the engine: every facade entry point (TopK*, Query, Stream) funnels
// through it, so validation cannot drift between consumption models.
func NewStreamFromSources(query Vector, sources []Source, opts Options) (*Stream, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	if err := checkSourceKinds(sources, opts.Access); err != nil {
		return nil, err
	}
	eopts := opts.engineOptions(query, fn)
	eopts.K = 1
	it, err := core.NewIterator(sources, eopts)
	if err != nil {
		return nil, err
	}
	return &Stream{it: it}, nil
}

// Next returns the next-best combination, or ErrStreamDone once the
// cross product is exhausted, ErrDNF once a cap fired, or an access
// error.
func (s *Stream) Next() (Combination, error) { return s.NextContext(context.Background()) }

// NextContext is Next with cooperative cancellation: the pull loop aborts
// with a wrapped ctx.Err() once ctx expires. Cancellation does not poison
// the stream — a later call with a live context resumes where this one
// stopped, keeping all input read so far.
func (s *Stream) NextContext(ctx context.Context) (Combination, error) {
	c, err := s.it.NextContext(ctx)
	if errors.Is(err, core.ErrIteratorDNF) {
		return c, ErrDNF
	}
	return c, err
}

// DrainBest pops the best buffered combination without certifying it
// against the bound — the best-effort tail after ErrDNF, in the order a
// capped batch run reports.
func (s *Stream) DrainBest() (Combination, bool) { return s.it.DrainBest() }

// Buffered returns the number of formed combinations awaiting emission.
func (s *Stream) Buffered() int { return s.it.Buffered() }

// Threshold returns the current upper bound on unseen combinations.
func (s *Stream) Threshold() float64 { return s.it.Threshold() }

// Stats exposes the I/O and CPU cost paid so far.
func (s *Stream) Stats() Stats { return s.it.Stats() }

// Emitted returns the number of results produced so far.
func (s *Stream) Emitted() int64 { return s.it.Emitted() }
