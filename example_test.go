package proxrank_test

import (
	"context"
	"errors"
	"fmt"

	proxrank "repro"
	"repro/api"
)

// ExampleTopK answers the paper's worked example (Table 1): three
// relations of two tuples each, query at the origin, unit weights.
func ExampleTopK() {
	r1, _ := proxrank.NewRelation("R1", 1.0, []proxrank.Tuple{
		{ID: "τ1(1)", Score: 0.5, Vec: proxrank.Vector{0, -0.5}},
		{ID: "τ1(2)", Score: 1.0, Vec: proxrank.Vector{0, 1}},
	})
	r2, _ := proxrank.NewRelation("R2", 1.0, []proxrank.Tuple{
		{ID: "τ2(1)", Score: 1.0, Vec: proxrank.Vector{1, 1}},
		{ID: "τ2(2)", Score: 0.8, Vec: proxrank.Vector{-2, 2}},
	})
	r3, _ := proxrank.NewRelation("R3", 1.0, []proxrank.Tuple{
		{ID: "τ3(1)", Score: 1.0, Vec: proxrank.Vector{-1, 1}},
		{ID: "τ3(2)", Score: 0.4, Vec: proxrank.Vector{-2, -2}},
	})

	res, err := proxrank.TopK(proxrank.Vector{0, 0},
		[]*proxrank.Relation{r1, r2, r3}, proxrank.Options{K: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range res.Combinations {
		fmt.Printf("%.1f %s %s %s\n", c.Score, c.Tuples[0].ID, c.Tuples[1].ID, c.Tuples[2].ID)
	}
	// Output:
	// -7.0 τ1(2) τ2(1) τ3(1)
	// -8.4 τ1(1) τ2(1) τ3(1)
}

// ExampleNewQuery runs a ranked-enumeration session from a
// transport-neutral api.Request: the initial top-K is delivered as
// certified, and enumeration continues past K on the same engine state
// without re-reading input.
func ExampleNewQuery() {
	r1, _ := proxrank.NewRelation("hotels", 1.0, []proxrank.Tuple{
		{ID: "h1", Score: 0.9, Vec: proxrank.Vector{0.1, 0}},
		{ID: "h2", Score: 0.2, Vec: proxrank.Vector{5, 5}},
	})
	r2, _ := proxrank.NewRelation("restaurants", 1.0, []proxrank.Tuple{
		{ID: "r1", Score: 0.8, Vec: proxrank.Vector{0, 0.2}},
		{ID: "r2", Score: 0.3, Vec: proxrank.Vector{-4, 4}},
	})

	req := &api.Request{
		Query:     []float64{0, 0},
		Relations: []string{"hotels", "restaurants"},
		K:         2,
	}
	sess, err := proxrank.NewQuery(req, r1, r2)
	if err != nil {
		fmt.Println(err)
		return
	}
	top, _ := sess.Next(req.K) // the top-K, delivered as certified
	for i, c := range top {
		fmt.Printf("rank %d: %s+%s\n", i+1, c.Tuples[0].ID, c.Tuples[1].ID)
	}
	more, err := sess.Next(2) // ranks 3-4, same run
	if err != nil && !errors.Is(err, proxrank.ErrStreamDone) {
		fmt.Println(err)
		return
	}
	fmt.Printf("enumerated %d more past K\n", len(more))
	// Output:
	// rank 1: h1+r1
	// rank 2: h1+r2
	// enumerated 2 more past K
}

// ExampleQuery_Results iterates a session lazily in rank order; k need
// not be known up front — break whenever enough has been seen.
func ExampleQuery_Results() {
	r1, _ := proxrank.NewRelation("R1", 1.0, []proxrank.Tuple{
		{ID: "a1", Score: 0.9, Vec: proxrank.Vector{0.1, 0}},
		{ID: "a2", Score: 0.2, Vec: proxrank.Vector{5, 5}},
	})
	r2, _ := proxrank.NewRelation("R2", 1.0, []proxrank.Tuple{
		{ID: "b1", Score: 0.8, Vec: proxrank.Vector{0, 0.2}},
		{ID: "b2", Score: 0.3, Vec: proxrank.Vector{-4, 4}},
	})
	req := &api.Request{Query: []float64{0, 0}, Relations: []string{"R1", "R2"}, K: 1}
	sess, err := proxrank.NewQuery(req, r1, r2)
	if err != nil {
		fmt.Println(err)
		return
	}
	n := 0
	for c, err := range sess.Results(context.Background()) {
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s+%s\n", c.Tuples[0].ID, c.Tuples[1].ID)
		if n++; n == 3 { // stop whenever enough has been seen
			break
		}
	}
	// Output:
	// a1+b1
	// a1+b2
	// a2+b1
}

// ExampleNewStream consumes the first two results of the pipelined
// operator over the same data.
func ExampleNewStream() {
	r1, _ := proxrank.NewRelation("R1", 1.0, []proxrank.Tuple{
		{ID: "a1", Score: 0.9, Vec: proxrank.Vector{0.1, 0}},
		{ID: "a2", Score: 0.2, Vec: proxrank.Vector{5, 5}},
	})
	r2, _ := proxrank.NewRelation("R2", 1.0, []proxrank.Tuple{
		{ID: "b1", Score: 0.8, Vec: proxrank.Vector{0, 0.2}},
		{ID: "b2", Score: 0.3, Vec: proxrank.Vector{-4, 4}},
	})
	s, err := proxrank.NewStream(proxrank.Vector{0, 0},
		[]*proxrank.Relation{r1, r2}, proxrank.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	for {
		c, err := s.Next()
		if errors.Is(err, proxrank.ErrStreamDone) {
			break
		}
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s+%s\n", c.Tuples[0].ID, c.Tuples[1].ID)
	}
	// Output:
	// a1+b1
	// a1+b2
	// a2+b1
	// a2+b2
}
