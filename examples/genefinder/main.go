// The genefinder example is the paper's bioinformatics motivation (§1
// case iii): discover orthologous genes across organisms given a target
// annotation profile. Expression profiles are compared by *cosine*
// proximity — direction matters, magnitude does not — which exercises the
// library's cosine extension (named as future work in the paper's
// conclusion). The tight bound's closed form is Euclidean, so the engine
// transparently falls back to the corner bound and reports it.
//
// Run with: go run ./examples/genefinder
package main

import (
	"fmt"
	"log"
	"math/rand"

	proxrank "repro"
)

const conditions = 16 // expression measurements per gene

func organism(name string, genes int, seed int64, motif proxrank.Vector) (*proxrank.Relation, error) {
	r := rand.New(rand.NewSource(seed))
	tuples := make([]proxrank.Tuple, genes)
	for j := range tuples {
		v := make(proxrank.Vector, conditions)
		if j%7 == 0 {
			// A conserved family: the shared motif plus noise.
			for k := range v {
				v[k] = motif[k] + r.NormFloat64()*0.3
			}
		} else {
			for k := range v {
				v[k] = r.NormFloat64() * 2
			}
		}
		tuples[j] = proxrank.Tuple{
			ID:    fmt.Sprintf("%s-g%03d", name, j),
			Score: 0.1 + 0.9*r.Float64(), // annotation confidence
			Vec:   v,
		}
	}
	return proxrank.NewRelation(name, 1.0, tuples)
}

func main() {
	r := rand.New(rand.NewSource(99))
	motif := make(proxrank.Vector, conditions)
	for k := range motif {
		motif[k] = r.NormFloat64() * 2
	}

	yeast, err := organism("yeast", 200, 10, motif)
	if err != nil {
		log.Fatal(err)
	}
	fly, err := organism("fly", 250, 11, motif)
	if err != nil {
		log.Fatal(err)
	}
	worm, err := organism("worm", 180, 12, motif)
	if err != nil {
		log.Fatal(err)
	}
	rels := []*proxrank.Relation{yeast, fly, worm}

	res, err := proxrank.TopK(motif, rels, proxrank.Options{
		K:               5,
		CosineProximity: true,
		Transform:       proxrank.IdentityScore,
		Weights:         proxrank.Weights{Ws: 0.3, Wq: 2, Wmu: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Candidate ortholog triples (yeast × fly × worm):")
	for i, c := range res.Combinations {
		fmt.Printf("%d. [%.3f] %s  %s  %s\n", i+1, c.Score,
			c.Tuples[0].ID, c.Tuples[1].ID, c.Tuples[2].ID)
	}
	if res.Stats.BoundDowngraded {
		fmt.Println("\n(cosine proximity: engine used the corner bound — the tight bound's")
		fmt.Println(" closed-form geometry is Euclidean, as the paper's conclusion notes)")
	}
	fmt.Printf("Read %d of %d genes (depths %v).\n",
		res.Stats.SumDepths, yeast.Len()+fly.Len()+worm.Len(), res.Stats.Depths)
}
