// The mediasearch example is the paper's multimedia motivation (§1 case
// ii): given a sample image, assemble the best triple of similar images
// from three different repositories. Each repository exposes *score-based*
// sequential access — it returns its images by decreasing popularity, the
// way a ranked image-search API would — and the engine must still find the
// combinations whose 8-dimensional feature vectors sit near the sample and
// near each other.
//
// Run with: go run ./examples/mediasearch
package main

import (
	"fmt"
	"log"
	"math/rand"

	proxrank "repro"
)

const dim = 8 // color/texture descriptor size

// repository synthesizes a photo collection whose descriptors cluster
// around a few visual themes.
func repository(name string, size int, seed int64) (*proxrank.Relation, error) {
	r := rand.New(rand.NewSource(seed))
	themes := make([]proxrank.Vector, 4)
	for i := range themes {
		v := make(proxrank.Vector, dim)
		for k := range v {
			v[k] = r.Float64() * 4
		}
		themes[i] = v
	}
	tuples := make([]proxrank.Tuple, size)
	for j := range tuples {
		theme := themes[r.Intn(len(themes))]
		v := make(proxrank.Vector, dim)
		for k := range v {
			v[k] = theme[k] + r.NormFloat64()*0.5
		}
		tuples[j] = proxrank.Tuple{
			ID:    fmt.Sprintf("%s/img%04d.jpg", name, j),
			Score: 0.05 + 0.95*r.Float64(), // popularity
			Vec:   v,
		}
	}
	return proxrank.NewRelation(name, 1.0, tuples)
}

func main() {
	flickr, err := repository("photolib", 500, 1)
	if err != nil {
		log.Fatal(err)
	}
	stock, err := repository("stockpix", 400, 2)
	if err != nil {
		log.Fatal(err)
	}
	archive, err := repository("archive", 300, 3)
	if err != nil {
		log.Fatal(err)
	}
	rels := []*proxrank.Relation{flickr, stock, archive}

	// The sample image's descriptor: pick a point near one of photolib's
	// themes so there is something to find.
	sample := flickr.At(0).Vec.Clone()
	for k := range sample {
		sample[k] += 0.2
	}

	res, err := proxrank.TopK(sample, rels, proxrank.Options{
		K:      5,
		Access: proxrank.ScoreAccess, // repositories rank by popularity
		// Popularity matters a little; visual similarity matters a lot.
		Weights: proxrank.Weights{Ws: 0.5, Wq: 1.5, Wmu: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Best matching triples (one per repository):")
	for i, c := range res.Combinations {
		fmt.Printf("%d. [%.3f]\n", i+1, c.Score)
		for _, tup := range c.Tuples {
			fmt.Printf("   %-28s popularity %.2f  distance-to-sample %.2f\n",
				tup.ID, tup.Score, tup.Vec.Dist(sample))
		}
	}
	total := flickr.Len() + stock.Len() + archive.Len()
	fmt.Printf("\nRead %d of %d images across the three repositories (depths %v).\n",
		res.Stats.SumDepths, total, res.Stats.Depths)
}
