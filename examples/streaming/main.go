// The streaming example shows the pipelined form of the operator: results
// arrive one at a time, best first, each certified before it is emitted,
// and the I/O meter only advances for the prefix actually consumed —
// exactly how a rank join operator behaves inside a query pipeline.
//
// Run with: go run ./examples/streaming
package main

import (
	"errors"
	"fmt"
	"log"

	proxrank "repro"
)

func main() {
	cfg := proxrank.DefaultSyntheticConfig()
	cfg.Relations = 3
	cfg.BaseTuples = 1000
	cfg.Seed = 2026
	rels, err := proxrank.SyntheticRelations(cfg)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, r := range rels {
		total += r.Len()
	}
	query := proxrank.Vector{0, 0}

	s, err := proxrank.NewStream(query, rels, proxrank.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Streaming the best of %d × %d × %d = %d combinations:\n\n",
		rels[0].Len(), rels[1].Len(), rels[2].Len(),
		rels[0].Len()*rels[1].Len()*rels[2].Len())
	fmt.Println("rank  score     tuples read so far (of", total, "available)")
	for i := 0; i < 8; i++ {
		c, err := s.Next()
		if errors.Is(err, proxrank.ErrStreamDone) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %8.4f  %d\n", i+1, c.Score, s.Stats().SumDepths)
	}
	fmt.Printf("\nEight results certified after touching %.1f%% of the input.\n",
		100*float64(s.Stats().SumDepths)/float64(total))
}
