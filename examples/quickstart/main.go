// The quickstart example is the paper's running scenario (§1): plan an
// evening by combining a restaurant, a movie theater, and a hotel that are
// well rated, close to where you are, and close to each other.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	proxrank "repro"
)

func main() {
	// Coordinates are kilometers from the user's position (the query is
	// the origin); scores are normalized ratings in (0, 1].
	restaurants, err := proxrank.NewRelation("restaurants", 1.0, []proxrank.Tuple{
		{ID: "Trattoria Bella", Score: 0.92, Vec: proxrank.Vector{0.4, 0.3}},
		{ID: "Noodle Bar", Score: 0.85, Vec: proxrank.Vector{-0.2, 0.9}},
		{ID: "Le Petit Jardin", Score: 0.97, Vec: proxrank.Vector{2.1, -1.4}},
		{ID: "Burger Basement", Score: 0.55, Vec: proxrank.Vector{0.1, -0.1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	theaters, err := proxrank.NewRelation("theaters", 1.0, []proxrank.Tuple{
		{ID: "Odeon Central", Score: 0.88, Vec: proxrank.Vector{0.6, 0.1}},
		{ID: "Grand Lumiere", Score: 0.95, Vec: proxrank.Vector{-1.8, 2.2}},
		{ID: "Strip Mall Cinema", Score: 0.45, Vec: proxrank.Vector{0.3, 0.5}},
	})
	if err != nil {
		log.Fatal(err)
	}
	hotels, err := proxrank.NewRelation("hotels", 1.0, []proxrank.Tuple{
		{ID: "Hotel Aurora", Score: 0.90, Vec: proxrank.Vector{0.8, 0.4}},
		{ID: "City Hostel", Score: 0.60, Vec: proxrank.Vector{0.2, 0.2}},
		{ID: "Palace Royale", Score: 0.99, Vec: proxrank.Vector{3.0, 2.5}},
	})
	if err != nil {
		log.Fatal(err)
	}

	query := proxrank.Vector{0, 0} // the user's location

	res, err := proxrank.TopK(query, []*proxrank.Relation{restaurants, theaters, hotels}, proxrank.Options{
		K: 3,
		// Weights: how much ratings matter vs being near the user vs the
		// places being near each other.
		Weights: proxrank.Weights{Ws: 1, Wq: 0.5, Wmu: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top evening plans (restaurant + theater + hotel):")
	for i, c := range res.Combinations {
		fmt.Printf("%d. [%.3f] %s, %s, %s\n", i+1, c.Score,
			c.Tuples[0].ID, c.Tuples[1].ID, c.Tuples[2].ID)
	}
	fmt.Printf("\nAnswered after reading %d of %d tuples (depths %v).\n",
		res.Stats.SumDepths,
		restaurants.Len()+theaters.Len()+hotels.Len(),
		res.Stats.Depths)
}
