// The cityguide example runs the paper's real-data scenario (Appendix D.2)
// on the bundled simulated city data sets: hotels × restaurants × theaters
// around a landmark, comparing all four ProxRJ algorithms on I/O cost.
//
// Run with: go run ./examples/cityguide [CITY]   (default SF)
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	proxrank "repro"
)

func main() {
	code := "SF"
	if len(os.Args) > 1 {
		code = strings.ToUpper(os.Args[1])
	}
	rels, query, landmark, err := proxrank.CityDataset(code)
	if err != nil {
		log.Fatalf("cityguide: %v (available: %v)", err, proxrank.CityCodes())
	}
	fmt.Printf("City %s — query at %s %v\n", code, landmark, query)
	fmt.Printf("Catalog: %d hotels, %d restaurants, %d theaters\n\n",
		rels[0].Len(), rels[1].Len(), rels[2].Len())

	// Degree-scale coordinates: weight geography up so that "a district
	// away" costs several units of log-rating.
	weights := proxrank.Weights{Ws: 1, Wq: 2000, Wmu: 2000}

	algos := []proxrank.Algorithm{proxrank.CBRR, proxrank.CBPA, proxrank.TBRR, proxrank.TBPA}
	var best proxrank.Result
	fmt.Println("algorithm     sumDepths  depths             cpu")
	for _, a := range algos {
		res, err := proxrank.TopK(query, rels, proxrank.Options{
			K: 10, Algorithm: a, Weights: weights,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %-9d  %-16s  %v\n", a, res.Stats.SumDepths,
			fmt.Sprint(res.Stats.Depths), res.Stats.TotalTime)
		if a == proxrank.TBPA {
			best = res
		}
	}

	fmt.Println("\nTop 3 evenings (all four algorithms return the same ranking):")
	for i, c := range best.Combinations[:3] {
		fmt.Printf("%d. score %.3f\n", i+1, c.Score)
		for j, tup := range c.Tuples {
			fmt.Printf("   %-12s %-22s rating %.1f/5\n",
				rels[j].Name[strings.Index(rels[j].Name, "-")+1:], tup.ID, tup.Score*5)
		}
	}
}
