package proxrank

import (
	"context"
	"errors"
	"iter"

	"repro/api"
	"repro/internal/core"
)

// OptionsFromRequest normalizes a transport-neutral api.Request (central
// validation and defaulting, see api.Request.Normalize) and translates
// it into the query vector and engine options. It is the single bridge
// between the wire model and the engine: the service executor, the
// Query session, and the CLI all convert through it, so a request means
// the same thing on every surface.
//
// The request is normalized in place, under the given server-side
// limits if any (at most one Limits value; none enforces only the
// structural rules).
func OptionsFromRequest(req *api.Request, limits ...api.Limits) (Vector, Options, error) {
	if req == nil {
		return nil, Options{}, api.Errorf(api.CodeBadRequest, "request is required")
	}
	var lim api.Limits
	if len(limits) > 0 {
		lim = limits[0]
	}
	if aerr := req.Normalize(lim); aerr != nil {
		return nil, Options{}, aerr
	}
	opts := Options{
		K:               req.K,
		Epsilon:         req.Epsilon,
		BoundPeriod:     req.BoundPeriod,
		DominancePeriod: req.DominancePeriod,
		MaxSumDepths:    req.MaxSumDepths,
		MaxCombinations: req.MaxCombinations,
		MaxBuffered:     req.MaxBuffered,
		BlockSize:       req.BlockSize,
	}
	algo, err := ParseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, Options{}, err
	}
	opts.Algorithm = algo
	if req.Access == api.AccessScore {
		opts.Access = ScoreAccess
	}
	if req.BufferPolicy == api.BufferSpill {
		opts.BufferPolicy = BufferSpill
	}
	if req.Transform == api.TransformIdentity {
		opts.Transform = IdentityScore
	}
	if w := req.Weights; w != nil {
		opts.Weights = Weights{Ws: w.Ws, Wq: w.Wq, Wmu: w.Wmu}
	}
	return Vector(req.Query), opts, nil
}

// Query is a first-class query session: the ranked-enumeration form of
// the operator. Where TopK answers a fixed batch, a session delivers
// results incrementally — Next(1) returns the rank-1 combination as soon
// as the bound certifies it, long before a full run would finish — and
// keeps the engine state alive, so enumeration can continue past the
// initial K without restarting or re-reading input.
//
// All batch entry points (TopK and friends) are reimplemented as a
// session that is drained to K, so there is exactly one engine
// invocation path.
//
// A Query is single-goroutine; concurrent sessions over shared
// relations or indexes are safe.
type Query struct {
	stream *Stream
	k      int
}

// NewQuery builds a session from a transport-neutral request and the
// inputs its Relations field names, in order. The request is validated
// and defaulted through the api package; inputs may mix plain and
// sharded relations.
func NewQuery(req *api.Request, inputs ...Input) (*Query, error) {
	query, opts, err := OptionsFromRequest(req)
	if err != nil {
		return nil, err
	}
	if len(inputs) != len(req.Relations) {
		return nil, api.Errorf(api.CodeBadRequest,
			"request names %d relations but %d inputs were supplied", len(req.Relations), len(inputs))
	}
	return NewQueryInputs(query, inputs, opts)
}

// NewQueryInputs is the Options-level session constructor, for callers
// holding typed options (cosine proximity, R-tree access) rather than a
// wire request.
func NewQueryInputs(query Vector, inputs []Input, opts Options) (*Query, error) {
	fn, err := opts.aggregation()
	if err != nil {
		return nil, err
	}
	sources, err := buildSources(query, inputs, opts, fn)
	if err != nil {
		return nil, err
	}
	return NewQuerySources(query, sources, opts)
}

// NewQuerySources builds a session over caller-supplied sources (remote
// services, fault-injected wrappers, custom orders). All sources must
// share one access kind consistent with opts.Access.
func NewQuerySources(query Vector, sources []Source, opts Options) (*Query, error) {
	if opts.K < 1 {
		return nil, core.ErrBadK
	}
	s, err := NewStreamFromSources(query, sources, opts)
	if err != nil {
		return nil, err
	}
	return &Query{stream: s, k: opts.K}, nil
}

// K returns the session's initial batch size.
func (q *Query) K() int { return q.k }

// Next returns the next (up to) n certified results, best first. Fewer
// than n come back only together with a non-nil error explaining why the
// stream ended there: ErrStreamDone after full exhaustion, ErrDNF once a
// MaxSumDepths/MaxCombinations cap fired (see DrainBest for the
// best-effort tail), or an access error. Results already collected are
// always returned alongside the error.
func (q *Query) Next(n int) ([]Combination, error) {
	return q.NextContext(context.Background(), n)
}

// NextContext is Next with cooperative cancellation. Cancellation does
// not poison the session: a later call with a live context resumes where
// this one stopped, keeping all input read so far.
func (q *Query) NextContext(ctx context.Context, n int) ([]Combination, error) {
	var out []Combination
	for len(out) < n {
		c, err := q.stream.NextContext(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Results returns an iterator over the remaining results in rank order,
// pulling input lazily as each is certified; k need not be known up
// front — break whenever enough results have been seen. Exhaustion ends
// the sequence silently; any other failure (including a DNF cap) is
// yielded once as a non-nil error and ends it.
func (q *Query) Results(ctx context.Context) iter.Seq2[Combination, error] {
	return func(yield func(Combination, error) bool) {
		for {
			c, err := q.stream.NextContext(ctx)
			if errors.Is(err, ErrStreamDone) {
				return
			}
			if err != nil {
				yield(Combination{}, err)
				return
			}
			if !yield(c, nil) {
				return
			}
		}
	}
}

// Run drains the session to its initial K with batch semantics and
// returns the familiar Result: a capped run comes back with DNF set and
// the engine's best-effort combinations instead of an error, exactly as
// the historical TopK did. Calling Next afterwards resumes enumeration
// past K on the same engine state.
func (q *Query) Run() (Result, error) { return q.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation.
func (q *Query) RunContext(ctx context.Context) (Result, error) {
	n := q.k - int(q.stream.Emitted())
	out, err := q.NextContext(ctx, n)
	res := Result{}
	switch {
	case err == nil, errors.Is(err, ErrStreamDone):
	case errors.Is(err, ErrDNF):
		// Batch DNF contract: report the best K formed so far. The
		// certified prefix was already emitted; the buffer holds the rest.
		res.DNF = true
		for len(out) < n {
			c, ok := q.stream.DrainBest()
			if !ok {
				break
			}
			out = append(out, c)
		}
	default:
		return Result{}, err
	}
	res.Combinations = out
	res.Threshold = q.stream.Threshold()
	res.Stats = q.stream.Stats()
	return res, nil
}

// DrainBest pops up to n of the best formed-but-uncertified combinations
// — the best-effort tail after an ErrDNF from Next, in the order a
// capped batch run reports them.
func (q *Query) DrainBest(n int) []Combination {
	var out []Combination
	for len(out) < n {
		c, ok := q.stream.DrainBest()
		if !ok {
			break
		}
		out = append(out, c)
	}
	return out
}

// Emitted returns the number of results delivered so far.
func (q *Query) Emitted() int { return int(q.stream.Emitted()) }

// Threshold returns the current upper bound on undelivered combinations.
func (q *Query) Threshold() float64 { return q.stream.Threshold() }

// Stats exposes the I/O and CPU cost paid so far.
func (q *Query) Stats() Stats { return q.stream.Stats() }
